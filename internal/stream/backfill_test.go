package stream

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/raslog"
)

// parseLog round-trips raw text-codec bytes back into events — the text
// codec stores whole seconds, so the reference for a backfill must be
// built from the parsed lines, not the generator's millisecond events.
func parseLog(t *testing.T, data []byte) *raslog.Log {
	t.Helper()
	sc := raslog.NewScanner(bytes.NewReader(data))
	var evs []raslog.Event
	for sc.Scan() {
		evs = append(evs, sc.Event())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return &raslog.Log{Name: "backfill", Events: evs}
}

// TestBackfillMatchesDirectIngest is the backfill acceptance test: a
// raw text log fed through Backfill (parallel parse, ordered submit,
// many chunk seams) must leave the service in exactly the state direct
// in-order ingest of the same events leaves it.
func TestBackfillMatchesDirectIngest(t *testing.T) {
	old := backfillChunkBytes
	backfillChunkBytes = 8 << 10
	defer func() { backfillChunkBytes = old }()

	l := genLog(t, 31, 8)
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 4*backfillChunkBytes {
		t.Fatalf("log text is %d bytes — too small to exercise chunk seams", buf.Len())
	}
	ref := referenceRun(t, parseLog(t, buf.Bytes()))
	if len(ref.Rules()) == 0 || len(ref.Warnings(0)) == 0 {
		t.Fatalf("reference run is trivial: %d rules, %d warnings",
			len(ref.Rules()), len(ref.Warnings(0)))
	}

	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Backfill(context.Background(), &buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != int64(len(l.Events)) {
		t.Fatalf("backfill fed %d lines, want %d", res.Lines, len(l.Events))
	}
	if res.Skipped != 0 {
		t.Fatalf("backfill skipped %d lines of a clean log", res.Skipped)
	}
	if st := s.Stats(); st.Backfill == nil || st.Backfill.Lines != res.Lines {
		t.Fatalf("Stats.Backfill = %+v, want %d lines", st.Backfill, res.Lines)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, s, ref)
}

// TestBackfillSkipsGarbage: mangled lines are counted and skipped, never
// fatal, and the surviving events still replay exactly.
func TestBackfillSkipsGarbage(t *testing.T) {
	l := genLog(t, 37, 4)
	var clean bytes.Buffer
	if _, err := raslog.WriteLog(&clean, l); err != nil {
		t.Fatal(err)
	}
	ref := referenceRun(t, parseLog(t, clean.Bytes()))

	var dirty bytes.Buffer
	garbage := 0
	sc := bufio.NewScanner(bytes.NewReader(clean.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for i := 0; sc.Scan(); i++ {
		if i%50 == 0 {
			fmt.Fprintf(&dirty, "### corrupted line %d ###\n", i)
			garbage++
		}
		dirty.Write(sc.Bytes())
		dirty.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Backfill(context.Background(), &dirty, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != int64(garbage) {
		t.Fatalf("skipped %d lines, want %d", res.Skipped, garbage)
	}
	if res.Lines != int64(len(l.Events)) {
		t.Fatalf("fed %d lines, want %d", res.Lines, len(l.Events))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, s, ref)
}

// gateReader blocks Read until released, then reports EOF — it holds a
// backfill open for exactly as long as the test needs.
type gateReader struct{ release chan struct{} }

func (g *gateReader) Read(p []byte) (int, error) {
	<-g.release
	return 0, io.EOF
}

// TestBackfillSingleton: one backfill at a time; a second concurrent
// call gets ErrBackfillBusy, and the slot frees once the first ends.
func TestBackfillSingleton(t *testing.T) {
	s, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	g := &gateReader{release: make(chan struct{})}
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Backfill(context.Background(), g, 1)
		errCh <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return s.backfill.active.Load() })
	if _, err := s.Backfill(context.Background(), strings.NewReader(""), 1); !errors.Is(err, ErrBackfillBusy) {
		t.Fatalf("concurrent Backfill: %v, want ErrBackfillBusy", err)
	}
	close(g.release)
	if err := <-errCh; err != nil {
		t.Fatalf("first backfill: %v", err)
	}
	if _, err := s.Backfill(context.Background(), strings.NewReader(""), 1); err != nil {
		t.Fatalf("backfill after slot freed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackfillCancel: a canceled context stops the run promptly with
// ctx.Err, not a hang.
func TestBackfillCancel(t *testing.T) {
	s, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &gateReader{release: make(chan struct{})}
	defer close(g.release)
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Backfill(ctx, g, 1)
		errCh <- err
	}()
	waitFor(t, 10*time.Second, func() bool { return s.backfill.active.Load() })
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled backfill: %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("backfill did not stop after cancel")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackfillOnStandbyRefused: a replica's stream comes from its
// leader alone.
func TestBackfillOnStandbyRefused(t *testing.T) {
	s := newStandby(t, t.TempDir())
	if _, err := s.Backfill(context.Background(), strings.NewReader(""), 1); !errors.Is(err, ErrStandby) {
		t.Fatalf("standby Backfill: %v, want ErrStandby", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackfillHTTP drives POST /backfill end to end, including the busy
// conflict.
func TestBackfillHTTP(t *testing.T) {
	l := genLog(t, 41, 4)
	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/backfill?workers=2", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /backfill: HTTP %d: %s", resp.StatusCode, b)
	}
	var res BackfillResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Lines != int64(len(l.Events)) || res.Skipped != 0 {
		t.Fatalf("POST /backfill fed %d lines (skipped %d), want %d (0)",
			res.Lines, res.Skipped, len(l.Events))
	}
}
