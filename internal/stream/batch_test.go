package stream

// Batched-ingest equivalence: a service fed through IngestBatch must be
// indistinguishable — rules, warnings, counters, clocks, history, and
// durable state — from one fed the same events one at a time. The batch
// path changes *when* events are committed (one WAL frame and fsync per
// released burst), never *what* the pipeline computes.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/raslog"
)

// batchSizes mixes degenerate (1), small, and large chunks so batch
// boundaries land at arbitrary stream positions.
var batchSizes = []int{1, 7, 64, 3, 256, 31}

func ingestBatches(t testing.TB, s *Service, events []raslog.Event) {
	t.Helper()
	ctx := context.Background()
	for i, k := 0, 0; i < len(events); k++ {
		n := batchSizes[k%len(batchSizes)]
		if i+n > len(events) {
			n = len(events) - i
		}
		batch := append([]raslog.Event(nil), events[i:i+n]...)
		m, err := s.IngestBatch(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		if m != n {
			t.Fatalf("IngestBatch accepted %d of %d", m, n)
		}
		i += n
	}
}

func TestIngestBatchMatchesSequential(t *testing.T) {
	l := genLog(t, 11, 8)
	ref := referenceRun(t, l)
	if len(ref.Rules()) == 0 || len(ref.Warnings(0)) == 0 {
		t.Fatalf("reference run is trivial: %d rules, %d warnings",
			len(ref.Rules()), len(ref.Warnings(0)))
	}

	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, s, l.Events)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, s, ref)
}

// TestIngestBatchDurableEquivalence runs the same comparison with a
// state directory on both sides, then restarts both services over their
// directories: the recovered states must also agree, proving the batch
// frames the group commit wrote replay exactly like per-event frames.
func TestIngestBatchDurableEquivalence(t *testing.T) {
	l := genLog(t, 13, 8)
	dirSeq, dirBatch := t.TempDir(), t.TempDir()

	seqSvc, err := New(durableConfig(dirSeq))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, seqSvc, l)
	if err := seqSvc.Close(); err != nil {
		t.Fatal(err)
	}

	batchSvc, err := New(durableConfig(dirBatch))
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches(t, batchSvc, l.Events)
	if err := batchSvc.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, batchSvc, seqSvc)

	seq2, err := New(durableConfig(dirSeq))
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := New(durableConfig(dirBatch))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batch2.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, batch2, seq2)
}

func TestIngestBatchClosedAndEmpty(t *testing.T) {
	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.IngestBatch(context.Background(), nil); n != 0 || err != nil {
		t.Fatalf("empty batch: n=%d err=%v, want 0, nil", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = s.IngestBatch(context.Background(), []raslog.Event{{Time: 1}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("IngestBatch after Close: err = %v, want ErrClosed", err)
	}
}
