package stream

// Race-focused test: concurrent HTTP ingestion, stats/warnings polling,
// and retrain swaps all at once. Run under the race detector
// (`go test -race ./internal/stream/...`, part of `make verify`) to check
// the lock-free predictor swap and the counter paths.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/raslog"
)

func TestConcurrentIngestAndRetrainSwap(t *testing.T) {
	l := genLog(t, 11, 12)
	cfg := Defaults()
	cfg.InitialTrain = 2 * week
	cfg.RetrainEvery = 2 * week
	cfg.TrainWindow = 6 * week
	cfg.QueueLen = 64 // small queues: exercise backpressure
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	// Split the log into many chunks posted from several goroutines.
	// Chunks interleave arbitrarily, so most of the stream lands beyond
	// the reorder tolerance — that's fine: this test is about data-race
	// freedom and accounting, not prediction quality.
	const posters = 4
	chunks := make([][]byte, 0, 64)
	for w := 0; w < l.Weeks(); w++ {
		wk := l.WeekSlice(w)
		for len(wk) > 0 {
			n := 512
			if n > len(wk) {
				n = len(wk)
			}
			var buf bytes.Buffer
			if _, err := raslog.WriteLog(&buf, &raslog.Log{Events: wk[:n]}); err != nil {
				t.Fatal(err)
			}
			chunks = append(chunks, buf.Bytes())
			wk = wk[n:]
		}
	}

	var wg sync.WaitGroup
	var accepted int64
	var acceptedMu sync.Mutex
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(chunks); i += posters {
				resp, err := http.Post(srv.URL+"/ingest", "text/plain", bytes.NewReader(chunks[i]))
				if err != nil {
					t.Error(err)
					return
				}
				var out ingestResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				acceptedMu.Lock()
				accepted += int64(out.Accepted)
				acceptedMu.Unlock()
			}
		}(p)
	}

	// Pollers hammer the read endpoints while ingestion and retraining
	// are running.
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				for _, path := range []string{"/stats", "/warnings?n=20", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err == nil {
						resp.Body.Close()
					}
				}
				s.Warnings(5)
				s.Rules()
				s.Stats()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// A manual retrainer competes with the scheduled ones for the swap.
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			resp, err := http.Post(srv.URL+"/retrain", "", nil)
			if err == nil {
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stopPoll)
	pollWG.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Ingested != accepted || st.Ingested != int64(l.Len()) {
		t.Errorf("ingested %d, accepted %d, log %d — accounting mismatch",
			st.Ingested, accepted, l.Len())
	}
	if st.Sequenced+st.LateDropped != st.Ingested {
		t.Errorf("sequenced %d + late %d != ingested %d",
			st.Sequenced, st.LateDropped, st.Ingested)
	}
	if st.Processed > st.AfterTemporal || st.AfterTemporal > st.Sequenced {
		t.Errorf("filter funnel violated: %d processed, %d after temporal, %d sequenced",
			st.Processed, st.AfterTemporal, st.Sequenced)
	}
	// History must still be time-sorted: the predictor's core invariant.
	var prev int64 = -1
	for _, te := range s.history {
		if te.Time < prev {
			t.Fatalf("history out of order after concurrent ingest: %d after %d", te.Time, prev)
		}
		prev = te.Time
	}
}
