package stream

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/raslog"
)

// newStandby builds a standby replica service over dir with the same
// deterministic configuration the recovery tests use.
func newStandby(t *testing.T, dir string) *Service {
	t.Helper()
	cfg := durableConfig(dir)
	cfg.Standby = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drainTo waits until the leader has pulled everything it will pull out
// of the intake queue (events inside the reorder tolerance stay buffered
// and are lost on a kill), then returns the durable sequence count.
func drainTo(t *testing.T, s *Service, n int) uint64 {
	t.Helper()
	waitFor(t, 30*time.Second, func() bool {
		st := s.Stats()
		return st.Sequenced+st.LateDropped+int64(st.Queues.Reorder) == int64(n)
	})
	return uint64(s.Stats().Sequenced)
}

// waitCaughtUp waits until the replica has replicated every record the
// leader made durable.
func waitCaughtUp(t *testing.T, standby *Service, durable uint64) {
	t.Helper()
	waitFor(t, 30*time.Second, func() bool {
		st := standby.Stats()
		return st.Standby != nil && st.Standby.NextSeq == durable
	})
}

// TestFollowerPromotionEquivalence is the failover acceptance test: a
// replica that tailed the leader's WAL, was promoted after the leader
// died, and then saw the rest of the stream must end byte-identical to a
// single node that ingested the whole stream uninterrupted — the same
// contract crash-recovery honors, proven over the HTTP replication path.
func TestFollowerPromotionEquivalence(t *testing.T) {
	l := genLog(t, 11, 8)
	events := l.Events
	ref := referenceRun(t, l)
	if len(ref.Rules()) == 0 || len(ref.Warnings(0)) == 0 {
		t.Fatalf("reference run is trivial: %d rules, %d warnings — test would prove nothing",
			len(ref.Rules()), len(ref.Warnings(0)))
	}

	leader, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewMux(leader))
	defer srv.Close()

	standby := newStandby(t, t.TempDir())
	if _, err := NewFollower(standby, FollowerConfig{Leader: srv.URL, ID: "s1", Poll: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ssrv := httptest.NewServer(NewMux(standby))
	defer ssrv.Close()

	// A standby refuses writes: ErrStandby in-process, 503 + Retry-After
	// over HTTP (the same resume contract as a restarting daemon).
	if err := standby.Ingest(context.Background(), events[0]); !errors.Is(err, ErrStandby) {
		t.Fatalf("standby Ingest: %v, want ErrStandby", err)
	}
	var line bytes.Buffer
	if _, err := raslog.WriteLog(&line, &raslog.Log{Events: events[:1]}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ssrv.URL+"/ingest", "text/plain", bytes.NewReader(line.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /ingest on standby: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("standby 503 is missing Retry-After")
	}
	if st := standby.Stats(); st.Role != "standby" {
		t.Fatalf("standby role %q, want standby", st.Role)
	}

	// Feed most of the stream, then kill the leader with the rest of it
	// still unseen: the promoted replica has to carry the stream forward.
	kill := 5 * len(events) / 6
	ingestAll(t, leader, &raslog.Log{Name: l.Name, Events: events[:kill]})
	durable := drainTo(t, leader, kill)
	waitCaughtUp(t, standby, durable)
	if lag := standby.Stats().Standby.LagSeq; lag != 0 {
		t.Errorf("replica lag %d after catch-up, want 0", lag)
	}

	// kill -9: the leader's store is abandoned mid-flight, the reorder
	// buffer's tail dies with it, and the listener goes away.
	srv.Close()
	leader.crash()

	// Promote over the replica's own HTTP surface (stops the pull loop
	// through the registered hook, then flips the role).
	resp, err = http.Post(ssrv.URL+"/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /promote: HTTP %d", resp.StatusCode)
	}
	if standby.Standby() {
		t.Fatal("service still reports standby after promotion")
	}
	st := standby.Stats()
	if st.Role != "leader" {
		t.Fatalf("promoted role %q, want leader", st.Role)
	}
	if st.Standby == nil || st.Standby.Promotions != 1 {
		t.Fatalf("promoted Stats.Standby = %+v, want promotions 1", st.Standby)
	}
	// Promotion is idempotent.
	if err := standby.Promote(); err != nil {
		t.Fatalf("second Promote: %v", err)
	}

	// Per-record flush and an in-order feed mean sequence i is input
	// index i, so resuming the stream at the replicated position covers
	// both the never-ingested tail and the reorder buffer's losses.
	ingestAll(t, standby, &raslog.Log{Name: l.Name, Events: events[durable:]})
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, standby, ref)
}

// TestFollowerRestartResumes kills the replica itself: a follower crash
// must recover from its own WAL prefix and resume pulling mid-segment
// from its durable end, and still promote byte-identical.
func TestFollowerRestartResumes(t *testing.T) {
	l := genLog(t, 23, 8)
	events := l.Events
	ref := referenceRun(t, l)

	leader, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewMux(leader))
	defer srv.Close()

	sdir := t.TempDir()
	s1 := newStandby(t, sdir)
	f1, err := NewFollower(s1, FollowerConfig{Leader: srv.URL, ID: "s1", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	half := len(events) / 2
	ingestAll(t, leader, &raslog.Log{Name: l.Name, Events: events[:half]})
	durable1 := drainTo(t, leader, half)
	waitCaughtUp(t, s1, durable1)
	f1.Stop()
	if !s1.Standby() {
		t.Fatal("Stop promoted the replica; it must stay a standby")
	}
	s1.crash()

	// The leader moves on while the replica is down.
	ingestAll(t, leader, &raslog.Log{Name: l.Name, Events: events[half:]})
	durable2 := drainTo(t, leader, len(events))

	s2 := newStandby(t, sdir)
	if s2.next != durable1 {
		t.Fatalf("replica recovered to seq %d, want its replicated prefix %d", s2.next, durable1)
	}
	f2, err := NewFollower(s2, FollowerConfig{Leader: srv.URL, ID: "s1", Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, s2, durable2)
	if err := f2.Promote(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s2, &raslog.Log{Name: l.Name, Events: events[durable2:]})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, s2, ref)
}

// TestFollowerAutoPromotes pins the unattended failover path: once the
// leader has been unreachable past PromoteAfter, the replica promotes
// itself and starts accepting writes.
func TestFollowerAutoPromotes(t *testing.T) {
	l := genLog(t, 29, 4)
	leader, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewMux(leader))
	defer srv.Close()

	standby := newStandby(t, t.TempDir())
	if _, err := NewFollower(standby, FollowerConfig{
		Leader: srv.URL, Poll: 5 * time.Millisecond, PromoteAfter: 150 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	ingestAll(t, leader, l)
	durable := drainTo(t, leader, len(l.Events))
	waitCaughtUp(t, standby, durable)

	srv.Close()
	leader.crash()
	waitFor(t, 10*time.Second, func() bool { return !standby.Standby() })
	st := standby.Stats()
	if st.Role != "leader" || st.Standby == nil || st.Standby.Promotions != 1 {
		t.Fatalf("after auto-promotion: role %q, standby %+v", st.Role, st.Standby)
	}
	// The promoted replica accepts writes again.
	if err := standby.Ingest(context.Background(), l.Events[len(l.Events)-1]); err != nil {
		t.Fatalf("ingest after auto-promotion: %v", err)
	}
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALEndpointsRequireStateDir pins the serving side for a
// memory-only service: no durable state, no segments to ship.
func TestWALEndpointsRequireStateDir(t *testing.T) {
	s, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/wal/segments")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /wal/segments without state dir: HTTP %d, want 404", resp.StatusCode)
	}
	// Promoting a plain leader is a no-op, not an error.
	if err := s.Promote(); err != nil {
		t.Fatalf("Promote on a leader: %v", err)
	}
}
