package stream

// Historical backfill (DESIGN.md §14): feed a multi-gigabyte raw text
// log through the live pipeline with bounded memory, parsing in parallel
// but submitting in file order, behind live traffic at lower priority.
//
// Shape: a reader goroutine slices the input into ~1 MiB chunks on line
// boundaries; a bounded worker pool parses each chunk (ParseLineBytes is
// a few hundred ns/line with an interner, so a handful of workers
// saturate disk read speed); the caller's goroutine merges the parsed
// chunks back in order and hands them to IngestBatch. In-flight memory
// is capped by the channel depths — a fixed number of chunks exist at
// once no matter how large the input — and ordering is preserved because
// chunks are *submitted* in order even though they *parse* out of order.
//
// Priority: before each submission the merger yields while the sequencer
// queue is busy with live traffic, and ErrSaturated backs off instead of
// hammering; the yield is time-bounded, so backfill degrades to a slow
// trickle under sustained live load rather than starving forever.
// Backfilled events enter the same reorder/late-drop discipline as any
// ingest — history older than the live watermark minus the reorder
// tolerance is late-dropped by design (run backfill before or alongside
// traffic from the same epoch; see README).

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/raslog"
)

// ErrBackfillBusy is returned by Backfill while another backfill runs;
// one at a time keeps the memory bound and the ordering story simple.
var ErrBackfillBusy = errors.New("stream: a backfill is already running")

// backfillChunkBytes is the nominal chunk size the reader slices the
// input into (extended to the next line boundary). A variable so tests
// can shrink it and force many chunk seams on a small input.
var backfillChunkBytes = 1 << 20

// backfillState tracks the singleton run (Service.backfill).
type backfillState struct {
	active atomic.Bool
	ran    atomic.Bool
}

// BackfillInfo reports backfill progress in Stats (nil until one runs).
type BackfillInfo struct {
	Active bool `json:"active"`
	// Lines counts events fed to the pipeline across all runs; Skipped
	// the lines that failed to parse.
	Lines   int64 `json:"lines"`
	Skipped int64 `json:"skipped"`
}

func (s *Service) backfillInfo() *BackfillInfo {
	if !s.backfill.ran.Load() && !s.backfill.active.Load() {
		return nil
	}
	return &BackfillInfo{
		Active:  s.backfill.active.Load(),
		Lines:   s.m.backfillLines.Value(),
		Skipped: s.m.backfillSkipped.Value(),
	}
}

// BackfillResult summarizes one completed Backfill call.
type BackfillResult struct {
	Lines    int64         `json:"lines"`
	Skipped  int64         `json:"skipped"`
	Duration time.Duration `json:"-"`
	// DurationMs mirrors Duration for the JSON response.
	DurationMs int64 `json:"duration_ms"`
}

// parsedChunk carries one chunk's parse result back to the merger.
type parsedChunk struct {
	events  []raslog.Event
	skipped int64
}

// backfillChunk is one slice of the input: raw bytes in, parse result
// out. The out channel has capacity 1, so a worker never blocks on a
// merger that has moved on (cancellation).
type backfillChunk struct {
	data []byte
	out  chan parsedChunk
}

// Backfill streams a raw text log (the raslog text codec, one event per
// line) from r into the pipeline. It blocks until the whole input is
// ingested or ctx/an error stops it, returning how many lines were fed
// and skipped. Unparseable lines are counted and skipped, never fatal —
// a decade-old log with a few mangled lines should still backfill.
// workers <= 0 means half the CPUs (min 1). Standby services refuse
// (ErrStandby): a replica's stream comes from its leader alone.
func (s *Service) Backfill(ctx context.Context, r io.Reader, workers int) (BackfillResult, error) {
	if s.standby.Load() {
		return BackfillResult{}, ErrStandby
	}
	if !s.backfill.active.CompareAndSwap(false, true) {
		return BackfillResult{}, ErrBackfillBusy
	}
	defer s.backfill.active.Store(false)
	s.backfill.ran.Store(true)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}

	t0 := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffer the source so the line-seam byte reads after each chunk stay
	// cheap regardless of what r is (a raw *os.File, an HTTP body).
	br := bufio.NewReaderSize(r, 64<<10)

	var (
		work    = make(chan *backfillChunk, workers)
		orderq  = make(chan *backfillChunk, 2*workers)
		readErr error
	)
	// Reader: slice on line boundaries. Every chunk enters orderq (the
	// merge order) before work (the parse queue); total in-flight chunks
	// are bounded by the channel capacities, which is the memory bound.
	go func() {
		defer close(work)
		defer close(orderq)
		for {
			buf := make([]byte, backfillChunkBytes)
			n, err := io.ReadFull(br, buf)
			buf = buf[:n]
			if err == nil {
				rest := readLine(br)
				buf = append(buf, rest...)
			}
			if n > 0 {
				c := &backfillChunk{data: buf, out: make(chan parsedChunk, 1)}
				select {
				case orderq <- c:
				case <-ctx.Done():
					return
				}
				select {
				case work <- c:
				case <-ctx.Done():
					return
				}
			}
			if err != nil {
				if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
					readErr = err
				}
				return
			}
		}
	}()
	for i := 0; i < workers; i++ {
		go backfillWorker(work)
	}

	// Merger: in chunk order, yield to live traffic, then submit. The
	// merger selects on ctx itself: the reader goroutine may be parked
	// inside r.Read (where cancellation cannot reach it) and so never
	// close orderq — it unblocks and exits whenever r next returns.
	finish := func(res BackfillResult, err error) (BackfillResult, error) {
		res.Duration = time.Since(t0)
		res.DurationMs = res.Duration.Milliseconds()
		return res, err
	}
	var res BackfillResult
	for {
		var c *backfillChunk
		select {
		case got, ok := <-orderq:
			if !ok {
				if readErr != nil {
					return finish(res, fmt.Errorf("stream: backfill read: %w", readErr))
				}
				return finish(res, ctx.Err())
			}
			c = got
		case <-ctx.Done():
			return finish(res, ctx.Err())
		}
		var pc parsedChunk
		select {
		case pc = <-c.out:
		case <-ctx.Done():
			// The chunk entered orderq but cancellation cut the reader off
			// before the work send: no worker will ever parse it.
			return finish(res, ctx.Err())
		}
		res.Skipped += pc.skipped
		s.m.backfillSkipped.Add(pc.skipped)
		events := pc.events
		for len(events) > 0 {
			s.backfillYield(ctx)
			n := len(events)
			if n > ingestBatchChunk {
				n = ingestBatchChunk
			}
			m, err := s.IngestBatch(ctx, events[:n])
			res.Lines += int64(m)
			s.m.backfillLines.Add(int64(m))
			if errors.Is(err, ErrSaturated) {
				continue // yield loop above backs off before the retry
			}
			if err != nil {
				return finish(res, fmt.Errorf("stream: backfill: %w", err))
			}
			events = events[n:]
		}
	}
}

// backfillYield holds backfill submissions back while live traffic keeps
// the sequencer queue busy. Time-bounded: after ~100ms of sustained
// occupancy the merger submits anyway, so backfill trickles under load
// instead of starving.
func (s *Service) backfillYield(ctx context.Context) {
	threshold := s.cfg.QueueLen / 4
	for i := 0; i < 50 && len(s.seqCh) > threshold; i++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// backfillWorker parses chunks off the work queue. Each worker keeps its
// own interner so repeated vocabulary parses allocation-free.
func backfillWorker(work <-chan *backfillChunk) {
	in := raslog.NewInterner()
	for c := range work {
		var pc parsedChunk
		pc.events = make([]raslog.Event, 0, 4096)
		data := c.data
		for len(data) > 0 {
			var line []byte
			if i := bytes.IndexByte(data, '\n'); i >= 0 {
				line, data = data[:i], data[i+1:]
			} else {
				line, data = data, nil
			}
			if len(line) == 0 {
				continue
			}
			e, err := raslog.ParseLineBytes(line, in)
			if err != nil {
				pc.skipped++
				continue
			}
			pc.events = append(pc.events, e)
		}
		c.data = nil
		c.out <- pc
	}
}

// readLine reads up to and including the next '\n' from r one byte at a
// time (it runs once per megabyte, on the chunk seam).
func readLine(r io.Reader) []byte {
	var out []byte
	var b [1]byte
	for {
		n, err := r.Read(b[:])
		if n > 0 {
			out = append(out, b[0])
			if b[0] == '\n' {
				return out
			}
		}
		if err != nil {
			return out
		}
	}
}
