package stream

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/raslog"
)

// settle waits until the asynchronous pipeline quiesces: counters stable
// over several polls and no retrain in flight. The reorder buffer
// legitimately withholds the last ReorderWindow of stream time until
// Close, so "settled" does not mean "fully drained".
func settle(t testing.TB, s *Service) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var prev Stats
	stable := 0
	for stable < 3 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline did not settle in time")
		}
		st := s.Stats()
		if st.Ingested == prev.Ingested && st.Sequenced == prev.Sequenced &&
			st.Processed == prev.Processed && !st.Retraining {
			stable++
		} else {
			stable = 0
		}
		prev = st
		time.Sleep(25 * time.Millisecond)
	}
	return prev
}

// TestStatsMetricsConsistency ingests a known out-of-order stream and
// checks, at quiescence, that the counter identities hold and that GET
// /metrics reports the exact numbers Stats() does — both are views over
// the same registry, so they can never disagree.
func TestStatsMetricsConsistency(t *testing.T) {
	l := genLog(t, 11, 6)
	ev := append([]raslog.Event(nil), l.Events...)
	// Swap adjacent pairs: a modestly out-of-order arrival stream the
	// reorder buffer must restore.
	for i := 0; i+1 < len(ev); i += 2 {
		ev[i], ev[i+1] = ev[i+1], ev[i]
	}

	cfg := Defaults()
	cfg.Policy = engine.Whole
	cfg.InitialTrain = 10000 * week // no retrain: isolate the counting
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, e := range ev {
		if err := s.Ingest(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
	// A straggler from right after the stream start is weeks beyond the
	// reorder tolerance by now: it must be dropped and counted, never
	// silently lost from the identities.
	stale := raslog.Event{Time: l.Start() + 1, Location: "LSTALE", Entry: "stale",
		Facility: raslog.Kernel, Severity: raslog.Info}
	if err := s.Ingest(ctx, stale); err != nil {
		t.Fatal(err)
	}

	st := settle(t, s)
	if st.LateDropped < 1 {
		t.Fatal("stream produced no late drops; the identity test needs the drop path exercised")
	}
	if st.Queues.Sequencer != 0 {
		t.Errorf("sequencer queue still holds %d events after settling", st.Queues.Sequencer)
	}
	buffered := int64(st.Queues.Reorder)
	if st.Ingested != st.Sequenced+st.LateDropped+buffered {
		t.Errorf("identity violated: ingested %d != sequenced %d + dropped %d + buffered %d",
			st.Ingested, st.Sequenced, st.LateDropped, buffered)
	}
	if want := 1 - float64(st.Processed)/float64(st.Sequenced); st.CompressionRate != want {
		t.Errorf("CompressionRate = %v, want 1 - %d/%d = %v",
			st.CompressionRate, st.Processed, st.Sequenced, want)
	}

	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obsv.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obsv.TextContentType)
	}
	samples, err := obsv.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid text exposition: %v", err)
	}
	checks := map[string]float64{
		"stream_ingested_total":       float64(st.Ingested),
		"stream_sequenced_total":      float64(st.Sequenced),
		"stream_late_dropped_total":   float64(st.LateDropped),
		"stream_ingest_rejected_total": float64(st.Rejected),
		"stream_after_temporal_total": float64(st.AfterTemporal),
		"stream_processed_total":      float64(st.Processed),
		"stream_fatals_total":         float64(st.Fatals),
		"stream_warnings_total":       float64(st.WarningsTotal),
		"stream_reorder_depth":        float64(st.Queues.Reorder),
		"stream_rules":                float64(st.Rules),
		"stream_start_ms":             float64(st.StreamStart),
		"stream_watermark_ms":         float64(st.Watermark),
		"stream_next_retrain_ms":      float64(st.NextRetrain),
		"stream_compression_rate":     st.CompressionRate,
		"stream_retraining":           0,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Errorf("/metrics is missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v via /metrics, %v via Stats()", name, got, want)
		}
	}

	// After Close the reorder buffer flushes: the identity must close to
	// zero buffered.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Queues.Reorder != 0 {
		t.Errorf("reorder depth = %d after Close, want 0", st.Queues.Reorder)
	}
	if st.Ingested != st.Sequenced+st.LateDropped {
		t.Errorf("identity violated after Close: ingested %d != sequenced %d + dropped %d",
			st.Ingested, st.Sequenced, st.LateDropped)
	}
}

// TestMetricsEndpointCoverage is the acceptance check for the /metrics
// endpoint: after streaming a log through HTTP and forcing a retrain, the
// exposition must parse and cover every pipeline stage (counters and
// latencies), the reorder depth, and the training timings + rule churn.
func TestMetricsEndpointCoverage(t *testing.T) {
	l := genLog(t, 5, 6)
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week // retrain only on demand
	cfg.Shards = 2
	s, srv := newTestServer(t, cfg)
	postIngest(t, srv.URL, encodeLog(t, l))
	settle(t, s)

	resp, err := http.Post(srv.URL+"/retrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /retrain = %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	samples, err := obsv.ParseText(mresp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid text exposition: %v", err)
	}

	// Every stage boundary counted, every stage latency observed.
	positive := []string{
		"stream_ingested_total",
		"stream_sequenced_total",
		"stream_after_temporal_total",
		"stream_processed_total",
		"stream_fatals_total",
		`stream_stage_latency_seconds_count{stage="sequencer"}`,
		`stream_stage_latency_seconds_count{stage="shard"}`,
		`stream_stage_latency_seconds_count{stage="collector"}`,
		"train_passes_total",
		"train_duration_seconds_count",
		"train_revise_duration_seconds_count",
		`train_learner_duration_seconds_count{learner="association"}`,
		`train_learner_duration_seconds_count{learner="statistical"}`,
		`train_learner_duration_seconds_count{learner="distribution"}`,
		"train_rules_added_total", // first pass: every rule is new
		"train_events",
		"train_repo_rules",
		"stream_rules",
		// The on-demand retrain above was the first pass: a full rebuild
		// of the incremental sufficient statistics, counted as such.
		"train_incr_applied_events_total",
		"train_incr_rebuilds_total",
		"train_incr_advance_duration_seconds_count",
		`train_pass_duration_seconds_count{mode="full"}`,
	}
	for _, name := range positive {
		if v, ok := samples[name]; !ok {
			t.Errorf("/metrics is missing %s", name)
		} else if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// Present with any value (possibly zero at this point).
	present := []string{
		"stream_late_dropped_total",
		"stream_reorder_depth",
		"stream_warnings_total",
		"stream_ingest_rejected_total",
		`stream_ingest_backpressure_seconds_bucket{le="+Inf"}`,
		"train_errors_total",
		"train_incr_expired_events_total",
		"train_rules_unchanged_total",
		"train_rules_removed_total",
		`stream_queue_depth{queue="sequencer"}`,
		`stream_queue_depth{queue="collector"}`,
		`stream_queue_depth{queue="shard0"}`,
		`stream_queue_depth{queue="shard1"}`,
		`stream_stage_latency_seconds_bucket{stage="collector",le="+Inf"}`,
	}
	for _, name := range present {
		if _, ok := samples[name]; !ok {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}
