package stream

import "sync/atomic"

// RetrainLimiter bounds how many background training passes may run at
// once across every Service sharing the limiter. One process serving
// thousands of tenants (internal/fleet) would otherwise rebuild rules
// for all of them simultaneously whenever their schedules align — each
// pass is already CPU-parallel internally (Config.Parallelism), so the
// fleet-wide scheduler needs a queue, not more threads. A service whose
// pass is waiting for a slot keeps ingesting and predicting on its old
// rules; only the rebuild is deferred.
//
// Synchronous passes (SyncRetrain, WAL replay, TrainNow) bypass the
// limiter: they are serialized on their caller and must not block
// startup recovery behind a saturated fleet.
type RetrainLimiter struct {
	sem    chan struct{}
	active atomic.Int64
	peak   atomic.Int64
}

// NewRetrainLimiter returns a limiter admitting n concurrent passes
// (n < 1 is clamped to 1).
func NewRetrainLimiter(n int) *RetrainLimiter {
	if n < 1 {
		n = 1
	}
	return &RetrainLimiter{sem: make(chan struct{}, n)}
}

// Cap returns the admission bound.
func (l *RetrainLimiter) Cap() int { return cap(l.sem) }

// Active returns how many passes hold a slot right now.
func (l *RetrainLimiter) Active() int64 { return l.active.Load() }

// Peak returns the high-water mark of concurrent passes — the number the
// fleet tests (and the fleet_retrain_peak gauge) assert the bound with.
func (l *RetrainLimiter) Peak() int64 { return l.peak.Load() }

func (l *RetrainLimiter) acquire() {
	l.sem <- struct{}{}
	a := l.active.Add(1)
	for {
		p := l.peak.Load()
		if a <= p || l.peak.CompareAndSwap(p, a) {
			return
		}
	}
}

func (l *RetrainLimiter) release() {
	l.active.Add(-1)
	<-l.sem
}
