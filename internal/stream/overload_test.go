package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/raslog"
)

// saturatedConfig is a pipeline with almost no internal buffering and a
// short admission wait, so a stalled collector saturates Ingest within a
// handful of events.
func saturatedConfig() Config {
	cfg := Defaults()
	cfg.Policy = engine.Whole
	cfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	cfg.Shards = 1
	cfg.QueueLen = 1
	cfg.ReorderWindow = time.Millisecond // release (and backpressure) immediately
	cfg.AdmitWait = 50 * time.Millisecond
	return cfg
}

// TestSaturationRejectsBoundedAndLosslessly drives Ingest past capacity
// against a deliberately wedged collector (the test holds s.mu, which the
// collector needs on its very first event) and pins the overload
// contract:
//
//	(a) rejection is bounded-time — ErrSaturated lands within AdmitWait
//	    plus scheduling slack, never an unbounded block on ctx;
//	(b) stream_ingest_rejected_total counts exactly the rejections;
//	(c) no admitted event is dropped or reordered — after the stall
//	    clears, the drained history is byte-equal to the batch
//	    preprocessor over exactly the accepted events, and the
//	    late-drop/overflow counters stay zero.
//
// Before bounded-wait admission this test hung: Ingest had no timeout
// arm and blocked on a background context forever.
func TestSaturationRejectsBoundedAndLosslessly(t *testing.T) {
	cfg := saturatedConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The collector takes s.mu on its first event (advance sets the
	// stream clock) and for every kept event after that; holding it here
	// freezes the pipeline deterministically.
	s.mu.Lock()
	stalled := true
	defer func() {
		if stalled {
			s.mu.Unlock()
		}
	}()

	ctx := context.Background()
	accepted := raslog.NewLog("accepted", 600)
	i, rejections := 0, 0
	for rejections < 3 {
		if i >= 1000 {
			t.Fatal("pipeline absorbed 1000 events without saturating")
		}
		e := pipelineEvent(i)
		t0 := time.Now()
		err := s.Ingest(ctx, e)
		elapsed := time.Since(t0)
		if err == nil {
			accepted.Append(e)
			i++
			continue
		}
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("Ingest error = %v, want ErrSaturated", err)
		}
		if elapsed < cfg.AdmitWait {
			t.Fatalf("rejected after %v, before AdmitWait %v", elapsed, cfg.AdmitWait)
		}
		if max := cfg.AdmitWait + 3*time.Second; elapsed > max {
			t.Fatalf("rejection took %v, want bounded by %v", elapsed, max)
		}
		rejections++
		// Retry the same event next round: a rejected event must be
		// retryable without the service having half-consumed it.
	}

	// Clear the stall and feed the rest of the sequence, retrying
	// rejections, which must now succeed promptly.
	s.mu.Unlock()
	stalled = false
	for ; i < 500; i++ {
		e := pipelineEvent(i)
		for {
			if err := s.Ingest(ctx, e); err == nil {
				break
			} else if !errors.Is(err, ErrSaturated) {
				t.Fatal(err)
			}
		}
		accepted.Append(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Rejected != int64(rejections) {
		t.Errorf("Rejected = %d, want the %d observed rejections", st.Rejected, rejections)
	}
	if st.Ingested != int64(accepted.Len()) {
		t.Errorf("Ingested = %d, want %d accepted events", st.Ingested, accepted.Len())
	}
	if st.Sequenced != st.Ingested {
		t.Errorf("Sequenced = %d, want %d: an admitted event went missing", st.Sequenced, st.Ingested)
	}
	if st.LateDropped != 0 || st.ReorderOverflow != 0 {
		t.Errorf("late=%d overflow=%d, want 0/0 on an in-order accepted stream",
			st.LateDropped, st.ReorderOverflow)
	}

	// Byte-equivalence: the drained pipeline must have processed exactly
	// the accepted events, in order, through the same filter decisions as
	// the batch preprocessor.
	want := batchPreprocess(accepted, cfg.Filter)
	if len(s.history) != len(want) {
		t.Fatalf("history has %d events, batch preprocess %d", len(s.history), len(want))
	}
	for j := range want {
		if s.history[j].Event != want[j].Event || s.history[j].Class != want[j].Class ||
			s.history[j].Fatal != want[j].Fatal {
			t.Fatalf("history[%d] = %+v, want %+v", j, s.history[j], want[j])
		}
	}
}

// TestHTTPSaturationReturns429WithResume pins the HTTP face of overload:
// a saturated pipeline turns into 429 + Retry-After with the line-resume
// contract (Line = Accepted+1), stream_ingest_rejected_total equals the
// observed 429 count, and resuming from Line after the stall clears
// delivers every remaining event exactly once.
func TestHTTPSaturationReturns429WithResume(t *testing.T) {
	cfg := saturatedConfig()
	s, srv := newTestServer(t, cfg)

	const batchLines = 2500
	l := raslog.NewLog("feed", batchLines)
	for i := 0; i < batchLines; i++ {
		l.Append(pipelineEvent(i))
	}
	body := encodeLog(t, l)

	s.mu.Lock()
	stalled := true
	defer func() {
		if stalled {
			s.mu.Unlock()
		}
	}()

	status429 := 0

	// A big batch: some chunks are admitted before the pipeline wedges,
	// then the next chunk must come back 429 with the resume line.
	status, resp := postIngestBatch(t, srv.URL, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("batch against wedged pipeline: status %d, want 429 (resp %+v)", status, resp)
	}
	status429++
	if resp.Accepted >= batchLines {
		t.Fatalf("Accepted = %d, want < %d under saturation", resp.Accepted, batchLines)
	}
	if resp.Line != resp.Accepted+1 {
		t.Fatalf("Line = %d, want Accepted+1 = %d (resume contract)", resp.Line, resp.Accepted+1)
	}

	// The single-event endpoint rejects the same way, with Retry-After.
	extra := raslog.NewLog("extra", 1)
	extra.Append(pipelineEvent(batchLines))
	extraBody := encodeLog(t, extra)
	hresp, err := http.Post(srv.URL+"/ingest", "text/plain", bytes.NewReader(extraBody))
	if err != nil {
		t.Fatal(err)
	}
	var single ingestResponse
	if err := json.NewDecoder(hresp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("single ingest: status %d, want 429", hresp.StatusCode)
	}
	status429++
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	if single.Accepted != 0 || single.Line != 1 {
		t.Errorf("single 429: accepted=%d line=%d, want 0/1", single.Accepted, single.Line)
	}

	// Clear the stall and resume the batch from Line, then retry the
	// single event; everything lands exactly once.
	s.mu.Unlock()
	stalled = false
	lines := bytes.SplitAfter(body, []byte("\n"))
	remainder := bytes.Join(lines[resp.Line-1:], nil)
	for attempt := 0; ; attempt++ {
		status, r := postIngestBatch(t, srv.URL, remainder)
		if status == http.StatusOK {
			break
		}
		if status != http.StatusTooManyRequests || attempt > 100 {
			t.Fatalf("resume attempt %d: status %d (resp %+v)", attempt, status, r)
		}
		status429++
		remainder = bytes.Join(lines[r.Line-1:], nil)
		time.Sleep(10 * time.Millisecond)
	}
	if r := postIngest(t, srv.URL, extraBody); r.Accepted != 1 {
		t.Fatalf("retried single event: accepted = %d, want 1", r.Accepted)
	}

	// The newest event rides the reorder buffer until something newer
	// arrives; Close drains it.
	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Sequenced >= batchLines
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Sequenced != batchLines+1 {
		t.Errorf("Sequenced = %d, want %d", st.Sequenced, batchLines+1)
	}
	if st.Rejected != int64(status429) {
		t.Errorf("stream_ingest_rejected_total = %d, want the %d observed 429s", st.Rejected, status429)
	}
	if st.Ingested != batchLines+1 {
		t.Errorf("Ingested = %d, want %d (no duplicates from the resume)", st.Ingested, batchLines+1)
	}
	if st.LateDropped != 0 || st.ReorderOverflow != 0 {
		t.Errorf("late=%d overflow=%d, want 0/0: resume must not reorder", st.LateDropped, st.ReorderOverflow)
	}
}

// TestWarningsNotUnderServiceMu is the regression test for the
// warnings-ring lock split: reading warnings must never need the
// service mutex, so a collector (or retrain bookkeeping) holding s.mu
// cannot block /warnings readers — and, symmetrically, a warnings
// reader can never hold up the hot path. Before the split Warnings(n)
// locked s.mu and this test timed out.
func TestWarningsNotUnderServiceMu(t *testing.T) {
	cfg := saturatedConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.mu.Lock()
	done := make(chan struct{})
	go func() {
		s.Warnings(5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Warnings blocked behind the service mutex")
	}
	s.mu.Unlock()
}

// stallWriter is an http.ResponseWriter whose first Write parks until
// released — a firehose reader on a congested socket.
type stallWriter struct {
	release <-chan struct{}
	header  http.Header
}

func (w *stallWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *stallWriter) WriteHeader(int) {}
func (w *stallWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

// TestWarningsReaderDoesNotStallPipeline pins the end-to-end property:
// a /warnings reader stuck mid-response holds no service lock, so
// ingestion and collection keep advancing underneath it.
func TestWarningsReaderDoesNotStallPipeline(t *testing.T) {
	cfg := Defaults()
	cfg.Policy = engine.Whole
	cfg.InitialTrain = 1 << 40 * time.Millisecond
	cfg.ReorderWindow = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := s.Ingest(ctx, pipelineEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return s.Stats().Processed > 0 })

	release := make(chan struct{})
	defer close(release)
	parked := make(chan struct{})
	go func() {
		close(parked)
		s.handleWarnings(&stallWriter{release: release},
			httptest.NewRequest("GET", "/warnings?n=5", nil))
	}()
	<-parked

	before := s.Stats().Processed
	for i := 100; i < 400; i++ {
		if err := s.Ingest(ctx, pipelineEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return s.Stats().Processed > before })
}
