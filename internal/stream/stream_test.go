package stream

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/bgsim"
	"repro/internal/engine"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

const week = 7 * 24 * time.Hour

func genLog(t testing.TB, seed uint64, weeks int) *raslog.Log {
	t.Helper()
	g, err := bgsim.NewGenerator(bgsim.SDSC(seed).Scaled(weeks, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	l.SortByTime()
	return l
}

func ingestAll(t testing.TB, s *Service, l *raslog.Log) {
	t.Helper()
	ctx := context.Background()
	for _, e := range l.Events {
		if err := s.Ingest(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// batchPreprocess is what repro.Preprocess does: batch filter + tag.
func batchPreprocess(l *raslog.Log, f preprocess.Filter) []preprocess.TaggedEvent {
	filtered, _ := f.Apply(l)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	return z.Tag(filtered)
}

// TestPipelineMatchesBatch pins the concurrent pipeline (sequencer →
// shards → collector) to the batch preprocessor: on an in-order feed the
// accumulated history must equal Filter.Apply + Tag exactly, for any
// shard count.
func TestPipelineMatchesBatch(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				l := genLog(t, seed, 6)
				want := batchPreprocess(l, preprocess.Filter{Threshold: 300})

				cfg := Defaults()
				cfg.InitialTrain = 10000 * week // never train: isolate the filter path
				cfg.Shards = shards
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ingestAll(t, s, l)
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}

				got := s.history
				if len(got) != len(want) {
					t.Fatalf("pipeline kept %d events, batch kept %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("event %d: pipeline %+v != batch %+v", i, got[i], want[i])
					}
				}
				st := s.Stats()
				if st.LateDropped != 0 || st.Sequenced != int64(l.Len()) {
					t.Errorf("stats = %+v; want no late drops, %d sequenced", st, l.Len())
				}
			})
		}
	}
}

// TestRetrainsAndWarnsWhileStreaming drives the full service: ingesting a
// multi-week log must complete retrain cycles on the stream's own
// timeline, install rules, and emit warnings.
func TestRetrainsAndWarnsWhileStreaming(t *testing.T) {
	l := genLog(t, 7, 14)
	cfg := Defaults()
	cfg.InitialTrain = 4 * week
	cfg.RetrainEvery = 3 * week
	cfg.TrainWindow = 8 * week
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the training prefix, then wait for the first (background)
	// rule swap so the live span is guaranteed to be observed — without
	// this the test races the trainer on slow builds.
	split := l.Start() + 6*week.Milliseconds()
	ingestAll(t, s, &raslog.Log{Name: l.Name, Events: l.Window(l.Start(), split)})
	waitFor(t, 30*time.Second, func() bool { return s.Stats().Rules > 0 })
	ingestAll(t, s, &raslog.Log{Name: l.Name, Events: l.Window(split, l.End()+1)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if len(st.Retrains) < 2 {
		t.Fatalf("completed %d retrains over 14 weeks (initial 4w, every 3w); want >= 2; stats %+v",
			len(st.Retrains), st)
	}
	for _, r := range st.Retrains {
		if r.Err != "" {
			t.Errorf("retrain at %d failed: %s", r.At, r.Err)
		}
	}
	if st.Rules == 0 {
		t.Error("no rules installed after retraining")
	}
	if st.WarningsTotal == 0 {
		t.Error("no warnings emitted on a 14-week fatal-bearing log")
	}
	if got := s.Warnings(10); len(got) == 0 {
		t.Error("Warnings(10) is empty despite WarningsTotal > 0")
	}
	if st.CompressionRate < 0.5 {
		t.Errorf("compression rate %.2f; filter apparently not engaged", st.CompressionRate)
	}
}

// TestOutOfOrderTolerance checks the reorder buffer: shuffles within the
// tolerance are restored to time order; stale events beyond it are
// dropped and counted, never observed out of order.
func TestOutOfOrderTolerance(t *testing.T) {
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week
	cfg.ReorderWindow = time.Minute
	cfg.Filter = preprocess.Filter{} // keep everything: inspect raw order
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := int64(1_000_000_000_000)
	mk := func(sec int64, loc string) raslog.Event {
		return raslog.Event{Time: base + sec*1000, Location: loc, Entry: "e",
			Facility: raslog.Kernel, Severity: raslog.Info}
	}
	// 30 s swaps: within the 60 s tolerance.
	for _, sec := range []int64{0, 60, 30, 120, 90, 180, 150} {
		if err := s.Ingest(ctx, mk(sec, "L1")); err != nil {
			t.Fatal(err)
		}
	}
	// An hour-stale event: beyond tolerance once the watermark advances.
	if err := s.Ingest(ctx, mk(3600*2, "L1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(ctx, mk(1, "L2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.LateDropped != 1 {
		t.Errorf("late dropped = %d, want 1", st.LateDropped)
	}
	var prev int64 = -1
	for _, te := range s.history {
		if te.Time < prev {
			t.Fatalf("history out of order: %d after %d", te.Time, prev)
		}
		prev = te.Time
	}
	if len(s.history) != 8 {
		t.Errorf("history has %d events, want 8 (7 in-tolerance + 1 tail)", len(s.history))
	}
}

// TestIngestAfterClose verifies the intake gate.
func TestIngestAfterClose(t *testing.T) {
	s, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(context.Background(), raslog.Event{}); err != ErrClosed {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestTrainNowBeforeFirstEvent pins the empty-stream guard: before any
// event has reached the collector there is no history and no stream
// clock, so a manual retrain must be rejected cleanly — no junk failed
// record, no stuck in-flight flag.
func TestTrainNowBeforeFirstEvent(t *testing.T) {
	s, err := New(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.TrainNow(); !errors.Is(err, ErrNoEvents) {
		t.Fatalf("TrainNow before any event = %v, want ErrNoEvents", err)
	}
	st := s.Stats()
	if len(st.Retrains) != 0 {
		t.Errorf("rejected TrainNow left %d retrain records", len(st.Retrains))
	}
	if st.Retraining {
		t.Error("rejected TrainNow left the retraining flag set")
	}
}

// TestTrainNowAdvancesSchedule pins the manual-retrain accounting: a
// successful TrainNow counts against the stream-time schedule, so the
// next automatic pass runs one full cadence later instead of re-firing
// on near-identical data the moment the old boundary is crossed.
func TestTrainNowAdvancesSchedule(t *testing.T) {
	l := genLog(t, 5, 6)
	cfg := Defaults()
	cfg.InitialTrain = 7 * week // a 6-week log never reaches it on its own
	cfg.RetrainEvery = 4 * week
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, l)
	settle(t, s)

	before := s.Stats()
	rec, err := s.TrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if rec.At != before.Watermark+1 {
		t.Errorf("trained at %d, want watermark+1 = %d", rec.At, before.Watermark+1)
	}
	st := s.Stats()
	want := rec.At + cfg.RetrainEvery.Milliseconds()
	if st.NextRetrain != want {
		t.Fatalf("NextRetrain = %d after TrainNow, want %d (at + cadence); was %d",
			st.NextRetrain, want, before.NextRetrain)
	}
	if len(st.Retrains) != 1 || st.Retrains[0].At != rec.At {
		t.Fatalf("retrain history = %+v, want exactly the manual pass at %d", st.Retrains, rec.At)
	}

	// Cross the *original* InitialTrain boundary: with the schedule
	// advanced, no scheduled pass may fire on the data the manual pass
	// just consumed.
	bound := l.Start() + cfg.InitialTrain.Milliseconds()
	ctx := context.Background()
	mk := func(ms int64) raslog.Event {
		return raslog.Event{Time: ms, Location: "LX", Entry: "post",
			Facility: raslog.Kernel, Severity: raslog.Info}
	}
	if err := s.Ingest(ctx, mk(bound+1_000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(ctx, mk(bound+120_000)); err != nil { // pushes the first past the tolerance
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, func() bool { return s.Stats().Watermark >= bound+1_000 })
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if len(st.Retrains) > 1 || st.Retraining {
			t.Fatalf("scheduled pass re-fired right after TrainNow: %+v", st.Retrains)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if len(st.Retrains) != 1 {
		t.Fatalf("completed %d retrains, want only the manual one", len(st.Retrains))
	}
	if st.NextRetrain != want {
		t.Errorf("NextRetrain drifted to %d, want %d", st.NextRetrain, want)
	}
}

// TestSwapPredictorClampsAlarmSpacing pins the streaming half of the
// alarm-spacing rule: a service running a wider prediction window than
// the base W_P still spaces warnings at the base window, exactly like
// the offline engine (engine.ClampDedup).
func TestSwapPredictorClampsAlarmSpacing(t *testing.T) {
	l := genLog(t, 5, 6)
	for _, tc := range []struct{ windowSec, want int64 }{
		{engine.DefaultWindowSec, 0}, // base window: predictor default spacing
		{900, engine.DefaultWindowSec},
	} {
		cfg := Defaults()
		cfg.Params.WindowSec = tc.windowSec
		cfg.InitialTrain = 10000 * week // manual retrain only
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, s, l)
		settle(t, s)
		if _, err := s.TrainNow(); err != nil {
			t.Fatal(err)
		}
		pr := s.pr.Load()
		if pr == nil {
			t.Fatal("no predictor installed after TrainNow")
		}
		if pr.DedupWindowSec != tc.want {
			t.Errorf("WindowSec %d: DedupWindowSec = %d, want %d",
				tc.windowSec, pr.DedupWindowSec, tc.want)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaticPolicyTrainsOnce checks that Static trains at the initial
// boundary and then stops accumulating history.
func TestStaticPolicyTrainsOnce(t *testing.T) {
	l := genLog(t, 3, 10)
	cfg := Defaults()
	cfg.Policy = engine.Static
	cfg.InitialTrain = 3 * week
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, l)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Retrains) != 1 {
		t.Fatalf("static policy retrained %d times, want exactly 1", len(st.Retrains))
	}
	if len(s.history) != 0 {
		t.Errorf("static policy retained %d history events after training", len(s.history))
	}
}
