package stream

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/raslog"
)

// reorderEvent builds a minimal event with a distinct identity per index
// so no filter stage can merge two of them.
func reorderEvent(i int, tMs int64) raslog.Event {
	return raslog.Event{
		RecordID: int64(i),
		Time:     tMs,
		Location: fmt.Sprintf("R%02d-M0", i),
		Entry:    fmt.Sprintf("entry %d", i),
	}
}

// drainOrder feeds events in the given arrival order and returns the
// RecordIDs in the order the collector released them.
func drainOrder(t *testing.T, cfg Config, events []raslog.Event) []int64 {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, &raslog.Log{Events: events})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(s.history))
	for i, te := range s.history {
		out[i] = te.RecordID
	}
	return out
}

// TestReorderEqualTimestampsKeepArrivalOrder pins the sequencer's tie
// rule: events sharing a timestamp must be released in arrival order
// (a stable sort), regardless of what else is interleaved in the buffer.
func TestReorderEqualTimestampsKeepArrivalOrder(t *testing.T) {
	cfg := Defaults()
	cfg.Filter.Threshold = 0 // keep every event: the test reads history order
	cfg.InitialTrain = 10000 * week
	cfg.ReorderWindow = time.Minute

	const T = int64(1_000_000_000_000)
	arrival := []raslog.Event{
		reorderEvent(0, T+10), // arrives first but sorts after the tied run
		reorderEvent(1, T),
		reorderEvent(2, T),
		reorderEvent(3, T),
		reorderEvent(4, T+5),
		reorderEvent(5, T),    // same timestamp again, later arrival
		reorderEvent(6, T+10), // ties with RecordID 0, later arrival
	}
	got := drainOrder(t, cfg, arrival)
	want := []int64{1, 2, 3, 5, 4, 0, 6} // time-sorted; ties by arrival
	if len(got) != len(want) {
		t.Fatalf("released %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("release order %v, want %v (equal timestamps must keep arrival order)", got, want)
		}
	}
}

// TestReorderOverflowCountsExactlyOne pins the overflow accounting: an
// event forced out early by the buffer cap increments exactly one
// counter — late_dropped when it is already behind the emitted floor,
// reorder_overflow otherwise. Never both, never neither.
func TestReorderOverflowCountsExactlyOne(t *testing.T) {
	cfg := Defaults()
	cfg.Filter.Threshold = 0
	cfg.InitialTrain = 10000 * week
	cfg.ReorderWindow = time.Minute
	cfg.ReorderLimit = 4

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const T = int64(1_000_000_000_000)
	// Five in-tolerance events overfill the limit-4 buffer: the first
	// release is forced by the cap alone, while the event is still well
	// inside the 60 s tolerance.
	feed := []raslog.Event{
		reorderEvent(0, T+1000),
		reorderEvent(1, T+2000),
		reorderEvent(2, T+3000),
		reorderEvent(3, T+4000),
		reorderEvent(4, T+5000), // forces out RecordID 0 -> overflow
		reorderEvent(5, T+6000), // forces out RecordID 1 -> overflow
		reorderEvent(6, T+500),  // behind the emitted floor: forced out as late, NOT overflow
		reorderEvent(7, T+7000), // forces out RecordID 2 -> overflow
	}
	ingestAll(t, s, &raslog.Log{Events: feed})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.ReorderOverflow != 3 {
		t.Errorf("reorder_overflow = %d, want 3", st.ReorderOverflow)
	}
	if st.LateDropped != 1 {
		t.Errorf("late_dropped = %d, want 1", st.LateDropped)
	}
	if st.Sequenced != int64(len(feed))-1 {
		t.Errorf("sequenced = %d, want %d", st.Sequenced, len(feed)-1)
	}
	// Exactly-one invariant, aggregate form: every ingested event is
	// sequenced or late-dropped; overflow releases are a subset of the
	// sequenced, not a third bucket.
	if st.Ingested != st.Sequenced+st.LateDropped {
		t.Errorf("ingested %d != sequenced %d + late_dropped %d after drain",
			st.Ingested, st.Sequenced, st.LateDropped)
	}
	if st.ReorderOverflow > st.Sequenced {
		t.Errorf("reorder_overflow %d exceeds sequenced %d: overflow releases double-counted",
			st.ReorderOverflow, st.Sequenced)
	}

	// The released stream must still be time-sorted despite the forced
	// early releases.
	var prev int64 = -1 << 62
	for i, te := range s.history {
		if te.Time < prev {
			t.Fatalf("history not time-sorted at %d: %d after %d", i, te.Time, prev)
		}
		prev = te.Time
	}
}
