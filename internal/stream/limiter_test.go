package stream

import (
	"sync"
	"testing"
)

// TestRetrainLimiterBound hammers a cap-3 limiter from 32 goroutines and
// pins the invariants the fleet leans on: Active never exceeds the cap
// (checked inside the critical section), Peak records a true high-water
// mark, and everything drains back to zero.
func TestRetrainLimiterBound(t *testing.T) {
	lim := NewRetrainLimiter(3)
	if lim.Cap() != 3 {
		t.Fatalf("Cap() = %d, want 3", lim.Cap())
	}
	var wg sync.WaitGroup
	errs := make(chan int64, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lim.acquire()
				if a := lim.Active(); a > 3 {
					select {
					case errs <- a:
					default:
					}
				}
				lim.release()
			}
		}()
	}
	wg.Wait()
	select {
	case a := <-errs:
		t.Fatalf("Active() reached %d inside held slot, cap is 3", a)
	default:
	}
	if p := lim.Peak(); p < 1 || p > 3 {
		t.Errorf("Peak() = %d, want in [1,3]", p)
	}
	if a := lim.Active(); a != 0 {
		t.Errorf("Active() = %d after drain, want 0", a)
	}
}

// TestRetrainLimiterClamp pins the n<1 clamp.
func TestRetrainLimiterClamp(t *testing.T) {
	if c := NewRetrainLimiter(0).Cap(); c != 1 {
		t.Errorf("Cap() = %d for n=0, want 1", c)
	}
	if c := NewRetrainLimiter(-5).Cap(); c != 1 {
		t.Errorf("Cap() = %d for n=-5, want 1", c)
	}
}
