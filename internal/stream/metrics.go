package stream

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/obsv"
)

// stageBuckets spans per-event stage work: sub-microsecond filter hits up
// to multi-second stalls when backpressure blocks a send.
var stageBuckets = obsv.ExpBuckets(1e-6, 4, 12)

// metrics is the service's instrument set, registered on one obsv
// registry. Stats() reads the very same instruments GET /metrics
// exposes, so the JSON snapshot and the Prometheus view cannot disagree
// — and the regression tests for the counting bugs assert against both.
type metrics struct {
	reg *obsv.Registry

	// Pipeline counters, one per stage boundary.
	ingested        *obsv.Counter // accepted by Ingest
	sequenced       *obsv.Counter // released in order by the sequencer
	lateDropped     *obsv.Counter // beyond the reorder tolerance
	reorderOverflow *obsv.Counter // released early by the buffer cap, in tolerance
	afterTemporal   *obsv.Counter // survived the temporal filter (shards)
	processed       *obsv.Counter // survived the spatial filter (collector)
	fatals          *obsv.Counter
	warningsTotal   *obsv.Counter
	rejected        *obsv.Counter // admission timeouts (ErrSaturated / HTTP 429)

	// Durability instruments (all stay zero without a StateDir).
	walBytes        *obsv.Counter
	walErrors       *obsv.Counter
	snapshots       *obsv.Counter
	snapshotErrors  *obsv.Counter
	snapshotBytes   *obsv.Counter
	replayed        *obsv.Counter
	recoverySeconds *obsv.Gauge
	snapshotLatency *obsv.Histogram

	// Gauges. Stream-time values are milliseconds; streamStart is -1
	// until the first event, nextRetrain is -1 when no training is due
	// ever again (static policy after its one pass).
	reorderDepth *obsv.Gauge
	rules        *obsv.Gauge
	streamStart  *obsv.Gauge
	watermark    *obsv.Gauge
	nextRetrain  *obsv.Gauge

	// Replication + backfill instruments (DESIGN.md §14). The lag gauges
	// stay zero on a leader; the counters stay zero unless the feature ran.
	standbyLagSeq     *obsv.Gauge   // leader next_seq - replica next seq
	standbyLagSeconds *obsv.Gauge   // leader watermark - replica watermark
	promotions        *obsv.Counter // standby -> leader transitions
	backfillLines     *obsv.Counter // historical log lines fed by backfill
	backfillSkipped   *obsv.Counter // backfill lines that failed to parse

	// Per-stage latency: one observation per event per stage, including
	// any time blocked on the downstream channel (that is what makes
	// backpressure visible).
	seqLatency     *obsv.Histogram
	shardLatency   *obsv.Histogram
	collectLatency *obsv.Histogram
	// backpressure records admission slow-path waits: how long ingest
	// callers stalled on a full sequencer queue, whether the slot
	// eventually opened or the wait timed out into a rejection. The fast
	// path (queue had room) observes nothing.
	backpressure *obsv.Histogram

	// training carries the live Table 5: per-learner durations, reviser
	// time, retrain duration, rule churn (shared with the offline engine).
	training *engine.TrainingMetrics
}

// newMetrics registers every instrument on a fresh registry. Called after
// the channels exist: the queue-depth gauges read them at scrape time.
func newMetrics(s *Service) *metrics {
	reg := obsv.NewRegistry()
	m := &metrics{
		reg: reg,
		ingested: reg.Counter("stream_ingested_total",
			"Events accepted by Ingest."),
		sequenced: reg.Counter("stream_sequenced_total",
			"Events released in time order by the sequencer."),
		lateDropped: reg.Counter("stream_late_dropped_total",
			"Events dropped for arriving beyond the reorder tolerance."),
		reorderOverflow: reg.Counter("stream_reorder_overflow_total",
			"Events released early by the reorder-buffer cap while still inside the tolerance."),
		afterTemporal: reg.Counter("stream_after_temporal_total",
			"Events surviving the temporal filter (shard stage)."),
		processed: reg.Counter("stream_processed_total",
			"Events surviving the spatial filter and fed to the predictor."),
		fatals: reg.Counter("stream_fatals_total",
			"Fatal events observed after filtering."),
		warningsTotal: reg.Counter("stream_warnings_total",
			"Failure warnings emitted by the live predictor."),
		rejected: reg.Counter("stream_ingest_rejected_total",
			"Ingest calls rejected after waiting AdmitWait on a saturated pipeline (HTTP 429s)."),
		reorderDepth: reg.Gauge("stream_reorder_depth",
			"Events currently held in the sequencer's reorder buffer."),
		rules: reg.Gauge("stream_rules",
			"Rules in the live predictor."),
		streamStart: reg.Gauge("stream_start_ms",
			"Stream-time (ms) of the first event; -1 before any event."),
		watermark: reg.Gauge("stream_watermark_ms",
			"Stream-time (ms) of the newest collected event."),
		nextRetrain: reg.Gauge("stream_next_retrain_ms",
			"Stream-time (ms) of the next scheduled training; -1 when none is due ever again."),
		seqLatency: reg.Histogram("stream_stage_latency_seconds",
			"Per-event wall time spent in each pipeline stage.", stageBuckets,
			obsv.Label{Key: "stage", Value: "sequencer"}),
	}
	m.shardLatency = reg.Histogram("stream_stage_latency_seconds", "", stageBuckets,
		obsv.Label{Key: "stage", Value: "shard"})
	m.collectLatency = reg.Histogram("stream_stage_latency_seconds", "", stageBuckets,
		obsv.Label{Key: "stage", Value: "collector"})
	// Admission waits run from sub-millisecond blips to the full
	// AdmitWait; start the buckets coarser than the stage latencies.
	m.backpressure = reg.Histogram("stream_ingest_backpressure_seconds",
		"Time ingest callers spent waiting on a full pipeline (slow-path admissions and rejections).",
		obsv.ExpBuckets(1e-4, 4, 10))

	m.walBytes = reg.Counter("stream_wal_bytes_total",
		"Bytes appended to the write-ahead log.")
	m.walErrors = reg.Counter("stream_wal_errors_total",
		"Failed WAL appends (the event still flows through the pipeline).")
	m.snapshots = reg.Counter("stream_snapshots_total",
		"Durable snapshots written.")
	m.snapshotErrors = reg.Counter("stream_snapshot_errors_total",
		"Failed snapshot writes (the previous snapshot stays authoritative).")
	m.snapshotBytes = reg.Counter("stream_snapshot_bytes_total",
		"Bytes written across all snapshots.")
	m.replayed = reg.Counter("stream_replayed_total",
		"WAL events replayed through the pipeline during startup recovery.")
	m.recoverySeconds = reg.Gauge("stream_recovery_seconds",
		"Wall time of the last startup recovery (snapshot load + WAL replay).")
	m.snapshotLatency = reg.Histogram("stream_snapshot_latency_seconds",
		"Wall time per durable snapshot write.", stageBuckets)

	m.standbyLagSeq = reg.Gauge("standby_lag_seq",
		"Sequence distance behind the leader (leader next_seq - replica next seq); 0 on a leader.")
	m.standbyLagSeconds = reg.Gauge("standby_lag_seconds",
		"Stream-time distance behind the leader's watermark in seconds; 0 on a leader.")
	m.promotions = reg.Counter("standby_promotions_total",
		"Standby-to-leader promotions performed by this process.")
	m.backfillLines = reg.Counter("backfill_lines_total",
		"Historical raw-log lines parsed and fed to the pipeline by backfill.")
	m.backfillSkipped = reg.Counter("backfill_skipped_total",
		"Backfill lines skipped because they failed to parse.")

	reg.GaugeFunc("stream_retraining",
		"1 while a background training pass is in flight.", func() float64 {
			if s.retraining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("stream_compression_rate",
		"1 - processed/sequenced: the preprocessing filter's current reduction.", func() float64 {
			seq := m.sequenced.Value()
			if seq == 0 {
				return 0
			}
			return 1 - float64(m.processed.Value())/float64(seq)
		})
	reg.GaugeFunc("stream_queue_depth", "Instantaneous channel occupancy per stage.",
		func() float64 { return float64(len(s.seqCh)) }, obsv.Label{Key: "queue", Value: "sequencer"})
	reg.GaugeFunc("stream_queue_depth", "",
		func() float64 { return float64(len(s.collectCh)) }, obsv.Label{Key: "queue", Value: "collector"})
	for i := range s.shardChs {
		ch := s.shardChs[i]
		reg.GaugeFunc("stream_queue_depth", "",
			func() float64 { return float64(len(ch)) },
			obsv.Label{Key: "queue", Value: fmt.Sprintf("shard%d", i)})
	}

	m.streamStart.Set(-1)
	m.training = engine.NewTrainingMetrics(reg)
	return m
}

// Metrics returns the service's metric registry — the backing store of
// both Stats() and GET /metrics. Useful for mounting the exposition
// handler elsewhere or registering extra gauges alongside the service's.
func (s *Service) Metrics() *obsv.Registry { return s.m.reg }
