package stream

// Hot-standby replication (DESIGN.md §14). A Follower tails a leader's
// WAL over HTTP — GET /wal/segments to learn the chain, GET
// /wal/segment/{name}?from=seq to pull frames — appends every record to
// the replica's own WAL, and replays it through the recovery stage logic
// (replayOne), so the replica passes through exactly the states the
// leader's durable log defines: same sequences, same inline retrains at
// the same stream positions, same snapshots-after-retrain. Promotion is
// therefore nothing more than "stop pulling, start the pipeline": the
// promoted service is byte-equivalent to a single node that ingested the
// same stream (the same contract recovery already honors).
//
// Durability before visibility holds on the replica exactly as on the
// leader: a pulled batch is group-committed to the replica's WAL before
// any of it reaches the stage logic, so a replica crash mid-pull recovers
// to a clean prefix and re-requests from its durable end.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
	"repro/internal/persist"
	"repro/internal/raslog"
)

// segmentsResponse is the leader's GET /wal/segments body — shared by
// the serving handler (http.go) and the follower's poll.
type segmentsResponse struct {
	Role        string                `json:"role"`
	NextSeq     uint64                `json:"next_seq"`
	WatermarkMs int64                 `json:"watermark_ms"`
	Segments    []persist.SegmentInfo `json:"segments"`
}

// FollowerConfig parameterizes a pull loop over one leader.
type FollowerConfig struct {
	// Leader is the leader daemon's base URL (e.g. http://host:8080).
	Leader string
	// ID names this follower to the leader's retention guard: segments
	// the follower has not acked are kept from pruning under this key.
	// Empty means "standby". Keep it stable across restarts so a replica
	// that crashes and resumes pins the same retention entry.
	ID string
	// Poll is the idle poll interval against the leader. Zero means 250ms.
	Poll time.Duration
	// PromoteAfter auto-promotes the replica once the leader has been
	// unreachable this long. Zero means manual promotion only (POST
	// /promote or Follower.Promote).
	PromoteAfter time.Duration
	// Client overrides the HTTP client (tests). Nil means a client with a
	// 30s request timeout.
	Client *http.Client
	// Logf receives operational messages (leader unreachable, promotion).
	// Nil discards them.
	Logf func(format string, args ...any)
}

// Follower drives one standby service from one leader. Create with
// NewFollower over a Service started with Config.Standby; the pull loop
// runs until Promote (or auto-promotion) stops it.
type Follower struct {
	svc    *Service
	cfg    FollowerConfig
	client *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	batch []raslog.Event // decode scratch, reused across pulls
}

// NewFollower starts the pull loop for svc against cfg.Leader. svc must
// have been created with Config.Standby (and therefore a StateDir).
func NewFollower(svc *Service, cfg FollowerConfig) (*Follower, error) {
	if !svc.standby.Load() {
		return nil, errors.New("stream: NewFollower needs a service started with Config.Standby")
	}
	if cfg.Leader == "" {
		return nil, errors.New("stream: FollowerConfig.Leader is required")
	}
	if _, err := url.Parse(cfg.Leader); err != nil {
		return nil, fmt.Errorf("stream: leader URL: %w", err)
	}
	if cfg.ID == "" {
		cfg.ID = "standby"
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	f := &Follower{
		svc:    svc,
		cfg:    cfg,
		client: cfg.Client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	// POST /promote on the standby's own mux routes through the hook so
	// the pull loop is stopped before the state flips.
	hook := f.Promote
	svc.promoteHook.Store(&hook)
	atomic.StoreUint64(&svc.replNext, svc.next)
	go f.run()
	return f, nil
}

// Promote stops the pull loop, waits for any in-flight apply to land,
// and turns the standby into a live leader. Idempotent; safe to call
// concurrently with auto-promotion.
func (f *Follower) Promote() error {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
	if f.svc.promoteStandalone() || !f.svc.standby.Load() {
		return nil
	}
	return ErrClosed
}

// Stop ends the pull loop without promoting (shutdown of a replica that
// stays a replica).
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// run is the pull loop: poll the leader, pull everything durable, sleep,
// repeat. Transient leader errors only back off (the whole point of a
// standby is to ride out the leader's restart window); once the leader
// has been unreachable past PromoteAfter the replica promotes itself.
func (f *Follower) run() {
	defer close(f.done)
	lastOK := time.Now()
	delay := f.cfg.Poll
	for {
		err := f.syncOnce()
		switch {
		case err == nil:
			lastOK = time.Now()
			delay = f.cfg.Poll
		default:
			f.cfg.Logf("follower: leader %s: %v", f.cfg.Leader, err)
			if f.cfg.PromoteAfter > 0 && time.Since(lastOK) > f.cfg.PromoteAfter {
				f.cfg.Logf("follower: leader silent for %s — promoting", time.Since(lastOK).Round(time.Millisecond))
				f.svc.promoteStandalone()
				return
			}
			// Back off on errors, capped well inside PromoteAfter so the
			// unreachability clock is actually observed.
			delay *= 2
			if max := 2 * f.cfg.Poll; delay > max {
				delay = max
			}
		}
		select {
		case <-f.stop:
			return
		case <-time.After(delay):
		}
	}
}

// syncOnce polls the leader's segment listing and pulls every durable
// record the replica does not yet have.
func (f *Follower) syncOnce() error {
	s := f.svc
	list, err := f.listSegments()
	if err != nil {
		return err
	}
	atomic.StoreUint64(&s.leaderSeq, list.NextSeq)
	if s.next > list.NextSeq {
		// The replica is ahead of the "leader": a fresh/rolled-back state
		// directory answered our poll. Applying it would fork history.
		return fmt.Errorf("leader behind replica (leader next %d, replica %d) — refusing to rewind", list.NextSeq, s.next)
	}
	for s.next < list.NextSeq {
		// The pull source is the newest segment whose records cover s.next.
		// "Newest" matters twice: a recovered leader may open a new segment
		// at the torn tail of an old one (same FirstSeq, higher gen), and a
		// newer segment supersedes the tail of the one before it — stop caps
		// the apply so superseded duplicates shipped by the older file are
		// discarded, mirroring Replay's own capping.
		src := -1
		stop := list.NextSeq
		for i, seg := range list.Segments {
			if seg.FirstSeq <= s.next {
				src = i
			} else if src >= 0 {
				stop = seg.FirstSeq
				break
			}
		}
		if src < 0 {
			return fmt.Errorf("WAL gap: replica needs seq %d, leader's oldest segment starts later", s.next)
		}
		advanced, err := f.pullSegment(list.Segments[src].Name, s.next, stop)
		if err != nil {
			return err
		}
		if !advanced {
			// Caught up to this segment's durable end (flushed-but-unrotated
			// tail): nothing more to read until the leader appends.
			break
		}
	}
	f.publishLag(list)
	return nil
}

// publishLag updates the standby lag gauges from the latest listing.
func (f *Follower) publishLag(list *segmentsResponse) {
	s := f.svc
	lag := uint64(0)
	if list.NextSeq > s.next {
		lag = list.NextSeq - s.next
	}
	s.m.standbyLagSeq.Set(float64(lag))
	secs := 0.0
	if wm := s.watermarkMs(); wm >= 0 && list.WatermarkMs > wm {
		secs = float64(list.WatermarkMs-wm) / 1000
	}
	s.m.standbyLagSeconds.Set(secs)
}

// listSegments polls GET /wal/segments, registering this follower's ack
// so the leader's retention guard keeps everything from s.next on.
func (f *Follower) listSegments() (*segmentsResponse, error) {
	u := fmt.Sprintf("%s/wal/segments?follower=%s&acked=%d",
		f.cfg.Leader, url.QueryEscape(f.cfg.ID), f.svc.next)
	resp, err := f.client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("GET /wal/segments: HTTP %d: %s", resp.StatusCode, b)
	}
	var list segmentsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("GET /wal/segments: %w", err)
	}
	return &list, nil
}

// pullSegment fetches records [from, stop) of one leader segment and
// applies them. Returns whether the replica advanced. A 429/503 from the
// leader (saturated, restarting) honors Retry-After like any client.
func (f *Follower) pullSegment(name string, from, stop uint64) (bool, error) {
	s := f.svc
	u := fmt.Sprintf("%s/wal/segment/%s?from=%d", f.cfg.Leader, url.PathEscape(name), from)
	resp, err := f.client.Get(u)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		wait := httpx.RetryAfter(resp.Header, f.cfg.Poll, 5*time.Second)
		return false, fmt.Errorf("GET /wal/segment/%s: HTTP %d (backing off %s)", name, resp.StatusCode, wait)
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return false, fmt.Errorf("GET /wal/segment/%s: HTTP %d: %s", name, resp.StatusCode, b)
	}

	f.batch = f.batch[:0]
	next, derr := persist.DecodeFrames(resp.Body, from, func(seq uint64, e raslog.Event) error {
		if seq >= stop {
			return errPullDone
		}
		f.batch = append(f.batch, e)
		return nil
	})
	if derr == errPullDone {
		derr = nil
		next = stop
	}
	// Apply whatever decoded cleanly even when the tail of the transfer
	// died: the prefix is valid, and the next pull resumes after it.
	if aerr := s.applyReplicated(f.batch); aerr != nil {
		return false, aerr
	}
	if derr != nil {
		return next > from, fmt.Errorf("GET /wal/segment/%s: %w", name, derr)
	}
	return next > from, nil
}

// errPullDone stops a pull at the segment's supersession boundary.
var errPullDone = errors.New("stream: pull reached boundary")

// applyReplicated commits one pulled batch: WAL first (group commit, one
// fsync), then serial replay through the recovery stage logic. Runs on
// the follower goroutine only. A retrain completed during the batch
// re-anchors durability with a snapshot, mirroring the leader's own
// snapshot-after-retrain cadence, so a replica restart replays a short
// tail instead of the whole history.
func (s *Service) applyReplicated(events []raslog.Event) error {
	if len(events) == 0 {
		return nil
	}
	_, ticket, err := s.store.AppendBatch(s.next, events)
	if err != nil {
		return err
	}
	// The replica's ack to the leader (?acked= on the next poll) promises
	// it can replay these records after a crash, so wait out the commit
	// pipeline's fsync before applying — the follower has no client to
	// overlap with, and the poll cadence dwarfs one disk flush.
	if err := ticket.Wait(context.Background()); err != nil {
		return err
	}
	s.mu.Lock()
	before := len(s.retrains)
	s.mu.Unlock()
	for i := range events {
		s.replayOne(events[i])
	}
	atomic.StoreUint64(&s.replNext, s.next)
	s.mu.Lock()
	after := len(s.retrains)
	s.mu.Unlock()
	if after != before {
		s.writeSnapshot()
	}
	return nil
}

// promoteStandalone flips a standby into a live leader: the sequencer is
// seeded at the replicated position and watermark (exactly how recovery
// seeds it), a snapshot re-anchors durability at the promotion cut, and
// the pipeline goroutines start. Returns false if the service is closed
// or already a leader. Idempotent under races between POST /promote and
// auto-promotion: closeMu serializes promoters, so exactly one call
// wins the standby flip.
func (s *Service) promoteStandalone() bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed || !s.standby.Load() {
		return false
	}
	// closeMu serializes promoters, so the load/store pair admits exactly
	// one winner. The counter is bumped before the role flips: a Stats()
	// racing the promotion must never see a leader with zero promotions,
	// or the standby block (and the failover history it carries) would
	// vanish for that read.
	s.m.promotions.Inc()
	s.standby.Store(false)
	s.replaying = false
	s.seqStart = s.next
	if s.streamStartMs() >= 0 {
		s.seqTimeSeed = s.watermarkMs()
	}
	// The shards seed their temporal state from the post-replication
	// mirror, exactly like recovery seeds them post-replay.
	s.tempSeed = s.tempMirror.Export()
	s.writeSnapshot()
	s.startPipelineLocked()
	s.m.standbyLagSeq.Set(0)
	s.m.standbyLagSeconds.Set(0)
	return true
}

// Promote turns a standby service into a live leader. When a Follower
// drives the service its pull loop is stopped first (the registered
// hook); either way the call is idempotent — promoting a service that is
// already a leader returns nil. ErrClosed if the service was closed.
func (s *Service) Promote() error {
	if fn := s.promoteHook.Load(); fn != nil {
		return (*fn)()
	}
	if s.promoteStandalone() || !s.standby.Load() {
		return nil
	}
	return ErrClosed
}

// Standby reports whether the service is (still) a standby replica.
func (s *Service) Standby() bool { return s.standby.Load() }
