package stream

// POST /ingest/batch protocol tests: same wire format and same resume
// protocol as /ingest, with chunk-granular acceptance.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/raslog"
)

func postIngestBatch(t *testing.T, url string, body []byte) (int, ingestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/ingest/batch", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHTTPIngestBatchAccepts(t *testing.T) {
	l := genLog(t, 7, 4)
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week
	s, srv := newTestServer(t, cfg)

	status, out := postIngestBatch(t, srv.URL, encodeLog(t, l))
	if status != http.StatusOK || out.Error != "" {
		t.Fatalf("batch ingest = %d %+v", status, out)
	}
	if out.Accepted != l.Len() {
		t.Fatalf("accepted %d of %d", out.Accepted, l.Len())
	}
	waitFor(t, 30*time.Second, func() bool {
		return s.Stats().Sequenced+s.Stats().LateDropped >= int64(l.Len())-200
	})
	if st := s.Stats(); st.Ingested != int64(l.Len()) {
		t.Errorf("stats ingested = %d, want %d", st.Ingested, l.Len())
	}
}

// TestHTTPIngestBatchBadLine pins the decode-error contract: the lines
// parsed before the bad one are still ingested, the status is 400, and
// Line names the failing input line.
func TestHTTPIngestBatchBadLine(t *testing.T) {
	s, srv := newTestServer(t, Defaults())
	body := "1|RAS|10|0|L|KERNEL|INFO|ok\ngarbage line\n2|RAS|20|0|L|KERNEL|INFO|ok\n"
	status, out := postIngestBatch(t, srv.URL, []byte(body))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if out.Accepted != 1 {
		t.Errorf("accepted = %d, want 1 (the prefix before the garbage)", out.Accepted)
	}
	if out.Line != 2 || !strings.Contains(out.Error, "line 2") {
		t.Errorf("response = %+v; want failure named at line 2", out)
	}
	waitFor(t, 10*time.Second, func() bool { return s.Stats().Ingested == 1 })
}

func TestHTTPIngestBatchClosedService(t *testing.T) {
	s, srv := newTestServer(t, Defaults())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	status, out := postIngestBatch(t, srv.URL,
		[]byte("1|RAS|10|0|L|KERNEL|INFO|ok\n"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for a closed service", status)
	}
	if out.Accepted != 0 || out.Line != 1 {
		t.Errorf("response = %+v; want 0 accepted, resume from line 1", out)
	}
}

// TestHTTPIngestBatchMidBatch503 exercises the mid-batch resume path: a
// body spanning several chunks against a wedged pipeline accepts some
// whole chunks, then times out; the response reports the first line of
// the first unconsumed chunk so the client can resume exactly there.
func TestHTTPIngestBatchMidBatch503(t *testing.T) {
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week
	cfg.Shards = 1
	cfg.QueueLen = 1
	cfg.ReorderLimit = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the collector (same trick as the /ingest backpressure test):
	// with every queue at length 1, only the first chunk message fits.
	s.mu.Lock()
	evs := make([]raslog.Event, 2*ingestBatchChunk+52)
	for i := range evs {
		evs[i] = pipelineEvent(i)
	}
	body := encodeLog(t, &raslog.Log{Events: evs})
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/ingest/batch", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.handleIngestBatch(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 on backpressure timeout: %s", w.Code, w.Body)
	}
	var out ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted == 0 || out.Accepted >= len(evs) {
		t.Errorf("accepted %d of %d; want some whole chunks, not all", out.Accepted, len(evs))
	}
	if out.Accepted%ingestBatchChunk != 0 {
		t.Errorf("accepted %d is not chunk-aligned (chunk %d)", out.Accepted, ingestBatchChunk)
	}
	if out.Line != out.Accepted+1 {
		t.Errorf("resume line %d with %d accepted; want accepted+1", out.Line, out.Accepted)
	}
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
