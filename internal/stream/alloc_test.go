package stream

// Steady-state allocation budget for the serving hot path. The pipeline
// (sequencer heap, WAL staging, shard filter, collector ring, predictor
// observe) reuses its buffers once warm; what remains per event is
// amortized slice growth in the training history plus scheduler noise.
// The budget is deliberately loose against that noise but tight enough
// that reintroducing a per-event allocation (interface boxing in the
// heap, a hashed pending map, per-event WAL frames) fails it clearly.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/raslog"
)

// pipelineEvent fabricates a deterministic in-order event over a small
// set of locations and entries, like a production feed where the same
// hardware chatters repeatedly.
func pipelineEvent(i int) raslog.Event {
	locs := [...]string{
		"R00-M0-N0-C:J01-U01", "R01-M1-N2-C:J05-U11",
		"R02-M0-N4-C:J12-U01", "R03-M1-N8-C:J18-U11",
	}
	entries := [...]string{
		"instruction cache parity error corrected",
		"ddr: excessive soft failures",
		"MidplaneSwitchController performing bit sparing",
	}
	return raslog.Event{
		RecordID: int64(i),
		Type:     "RAS",
		Time:     int64(i) * 1000,
		JobID:    int64(i % 5),
		Location: locs[i%len(locs)],
		Entry:    entries[i%len(entries)],
		Facility: raslog.Kernel,
		Severity: raslog.Info,
	}
}

func TestPipelineSteadyStateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is distorted by the race detector")
	}
	cfg := Defaults()
	cfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	cfg.Shards = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	const warm, measured = 20000, 20000
	for i := 0; i < warm; i++ {
		if err := s.Ingest(ctx, pipelineEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	settle := func(n int64) {
		waitFor(t, 10*time.Second, func() bool { return s.m.sequenced.Value() >= n })
	}
	// The reorder buffer holds the trailing tolerance window; wait for
	// everything releasable, then measure across a fixed event count.
	settle(warm - 100)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := warm; i < warm+measured; i++ {
		if err := s.Ingest(ctx, pipelineEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	settle(warm + measured - 100)
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	perEvent := float64(ms1.Mallocs-ms0.Mallocs) / measured
	t.Logf("steady-state pipeline: %.2f allocs/event", perEvent)
	if perEvent > 8 {
		t.Fatal(fmt.Sprintf("pipeline allocates %.2f times per event, budget 8", perEvent))
	}
}

// TestDurableBatchAllocBudget pins the durable batch hot path: with the
// asynchronous commit pipeline the ticket machinery costs a handful of
// allocations per *batch* (the ack channel, the commit round and its
// done channel, the caller's event slice) and nothing per event — the
// WAL encoder, the group-commit frame scratch, and the bufio writer all
// reuse their buffers. The budget of 1 alloc/event is ~100x the measured
// steady state; it fails loudly if anyone reintroduces per-event frames,
// per-event tickets, or boxing on the commit path.
func TestDurableBatchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is distorted by the race detector")
	}
	cfg := Defaults()
	cfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	cfg.Shards = 2
	cfg.StateDir = t.TempDir()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	const batchSize = 512
	const warm, measured = 20480, 20480 // multiples of batchSize
	feed := func(lo, hi int) {
		for i := lo; i < hi; i += batchSize {
			evs := make([]raslog.Event, batchSize)
			for j := range evs {
				evs[j] = pipelineEvent(i + j)
			}
			if _, err := s.IngestBatch(ctx, evs); err != nil {
				t.Fatal(err)
			}
		}
	}
	settle := func(n int64) {
		waitFor(t, 10*time.Second, func() bool { return s.m.sequenced.Value() >= n })
	}
	feed(0, warm)
	settle(warm - 100)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	feed(warm, warm+measured)
	settle(warm + measured - 100)
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	perEvent := float64(ms1.Mallocs-ms0.Mallocs) / measured
	t.Logf("durable batch path: %.3f allocs/event", perEvent)
	if perEvent > 1 {
		t.Fatal(fmt.Sprintf("durable batch path allocates %.3f times per event, budget 1", perEvent))
	}
}
