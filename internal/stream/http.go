package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/raslog"
)

// NewMux returns the service's HTTP API:
//
//	POST /ingest        text-codec RAS lines, ingested one event at a time
//	POST /ingest/batch  the same wire format, ingested via IngestBatch:
//	                    whole chunks enter the pipeline together and
//	                    commit to the WAL with one frame and one fsync
//	GET  /warnings  recent warnings with their trigger rules (?n=50)
//	GET  /stats     counters, compression, rule counts, retrain history
//	GET  /metrics   the same counters in Prometheus text exposition
//	GET  /healthz   liveness
//	POST /retrain   force a synchronous training pass
func NewMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /ingest/batch", s.handleIngestBatch)
	mux.HandleFunc("GET /warnings", s.handleWarnings)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.Metrics().Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /retrain", s.handleRetrain)
	return mux
}

// ingestResponse reports one POST /ingest batch. On error, Line is the
// 1-based input line the batch failed at: every line before it was
// accepted, so a client can resume the batch from Line (decode errors)
// or retry from Line (backpressure timeouts, shutdown).
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line,omitempty"`
	Error    string `json:"error,omitempty"`
}

// maxIngestBody bounds one ingest batch (64 MiB of log lines).
const maxIngestBody = 64 << 20

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	resp := ingestResponse{}
	sc := raslog.NewScanner(body)
	var err error
	for sc.Scan() {
		if ierr := s.Ingest(r.Context(), sc.Event()); ierr != nil {
			err = fmt.Errorf("ingest line %d: %w", sc.Line(), ierr)
			break
		}
		resp.Accepted++
	}
	if err == nil {
		err = sc.Err()
	}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		resp.Line = sc.Line()
		status = ingestStatus(w, err)
	}
	writeJSON(w, status, resp)
}

// ingestStatus maps an ingest failure to its HTTP status, setting any
// status-specific headers on w (before the status is written). Malformed
// input is the client's fault (400). A saturated pipeline is overload:
// 429 plus Retry-After, and the line-resume contract applies — the
// client should back off, then resume the batch from Line. A closed
// service or an expired request context is 503, same resume contract.
// Ingest errors may arrive wrapped, so compare with errors.Is, never ==.
func ingestStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// ingestBatchChunk caps one IngestBatch call (and therefore one WAL
// frame) from the batch endpoint. Chunking also gives the 429/503
// resume protocol its granularity: a batch that fails against
// backpressure or shutdown reports the first line of the first
// unconsumed chunk, and everything before it is already accepted.
const ingestBatchChunk = 1024

// handleIngestBatch serves POST /ingest/batch: the same
// newline-delimited text codec as /ingest, but events are parsed
// upfront and handed to IngestBatch in chunks, so each chunk shares one
// WAL group commit instead of paying the log write per event. The
// response protocol matches /ingest exactly — on error, Line is the
// 1-based input line to resume from: lines before it were accepted,
// whether the failure was a decode error (400), a saturated pipeline
// (429), or an unavailable service (503). A decode error mid-body still
// ingests every line parsed before it.
func (s *Service) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	sc := raslog.NewScanner(body)
	var (
		events []raslog.Event
		lines  []int // 1-based input line per parsed event
	)
	for sc.Scan() {
		events = append(events, sc.Event())
		lines = append(lines, sc.Line())
	}
	decodeErr := sc.Err()

	resp := ingestResponse{}
	var err error
	for len(events) > 0 {
		n := min(len(events), ingestBatchChunk)
		m, ierr := s.IngestBatch(r.Context(), events[:n])
		resp.Accepted += m
		if ierr != nil {
			err = fmt.Errorf("ingest line %d: %w", lines[0], ierr)
			resp.Line = lines[0]
			break
		}
		events, lines = events[n:], lines[n:]
	}
	if err == nil && decodeErr != nil {
		err = decodeErr
		resp.Line = sc.Line()
	}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = ingestStatus(w, err)
	}
	writeJSON(w, status, resp)
}

// warningJSON is one /warnings entry: the prediction interval plus the
// rule that triggered it.
type warningJSON struct {
	TimeMs     int64  `json:"time_ms"`
	Time       string `json:"time"`
	DeadlineMs int64  `json:"deadline_ms"`
	Source     string `json:"source"`
	Rule       string `json:"rule"`
	Target     int    `json:"target"`
}

func (s *Service) handleWarnings(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, fmt.Sprintf("bad n=%q", v), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	warns := s.Warnings(n)
	out := make([]warningJSON, len(warns))
	for i, wr := range warns {
		out[i] = warningJSON{
			TimeMs:     wr.Time,
			Time:       time.UnixMilli(wr.Time).UTC().Format(time.RFC3339),
			DeadlineMs: wr.Deadline,
			Source:     wr.Source.String(),
			Rule:       wr.RuleID,
			Target:     wr.Target,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleRetrain(w http.ResponseWriter, _ *http.Request) {
	rec, err := s.TrainNow()
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
