package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/persist"
	"repro/internal/raslog"
)

// NewMux returns the service's HTTP API:
//
//	POST /ingest        text-codec RAS lines, ingested one event at a time
//	POST /ingest/batch  the same wire format, ingested via IngestBatch:
//	                    whole chunks enter the pipeline together and
//	                    commit to the WAL with one frame and one fsync
//	GET  /warnings  recent warnings with their trigger rules (?n=50)
//	GET  /stats     counters, compression, rule counts, retrain history
//	GET  /metrics   the same counters in Prometheus text exposition
//	GET  /healthz   liveness
//	POST /retrain   force a synchronous training pass
//
// Replication and backfill (DESIGN.md §14; no-ops without a StateDir):
//
//	GET  /wal/segments        WAL chain + next seq (?follower=&acked=
//	                          registers a follower's retention ack)
//	GET  /wal/segment/{name}  one segment's frames from ?from=seq on
//	POST /promote             standby → leader (idempotent)
//	POST /backfill            body = raw text log, fed behind live traffic
func NewMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /ingest/batch", s.handleIngestBatch)
	mux.HandleFunc("GET /warnings", s.handleWarnings)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.Metrics().Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /retrain", s.handleRetrain)
	mux.HandleFunc("GET /wal/segments", s.handleWALSegments)
	mux.HandleFunc("GET /wal/segment/{name}", s.handleWALSegment)
	mux.HandleFunc("POST /promote", s.handlePromote)
	mux.HandleFunc("POST /backfill", s.handleBackfill)
	return mux
}

// ingestResponse reports one POST /ingest batch. On error, Line is the
// 1-based input line the batch failed at: every line before it was
// accepted, so a client can resume the batch from Line (decode errors)
// or retry from Line (backpressure timeouts, shutdown).
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Line     int    `json:"line,omitempty"`
	Error    string `json:"error,omitempty"`
}

// maxIngestBody bounds one ingest batch (64 MiB of log lines).
const maxIngestBody = 64 << 20

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	resp := ingestResponse{}
	sc := raslog.NewScanner(body)
	var err error
	for sc.Scan() {
		if ierr := s.Ingest(r.Context(), sc.Event()); ierr != nil {
			err = fmt.Errorf("ingest line %d: %w", sc.Line(), ierr)
			break
		}
		resp.Accepted++
	}
	if err == nil {
		err = sc.Err()
	}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		resp.Line = sc.Line()
		status = ingestStatus(w, err)
	}
	writeJSON(w, status, resp)
}

// ingestStatus maps an ingest failure to its HTTP status, setting any
// status-specific headers on w (before the status is written). Malformed
// input is the client's fault (400). A saturated pipeline is overload:
// 429 plus Retry-After, and the line-resume contract applies — the
// client should back off, then resume the batch from Line. A closed
// service or an expired request context is 503, same resume contract.
// Ingest errors may arrive wrapped, so compare with errors.Is, never ==.
func ingestStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		return http.StatusTooManyRequests
	case errors.Is(err, ErrStandby):
		// A standby refuses ingest until promoted; the resume contract is
		// the 503 one — back off and retry, and once the replica takes
		// over the retry lands.
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	case errors.Is(err, errCommit):
		// Admitted but the covering WAL commit failed or was torn down:
		// nothing was acknowledged, so the client re-sends from Line
		// (at-least-once), same 503 resume contract as a restart.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// ingestBatchChunk caps one IngestBatch call (and therefore one WAL
// frame) from the batch endpoint. Chunking also gives the 429/503
// resume protocol its granularity: a batch that fails against
// backpressure or shutdown reports the first line of the first
// unconsumed chunk, and everything before it is already accepted.
const ingestBatchChunk = 1024

// handleIngestBatch serves POST /ingest/batch: the same
// newline-delimited text codec as /ingest, but events are parsed
// upfront and handed to IngestBatch in chunks, so each chunk shares one
// WAL group commit instead of paying the log write per event. The
// response protocol matches /ingest exactly — on error, Line is the
// 1-based input line to resume from: lines before it were accepted,
// whether the failure was a decode error (400), a saturated pipeline
// (429), or an unavailable service (503). A decode error mid-body still
// ingests every line parsed before it.
func (s *Service) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	sc := raslog.NewScanner(body)
	var (
		events []raslog.Event
		lines  []int // 1-based input line per parsed event
	)
	for sc.Scan() {
		events = append(events, sc.Event())
		lines = append(lines, sc.Line())
	}
	decodeErr := sc.Err()

	resp := ingestResponse{}
	var err error
	for len(events) > 0 {
		n := min(len(events), ingestBatchChunk)
		m, ierr := s.IngestBatch(r.Context(), events[:n])
		resp.Accepted += m
		if ierr != nil {
			err = fmt.Errorf("ingest line %d: %w", lines[0], ierr)
			resp.Line = lines[0]
			break
		}
		events, lines = events[n:], lines[n:]
	}
	if err == nil && decodeErr != nil {
		err = decodeErr
		resp.Line = sc.Line()
	}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = ingestStatus(w, err)
	}
	writeJSON(w, status, resp)
}

// warningJSON is one /warnings entry: the prediction interval plus the
// rule that triggered it.
type warningJSON struct {
	TimeMs     int64  `json:"time_ms"`
	Time       string `json:"time"`
	DeadlineMs int64  `json:"deadline_ms"`
	Source     string `json:"source"`
	Rule       string `json:"rule"`
	Target     int    `json:"target"`
}

func (s *Service) handleWarnings(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, fmt.Sprintf("bad n=%q", v), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	warns := s.Warnings(n)
	out := make([]warningJSON, len(warns))
	for i, wr := range warns {
		out[i] = warningJSON{
			TimeMs:     wr.Time,
			Time:       time.UnixMilli(wr.Time).UTC().Format(time.RFC3339),
			DeadlineMs: wr.Deadline,
			Source:     wr.Source.String(),
			Rule:       wr.RuleID,
			Target:     wr.Target,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleRetrain(w http.ResponseWriter, _ *http.Request) {
	rec, err := s.TrainNow()
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// maxSegmentPull caps one GET /wal/segment response. The body is staged
// in memory so the next-seq header can precede it; followers loop until
// caught up, so the cap bounds the leader's per-request memory, not the
// transfer.
const maxSegmentPull = 4 << 20

// handleWALSegments serves the replication listing: the WAL chain, the
// durable next sequence, and the leader's stream clock. A follower
// identifies itself with ?follower=<id>&acked=<seq>; the ack registers
// in the retention guard so pruning keeps everything the follower still
// needs (see persist.RetainFollower).
func (s *Service) handleWALSegments(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no durable state (start with -state-dir)", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	if id := q.Get("follower"); id != "" {
		acked, err := strconv.ParseUint(q.Get("acked"), 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad acked=%q", q.Get("acked")), http.StatusBadRequest)
			return
		}
		s.store.RetainFollower(id, acked)
	}
	segs, next, err := s.store.Segments()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	role := "leader"
	if s.standby.Load() {
		role = "standby"
	}
	writeJSON(w, http.StatusOK, segmentsResponse{
		Role:        role,
		NextSeq:     next,
		WatermarkMs: s.watermarkMs(),
		Segments:    segs,
	})
}

// handleWALSegment streams one segment's records from ?from=<seq> on, in
// the WAL's own frame format (persist.CopySegment). The body is bounded
// by maxSegmentPull; X-Wal-Next-Seq names the sequence after the last
// record shipped, so a follower can tell progress without decoding.
func (s *Service) handleWALSegment(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "no durable state (start with -state-dir)", http.StatusNotFound)
		return
	}
	name := r.PathValue("name")
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad from=%q", r.URL.Query().Get("from")), http.StatusBadRequest)
		return
	}
	var buf bytes.Buffer
	_, next, err := s.store.CopySegment(&buf, name, from, maxSegmentPull)
	switch {
	case errors.Is(err, persist.ErrNoSegment):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Wal-Next-Seq", strconv.FormatUint(next, 10))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// handlePromote turns a standby into the leader. Idempotent: promoting a
// service that is already the leader reports its role with a 200.
func (s *Service) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if err := s.Promote(); err != nil {
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	role := "leader"
	if s.standby.Load() {
		role = "standby"
	}
	writeJSON(w, http.StatusOK, map[string]string{"role": role})
}

// handleBackfill ingests the request body as a raw text log via the
// bounded-memory parallel backfill path, behind live traffic. The call
// is synchronous: the response reports lines fed and skipped once the
// whole body is in the pipeline. ?workers=N overrides the parser pool.
func (s *Service) handleBackfill(w http.ResponseWriter, r *http.Request) {
	workers := 0
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad workers=%q", v), http.StatusBadRequest)
			return
		}
		workers = n
	}
	res, err := s.Backfill(r.Context(), r.Body, workers)
	switch {
	case errors.Is(err, ErrBackfillBusy):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	case errors.Is(err, ErrStandby):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(), "lines": res.Lines, "skipped": res.Skipped,
		})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
