package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/raslog"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewMux(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func encodeLog(t *testing.T, l *raslog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postIngest(t *testing.T, url string, body []byte) ingestResponse {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPIngestStatsWarnings(t *testing.T) {
	l := genLog(t, 7, 14)
	cfg := Defaults()
	cfg.InitialTrain = 4 * week
	cfg.RetrainEvery = 3 * week
	cfg.TrainWindow = 8 * week
	s, srv := newTestServer(t, cfg)

	// Ingest the whole log in week-sized HTTP batches. After the first
	// retrain boundary (4 weeks + reorder slack) wait for the background
	// swap so the remaining weeks are observed by a live predictor.
	for w := 0; w < l.Weeks(); w++ {
		batch := &raslog.Log{Name: l.Name, Events: l.WeekSlice(w)}
		resp := postIngest(t, srv.URL, encodeLog(t, batch))
		if resp.Error != "" {
			t.Fatalf("week %d: ingest error: %s", w, resp.Error)
		}
		if resp.Accepted != batch.Len() {
			t.Fatalf("week %d: accepted %d of %d", w, resp.Accepted, batch.Len())
		}
		if w == 5 {
			waitFor(t, 30*time.Second, func() bool { return s.Stats().Rules > 0 })
		}
	}

	// The pipeline is asynchronous; wait until it settles (counters
	// stable and no retrain in flight — the reorder buffer legitimately
	// withholds the last ReorderWindow of stream time until Close).
	settle(t, s)

	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Ingested != int64(l.Len()) {
		t.Errorf("stats ingested = %d, want %d", st.Ingested, l.Len())
	}
	if len(st.Retrains) == 0 {
		t.Error("no retrain completed during HTTP ingestion")
	}

	var warns []warningJSON
	getJSON(t, srv.URL+"/warnings?n=500", &warns)
	if len(warns) == 0 {
		t.Fatal("GET /warnings returned no predictions")
	}
	for _, w := range warns {
		if w.Rule == "" || w.Source == "" {
			t.Fatalf("warning missing trigger rule: %+v", w)
		}
	}
}

func TestHTTPIngestBadLine(t *testing.T) {
	_, srv := newTestServer(t, Defaults())
	body := "1|RAS|10|0|L|KERNEL|INFO|ok\ngarbage line\n"
	resp, err := http.Post(srv.URL+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 1 || out.Error == "" {
		t.Fatalf("response = %+v; want 1 accepted and an error", out)
	}
	// The response names the failing input line so the client can resume
	// the batch from there.
	if out.Line != 2 {
		t.Errorf("response line = %d, want 2 (the garbage line)", out.Line)
	}
	if !strings.Contains(out.Error, "line 2") {
		t.Errorf("error %q does not name line 2", out.Error)
	}
}

// TestHTTPIngestClosedService pins the error mapping for a closed
// service: the batch is retryable elsewhere, so the status is 503, not a
// client-blaming 400 — and the check must survive error wrapping
// (errors.Is, never ==).
func TestHTTPIngestClosedService(t *testing.T) {
	s, srv := newTestServer(t, Defaults())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/ingest", "text/plain",
		strings.NewReader("1|RAS|10|0|L|KERNEL|INFO|ok\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 for a closed service", resp.StatusCode)
	}
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 0 || out.Line != 1 {
		t.Errorf("response = %+v; want 0 accepted, failed at line 1", out)
	}
}

// TestHTTPIngestBackpressureTimeout pins the other retryable case: a
// request whose context expires against a saturated pipeline gets a 503
// and the line to retry from, not a 400.
func TestHTTPIngestBackpressureTimeout(t *testing.T) {
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week
	cfg.Shards = 1
	cfg.QueueLen = 1
	cfg.ReorderLimit = 1 // force the sequencer to emit immediately
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the collector: every collected event takes s.mu for the
	// retrain check, so holding it stalls the pipeline end to end and
	// Ingest soon blocks on backpressure.
	s.mu.Lock()
	evs := make([]raslog.Event, 64)
	for i := range evs {
		evs[i] = raslog.Event{Time: int64(i+1) * 1000, Location: "L", Entry: "e",
			Facility: raslog.Kernel, Severity: raslog.Info}
	}
	body := encodeLog(t, &raslog.Log{Events: evs})
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.handleIngest(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 on backpressure timeout: %s", w.Code, w.Body)
	}
	var out ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted == 0 || out.Accepted >= len(evs) {
		t.Errorf("accepted %d of %d; want a partial batch", out.Accepted, len(evs))
	}
	if out.Line != out.Accepted+1 {
		t.Errorf("failed at line %d with %d accepted; want line = accepted+1", out.Line, out.Accepted)
	}
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Defaults())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestHTTPRetrain(t *testing.T) {
	l := genLog(t, 5, 6)
	cfg := Defaults()
	cfg.InitialTrain = 10000 * week // manual retrain only
	s, srv := newTestServer(t, cfg)
	postIngest(t, srv.URL, encodeLog(t, l))

	// Wait until the accepted events are visible in history.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Processed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no events processed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/retrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /retrain = %d: %s", resp.StatusCode, b)
	}
	var rec RetrainRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.TrainEvents == 0 || rec.RepoSize == 0 {
		t.Fatalf("retrain record = %+v; want nonzero training set and repo", rec)
	}
	if s.Stats().Rules == 0 {
		t.Error("no rules live after forced retrain")
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestHTTPWarningsBadN(t *testing.T) {
	_, srv := newTestServer(t, Defaults())
	resp, err := http.Get(srv.URL + "/warnings?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
