package stream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// durableConfig is the deterministic configuration the recovery tests
// share: synchronous retraining (so the predictor swap lands at a fixed
// stream position), per-record WAL flushing (so everything sequenced
// before a kill is durable), and an oversized warnings ring (so full
// warning histories can be compared, not just tails).
func durableConfig(dir string) Config {
	cfg := Defaults()
	cfg.InitialTrain = 3 * week
	cfg.RetrainEvery = 2 * week
	cfg.TrainWindow = 6 * week
	cfg.SyncRetrain = true
	cfg.WarningsKeep = 1 << 20
	cfg.StateDir = dir
	cfg.WALFlushEvery = 1
	return cfg
}

// referenceRun feeds the whole log uninterrupted and returns the closed
// service. StateDir is empty: persistence must not change behavior, so
// the reference is the plain in-memory service.
func referenceRun(t *testing.T, l *raslog.Log) *Service {
	t.Helper()
	s, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, l)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

// compareServices asserts the recovered service ended in exactly the
// reference's state: rule set (including fitted distribution parameters,
// which must survive the JSON round trip bit-exactly), the full warning
// history, the retrain history, counters, clocks and the training window.
func compareServices(t *testing.T, got, want *Service) {
	t.Helper()
	if !reflect.DeepEqual(got.Rules(), want.Rules()) {
		t.Errorf("rule sets differ after recovery:\n got %d rules %+v\nwant %d rules %+v",
			len(got.Rules()), got.Rules(), len(want.Rules()), want.Rules())
	}
	gw, ww := got.Warnings(0), want.Warnings(0)
	if len(gw) != len(ww) {
		t.Fatalf("warning counts differ: got %d, want %d", len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("warning %d differs: got %+v, want %+v", i, gw[i], ww[i])
		}
	}
	gs, ws := got.Stats(), want.Stats()
	if len(gs.Retrains) != len(ws.Retrains) {
		t.Fatalf("retrain counts differ: got %d, want %d", len(gs.Retrains), len(ws.Retrains))
	}
	for i := range gs.Retrains {
		if gs.Retrains[i].At != ws.Retrains[i].At || gs.Retrains[i].Err != ws.Retrains[i].Err {
			t.Errorf("retrain %d differs: got %+v, want %+v", i, gs.Retrains[i], ws.Retrains[i])
		}
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"ingested", gs.Ingested, ws.Ingested},
		{"sequenced", gs.Sequenced, ws.Sequenced},
		{"late_dropped", gs.LateDropped, ws.LateDropped},
		{"after_temporal", gs.AfterTemporal, ws.AfterTemporal},
		{"processed", gs.Processed, ws.Processed},
		{"fatals", gs.Fatals, ws.Fatals},
		{"warnings_total", gs.WarningsTotal, ws.WarningsTotal},
		{"rules", gs.Rules, ws.Rules},
	} {
		if c.got != c.want {
			t.Errorf("stat %s: got %d, want %d", c.name, c.got, c.want)
		}
	}
	if gs.Watermark != ws.Watermark || gs.StreamStart != ws.StreamStart || gs.NextRetrain != ws.NextRetrain {
		t.Errorf("stream clocks differ: got (%d, %d, %d), want (%d, %d, %d)",
			gs.StreamStart, gs.Watermark, gs.NextRetrain, ws.StreamStart, ws.Watermark, ws.NextRetrain)
	}
	got.mu.Lock()
	gh := append([]preprocess.TaggedEvent(nil), got.history...)
	got.mu.Unlock()
	want.mu.Lock()
	wh := append([]preprocess.TaggedEvent(nil), want.history...)
	want.mu.Unlock()
	if !reflect.DeepEqual(gh, wh) {
		t.Errorf("training histories differ: got %d events, want %d", len(gh), len(wh))
	}
}

// TestCrashRestartEquivalence is the tentpole acceptance test: a service
// killed at an arbitrary point and restarted over the same state
// directory must end with the same rule set and the same warnings as one
// that ran uninterrupted. Kill points cover before the first training
// (WAL-only recovery), around the first snapshot, and deep into the
// retrain cadence.
func TestCrashRestartEquivalence(t *testing.T) {
	l := genLog(t, 11, 8)
	events := l.Events
	ref := referenceRun(t, l)
	if len(ref.Rules()) == 0 || len(ref.Warnings(0)) == 0 {
		t.Fatalf("reference run is trivial: %d rules, %d warnings — test would prove nothing",
			len(ref.Rules()), len(ref.Warnings(0)))
	}

	for _, kill := range []int{100, len(events) / 3, len(events) / 2, 5 * len(events) / 6} {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			dir := t.TempDir()

			first, err := New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			ingestAll(t, first, &raslog.Log{Name: l.Name, Events: events[:kill]})
			// Let the sequencer drain its input queue; events still inside
			// the reorder tolerance stay buffered and die with the process,
			// exactly as a real kill -9 would lose them.
			waitFor(t, 30*time.Second, func() bool {
				st := first.Stats()
				return st.Sequenced+st.LateDropped+int64(st.Queues.Reorder) == int64(kill)
			})
			durable := first.Stats().Sequenced
			first.crash()

			second, err := New(durableConfig(dir))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			rec := second.Recovery()
			// Per-record flush means every sequenced event was durable, and
			// an in-order feed means sequence i is input index i — so the
			// resume position is exactly the count of sequenced events, and
			// re-feeding events[ResumeSeq:] covers both the never-ingested
			// tail and the events the reorder buffer lost.
			if rec.ResumeSeq != uint64(durable) {
				t.Fatalf("resume seq %d, want %d (replayed %d from snapshot %d)",
					rec.ResumeSeq, durable, rec.Replayed, rec.SnapshotSeq)
			}
			ingestAll(t, second, &raslog.Log{Name: l.Name, Events: events[rec.ResumeSeq:]})
			if err := second.Close(); err != nil {
				t.Fatal(err)
			}
			compareServices(t, second, ref)
		})
	}
}

// TestCrashDuringRecoveredRun re-kills an already-recovered service: the
// second recovery reads the first recovery's own snapshots and WAL chain
// (generation-suffixed segment names keep the chains apart).
func TestCrashDuringRecoveredRun(t *testing.T) {
	l := genLog(t, 13, 8)
	events := l.Events
	ref := referenceRun(t, l)

	dir := t.TempDir()
	k1, k2 := len(events)/3, 2*len(events)/3

	first, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, first, &raslog.Log{Name: l.Name, Events: events[:k1]})
	first.crash()

	second, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, second, &raslog.Log{Name: l.Name, Events: events[second.Recovery().ResumeSeq:k2]})
	second.crash()

	third, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, third, &raslog.Log{Name: l.Name, Events: events[third.Recovery().ResumeSeq:]})
	if err := third.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, third, ref)
}

// TestGracefulRestartReplaysNothing pins the shutdown snapshot: Close
// leaves a snapshot of the fully drained state, so the next start replays
// zero WAL events and still matches the reference.
func TestGracefulRestartReplaysNothing(t *testing.T) {
	l := genLog(t, 17, 8)
	events := l.Events
	ref := referenceRun(t, l)

	dir := t.TempDir()
	half := len(events) / 2
	first, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, first, &raslog.Log{Name: l.Name, Events: events[:half]})
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := second.Recovery()
	if rec.Replayed != 0 {
		t.Errorf("graceful restart replayed %d events; the shutdown snapshot should cover everything", rec.Replayed)
	}
	if rec.ResumeSeq != uint64(half) {
		t.Fatalf("resume seq %d, want %d", rec.ResumeSeq, half)
	}
	if st := second.Stats(); st.Recovery == nil {
		t.Error("Stats.Recovery missing for a durable service")
	}
	ingestAll(t, second, &raslog.Log{Name: l.Name, Events: events[rec.ResumeSeq:]})
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, second, ref)
}

// TestPersistenceDoesNotPerturbPipeline pins that turning StateDir on
// changes nothing about what the pipeline computes (the WAL append and
// the temporal mirror are pure observers).
func TestPersistenceDoesNotPerturbPipeline(t *testing.T) {
	l := genLog(t, 19, 6)
	ref := referenceRun(t, l)

	s, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, l)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	compareServices(t, s, ref)
}

// TestSwapPredictorKeepsWarnSpacing is the regression test for the
// rule-swap dedup bug: seeding only lastFatal re-armed the distribution
// expert, so the first warning-eligible event after every retraining
// could double-warn — once before the swap and once right after, inside
// the dedup interval.
func TestSwapPredictorKeepsWarnSpacing(t *testing.T) {
	cfg := Defaults()
	full, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s := &Service{cfg: full, repo: meta.NewRepository()}
	s.lastFatal.Store(-1)
	for i := range s.lastWarn {
		s.lastWarn[i].Store(-1)
	}
	s.m = newMetrics(s)

	// One distribution rule: more than 60 s since the last fatal warns.
	s.repo.Restore([]learner.Rule{{Kind: learner.Distribution, ElapsedSec: 60, Confidence: 0.9}})
	const fatalAt = int64(1_000_000_000_000)
	s.lastFatal.Store(fatalAt)
	s.swapPredictor()

	// 70 s after the fatal: the live predictor warns, through the normal
	// process path (which is what maintains the service's dedup mirror).
	warnAt := fatalAt + 70_000
	s.process(preprocess.TaggedEvent{Event: raslog.Event{Time: warnAt}, Class: 1})
	if got := s.m.warningsTotal.Value(); got != 1 {
		t.Fatalf("setup: expected exactly one warning, got %d", got)
	}

	// Retrain boundary: same rule set re-learned, fresh predictor swapped
	// in. Ten seconds later — well inside the dedup interval (W_P = 300 s)
	// and still past the elapsed threshold — the old predictor would have
	// stayed silent; the swapped-in one must too.
	s.swapPredictor()
	s.process(preprocess.TaggedEvent{Event: raslog.Event{Time: warnAt + 10_000}, Class: 1})
	if got := s.m.warningsTotal.Value(); got != 1 {
		t.Fatalf("swapped-in predictor re-warned (total %d) off the pre-swap fatal; dedup state was lost across the swap", got)
	}
}

// removeMiddleWAL deletes a WAL segment from the middle of the chain,
// returning false when the chain is too short to have a strict middle.
func removeMiddleWAL(t *testing.T, dir string) bool {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names) // the naming scheme makes lexical == logical order
	if len(names) < 3 {
		return false
	}
	if err := os.Remove(names[len(names)/2]); err != nil {
		t.Fatal(err)
	}
	return true
}

// TestRecoveryRejectsWALGap pins loud failure: a WAL chain with a missing
// middle segment must fail New, not silently replay a stream with a hole
// in it.
func TestRecoveryRejectsWALGap(t *testing.T) {
	l := genLog(t, 23, 4)
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WALRotateBytes = 4096 // force many small segments
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, s, l)
	s.crash()

	if !removeMiddleWAL(t, dir) {
		t.Fatal("log produced fewer than 3 WAL segments; lower WALRotateBytes")
	}
	if _, err := New(durableConfig(dir)); err == nil {
		t.Fatal("New over a WAL with a missing segment succeeded")
	}
}

// TestCrashMidCoalesceDurability kills the store at an arbitrary point
// between commit enqueue and fsync while a client drives durable batch
// ingest through the asynchronous commit pipeline. The contract under
// test is ack-implies-durable: every batch whose IngestBatch returned
// nil must have its released events on disk after recovery, and recovery
// must never replay events that were never submitted. SyncMaxWait is
// nonzero so the kill reliably lands inside an open coalescing round.
func TestCrashMidCoalesceDurability(t *testing.T) {
	const batchSize = 8
	for _, ackTarget := range []int{1, 4, 9} {
		t.Run(fmt.Sprintf("ackTarget=%d", ackTarget), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir)
			// Events are 1 s apart, so a 10 ms tolerance retains exactly the
			// newest event: an acked batch k has released (k+1)*batchSize - 1
			// events, and each of those must survive the crash.
			cfg.ReorderWindow = 10 * time.Millisecond
			cfg.SyncMaxWait = 2 * time.Millisecond
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			type feed struct{ attempts, acked int }
			done := make(chan feed, 1)
			go func() {
				var f feed
				for {
					evs := make([]raslog.Event, batchSize)
					for j := range evs {
						evs[j] = pipelineEvent(f.attempts*batchSize + j)
					}
					f.attempts++
					if _, err := s.IngestBatch(context.Background(), evs); err != nil {
						done <- f
						return
					}
					f.acked++
				}
			}()
			// The sequenced counter moves only after the commit ticket was
			// handed back, so by here at least ackTarget rounds have opened;
			// the kill races the fsync of whichever round is in flight.
			waitFor(t, 30*time.Second, func() bool {
				return s.m.sequenced.Value() >= int64(ackTarget*batchSize)
			})
			s.crash()
			f := <-done

			second, err := New(durableConfig(dir))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer second.Close()
			rec := second.Recovery()
			if f.acked > 0 {
				if min := uint64(f.acked*batchSize - 1); rec.ResumeSeq < min {
					t.Fatalf("recovered to seq %d; %d acked batches require at least %d durable events — an acked batch was lost",
						rec.ResumeSeq, f.acked, min)
				}
			}
			if max := uint64(f.attempts * batchSize); rec.ResumeSeq > max {
				t.Fatalf("recovered to seq %d but only %d events were ever submitted — replay fabricated events",
					rec.ResumeSeq, max)
			}
		})
	}
}

// TestCrashMidCoalesceNeverFalseAcks pins the other direction: a batch
// that was sequenced and staged in the WAL but whose round never reached
// an fsync (SyncMaxWait parks the syncer for a minute) must NOT be
// acknowledged when the process dies mid-coalesce. The waiter gets a
// commit error — the client re-sends, at-least-once — and recovery over
// the same directory still comes up clean.
func TestCrashMidCoalesceNeverFalseAcks(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.ReorderWindow = 10 * time.Millisecond
	cfg.SyncMaxWait = time.Minute // the fsync cannot win the race
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	evs := make([]raslog.Event, n)
	for i := range evs {
		evs[i] = pipelineEvent(i)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.IngestBatch(context.Background(), evs)
		errc <- err
	}()
	// Sequenced moves only after the commit round was enqueued: the batch
	// is now exactly in the enqueue→fsync window the test targets.
	waitFor(t, 30*time.Second, func() bool { return s.m.sequenced.Value() >= n-1 })
	s.crash()
	err = <-errc
	if err == nil {
		t.Fatal("IngestBatch acked a batch whose commit round never reached an fsync")
	}
	if !errors.Is(err, errCommit) {
		t.Fatalf("mid-coalesce kill returned %v, want errCommit (the 503/re-send class)", err)
	}

	second, err := New(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after mid-coalesce kill failed: %v", err)
	}
	defer second.Close()
	if rec := second.Recovery(); rec.ResumeSeq > n {
		t.Fatalf("recovered %d events from a feed of %d", rec.ResumeSeq, n)
	}
}

// TestReplayTailSeedsShardTemporalState pins a recovery-handoff subtlety:
// WAL replay advances the temporal mirror past the snapshot cut, and the
// shards must be seeded from that post-replay state. A shard seeded from
// the stale snapshot rows would miss the replay tail's anchors and keep
// an event the original run suppressed at exactly the threshold.
func TestReplayTailSeedsShardTemporalState(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	probe := func(tms int64) raslog.Event {
		return raslog.Event{Time: tms, JobID: 7, Location: "R00-M0-N00-C00-U0",
			Entry: "temporal seed probe", Facility: raslog.Kernel, Severity: raslog.Info}
	}
	cfg := durableConfig(dir)
	thrMs := cfg.Filter.Threshold * 1000
	base := int64(1136073600000)

	// A is sequenced (and, per-record flush, durable) but no snapshot ever
	// covers it: the crash leaves a WAL-only tail for recovery to replay.
	// The pusher event advances the sequencer's high-water mark past the
	// reorder tolerance so A is released; the pusher itself stays in the
	// reorder buffer and dies with the crash.
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pusher := raslog.Event{Time: base + cfg.ReorderWindow.Milliseconds() + 60_000,
		JobID: 9, Location: "R77-M0-N00-C00-U0", Entry: "watermark pusher",
		Facility: raslog.Kernel, Severity: raslog.Info}
	if err := first.Ingest(ctx, probe(base)); err != nil {
		t.Fatal(err)
	}
	if err := first.Ingest(ctx, pusher); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, func() bool { return first.Stats().Sequenced == 1 })
	first.crash()

	second, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := second.Recovery(); rec.Replayed != 1 || rec.ResumeSeq != 1 {
		t.Fatalf("recovery = %+v, want 1 replayed, resume at 1", rec)
	}
	// B repeats A's key exactly Threshold later — the inclusive boundary.
	// An uninterrupted run suppresses it; the recovered run must too.
	if err := second.Ingest(ctx, probe(base+thrMs)); err != nil {
		t.Fatal(err)
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	if got := second.Stats().AfterTemporal; got != 1 {
		t.Fatalf("after_temporal = %d, want 1 (recovered shard lost the replayed anchor)", got)
	}

	// The premise, pinned on a plain service: A kept, B suppressed.
	ref, err := New(durableConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []raslog.Event{probe(base), probe(base + thrMs)} {
		if err := ref.Ingest(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ref.Stats().AfterTemporal; got != 1 {
		t.Fatalf("reference after_temporal = %d, want 1 — test premise broken", got)
	}
}
