package stream

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/raslog"
)

// incrEquivConfig is a deterministic multi-retrain configuration: sync
// retraining pins the predictor swap positions, so the incremental and
// batch services must agree warning for warning.
func incrEquivConfig() Config {
	cfg := Defaults()
	cfg.InitialTrain = 3 * week
	cfg.RetrainEvery = 2 * week
	cfg.TrainWindow = 5 * week
	cfg.SyncRetrain = true
	cfg.WarningsKeep = 1 << 20
	return cfg
}

// retrainRecords asserts every completed retrain succeeded and returns
// the records.
func retrainRecords(t *testing.T, s *Service) []RetrainRecord {
	t.Helper()
	recs := s.Stats().Retrains
	for _, r := range recs {
		if r.Err != "" {
			t.Fatalf("retrain at %d failed: %s", r.At, r.Err)
		}
	}
	return recs
}

// TestStreamIncrementalEquivalence pins the service-level contract: the
// default (incremental) service and a NoIncremental one fed the same
// stream end with identical rules, warnings, and retrain outcomes — and
// only the incremental one reports delta-applies after its first pass.
func TestStreamIncrementalEquivalence(t *testing.T) {
	l := genLog(t, 17, 10)
	run := func(noIncr bool) *Service {
		t.Helper()
		cfg := incrEquivConfig()
		cfg.NoIncremental = noIncr
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, s, l)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	inc, batch := run(false), run(true)

	if !reflect.DeepEqual(inc.Rules(), batch.Rules()) {
		t.Errorf("rule sets diverge: %d incremental vs %d batch",
			len(inc.Rules()), len(batch.Rules()))
	}
	iw, bw := inc.Warnings(0), batch.Warnings(0)
	if len(iw) != len(bw) {
		t.Fatalf("warning counts diverge: %d incremental vs %d batch", len(iw), len(bw))
	}
	for i := range iw {
		if iw[i] != bw[i] {
			t.Fatalf("warning %d diverges: %+v vs %+v", i, iw[i], bw[i])
		}
	}

	ir, br := retrainRecords(t, inc), retrainRecords(t, batch)
	if len(ir) != len(br) || len(ir) < 3 {
		t.Fatalf("retrain counts: %d incremental vs %d batch (want equal, >= 3)", len(ir), len(br))
	}
	for i := range ir {
		if ir[i].At != br[i].At || ir[i].TrainEvents != br[i].TrainEvents ||
			ir[i].Churn != br[i].Churn {
			t.Errorf("retrain %d diverges: %+v vs %+v", i, ir[i], br[i])
		}
		if br[i].Incr != nil {
			t.Errorf("retrain %d: batch service carries IncrInfo", i)
		}
		if ir[i].Incr == nil {
			t.Fatalf("retrain %d: incremental service missing IncrInfo", i)
		}
		if i == 0 && !ir[i].Incr.Rebuild {
			t.Error("first retrain must be a full rebuild")
		}
		if i > 0 && ir[i].Incr.Rebuild {
			t.Errorf("retrain %d fell back to a rebuild: %s", i, ir[i].Incr.Reason)
		}
	}
}

// TestRecoveryRestoresIncrementalState kills a service after its first
// retrain (and the snapshot that follows it) and restarts over the same
// state directory: the incremental sufficient statistics must come back
// from the snapshot, and the first retrain of the recovered run must be
// a delta-apply, never a cold rebuild.
func TestRecoveryRestoresIncrementalState(t *testing.T) {
	l := genLog(t, 13, 8)
	cfg := durableConfig(t.TempDir())

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed past the first retrain (InitialTrain = 3w) with enough tail
	// that the collector reaches the post-retrain snapshot point.
	split := l.Start() + 4*week.Milliseconds()
	ingestAll(t, s1, &raslog.Log{Name: l.Name, Events: l.Window(l.Start(), split)})
	// The kill must land after the first retrain AND the snapshot the
	// collector writes at its next release point — crash() abandons the
	// store, so anything still pending is lost (that's the point).
	waitFor(t, 30*time.Second, func() bool {
		return len(s1.Stats().Retrains) >= 1 && s1.m.snapshots.Value() >= 1
	})
	s1.crash()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Recovery().IncrRestored {
		t.Fatal("snapshot recovery did not restore incremental state")
	}
	ingestAll(t, s2, &raslog.Log{Name: l.Name, Events: l.Window(split, l.End()+1)})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	recs := retrainRecords(t, s2)
	if len(recs) < 2 {
		t.Fatalf("recovered run completed %d retrains; want >= 2", len(recs))
	}
	// Record 0 predates the kill (restored with the snapshot): it was the
	// cold build. Every retrain the recovered process itself ran must be
	// a delta-apply on the restored statistics.
	if !recs[0].Incr.Rebuild {
		t.Error("pre-kill first retrain should have been the cold rebuild")
	}
	for _, r := range recs[1:] {
		if r.Incr == nil {
			t.Fatalf("retrain at %d missing IncrInfo", r.At)
		}
		if r.Incr.Rebuild {
			t.Errorf("retrain at %d after recovery cold-rebuilt: %s", r.At, r.Incr.Reason)
		}
	}
}

// TestRecoveryWithoutIncrState pins the fallback: a NoIncremental writer
// leaves no incremental state in its snapshots, and a default (incremental)
// reader recovering from them simply cold-rebuilds on its next retrain —
// recovery never depends on the field being present.
func TestRecoveryWithoutIncrState(t *testing.T) {
	l := genLog(t, 13, 8)
	cfg := durableConfig(t.TempDir())
	cfg.NoIncremental = true

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	split := l.Start() + 4*week.Milliseconds()
	ingestAll(t, s1, &raslog.Log{Name: l.Name, Events: l.Window(l.Start(), split)})
	s1.crash()

	cfg.NoIncremental = false
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Recovery().IncrRestored {
		t.Error("restored incremental state from a batch-only snapshot")
	}
	ingestAll(t, s2, &raslog.Log{Name: l.Name, Events: l.Window(split, l.End()+1)})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := retrainRecords(t, s2)
	var own []RetrainRecord
	for _, r := range recs {
		if r.Incr != nil {
			own = append(own, r)
		}
	}
	if len(own) == 0 {
		t.Fatal("recovered service never retrained incrementally")
	}
	if !own[0].Incr.Rebuild {
		t.Error("first incremental retrain without restored state must cold-rebuild")
	}
	for _, r := range own[1:] {
		if r.Incr.Rebuild {
			t.Errorf("retrain at %d cold-rebuilt: %s", r.At, r.Incr.Reason)
		}
	}
}
