// Package stream is the online half of the framework: a long-running
// ingestion and prediction service wrapping the same machinery the batch
// engine replays offline (paper §4.3 — "an event-driven approach is well
// suited for online failure prediction").
//
// Events flow through a concurrent pipeline:
//
//		Ingest ─→ sequencer ─→ per-location shards ─→ collector ─→ predictor
//		           (reorder       (temporal filter       (seq-ordered merge,
//		            buffer,        + categorizer,         spatial filter,
//		            late drop)     parallel)              observe, retrain)
//
//	  - The sequencer tolerates out-of-order arrivals with a bounded
//	    reorder buffer keyed on timestamp: events are released once the
//	    high-water mark has advanced past them by ReorderWindow (or the
//	    buffer overflows its limit). Events older than the release point
//	    are counted and dropped, preserving the sorted-stream invariant
//	    every downstream stage requires.
//	  - Shards run the streaming temporal filter (state is keyed by
//	    location, and a location is pinned to one shard) and the
//	    categorizer in parallel. Every event is forwarded — kept or not —
//	    carrying its sequence number, so the collector can restore the
//	    exact global order.
//	  - The single collector goroutine reassembles sequence order, applies
//	    the (globally-stateful) spatial filter, feeds the predictor, and
//	    accumulates history for retraining. Equivalence with the batch
//	    preprocessor on in-order input is pinned by TestPipelineMatchesBatch.
//	  - Retraining runs in the background on a snapshot of the history
//	    window (policies Static / Sliding / Whole, as in the engine) and
//	    swaps the refreshed predictor in via atomic.Pointer — the hot
//	    observe path takes no lock and never waits on a retrain.
//
// All queues are bounded; a full pipeline exerts backpressure on Ingest
// rather than buffering without limit. Close drains everything in order.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/learner"
	"repro/internal/learner/incr"
	"repro/internal/meta"
	"repro/internal/persist"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("stream: service closed")

// ErrSaturated is returned by Ingest/IngestBatch when the pipeline stayed
// full for the whole admission wait (Config.AdmitWait). The event was NOT
// accepted; the caller may retry. The HTTP layer maps it to 429 with a
// Retry-After header. Errors arrive wrapped — test with errors.Is.
var ErrSaturated = errors.New("stream: pipeline saturated")

// errCommit marks a batch that was admitted and sequenced but whose WAL
// commit failed or could not be confirmed (write error, fsync error,
// store torn down mid-coalesce). The events were NOT acknowledged as
// durable; the HTTP layer maps it to 503 and the client re-sends under
// the resume contract — the at-least-once side of ack-implies-durable.
var errCommit = errors.New("stream: durable commit failed")

// ErrStandby is returned by Ingest/IngestBatch/TrainNow on a standby
// service (Config.Standby): a follower takes its events from the leader's
// WAL, never from clients — accepting direct ingest would fork the
// replicated stream. The HTTP layer maps it to 503 (the same resume
// contract as a restarting daemon: clients back off and retry, and after
// promotion the retry lands). Errors arrive wrapped — test with errors.Is.
var ErrStandby = errors.New("stream: standby replica (not accepting ingest; promote first)")

// Config parameterizes a Service. Durations are measured in *stream time*
// (event timestamps), so replayed or time-compressed feeds retrain on
// their own timeline, exactly like the offline engine.
type Config struct {
	// Filter is the preprocessing filter (threshold + tupling mode).
	Filter preprocess.Filter
	// Params carries the prediction window W_P.
	Params learner.Params
	// Policy selects the training-set evolution (engine.Static /
	// engine.Sliding / engine.Whole).
	Policy engine.Policy
	// InitialTrain is how much stream time must accumulate before the
	// first training (paper default 26 weeks).
	InitialTrain time.Duration
	// TrainWindow is the sliding training-set length (Policy == Sliding).
	TrainWindow time.Duration
	// RetrainEvery is W_R, the retraining cadence.
	RetrainEvery time.Duration
	// Meta supplies the learners and reviser; nil means meta.New().
	Meta *meta.MetaLearner
	// Parallelism bounds background-training concurrency (base learners,
	// Apriori counting, reviser scoring): 0 means GOMAXPROCS, 1 forces
	// the serial pipeline. The trained rule set is identical either way.
	Parallelism int
	// RetrainLimiter bounds concurrent *background* training passes
	// across every service sharing it (fleet mode: thousands of tenants
	// must not rebuild rules simultaneously). Nil means unlimited.
	// Inline passes — SyncRetrain, WAL replay, TrainNow — bypass it.
	RetrainLimiter *RetrainLimiter

	// Shards is the number of parallel temporal-filter/categorizer
	// workers. Zero means 4.
	Shards int
	// QueueLen is the per-channel buffer length. Zero means 1024.
	QueueLen int
	// ReorderWindow is the out-of-order tolerance in stream time: an
	// event is released from the reorder buffer once the newest seen
	// timestamp exceeds it by this much. Zero means 60s.
	ReorderWindow time.Duration
	// ReorderLimit caps the reorder buffer; overflow releases the oldest
	// event early. Zero means 4096.
	ReorderLimit int
	// WarningsKeep is how many recent warnings GET /warnings can serve.
	// Zero means 256.
	WarningsKeep int
	// AdmitWait bounds how long Ingest/IngestBatch block against a
	// saturated pipeline before giving up with ErrSaturated. Backpressure
	// still applies — callers wait up to this long for a queue slot — but
	// a wedged or overdriven service sheds load in bounded time instead of
	// holding every caller (and its request body) hostage. Zero means 30s,
	// a library-level backstop; cmd/serve defaults its -admit-wait flag
	// much lower.
	AdmitWait time.Duration

	// StateDir enables durable state — snapshots plus a write-ahead log
	// rooted at this directory (see internal/persist and DESIGN.md §9).
	// On New, the newest valid snapshot is loaded and the WAL tail is
	// replayed through the pipeline before intake starts; empty disables
	// persistence entirely.
	StateDir string
	// Standby starts the service as a hot-standby replica (DESIGN.md §14):
	// recovery runs as usual, but the pipeline goroutines do not start and
	// Ingest/IngestBatch refuse with ErrStandby. Events arrive instead via
	// a Follower tailing a leader's WAL segments, replayed serially through
	// the recovery path, so the replica's state tracks the leader's exactly.
	// Promote() ends standby: it seeds the sequencer at the replicated
	// position and starts the live pipeline. Requires StateDir (the replica
	// keeps its own durable WAL so a promoted leader can itself recover).
	Standby bool
	// WALFlushEvery pushes the WAL write buffer to the OS every this many
	// records (persist.Options.FlushEvery). Zero means 64; 1 makes every
	// sequenced event durable against process death at an obvious
	// throughput cost.
	WALFlushEvery int
	// WALRotateBytes is the WAL segment rotation size. Zero means 8 MiB.
	WALRotateBytes int64
	// SyncMaxWait is the WAL commit pipeline's coalescing delay
	// (persist.Options.SyncMaxWait): how long the background syncer may
	// linger after a batch lands so more batches join the shared fsync.
	// Zero syncs as soon as the disk is free; coalescing still happens
	// whenever an fsync is already in flight.
	SyncMaxWait time.Duration
	// WALSyncExec, when set, bounds this service's background WAL fsyncs
	// under an executor shared with other services (fleet mode: many
	// tenant stores on one disk). Nil runs fsyncs directly.
	WALSyncExec *persist.SyncExecutor
	// SyncRetrain runs (re)training inline on the collector goroutine
	// instead of in the background. Ingestion stalls for the duration of
	// a pass, but the predictor swap then lands at a deterministic stream
	// position — which is what makes a crashed-and-recovered run
	// byte-identical to an uninterrupted one (WAL replay always trains
	// inline, so only a service that also *ran* synchronously can be
	// reproduced exactly; an async service recovers to an equivalent
	// state whose swap points may differ by a few events).
	SyncRetrain bool
	// NoIncremental disables incremental sufficient-statistics maintenance
	// across retrains (internal/learner/incr) and restores the batch-only
	// training path. Incremental maintenance is on by default: each retrain
	// delta-applies the events that entered/expired from the training
	// window and falls back to a full rebuild on parameter changes,
	// backwards window moves, or a drift-audit mismatch, so the learned
	// rules are identical either way. The switch exists for measurement
	// and equivalence testing.
	NoIncremental bool
}

// Defaults returns the paper's parameters: 300 s filter threshold,
// W_P = 300 s, dynamic retraining every 4 weeks on a sliding six-month
// window.
func Defaults() Config {
	const week = 7 * 24 * time.Hour
	return Config{
		Filter:       preprocess.Filter{Threshold: 300},
		Params:       learner.Params{WindowSec: 300},
		Policy:       engine.Sliding,
		InitialTrain: 26 * week,
		TrainWindow:  26 * week,
		RetrainEvery: 4 * week,
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Params.WindowSec <= 0 {
		return out, fmt.Errorf("stream: WindowSec = %d, need > 0", out.Params.WindowSec)
	}
	if out.InitialTrain <= 0 {
		return out, errors.New("stream: InitialTrain must be > 0")
	}
	if out.Policy == engine.Sliding && out.TrainWindow <= 0 {
		return out, errors.New("stream: sliding policy needs TrainWindow > 0")
	}
	if out.Policy != engine.Static && out.RetrainEvery <= 0 {
		return out, errors.New("stream: dynamic policy needs RetrainEvery > 0")
	}
	if out.Meta == nil {
		out.Meta = meta.New()
	}
	if out.Parallelism != 0 {
		out.Meta.SetParallelism(out.Parallelism)
	}
	if out.Shards <= 0 {
		out.Shards = 4
	}
	if out.QueueLen <= 0 {
		out.QueueLen = 1024
	}
	if out.ReorderWindow <= 0 {
		out.ReorderWindow = time.Minute
	}
	if out.ReorderLimit <= 0 {
		out.ReorderLimit = 4096
	}
	if out.WarningsKeep <= 0 {
		out.WarningsKeep = 256
	}
	if out.AdmitWait <= 0 {
		out.AdmitWait = 30 * time.Second
	}
	return out, nil
}

// seqEvent travels sequencer → shard.
type seqEvent struct {
	seq uint64
	e   raslog.Event
}

// shardOut travels shard → collector. Every sequenced event arrives here,
// kept or not, so the collector can release in exact sequence order.
type shardOut struct {
	seq  uint64
	te   preprocess.TaggedEvent
	kept bool
}

// RetrainRecord is one background (re)training, for /stats and tests.
type RetrainRecord struct {
	// At is the stream-time boundary (ms) the training set ends at.
	At int64 `json:"at_ms"`
	engine.Retraining
	// Err is non-empty when the pass failed (the previous rule set stays
	// live).
	Err string `json:"err,omitempty"`
}

// Service is the streaming prediction service. Create with New, feed with
// Ingest (safe for concurrent use), read Warnings/Stats at any time, and
// Close to drain.
type Service struct {
	cfg  Config
	repo *meta.Repository
	zer  *preprocess.Categorizer
	// setCache carries Apriori event sets across the overlapping training
	// snapshots of successive retrainings (see learner.EventSetCache).
	setCache *learner.EventSetCache
	// incrState maintains the windowed sufficient statistics that turn a
	// retrain into a delta-apply (nil when Config.NoIncremental). Retrains
	// are serialized by the retraining flag, so Advance/Install never race;
	// snapshot Export runs under the state's own lock.
	incrState *incr.State

	pr        atomic.Pointer[predictor.Predictor]
	lastFatal atomic.Int64
	// lastWarn mirrors the live predictor's per-family dedup marks (every
	// emitted warning passes through process), so a swapped-in predictor
	// can be seeded without touching the old one across goroutines.
	lastWarn [3]atomic.Int64

	seqCh     chan ingestMsg
	shardChs  []chan seqEvent
	collectCh chan shardOut

	// Durable-state plumbing; all nil/zero when StateDir is empty.
	// spatial and next live on the Service (not as collector locals) so
	// snapshots and WAL replay share the collector's exact state.
	store       *persist.Store
	spatial     *preprocess.SpatialStage
	tempMirror  *preprocess.TemporalStage // collector-side mirror of the shard stages
	tempSeed    []preprocess.TemporalEntry
	next        uint64 // collector position: next sequence to release
	afterTemp   int64  // cut-consistent tally of temporal-filter survivors
	seqStart    uint64 // sequencer resume position after recovery
	seqTimeSeed int64  // sequencer lastEmitted/maxSeen seed after recovery
	replaying   bool
	snapPending atomic.Bool
	recovery    RecoveryInfo
	finalSnap   sync.Once

	closeMu    sync.RWMutex
	closed     bool
	pipelineOn bool          // goroutines running (false while standby)
	done       chan struct{} // collector finished

	// standby mirrors Config.Standby until promotion flips it; transitions
	// happen under closeMu.Lock (promote) so intake checks under RLock are
	// exact, and reads elsewhere (Stats) take the atomic view. promoteHook
	// lets a Follower interpose its orderly shutdown in front of the state
	// flip when POST /promote arrives through the service mux.
	standby     atomic.Bool
	promoteHook atomic.Pointer[func() error]
	// replNext / leaderSeq are the follower loop's published positions
	// (s.next itself is goroutine-private), read racily by Stats.
	replNext  uint64
	leaderSeq uint64
	// backfill is the bounded-memory historical intake (backfill.go); at
	// most one runs at a time.
	backfill backfillState

	retraining atomic.Bool
	retrainWG  sync.WaitGroup

	// m holds every counter, gauge and histogram (see metrics.go).
	// Stats() and GET /metrics are two views over these instruments.
	// The next-retrain gauge is special: its transitions are compound
	// (read-check-advance) and therefore guarded by mu.
	m *metrics

	mu       sync.Mutex
	history  []preprocess.TaggedEvent
	retrains []RetrainRecord

	// The warnings ring lives under its own mutex, NOT under mu: readers
	// (GET /warnings, the fleet firehose) copy the ring here and format it
	// outside any lock, so a slow reader can never hold the service mutex
	// against the collector's hot path. The collector takes warnMu only on
	// the rare event that actually emits warnings.
	warnMu   sync.Mutex
	warnings []predictor.Warning // ring of the last WarningsKeep
}

// Stream-time accessors over the metric gauges (ms). streamStart is -1
// until the first event; nextRetrain is -1 when no training will ever be
// due again.
func (s *Service) streamStartMs() int64 { return int64(s.m.streamStart.Value()) }
func (s *Service) watermarkMs() int64   { return int64(s.m.watermark.Value()) }
func (s *Service) nextRetrainMs() int64 { return int64(s.m.nextRetrain.Value()) }

// New validates cfg, starts the pipeline goroutines, and returns the
// running service. With Config.Standby the goroutines are deferred until
// Promote: the service recovers its durable state and then waits to be
// fed by a Follower.
func New(cfg Config) (*Service, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if full.Standby && full.StateDir == "" {
		return nil, errors.New("stream: Standby requires StateDir")
	}
	s := &Service{
		cfg:       full,
		repo:      meta.NewRepository(),
		zer:       preprocess.NewCategorizer(preprocess.NewCatalog()),
		setCache:  learner.NewEventSetCache(),
		spatial:   preprocess.NewSpatialStage(full.Filter),
		seqCh:     make(chan ingestMsg, full.QueueLen),
		shardChs:  make([]chan seqEvent, full.Shards),
		collectCh: make(chan shardOut, full.QueueLen),
		done:      make(chan struct{}),
	}
	s.lastFatal.Store(-1)
	for i := range s.lastWarn {
		s.lastWarn[i].Store(-1)
	}
	s.seqTimeSeed = -1 << 62
	for i := range s.shardChs {
		s.shardChs[i] = make(chan seqEvent, full.QueueLen)
	}
	s.m = newMetrics(s) // after the channels: queue gauges read them
	if !full.NoIncremental {
		// Before recover(): a persisted snapshot may carry incremental
		// state to restore, sparing the first post-recovery retrain a
		// cold rebuild.
		s.incrState = incr.New(meta.IncrConfig(full.Meta, full.Params))
	}

	if full.StateDir != "" {
		// Recovery runs before any pipeline goroutine exists: the snapshot
		// is restored and the WAL tail replayed serially through the same
		// stage logic, then intake resumes where the durable log ends.
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	if full.Standby {
		// A standby stays in the recovery posture: replaying remains set so
		// replicated retrains run inline at deterministic stream positions
		// (exactly like WAL replay), and no pipeline goroutine exists until
		// promotion. The Follower feeds applyReplicated serially.
		s.standby.Store(true)
		s.replaying = true
		return s, nil
	}
	s.closeMu.Lock()
	s.startPipelineLocked()
	s.closeMu.Unlock()
	return s, nil
}

// startPipelineLocked launches the sequencer, shard, and collector
// goroutines. Caller holds closeMu.Lock; the sequencer reads seqStart and
// seqTimeSeed, so both must be final before the call.
func (s *Service) startPipelineLocked() {
	s.pipelineOn = true
	go s.sequencer()
	var shardWG sync.WaitGroup
	for i := range s.shardChs {
		shardWG.Add(1)
		go s.shard(i, &shardWG)
	}
	go func() {
		shardWG.Wait()
		close(s.collectCh)
	}()
	go s.collector()
}

// Ingest feeds one raw event. It blocks while the pipeline is saturated
// (backpressure) for at most Config.AdmitWait, then fails with
// ErrSaturated (or earlier with ctx's error); the event is accepted iff
// the return is nil. Events may arrive modestly out of order (within
// ReorderWindow); later ones are dropped and counted.
func (s *Service) Ingest(ctx context.Context, e raslog.Event) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.standby.Load() {
		return ErrStandby
	}
	if err := s.admit(ctx, ingestMsg{e: e}); err != nil {
		return err
	}
	s.m.ingested.Inc()
	return nil
}

// admit hands msg to the sequencer. The fast path is a non-blocking send
// — no timer, no allocation, so an unsaturated pipeline keeps the
// zero-alloc budget. Only when the queue is full does it arm a timer and
// wait up to AdmitWait, recording the stall either way: admission waits
// feed the backpressure histogram, timeouts the rejected counter (whose
// value therefore equals the number of 429s the HTTP layer produced).
// Caller holds closeMu.RLock, so seqCh cannot close under the send.
func (s *Service) admit(ctx context.Context, msg ingestMsg) error {
	select {
	case s.seqCh <- msg:
		return nil
	default:
	}
	t0 := time.Now()
	defer s.m.backpressure.Since(t0)
	timer := time.NewTimer(s.cfg.AdmitWait)
	defer timer.Stop()
	select {
	case s.seqCh <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		s.m.rejected.Inc()
		return fmt.Errorf("stream: no pipeline slot within %v: %w", s.cfg.AdmitWait, ErrSaturated)
	}
}

// IngestBatch feeds events as one unit: the batch enters the reorder
// buffer together, and everything it releases commits to the WAL as a
// single frame whose fsync is shared with every other batch in flight
// (cross-request group commit, DESIGN.md §15). With durable state on,
// the call returns only after that covering fsync lands — a nil error
// is an ack-implies-durable receipt for the batch's released events;
// events the reorder buffer retained (inside the tolerance window) stay
// in the accepted-but-buffered class exactly as before. The service
// takes ownership of the slice; the caller must not reuse it. Returns
// how many events were accepted — the whole batch, or zero when the
// service is closed, ctx expires, the pipeline stays saturated past
// Config.AdmitWait (ErrSaturated), or the commit could not be confirmed
// (errCommit → HTTP 503; the client re-sends, at-least-once).
func (s *Service) IngestBatch(ctx context.Context, events []raslog.Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.standby.Load() {
		return 0, ErrStandby
	}
	msg := ingestMsg{batch: events}
	if s.store != nil {
		// One small allocation per batch (not per event): the ack channel
		// the sequencer hands the commit ticket back on. The store-less
		// path stays allocation-free (BenchmarkIngestBatch).
		msg.ack = make(chan persist.Ticket, 1)
	}
	if err := s.admit(ctx, msg); err != nil {
		return 0, err
	}
	s.m.ingested.Add(int64(len(events)))
	if msg.ack == nil {
		return len(events), nil
	}
	// The batch is admitted and will be sequenced; we only decide what to
	// tell the caller. Sequencing of later batches overlaps this wait —
	// the pipeline, not the request, owns the fsync.
	var t persist.Ticket
	select {
	case t = <-msg.ack:
	case <-ctx.Done():
		return 0, fmt.Errorf("stream: batch admitted but commit unconfirmed: %w", ctx.Err())
	}
	if err := t.Wait(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, fmt.Errorf("stream: batch admitted but commit unconfirmed: %w", err)
		}
		return 0, fmt.Errorf("%w: %v", errCommit, err)
	}
	return len(events), nil
}

// Close stops intake, drains every stage in order, waits for in-flight
// retraining, and returns. Safe to call more than once.
func (s *Service) Close() error {
	s.closeMu.Lock()
	already := s.closed
	pipelineOn := s.pipelineOn
	if !already {
		s.closed = true
		close(s.seqCh)
	}
	s.closeMu.Unlock()
	if pipelineOn {
		<-s.done
	}
	s.retrainWG.Wait()
	var err error
	if s.store != nil {
		// Graceful shutdown snapshots the fully-drained state, so the next
		// start replays no WAL at all. After crash() the store is dead and
		// both calls are no-ops — that is the point of the simulation.
		s.finalSnap.Do(func() {
			s.writeSnapshot()
			err = s.store.Close()
		})
	}
	return err
}

// ---------------------------------------------------------------------------
// Sequencer: bounded reorder buffer keyed on timestamp.
// ---------------------------------------------------------------------------

// ingestMsg travels Ingest/IngestBatch → sequencer. Exactly one of the
// event fields is meaningful: batch == nil is the single-event form. A
// batch is sequenced as one unit, so everything it releases shares one
// WAL group commit. ack, when non-nil (durable batch ingest), receives
// exactly one commit ticket once the batch has been sequenced: the
// ticket covers the events the batch released from the reorder buffer,
// and IngestBatch holds the caller's 200 until it resolves.
type ingestMsg struct {
	e     raslog.Event
	batch []raslog.Event
	ack   chan persist.Ticket
}

type heapEntry struct {
	e       raslog.Event
	arrival uint64 // tie-break so equal timestamps keep arrival order
}

// eventHeap is a concrete-typed binary min-heap ordered by (time,
// arrival). container/heap's interface{} methods box every entry on
// Push and Pop — two heap allocations per event on the hottest path in
// the service; with the entry type fixed, push and pop touch only the
// reused backing array.
type eventHeap struct {
	buf []heapEntry
}

func (h *eventHeap) len() int { return len(h.buf) }

func (h *eventHeap) less(i, j int) bool {
	if h.buf[i].e.Time != h.buf[j].e.Time {
		return h.buf[i].e.Time < h.buf[j].e.Time
	}
	return h.buf[i].arrival < h.buf[j].arrival
}

func (h *eventHeap) push(ent heapEntry) {
	h.buf = append(h.buf, ent)
	i := len(h.buf) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.buf[i], h.buf[parent] = h.buf[parent], h.buf[i]
		i = parent
	}
}

func (h *eventHeap) pop() heapEntry {
	top := h.buf[0]
	last := len(h.buf) - 1
	h.buf[0] = h.buf[last]
	h.buf[last] = heapEntry{} // drop the string references
	h.buf = h.buf[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.buf[i], h.buf[small] = h.buf[small], h.buf[i]
		i = small
	}
	return top
}

func (s *Service) sequencer() {
	var (
		buf     eventHeap
		arrival uint64
		// After recovery, sequence numbers continue where the durable WAL
		// ends and the time floor continues at the recovered watermark, so
		// re-fed events are neither double-logged nor mistaken for late.
		seq         = s.seqStart
		maxSeen     = s.seqTimeSeed
		lastEmitted = s.seqTimeSeed
		release     []seqEvent     // this round's releases, committed together
		walBatch    []raslog.Event // scratch for the group-commit frame
	)
	tolMs := s.cfg.ReorderWindow.Milliseconds()

	// emit stages one event released from the buffer. overflow marks a
	// release forced by the buffer cap alone (not yet past the tolerance):
	// such an event increments exactly one counter — lateDropped when it
	// is behind the emitted floor, reorderOverflow otherwise.
	emit := func(e raslog.Event, overflow bool) {
		if e.Time < lastEmitted {
			s.m.lateDropped.Inc()
			return
		}
		if overflow {
			s.m.reorderOverflow.Inc()
		}
		lastEmitted = e.Time
		release = append(release, seqEvent{seq: seq, e: e})
		seq++
	}

	// flush commits the staged releases — a burst takes one WAL frame no
	// matter its size (group commit), a burst of one from the non-acked
	// single-event path takes the buffered single-record path — then
	// forwards them to the shards. The frame is appended (enqueued in the
	// commit pipeline) before anything is forwarded: WAL-before-processing
	// holds as before. The fsync itself is asynchronous; the sequencer
	// hands the commit ticket back through ack (when the msg wants a
	// durable receipt) and moves straight on to the next batch, so
	// parse/sequence of the next request overlaps the in-flight fsync.
	// Forwarding ahead of the fsync is safe: a snapshot syncs the WAL
	// before it is written, so no durable state can ever claim a sequence
	// the log might still lose.
	flush := func(ack chan persist.Ticket) {
		if len(release) == 0 {
			if ack != nil {
				ack <- persist.Ticket{} // nothing released → nothing to await
			}
			return
		}
		var t persist.Ticket
		if s.store != nil {
			var n int
			var err error
			if len(release) == 1 && ack == nil {
				n, err = s.store.Append(release[0].seq, release[0].e)
			} else {
				walBatch = walBatch[:0]
				for i := range release {
					walBatch = append(walBatch, release[i].e)
				}
				n, t, err = s.store.AppendBatch(release[0].seq, walBatch)
			}
			if err != nil {
				s.m.walErrors.Inc()
				t = persist.FailedTicket(err)
			} else {
				s.m.walBytes.Add(int64(n))
			}
		}
		if ack != nil {
			ack <- t // buffered: never blocks the sequencer
		}
		for i := range release {
			s.m.sequenced.Inc()
			s.shardChs[shardOf(release[i].e.Location, len(s.shardChs))] <- release[i]
			release[i] = seqEvent{} // drop the string references
		}
		release = release[:0]
	}

	push := func(e raslog.Event) {
		if e.Time > maxSeen {
			maxSeen = e.Time
		}
		buf.push(heapEntry{e: e, arrival: arrival})
		arrival++
	}

	for msg := range s.seqCh {
		t0 := time.Now()
		if msg.batch != nil {
			for _, e := range msg.batch {
				push(e)
			}
		} else {
			push(msg.e)
		}
		for buf.len() > 0 && (buf.len() > s.cfg.ReorderLimit || buf.buf[0].e.Time <= maxSeen-tolMs) {
			overflow := buf.len() > s.cfg.ReorderLimit && buf.buf[0].e.Time > maxSeen-tolMs
			emit(buf.pop().e, overflow)
		}
		flush(msg.ack)
		s.m.reorderDepth.Set(float64(buf.len()))
		s.m.seqLatency.Since(t0)
	}
	// Intake closed: flush the buffer in order.
	for buf.len() > 0 {
		emit(buf.pop().e, false)
	}
	flush(nil)
	s.m.reorderDepth.Set(0)
	for _, ch := range s.shardChs {
		close(ch)
	}
}

// shardOf pins a location to a shard with inline FNV-1a. The hash/fnv
// object costs an allocation per event (plus the []byte(location)
// conversion); the loop below computes the identical hash, so shard
// assignment — and the re-split of snapshotted temporal state across
// shards — is unchanged.
func shardOf(location string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(location); i++ {
		h = (h ^ uint32(location[i])) * prime32
	}
	return int(h % uint32(n))
}

// ---------------------------------------------------------------------------
// Shards: parallel temporal filtering + categorization.
// ---------------------------------------------------------------------------

func (s *Service) shard(i int, wg *sync.WaitGroup) {
	defer wg.Done()
	temporal := preprocess.NewTemporalStage(s.cfg.Filter)
	if len(s.tempSeed) > 0 {
		// Recovery: re-split the snapshot's global temporal state across
		// the shards (a location is pinned to one shard, so each key has
		// exactly one home).
		rows := make([]preprocess.TemporalEntry, 0, len(s.tempSeed)/len(s.shardChs)+1)
		for _, row := range s.tempSeed {
			if shardOf(row.Location, len(s.shardChs)) == i {
				rows = append(rows, row)
			}
		}
		temporal.Restore(rows)
	}
	for se := range s.shardChs[i] {
		t0 := time.Now()
		out := shardOut{seq: se.seq}
		if temporal.Observe(se.e) {
			s.m.afterTemporal.Inc()
			class, fatal := s.zer.Categorize(se.e)
			out.te = preprocess.TaggedEvent{Event: se.e, Class: class, Fatal: fatal}
			out.kept = true
		} else {
			out.te.Event = se.e // carry the timestamp for the watermark
		}
		s.collectCh <- out
		s.m.shardLatency.Since(t0)
	}
}

// ---------------------------------------------------------------------------
// Collector: ordered merge, spatial filter, predictor, retrain trigger.
// ---------------------------------------------------------------------------

// pendingRing holds out-of-order shard outputs awaiting in-sequence
// release, slotted by sequence number into a power-of-two ring. The
// live window (newest seq − release position) is bounded by the
// in-flight capacity of the shard and collector channels, so the ring
// grows to a steady size once and then replaces the old map's per-event
// hashing, bucket allocation and tombstones with two array writes.
type pendingRing struct {
	buf []shardOut
	set []bool
}

// put stores o, growing the ring while o.seq would collide with a slot
// still inside the [next, next+len) window.
func (r *pendingRing) put(next uint64, o shardOut) {
	if len(r.buf) == 0 {
		r.buf = make([]shardOut, 64)
		r.set = make([]bool, 64)
	}
	for o.seq-next >= uint64(len(r.buf)) {
		r.grow()
	}
	i := o.seq & uint64(len(r.buf)-1)
	r.buf[i], r.set[i] = o, true
}

func (r *pendingRing) grow() {
	buf := make([]shardOut, 2*len(r.buf))
	set := make([]bool, 2*len(r.buf))
	for i, ok := range r.set {
		if ok {
			j := r.buf[i].seq & uint64(len(buf)-1)
			buf[j], set[j] = r.buf[i], true
		}
	}
	r.buf, r.set = buf, set
}

// take removes and returns the entry for seq, if present.
func (r *pendingRing) take(seq uint64) (shardOut, bool) {
	if len(r.buf) == 0 {
		return shardOut{}, false
	}
	i := seq & uint64(len(r.buf)-1)
	if !r.set[i] {
		return shardOut{}, false
	}
	o := r.buf[i]
	r.buf[i], r.set[i] = shardOut{}, false // drop the string references
	return o, true
}

func (s *Service) collector() {
	defer close(s.done)
	var pending pendingRing
	for out := range s.collectCh {
		pending.put(s.next, out)
		for {
			o, ok := pending.take(s.next)
			if !ok {
				break
			}
			s.next++
			t0 := time.Now()
			s.advance(o.te.Time)
			if s.tempMirror != nil {
				// Track the shards' temporal decisions so a snapshot can carry
				// one consistent global filter state (see preprocess.Record).
				s.tempMirror.Record(o.te.Event, o.kept)
			}
			if o.kept {
				s.afterTemp++
			}
			if o.kept && s.spatial.Observe(o.te.Event) {
				s.process(o.te)
			}
			s.maybeRetrain()
			if s.store != nil && s.snapPending.CompareAndSwap(true, false) {
				// A training pass completed (inline or in the background):
				// snapshot on the collector, where the cut at s.next is exact.
				s.writeSnapshot()
			}
			s.m.collectLatency.Since(t0)
		}
	}
}

// advance moves the stream clock.
func (s *Service) advance(t int64) {
	if s.streamStartMs() < 0 {
		s.m.streamStart.Set(float64(t))
		s.mu.Lock()
		s.m.nextRetrain.Set(float64(t + s.cfg.InitialTrain.Milliseconds()))
		s.mu.Unlock()
	}
	if t > s.watermarkMs() {
		s.m.watermark.Set(float64(t))
	}
}

// process feeds one fully-filtered event to the history and the live
// predictor. Runs only on the collector goroutine; the predictor pointer
// is loaded once per event and never locked.
func (s *Service) process(te preprocess.TaggedEvent) {
	s.m.processed.Inc()
	var warns []predictor.Warning
	if pr := s.pr.Load(); pr != nil {
		warns = pr.Observe(te)
	}
	if te.Fatal {
		s.m.fatals.Inc()
		s.lastFatal.Store(te.Time)
	}

	for _, w := range warns {
		// Keep the dedup mirror current (see the lastWarn field comment).
		if i := int(w.Source); i >= 0 && i < len(s.lastWarn) && w.Time > s.lastWarn[i].Load() {
			s.lastWarn[i].Store(w.Time)
		}
	}

	s.mu.Lock()
	s.history = append(s.history, te)
	s.trimHistoryLocked()
	s.mu.Unlock()
	if len(warns) > 0 {
		s.m.warningsTotal.Add(int64(len(warns)))
		s.warnMu.Lock()
		s.warnings = append(s.warnings, warns...)
		if over := len(s.warnings) - s.cfg.WarningsKeep; over > 0 {
			s.warnings = append(s.warnings[:0], s.warnings[over:]...)
		}
		s.warnMu.Unlock()
	}
}

// trimHistoryLocked bounds the history to what future retrainings can
// use: nothing after a Static service has trained, the sliding window
// (plus the untrained remainder) otherwise. Whole keeps everything.
func (s *Service) trimHistoryLocked() {
	switch s.cfg.Policy {
	case engine.Static:
		if len(s.retrains) > 0 {
			s.history = s.history[:0]
		}
	case engine.Sliding:
		if len(s.history)%1024 != 0 {
			return
		}
		cutoff := s.nextRetrainMs() - s.cfg.TrainWindow.Milliseconds()
		i := 0
		for i < len(s.history) && s.history[i].Time < cutoff {
			i++
		}
		if i > 0 {
			s.history = append(s.history[:0], s.history[i:]...)
		}
	}
}

// maybeRetrain starts a background training pass when the stream clock
// crosses the next boundary and none is in flight.
func (s *Service) maybeRetrain() {
	wm := s.watermarkMs()
	s.mu.Lock()
	at := s.nextRetrainMs()
	due := at > 0 && wm >= at
	s.mu.Unlock()
	if !due || !s.retraining.CompareAndSwap(false, true) {
		return
	}
	snapshot, from := s.snapshotTrainingSet(at)
	s.mu.Lock()
	if s.cfg.Policy == engine.Static {
		s.m.nextRetrain.Set(-1) // never again
	} else {
		s.m.nextRetrain.Set(float64(at + s.cfg.RetrainEvery.Milliseconds()))
	}
	s.mu.Unlock()
	s.retrainWG.Add(1)
	if s.cfg.SyncRetrain || s.replaying {
		// Inline on the caller (the collector, or recovery's replay loop):
		// the swap lands at a deterministic stream position. WAL replay must
		// train inline regardless of configuration — the events that would
		// have fed a background pass are being replayed synchronously.
		s.retrain(at, from, snapshot)
	} else if lim := s.cfg.RetrainLimiter; lim != nil {
		// Fleet mode: wait for a fleet-wide training slot off the hot
		// path. Ingestion and prediction continue on the old rules while
		// the pass queues; s.retraining stays set, so this service cannot
		// stack up a second pending pass behind the first.
		go func() {
			lim.acquire()
			defer lim.release()
			s.retrain(at, from, snapshot)
		}()
	} else {
		go s.retrain(at, from, snapshot)
	}
}

// snapshotTrainingSet copies the policy's training slice ending at the
// stream-time boundary `at` (ms), returning the slice and its window
// start (the event-set cache needs both bounds).
func (s *Service) snapshotTrainingSet(at int64) ([]preprocess.TaggedEvent, int64) {
	var from int64 = -1 << 62
	if s.cfg.Policy == engine.Sliding {
		from = at - s.cfg.TrainWindow.Milliseconds()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]preprocess.TaggedEvent, 0, len(s.history))
	for _, te := range s.history {
		if te.Time >= from && te.Time < at {
			out = append(out, te)
		}
	}
	return out, from
}

// retrain runs one training pass off the hot path and atomically swaps
// the refreshed predictor in. On error the previous rule set stays live.
// With incremental maintenance on (the default), the pass first advances
// the sufficient-statistics window by the events that entered/expired
// since the last retrain and the learners then read the maintained
// counters instead of re-mining the snapshot; otherwise event sets are
// reused across retrainings via setCache. Either way the snapshot slices
// differ call to call, but the stream content over any shared [time)
// range is identical, which is all the maintained state depends on.
func (s *Service) retrain(at, from int64, snapshot []preprocess.TaggedEvent) RetrainRecord {
	defer s.retrainWG.Done()
	rec := RetrainRecord{At: at}
	pre := learner.Prepare(snapshot)
	var incrInfo *engine.IncrInfo
	if s.incrState != nil {
		ta := time.Now()
		d := s.incrState.Advance(snapshot, from, at, s.cfg.Params)
		s.incrState.Install(pre)
		incrInfo = &engine.IncrInfo{Applied: d.Applied, Expired: d.Expired,
			Rebuild: d.Rebuild, Reason: d.Reason, AdvanceDuration: time.Since(ta)}
	} else {
		pre.SetsFor = func(windowMs int64, maxItems int) []learner.EventSet {
			return s.setCache.Sets(snapshot, from, at, windowMs, maxItems)
		}
	}
	rt, err := engine.TrainStepPrepared(s.cfg.Meta, s.repo, pre, s.cfg.Params)
	rt.Incr = incrInfo
	if err != nil {
		rec.Err = err.Error()
		s.m.training.RecordError()
	} else {
		rec.Retraining = rt
		s.swapPredictor()
		s.m.training.Record(rt)
		if s.store != nil && !s.replaying {
			// Ask the collector to snapshot at its next release point; during
			// replay the WAL files are being read, so snapshotting (which
			// truncates them) waits until recovery finishes.
			s.snapPending.Store(true)
		}
	}
	s.mu.Lock()
	s.retrains = append(s.retrains, rec)
	if s.cfg.Policy == engine.Static && err == nil {
		s.history = s.history[:0] // a static service never trains again
	}
	s.mu.Unlock()
	s.retraining.Store(false)
	// The stream may have crossed the next boundary while we trained (or
	// gone idle right after); catch up instead of waiting for the next
	// processed event. WG ordering is safe: this Add (if any) happens
	// before our own Done.
	s.maybeRetrain()
	return rec
}

// swapPredictor builds a predictor over the repository's current rules
// and publishes it copy-on-write; the observe path picks it up on its
// next Load with no synchronization beyond the atomic pointer.
func (s *Service) swapPredictor() {
	rules := s.repo.Rules()
	pr := predictor.New(rules, s.cfg.Params)
	pr.GlobalDedup = true
	// Alarm spacing stays at the base rule-generation window even when
	// the service runs a wider prediction window, matching the offline
	// engine's counting exactly.
	engine.ClampDedup(pr, s.cfg.Params.WindowSec)
	if lf := s.lastFatal.Load(); lf >= 0 {
		pr.SeedLastFatal(lf)
	}
	// Seed the dedup marks from the service-level mirror, not from the old
	// predictor (which the collector may be mutating concurrently). Without
	// this, seeding lastFatal alone re-arms the distribution expert and it
	// re-warns off the pre-swap fatal — TestSwapPredictorKeepsWarnSpacing.
	pr.SeedLastWarn([3]int64{s.lastWarn[0].Load(), s.lastWarn[1].Load(), s.lastWarn[2].Load()})
	s.pr.Store(pr)
	s.m.rules.Set(float64(len(rules)))
}

// ErrNoEvents is returned by TrainNow before the first event has reached
// the collector: there is no history to train on and no stream clock to
// schedule against.
var ErrNoEvents = errors.New("stream: no events observed yet; nothing to train on")

// TrainNow runs a synchronous training pass over the accumulated history
// up to the current watermark and swaps the result in. It is the manual
// override of the stream-time schedule (exposed as POST /retrain): a
// successful pass counts against the schedule, so the next automatic
// training happens one full cadence later instead of re-firing on
// near-identical data.
func (s *Service) TrainNow() (RetrainRecord, error) {
	if s.standby.Load() {
		return RetrainRecord{}, ErrStandby
	}
	if s.streamStartMs() < 0 {
		return RetrainRecord{}, ErrNoEvents
	}
	if !s.retraining.CompareAndSwap(false, true) {
		return RetrainRecord{}, errors.New("stream: retraining already in flight")
	}
	at := s.watermarkMs() + 1
	// Claim the schedule before training, exactly like maybeRetrain:
	// retrain's trailing catch-up must not see a stale boundary and
	// immediately re-fire the scheduled pass on the data we just used.
	s.mu.Lock()
	prev := s.nextRetrainMs()
	next := prev
	if s.cfg.Policy == engine.Static {
		next = -1 // a static service trains once; this was it
	} else if t := at + s.cfg.RetrainEvery.Milliseconds(); t > next {
		next = t
	}
	s.m.nextRetrain.Set(float64(next))
	s.mu.Unlock()
	snapshot, from := s.snapshotTrainingSet(at)
	s.retrainWG.Add(1)
	rec := s.retrain(at, from, snapshot)
	if rec.Err != "" {
		// The pass failed: hand the schedule back (unless a concurrent
		// scheduled pass moved it in the meantime).
		s.mu.Lock()
		if s.nextRetrainMs() == next {
			s.m.nextRetrain.Set(float64(prev))
		}
		s.mu.Unlock()
		return rec, errors.New(rec.Err)
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

// Warnings returns up to n of the most recent warnings, newest last. The
// copy is taken under the warnings ring's own short critical section —
// never under the service mutex — so callers that consume the result
// slowly (a firehose reader on a congested socket) cannot stall the
// collector (TestWarningsReaderDoesNotStallPipeline).
func (s *Service) Warnings(n int) []predictor.Warning {
	s.warnMu.Lock()
	defer s.warnMu.Unlock()
	if n <= 0 || n > len(s.warnings) {
		n = len(s.warnings)
	}
	return append([]predictor.Warning(nil), s.warnings[len(s.warnings)-n:]...)
}

// Rules returns the live predictor's rule set (nil before first training).
func (s *Service) Rules() []learner.Rule {
	pr := s.pr.Load()
	if pr == nil {
		return nil
	}
	return pr.Rules()
}

// QueueDepths reports the instantaneous channel occupancy per stage.
type QueueDepths struct {
	Sequencer int   `json:"sequencer"`
	Reorder   int   `json:"reorder"`
	Shards    []int `json:"shards"`
	Collector int   `json:"collector"`
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Ingested counts events accepted by Ingest; Sequenced the events
	// released in order (Ingested - Sequenced - LateDropped are still
	// buffered); LateDropped the events beyond the reorder tolerance.
	Ingested    int64 `json:"ingested"`
	Sequenced   int64 `json:"sequenced"`
	LateDropped int64 `json:"late_dropped"`
	// Rejected counts ingest calls that timed out against a saturated
	// pipeline (ErrSaturated — one per HTTP 429 the ingest handlers
	// returned). The events were never accepted and are not in Ingested.
	Rejected int64 `json:"ingest_rejected"`
	// ReorderOverflow counts events released early by the buffer cap while
	// still inside the reorder tolerance (disjoint from LateDropped: a
	// forced release increments exactly one of the two).
	ReorderOverflow int64 `json:"reorder_overflow"`
	// AfterTemporal / Processed are the filter's per-stage survivors;
	// CompressionRate is 1 - Processed/Sequenced.
	AfterTemporal   int64   `json:"after_temporal"`
	Processed       int64   `json:"processed"`
	CompressionRate float64 `json:"compression_rate"`
	Fatals          int64   `json:"fatals"`
	WarningsTotal   int64   `json:"warnings_total"`
	Rules           int64   `json:"rules"`
	Retraining      bool    `json:"retraining"`
	// StreamStart / Watermark / NextRetrain are stream-time (ms);
	// StreamStart is -1 before the first event and NextRetrain is -1 when
	// no training will ever be due again (static policy after its pass).
	StreamStart int64           `json:"stream_start_ms"`
	Watermark   int64           `json:"watermark_ms"`
	NextRetrain int64           `json:"next_retrain_ms"`
	Queues      QueueDepths     `json:"queues"`
	Retrains    []RetrainRecord `json:"retrains"`
	// Recovery describes the startup recovery pass; nil when the service
	// started without a StateDir or with an empty one.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
	// Role is "leader" for a live pipeline, "standby" for a replica
	// awaiting promotion. Standby holds the replica's replication state
	// while in standby; Backfill reports historical intake (both nil when
	// idle/irrelevant).
	Role     string        `json:"role"`
	Standby  *StandbyInfo  `json:"standby,omitempty"`
	Backfill *BackfillInfo `json:"backfill,omitempty"`
}

// StandbyInfo is a standby replica's replication position (Stats.Standby).
type StandbyInfo struct {
	// NextSeq is the next sequence the replica will apply; LeaderSeq the
	// leader's next append sequence at the last poll. LagSeq is their
	// difference, LagSeconds the stream-time distance between watermarks.
	NextSeq    uint64  `json:"next_seq"`
	LeaderSeq  uint64  `json:"leader_seq"`
	LagSeq     uint64  `json:"lag_seq"`
	LagSeconds float64 `json:"lag_seconds"`
	// Promotions counts standby→leader transitions (0 or 1 per process).
	Promotions int64 `json:"promotions"`
}

// Stats snapshots the service's instruments — the same registry GET
// /metrics exposes, so the JSON and Prometheus views cannot disagree.
// Instruments are read individually, so a snapshot taken mid-flight may
// be momentarily inconsistent (e.g. Processed ahead of a just-read
// Sequenced); each number is accurate.
func (s *Service) Stats() Stats {
	st := Stats{
		Ingested:        s.m.ingested.Value(),
		Sequenced:       s.m.sequenced.Value(),
		LateDropped:     s.m.lateDropped.Value(),
		Rejected:        s.m.rejected.Value(),
		ReorderOverflow: s.m.reorderOverflow.Value(),
		AfterTemporal:   s.m.afterTemporal.Value(),
		Processed:       s.m.processed.Value(),
		Fatals:          s.m.fatals.Value(),
		WarningsTotal:   s.m.warningsTotal.Value(),
		Rules:           int64(s.m.rules.Value()),
		Retraining:      s.retraining.Load(),
		StreamStart:     s.streamStartMs(),
		Watermark:       s.watermarkMs(),
		Queues: QueueDepths{
			Sequencer: len(s.seqCh),
			Reorder:   int(s.m.reorderDepth.Value()),
			Shards:    make([]int, len(s.shardChs)),
			Collector: len(s.collectCh),
		},
	}
	for i, ch := range s.shardChs {
		st.Queues.Shards[i] = len(ch)
	}
	if st.Sequenced > 0 {
		st.CompressionRate = 1 - float64(st.Processed)/float64(st.Sequenced)
	}
	s.mu.Lock()
	st.NextRetrain = s.nextRetrainMs()
	st.Retrains = append([]RetrainRecord(nil), s.retrains...)
	s.mu.Unlock()
	if s.store != nil {
		r := s.recovery
		st.Recovery = &r
	}
	st.Role = "leader"
	if s.standby.Load() {
		st.Role = "standby"
	}
	// A promoted replica keeps reporting its standby block so the
	// promotion count survives the role flip.
	if st.Role == "standby" || s.m.promotions.Value() > 0 {
		st.Standby = &StandbyInfo{
			NextSeq:    atomic.LoadUint64(&s.replNext),
			LeaderSeq:  atomic.LoadUint64(&s.leaderSeq),
			LagSeq:     uint64(s.m.standbyLagSeq.Value()),
			LagSeconds: s.m.standbyLagSeconds.Value(),
			Promotions: s.m.promotions.Value(),
		}
	}
	if b := s.backfillInfo(); b != nil {
		st.Backfill = b
	}
	return st
}
