// Package stream is the online half of the framework: a long-running
// ingestion and prediction service wrapping the same machinery the batch
// engine replays offline (paper §4.3 — "an event-driven approach is well
// suited for online failure prediction").
//
// Events flow through a concurrent pipeline:
//
//		Ingest ─→ sequencer ─→ per-location shards ─→ collector ─→ predictor
//		           (reorder       (temporal filter       (seq-ordered merge,
//		            buffer,        + categorizer,         spatial filter,
//		            late drop)     parallel)              observe, retrain)
//
//	  - The sequencer tolerates out-of-order arrivals with a bounded
//	    reorder buffer keyed on timestamp: events are released once the
//	    high-water mark has advanced past them by ReorderWindow (or the
//	    buffer overflows its limit). Events older than the release point
//	    are counted and dropped, preserving the sorted-stream invariant
//	    every downstream stage requires.
//	  - Shards run the streaming temporal filter (state is keyed by
//	    location, and a location is pinned to one shard) and the
//	    categorizer in parallel. Every event is forwarded — kept or not —
//	    carrying its sequence number, so the collector can restore the
//	    exact global order.
//	  - The single collector goroutine reassembles sequence order, applies
//	    the (globally-stateful) spatial filter, feeds the predictor, and
//	    accumulates history for retraining. Equivalence with the batch
//	    preprocessor on in-order input is pinned by TestPipelineMatchesBatch.
//	  - Retraining runs in the background on a snapshot of the history
//	    window (policies Static / Sliding / Whole, as in the engine) and
//	    swaps the refreshed predictor in via atomic.Pointer — the hot
//	    observe path takes no lock and never waits on a retrain.
//
// All queues are bounded; a full pipeline exerts backpressure on Ingest
// rather than buffering without limit. Close drains everything in order.
package stream

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/persist"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("stream: service closed")

// Config parameterizes a Service. Durations are measured in *stream time*
// (event timestamps), so replayed or time-compressed feeds retrain on
// their own timeline, exactly like the offline engine.
type Config struct {
	// Filter is the preprocessing filter (threshold + tupling mode).
	Filter preprocess.Filter
	// Params carries the prediction window W_P.
	Params learner.Params
	// Policy selects the training-set evolution (engine.Static /
	// engine.Sliding / engine.Whole).
	Policy engine.Policy
	// InitialTrain is how much stream time must accumulate before the
	// first training (paper default 26 weeks).
	InitialTrain time.Duration
	// TrainWindow is the sliding training-set length (Policy == Sliding).
	TrainWindow time.Duration
	// RetrainEvery is W_R, the retraining cadence.
	RetrainEvery time.Duration
	// Meta supplies the learners and reviser; nil means meta.New().
	Meta *meta.MetaLearner
	// Parallelism bounds background-training concurrency (base learners,
	// Apriori counting, reviser scoring): 0 means GOMAXPROCS, 1 forces
	// the serial pipeline. The trained rule set is identical either way.
	Parallelism int

	// Shards is the number of parallel temporal-filter/categorizer
	// workers. Zero means 4.
	Shards int
	// QueueLen is the per-channel buffer length. Zero means 1024.
	QueueLen int
	// ReorderWindow is the out-of-order tolerance in stream time: an
	// event is released from the reorder buffer once the newest seen
	// timestamp exceeds it by this much. Zero means 60s.
	ReorderWindow time.Duration
	// ReorderLimit caps the reorder buffer; overflow releases the oldest
	// event early. Zero means 4096.
	ReorderLimit int
	// WarningsKeep is how many recent warnings GET /warnings can serve.
	// Zero means 256.
	WarningsKeep int

	// StateDir enables durable state — snapshots plus a write-ahead log
	// rooted at this directory (see internal/persist and DESIGN.md §9).
	// On New, the newest valid snapshot is loaded and the WAL tail is
	// replayed through the pipeline before intake starts; empty disables
	// persistence entirely.
	StateDir string
	// WALFlushEvery pushes the WAL write buffer to the OS every this many
	// records (persist.Options.FlushEvery). Zero means 64; 1 makes every
	// sequenced event durable against process death at an obvious
	// throughput cost.
	WALFlushEvery int
	// WALRotateBytes is the WAL segment rotation size. Zero means 8 MiB.
	WALRotateBytes int64
	// SyncRetrain runs (re)training inline on the collector goroutine
	// instead of in the background. Ingestion stalls for the duration of
	// a pass, but the predictor swap then lands at a deterministic stream
	// position — which is what makes a crashed-and-recovered run
	// byte-identical to an uninterrupted one (WAL replay always trains
	// inline, so only a service that also *ran* synchronously can be
	// reproduced exactly; an async service recovers to an equivalent
	// state whose swap points may differ by a few events).
	SyncRetrain bool
}

// Defaults returns the paper's parameters: 300 s filter threshold,
// W_P = 300 s, dynamic retraining every 4 weeks on a sliding six-month
// window.
func Defaults() Config {
	const week = 7 * 24 * time.Hour
	return Config{
		Filter:       preprocess.Filter{Threshold: 300},
		Params:       learner.Params{WindowSec: 300},
		Policy:       engine.Sliding,
		InitialTrain: 26 * week,
		TrainWindow:  26 * week,
		RetrainEvery: 4 * week,
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Params.WindowSec <= 0 {
		return out, fmt.Errorf("stream: WindowSec = %d, need > 0", out.Params.WindowSec)
	}
	if out.InitialTrain <= 0 {
		return out, errors.New("stream: InitialTrain must be > 0")
	}
	if out.Policy == engine.Sliding && out.TrainWindow <= 0 {
		return out, errors.New("stream: sliding policy needs TrainWindow > 0")
	}
	if out.Policy != engine.Static && out.RetrainEvery <= 0 {
		return out, errors.New("stream: dynamic policy needs RetrainEvery > 0")
	}
	if out.Meta == nil {
		out.Meta = meta.New()
	}
	if out.Parallelism != 0 {
		out.Meta.SetParallelism(out.Parallelism)
	}
	if out.Shards <= 0 {
		out.Shards = 4
	}
	if out.QueueLen <= 0 {
		out.QueueLen = 1024
	}
	if out.ReorderWindow <= 0 {
		out.ReorderWindow = time.Minute
	}
	if out.ReorderLimit <= 0 {
		out.ReorderLimit = 4096
	}
	if out.WarningsKeep <= 0 {
		out.WarningsKeep = 256
	}
	return out, nil
}

// seqEvent travels sequencer → shard.
type seqEvent struct {
	seq uint64
	e   raslog.Event
}

// shardOut travels shard → collector. Every sequenced event arrives here,
// kept or not, so the collector can release in exact sequence order.
type shardOut struct {
	seq  uint64
	te   preprocess.TaggedEvent
	kept bool
}

// RetrainRecord is one background (re)training, for /stats and tests.
type RetrainRecord struct {
	// At is the stream-time boundary (ms) the training set ends at.
	At int64 `json:"at_ms"`
	engine.Retraining
	// Err is non-empty when the pass failed (the previous rule set stays
	// live).
	Err string `json:"err,omitempty"`
}

// Service is the streaming prediction service. Create with New, feed with
// Ingest (safe for concurrent use), read Warnings/Stats at any time, and
// Close to drain.
type Service struct {
	cfg  Config
	repo *meta.Repository
	zer  *preprocess.Categorizer
	// setCache carries Apriori event sets across the overlapping training
	// snapshots of successive retrainings (see learner.EventSetCache).
	setCache *learner.EventSetCache

	pr        atomic.Pointer[predictor.Predictor]
	lastFatal atomic.Int64
	// lastWarn mirrors the live predictor's per-family dedup marks (every
	// emitted warning passes through process), so a swapped-in predictor
	// can be seeded without touching the old one across goroutines.
	lastWarn [3]atomic.Int64

	seqCh     chan raslog.Event
	shardChs  []chan seqEvent
	collectCh chan shardOut

	// Durable-state plumbing; all nil/zero when StateDir is empty.
	// spatial and next live on the Service (not as collector locals) so
	// snapshots and WAL replay share the collector's exact state.
	store       *persist.Store
	spatial     *preprocess.SpatialStage
	tempMirror  *preprocess.TemporalStage // collector-side mirror of the shard stages
	tempSeed    []preprocess.TemporalEntry
	next        uint64 // collector position: next sequence to release
	afterTemp   int64  // cut-consistent tally of temporal-filter survivors
	seqStart    uint64 // sequencer resume position after recovery
	seqTimeSeed int64  // sequencer lastEmitted/maxSeen seed after recovery
	replaying   bool
	snapPending atomic.Bool
	recovery    RecoveryInfo
	finalSnap   sync.Once

	closeMu sync.RWMutex
	closed  bool
	done    chan struct{} // collector finished

	retraining atomic.Bool
	retrainWG  sync.WaitGroup

	// m holds every counter, gauge and histogram (see metrics.go).
	// Stats() and GET /metrics are two views over these instruments.
	// The next-retrain gauge is special: its transitions are compound
	// (read-check-advance) and therefore guarded by mu.
	m *metrics

	mu       sync.Mutex
	history  []preprocess.TaggedEvent
	warnings []predictor.Warning // ring of the last WarningsKeep
	retrains []RetrainRecord
}

// Stream-time accessors over the metric gauges (ms). streamStart is -1
// until the first event; nextRetrain is -1 when no training will ever be
// due again.
func (s *Service) streamStartMs() int64 { return int64(s.m.streamStart.Value()) }
func (s *Service) watermarkMs() int64   { return int64(s.m.watermark.Value()) }
func (s *Service) nextRetrainMs() int64 { return int64(s.m.nextRetrain.Value()) }

// New validates cfg, starts the pipeline goroutines, and returns the
// running service.
func New(cfg Config) (*Service, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       full,
		repo:      meta.NewRepository(),
		zer:       preprocess.NewCategorizer(preprocess.NewCatalog()),
		setCache:  learner.NewEventSetCache(),
		spatial:   preprocess.NewSpatialStage(full.Filter),
		seqCh:     make(chan raslog.Event, full.QueueLen),
		shardChs:  make([]chan seqEvent, full.Shards),
		collectCh: make(chan shardOut, full.QueueLen),
		done:      make(chan struct{}),
	}
	s.lastFatal.Store(-1)
	for i := range s.lastWarn {
		s.lastWarn[i].Store(-1)
	}
	s.seqTimeSeed = -1 << 62
	for i := range s.shardChs {
		s.shardChs[i] = make(chan seqEvent, full.QueueLen)
	}
	s.m = newMetrics(s) // after the channels: queue gauges read them

	if full.StateDir != "" {
		// Recovery runs before any pipeline goroutine exists: the snapshot
		// is restored and the WAL tail replayed serially through the same
		// stage logic, then intake resumes where the durable log ends.
		if err := s.recover(); err != nil {
			return nil, err
		}
	}

	go s.sequencer()
	var shardWG sync.WaitGroup
	for i := range s.shardChs {
		shardWG.Add(1)
		go s.shard(i, &shardWG)
	}
	go func() {
		shardWG.Wait()
		close(s.collectCh)
	}()
	go s.collector()
	return s, nil
}

// Ingest feeds one raw event. It blocks while the pipeline is saturated
// (backpressure) until ctx is done or the service is closed. Events may
// arrive modestly out of order (within ReorderWindow); later ones are
// dropped and counted.
func (s *Service) Ingest(ctx context.Context, e raslog.Event) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.seqCh <- e:
		s.m.ingested.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops intake, drains every stage in order, waits for in-flight
// retraining, and returns. Safe to call more than once.
func (s *Service) Close() error {
	s.closeMu.Lock()
	already := s.closed
	if !already {
		s.closed = true
		close(s.seqCh)
	}
	s.closeMu.Unlock()
	<-s.done
	s.retrainWG.Wait()
	var err error
	if s.store != nil {
		// Graceful shutdown snapshots the fully-drained state, so the next
		// start replays no WAL at all. After crash() the store is dead and
		// both calls are no-ops — that is the point of the simulation.
		s.finalSnap.Do(func() {
			s.writeSnapshot()
			err = s.store.Close()
		})
	}
	return err
}

// ---------------------------------------------------------------------------
// Sequencer: bounded reorder buffer keyed on timestamp.
// ---------------------------------------------------------------------------

type heapEntry struct {
	e       raslog.Event
	arrival uint64 // tie-break so equal timestamps keep arrival order
}

type eventHeap []heapEntry

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].e.Time != h[j].e.Time {
		return h[i].e.Time < h[j].e.Time
	}
	return h[i].arrival < h[j].arrival
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func (s *Service) sequencer() {
	var (
		buf     eventHeap
		arrival uint64
		// After recovery, sequence numbers continue where the durable WAL
		// ends and the time floor continues at the recovered watermark, so
		// re-fed events are neither double-logged nor mistaken for late.
		seq         = s.seqStart
		maxSeen     = s.seqTimeSeed
		lastEmitted = s.seqTimeSeed
	)
	tolMs := s.cfg.ReorderWindow.Milliseconds()

	// emit releases one event from the buffer. overflow marks a release
	// forced by the buffer cap alone (not yet past the tolerance): such an
	// event increments exactly one counter — lateDropped when it is behind
	// the emitted floor, reorderOverflow otherwise.
	emit := func(e raslog.Event, overflow bool) {
		if e.Time < lastEmitted {
			s.m.lateDropped.Inc()
			return
		}
		if overflow {
			s.m.reorderOverflow.Inc()
		}
		lastEmitted = e.Time
		se := seqEvent{seq: seq, e: e}
		if s.store != nil {
			// WAL-before-processing: once a sequence number is visible
			// downstream, its event is in the log (buffered at least), so a
			// snapshot cut at the collector can always replay forward.
			if n, err := s.store.Append(se.seq, e); err != nil {
				s.m.walErrors.Inc()
			} else {
				s.m.walBytes.Add(int64(n))
			}
		}
		seq++
		s.m.sequenced.Inc()
		s.shardChs[shardOf(e.Location, len(s.shardChs))] <- se
	}

	for e := range s.seqCh {
		t0 := time.Now()
		if e.Time > maxSeen {
			maxSeen = e.Time
		}
		heap.Push(&buf, heapEntry{e: e, arrival: arrival})
		arrival++
		for len(buf) > 0 && (len(buf) > s.cfg.ReorderLimit || buf[0].e.Time <= maxSeen-tolMs) {
			overflow := len(buf) > s.cfg.ReorderLimit && buf[0].e.Time > maxSeen-tolMs
			emit(heap.Pop(&buf).(heapEntry).e, overflow)
		}
		s.m.reorderDepth.Set(float64(len(buf)))
		s.m.seqLatency.Since(t0)
	}
	// Intake closed: flush the buffer in order.
	for len(buf) > 0 {
		emit(heap.Pop(&buf).(heapEntry).e, false)
	}
	s.m.reorderDepth.Set(0)
	for _, ch := range s.shardChs {
		close(ch)
	}
}

func shardOf(location string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(location))
	return int(h.Sum32() % uint32(n))
}

// ---------------------------------------------------------------------------
// Shards: parallel temporal filtering + categorization.
// ---------------------------------------------------------------------------

func (s *Service) shard(i int, wg *sync.WaitGroup) {
	defer wg.Done()
	temporal := preprocess.NewTemporalStage(s.cfg.Filter)
	if len(s.tempSeed) > 0 {
		// Recovery: re-split the snapshot's global temporal state across
		// the shards (a location is pinned to one shard, so each key has
		// exactly one home).
		rows := make([]preprocess.TemporalEntry, 0, len(s.tempSeed)/len(s.shardChs)+1)
		for _, row := range s.tempSeed {
			if shardOf(row.Location, len(s.shardChs)) == i {
				rows = append(rows, row)
			}
		}
		temporal.Restore(rows)
	}
	for se := range s.shardChs[i] {
		t0 := time.Now()
		out := shardOut{seq: se.seq}
		if temporal.Observe(se.e) {
			s.m.afterTemporal.Inc()
			class, fatal := s.zer.Categorize(se.e)
			out.te = preprocess.TaggedEvent{Event: se.e, Class: class, Fatal: fatal}
			out.kept = true
		} else {
			out.te.Event = se.e // carry the timestamp for the watermark
		}
		s.collectCh <- out
		s.m.shardLatency.Since(t0)
	}
}

// ---------------------------------------------------------------------------
// Collector: ordered merge, spatial filter, predictor, retrain trigger.
// ---------------------------------------------------------------------------

func (s *Service) collector() {
	defer close(s.done)
	pending := make(map[uint64]shardOut)
	for out := range s.collectCh {
		pending[out.seq] = out
		for {
			o, ok := pending[s.next]
			if !ok {
				break
			}
			delete(pending, s.next)
			s.next++
			t0 := time.Now()
			s.advance(o.te.Time)
			if s.tempMirror != nil {
				// Track the shards' temporal decisions so a snapshot can carry
				// one consistent global filter state (see preprocess.Record).
				s.tempMirror.Record(o.te.Event, o.kept)
			}
			if o.kept {
				s.afterTemp++
			}
			if o.kept && s.spatial.Observe(o.te.Event) {
				s.process(o.te)
			}
			s.maybeRetrain()
			if s.store != nil && s.snapPending.CompareAndSwap(true, false) {
				// A training pass completed (inline or in the background):
				// snapshot on the collector, where the cut at s.next is exact.
				s.writeSnapshot()
			}
			s.m.collectLatency.Since(t0)
		}
	}
}

// advance moves the stream clock.
func (s *Service) advance(t int64) {
	if s.streamStartMs() < 0 {
		s.m.streamStart.Set(float64(t))
		s.mu.Lock()
		s.m.nextRetrain.Set(float64(t + s.cfg.InitialTrain.Milliseconds()))
		s.mu.Unlock()
	}
	if t > s.watermarkMs() {
		s.m.watermark.Set(float64(t))
	}
}

// process feeds one fully-filtered event to the history and the live
// predictor. Runs only on the collector goroutine; the predictor pointer
// is loaded once per event and never locked.
func (s *Service) process(te preprocess.TaggedEvent) {
	s.m.processed.Inc()
	var warns []predictor.Warning
	if pr := s.pr.Load(); pr != nil {
		warns = pr.Observe(te)
	}
	if te.Fatal {
		s.m.fatals.Inc()
		s.lastFatal.Store(te.Time)
	}

	for _, w := range warns {
		// Keep the dedup mirror current (see the lastWarn field comment).
		if i := int(w.Source); i >= 0 && i < len(s.lastWarn) && w.Time > s.lastWarn[i].Load() {
			s.lastWarn[i].Store(w.Time)
		}
	}

	s.mu.Lock()
	s.history = append(s.history, te)
	s.trimHistoryLocked()
	if len(warns) > 0 {
		s.m.warningsTotal.Add(int64(len(warns)))
		s.warnings = append(s.warnings, warns...)
		if over := len(s.warnings) - s.cfg.WarningsKeep; over > 0 {
			s.warnings = append(s.warnings[:0], s.warnings[over:]...)
		}
	}
	s.mu.Unlock()
}

// trimHistoryLocked bounds the history to what future retrainings can
// use: nothing after a Static service has trained, the sliding window
// (plus the untrained remainder) otherwise. Whole keeps everything.
func (s *Service) trimHistoryLocked() {
	switch s.cfg.Policy {
	case engine.Static:
		if len(s.retrains) > 0 {
			s.history = s.history[:0]
		}
	case engine.Sliding:
		if len(s.history)%1024 != 0 {
			return
		}
		cutoff := s.nextRetrainMs() - s.cfg.TrainWindow.Milliseconds()
		i := 0
		for i < len(s.history) && s.history[i].Time < cutoff {
			i++
		}
		if i > 0 {
			s.history = append(s.history[:0], s.history[i:]...)
		}
	}
}

// maybeRetrain starts a background training pass when the stream clock
// crosses the next boundary and none is in flight.
func (s *Service) maybeRetrain() {
	wm := s.watermarkMs()
	s.mu.Lock()
	at := s.nextRetrainMs()
	due := at > 0 && wm >= at
	s.mu.Unlock()
	if !due || !s.retraining.CompareAndSwap(false, true) {
		return
	}
	snapshot, from := s.snapshotTrainingSet(at)
	s.mu.Lock()
	if s.cfg.Policy == engine.Static {
		s.m.nextRetrain.Set(-1) // never again
	} else {
		s.m.nextRetrain.Set(float64(at + s.cfg.RetrainEvery.Milliseconds()))
	}
	s.mu.Unlock()
	s.retrainWG.Add(1)
	if s.cfg.SyncRetrain || s.replaying {
		// Inline on the caller (the collector, or recovery's replay loop):
		// the swap lands at a deterministic stream position. WAL replay must
		// train inline regardless of configuration — the events that would
		// have fed a background pass are being replayed synchronously.
		s.retrain(at, from, snapshot)
	} else {
		go s.retrain(at, from, snapshot)
	}
}

// snapshotTrainingSet copies the policy's training slice ending at the
// stream-time boundary `at` (ms), returning the slice and its window
// start (the event-set cache needs both bounds).
func (s *Service) snapshotTrainingSet(at int64) ([]preprocess.TaggedEvent, int64) {
	var from int64 = -1 << 62
	if s.cfg.Policy == engine.Sliding {
		from = at - s.cfg.TrainWindow.Milliseconds()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]preprocess.TaggedEvent, 0, len(s.history))
	for _, te := range s.history {
		if te.Time >= from && te.Time < at {
			out = append(out, te)
		}
	}
	return out, from
}

// retrain runs one training pass off the hot path and atomically swaps
// the refreshed predictor in. On error the previous rule set stays live.
// Event sets are reused across retrainings via setCache: the snapshot
// slices differ call to call, but the stream content over any shared
// [time) range is identical, which is all the cache depends on.
func (s *Service) retrain(at, from int64, snapshot []preprocess.TaggedEvent) RetrainRecord {
	defer s.retrainWG.Done()
	rec := RetrainRecord{At: at}
	pre := learner.Prepare(snapshot)
	pre.SetsFor = func(windowMs int64, maxItems int) []learner.EventSet {
		return s.setCache.Sets(snapshot, from, at, windowMs, maxItems)
	}
	rt, err := engine.TrainStepPrepared(s.cfg.Meta, s.repo, pre, s.cfg.Params)
	if err != nil {
		rec.Err = err.Error()
		s.m.training.RecordError()
	} else {
		rec.Retraining = rt
		s.swapPredictor()
		s.m.training.Record(rt)
		if s.store != nil && !s.replaying {
			// Ask the collector to snapshot at its next release point; during
			// replay the WAL files are being read, so snapshotting (which
			// truncates them) waits until recovery finishes.
			s.snapPending.Store(true)
		}
	}
	s.mu.Lock()
	s.retrains = append(s.retrains, rec)
	if s.cfg.Policy == engine.Static && err == nil {
		s.history = s.history[:0] // a static service never trains again
	}
	s.mu.Unlock()
	s.retraining.Store(false)
	// The stream may have crossed the next boundary while we trained (or
	// gone idle right after); catch up instead of waiting for the next
	// processed event. WG ordering is safe: this Add (if any) happens
	// before our own Done.
	s.maybeRetrain()
	return rec
}

// swapPredictor builds a predictor over the repository's current rules
// and publishes it copy-on-write; the observe path picks it up on its
// next Load with no synchronization beyond the atomic pointer.
func (s *Service) swapPredictor() {
	rules := s.repo.Rules()
	pr := predictor.New(rules, s.cfg.Params)
	pr.GlobalDedup = true
	// Alarm spacing stays at the base rule-generation window even when
	// the service runs a wider prediction window, matching the offline
	// engine's counting exactly.
	engine.ClampDedup(pr, s.cfg.Params.WindowSec)
	if lf := s.lastFatal.Load(); lf >= 0 {
		pr.SeedLastFatal(lf)
	}
	// Seed the dedup marks from the service-level mirror, not from the old
	// predictor (which the collector may be mutating concurrently). Without
	// this, seeding lastFatal alone re-arms the distribution expert and it
	// re-warns off the pre-swap fatal — TestSwapPredictorKeepsWarnSpacing.
	pr.SeedLastWarn([3]int64{s.lastWarn[0].Load(), s.lastWarn[1].Load(), s.lastWarn[2].Load()})
	s.pr.Store(pr)
	s.m.rules.Set(float64(len(rules)))
}

// ErrNoEvents is returned by TrainNow before the first event has reached
// the collector: there is no history to train on and no stream clock to
// schedule against.
var ErrNoEvents = errors.New("stream: no events observed yet; nothing to train on")

// TrainNow runs a synchronous training pass over the accumulated history
// up to the current watermark and swaps the result in. It is the manual
// override of the stream-time schedule (exposed as POST /retrain): a
// successful pass counts against the schedule, so the next automatic
// training happens one full cadence later instead of re-firing on
// near-identical data.
func (s *Service) TrainNow() (RetrainRecord, error) {
	if s.streamStartMs() < 0 {
		return RetrainRecord{}, ErrNoEvents
	}
	if !s.retraining.CompareAndSwap(false, true) {
		return RetrainRecord{}, errors.New("stream: retraining already in flight")
	}
	at := s.watermarkMs() + 1
	// Claim the schedule before training, exactly like maybeRetrain:
	// retrain's trailing catch-up must not see a stale boundary and
	// immediately re-fire the scheduled pass on the data we just used.
	s.mu.Lock()
	prev := s.nextRetrainMs()
	next := prev
	if s.cfg.Policy == engine.Static {
		next = -1 // a static service trains once; this was it
	} else if t := at + s.cfg.RetrainEvery.Milliseconds(); t > next {
		next = t
	}
	s.m.nextRetrain.Set(float64(next))
	s.mu.Unlock()
	snapshot, from := s.snapshotTrainingSet(at)
	s.retrainWG.Add(1)
	rec := s.retrain(at, from, snapshot)
	if rec.Err != "" {
		// The pass failed: hand the schedule back (unless a concurrent
		// scheduled pass moved it in the meantime).
		s.mu.Lock()
		if s.nextRetrainMs() == next {
			s.m.nextRetrain.Set(float64(prev))
		}
		s.mu.Unlock()
		return rec, errors.New(rec.Err)
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

// Warnings returns up to n of the most recent warnings, newest last.
func (s *Service) Warnings(n int) []predictor.Warning {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.warnings) {
		n = len(s.warnings)
	}
	return append([]predictor.Warning(nil), s.warnings[len(s.warnings)-n:]...)
}

// Rules returns the live predictor's rule set (nil before first training).
func (s *Service) Rules() []learner.Rule {
	pr := s.pr.Load()
	if pr == nil {
		return nil
	}
	return pr.Rules()
}

// QueueDepths reports the instantaneous channel occupancy per stage.
type QueueDepths struct {
	Sequencer int   `json:"sequencer"`
	Reorder   int   `json:"reorder"`
	Shards    []int `json:"shards"`
	Collector int   `json:"collector"`
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Ingested counts events accepted by Ingest; Sequenced the events
	// released in order (Ingested - Sequenced - LateDropped are still
	// buffered); LateDropped the events beyond the reorder tolerance.
	Ingested    int64 `json:"ingested"`
	Sequenced   int64 `json:"sequenced"`
	LateDropped int64 `json:"late_dropped"`
	// ReorderOverflow counts events released early by the buffer cap while
	// still inside the reorder tolerance (disjoint from LateDropped: a
	// forced release increments exactly one of the two).
	ReorderOverflow int64 `json:"reorder_overflow"`
	// AfterTemporal / Processed are the filter's per-stage survivors;
	// CompressionRate is 1 - Processed/Sequenced.
	AfterTemporal   int64   `json:"after_temporal"`
	Processed       int64   `json:"processed"`
	CompressionRate float64 `json:"compression_rate"`
	Fatals          int64   `json:"fatals"`
	WarningsTotal   int64   `json:"warnings_total"`
	Rules           int64   `json:"rules"`
	Retraining      bool    `json:"retraining"`
	// StreamStart / Watermark / NextRetrain are stream-time (ms);
	// StreamStart is -1 before the first event and NextRetrain is -1 when
	// no training will ever be due again (static policy after its pass).
	StreamStart int64           `json:"stream_start_ms"`
	Watermark   int64           `json:"watermark_ms"`
	NextRetrain int64           `json:"next_retrain_ms"`
	Queues      QueueDepths     `json:"queues"`
	Retrains    []RetrainRecord `json:"retrains"`
	// Recovery describes the startup recovery pass; nil when the service
	// started without a StateDir or with an empty one.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// Stats snapshots the service's instruments — the same registry GET
// /metrics exposes, so the JSON and Prometheus views cannot disagree.
// Instruments are read individually, so a snapshot taken mid-flight may
// be momentarily inconsistent (e.g. Processed ahead of a just-read
// Sequenced); each number is accurate.
func (s *Service) Stats() Stats {
	st := Stats{
		Ingested:        s.m.ingested.Value(),
		Sequenced:       s.m.sequenced.Value(),
		LateDropped:     s.m.lateDropped.Value(),
		ReorderOverflow: s.m.reorderOverflow.Value(),
		AfterTemporal:   s.m.afterTemporal.Value(),
		Processed:       s.m.processed.Value(),
		Fatals:          s.m.fatals.Value(),
		WarningsTotal:   s.m.warningsTotal.Value(),
		Rules:           int64(s.m.rules.Value()),
		Retraining:      s.retraining.Load(),
		StreamStart:     s.streamStartMs(),
		Watermark:       s.watermarkMs(),
		Queues: QueueDepths{
			Sequencer: len(s.seqCh),
			Reorder:   int(s.m.reorderDepth.Value()),
			Shards:    make([]int, len(s.shardChs)),
			Collector: len(s.collectCh),
		},
	}
	for i, ch := range s.shardChs {
		st.Queues.Shards[i] = len(ch)
	}
	if st.Sequenced > 0 {
		st.CompressionRate = 1 - float64(st.Processed)/float64(st.Sequenced)
	}
	s.mu.Lock()
	st.NextRetrain = s.nextRetrainMs()
	st.Retrains = append([]RetrainRecord(nil), s.retrains...)
	s.mu.Unlock()
	if s.store != nil {
		r := s.recovery
		st.Recovery = &r
	}
	return st
}
