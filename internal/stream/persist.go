package stream

// Durable-state wiring: snapshot capture/restore and WAL replay over
// internal/persist. The collector owns snapshots (its release position is
// the consistency cut); the sequencer owns WAL appends; recovery runs
// before any pipeline goroutine exists and is therefore plain serial
// code over the same stage logic.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// RecoveryInfo summarizes one startup recovery pass (Stats.Recovery).
type RecoveryInfo struct {
	// SnapshotSeq is the cut position of the snapshot restored; 0 when the
	// service started from WAL alone (or from nothing).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Replayed is how many WAL events were re-run through the pipeline.
	Replayed uint64 `json:"replayed"`
	// ResumeSeq is where live sequencing continues: the sequence number
	// the next ingested event will receive.
	ResumeSeq  uint64 `json:"resume_seq"`
	DurationMs int64  `json:"duration_ms"`
	// IncrRestored reports that incremental sufficient-statistics state
	// was recovered from the snapshot, so the next retrain delta-applies
	// instead of cold-rebuilding.
	IncrRestored bool `json:"incr_restored,omitempty"`
}

// Recovery returns the startup recovery summary (zero without a StateDir).
func (s *Service) Recovery() RecoveryInfo { return s.recovery }

// recover opens the state directory, restores the newest valid snapshot,
// replays the WAL tail through the pipeline stages, and positions the WAL
// for new appends. Called from New before the goroutines start.
func (s *Service) recover() error {
	t0 := time.Now()
	store, err := persist.Open(s.cfg.StateDir, persist.Options{
		RotateBytes: s.cfg.WALRotateBytes,
		FlushEvery:  s.cfg.WALFlushEvery,
		SyncMaxWait: s.cfg.SyncMaxWait,
		SyncExec:    s.cfg.WALSyncExec,
	})
	if err != nil {
		return err
	}
	s.store = store
	// The collector-side mirror exists whenever persistence is on, so the
	// very first snapshot already carries consistent temporal state.
	s.tempMirror = preprocess.NewTemporalStage(s.cfg.Filter)

	snap, err := store.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("stream: load snapshot: %w", err)
	}
	var from uint64
	if snap != nil {
		if err := s.restoreSnapshot(snap); err != nil {
			return err
		}
		from = snap.Seq
		s.recovery.SnapshotSeq = snap.Seq
	}

	// Replay trains inline (see maybeRetrain): the recovered service must
	// pass through the same states the original did, in the same order.
	s.replaying = true
	var replayed uint64
	end, err := store.Replay(from, func(seq uint64, e raslog.Event) error {
		s.replayOne(e)
		replayed++
		return nil
	})
	s.replaying = false
	if err != nil {
		return fmt.Errorf("stream: wal replay: %w", err)
	}
	if err := store.StartAppend(end); err != nil {
		return err
	}
	s.seqStart = end
	if s.streamStartMs() >= 0 {
		// The sequencer's ordering floor continues at the recovered
		// watermark: everything at or before it was already emitted (the
		// emit path enforces a nondecreasing timeline, so watermark ==
		// last emitted time at any cut).
		s.seqTimeSeed = s.watermarkMs()
	}
	s.m.replayed.Add(int64(replayed))
	s.recovery.Replayed = replayed
	s.recovery.ResumeSeq = end
	if replayed > 0 {
		// The replay tail advanced the mirror past the snapshot cut, so the
		// shards must be seeded from the post-replay state: a stale seed
		// misses the tail's anchors and would keep an event the original
		// run suppressed at the temporal threshold.
		s.tempSeed = s.tempMirror.Export()
		// Re-anchor durability at the recovered position so the next crash
		// does not replay this tail again. Not done mid-replay: the WAL
		// files being iterated must not be pruned under the iterator.
		s.writeSnapshot()
	}
	s.recovery.DurationMs = time.Since(t0).Milliseconds()
	s.m.recoverySeconds.Set(time.Since(t0).Seconds())
	return nil
}

// restoreSnapshot loads one snapshot into the service. Counter semantics:
// Ingested resumes at Sequenced + LateDropped — events that sat in the
// reorder buffer at the cut were never durable, so a recovered service has
// no buffered events and the Stats identity (ingested == sequenced +
// late_dropped + buffered) holds from the first scrape.
func (s *Service) restoreSnapshot(snap *persist.Snapshot) error {
	rules, err := persist.DecodeRules(snap.Rules)
	if err != nil {
		return fmt.Errorf("stream: snapshot rules: %w", err)
	}
	s.repo.Restore(rules)
	if snap.Predictor != nil {
		pr := predictor.New(rules, s.cfg.Params)
		pr.GlobalDedup = true
		engine.ClampDedup(pr, s.cfg.Params.WindowSec)
		pr.RestoreState(*snap.Predictor)
		s.pr.Store(pr)
		s.m.rules.Set(float64(len(rules)))
		for i, v := range snap.Predictor.LastWarnMs {
			s.lastWarn[i].Store(v)
		}
	}
	s.lastFatal.Store(snap.LastFatalMs)

	s.tempMirror.Restore(snap.Temporal)
	s.tempSeed = snap.Temporal // shards re-split this on startup
	s.spatial.Restore(snap.Spatial)

	var recs []RetrainRecord
	if len(snap.Retrains) > 0 {
		if err := json.Unmarshal(snap.Retrains, &recs); err != nil {
			return fmt.Errorf("stream: snapshot retrains: %w", err)
		}
	}
	s.mu.Lock()
	s.history = append(s.history[:0], snap.History...)
	s.retrains = recs
	s.mu.Unlock()
	s.warnMu.Lock()
	s.warnings = append(s.warnings[:0], snap.Warnings...)
	s.warnMu.Unlock()
	for _, rec := range recs {
		// Feed the training metrics back so train_* counters continue
		// across restarts instead of resetting.
		if rec.Err != "" {
			s.m.training.RecordError()
		} else {
			s.m.training.Record(rec.Retraining)
		}
	}

	if s.incrState != nil && len(snap.Incr) > 0 {
		// Best effort: a version or configuration mismatch just means the
		// next retrain falls back to a full rebuild (the same thing a
		// snapshot without incremental state means).
		if err := s.incrState.Restore(snap.Incr); err == nil {
			s.recovery.IncrRestored = true
		}
	}

	s.m.streamStart.Set(float64(snap.StreamStartMs))
	s.m.watermark.Set(float64(snap.WatermarkMs))
	s.m.nextRetrain.Set(float64(snap.NextRetrainMs))
	c := snap.Counters
	s.m.ingested.Add(c.Sequenced + c.LateDropped)
	s.m.sequenced.Add(c.Sequenced)
	s.m.lateDropped.Add(c.LateDropped)
	s.m.reorderOverflow.Add(c.Overflow)
	s.m.afterTemporal.Add(c.AfterTemporal)
	s.m.processed.Add(c.Processed)
	s.m.fatals.Add(c.Fatals)
	s.m.warningsTotal.Add(c.Warnings)
	s.next = snap.Seq
	s.afterTemp = c.AfterTemporal
	return nil
}

// replayOne runs one WAL event through the collector's stage logic. The
// temporal mirror is the decider here (during live operation it only
// records the shards' decisions — same state machine, same outcome).
func (s *Service) replayOne(e raslog.Event) {
	s.next++
	s.m.ingested.Inc()
	s.m.sequenced.Inc()
	s.advance(e.Time)
	if s.tempMirror.Observe(e) {
		s.m.afterTemporal.Inc()
		s.afterTemp++
		class, fatal := s.zer.Categorize(e)
		te := preprocess.TaggedEvent{Event: e, Class: class, Fatal: fatal}
		if s.spatial.Observe(e) {
			s.process(te)
		}
	}
	s.maybeRetrain()
}

// buildSnapshot captures the service state at the collector's current
// release position. Caller must be the collector goroutine (or recovery /
// shutdown, when no goroutines run): Sequenced is pinned to the cut, not
// to the live sequencer counter, which may already be ahead.
func (s *Service) buildSnapshot() (*persist.Snapshot, error) {
	rules, err := persist.EncodeRules(s.repo.Rules())
	if err != nil {
		return nil, err
	}
	snap := &persist.Snapshot{
		Seq:           s.next,
		StreamStartMs: s.streamStartMs(),
		WatermarkMs:   s.watermarkMs(),
		LastFatalMs:   s.lastFatal.Load(),
		Counters: persist.Counters{
			Sequenced: int64(s.next),
			// Late/overflow are sequencer-side; a momentary skew against
			// the cut is acceptable for these diagnostics.
			LateDropped:   s.m.lateDropped.Value(),
			Overflow:      s.m.reorderOverflow.Value(),
			AfterTemporal: s.afterTemp,
			Processed:     s.m.processed.Value(),
			Fatals:        s.m.fatals.Value(),
			Warnings:      s.m.warningsTotal.Value(),
		},
		Rules:    rules,
		Temporal: s.tempMirror.Export(),
		Spatial:  s.spatial.Export(),
	}
	if pr := s.pr.Load(); pr != nil {
		st := pr.ExportState()
		snap.Predictor = &st
	}
	s.mu.Lock()
	snap.NextRetrainMs = s.nextRetrainMs()
	snap.History = append([]preprocess.TaggedEvent(nil), s.history...)
	recs := append([]RetrainRecord(nil), s.retrains...)
	s.mu.Unlock()
	s.warnMu.Lock()
	snap.Warnings = append([]predictor.Warning(nil), s.warnings...)
	s.warnMu.Unlock()
	if len(recs) > 0 {
		raw, err := json.Marshal(recs)
		if err != nil {
			return nil, err
		}
		snap.Retrains = raw
	}
	if s.incrState != nil {
		// Export is safe against an in-flight background retrain (the
		// state locks itself); whichever side of the Advance it captures
		// is consistent with some retrain boundary, and the next Advance
		// continues from there.
		raw, err := s.incrState.Export()
		if err != nil {
			return nil, err
		}
		snap.Incr = raw
	}
	return snap, nil
}

// writeSnapshot persists the current state. Failures are counted and
// logged into metrics, never fatal: the previous snapshot (plus a longer
// WAL tail) still recovers the service.
func (s *Service) writeSnapshot() {
	t0 := time.Now()
	snap, err := s.buildSnapshot()
	if err != nil {
		s.m.snapshotErrors.Inc()
		return
	}
	n, err := s.store.WriteSnapshot(snap)
	if err != nil {
		s.m.snapshotErrors.Inc()
		return
	}
	if n > 0 { // 0 bytes: store already abandoned (crash simulation)
		s.m.snapshots.Inc()
		s.m.snapshotBytes.Add(n)
		s.m.snapshotLatency.Since(t0)
	}
}

// crash simulates abrupt process death for tests: the store discards its
// write buffer and goes dead (every later durable write is a no-op), then
// the pipeline is torn down through the normal path. What survives on
// disk is exactly what had reached the OS at the moment of the kill.
func (s *Service) crash() {
	s.store.Abandon()
	s.Close()
}
