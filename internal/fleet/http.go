package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obsv"
)

// NewMux returns the fleet's HTTP API. Every per-tenant route of
// stream.NewMux is reachable under a tenant prefix:
//
//	POST /t/{tenant}/ingest        ingest into one tenant (created lazily)
//	POST /t/{tenant}/ingest/batch  group-committed batch ingest
//	GET  /t/{tenant}/warnings      that tenant's recent warnings
//	GET  /t/{tenant}/stats         that tenant's counters
//	GET  /t/{tenant}/metrics       that tenant's registry, unlabeled
//	POST /t/{tenant}/retrain       force a synchronous pass
//
// plus the fleet-level routes:
//
//	GET  /tenants        every known tenant with live counters
//	GET  /warnings?all=1 merged firehose across active tenants (?n=50)
//	GET  /metrics        aggregate exposition, per-tenant series labeled
//	                     tenant="<id>" plus fleet_* rollups
//	GET  /healthz        liveness
//
// The unprefixed service routes (POST /ingest, POST /ingest/batch,
// GET /warnings, GET /stats, POST /retrain) alias the default tenant, so
// a single-tenant deployment upgrading to fleet mode keeps working
// unchanged.
//
// Tenant IDs are validated before any filesystem path is formed: an ID
// with a path separator, over 64 bytes, or outside [A-Za-z0-9._-] is a
// 400. Unknown tenants are created by POSTs only; a GET for a tenant the
// fleet has never seen is a 404.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/t/{tenant}/{rest...}", r.handleTenant)
	mux.HandleFunc("GET /tenants", r.handleTenants)
	mux.HandleFunc("GET /warnings", r.handleWarnings)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /ingest", r.delegateDefault)
	mux.HandleFunc("POST /ingest/batch", r.delegateDefault)
	mux.HandleFunc("GET /stats", r.delegateDefault)
	mux.HandleFunc("POST /retrain", r.delegateDefault)
	return mux
}

// handleTenant routes one request into a tenant's own mux. The tenant
// lookup (and lazy activation) happens once here — the per-event path
// below it is the tenant service's own zero-allocation pipeline. POST
// creates unknown tenants; GET does not, so scrapes and typos cannot
// mint state directories.
func (r *Registry) handleTenant(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("tenant")
	h, err := r.Acquire(id, req.Method == http.MethodPost)
	if err != nil {
		writeAcquireError(w, err)
		return
	}
	defer h.Release()
	rest := "/" + req.PathValue("rest")
	if isIngestRoute(req.Method, rest) {
		release, ok := h.tn.admitIngest()
		if !ok {
			r.writeThrottled(w, id)
			return
		}
		defer release()
	}
	// Shallow-copy the request with the tenant prefix stripped, the same
	// contract http.StripPrefix implements, so the tenant mux sees the
	// exact paths stream.NewMux registers.
	r2 := new(http.Request)
	*r2 = *req
	u := *req.URL
	u.Path = rest
	u.RawPath = ""
	r2.URL = &u
	h.ServeHTTP(w, r2)
}

// isIngestRoute matches the two event-bearing routes the per-tenant
// slot cap applies to; everything else (stats, warnings, retrain) stays
// unthrottled so a storming tenant remains observable.
func isIngestRoute(method, path string) bool {
	return method == http.MethodPost && (path == "/ingest" || path == "/ingest/batch")
}

// writeThrottled refuses an ingest request at the tenant's concurrency
// cap: immediate 429 + Retry-After, shaped like the stream layer's own
// saturation response so clients handle both identically (back off, then
// resume — nothing from the request body was accepted, so Line is 1).
func (r *Registry) writeThrottled(w http.ResponseWriter, id string) {
	r.m.throttled.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
		"accepted": 0,
		"line":     1,
		"error":    fmt.Sprintf("fleet: tenant %q at its ingest concurrency cap", id),
	})
}

// delegateDefault serves a legacy unprefixed route on the default
// tenant. The path needs no rewriting — the alias routes match the
// tenant mux's own patterns verbatim.
func (r *Registry) delegateDefault(w http.ResponseWriter, req *http.Request) {
	h, err := r.Acquire(r.cfg.DefaultTenant, true)
	if err != nil {
		writeAcquireError(w, err)
		return
	}
	defer h.Release()
	if isIngestRoute(req.Method, req.URL.Path) {
		release, ok := h.tn.admitIngest()
		if !ok {
			r.writeThrottled(w, r.cfg.DefaultTenant)
			return
		}
		defer release()
	}
	h.ServeHTTP(w, req)
}

func writeAcquireError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadTenantID):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnknownTenant):
		status = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTenantBusy):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (r *Registry) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.List())
}

// tenantWarningJSON mirrors the per-tenant /warnings entry shape with
// the originating tenant added, so firehose consumers can reuse their
// existing decoder.
type tenantWarningJSON struct {
	Tenant     string `json:"tenant"`
	TimeMs     int64  `json:"time_ms"`
	Time       string `json:"time"`
	DeadlineMs int64  `json:"deadline_ms"`
	Source     string `json:"source"`
	Rule       string `json:"rule"`
	Target     int    `json:"target"`
}

// handleWarnings serves GET /warnings: with all=1 the merged fleet
// firehose, otherwise the default tenant's warnings (the legacy alias).
func (r *Registry) handleWarnings(w http.ResponseWriter, req *http.Request) {
	if v := req.URL.Query().Get("all"); v == "" {
		r.delegateDefault(w, req)
		return
	} else if v != "1" && v != "true" {
		http.Error(w, fmt.Sprintf("bad all=%q", v), http.StatusBadRequest)
		return
	}
	n := 50
	if v := req.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, fmt.Sprintf("bad n=%q", v), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	warns := r.Firehose(n)
	out := make([]tenantWarningJSON, len(warns))
	for i, wr := range warns {
		out[i] = tenantWarningJSON{
			Tenant:     wr.Tenant,
			TimeMs:     wr.Time,
			Time:       time.UnixMilli(wr.Time).UTC().Format(time.RFC3339),
			DeadlineMs: wr.Deadline,
			Source:     wr.Source.String(),
			Rule:       wr.RuleID,
			Target:     wr.Target,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Registry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obsv.TextContentType)
	_ = r.WriteMetrics(w)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
