package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/stream"
)

// stormBody encodes one batch of n in-order events starting at event
// index `start` (1s spacing, so re-encoded bodies keep stream time
// monotone as long as start advances).
func stormBody(t testing.TB, start, n int) []byte {
	t.Helper()
	locs := [...]string{
		"R00-M0-N0-C:J01-U01", "R01-M1-N2-C:J05-U11",
		"R02-M0-N4-C:J12-U01", "R03-M1-N8-C:J18-U11",
	}
	l := raslog.NewLog("storm", n)
	for i := start; i < start+n; i++ {
		l.Append(raslog.Event{
			RecordID: int64(i),
			Type:     "RAS",
			Time:     int64(i) * 1000,
			JobID:    int64(i % 5),
			Location: locs[i%len(locs)],
			Entry:    "ddr: excessive soft failures",
			Facility: raslog.Kernel,
			Severity: raslog.Info,
		})
	}
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStormingTenantCannotStarveQuietTenant is the fleet fairness pin:
// one tenant replaying a log storm from many connections at once must
// not push a quiet tenant's ingest p99 past the latency target. The
// per-tenant ingest-slot cap is what enforces it — the storm's excess
// requests are refused up front (429, counted), so they never camp in
// the shared admission path. The quiet tenant's events all land.
func TestStormingTenantCannotStarveQuietTenant(t *testing.T) {
	// Nearly bufferless pipeline: the storm's batch handlers park in the
	// admission slow path (channel wait) rather than finishing instantly,
	// so request concurrency actually builds — also on a single-core
	// runner, where CPU-bound handlers would serialize and never contend.
	scfg := stream.Defaults()
	scfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	scfg.Shards = 1
	scfg.QueueLen = 1
	scfg.ReorderWindow = time.Millisecond
	scfg.AdmitWait = 300 * time.Millisecond
	reg, err := New(Config{Stream: scfg, IngestSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	// A pool of pre-encoded storm batches with globally monotone
	// timestamps; workers cycle through it. A wrapped replay only
	// late-drops (admission still pays full price), so the request
	// pressure is sustained either way.
	const bodies, batchLines = 40, 4000
	pool := make([][]byte, bodies)
	for i := range pool {
		pool[i] = stormBody(t, i*batchLines, batchLines)
	}

	var (
		stop     atomic.Bool
		next     atomic.Int64
		storm429 atomic.Int64
		wg       sync.WaitGroup
	)
	const workers = 12
	client := srv.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				body := pool[int(next.Add(1))%bodies]
				resp, err := client.Post(srv.URL+"/t/storm/ingest/batch",
					"text/plain", bytes.NewReader(body))
				if err != nil {
					continue // server shutting down at test end
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					storm429.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	// The quiet tenant: sequential single-event posts, each latency
	// recorded. Its own pipeline is idle, so any slowness it sees is
	// inflicted by the storm.
	const quietReqs = 100
	lat := make([]time.Duration, 0, quietReqs)
	for i := 0; i < quietReqs; i++ {
		line := fmt.Sprintf("%d|RAS|%d|0|R00-M0-N0-C:J01-U01|KERNEL|INFO|quiet probe\n", i, i)
		t0 := time.Now()
		resp, err := client.Post(srv.URL+"/t/quiet/ingest", "text/plain",
			bytes.NewReader([]byte(line)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quiet ingest %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
		lat = append(lat, time.Since(t0))
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	target := 300 * time.Millisecond
	if raceEnabled {
		target = 1500 * time.Millisecond
	}
	if p99 > target {
		t.Errorf("quiet tenant ingest p99 = %v under storm, want <= %v", p99, target)
	}

	if storm429.Load() == 0 {
		t.Error("storm tenant was never throttled: the ingest-slot cap did not engage")
	}
	if got := reg.m.throttled.Value(); got != storm429.Load() {
		t.Errorf("fleet_ingest_throttled_total = %d, want the %d observed 429s", got, storm429.Load())
	}

	// The quiet tenant lost nothing to the storm.
	h, err := reg.Acquire("quiet", false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	st := h.Service().Stats()
	if st.Ingested != quietReqs {
		t.Errorf("quiet tenant Ingested = %d, want %d", st.Ingested, quietReqs)
	}
}
