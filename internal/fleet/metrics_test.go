package fleet

import (
	"strings"
	"testing"

	"repro/internal/obsv"
)

// TestAggregateExpositionRoundTrip pins the merged /metrics contract:
// two active tenants render as one exposition that survives the strict
// parser, with per-tenant labeled series, fleet rollups equal to the sum
// of the parts, and byte-stable output.
func TestAggregateExpositionRoundTrip(t *testing.T) {
	l := genLog(t, 5, 4)
	reg := mustFleet(t, Config{Root: t.TempDir()})
	defer reg.Close()

	for _, id := range []string{"a", "b"} {
		h, err := reg.Acquire(id, true)
		if err != nil {
			t.Fatal(err)
		}
		ingestEvents(t, h.Service(), l.Events)
		h.Release()
		// Drain via evict + reactivate so per-tenant counters are settled.
		if err := reg.Evict(id); err != nil {
			t.Fatal(err)
		}
		if h, err = reg.Acquire(id, false); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}

	var sb strings.Builder
	if err := reg.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	got, err := obsv.ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("aggregate exposition failed strict parse: %v\n%s", err, out)
	}

	n := float64(l.Len())
	for series, want := range map[string]float64{
		`stream_ingested_total{tenant="a"}`: n,
		`stream_ingested_total{tenant="b"}`: n,
		"fleet_ingested_total":              2 * n,
		"fleet_tenants_active":              2,
		"fleet_tenants_known":               3, // a, b, default
		"fleet_activations_total":           4, // two first uses + two reactivations
		"fleet_evictions_total":             2,
	} {
		if v, ok := got[series]; !ok {
			t.Errorf("series %q missing from aggregate exposition", series)
		} else if v != want {
			t.Errorf("%s = %v, want %v", series, v, want)
		}
	}
	if strings.Count(out, "# TYPE stream_ingested_total counter") != 1 {
		t.Error("per-tenant families not merged under one TYPE header")
	}

	var sb2 strings.Builder
	if err := reg.WriteMetrics(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("aggregate exposition is not byte-stable across scrapes")
	}
}

// TestRollupsSurviveEviction pins the retire/unretire accounting: fleet
// totals must not move when a tenant is evicted (its counters shift to
// the retired baseline) nor when it reactivates (recovery restores them
// and the baseline shifts back) — no dip, no double count.
func TestRollupsSurviveEviction(t *testing.T) {
	l := genLog(t, 9, 4)
	reg := mustFleet(t, Config{Root: t.TempDir()})
	defer reg.Close()

	h, err := reg.Acquire("x", true)
	if err != nil {
		t.Fatal(err)
	}
	ingestEvents(t, h.Service(), l.Events)
	h.Release()
	if err := reg.Evict("x"); err != nil { // drain so totals are settled
		t.Fatal(err)
	}

	read := func() map[string]float64 {
		var sb strings.Builder
		if err := reg.WriteMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		got, err := obsv.ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	evicted := read()
	if evicted["fleet_ingested_total"] != float64(l.Len()) {
		t.Fatalf("evicted rollup = %v, want %d", evicted["fleet_ingested_total"], l.Len())
	}
	if _, ok := evicted[`stream_ingested_total{tenant="x"}`]; ok {
		t.Error("evicted tenant still exposes labeled series")
	}

	if h, err = reg.Acquire("x", false); err != nil {
		t.Fatal(err)
	}
	h.Release()
	active := read()
	if active["fleet_ingested_total"] != float64(l.Len()) {
		t.Errorf("reactivated rollup = %v, want %d (recovered counters double-counted?)",
			active["fleet_ingested_total"], l.Len())
	}
	if active[`stream_ingested_total{tenant="x"}`] != float64(l.Len()) {
		t.Errorf(`stream_ingested_total{tenant="x"} = %v, want %d`,
			active[`stream_ingested_total{tenant="x"}`], l.Len())
	}
	for _, rollup := range []string{"fleet_processed_total", "fleet_warnings_total", "fleet_fatals_total"} {
		if active[rollup] != evicted[rollup] {
			t.Errorf("%s moved across reactivation: %v -> %v", rollup, evicted[rollup], active[rollup])
		}
	}
}
