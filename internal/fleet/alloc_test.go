package fleet

// Steady-state allocation budget for the routed hot path: the fleet adds
// one Acquire per request (a map lookup plus two mutex hops), never
// per-event work, so the budget matches the bare stream pipeline's. A
// per-event tenant lookup, label allocation, or handle boxing would blow
// it immediately.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/raslog"
	"repro/internal/stream"
)

// pipelineEvent mirrors the stream package's fabricator: a deterministic
// in-order feed over a small set of chattering locations.
func pipelineEvent(i int) raslog.Event {
	locs := [...]string{
		"R00-M0-N0-C:J01-U01", "R01-M1-N2-C:J05-U11",
		"R02-M0-N4-C:J12-U01", "R03-M1-N8-C:J18-U11",
	}
	entries := [...]string{
		"instruction cache parity error corrected",
		"ddr: excessive soft failures",
		"MidplaneSwitchController performing bit sparing",
	}
	return raslog.Event{
		RecordID: int64(i),
		Type:     "RAS",
		Time:     int64(i) * 1000,
		JobID:    int64(i % 5),
		Location: locs[i%len(locs)],
		Entry:    entries[i%len(entries)],
		Facility: raslog.Kernel,
		Severity: raslog.Info,
	}
}

func TestFleetRoutedAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is distorted by the race detector")
	}
	scfg := stream.Defaults()
	scfg.InitialTrain = 1 << 40 * time.Millisecond // never trains
	scfg.Shards = 2
	reg, err := New(Config{Stream: scfg})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	ctx := context.Background()
	const warm, measured, chunk = 20000, 20000, 512
	feed := func(from, to int) {
		for base := from; base < to; base += chunk {
			h, err := reg.Acquire("bench", true)
			if err != nil {
				t.Fatal(err)
			}
			n := min(chunk, to-base)
			events := make([]raslog.Event, 0, n)
			for i := base; i < base+n; i++ {
				events = append(events, pipelineEvent(i))
			}
			if _, err := h.Service().IngestBatch(ctx, events); err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	settle := func(n int64) {
		waitFor(t, 10*time.Second, func() bool {
			h, err := reg.Acquire("bench", false)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			return h.Service().Stats().Sequenced >= n
		})
	}

	feed(0, warm)
	settle(warm - 100)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	feed(warm, warm+measured)
	settle(warm + measured - 100)
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	perEvent := float64(ms1.Mallocs-ms0.Mallocs) / measured
	t.Logf("routed steady state: %.2f allocs/event", perEvent)
	if perEvent > 8 {
		t.Fatal(fmt.Sprintf("routed path allocates %.2f times per event, budget 8", perEvent))
	}
}
