package fleet

import (
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/stream"
)

// metrics is the fleet's own registry plus the retired baseline: when a
// tenant is evicted its final counters are folded into the baseline, and
// when it reactivates the counters durable recovery restored are
// subtracted back out — so fleet_*_total rollups are invariant under
// evict/reactivate cycles instead of double-counting recovered events.
//
// Rollup counters sum the baseline and every live tenant without a
// fleet-wide lock, so a scrape racing an eviction can transiently
// over-read by the events that tenant ingested since the scrape visited
// it; quiescent reads (what the tests and any alerting threshold care
// about) are exact.
type metrics struct {
	reg         *obsv.Registry
	activations *obsv.Counter
	evictions   *obsv.Counter
	throttled   *obsv.Counter

	retiredIngested  atomic.Int64
	retiredProcessed atomic.Int64
	retiredWarnings  atomic.Int64
	retiredFatals    atomic.Int64
}

func newMetrics(r *Registry) *metrics {
	m := &metrics{reg: obsv.NewRegistry()}
	m.reg.GaugeFunc("fleet_tenants_known",
		"Tenants registered with the fleet, active or evicted.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.tenants))
		})
	m.reg.GaugeFunc("fleet_tenants_active",
		"Tenants with a live pipeline in memory.",
		func() float64 {
			n := 0
			for _, tn := range r.snapshot() {
				if tn.active.Load() {
					n++
				}
			}
			return float64(n)
		})
	m.activations = m.reg.Counter("fleet_activations_total",
		"Tenant activations (first use and post-eviction recoveries).")
	m.evictions = m.reg.Counter("fleet_evictions_total",
		"Tenant evictions (idle sweeps, the MaxActive cap, explicit Evict).")
	m.throttled = m.reg.Counter("fleet_ingest_throttled_total",
		"Ingest requests refused at a tenant's concurrency cap (HTTP 429).")
	m.reg.CounterFunc("fleet_ingested_total",
		"Events accepted across all tenants, including evicted ones.",
		func() int64 { return r.liveTotals().Ingested + m.retiredIngested.Load() })
	m.reg.CounterFunc("fleet_processed_total",
		"Filter survivors across all tenants, including evicted ones.",
		func() int64 { return r.liveTotals().Processed + m.retiredProcessed.Load() })
	m.reg.CounterFunc("fleet_warnings_total",
		"Warnings emitted across all tenants, including evicted ones.",
		func() int64 { return r.liveTotals().WarningsTotal + m.retiredWarnings.Load() })
	m.reg.CounterFunc("fleet_fatals_total",
		"Fatal events observed across all tenants, including evicted ones.",
		func() int64 { return r.liveTotals().Fatals + m.retiredFatals.Load() })
	if r.limiter != nil {
		m.reg.GaugeFunc("fleet_retrain_active",
			"Background training passes holding a limiter slot.",
			func() float64 { return float64(r.limiter.Active()) })
		m.reg.GaugeFunc("fleet_retrain_peak",
			"High-water mark of concurrent background training passes.",
			func() float64 { return float64(r.limiter.Peak()) })
		m.reg.GaugeFunc("fleet_retrain_limit",
			"Admission bound of the shared retrain limiter.",
			func() float64 { return float64(r.limiter.Cap()) })
	}
	return m
}

// retire folds an evicted tenant's final (drained) counters into the
// baseline. Called with the tenant's mu held, so rollup readers that
// visit the tenant see either its live counters or the baseline — never
// neither.
func (m *metrics) retire(st stream.Stats) {
	m.retiredIngested.Add(st.Ingested)
	m.retiredProcessed.Add(st.Processed)
	m.retiredWarnings.Add(st.WarningsTotal)
	m.retiredFatals.Add(st.Fatals)
}

// unretire subtracts the counters a reactivating tenant recovered from
// disk — they are about to be reported live again. Called with the
// tenant's mu held.
func (m *metrics) unretire(st stream.Stats) {
	m.retiredIngested.Add(-st.Ingested)
	m.retiredProcessed.Add(-st.Processed)
	m.retiredWarnings.Add(-st.WarningsTotal)
	m.retiredFatals.Add(-st.Fatals)
}

// liveTotals sums the live counters of every active tenant.
func (r *Registry) liveTotals() stream.Stats {
	var agg stream.Stats
	for _, tn := range r.snapshot() {
		tn.mu.Lock()
		if tn.svc != nil {
			st := tn.svc.Stats()
			agg.Ingested += st.Ingested
			agg.Processed += st.Processed
			agg.WarningsTotal += st.WarningsTotal
			agg.Fatals += st.Fatals
		}
		tn.mu.Unlock()
	}
	return agg
}

// WriteMetrics renders the aggregate exposition: the fleet's own
// instruments unlabeled, plus every active tenant's full stream registry
// with a tenant="<id>" label, merged family-by-family so each metric
// name appears once with per-tenant series side by side.
func (r *Registry) WriteMetrics(w io.Writer) error {
	tns := r.snapshot()
	parts := make([]obsv.LabeledRegistry, 0, len(tns)+1)
	parts = append(parts, obsv.LabeledRegistry{Registry: r.m.reg})
	for _, tn := range tns {
		tn.mu.Lock()
		if tn.svc != nil {
			parts = append(parts, obsv.LabeledRegistry{
				Registry: tn.svc.Metrics(),
				Labels:   []obsv.Label{{Key: "tenant", Value: tn.id}},
			})
		}
		tn.mu.Unlock()
	}
	// Tenant order from the map snapshot is random; sort the labeled
	// parts so the exposition is byte-stable across scrapes.
	rest := parts[1:]
	sort.Slice(rest, func(i, j int) bool {
		return rest[i].Labels[0].Value < rest[j].Labels[0].Value
	})
	return obsv.WriteMergedPrometheus(w, parts...)
}
