package fleet

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestEvictIdleUsesMonotonicClock is the regression test for the idle
// janitor's clock. lastUse used to hold wall-clock unix milliseconds,
// compared against time.Now-derived cutoffs: a wall clock that stepped
// forward mass-evicted tenants used milliseconds ago, and one that
// stepped backward left stamps in the future that never aged out.
// Against the fake idle clock below the old stamps sit ~55 years in the
// future, so both eviction assertions fail pre-fix; with idleness kept
// in monotonic time they are pure durations.
func TestEvictIdleUsesMonotonicClock(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	orig := monoNowMs
	monoNowMs = func() int64 { return now.Load() }
	defer func() { monoNowMs = orig }()

	r, err := New(Config{Stream: tenantStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	h, err := r.Acquire("a", true)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	// Five minutes of idleness: under a one-hour policy nothing is
	// evicted, whatever the wall clock did meanwhile.
	now.Add((5 * time.Minute).Milliseconds())
	if n := r.EvictIdle(time.Hour); n != 0 {
		t.Fatalf("EvictIdle evicted %d tenants after 5m idle (policy 1h)", n)
	}

	// Two hours in, the tenant is genuinely idle.
	now.Add((2 * time.Hour).Milliseconds())
	if n := r.EvictIdle(time.Hour); n != 1 {
		t.Fatalf("EvictIdle evicted %d tenants after 2h idle (policy 1h), want 1", n)
	}

	// Reactivation refreshes the stamp from the same clock.
	h2, err := r.Acquire("a", true)
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if n := r.EvictIdle(time.Hour); n != 0 {
		t.Fatalf("EvictIdle evicted a tenant acquired just now (%d)", n)
	}

	// The listing converts the monotonic stamp back to wall time rather
	// than leaking small since-process-start values into the API.
	found := false
	for _, info := range r.List() {
		if info.ID != "a" {
			continue
		}
		found = true
		if info.LastUseMs == 0 {
			t.Fatal("LastUseMs missing for a used tenant")
		}
		diff := info.LastUseMs - monoStart.UnixMilli()
		if diff < 0 || diff > (4*time.Hour).Milliseconds() {
			t.Fatalf("LastUseMs %d not anchored to the wall clock (monoStart %d)",
				info.LastUseMs, monoStart.UnixMilli())
		}
	}
	if !found {
		t.Fatal("tenant a missing from List")
	}
}
