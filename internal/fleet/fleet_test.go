package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bgsim"
	"repro/internal/predictor"
	"repro/internal/raslog"
	"repro/internal/stream"
)

const week = 7 * 24 * time.Hour

func genLog(t testing.TB, seed uint64, weeks int) *raslog.Log {
	t.Helper()
	g, err := bgsim.NewGenerator(bgsim.SDSC(seed).Scaled(weeks, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	l.SortByTime()
	return l
}

// tenantStreamConfig is the deterministic per-tenant template the fleet
// tests share: synchronous retraining so identically-fed tenants land on
// identical rule sets, and an oversized warnings ring so full histories
// compare.
func tenantStreamConfig() stream.Config {
	cfg := stream.Defaults()
	cfg.InitialTrain = 3 * week
	cfg.RetrainEvery = 2 * week
	cfg.TrainWindow = 6 * week
	cfg.SyncRetrain = true
	cfg.WarningsKeep = 1 << 20
	return cfg
}

func mustFleet(t testing.TB, cfg Config) *Registry {
	t.Helper()
	if cfg.Stream.Filter.Threshold == 0 {
		cfg.Stream = tenantStreamConfig()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ingestEvents(t testing.TB, svc *stream.Service, events []raslog.Event) {
	t.Helper()
	ctx := context.Background()
	for _, e := range events {
		if err := svc.Ingest(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
}

// comparePublic asserts two drained services expose identical state
// through the public API: rule set (bit-exact, including fitted
// distribution parameters), full warning history, retrain history,
// counters and stream clocks.
func comparePublic(t *testing.T, got, want *stream.Service) {
	t.Helper()
	if !reflect.DeepEqual(got.Rules(), want.Rules()) {
		t.Errorf("rule sets differ: got %d rules, want %d", len(got.Rules()), len(want.Rules()))
	}
	gw, ww := got.Warnings(0), want.Warnings(0)
	if len(gw) != len(ww) {
		t.Fatalf("warning counts differ: got %d, want %d", len(gw), len(ww))
	}
	for i := range gw {
		if gw[i] != ww[i] {
			t.Fatalf("warning %d differs: got %+v, want %+v", i, gw[i], ww[i])
		}
	}
	gs, ws := got.Stats(), want.Stats()
	if len(gs.Retrains) != len(ws.Retrains) {
		t.Fatalf("retrain counts differ: got %d, want %d", len(gs.Retrains), len(ws.Retrains))
	}
	for i := range gs.Retrains {
		if gs.Retrains[i].At != ws.Retrains[i].At {
			t.Errorf("retrain %d at %d, want %d", i, gs.Retrains[i].At, ws.Retrains[i].At)
		}
	}
	for _, c := range []struct {
		name      string
		got, want int64
	}{
		{"ingested", gs.Ingested, ws.Ingested},
		{"sequenced", gs.Sequenced, ws.Sequenced},
		{"after_temporal", gs.AfterTemporal, ws.AfterTemporal},
		{"processed", gs.Processed, ws.Processed},
		{"fatals", gs.Fatals, ws.Fatals},
		{"warnings_total", gs.WarningsTotal, ws.WarningsTotal},
		{"rules", gs.Rules, ws.Rules},
	} {
		if c.got != c.want {
			t.Errorf("stat %s: got %d, want %d", c.name, c.got, c.want)
		}
	}
	if gs.Watermark != ws.Watermark || gs.StreamStart != ws.StreamStart || gs.NextRetrain != ws.NextRetrain {
		t.Errorf("stream clocks differ: got (%d, %d, %d), want (%d, %d, %d)",
			gs.StreamStart, gs.Watermark, gs.NextRetrain, ws.StreamStart, ws.Watermark, ws.NextRetrain)
	}
}

// TestLazyActivationAndIsolation pins the core multiplexing contract:
// tenants come into existence on first Acquire, and each behaves exactly
// like a standalone service fed the same log — rules and warnings from
// one tenant never leak into another. Eviction (a graceful close) drains
// each tenant, so the recovered state compares against a closed
// standalone reference.
func TestLazyActivationAndIsolation(t *testing.T) {
	la, lb := genLog(t, 3, 6), genLog(t, 17, 6)
	reg := mustFleet(t, Config{Root: t.TempDir()})
	defer reg.Close()

	if list := reg.List(); len(list) != 1 || list[0].ID != "default" || list[0].Active {
		t.Fatalf("fresh fleet should know only the inactive default tenant, got %+v", list)
	}

	for _, tc := range []struct {
		id  string
		log *raslog.Log
	}{{"alpha", la}, {"beta", lb}} {
		h, err := reg.Acquire(tc.id, true)
		if err != nil {
			t.Fatal(err)
		}
		ingestEvents(t, h.Service(), tc.log.Events)
		h.Release()
	}

	// Per-tenant references: standalone services with the identical
	// config must land on identical state.
	warns := map[string][]predictor.Warning{}
	for _, tc := range []struct {
		id  string
		log *raslog.Log
	}{{"alpha", la}, {"beta", lb}} {
		ref, err := stream.New(tenantStreamConfig())
		if err != nil {
			t.Fatal(err)
		}
		ingestEvents(t, ref, tc.log.Events)
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
		if err := reg.Evict(tc.id); err != nil {
			t.Fatal(err)
		}
		h, err := reg.Acquire(tc.id, false)
		if err != nil {
			t.Fatal(err)
		}
		comparePublic(t, h.Service(), ref)
		warns[tc.id] = h.Service().Warnings(0)
		h.Release()
	}

	if len(warns["alpha"]) == 0 || len(warns["beta"]) == 0 {
		t.Fatalf("tenants produced no warnings (%d, %d); isolation test is trivial",
			len(warns["alpha"]), len(warns["beta"]))
	}
	if reflect.DeepEqual(warns["alpha"], warns["beta"]) {
		t.Error("different logs produced identical warning streams; tenants are not isolated")
	}
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEvictReactivateEquivalence is the eviction acceptance test: ingest
// → evict (graceful close + snapshot) → reactivate (recover from disk) →
// ingest the rest must end byte-identical to a tenant that was never
// evicted — same rules, same warnings, same counters.
func TestEvictReactivateEquivalence(t *testing.T) {
	l := genLog(t, 11, 8)
	half := len(l.Events) / 2

	run := func(root string, evictAt int) {
		reg := mustFleet(t, Config{Root: root})
		h, err := reg.Acquire("x", true)
		if err != nil {
			t.Fatal(err)
		}
		if evictAt > 0 {
			ingestEvents(t, h.Service(), l.Events[:evictAt])
			h.Release()
			if err := reg.Evict("x"); err != nil {
				t.Fatal(err)
			}
			if h, err = reg.Acquire("x", false); err != nil {
				t.Fatalf("reactivation failed: %v", err)
			}
			ingestEvents(t, h.Service(), l.Events[evictAt:])
		} else {
			ingestEvents(t, h.Service(), l.Events)
		}
		h.Release()
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}

	rootRef, rootEvict := t.TempDir(), t.TempDir()
	run(rootRef, 0)
	run(rootEvict, half)

	// Compare the recovered states: reopen both fleets and read the
	// tenant back — both sides went through the same final
	// close/recover cycle, so any difference is the eviction's fault.
	regRef := mustFleet(t, Config{Root: rootRef})
	defer regRef.Close()
	regEvict := mustFleet(t, Config{Root: rootEvict})
	defer regEvict.Close()
	href, err := regRef.Acquire("x", false)
	if err != nil {
		t.Fatal(err)
	}
	defer href.Release()
	hev, err := regEvict.Acquire("x", false)
	if err != nil {
		t.Fatal(err)
	}
	defer hev.Release()
	if got := hev.Service().Recovery().Replayed; got != 0 {
		t.Errorf("gracefully-closed tenant replayed %d WAL events on recovery, want 0", got)
	}
	if len(href.Service().Rules()) == 0 || len(href.Service().Warnings(0)) == 0 {
		t.Fatal("reference tenant is trivial; equivalence would prove nothing")
	}
	comparePublic(t, hev.Service(), href.Service())
}

// TestGracefulCloseClosesAllTenants pins shutdown: Close must drain and
// snapshot every active tenant, so the next start replays no WAL at all
// and recovers every tenant's counters.
func TestGracefulCloseClosesAllTenants(t *testing.T) {
	root := t.TempDir()
	l := genLog(t, 5, 4)
	reg := mustFleet(t, Config{Root: root})
	want := map[string]int64{}
	for _, id := range []string{"a", "b", "c"} {
		h, err := reg.Acquire(id, true)
		if err != nil {
			t.Fatal(err)
		}
		ingestEvents(t, h.Service(), l.Events)
		h.Release()
		want[id] = int64(len(l.Events))
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Acquire("a", false); err != ErrClosed {
		t.Errorf("Acquire after Close = %v, want ErrClosed", err)
	}

	reg2 := mustFleet(t, Config{Root: root})
	defer reg2.Close()
	list := reg2.List()
	if len(list) != 4 { // a, b, c, default
		t.Fatalf("reopened fleet knows %d tenants, want 4: %+v", len(list), list)
	}
	for _, id := range []string{"a", "b", "c"} {
		h, err := reg2.Acquire(id, false)
		if err != nil {
			t.Fatal(err)
		}
		if rec := h.Service().Recovery(); rec.Replayed != 0 {
			t.Errorf("tenant %s replayed %d events after graceful close, want 0", id, rec.Replayed)
		}
		if got := h.Service().Stats().Ingested; got != want[id] {
			t.Errorf("tenant %s recovered %d ingested, want %d", id, got, want[id])
		}
		h.Release()
	}
}

// TestUnknownTenantSemantics pins the create flag: reads never mint
// tenants, writes do, and the default tenant always exists.
func TestUnknownTenantSemantics(t *testing.T) {
	root := t.TempDir()
	reg := mustFleet(t, Config{Root: root})
	defer reg.Close()

	if _, err := reg.Acquire("ghost", false); err == nil {
		t.Fatal("Acquire(create=false) on an unknown tenant succeeded")
	}
	if entries, _ := os.ReadDir(filepath.Join(root, "tenants")); len(entries) != 0 {
		t.Errorf("failed acquire left state dirs behind: %v", entries)
	}
	h, err := reg.Acquire("default", false)
	if err != nil {
		t.Fatalf("default tenant must always be acquirable: %v", err)
	}
	h.Release()
	if _, err := reg.Acquire("../etc", true); err == nil {
		t.Fatal("traversal tenant id accepted")
	}
}

// TestHundredActiveTenants is the scale acceptance test: one registry
// serves 100 concurrently-active durable tenants, each an isolated
// pipeline fed the same log, and every tenant must land on the identical
// (deterministic) rule set and warning history with its own state
// directory on disk.
func TestHundredActiveTenants(t *testing.T) {
	const n = 100
	root := t.TempDir()
	l := genLog(t, 23, 4)
	reg := mustFleet(t, Config{Root: root})
	defer reg.Close()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("sys-%03d", i)
			h, err := reg.Acquire(id, true)
			if err != nil {
				errs <- err
				return
			}
			defer h.Release()
			ctx := context.Background()
			// IngestBatch takes ownership of the slice; every tenant
			// feeds its own copy of the shared log.
			events := append([]raslog.Event(nil), l.Events...)
			for len(events) > 0 {
				c := min(512, len(events))
				if _, err := h.Service().IngestBatch(ctx, events[:c:c]); err != nil {
					errs <- err
					return
				}
				events = events[c:]
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	active := 0
	for _, info := range reg.List() {
		if info.Active {
			active++
		}
	}
	if active != n { // default stays inactive: nothing touched it
		t.Fatalf("%d active tenants, want %d", active, n)
	}
	// Close drains and snapshots all 100 tenants; the reopened fleet
	// recovers each, and every recovered tenant must match tenant 0
	// exactly — the pipelines never shared state despite one process,
	// one retrain limiter and one root directory.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := mustFleet(t, Config{Root: root})
	defer reg2.Close()

	h0, err := reg2.Acquire("sys-000", false)
	if err != nil {
		t.Fatal(err)
	}
	defer h0.Release()
	if len(h0.Service().Rules()) == 0 || h0.Service().Stats().WarningsTotal == 0 {
		t.Fatalf("tenant 0 is trivial (%d rules, %d warnings); scale test proves nothing",
			len(h0.Service().Rules()), h0.Service().Stats().WarningsTotal)
	}
	for i := 1; i < n; i++ {
		h, err := reg2.Acquire(fmt.Sprintf("sys-%03d", i), false)
		if err != nil {
			t.Fatal(err)
		}
		comparePublic(t, h.Service(), h0.Service())
		h.Release()
		if t.Failed() {
			t.Fatalf("tenant %d diverged from tenant 0; stopping", i)
		}
	}
	dirs, err := os.ReadDir(filepath.Join(root, "tenants"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != n {
		t.Errorf("%d tenant state dirs on disk, want %d", len(dirs), n)
	}
}

// TestMaxActiveEvictsLRU pins the soft cap: activating beyond MaxActive
// evicts the least-recently-used idle tenant, which reactivates from its
// snapshot on next use.
func TestMaxActiveEvictsLRU(t *testing.T) {
	root := t.TempDir()
	l := genLog(t, 9, 4)
	reg := mustFleet(t, Config{Root: root, MaxActive: 2})
	defer reg.Close()

	touch := func(id string) {
		t.Helper()
		h, err := reg.Acquire(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if h.Service().Stats().Ingested == 0 {
			ingestEvents(t, h.Service(), l.Events)
		}
		h.Release()
	}
	touch("a")
	time.Sleep(5 * time.Millisecond) // order lastUse strictly: ms clock
	touch("b")
	time.Sleep(5 * time.Millisecond)
	touch("c") // must evict "a", the LRU

	byID := map[string]TenantInfo{}
	for _, info := range reg.List() {
		byID[info.ID] = info
	}
	if byID["a"].Active {
		t.Error("LRU tenant a still active past the MaxActive=2 cap")
	}
	if !byID["b"].Active || !byID["c"].Active {
		t.Errorf("wrong tenants evicted: %+v", byID)
	}

	// The evicted tenant reactivates with its state intact.
	h, err := reg.Acquire("a", false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if got := h.Service().Stats().Ingested; got != int64(len(l.Events)) {
		t.Errorf("reactivated tenant recovered %d ingested, want %d", got, len(l.Events))
	}
	if byID["a"].Activations != 1 {
		t.Errorf("pre-reactivation activations = %d, want 1", byID["a"].Activations)
	}
}

// TestSharedRetrainLimiter pins the bounded retrain scheduler: with
// RetrainConcurrency=1 and asynchronous retraining, many tenants
// triggering passes at once must serialize through the shared limiter —
// the peak never exceeds the cap, and passes do complete.
func TestSharedRetrainLimiter(t *testing.T) {
	l := genLog(t, 13, 6)
	scfg := tenantStreamConfig()
	scfg.SyncRetrain = false
	reg := mustFleet(t, Config{Stream: scfg, RetrainConcurrency: 1})
	defer reg.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := reg.Acquire(fmt.Sprintf("t%d", i), true)
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			events := append([]raslog.Event(nil), l.Events...)
			if _, err := h.Service().IngestBatch(context.Background(), events); err != nil {
				t.Error(err)
				return
			}
			waitFor(t, 60*time.Second, func() bool {
				return h.Service().Stats().Rules > 0
			})
		}(i)
	}
	wg.Wait()

	lim := reg.Limiter()
	if lim == nil {
		t.Fatal("RetrainConcurrency=1 did not install a limiter")
	}
	if p := lim.Peak(); p != 1 {
		t.Errorf("limiter peak = %d, want exactly 1", p)
	}
	if a := lim.Active(); a != 0 {
		// Retrain passes may still be trailing; give them a moment.
		waitFor(t, 30*time.Second, func() bool { return lim.Active() == 0 })
	}
}

// TestConfigRejectsSharedState pins New's template validation.
func TestConfigRejectsSharedState(t *testing.T) {
	bad := tenantStreamConfig()
	bad.StateDir = t.TempDir()
	if _, err := New(Config{Stream: bad}); err == nil {
		t.Error("template with StateDir accepted")
	}
	bad2 := tenantStreamConfig()
	bad2.RetrainLimiter = stream.NewRetrainLimiter(1)
	if _, err := New(Config{Stream: bad2}); err == nil {
		t.Error("template with RetrainLimiter accepted")
	}
	if _, err := New(Config{Stream: tenantStreamConfig(), DefaultTenant: "../x"}); err == nil {
		t.Error("invalid default tenant accepted")
	}
}

// TestIdleJanitor pins idle eviction end to end: a tenant left untouched
// past IdleAfter is swept out by the janitor and its memory released,
// while its state survives on disk.
func TestIdleJanitor(t *testing.T) {
	root := t.TempDir()
	l := genLog(t, 7, 4)
	reg := mustFleet(t, Config{Root: root, IdleAfter: 50 * time.Millisecond, SweepEvery: time.Nanosecond})
	defer reg.Close()

	h, err := reg.Acquire("idle", true)
	if err != nil {
		t.Fatal(err)
	}
	ingestEvents(t, h.Service(), l.Events)
	h.Release()

	waitFor(t, 30*time.Second, func() bool {
		for _, info := range reg.List() {
			if info.ID == "idle" {
				return !info.Active
			}
		}
		return false
	})
	h, err = reg.Acquire("idle", false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if got := h.Service().Stats().Ingested; got != int64(len(l.Events)) {
		t.Errorf("swept tenant recovered %d ingested, want %d", got, len(l.Events))
	}
}
