package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/raslog"
)

func logBody(t *testing.T, l *raslog.Log) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func do(t *testing.T, mux *http.ServeMux, method, target string, body *bytes.Buffer) *httptest.ResponseRecorder {
	t.Helper()
	if body == nil {
		body = &bytes.Buffer{}
	}
	req := httptest.NewRequest(method, target, body)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestTenantRoutingAndLegacyAliases drives the full HTTP surface: ingest
// into two prefixed tenants, read back tenant-scoped warnings and stats,
// list the fleet, and confirm the unprefixed legacy routes land on the
// default tenant.
func TestTenantRoutingAndLegacyAliases(t *testing.T) {
	l := genLog(t, 3, 6)
	reg := mustFleet(t, Config{Root: t.TempDir()})
	defer reg.Close()
	mux := NewMux(reg)

	for _, id := range []string{"alpha", "beta"} {
		if rec := do(t, mux, "POST", "/t/"+id+"/ingest/batch", logBody(t, l)); rec.Code != http.StatusOK {
			t.Fatalf("POST /t/%s/ingest/batch = %d: %s", id, rec.Code, rec.Body)
		}
	}
	// Legacy unprefixed ingest lands on (and lazily creates) the default
	// tenant.
	if rec := do(t, mux, "POST", "/ingest/batch", logBody(t, l)); rec.Code != http.StatusOK {
		t.Fatalf("POST /ingest/batch = %d: %s", rec.Code, rec.Body)
	}

	// Evict + reactivate drains the tenants so their stats are settled.
	for _, id := range []string{"alpha", "beta", "default"} {
		if err := reg.Evict(id); err != nil {
			t.Fatal(err)
		}
	}

	var stats struct {
		Ingested int64 `json:"ingested"`
	}
	rec := do(t, mux, "GET", "/t/alpha/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /t/alpha/stats = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != int64(l.Len()) {
		t.Errorf("tenant alpha ingested %d, want %d", stats.Ingested, l.Len())
	}
	// The legacy alias reads the same numbers from the default tenant.
	rec = do(t, mux, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingested != int64(l.Len()) {
		t.Errorf("default tenant ingested %d, want %d", stats.Ingested, l.Len())
	}

	var warns []map[string]interface{}
	rec = do(t, mux, "GET", "/t/alpha/warnings?n=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /t/alpha/warnings = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &warns); err != nil {
		t.Fatal(err)
	}
	if len(warns) == 0 || len(warns) > 5 {
		t.Errorf("tenant warnings returned %d entries, want 1..5", len(warns))
	}

	var list []TenantInfo
	rec = do(t, mux, "GET", "/tenants", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /tenants = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("GET /tenants returned %d tenants, want 3: %+v", len(list), list)
	}
	for i, want := range []string{"alpha", "beta", "default"} {
		if list[i].ID != want {
			t.Errorf("tenant %d = %q, want %q (sorted)", i, list[i].ID, want)
		}
	}

	// The firehose merges every *active* tenant; beta is still evicted
	// from the drain above, so touch it first to bring its warnings back
	// into the merge (a GET activates known tenants).
	if rec := do(t, mux, "GET", "/t/beta/stats", nil); rec.Code != http.StatusOK {
		t.Fatalf("GET /t/beta/stats = %d", rec.Code)
	}
	// Every tenant saw the same log, so each contributes the same
	// warnings tagged with its own ID.
	var fire []struct {
		Tenant string `json:"tenant"`
		TimeMs int64  `json:"time_ms"`
	}
	rec = do(t, mux, "GET", "/warnings?all=1&n=1000000", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /warnings?all=1 = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &fire); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	lastTime := int64(-1 << 62)
	for _, f := range fire {
		seen[f.Tenant]++
		if f.TimeMs < lastTime {
			t.Fatalf("firehose out of order: %d after %d", f.TimeMs, lastTime)
		}
		lastTime = f.TimeMs
	}
	if len(seen) != 3 || seen["alpha"] == 0 || seen["alpha"] != seen["beta"] || seen["alpha"] != seen["default"] {
		t.Errorf("firehose tenant mix = %v, want equal counts for alpha/beta/default", seen)
	}

	// GET on a tenant the fleet has never seen must 404, not create it.
	if rec := do(t, mux, "GET", "/t/ghost/stats", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET /t/ghost/stats = %d, want 404", rec.Code)
	}
	// Per-tenant health and metrics ride the same prefix.
	if rec := do(t, mux, "GET", "/t/alpha/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("GET /t/alpha/healthz = %d, want 200", rec.Code)
	}
	if rec := do(t, mux, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", rec.Code)
	}
}

// TestTenantIDValidationRejectsTraversal is the security regression test:
// encoded path separators and dot-segments in the tenant position must
// be rejected with 400 before any filesystem path is formed.
func TestTenantIDValidationRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	reg := mustFleet(t, Config{Root: root})
	defer reg.Close()
	mux := NewMux(reg)

	for _, target := range []string{
		"/t/%2e%2e/ingest",
		"/t/%2e%2e%2fother/ingest",
		"/t/a%2fb/ingest",
		"/t/a%5cb/ingest",
		"/t/" + strings.Repeat("x", 65) + "/ingest",
		"/t/sp%20ace/ingest",
	} {
		rec := do(t, mux, "POST", target, bytes.NewBufferString(""))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", target, rec.Code)
		}
	}
	// Nothing above may have touched the filesystem.
	if entries, err := os.ReadDir(filepath.Join(root, "tenants")); err == nil && len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("traversal attempts created state dirs: %v", names)
	}
	if entries, err := os.ReadDir(root); err != nil {
		t.Fatal(err)
	} else {
		for _, e := range entries {
			if e.Name() != "tenants" {
				t.Errorf("stray entry %q in fleet root", e.Name())
			}
		}
	}
}

// TestHTTPErrorMapping pins Acquire error → status code translation.
func TestHTTPErrorMapping(t *testing.T) {
	reg := mustFleet(t, Config{Root: t.TempDir()})
	mux := NewMux(reg)

	if rec := do(t, mux, "GET", "/t/never-seen/warnings", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant GET = %d, want 404", rec.Code)
	}
	if rec := do(t, mux, "POST", "/t/bad..id%2f/ingest", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad tenant id = %d, want 400", rec.Code)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, mux, "POST", "/t/alpha/ingest", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("closed registry = %d, want 503", rec.Code)
	}
	if rec := do(t, mux, "GET", "/warnings?all=2", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad all= value = %d, want 400", rec.Code)
	}
}

// TestFleetMetricsEndpoint spot-checks the aggregate exposition over
// HTTP; the full parser round-trip lives in metrics_test.go.
func TestFleetMetricsEndpoint(t *testing.T) {
	l := genLog(t, 5, 4)
	reg := mustFleet(t, Config{Root: t.TempDir()})
	defer reg.Close()
	mux := NewMux(reg)

	if rec := do(t, mux, "POST", "/t/alpha/ingest/batch", logBody(t, l)); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, mux, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"fleet_tenants_active 1",
		`stream_ingested_total{tenant="alpha"} ` + fmt.Sprint(l.Len()),
		"fleet_ingested_total " + fmt.Sprint(l.Len()),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
