// Package fleet multiplexes many independent stream.Service instances —
// one per tenant — inside a single serving process. The paper's case
// study trains one online failure predictor per monitored system; a
// datacenter operator runs hundreds of such systems, and giving each its
// own process wastes memory on mostly-idle predictors. The fleet
// registry keeps every tenant's pipeline fully isolated (own learners,
// own warnings, own WAL and snapshots under <root>/tenants/<id>/) while
// sharing the process-wide resources that actually contend: the retrain
// scheduler is bounded by one stream.RetrainLimiter across all tenants,
// and idle tenants are evicted — closed gracefully so their state is
// durable — and transparently reactivated from disk on their next
// request, byte-identical to a tenant that was never evicted.
//
// Tenants are created lazily: the first ingest for an unknown ID mints
// its directory and pipeline. Lookup happens once per request (Acquire),
// never per event, so the per-tenant hot path keeps the zero-allocation
// property of the underlying service.
package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/predictor"
	"repro/internal/stream"
)

var (
	// ErrClosed is returned by Acquire after Close.
	ErrClosed = errors.New("fleet: registry closed")
	// ErrBadTenantID rejects IDs that are unsafe as directory names or
	// label values (see persist.ValidTenantID) before any path is formed.
	ErrBadTenantID = errors.New("fleet: invalid tenant id")
	// ErrUnknownTenant is returned when create=false and the tenant has
	// no registry entry and no state directory.
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	// ErrTenantBusy refuses to evict a tenant with in-flight requests.
	ErrTenantBusy = errors.New("fleet: tenant has in-flight requests")
)

// The idle clock. lastUse stores milliseconds of *monotonic* time since
// monoStart, not wall-clock unix milliseconds: the janitor compares
// lastUse against "now minus IdleAfter", and a wall clock that steps
// (NTP correction, VM resume, manual change) would either mass-evict
// tenants used milliseconds ago (step forward) or park tenants with
// last-use stamps in the future that never age out (step backward).
// time.Since reads Go's monotonic reading, which cannot step.
var monoStart = time.Now()

// monoNowMs is the idle clock, a variable so tests can drive it. Never
// returns zero — zero lastUse means "never used".
var monoNowMs = func() int64 {
	ms := time.Since(monoStart).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Config parameterizes a fleet Registry.
type Config struct {
	// Stream is the template configuration every tenant's service is
	// built from. Its StateDir must be empty (per-tenant directories are
	// derived from Root), its Meta must be nil (tenants must not share
	// learner state), and its RetrainLimiter must be nil (the registry
	// installs the shared one).
	Stream stream.Config
	// Root is the fleet state directory; tenant state lives under
	// Root/tenants/<id>/. Empty disables durability for every tenant —
	// eviction then discards the tenant's learned state.
	Root string
	// DefaultTenant backs the legacy unprefixed HTTP routes ("" means
	// "default"). It is always creatable, even by a GET.
	DefaultTenant string
	// MaxActive softly caps concurrently-active tenants: an activation
	// over the cap first tries to evict the least-recently-used idle
	// tenants, but never blocks on busy ones. 0 means uncapped.
	MaxActive int
	// IdleAfter evicts tenants untouched for this long (stream state is
	// snapshotted on eviction when Root is set). 0 disables the janitor.
	IdleAfter time.Duration
	// SweepEvery is the janitor period (default IdleAfter/4, min 1s).
	SweepEvery time.Duration
	// RetrainConcurrency bounds concurrent background training passes
	// across the whole fleet: 0 means GOMAXPROCS, negative unlimited.
	RetrainConcurrency int
	// IngestSlots caps concurrently-admitted ingest requests *per
	// tenant*. Requests over the cap are refused immediately (HTTP 429 +
	// Retry-After) instead of queueing, so a storming tenant saturates
	// only its own slots — it cannot pile up goroutines that sit in the
	// shared admission wait and starve quieter tenants of CPU and
	// connections (TestStormingTenantCannotStarveQuietTenant). Non-ingest
	// routes are never throttled. 0 means 4; negative disables the cap.
	IngestSlots int
	// SyncParallel bounds concurrent WAL fsyncs across the whole fleet:
	// the registry builds one persist.SyncExecutor and installs it in
	// every tenant's stream config (like the retrain limiter), so tenant
	// stores sharing a disk queue behind a few device flushes — and the
	// queueing deepens each store's own commit coalescing — instead of
	// issuing a flush storm. 0 means 2; negative disables the shared
	// executor (each store fsyncs independently). Ignored without Root
	// (no durability, no fsyncs).
	SyncParallel int
}

// Registry owns the fleet's tenants. Lock order: Registry.mu is never
// held while acquiring a tenant.mu, and cross-tenant sweeps (eviction
// for the MaxActive cap, the idle janitor) only TryLock their victims —
// so no lock cycle exists no matter how activations and evictions race.
type Registry struct {
	cfg      Config
	limiter  *stream.RetrainLimiter
	syncExec *persist.SyncExecutor
	m        *metrics
	closed   atomic.Bool

	mu      sync.Mutex
	tenants map[string]*tenant

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// tenant is one registry slot. svc and mux are non-nil exactly while the
// tenant is active; refs counts outstanding Handles. All three are
// guarded by mu; the atomics are readable without it for sweeps and
// listings.
type tenant struct {
	id string

	// ingestSem is the tenant's ingest-slot semaphore (nil when the cap
	// is disabled). It outlives eviction — slots gate *requests*, which
	// exist whether or not the pipeline is currently active.
	ingestSem chan struct{}

	mu   sync.Mutex
	svc  *stream.Service
	mux  *http.ServeMux
	refs int

	active      atomic.Bool
	activations atomic.Int64
	lastUse     atomic.Int64 // monotonic ms since monoStart (0 = never)
}

// newTenant mints a registry slot for id. Called with Registry.mu held
// (or before the registry is shared).
func (r *Registry) newTenant(id string) *tenant {
	tn := &tenant{id: id}
	if n := r.ingestSlots(); n > 0 {
		tn.ingestSem = make(chan struct{}, n)
	}
	return tn
}

func (r *Registry) ingestSlots() int {
	switch {
	case r.cfg.IngestSlots == 0:
		return 4
	case r.cfg.IngestSlots > 0:
		return r.cfg.IngestSlots
	}
	return 0
}

// admitIngest reserves one of the tenant's ingest slots; ok=false means
// the tenant is already at its concurrency cap and the request should be
// refused with 429. release must be called exactly once when ok.
func (tn *tenant) admitIngest() (release func(), ok bool) {
	if tn.ingestSem == nil {
		return func() {}, true
	}
	select {
	case tn.ingestSem <- struct{}{}:
		return func() { <-tn.ingestSem }, true
	default:
		return nil, false
	}
}

// New opens a fleet registry, re-registering (without activating) every
// tenant that left a state directory under Root from a previous run.
func New(cfg Config) (*Registry, error) {
	if cfg.Stream.StateDir != "" {
		return nil, errors.New("fleet: Stream.StateDir must be empty; per-tenant dirs are derived from Root")
	}
	if cfg.Stream.Meta != nil {
		return nil, errors.New("fleet: Stream.Meta must be nil; tenants must not share learner state")
	}
	if cfg.Stream.RetrainLimiter != nil {
		return nil, errors.New("fleet: Stream.RetrainLimiter must be nil; the registry installs the shared limiter")
	}
	if cfg.Stream.WALSyncExec != nil {
		return nil, errors.New("fleet: Stream.WALSyncExec must be nil; the registry installs the shared executor")
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	if !persist.ValidTenantID(cfg.DefaultTenant) {
		return nil, fmt.Errorf("%w: default tenant %q", ErrBadTenantID, cfg.DefaultTenant)
	}
	r := &Registry{cfg: cfg, tenants: make(map[string]*tenant)}
	switch {
	case cfg.RetrainConcurrency == 0:
		r.limiter = stream.NewRetrainLimiter(runtime.GOMAXPROCS(0))
	case cfg.RetrainConcurrency > 0:
		r.limiter = stream.NewRetrainLimiter(cfg.RetrainConcurrency)
	}
	if cfg.Root != "" && cfg.SyncParallel >= 0 {
		n := cfg.SyncParallel
		if n == 0 {
			n = 2
		}
		r.syncExec = persist.NewSyncExecutor(n)
	}
	if cfg.Root != "" {
		ids, err := persist.ListTenantDirs(cfg.Root)
		if err != nil {
			return nil, fmt.Errorf("fleet: scanning %s: %w", cfg.Root, err)
		}
		for _, id := range ids {
			r.tenants[id] = r.newTenant(id)
		}
	}
	if _, ok := r.tenants[cfg.DefaultTenant]; !ok {
		r.tenants[cfg.DefaultTenant] = r.newTenant(cfg.DefaultTenant)
	}
	r.m = newMetrics(r)
	if cfg.IdleAfter > 0 {
		sweep := cfg.SweepEvery
		if sweep <= 0 {
			sweep = cfg.IdleAfter / 4
		}
		if sweep < time.Second {
			sweep = time.Second
		}
		r.janitorStop = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor(sweep)
	}
	return r, nil
}

// Handle is a leased reference to an active tenant: while any Handle is
// outstanding the tenant cannot be evicted. Release it when the request
// finishes.
type Handle struct {
	tn  *tenant
	svc *stream.Service
	mux *http.ServeMux
}

// Service returns the tenant's pipeline.
func (h Handle) Service() *stream.Service { return h.svc }

// ServeHTTP dispatches on the tenant's own API (the stream.NewMux routes).
func (h Handle) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	h.mux.ServeHTTP(w, req)
}

// Release returns the lease. The Handle must not be used afterwards.
func (h Handle) Release() {
	h.tn.mu.Lock()
	h.tn.refs--
	h.tn.mu.Unlock()
}

// Acquire leases tenant id, activating it (recovering durable state from
// disk) if needed. With create=false an ID the registry has never seen
// is ErrUnknownTenant — GETs must not mint state directories for
// arbitrary paths — except the default tenant, which always exists.
func (r *Registry) Acquire(id string, create bool) (Handle, error) {
	if !persist.ValidTenantID(id) {
		return Handle{}, fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	if r.closed.Load() {
		return Handle{}, ErrClosed
	}
	r.mu.Lock()
	tn := r.tenants[id]
	if tn == nil {
		if !create && id != r.cfg.DefaultTenant {
			r.mu.Unlock()
			return Handle{}, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		}
		tn = r.newTenant(id)
		r.tenants[id] = tn
	}
	r.mu.Unlock()

	// Make room for the activation before taking tn.mu: makeRoom needs
	// Registry.mu for its candidate snapshot, and taking that while
	// holding a tenant lock would invert the lock order. The unlocked
	// active check can race — the cap is soft, and a spurious sweep only
	// evicts tenants that are genuinely idle.
	if r.cfg.MaxActive > 0 && !tn.active.Load() {
		r.makeRoom(tn)
	}

	tn.mu.Lock()
	defer tn.mu.Unlock()
	if r.closed.Load() {
		return Handle{}, ErrClosed
	}
	if tn.svc == nil {
		if err := r.activate(tn); err != nil {
			return Handle{}, err
		}
	}
	tn.refs++
	tn.lastUse.Store(monoNowMs())
	return Handle{tn: tn, svc: tn.svc, mux: tn.mux}, nil
}

// activate builds the tenant's service from the template config. Called
// with tn.mu held. Durable recovery restores the tenant's counters, so
// the recovered totals are subtracted from the fleet's retired baseline:
// an evict/reactivate cycle leaves every rollup exactly where it was.
func (r *Registry) activate(tn *tenant) error {
	scfg := r.cfg.Stream
	scfg.RetrainLimiter = r.limiter
	scfg.WALSyncExec = r.syncExec
	if r.cfg.Root != "" {
		dir, err := persist.TenantDir(r.cfg.Root, tn.id)
		if err != nil {
			return fmt.Errorf("%w: %q", ErrBadTenantID, tn.id)
		}
		scfg.StateDir = dir
	}
	svc, err := stream.New(scfg)
	if err != nil {
		return fmt.Errorf("fleet: activating %q: %w", tn.id, err)
	}
	r.m.unretire(svc.Stats())
	tn.svc, tn.mux = svc, stream.NewMux(svc)
	tn.active.Store(true)
	tn.activations.Add(1)
	r.m.activations.Inc()
	return nil
}

// evictLocked closes and releases an active tenant. Called with tn.mu
// held. The final stats are taken after Close — the drained, snapshotted
// totals — and folded into the retired baseline so fleet rollups survive
// the eviction. The tenant is released even if Close reports an error
// (a failed final snapshot leaves the WAL to replay next activation).
func (r *Registry) evictLocked(tn *tenant) error {
	if tn.svc == nil {
		return nil
	}
	if tn.refs > 0 {
		return ErrTenantBusy
	}
	err := tn.svc.Close()
	r.m.retire(tn.svc.Stats())
	tn.svc, tn.mux = nil, nil
	tn.active.Store(false)
	r.m.evictions.Inc()
	return err
}

// Evict closes tenant id and releases its memory; its durable state (if
// Root is set) reactivates on the next Acquire. A tenant with in-flight
// requests is ErrTenantBusy; evicting an inactive tenant is a no-op.
func (r *Registry) Evict(id string) error {
	r.mu.Lock()
	tn := r.tenants[id]
	r.mu.Unlock()
	if tn == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return r.evictLocked(tn)
}

// EvictIdle evicts every active tenant untouched for longer than
// olderThan, skipping busy ones (TryLock — the sweep never blocks a
// request). Returns how many tenants it evicted.
func (r *Registry) EvictIdle(olderThan time.Duration) int {
	cutoff := monoNowMs() - olderThan.Milliseconds()
	n := 0
	for _, tn := range r.snapshot() {
		if !tn.active.Load() || tn.lastUse.Load() > cutoff {
			continue
		}
		if !tn.mu.TryLock() {
			continue
		}
		if tn.refs == 0 && tn.lastUse.Load() <= cutoff {
			_ = r.evictLocked(tn) // released even if the final snapshot failed
			if tn.svc == nil {
				n++
			}
		}
		tn.mu.Unlock()
	}
	return n
}

// makeRoom evicts least-recently-used idle tenants until the active
// count (excluding the tenant about to activate) is back under
// MaxActive. Best-effort: busy tenants are skipped, and if every
// candidate is busy the cap is simply exceeded.
func (r *Registry) makeRoom(skip *tenant) {
	active := 0
	var cands []*tenant
	for _, tn := range r.snapshot() {
		if tn.active.Load() {
			active++
			if tn != skip {
				cands = append(cands, tn)
			}
		}
	}
	need := active - r.cfg.MaxActive + 1
	if need <= 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].lastUse.Load() < cands[j].lastUse.Load()
	})
	for _, tn := range cands {
		if need <= 0 {
			return
		}
		if !tn.mu.TryLock() {
			continue
		}
		if tn.refs == 0 {
			_ = r.evictLocked(tn)
			if tn.svc == nil {
				need--
			}
		}
		tn.mu.Unlock()
	}
}

// snapshot returns the tenant set without holding Registry.mu past the
// copy, preserving the lock order (never Registry.mu under tenant.mu,
// never tenant.mu under Registry.mu).
func (r *Registry) snapshot() []*tenant {
	r.mu.Lock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, tn := range r.tenants {
		out = append(out, tn)
	}
	r.mu.Unlock()
	return out
}

// janitor periodically evicts idle tenants until Close.
func (r *Registry) janitor(every time.Duration) {
	defer close(r.janitorDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.EvictIdle(r.cfg.IdleAfter)
		case <-r.janitorStop:
			return
		}
	}
}

// Close drains and closes every active tenant concurrently — each gets a
// graceful stream shutdown, so durable tenants restart with an empty WAL
// replay. In-flight requests observe stream.ErrClosed (503 at the HTTP
// layer); their leases are not waited for. Returns the first close error.
func (r *Registry) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	if r.janitorStop != nil {
		close(r.janitorStop)
		<-r.janitorDone
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for _, tn := range r.snapshot() {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			tn.mu.Lock()
			defer tn.mu.Unlock()
			if tn.svc == nil {
				return
			}
			err := tn.svc.Close()
			r.m.retire(tn.svc.Stats())
			tn.svc, tn.mux = nil, nil
			tn.active.Store(false)
			if err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}(tn)
	}
	wg.Wait()
	return first
}

// TenantInfo is one GET /tenants row. Counters are live values and read
// zero while the tenant is evicted (its totals stay visible in the fleet
// rollup metrics, and come back on reactivation via durable recovery).
type TenantInfo struct {
	ID          string `json:"id"`
	Active      bool   `json:"active"`
	Activations int64  `json:"activations"`
	LastUseMs   int64  `json:"last_use_ms,omitempty"`
	Ingested    int64  `json:"ingested"`
	Processed   int64  `json:"processed"`
	Warnings    int64  `json:"warnings"`
	Rules       int64  `json:"rules"`
}

// List returns every known tenant sorted by ID.
func (r *Registry) List() []TenantInfo {
	tns := r.snapshot()
	out := make([]TenantInfo, 0, len(tns))
	for _, tn := range tns {
		info := TenantInfo{
			ID:          tn.id,
			Activations: tn.activations.Load(),
		}
		// lastUse is monotonic; convert back to wall clock for the API.
		if ms := tn.lastUse.Load(); ms != 0 {
			info.LastUseMs = monoStart.Add(time.Duration(ms) * time.Millisecond).UnixMilli()
		}
		tn.mu.Lock()
		if tn.svc != nil {
			info.Active = true
			st := tn.svc.Stats()
			info.Ingested, info.Processed = st.Ingested, st.Processed
			info.Warnings, info.Rules = st.WarningsTotal, st.Rules
		}
		tn.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TenantWarning is one entry of the fleet-wide warnings firehose.
type TenantWarning struct {
	Tenant string
	predictor.Warning
}

// Firehose merges the retained warnings of every active tenant into one
// stream ordered by (Time, Tenant, RuleID) and returns the most recent n
// (n <= 0 means all). Evicted tenants' warnings live in their snapshots
// and rejoin the firehose when they reactivate.
func (r *Registry) Firehose(n int) []TenantWarning {
	var out []TenantWarning
	for _, tn := range r.snapshot() {
		tn.mu.Lock()
		if tn.svc != nil {
			for _, w := range tn.svc.Warnings(0) {
				out = append(out, TenantWarning{Tenant: tn.id, Warning: w})
			}
		}
		tn.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.RuleID < b.RuleID
	})
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// DefaultTenant returns the tenant ID backing the unprefixed routes.
func (r *Registry) DefaultTenant() string { return r.cfg.DefaultTenant }

// Limiter exposes the shared retrain limiter (nil when unlimited).
func (r *Registry) Limiter() *stream.RetrainLimiter { return r.limiter }
