package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	cases := []struct {
		x, want float64
	}{
		{0, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if got := e.At(5); got != 0 {
		t.Errorf("empty ECDF At = %g", got)
	}
	if e.Len() != 0 {
		t.Errorf("empty ECDF Len = %d", e.Len())
	}
}

func TestECDFTies(t *testing.T) {
	e := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("At(2) with ties = %g, want 0.75", got)
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	xs := []float64{9, 1, 5}
	NewECDF(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestECDFMonotoneQuick(t *testing.T) {
	r := NewRNG(55)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 1000
	}
	e := NewECDF(xs)
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return e.At(x) <= e.At(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{10, 30, 20})
	xs, ps := e.Points()
	wantX := []float64{10, 20, 30}
	wantP := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range wantX {
		if xs[i] != wantX[i] || !almostEqual(ps[i], wantP[i], 1e-12) {
			t.Errorf("Points[%d] = (%g,%g), want (%g,%g)", i, xs[i], ps[i], wantX[i], wantP[i])
		}
	}
}

func TestKolmogorovSmirnovSelf(t *testing.T) {
	// KS of a large sample against its own generating distribution is small.
	d := Weibull{Scale: 100, Shape: 0.8}
	xs := sample(d, 20000, 9)
	sort.Float64s(xs)
	if ks := KolmogorovSmirnov(xs, d); ks > 0.02 {
		t.Errorf("self KS = %g, want < 0.02", ks)
	}
	// Against a very different distribution it should be large.
	other := Exponential{Scale: 1e6}
	if ks := KolmogorovSmirnov(xs, other); ks < 0.5 {
		t.Errorf("cross KS = %g, want > 0.5", ks)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if ks := KolmogorovSmirnov(nil, Exponential{Scale: 1}); ks != 0 {
		t.Errorf("empty KS = %g", ks)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2), 1e-12) {
		t.Errorf("Std = %g, want sqrt(2)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 11 {
		t.Errorf("histogram total = %d, want 11", total)
	}
	// Max value lands in the last bin.
	if h.Counts[4] < 2 {
		t.Errorf("last bin = %d, expected to include max", h.Counts[4])
	}
	if c := h.BinCenter(0); !almostEqual(c, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %g, want 1", c)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram total = %d", total)
	}
	h2 := NewHistogram(nil, 0)
	if len(h2.Counts) != 1 {
		t.Errorf("empty histogram bins = %d, want 1", len(h2.Counts))
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
}
