package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from the sample (a private sorted copy is
// taken; the input is not modified).
func NewECDF(xs []float64) ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return ECDF{sorted: s}
}

// Len returns the number of sample points.
func (e ECDF) Len() int { return len(e.sorted) }

// At returns the empirical probability P(X <= x).
func (e ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index >= x; advance over ties so the
	// CDF is right-continuous (counts values equal to x).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Points returns the step points (x_i, i/n) of the ECDF, useful for
// plotting figure-5-style CDF curves.
func (e ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	xs = append([]float64(nil), e.sorted...)
	ps = make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// KolmogorovSmirnov returns the KS statistic D = sup |F_n(x) - F(x)| between
// a sorted sample and a model distribution. The input must be sorted
// ascending (FitBest sorts for you).
func KolmogorovSmirnov(sorted []float64, d Distribution) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	maxD := 0.0
	for i, x := range sorted {
		f := d.CDF(x)
		lo := math.Abs(f - float64(i)/float64(n))
		hi := math.Abs(float64(i+1)/float64(n) - f)
		if lo > maxD {
			maxD = lo
		}
		if hi > maxD {
			maxD = hi
		}
	}
	return maxD
}
