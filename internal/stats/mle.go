package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned by the fitting routines when too few
// positive observations are available to estimate parameters.
var ErrInsufficientData = errors.New("stats: insufficient data for fitting")

// LogLikelihood sums LogPDF over the sample.
func LogLikelihood(d Distribution, xs []float64) float64 {
	ll := 0.0
	for _, x := range xs {
		ll += d.LogPDF(x)
	}
	return ll
}

// positives copies the strictly positive entries of xs.
func positives(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

// FitExponential fits an exponential distribution by MLE (the sample mean).
func FitExponential(xs []float64) (Exponential, error) {
	ps := positives(xs)
	if len(ps) < 2 {
		return Exponential{}, ErrInsufficientData
	}
	sum := 0.0
	for _, x := range ps {
		sum += x
	}
	return NewExponential(sum / float64(len(ps)))
}

// FitLogNormal fits a log-normal distribution by MLE (mean and standard
// deviation of the log sample).
func FitLogNormal(xs []float64) (LogNormal, error) {
	ps := positives(xs)
	if len(ps) < 2 {
		return LogNormal{}, ErrInsufficientData
	}
	var sum, sumSq float64
	for _, x := range ps {
		lx := math.Log(x)
		sum += lx
		sumSq += lx * lx
	}
	n := float64(len(ps))
	mu := sum / n
	variance := sumSq/n - mu*mu
	if variance <= 0 {
		variance = 1e-12
	}
	return NewLogNormal(mu, math.Sqrt(variance))
}

// FitWeibull fits a two-parameter Weibull distribution by maximum
// likelihood. The shape parameter solves the standard MLE fixed-point
// equation, found here with a safeguarded Newton iteration; the scale then
// follows in closed form. This reproduces the paper's fit procedure (e.g.
// the SDSC training set yields scale≈19984.8, shape≈0.508).
func FitWeibull(xs []float64) (Weibull, error) {
	ps := positives(xs)
	if len(ps) < 2 {
		return Weibull{}, ErrInsufficientData
	}
	logs := make([]float64, len(ps))
	meanLog := 0.0
	for i, x := range ps {
		logs[i] = math.Log(x)
		meanLog += logs[i]
	}
	meanLog /= float64(len(ps))

	// g(k) = sum(x^k log x)/sum(x^k) - 1/k - meanLog = 0
	g := func(k float64) (val, deriv float64) {
		var s0, s1, s2 float64
		// Normalize by max to avoid overflow for large k.
		maxLog := logs[0]
		for _, lx := range logs {
			if lx > maxLog {
				maxLog = lx
			}
		}
		for i, x := range ps {
			_ = x
			w := math.Exp(k * (logs[i] - maxLog)) // x^k scaled
			s0 += w
			s1 += w * logs[i]
			s2 += w * logs[i] * logs[i]
		}
		r1 := s1 / s0
		r2 := s2 / s0
		val = r1 - 1/k - meanLog
		deriv = (r2 - r1*r1) + 1/(k*k)
		return val, deriv
	}

	// Initial guess from the method of moments on log data:
	// Var(log X) = pi^2 / (6 k^2) for Weibull.
	varLog := 0.0
	for _, lx := range logs {
		d := lx - meanLog
		varLog += d * d
	}
	varLog /= float64(len(logs))
	k := 1.0
	if varLog > 1e-12 {
		k = math.Pi / math.Sqrt(6*varLog)
	}
	if k <= 0 || math.IsNaN(k) {
		k = 1
	}

	const (
		tol     = 1e-10
		maxIter = 100
	)
	converged := false
	for i := 0; i < maxIter; i++ {
		val, deriv := g(k)
		if math.Abs(val) < tol {
			converged = true
			break
		}
		step := val / deriv
		next := k - step
		// Safeguard: keep the shape positive and damp huge steps.
		for next <= 0 || math.Abs(next-k) > 10*k {
			step /= 2
			next = k - step
			if math.Abs(step) < 1e-15 {
				break
			}
		}
		if math.Abs(next-k) < tol*k {
			k = next
			converged = true
			break
		}
		k = next
	}
	if !converged {
		// Fall back to a bisection sweep over a broad bracket.
		lo, hi := 1e-3, 1e3
		flo, _ := g(lo)
		fhi, _ := g(hi)
		if flo*fhi > 0 {
			return Weibull{}, fmt.Errorf("stats: Weibull MLE failed to converge (k=%g)", k)
		}
		for i := 0; i < 200; i++ {
			mid := math.Sqrt(lo * hi)
			fm, _ := g(mid)
			if flo*fm <= 0 {
				hi = mid
			} else {
				lo, flo = mid, fm
			}
		}
		k = math.Sqrt(lo * hi)
	}

	// Closed-form scale given shape.
	sum := 0.0
	for _, x := range ps {
		sum += math.Pow(x, k)
	}
	scale := math.Pow(sum/float64(len(ps)), 1/k)
	return NewWeibull(scale, k)
}

// FitResult reports one candidate distribution fit.
type FitResult struct {
	Dist   Distribution
	LogLik float64 // log-likelihood on the sample
	KS     float64 // Kolmogorov–Smirnov statistic against the sample
	Err    error   // non-nil if the family could not be fitted
}

// FitBest fits Weibull, exponential and log-normal distributions to the
// sample and returns all candidate results plus the index of the best one
// (highest log-likelihood among the successful fits). This is the "examine
// Weibull, exponential and log-normal ... for generating the CDF of fatal
// events" step of the paper's probability-distribution base learner.
func FitBest(xs []float64) (best int, results []FitResult, err error) {
	ps := positives(xs)
	if len(ps) < 2 {
		return -1, nil, ErrInsufficientData
	}
	results = make([]FitResult, 0, 3)
	if w, e := FitWeibull(ps); e == nil {
		results = append(results, FitResult{Dist: w})
	} else {
		results = append(results, FitResult{Err: e})
	}
	if ex, e := FitExponential(ps); e == nil {
		results = append(results, FitResult{Dist: ex})
	} else {
		results = append(results, FitResult{Err: e})
	}
	if ln, e := FitLogNormal(ps); e == nil {
		results = append(results, FitResult{Dist: ln})
	} else {
		results = append(results, FitResult{Err: e})
	}
	sorted := append([]float64(nil), ps...)
	sort.Float64s(sorted)
	best = -1
	bestLL := math.Inf(-1)
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		results[i].LogLik = LogLikelihood(results[i].Dist, ps)
		results[i].KS = KolmogorovSmirnov(sorted, results[i].Dist)
		if results[i].LogLik > bestLL {
			bestLL = results[i].LogLik
			best = i
		}
	}
	if best < 0 {
		return -1, results, errors.New("stats: no distribution family could be fitted")
	}
	return best, results, nil
}
