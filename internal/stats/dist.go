package stats

import (
	"fmt"
	"math"
)

// Distribution is a continuous positive-support probability distribution
// used to model failure inter-arrival times.
type Distribution interface {
	// CDF returns P(X <= x). For x <= 0 it returns 0.
	CDF(x float64) float64
	// LogPDF returns the natural log of the density at x.
	// For x <= 0 it returns math.Inf(-1).
	LogPDF(x float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one variate using the supplied generator.
	Sample(r *RNG) float64
	// Name returns the distribution family name ("weibull", ...).
	Name() string
	// String formats the distribution with its parameters.
	String() string
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

// Weibull is a two-parameter Weibull distribution with scale lambda and
// shape k. Shape < 1 models clustered ("bursty") failures — exactly what the
// paper fits to the SDSC log: F(t) = 1 - exp(-(t/19984.8)^0.507936).
type Weibull struct {
	Scale float64 // lambda > 0
	Shape float64 // k > 0
}

// NewWeibull constructs a Weibull distribution, validating parameters.
func NewWeibull(scale, shape float64) (Weibull, error) {
	if !(scale > 0) || !(shape > 0) {
		return Weibull{}, fmt.Errorf("stats: invalid Weibull parameters scale=%g shape=%g", scale, shape)
	}
	return Weibull{Scale: scale, Shape: shape}, nil
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// LogPDF implements Distribution.
func (w Weibull) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	z := x / w.Scale
	return math.Log(w.Shape/w.Scale) + (w.Shape-1)*math.Log(z) - math.Pow(z, w.Shape)
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// Sample implements Distribution.
func (w Weibull) Sample(r *RNG) float64 {
	return w.Quantile(1 - math.Max(r.Float64(), 1e-300))
}

// Name implements Distribution.
func (w Weibull) Name() string { return "weibull" }

func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(scale=%.4g, shape=%.4g)", w.Scale, w.Shape)
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

// Exponential is the exponential distribution with rate 1/Mean (a Weibull
// with shape 1); the memoryless baseline the paper compares fits against.
type Exponential struct {
	Scale float64 // mean > 0
}

// NewExponential constructs an exponential distribution, validating its mean.
func NewExponential(scale float64) (Exponential, error) {
	if !(scale > 0) {
		return Exponential{}, fmt.Errorf("stats: invalid Exponential scale=%g", scale)
	}
	return Exponential{Scale: scale}, nil
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.Scale)
}

// LogPDF implements Distribution.
func (e Exponential) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return -math.Log(e.Scale) - x/e.Scale
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.Scale }

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	return -e.Scale * math.Log(1-p)
}

// Sample implements Distribution.
func (e Exponential) Sample(r *RNG) float64 {
	return e.Scale * r.ExpFloat64()
}

// Name implements Distribution.
func (e Exponential) Name() string { return "exponential" }

func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(scale=%.4g)", e.Scale)
}

// ---------------------------------------------------------------------------
// Log-normal
// ---------------------------------------------------------------------------

// LogNormal is the log-normal distribution: log X ~ N(Mu, Sigma^2).
type LogNormal struct {
	Mu    float64
	Sigma float64 // > 0
}

// NewLogNormal constructs a log-normal distribution, validating sigma.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("stats: invalid LogNormal sigma=%g", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// LogPDF implements Distribution.
func (l LogNormal) LogPDF(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	z := (lx - l.Mu) / l.Sigma
	return -lx - math.Log(l.Sigma) - 0.5*math.Log(2*math.Pi) - 0.5*z*z
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + 0.5*l.Sigma*l.Sigma)
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*normQuantile(p))
}

// Sample implements Distribution.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Name implements Distribution.
func (l LogNormal) Name() string { return "lognormal" }

func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.4g, sigma=%.4g)", l.Mu, l.Sigma)
}

// normQuantile returns the standard normal quantile using the
// Beasley–Springer–Moro rational approximation (max abs error ~3e-9),
// accurate enough for sampling and quantile reporting.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
