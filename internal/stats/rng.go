// Package stats provides the numerical substrate for the failure-prediction
// framework: a deterministic random-number generator, the probability
// distributions used to model failure inter-arrival times (Weibull,
// exponential, log-normal), maximum-likelihood fitting, goodness-of-fit
// statistics, empirical CDFs, and small summary-statistics helpers.
//
// Everything in this package is deterministic given a seed, which is what
// makes every experiment in the repository reproducible run-to-run.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based
// on the splitmix64 / xoshiro256** family. It is not safe for concurrent
// use; create one RNG per goroutine (Split derives independent streams).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64,
// so that nearby seeds still yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// The parent stream advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the normal approximation, which is more than adequate for workload
// generation.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Choose returns a uniformly random index in [0, len(weights)) with
// probability proportional to weights[i]. Zero-total weights fall back to a
// uniform choice. It panics on an empty slice.
func (r *RNG) Choose(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Choose with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
