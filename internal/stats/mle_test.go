package stats

import (
	"errors"
	"math"
	"testing"
)

func sample(d Distribution, n int, seed uint64) []float64 {
	r := NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func TestFitExponentialRecovers(t *testing.T) {
	truth := Exponential{Scale: 7200}
	xs := sample(truth, 20000, 1)
	got, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Scale-truth.Scale) > 0.03*truth.Scale {
		t.Errorf("fitted scale %g, want ~%g", got.Scale, truth.Scale)
	}
}

func TestFitLogNormalRecovers(t *testing.T) {
	truth := LogNormal{Mu: 8.2, Sigma: 1.1}
	xs := sample(truth, 20000, 2)
	got, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-truth.Mu) > 0.05 {
		t.Errorf("fitted mu %g, want ~%g", got.Mu, truth.Mu)
	}
	if math.Abs(got.Sigma-truth.Sigma) > 0.05 {
		t.Errorf("fitted sigma %g, want ~%g", got.Sigma, truth.Sigma)
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	cases := []Weibull{
		{Scale: 19984.8, Shape: 0.507936}, // the paper's SDSC fit
		{Scale: 3600, Shape: 1.0},
		{Scale: 500, Shape: 2.3},
		{Scale: 1e6, Shape: 0.3},
	}
	for _, truth := range cases {
		xs := sample(truth, 30000, 3)
		got, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("%v: %v", truth, err)
		}
		if math.Abs(got.Shape-truth.Shape) > 0.05*truth.Shape {
			t.Errorf("truth %v: fitted shape %g", truth, got.Shape)
		}
		if math.Abs(got.Scale-truth.Scale) > 0.08*truth.Scale {
			t.Errorf("truth %v: fitted scale %g", truth, got.Scale)
		}
	}
}

func TestFitWeibullMLEIsLikelihoodMaximum(t *testing.T) {
	truth := Weibull{Scale: 10000, Shape: 0.6}
	xs := sample(truth, 5000, 4)
	fit, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	llFit := LogLikelihood(fit, xs)
	// Perturbing either parameter must not improve the likelihood.
	for _, mult := range []float64{0.9, 0.95, 1.05, 1.1} {
		p1 := Weibull{Scale: fit.Scale * mult, Shape: fit.Shape}
		p2 := Weibull{Scale: fit.Scale, Shape: fit.Shape * mult}
		if ll := LogLikelihood(p1, xs); ll > llFit+1e-6 {
			t.Errorf("scale*%.2f improves LL: %g > %g", mult, ll, llFit)
		}
		if ll := LogLikelihood(p2, xs); ll > llFit+1e-6 {
			t.Errorf("shape*%.2f improves LL: %g > %g", mult, ll, llFit)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	for _, xs := range [][]float64{nil, {}, {5}, {-1, -2, 0}} {
		if _, err := FitWeibull(xs); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("FitWeibull(%v) err = %v, want ErrInsufficientData", xs, err)
		}
		if _, err := FitExponential(xs); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("FitExponential(%v) err = %v", xs, err)
		}
		if _, err := FitLogNormal(xs); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("FitLogNormal(%v) err = %v", xs, err)
		}
	}
}

func TestFitIgnoresNonPositive(t *testing.T) {
	truth := Exponential{Scale: 100}
	xs := sample(truth, 5000, 5)
	polluted := append([]float64{0, -5, math.NaN(), math.Inf(1)}, xs...)
	clean, err1 := FitExponential(xs)
	dirty, err2 := FitExponential(polluted)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if clean.Scale != dirty.Scale {
		t.Errorf("non-positive values changed the fit: %g vs %g", clean.Scale, dirty.Scale)
	}
}

func TestFitBestPrefersTrueFamily(t *testing.T) {
	// A strongly clustered Weibull sample should be best fitted by Weibull,
	// not the memoryless exponential.
	truth := Weibull{Scale: 19984.8, Shape: 0.5}
	xs := sample(truth, 20000, 6)
	best, results, err := FitBest(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	name := results[best].Dist.Name()
	if name == "exponential" {
		t.Errorf("FitBest chose exponential for shape-0.5 Weibull data")
	}
	// Weibull must beat exponential in likelihood on this data.
	var llW, llE float64
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		switch res.Dist.Name() {
		case "weibull":
			llW = res.LogLik
		case "exponential":
			llE = res.LogLik
		}
	}
	if llW <= llE {
		t.Errorf("Weibull LL %g should exceed exponential LL %g", llW, llE)
	}
}

func TestFitBestKSComputed(t *testing.T) {
	truth := Exponential{Scale: 50}
	xs := sample(truth, 5000, 7)
	best, results, err := FitBest(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		if res.KS <= 0 || res.KS >= 1 {
			t.Errorf("%s KS = %g out of (0,1)", res.Dist.Name(), res.KS)
		}
	}
	// The true family should have a small KS distance.
	if results[best].KS > 0.05 {
		t.Errorf("best-fit KS = %g, want < 0.05", results[best].KS)
	}
}

func TestFitBestInsufficient(t *testing.T) {
	if _, _, err := FitBest([]float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestLogLikelihoodAdds(t *testing.T) {
	d := Exponential{Scale: 1}
	xs := []float64{1, 2}
	want := d.LogPDF(1) + d.LogPDF(2)
	if got := LogLikelihood(d, xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("LogLikelihood = %g, want %g", got, want)
	}
}

func TestFitWeibullNearConstantData(t *testing.T) {
	// Nearly constant data implies a huge shape; the fit must not hang or
	// return an invalid parameterization.
	xs := make([]float64, 500)
	r := NewRNG(8)
	for i := range xs {
		xs[i] = 100 + 0.001*r.Float64()
	}
	w, err := FitWeibull(xs)
	if err != nil {
		t.Skipf("extreme-shape fit unsupported: %v", err)
	}
	if !(w.Shape > 100) {
		t.Errorf("near-constant data fitted shape %g, want very large", w.Shape)
	}
	if math.IsNaN(w.Scale) || w.Scale <= 0 {
		t.Errorf("invalid scale %g", w.Scale)
	}
}
