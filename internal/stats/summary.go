package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s
}

// Quantile returns the p-quantile of a sorted sample by linear
// interpolation. It panics on an empty sample.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram bins a sample into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with nbins bins spanning the sample range
// (or [0,1] for an empty/degenerate sample). Values exactly at Max fall into
// the last bin.
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	h := Histogram{Counts: make([]int, nbins)}
	if len(xs) == 0 {
		h.Max = 1
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if h.Max == h.Min {
		h.Max = h.Min + 1
	}
	width := (h.Max - h.Min) / float64(nbins)
	for _, x := range xs {
		i := int((x - h.Min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}
