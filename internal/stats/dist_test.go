package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWeibullCDFKnownValues(t *testing.T) {
	// The paper's SDSC fit: F(t) = 1 - exp(-(t/19984.8)^0.507936).
	// The paper states F(20000) ≈ 0.63.
	w, err := NewWeibull(19984.8, 0.507936)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CDF(20000); !almostEqual(got, 0.63, 0.01) {
		t.Errorf("paper Weibull CDF(20000) = %g, want ~0.63", got)
	}
	if got := w.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %g, want 0", got)
	}
	if got := w.CDF(-5); got != 0 {
		t.Errorf("CDF(-5) = %g, want 0", got)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w, _ := NewWeibull(100, 1)
	e, _ := NewExponential(100)
	for _, x := range []float64{1, 10, 50, 100, 500, 1000} {
		if !almostEqual(w.CDF(x), e.CDF(x), 1e-12) {
			t.Errorf("Weibull(100,1).CDF(%g)=%g != Exponential(100).CDF=%g",
				x, w.CDF(x), e.CDF(x))
		}
		if !almostEqual(w.LogPDF(x), e.LogPDF(x), 1e-9) {
			t.Errorf("LogPDF mismatch at %g", x)
		}
	}
}

func TestDistributionInvariants(t *testing.T) {
	dists := []Distribution{
		Weibull{Scale: 19984.8, Shape: 0.508},
		Weibull{Scale: 100, Shape: 2.5},
		Exponential{Scale: 3600},
		LogNormal{Mu: 8, Sigma: 1.5},
	}
	for _, d := range dists {
		t.Run(d.String(), func(t *testing.T) {
			// CDF monotone nondecreasing, in [0,1].
			prev := 0.0
			for x := 0.0; x < 1e6; x += 9173 {
				c := d.CDF(x)
				if c < 0 || c > 1 {
					t.Fatalf("CDF(%g)=%g out of range", x, c)
				}
				if c+1e-12 < prev {
					t.Fatalf("CDF not monotone at %g: %g < %g", x, c, prev)
				}
				prev = c
			}
			// Quantile inverts CDF.
			for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
				x := d.Quantile(p)
				if !almostEqual(d.CDF(x), p, 1e-6) {
					t.Errorf("CDF(Quantile(%g)) = %g", p, d.CDF(x))
				}
			}
			// Sample mean converges to Mean().
			r := NewRNG(99)
			const n = 100000
			sum := 0.0
			for i := 0; i < n; i++ {
				v := d.Sample(r)
				if v < 0 {
					t.Fatalf("negative sample %g", v)
				}
				sum += v
			}
			mean := sum / n
			want := d.Mean()
			// Heavy-tailed distributions converge slowly; allow 10%.
			if math.Abs(mean-want) > 0.10*want {
				t.Errorf("sample mean %g, analytic %g", mean, want)
			}
		})
	}
}

func TestQuantileCDFRoundTripQuick(t *testing.T) {
	w := Weibull{Scale: 5000, Shape: 0.7}
	f := func(raw uint32) bool {
		p := (float64(raw%10000) + 0.5) / 10001.0
		x := w.Quantile(p)
		return almostEqual(w.CDF(x), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidParameters(t *testing.T) {
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("NewWeibull(0,1) accepted")
	}
	if _, err := NewWeibull(1, -1); err == nil {
		t.Error("NewWeibull(1,-1) accepted")
	}
	if _, err := NewWeibull(math.NaN(), 1); err == nil {
		t.Error("NewWeibull(NaN,1) accepted")
	}
	if _, err := NewExponential(-3); err == nil {
		t.Error("NewExponential(-3) accepted")
	}
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Error("NewLogNormal(0,0) accepted")
	}
}

func TestLogPDFNegativeSupport(t *testing.T) {
	dists := []Distribution{
		Weibull{Scale: 1, Shape: 1},
		Exponential{Scale: 1},
		LogNormal{Mu: 0, Sigma: 1},
	}
	for _, d := range dists {
		if got := d.LogPDF(-1); !math.IsInf(got, -1) {
			t.Errorf("%s.LogPDF(-1) = %g, want -Inf", d.Name(), got)
		}
		if got := d.LogPDF(0); !math.IsInf(got, -1) {
			t.Errorf("%s.LogPDF(0) = %g, want -Inf", d.Name(), got)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	l := LogNormal{Mu: 3, Sigma: 0.5}
	// Median of lognormal = exp(mu).
	if got := l.Quantile(0.5); !almostEqual(got, math.Exp(3), 1e-6*math.Exp(3)) {
		t.Errorf("lognormal median = %g, want %g", got, math.Exp(3))
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.025, 0.1, 0.3, 0.5} {
		a := normQuantile(p)
		b := normQuantile(1 - p)
		if !almostEqual(a, -b, 1e-7) {
			t.Errorf("normQuantile asymmetric at %g: %g vs %g", p, a, b)
		}
	}
	if got := normQuantile(0.975); !almostEqual(got, 1.959964, 1e-5) {
		t.Errorf("normQuantile(0.975) = %g, want 1.959964", got)
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("normQuantile boundary values wrong")
	}
}

func TestDistributionNames(t *testing.T) {
	if (Weibull{}).Name() != "weibull" {
		t.Error("weibull name")
	}
	if (Exponential{}).Name() != "exponential" {
		t.Error("exponential name")
	}
	if (LogNormal{}).Name() != "lognormal" {
		t.Error("lognormal name")
	}
}
