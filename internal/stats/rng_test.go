package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %g, want ~%g", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential draw %g", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 10, 100} {
		r := NewRNG(23)
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := NewRNG(1)
	if v := r.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	r := NewRNG(31)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Choose(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %g, want ~3", ratio)
	}
}

func TestChooseUniformFallback(t *testing.T) {
	r := NewRNG(37)
	w := []float64{0, 0, 0}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Choose(w)]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Errorf("index %d chosen only %d/30000 times under uniform fallback", i, c)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(41)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(43)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %g", got)
	}
}
