package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/learner"
	"repro/internal/predictor"
	"repro/internal/raslog"
)

func warn(tSec, deadlineSec int64, src learner.Kind) predictor.Warning {
	return predictor.Warning{Time: tSec * 1000, Deadline: deadlineSec * 1000, Source: src}
}

func secs(ts ...int64) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t * 1000
	}
	return out
}

func TestMatchBasic(t *testing.T) {
	warnings := []predictor.Warning{
		warn(0, 300, learner.Association),     // covers fatal at 100: TP
		warn(1000, 1300, learner.Statistical), // no fatal: FP
	}
	fatals := secs(100, 5000)
	o := Match(warnings, fatals)
	if o.TP != 1 || o.FP != 1 || o.Captured != 1 || o.FN != 1 || o.Fatals != 2 {
		t.Errorf("outcome = %+v", o)
	}
	if o.Precision() != 0.5 || o.Recall() != 0.5 {
		t.Errorf("precision/recall = %g/%g", o.Precision(), o.Recall())
	}
}

func TestMatchExcludesTriggeringInstant(t *testing.T) {
	// A warning triggered AT a fatal's timestamp must not count that same
	// fatal as its prediction.
	warnings := []predictor.Warning{warn(100, 400, learner.Statistical)}
	o := Match(warnings, secs(100))
	if o.TP != 0 || o.FP != 1 {
		t.Errorf("warning matched its own trigger: %+v", o)
	}
}

func TestMatchDeadlineInclusive(t *testing.T) {
	warnings := []predictor.Warning{warn(0, 300, learner.Association)}
	o := Match(warnings, secs(300))
	if o.TP != 1 {
		t.Errorf("fatal at the deadline missed: %+v", o)
	}
	o = Match(warnings, secs(301))
	if o.TP != 0 {
		t.Errorf("fatal after the deadline counted: %+v", o)
	}
}

func TestMatchMultipleWarningsOneFatal(t *testing.T) {
	warnings := []predictor.Warning{
		warn(0, 300, learner.Association),
		warn(50, 350, learner.Distribution),
	}
	o := Match(warnings, secs(200))
	if o.TP != 2 {
		t.Errorf("TP = %d, want 2 (both windows hit)", o.TP)
	}
	if o.Captured != 1 || o.FN != 0 {
		t.Errorf("captured/FN = %d/%d", o.Captured, o.FN)
	}
}

func TestMatchOneWarningManyFatals(t *testing.T) {
	warnings := []predictor.Warning{warn(0, 300, learner.Statistical)}
	o := Match(warnings, secs(100, 150, 200))
	if o.TP != 1 || o.Captured != 3 || o.FN != 0 {
		t.Errorf("outcome = %+v", o)
	}
	if o.Recall() != 1 {
		t.Errorf("recall = %g", o.Recall())
	}
}

func TestMatchEmpty(t *testing.T) {
	o := Match(nil, nil)
	if o.Precision() != 0 || o.Recall() != 0 {
		t.Errorf("empty match = %+v", o)
	}
	o = Match(nil, secs(1, 2))
	if o.FN != 2 || o.Recall() != 0 {
		t.Errorf("no-warnings match = %+v", o)
	}
}

func TestOutcomeAddAndString(t *testing.T) {
	a := Outcome{TP: 1, FP: 2, FN: 3, Captured: 1, Fatals: 4}
	b := Outcome{TP: 2, FP: 1, FN: 0, Captured: 2, Fatals: 2}
	a.Add(b)
	if a.TP != 3 || a.FP != 3 || a.FN != 3 || a.Captured != 3 || a.Fatals != 6 {
		t.Errorf("Add = %+v", a)
	}
	if !strings.Contains(a.String(), "precision=") {
		t.Errorf("String = %q", a.String())
	}
}

func TestWeeklyBuckets(t *testing.T) {
	week := int64(raslog.MillisPerWeek / 1000) // seconds per week
	warnings := []predictor.Warning{
		warn(100, 400, learner.Association),           // week 0, TP
		warn(week+100, week+400, learner.Association), // week 1, FP
	}
	fatals := secs(200, week+5000)
	series := Weekly(warnings, fatals, 0, 3)
	if len(series) != 2 {
		t.Fatalf("series length = %d: %+v", len(series), series)
	}
	w0, w1 := series[0], series[1]
	if w0.Week != 0 || w0.TP != 1 || w0.Fatals != 1 || w0.Recall() != 1 {
		t.Errorf("week 0 = %+v", w0)
	}
	if w1.Week != 1 || w1.TP != 0 || w1.FP != 1 || w1.Recall() != 0 {
		t.Errorf("week 1 = %+v", w1)
	}
}

func TestWeeklyCrossBoundaryWarning(t *testing.T) {
	week := int64(raslog.MillisPerWeek / 1000)
	// Warning at the very end of week 0 catching a fatal early in week 1.
	warnings := []predictor.Warning{warn(week-100, week+200, learner.Association)}
	fatals := secs(week + 50)
	series := Weekly(warnings, fatals, 0, 2)
	var sawTP bool
	for _, wp := range series {
		if wp.TP > 0 {
			sawTP = true
		}
	}
	if !sawTP {
		t.Error("cross-boundary warning scored as FP")
	}
}

func TestMeanPrecisionRecall(t *testing.T) {
	series := []WeekPoint{
		{Week: 0, Outcome: Outcome{TP: 1, FP: 0, Captured: 1, Fatals: 1}},
		{Week: 1, Outcome: Outcome{TP: 0, FP: 1, Captured: 0, Fatals: 1, FN: 1}},
	}
	p, r := MeanPrecisionRecall(series)
	if math.Abs(p-0.5) > 1e-9 || math.Abs(r-0.5) > 1e-9 {
		t.Errorf("mean p/r = %g/%g", p, r)
	}
	p, r = MeanPrecisionRecall(nil)
	if p != 0 || r != 0 {
		t.Error("empty series mean not zero")
	}
}

func TestCoverageSetsAndVenn(t *testing.T) {
	fatals := secs(100, 1100, 2100, 9000)
	warnings := []predictor.Warning{
		warn(0, 300, learner.Association),      // covers fatal 0
		warn(1000, 1300, learner.Statistical),  // covers fatal 1
		warn(2000, 2300, learner.Distribution), // covers fatal 2
		warn(50, 350, learner.Statistical),     // also covers fatal 0
	}
	sets := CoverageSets(warnings, fatals)
	if !sets[learner.Association][0] || !sets[learner.Statistical][0] {
		t.Errorf("fatal 0 coverage wrong: %v", sets)
	}
	v := MakeVenn(sets, len(fatals))
	if v.Total != 4 || v.Uncaptured != 1 {
		t.Errorf("venn = %+v", v)
	}
	if v.AS != 1 { // fatal 0: association + statistical only
		t.Errorf("AS = %d, want 1", v.AS)
	}
	if v.OnlyS != 1 || v.OnlyP != 1 || v.OnlyA != 0 {
		t.Errorf("singles = %d/%d/%d", v.OnlyA, v.OnlyS, v.OnlyP)
	}
	if v.CoverA != 1 || v.CoverS != 2 || v.CoverP != 1 {
		t.Errorf("covers = %d/%d/%d", v.CoverA, v.CoverS, v.CoverP)
	}
	// Region counts partition the total.
	sum := v.OnlyA + v.OnlyS + v.OnlyP + v.AS + v.AP + v.SP + v.ASP + v.Uncaptured
	if sum != v.Total {
		t.Errorf("regions sum to %d, total %d", sum, v.Total)
	}
}

func TestLeadTimes(t *testing.T) {
	warnings := []predictor.Warning{
		warn(0, 300, learner.Association),      // covers fatals at 100 and 250
		warn(1000, 1300, learner.Statistical),  // covers fatal at 1250
		warn(5000, 5300, learner.Distribution), // covers nothing
	}
	fatals := secs(100, 250, 1250, 9000)
	st := LeadTimes(warnings, fatals)
	if st.Captured != 3 {
		t.Fatalf("captured = %d, want 3", st.Captured)
	}
	// Leads: 100, 250, 250 seconds.
	if st.MinSec != 100 || st.MaxSec != 250 || st.MedianSec != 250 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanSec < 199 || st.MeanSec > 201 {
		t.Errorf("mean = %g, want 200", st.MeanSec)
	}
	if z := LeadTimes(nil, fatals); z.Captured != 0 {
		t.Errorf("no warnings: %+v", z)
	}
}

func TestLeadTimesEarliestWarningWins(t *testing.T) {
	warnings := []predictor.Warning{
		warn(0, 300, learner.Association),
		warn(100, 400, learner.Distribution),
	}
	st := LeadTimes(warnings, secs(200))
	if st.Captured != 1 || st.MeanSec != 200 {
		t.Errorf("earliest cover not used: %+v", st)
	}
}
