// Package eval scores failure predictions against the failures that
// actually occurred, producing the paper's two accuracy metrics (§5.1):
//
//	precision = Tp / (Tp + Fp)    recall = Tp / (Tp + Fn)
//
// A warning is a true positive when at least one fatal event falls inside
// its prediction window (strictly after the triggering instant — a rule
// must predict a *coming* failure, not the one that triggered it). A fatal
// event counts as captured (not a false negative) when at least one
// warning's window covers it. The package also provides the weekly time
// series used by Figures 7 and 9–11 and the base-learner coverage sets of
// the Figure 8 Venn diagram.
package eval

import (
	"fmt"
	"sort"

	"repro/internal/learner"
	"repro/internal/predictor"
)

// Outcome tallies prediction results over a stream.
type Outcome struct {
	TP int // warnings whose window contained a failure
	FP int // warnings whose window did not
	FN int // failures no warning covered
	// Captured is the number of distinct failures covered by a warning
	// (TP counts warnings; Captured counts failures).
	Captured int
	Fatals   int
}

// Precision returns Tp/(Tp+Fp), or 0 when no warnings were issued.
func (o Outcome) Precision() float64 {
	if o.TP+o.FP == 0 {
		return 0
	}
	return float64(o.TP) / float64(o.TP+o.FP)
}

// Recall returns Captured/Fatals — the proportion of failures predicted —
// or 0 when there were no failures.
func (o Outcome) Recall() float64 {
	if o.Fatals == 0 {
		return 0
	}
	return float64(o.Captured) / float64(o.Fatals)
}

// Add accumulates another outcome.
func (o *Outcome) Add(other Outcome) {
	o.TP += other.TP
	o.FP += other.FP
	o.FN += other.FN
	o.Captured += other.Captured
	o.Fatals += other.Fatals
}

// String formats the outcome for reports.
func (o Outcome) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f (TP=%d FP=%d FN=%d fatals=%d)",
		o.Precision(), o.Recall(), o.TP, o.FP, o.FN, o.Fatals)
}

// Match scores warnings against fatal timestamps (ms). Both slices must be
// time-sorted. A fatal at time t is covered by a warning w when
// w.Time < t <= w.Deadline.
func Match(warnings []predictor.Warning, fatalTimes []int64) Outcome {
	out := Outcome{Fatals: len(fatalTimes)}
	covered := make([]bool, len(fatalTimes))
	for _, w := range warnings {
		// Find fatals in (w.Time, w.Deadline].
		lo := sort.Search(len(fatalTimes), func(i int) bool { return fatalTimes[i] > w.Time })
		hit := false
		for i := lo; i < len(fatalTimes) && fatalTimes[i] <= w.Deadline; i++ {
			covered[i] = true
			hit = true
		}
		if hit {
			out.TP++
		} else {
			out.FP++
		}
	}
	for _, c := range covered {
		if c {
			out.Captured++
		}
	}
	out.FN = out.Fatals - out.Captured
	return out
}

// WeekPoint is one week of a precision/recall time series.
type WeekPoint struct {
	Week int // zero-based week index
	Outcome
}

// Weekly buckets warnings and fatals into week-sized bins relative to
// start (ms) and scores each bin separately, producing the x-axis of the
// paper's accuracy figures. Weeks with no fatal events and no warnings
// are omitted.
func Weekly(warnings []predictor.Warning, fatalTimes []int64, start int64, weeks int) []WeekPoint {
	const weekMs = 7 * 24 * 3600 * 1000
	warnByWeek := make([][]predictor.Warning, weeks)
	for _, w := range warnings {
		idx := int((w.Time - start) / weekMs)
		if idx >= 0 && idx < weeks {
			warnByWeek[idx] = append(warnByWeek[idx], w)
		}
	}
	fatalByWeek := make([][]int64, weeks)
	for _, t := range fatalTimes {
		idx := int((t - start) / weekMs)
		if idx >= 0 && idx < weeks {
			fatalByWeek[idx] = append(fatalByWeek[idx], t)
		}
	}
	var out []WeekPoint
	for wk := 0; wk < weeks; wk++ {
		if len(warnByWeek[wk]) == 0 && len(fatalByWeek[wk]) == 0 {
			continue
		}
		// Score a week's warnings against all fatals near it so windows
		// spanning a week boundary still count.
		lo := start + int64(wk)*weekMs
		hi := lo + weekMs + 2*3600*1000
		var near []int64
		for _, t := range fatalTimes {
			if t >= lo && t <= hi {
				near = append(near, t)
			}
		}
		o := Match(warnByWeek[wk], near)
		// Recount fatals/captures for the week proper.
		o.Fatals = len(fatalByWeek[wk])
		if o.Captured > o.Fatals {
			o.Captured = o.Fatals
		}
		o.FN = o.Fatals - o.Captured
		out = append(out, WeekPoint{Week: wk, Outcome: o})
	}
	return out
}

// MeanPrecisionRecall averages a weekly series (weeks with no warnings
// count precision 0 only if they had fatals to predict).
func MeanPrecisionRecall(series []WeekPoint) (precision, recall float64) {
	if len(series) == 0 {
		return 0, 0
	}
	var p, r float64
	for _, wp := range series {
		p += wp.Precision()
		r += wp.Recall()
	}
	n := float64(len(series))
	return p / n, r / n
}

// CoverageSets returns, per base-learner family, the set of fatal indices
// captured by that family's warnings — the input to the Figure 8 Venn
// diagram. fatalTimes must be sorted.
func CoverageSets(warnings []predictor.Warning, fatalTimes []int64) map[learner.Kind]map[int]bool {
	sets := map[learner.Kind]map[int]bool{
		learner.Association:  {},
		learner.Statistical:  {},
		learner.Distribution: {},
	}
	for _, w := range warnings {
		set := sets[w.Source]
		lo := sort.Search(len(fatalTimes), func(i int) bool { return fatalTimes[i] > w.Time })
		for i := lo; i < len(fatalTimes) && fatalTimes[i] <= w.Deadline; i++ {
			set[i] = true
		}
	}
	return sets
}

// Venn holds the seven-region breakdown of three coverage sets (Figure 8).
type Venn struct {
	Total                  int // fatals in the period
	OnlyA, OnlyS, OnlyP    int
	AS, AP, SP             int // pairwise-only intersections
	ASP                    int // captured by all three
	Uncaptured             int
	CoverA, CoverS, CoverP int // per-learner totals
}

// MakeVenn computes the Venn regions from per-family coverage sets over
// total fatals.
func MakeVenn(sets map[learner.Kind]map[int]bool, total int) Venn {
	v := Venn{Total: total}
	a := sets[learner.Association]
	s := sets[learner.Statistical]
	p := sets[learner.Distribution]
	v.CoverA, v.CoverS, v.CoverP = len(a), len(s), len(p)
	for i := 0; i < total; i++ {
		ina, ins, inp := a[i], s[i], p[i]
		switch {
		case ina && ins && inp:
			v.ASP++
		case ina && ins:
			v.AS++
		case ina && inp:
			v.AP++
		case ins && inp:
			v.SP++
		case ina:
			v.OnlyA++
		case ins:
			v.OnlyS++
		case inp:
			v.OnlyP++
		default:
			v.Uncaptured++
		}
	}
	return v
}

// LeadTimeStats summarizes how far ahead of each captured failure the
// earliest covering warning fired — the quantity proactive fault-tolerance
// actions (checkpointing, migration, job holds) actually consume.
type LeadTimeStats struct {
	Captured int
	// MeanSec / MedianSec / MinSec / MaxSec describe the lead times, in
	// seconds, of captured failures.
	MeanSec, MedianSec, MinSec, MaxSec float64
}

// LeadTimes computes, for every captured fatal, the lead time to the
// earliest warning whose window covers it. Both inputs must be
// time-sorted. Uncaptured fatals are excluded (recall measures those).
func LeadTimes(warnings []predictor.Warning, fatalTimes []int64) LeadTimeStats {
	var leads []float64
	for _, t := range fatalTimes {
		best := int64(-1)
		for _, w := range warnings {
			if w.Time >= t {
				break
			}
			if t <= w.Deadline {
				best = w.Time
				break // warnings sorted: the first cover is the earliest
			}
		}
		if best >= 0 {
			leads = append(leads, float64(t-best)/1000)
		}
	}
	if len(leads) == 0 {
		return LeadTimeStats{}
	}
	sorted := append([]float64(nil), leads...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, l := range leads {
		sum += l
	}
	return LeadTimeStats{
		Captured:  len(leads),
		MeanSec:   sum / float64(len(leads)),
		MedianSec: sorted[len(sorted)/2],
		MinSec:    sorted[0],
		MaxSec:    sorted[len(sorted)-1],
	}
}
