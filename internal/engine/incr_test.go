package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obsv"
)

// TestRunIncrementalEquivalence pins the headline contract of the
// incremental trainer: a run with Config.Incremental produces exactly the
// same warnings, evaluation, and per-pass rule churn as the batch path —
// the sufficient-statistics maintenance is an optimization, never a
// behavior change. It also checks the pass records: the first pass is the
// sole full rebuild, every later pass a delta-apply.
func TestRunIncrementalEquivalence(t *testing.T) {
	events, start := pipeline(t, 109, 20)
	for _, policy := range []Policy{Sliding, Whole} {
		t.Run(policy.String(), func(t *testing.T) {
			base := quickConfig()
			base.Policy = policy
			full, err := Run(events, start, 20, base)
			if err != nil {
				t.Fatal(err)
			}
			icfg := base
			icfg.Incremental = true
			inc, err := Run(events, start, 20, icfg)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(full.Warnings, inc.Warnings) {
				t.Fatalf("warnings diverge: %d batch vs %d incremental",
					len(full.Warnings), len(inc.Warnings))
			}
			if !reflect.DeepEqual(full.Overall, inc.Overall) {
				t.Fatalf("overall outcome diverges: %+v vs %+v", full.Overall, inc.Overall)
			}
			if !reflect.DeepEqual(full.Weekly, inc.Weekly) {
				t.Fatal("weekly series diverge")
			}
			if len(full.Retrainings) != len(inc.Retrainings) {
				t.Fatalf("pass counts differ: %d vs %d",
					len(full.Retrainings), len(inc.Retrainings))
			}
			for i := range full.Retrainings {
				f, n := full.Retrainings[i], inc.Retrainings[i]
				if f.Week != n.Week || f.TrainEvents != n.TrainEvents ||
					f.RepoSize != n.RepoSize || f.WindowSec != n.WindowSec ||
					f.Churn != n.Churn {
					t.Errorf("pass %d records diverge: %+v vs %+v", i, f, n)
				}
				if f.Incr != nil {
					t.Errorf("pass %d: batch run carries IncrInfo", i)
				}
				if n.Incr == nil {
					t.Fatalf("pass %d: incremental run missing IncrInfo", i)
				}
				if i == 0 && !n.Incr.Rebuild {
					t.Error("first pass must be a full rebuild")
				}
				if i > 0 && n.Incr.Rebuild {
					t.Errorf("pass %d fell back to a rebuild: %s", i, n.Incr.Reason)
				}
			}
		})
	}
}

// TestIncrementalMetricsRecorded runs the incremental engine with a
// metrics recorder attached and checks the train_incr_* instruments and
// the per-mode pass histogram against the returned pass records, through
// a strict text-exposition round trip.
func TestIncrementalMetricsRecorded(t *testing.T) {
	events, start := pipeline(t, 110, 20)
	cfg := quickConfig()
	cfg.Incremental = true
	reg := obsv.NewRegistry()
	cfg.Metrics = NewTrainingMetrics(reg)
	res, err := Run(events, start, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obsv.ParseText(&buf)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}

	var applied, expired, rebuilds, deltas float64
	for _, rt := range res.Retrainings {
		if rt.Incr == nil {
			t.Fatal("incremental run missing IncrInfo")
		}
		applied += float64(rt.Incr.Applied)
		expired += float64(rt.Incr.Expired)
		if rt.Incr.Rebuild {
			rebuilds++
		} else {
			deltas++
		}
	}
	passes := float64(len(res.Retrainings))
	if passes < 2 {
		t.Fatalf("too few passes to exercise the delta path: %v", passes)
	}
	if applied == 0 {
		t.Fatal("no events applied — the window never moved")
	}
	for key, want := range map[string]float64{
		"train_incr_applied_events_total":               applied,
		"train_incr_expired_events_total":               expired,
		"train_incr_rebuilds_total":                     rebuilds,
		"train_incr_advance_duration_seconds_count":     passes,
		"train_pass_duration_seconds_count{mode=\"incremental\"}": deltas,
		"train_pass_duration_seconds_count{mode=\"full\"}":        rebuilds,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	// The batch engine must label every pass "full" and never touch the
	// incr counters.
	breg := obsv.NewRegistry()
	bcfg := quickConfig()
	bcfg.Metrics = NewTrainingMetrics(breg)
	bres, err := Run(events, start, 20, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := breg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	bsamples, err := obsv.ParseText(&buf)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	if got := bsamples["train_incr_applied_events_total"]; got != 0 {
		t.Errorf("batch run applied incr events: %v", got)
	}
	key := fmt.Sprintf("train_pass_duration_seconds_count{mode=%q}", "full")
	if got := bsamples[key]; got != float64(len(bres.Retrainings)) {
		t.Errorf("%s = %v, want %v", key, got, len(bres.Retrainings))
	}
}
