package engine

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bgsim"
	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/obsv"
	"repro/internal/preprocess"
)

// pipeline generates a small log and preprocesses it.
func pipeline(t *testing.T, seed uint64, weeks int) ([]preprocess.TaggedEvent, int64) {
	t.Helper()
	cfg := bgsim.ANL(seed).Scaled(weeks, 0.02)
	g, err := bgsim.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(raw)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	return z.Tag(filtered), cfg.Start
}

// quickConfig shrinks the defaults to fit a short log.
func quickConfig() Config {
	cfg := Defaults()
	cfg.InitialTrainWeeks = 8
	cfg.TrainWeeks = 8
	cfg.RetrainWeeks = 4
	return cfg
}

func TestRunDynamicEndToEnd(t *testing.T) {
	events, start := pipeline(t, 101, 20)
	cfg := quickConfig()
	res, err := Run(events, start, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestFrom != 8 {
		t.Errorf("TestFrom = %d", res.TestFrom)
	}
	// Initial training + retrains at weeks 12 and 16.
	if len(res.Retrainings) != 3 {
		t.Errorf("retrainings = %d, want 3", len(res.Retrainings))
	}
	if len(res.FatalTimes) == 0 {
		t.Fatal("no fatals in the test span")
	}
	if len(res.Warnings) == 0 {
		t.Fatal("no warnings at all — the pipeline is dead")
	}
	if res.Overall.Recall() <= 0.05 {
		t.Errorf("recall %.3f implausibly low", res.Overall.Recall())
	}
	if len(res.Weekly) == 0 {
		t.Error("no weekly series")
	}
	for _, wp := range res.Weekly {
		if wp.Week < res.TestFrom {
			t.Errorf("weekly point inside the training span: week %d", wp.Week)
		}
	}
}

func TestRunStaticNeverRetrains(t *testing.T) {
	events, start := pipeline(t, 102, 16)
	cfg := quickConfig()
	cfg.Policy = Static
	res, err := Run(events, start, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retrainings) != 1 {
		t.Errorf("static policy retrained: %d trainings", len(res.Retrainings))
	}
}

func TestRunWholeGrowsTrainingSet(t *testing.T) {
	events, start := pipeline(t, 103, 20)
	cfg := quickConfig()
	cfg.Policy = Whole
	res, err := Run(events, start, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retrainings) < 2 {
		t.Fatalf("too few retrainings: %d", len(res.Retrainings))
	}
	prev := 0
	for _, rt := range res.Retrainings {
		if rt.TrainEvents < prev {
			t.Errorf("whole-history training set shrank: %d -> %d", prev, rt.TrainEvents)
		}
		prev = rt.TrainEvents
	}
}

func TestRunSlidingBoundsTrainingSet(t *testing.T) {
	events, start := pipeline(t, 104, 24)
	cfg := quickConfig()
	cfg.TrainWeeks = 4
	res, err := Run(events, start, 24, cfg)
	if err != nil {
		t.Fatal(err)
	}
	whole := quickConfig()
	whole.Policy = Whole
	resWhole, err := Run(events, start, 24, whole)
	if err != nil {
		t.Fatal(err)
	}
	// The last sliding retraining must use fewer events than whole-history.
	last := res.Retrainings[len(res.Retrainings)-1]
	lastWhole := resWhole.Retrainings[len(resWhole.Retrainings)-1]
	if last.TrainEvents >= lastWhole.TrainEvents {
		t.Errorf("sliding window (%d events) not smaller than whole (%d)",
			last.TrainEvents, lastWhole.TrainEvents)
	}
}

func TestRunKindFilter(t *testing.T) {
	events, start := pipeline(t, 105, 16)
	for _, kind := range []learner.Kind{learner.Association, learner.Statistical, learner.Distribution} {
		cfg := quickConfig()
		k := kind
		cfg.KindFilter = &k
		res, err := Run(events, start, 16, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range res.Warnings {
			if w.Source != kind {
				t.Fatalf("kind filter %v leaked a %v warning", kind, w.Source)
			}
		}
	}
}

func TestRunRecordsChurn(t *testing.T) {
	events, start := pipeline(t, 106, 20)
	res, err := Run(events, start, 20, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := res.Retrainings[0]
	if first.Churn.Added == 0 || first.Churn.Unchanged != 0 {
		t.Errorf("first training churn = %+v", first.Churn)
	}
	if first.RepoSize == 0 {
		t.Error("empty repository after training")
	}
	later := res.Retrainings[len(res.Retrainings)-1]
	if later.Churn.Unchanged == 0 {
		t.Errorf("no rule survived a 4-week retrain: %+v", later.Churn)
	}
	if _, ok := first.LearnerDurations["association"]; !ok {
		t.Error("missing learner timing")
	}
}

func TestRunValidation(t *testing.T) {
	events, start := pipeline(t, 107, 10)
	bad := []func(*Config){
		func(c *Config) { c.Params.WindowSec = 0 },
		func(c *Config) { c.InitialTrainWeeks = 0 },
		func(c *Config) { c.InitialTrainWeeks = 10 }, // consumes whole log
		func(c *Config) { c.TrainWeeks = 0 },
		func(c *Config) { c.RetrainWeeks = 0 },
	}
	for i, mutate := range bad {
		cfg := quickConfig()
		mutate(&cfg)
		if _, err := Run(events, start, 10, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Sliding.String() != "sliding" || Whole.String() != "whole" {
		t.Error("policy names")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name")
	}
}

func TestRunDeterministic(t *testing.T) {
	events, start := pipeline(t, 108, 16)
	a, err := Run(events, start, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(events, start, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Warnings) != len(b.Warnings) {
		t.Fatalf("warning counts differ: %d vs %d", len(a.Warnings), len(b.Warnings))
	}
	for i := range a.Warnings {
		if a.Warnings[i] != b.Warnings[i] {
			t.Fatalf("warning %d differs", i)
		}
	}
}

// TestNewPredictorClampsAlarmSpacing pins the alarm-spacing rule: the
// predictor's warning deduplication stays at the base rule-generation
// window (DefaultWindowSec) even when the effective prediction window is
// wider — sweeping W_P (Figure 13) must admit more alarms, never ration
// them to one per W_P.
func TestNewPredictorClampsAlarmSpacing(t *testing.T) {
	repo := meta.NewRepository()
	cfg := Defaults()
	for _, tc := range []struct{ win, want int64 }{
		{DefaultWindowSec, 0}, // base window: predictor default spacing
		{900, DefaultWindowSec},
		{7200, DefaultWindowSec},
	} {
		pr := newPredictor(repo, cfg, learner.Params{WindowSec: tc.win})
		if pr.DedupWindowSec != tc.want {
			t.Errorf("WindowSec %d: DedupWindowSec = %d, want %d",
				tc.win, pr.DedupWindowSec, tc.want)
		}
	}
}

// TestTrainingMetricsRecorded runs the engine with a metrics recorder
// attached and checks the registry against the returned retraining
// records: pass counts, per-learner durations, and the summed rule churn
// must agree, and the exposition must parse.
func TestTrainingMetricsRecorded(t *testing.T) {
	events, start := pipeline(t, 101, 20)
	cfg := quickConfig()
	reg := obsv.NewRegistry()
	cfg.Metrics = NewTrainingMetrics(reg)
	res, err := Run(events, start, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obsv.ParseText(&buf)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	passes := float64(len(res.Retrainings))
	if passes == 0 {
		t.Fatal("no retrainings to account")
	}
	if got := samples["train_passes_total"]; got != passes {
		t.Errorf("train_passes_total = %v, want %v", got, passes)
	}
	if got := samples["train_errors_total"]; got != 0 {
		t.Errorf("train_errors_total = %v, want 0", got)
	}
	if got := samples["train_duration_seconds_count"]; got != passes {
		t.Errorf("train_duration_seconds_count = %v, want %v", got, passes)
	}
	for _, name := range []string{"association", "statistical", "distribution"} {
		key := fmt.Sprintf("train_learner_duration_seconds_count{learner=%q}", name)
		if got := samples[key]; got != passes {
			t.Errorf("%s = %v, want %v", key, got, passes)
		}
	}
	var added, removed, unchanged float64
	for _, rt := range res.Retrainings {
		added += float64(rt.Churn.Added)
		unchanged += float64(rt.Churn.Unchanged)
		removed += float64(rt.Churn.RemovedByMeta + rt.Churn.RemovedByReviser)
	}
	if got := samples["train_rules_added_total"]; got != added {
		t.Errorf("train_rules_added_total = %v, want %v", got, added)
	}
	if got := samples["train_rules_removed_total"]; got != removed {
		t.Errorf("train_rules_removed_total = %v, want %v", got, removed)
	}
	if got := samples["train_rules_unchanged_total"]; got != unchanged {
		t.Errorf("train_rules_unchanged_total = %v, want %v", got, unchanged)
	}
	last := res.Retrainings[len(res.Retrainings)-1]
	if got := samples["train_repo_rules"]; got != float64(last.RepoSize) {
		t.Errorf("train_repo_rules = %v, want %v", got, last.RepoSize)
	}
	if got := samples["train_events"]; got != float64(last.TrainEvents) {
		t.Errorf("train_events = %v, want %v", got, last.TrainEvents)
	}
}
