package engine

import (
	"reflect"
	"testing"
)

// stripDurations clears the wall-clock fields of a retraining record so
// equivalence checks compare only deterministic outputs.
func stripDurations(rts []Retraining) []Retraining {
	out := append([]Retraining(nil), rts...)
	for i := range out {
		out[i].LearnerDurations = nil
		out[i].ReviseDuration = 0
		out[i].Total = 0
	}
	return out
}

// TestRunParallelAndCacheMatchSerial pins the engine tentpole: the
// default configuration (parallel training, incremental event-set reuse
// across retrainings) reproduces the fully serial, cache-free run byte
// for byte — warnings, fatals, weekly curves, overall outcome, and every
// retraining record.
func TestRunParallelAndCacheMatchSerial(t *testing.T) {
	for _, seed := range []uint64{101, 707} {
		events, start := pipeline(t, seed, 20)
		for _, policy := range []Policy{Sliding, Whole} {
			base := quickConfig()
			base.Policy = policy

			serial := base
			serial.Parallelism = 1
			serial.NoEventSetReuse = true
			want, err := Run(events, start, 20, serial)
			if err != nil {
				t.Fatalf("seed %d %v: serial: %v", seed, policy, err)
			}

			fast := base // Parallelism 0 (= GOMAXPROCS), cache on
			got, err := Run(events, start, 20, fast)
			if err != nil {
				t.Fatalf("seed %d %v: parallel: %v", seed, policy, err)
			}

			if !reflect.DeepEqual(got.Warnings, want.Warnings) {
				t.Errorf("seed %d %v: warnings diverged (%d vs %d)",
					seed, policy, len(got.Warnings), len(want.Warnings))
			}
			if !reflect.DeepEqual(got.FatalTimes, want.FatalTimes) {
				t.Errorf("seed %d %v: fatal times diverged", seed, policy)
			}
			if !reflect.DeepEqual(got.Weekly, want.Weekly) {
				t.Errorf("seed %d %v: weekly series diverged", seed, policy)
			}
			if got.Overall != want.Overall {
				t.Errorf("seed %d %v: overall %+v vs %+v",
					seed, policy, got.Overall, want.Overall)
			}
			if !reflect.DeepEqual(stripDurations(got.Retrainings), stripDurations(want.Retrainings)) {
				t.Errorf("seed %d %v: retraining records diverged", seed, policy)
			}
			if len(want.Warnings) == 0 || len(want.Retrainings) < 2 {
				t.Errorf("seed %d %v: degenerate comparison (warnings=%d retrains=%d)",
					seed, policy, len(want.Warnings), len(want.Retrainings))
			}
		}
	}
}
