package engine

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/meta"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

func mkEvent(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

// farPrecursorStream builds a stream whose precursors arrive ~20 minutes
// before failures: only wide windows can predict it.
func farPrecursorStream(weeks int) []preprocess.TaggedEvent {
	var events []preprocess.TaggedEvent
	weekSec := int64(raslog.MillisPerWeek / 1000)
	for w := int64(0); w < int64(weeks); w++ {
		base := w * weekSec
		for i := int64(0); i < 20; i++ {
			t := base + i*30_000
			events = append(events,
				mkEvent(t, 1, false), mkEvent(t+30, 2, false),
				mkEvent(t+1200, 99, true)) // 20 min after the signature
		}
	}
	return events
}

func TestTunerPrefersWideWindowOnFarPrecursors(t *testing.T) {
	events := farPrecursorStream(12)
	wt := NewWindowTuner()
	wt.Candidates = []int64{300, 1800}
	chosen, scores, err := wt.Choose(events, meta.New())
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 1800 {
		t.Fatalf("chose %d, want 1800 (scores %+v)", chosen, scores)
	}
	var marked int
	for _, s := range scores {
		if s.Chosen {
			marked++
			if s.WindowSec != chosen {
				t.Error("Chosen flag on wrong candidate")
			}
		}
	}
	if marked != 1 {
		t.Errorf("chosen flags = %d", marked)
	}
}

// nearPrecursorStream: signatures complete within 2 minutes of failures,
// so the small window already performs and must win (it is cheaper).
func nearPrecursorStream(weeks int) []preprocess.TaggedEvent {
	var events []preprocess.TaggedEvent
	weekSec := int64(raslog.MillisPerWeek / 1000)
	for w := int64(0); w < int64(weeks); w++ {
		base := w * weekSec
		for i := int64(0); i < 20; i++ {
			t := base + i*30_000
			events = append(events,
				mkEvent(t, 1, false), mkEvent(t+30, 2, false),
				mkEvent(t+120, 99, true))
		}
	}
	return events
}

func TestTunerPrefersSmallWindowWhenSufficient(t *testing.T) {
	events := nearPrecursorStream(12)
	wt := NewWindowTuner()
	wt.Candidates = []int64{300, 1800, 7200}
	chosen, _, err := wt.Choose(events, meta.New())
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 300 {
		t.Fatalf("chose %d, want the cheap 300 s window", chosen)
	}
}

func TestTunerDegenerateInputs(t *testing.T) {
	wt := NewWindowTuner()
	if _, _, err := (&WindowTuner{}).Choose(nil, meta.New()); err == nil {
		t.Error("empty candidate list accepted")
	}
	chosen, scores, err := wt.Choose(nil, meta.New())
	if err != nil || chosen != wt.Candidates[0] || scores != nil {
		t.Errorf("empty stream: %d %v %v", chosen, scores, err)
	}
	// A stream shorter than the validation tail falls back too.
	short := []preprocess.TaggedEvent{mkEvent(0, 1, false), mkEvent(10, 99, true)}
	chosen, _, err = wt.Choose(short, meta.New())
	if err != nil || chosen != wt.Candidates[0] {
		t.Errorf("short stream: %d %v", chosen, err)
	}
}

func TestTunerCustomObjective(t *testing.T) {
	// A recall-only objective must pick the widest window on far
	// precursors regardless of precision.
	events := farPrecursorStream(12)
	wt := NewWindowTuner()
	wt.Candidates = []int64{300, 7200}
	wt.Tolerance = 0
	wt.Objective = func(o eval.Outcome) float64 { return o.Recall() }
	chosen, _, err := wt.Choose(events, meta.New())
	if err != nil {
		t.Fatal(err)
	}
	if chosen != 7200 {
		t.Fatalf("recall objective chose %d", chosen)
	}
}

func TestRunWithTuner(t *testing.T) {
	events, start := pipeline(t, 301, 20)
	cfg := quickConfig()
	cfg.Tuner = NewWindowTuner()
	cfg.Tuner.Candidates = []int64{300, 1800}
	res, err := Run(events, start, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range res.Retrainings {
		if rt.WindowSec != 300 && rt.WindowSec != 1800 {
			t.Errorf("retraining window %d not among candidates", rt.WindowSec)
		}
	}
	if len(res.Warnings) == 0 {
		t.Error("tuned run produced no warnings")
	}
}

func TestRetrainingRecordsWindow(t *testing.T) {
	events, start := pipeline(t, 302, 16)
	res, err := Run(events, start, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range res.Retrainings {
		if rt.WindowSec != 300 {
			t.Errorf("untuned run recorded window %d", rt.WindowSec)
		}
	}
}
