// Package engine orchestrates the *dynamic* half of the framework
// (paper §4, Figure 3): it maintains the training set over time, invokes
// the meta-learner and reviser every retraining window W_R, swaps the
// refreshed rule set into the online predictor, and scores predictions
// week by week. The training-set policies (static, sliding, whole-history)
// and the retraining cadence are exactly the experimental axes of
// Figures 9 and 10.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/learner/incr"
	"repro/internal/meta"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// Policy selects how the training set evolves (Figure 9's four curves).
type Policy int

// Training-set policies.
const (
	// Static trains once on the initial window and never retrains —
	// Figure 9's "static" baseline.
	Static Policy = iota
	// Sliding retrains every W_R weeks on the most recent TrainWeeks of
	// data ("dynamic-6 mo" / "dynamic-3 mo").
	Sliding
	// Whole retrains every W_R weeks on all history so far
	// ("dynamic-whole").
	Whole
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Sliding:
		return "sliding"
	case Whole:
		return "whole"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes one engine run.
type Config struct {
	// Params carries the prediction / rule-generation window W_P.
	Params learner.Params
	// Policy selects the training-set evolution.
	Policy Policy
	// InitialTrainWeeks is the length of the first training set
	// (paper default: 26 weeks ≈ six months).
	InitialTrainWeeks int
	// TrainWeeks is the sliding-window length for Policy == Sliding.
	TrainWeeks int
	// RetrainWeeks is W_R, the retraining cadence (paper default 4).
	RetrainWeeks int
	// Meta supplies the learners and reviser; nil means meta.New().
	Meta *meta.MetaLearner
	// KindFilter, when non-nil, restricts the predictor to rules of one
	// family — how Figure 7 evaluates each base learner in isolation.
	KindFilter *learner.Kind
	// Tuner, when non-nil, re-selects the prediction window W_P at every
	// (re)training by validating candidate windows on the tail of the
	// training set (the paper's adaptive-window future work). Params
	// then only supplies the initial value.
	Tuner *WindowTuner
	// Parallelism bounds training concurrency (base learners, Apriori
	// counting, reviser scoring): 0 means GOMAXPROCS, 1 forces the serial
	// pipeline. Results are identical at any setting.
	Parallelism int
	// NoEventSetReuse disables the incremental event-set cache that
	// carries Apriori transactions across overlapping retraining windows.
	// The cache is exact (see learner.EventSetCache); the switch exists
	// for equivalence testing and measurement.
	NoEventSetReuse bool
	// Incremental maintains the learners' sufficient statistics across
	// retrainings (internal/learner/incr): each pass delta-applies the
	// window slide instead of re-mining the whole training set, with
	// byte-identical results. Subsumes the event-set cache. The batch
	// path remains the fallback for parameter changes, backwards windows
	// and drift (see Retraining.Incr for what each pass actually did).
	Incremental bool
	// Metrics, when non-nil, records every (re)training pass — duration,
	// per-learner time, reviser time, rule churn — into an obsv registry:
	// the live version of Table 5. Nil disables recording.
	Metrics *TrainingMetrics
}

// DefaultWindowSec is the paper's base prediction / rule-generation
// window W_P (300 s, §5.2). It doubles as the alarm-spacing anchor:
// warning deduplication stays at this base window even when a run
// evaluates wider prediction windows (Figure 13), so the clamp in
// newPredictor / stream.swapPredictor derives from this constant rather
// than repeating the literal.
const DefaultWindowSec int64 = 300

// Defaults returns the paper's default configuration: dynamic retraining
// every 4 weeks on a sliding six-month window, W_P = 300 s.
func Defaults() Config {
	return Config{
		Params:            learner.Params{WindowSec: DefaultWindowSec},
		Policy:            Sliding,
		InitialTrainWeeks: 26,
		TrainWeeks:        26,
		RetrainWeeks:      4,
	}
}

func (c *Config) validate(totalWeeks int) error {
	if c.Params.WindowSec <= 0 {
		return fmt.Errorf("engine: WindowSec = %d, need > 0", c.Params.WindowSec)
	}
	if c.InitialTrainWeeks <= 0 {
		return fmt.Errorf("engine: InitialTrainWeeks = %d, need > 0", c.InitialTrainWeeks)
	}
	if c.InitialTrainWeeks >= totalWeeks {
		return fmt.Errorf("engine: initial training (%d weeks) consumes the whole %d-week log",
			c.InitialTrainWeeks, totalWeeks)
	}
	if c.Policy == Sliding && c.TrainWeeks <= 0 {
		return fmt.Errorf("engine: sliding policy needs TrainWeeks > 0")
	}
	if c.Policy != Static && c.RetrainWeeks <= 0 {
		return fmt.Errorf("engine: dynamic policy needs RetrainWeeks > 0")
	}
	return nil
}

// Retraining records one (re)training pass.
type Retraining struct {
	Week        int // zero-based week at which the new rules took effect
	TrainEvents int
	RepoSize    int
	// WindowSec is the prediction window in force after this training
	// (differs from Config.Params only under a Tuner).
	WindowSec int64
	Churn     meta.Churn
	// Durations for Table 5.
	LearnerDurations map[string]time.Duration
	ReviseDuration   time.Duration
	Total            time.Duration
	// Incr describes the incremental sufficient-statistics advance behind
	// this pass; nil when the pass ran without incremental maintenance.
	Incr *IncrInfo
}

// IncrInfo records what the incremental maintainer did for one pass:
// the delta it applied, or the full-rebuild fallback it fell into.
type IncrInfo struct {
	// Applied and Expired count the events that entered / left the
	// training window in this advance.
	Applied int
	Expired int
	// Rebuild marks a full rebuild fallback; Reason says why.
	Rebuild bool
	Reason  string `json:",omitempty"`
	// AdvanceDuration is the time spent updating the sufficient
	// statistics (the delta-apply itself, excluding rule emission).
	AdvanceDuration time.Duration
}

// Result is the outcome of an engine run.
type Result struct {
	Config      Config
	Start       int64 // ms of week 0
	Weeks       int
	TestFrom    int // first predicted week (== InitialTrainWeeks)
	Warnings    []predictor.Warning
	FatalTimes  []int64 // fatals in the test span
	Weekly      []eval.WeekPoint
	Overall     eval.Outcome
	Retrainings []Retraining
	// MatchDuration is the total time spent in the event-driven predictor
	// over the whole test span (the "rule matching" column of Table 5).
	MatchDuration time.Duration
}

// TrainStep runs one (re)training pass — meta-learner over the training
// slice, reviser, repository swap — and returns its record. It is the
// single retraining step of Run, exported so long-running services
// (internal/stream) can retrain outside an offline engine run. The
// returned Retraining has Week zero; callers with a week timeline set it.
func TrainStep(ml *meta.MetaLearner, repo *meta.Repository, slice []preprocess.TaggedEvent, params learner.Params) (Retraining, error) {
	return TrainStepPrepared(ml, repo, learner.Prepare(slice), params)
}

// TrainStepPrepared is TrainStep over a caller-prepared training view —
// the engine and the stream service install their incremental event-set
// caches on the view before coming in here.
func TrainStepPrepared(ml *meta.MetaLearner, repo *meta.Repository, pre *learner.Prepared, params learner.Params) (Retraining, error) {
	slice := pre.Events
	t0 := time.Now()
	report, err := ml.TrainPrepared(pre, params)
	if err != nil {
		return Retraining{}, err
	}
	churn := repo.Update(report)
	return Retraining{
		TrainEvents:      len(slice),
		RepoSize:         repo.Len(),
		WindowSec:        params.WindowSec,
		Churn:            churn,
		LearnerDurations: report.LearnerDurations,
		ReviseDuration:   report.ReviseDuration,
		Total:            time.Since(t0),
	}, nil
}

// Run executes the framework over a preprocessed, time-sorted event
// stream spanning [start, start + weeks). Training happens inside the
// stream's own timeline: the first InitialTrainWeeks are training-only,
// prediction and periodic retraining cover the rest.
func Run(events []preprocess.TaggedEvent, start int64, weeks int, cfg Config) (*Result, error) {
	if err := cfg.validate(weeks); err != nil {
		return nil, err
	}
	ml := cfg.Meta
	if ml == nil {
		ml = meta.New()
	}
	if cfg.Parallelism != 0 {
		ml.SetParallelism(cfg.Parallelism)
	}
	res := &Result{Config: cfg, Start: start, Weeks: weeks, TestFrom: cfg.InitialTrainWeeks}
	repo := meta.NewRepository()
	params := cfg.Params
	// setCache carries Apriori transactions across the overlapping
	// training windows of the retraining sequence: a sliding window drops
	// a few expired weeks and appends a few new ones, so most event sets
	// survive verbatim and only the boundary is rebuilt.
	var setCache *learner.EventSetCache
	if !cfg.NoEventSetReuse {
		setCache = learner.NewEventSetCache()
	}
	// incrState additionally carries the learners' sufficient statistics
	// across retrainings, turning each pass into a delta-apply.
	var incrState *incr.State
	if cfg.Incremental {
		incrState = incr.New(meta.IncrConfig(ml, params))
	}

	weekMs := int64(raslog.MillisPerWeek)
	at := func(week int) int64 { return start + int64(week)*weekMs }
	// index finds the first event at or after t.
	index := func(t int64) int {
		return sort.Search(len(events), func(i int) bool { return events[i].Time >= t })
	}

	train := func(effectiveWeek int) error {
		var from int64
		switch cfg.Policy {
		case Whole:
			from = start
		case Sliding:
			fromWeek := effectiveWeek - cfg.TrainWeeks
			if fromWeek < 0 {
				fromWeek = 0
			}
			from = at(fromWeek)
		case Static:
			from = start
		}
		to := at(effectiveWeek)
		slice := events[index(from):index(to)]
		t0 := time.Now()
		if cfg.Tuner != nil {
			wp, _, err := cfg.Tuner.Choose(slice, ml)
			if err != nil {
				return err
			}
			if wp > 0 {
				params.WindowSec = wp
			}
		}
		pre := learner.Prepare(slice)
		var incrInfo *IncrInfo
		if incrState != nil {
			ta := time.Now()
			d := incrState.Advance(events, from, to, params)
			incrState.Install(pre)
			incrInfo = &IncrInfo{Applied: d.Applied, Expired: d.Expired,
				Rebuild: d.Rebuild, Reason: d.Reason, AdvanceDuration: time.Since(ta)}
		} else if setCache != nil {
			pre.SetsFor = func(windowMs int64, maxItems int) []learner.EventSet {
				return setCache.Sets(events, from, to, windowMs, maxItems)
			}
		}
		rt, err := TrainStepPrepared(ml, repo, pre, params)
		if err != nil {
			cfg.Metrics.RecordError()
			return err
		}
		rt.Week = effectiveWeek
		rt.Incr = incrInfo
		rt.Total = time.Since(t0) // include the tuner's share
		cfg.Metrics.Record(rt)
		res.Retrainings = append(res.Retrainings, rt)
		return nil
	}

	// Initial training.
	if err := train(cfg.InitialTrainWeeks); err != nil {
		return nil, err
	}

	// Prediction with periodic retraining.
	pr := newPredictor(repo, cfg, params)
	testStart := at(cfg.InitialTrainWeeks)
	nextRetrain := cfg.InitialTrainWeeks + cfg.RetrainWeeks
	if cfg.Policy == Static {
		nextRetrain = weeks + 1 // never
	}
	i := index(testStart)
	for week := cfg.InitialTrainWeeks; week < weeks; week++ {
		if week == nextRetrain {
			if err := train(week); err != nil {
				return nil, err
			}
			lastFatal := pr.LastFatal()
			lastWarn := pr.LastWarnTimes()
			pr = newPredictor(repo, cfg, params)
			pr.SeedLastFatal(lastFatal)
			// Carry the dedup marks too: re-arming the distribution expert
			// (SeedLastFatal) while forgetting it just fired would let it
			// re-warn immediately after every swap.
			pr.SeedLastWarn(lastWarn)
			nextRetrain += cfg.RetrainWeeks
		}
		weekEnd := at(week + 1)
		t0 := time.Now()
		for ; i < len(events) && events[i].Time < weekEnd; i++ {
			res.Warnings = append(res.Warnings, pr.Observe(events[i])...)
			if events[i].Fatal {
				res.FatalTimes = append(res.FatalTimes, events[i].Time)
			}
		}
		res.MatchDuration += time.Since(t0)
	}

	res.Weekly = eval.Weekly(res.Warnings, res.FatalTimes, start, weeks)
	res.Overall = eval.Match(res.Warnings, res.FatalTimes)
	return res, nil
}

// newPredictor loads the repository's rules (optionally filtered to one
// family) into a fresh predictor using the currently effective params.
func newPredictor(repo *meta.Repository, cfg Config, params learner.Params) *predictor.Predictor {
	rules := repo.Rules()
	if cfg.KindFilter != nil {
		filtered := rules[:0:0]
		for _, r := range rules {
			if r.Kind == *cfg.KindFilter {
				filtered = append(filtered, r)
			}
		}
		rules = filtered
	}
	pr := predictor.New(rules, params)
	// The full ensemble counts overlapping alarms as one prediction;
	// a single isolated family keeps its own window. Alarm spacing stays
	// at the base window even when evaluating wider prediction windows
	// (see predictor.DedupWindowSec).
	pr.GlobalDedup = cfg.KindFilter == nil
	ClampDedup(pr, params.WindowSec)
	return pr
}

// ClampDedup pins a predictor's alarm spacing to the base rule-generation
// window when the effective prediction window is wider: sweeping W_P must
// admit more alarms, not ration them (Figure 13). Shared with the
// streaming service's predictor swap so both deployment modes space
// alarms identically.
func ClampDedup(pr *predictor.Predictor, windowSec int64) {
	if windowSec > DefaultWindowSec {
		pr.DedupWindowSec = DefaultWindowSec
	}
}
