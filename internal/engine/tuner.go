package engine

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// WindowTuner implements the paper's first future-work item: "adaptively
// changing this window size such that the system can automatically tune
// its size to reduce the training cost, without sacrificing the
// prediction accuracy."
//
// At every (re)training, the tuner holds out the tail of the training
// span, trains a candidate rule set per window size on the remainder,
// validates each candidate on the held-out tail, and picks the smallest
// window whose objective comes within Tolerance of the best — smaller
// windows mean cheaper event tracking and tighter warnings.
type WindowTuner struct {
	// Candidates are the window sizes (seconds) to consider, ascending.
	Candidates []int64
	// ValidationWeeks is the held-out tail length (default 4).
	ValidationWeeks int
	// Tolerance is how far below the best objective the chosen (smaller)
	// window may fall (default 0.05).
	Tolerance float64
	// Objective scores a validation outcome; nil means F1.
	Objective func(eval.Outcome) float64
}

// NewWindowTuner returns a tuner over the paper's Figure 13 window range.
func NewWindowTuner() *WindowTuner {
	return &WindowTuner{
		Candidates:      []int64{300, 900, 1800, 3600, 7200},
		ValidationWeeks: 4,
		Tolerance:       0.05,
	}
}

// WindowScore is one candidate's validation result.
type WindowScore struct {
	WindowSec int64
	Outcome   eval.Outcome
	Score     float64
	TrainTime time.Duration
	Chosen    bool
}

// f1 is the default objective.
func f1(o eval.Outcome) float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Choose evaluates every candidate window over a training stream and
// returns the selected window plus the full scorecard. The stream must be
// time-sorted; it is split into a fit segment and a ValidationWeeks tail.
func (wt *WindowTuner) Choose(events []preprocess.TaggedEvent, ml *meta.MetaLearner) (int64, []WindowScore, error) {
	if len(wt.Candidates) == 0 {
		return 0, nil, fmt.Errorf("engine: WindowTuner has no candidates")
	}
	cands := append([]int64(nil), wt.Candidates...)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	if len(events) == 0 {
		return cands[0], nil, nil
	}
	objective := wt.Objective
	if objective == nil {
		objective = f1
	}
	validationWeeks := wt.ValidationWeeks
	if validationWeeks <= 0 {
		validationWeeks = 4
	}
	end := events[len(events)-1].Time
	split := end - int64(validationWeeks)*raslog.MillisPerWeek
	cut := sort.Search(len(events), func(i int) bool { return events[i].Time >= split })
	fit, validation := events[:cut], events[cut:]
	if len(fit) == 0 || len(validation) == 0 {
		// Too little data to validate: fall back to the smallest window.
		return cands[0], nil, nil
	}
	fatalTimes := learner.FatalTimes(validation)

	scores := make([]WindowScore, 0, len(cands))
	best := math.Inf(-1)
	for _, wp := range cands {
		params := learner.Params{WindowSec: wp}
		t0 := time.Now()
		report, err := ml.Train(fit, params)
		if err != nil {
			return 0, scores, err
		}
		pr := predictor.New(report.Kept, params)
		pr.GlobalDedup = true
		if wp > 300 {
			pr.DedupWindowSec = 300
		}
		warnings := pr.ObserveAll(validation)
		outcome := eval.Match(warnings, fatalTimes)
		score := WindowScore{
			WindowSec: wp,
			Outcome:   outcome,
			Score:     objective(outcome),
			TrainTime: time.Since(t0),
		}
		if score.Score > best {
			best = score.Score
		}
		scores = append(scores, score)
	}
	// Smallest window within Tolerance of the best.
	chosen := cands[len(cands)-1]
	for i := range scores {
		if scores[i].Score >= best-wt.Tolerance {
			chosen = scores[i].WindowSec
			break
		}
	}
	for i := range scores {
		scores[i].Chosen = scores[i].WindowSec == chosen
	}
	return chosen, scores, nil
}
