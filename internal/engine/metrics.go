package engine

import (
	"repro/internal/obsv"
)

// trainBuckets spans one (re)training pass: sub-millisecond toy sets up
// to minutes-long full-scale passes.
var trainBuckets = obsv.ExpBuckets(1e-3, 4, 10)

// learnerBuckets spans one base learner or reviser pass.
var learnerBuckets = obsv.ExpBuckets(1e-4, 4, 10)

// TrainingMetrics records (re)training passes into an obsv registry —
// the live, continuously-updated version of Table 5: per-learner rule
// generation time, ensemble + revising time, total pass duration, and
// the rule churn of Figure 12. Both deployment modes feed it: the
// offline engine via Config.Metrics and the streaming service on every
// background retrain. A nil *TrainingMetrics is a no-op recorder, so
// call sites never need to guard.
type TrainingMetrics struct {
	reg *obsv.Registry

	passes   *obsv.Counter
	errors   *obsv.Counter
	duration *obsv.Histogram
	revise   *obsv.Histogram

	incrApplied  *obsv.Counter
	incrExpired  *obsv.Counter
	incrRebuilds *obsv.Counter
	incrAdvance  *obsv.Histogram

	rulesUnchanged *obsv.Counter
	rulesAdded     *obsv.Counter
	rulesRemoved   *obsv.Counter

	trainEvents *obsv.Gauge
	repoRules   *obsv.Gauge
	windowSec   *obsv.Gauge
}

// NewTrainingMetrics registers the training instruments (train_* names)
// on reg and returns the recorder.
func NewTrainingMetrics(reg *obsv.Registry) *TrainingMetrics {
	return &TrainingMetrics{
		reg:      reg,
		passes:   reg.Counter("train_passes_total", "Completed (re)training passes."),
		errors:   reg.Counter("train_errors_total", "Failed (re)training passes (previous rules stay live)."),
		duration: reg.Histogram("train_duration_seconds", "Total duration of one (re)training pass.", trainBuckets),
		revise: reg.Histogram("train_revise_duration_seconds",
			"Ensemble + revising time of one pass (Table 5).", learnerBuckets),
		incrApplied: reg.Counter("train_incr_applied_events_total",
			"Events delta-applied at the window end across incremental retrains."),
		incrExpired: reg.Counter("train_incr_expired_events_total",
			"Events expired at the window start across incremental retrains."),
		incrRebuilds: reg.Counter("train_incr_rebuilds_total",
			"Incremental retrains that fell back to a full sufficient-statistics rebuild."),
		incrAdvance: reg.Histogram("train_incr_advance_duration_seconds",
			"Sufficient-statistics delta-apply time of one incremental retrain.", learnerBuckets),
		rulesUnchanged: reg.Counter("train_rules_unchanged_total",
			"Rules re-learned unchanged across retrainings (Figure 12)."),
		rulesAdded: reg.Counter("train_rules_added_total",
			"New rules entering the repository across retrainings (Figure 12)."),
		rulesRemoved: reg.Counter("train_rules_removed_total",
			"Rules dropped by the meta-learner or rejected by the reviser (Figure 12)."),
		trainEvents: reg.Gauge("train_events", "Training-set size of the most recent pass."),
		repoRules:   reg.Gauge("train_repo_rules", "Knowledge-repository size after the most recent pass."),
		windowSec:   reg.Gauge("train_window_seconds", "Prediction window W_P in force after the most recent pass."),
	}
}

// Record accounts one successful pass.
func (tm *TrainingMetrics) Record(rt Retraining) {
	if tm == nil {
		return
	}
	tm.passes.Inc()
	tm.duration.Observe(rt.Total.Seconds())
	tm.revise.Observe(rt.ReviseDuration.Seconds())
	mode := "full"
	if rt.Incr != nil {
		tm.incrApplied.Add(int64(rt.Incr.Applied))
		tm.incrExpired.Add(int64(rt.Incr.Expired))
		tm.incrAdvance.Observe(rt.Incr.AdvanceDuration.Seconds())
		if rt.Incr.Rebuild {
			tm.incrRebuilds.Inc()
		} else {
			mode = "incremental"
		}
	}
	// The incremental-vs-full comparison histogram: one pass duration
	// series per mode, so dashboards can overlay delta-apply retrains
	// against full rebuilds (and non-incremental passes) directly.
	tm.reg.Histogram("train_pass_duration_seconds",
		"Total pass duration split by training mode.", trainBuckets,
		obsv.Label{Key: "mode", Value: mode}).Observe(rt.Total.Seconds())
	for name, d := range rt.LearnerDurations {
		tm.reg.Histogram("train_learner_duration_seconds",
			"Rule-generation time per base learner (Table 5).", learnerBuckets,
			obsv.Label{Key: "learner", Value: name}).Observe(d.Seconds())
	}
	tm.rulesUnchanged.Add(int64(rt.Churn.Unchanged))
	tm.rulesAdded.Add(int64(rt.Churn.Added))
	tm.rulesRemoved.Add(int64(rt.Churn.RemovedByMeta + rt.Churn.RemovedByReviser))
	tm.trainEvents.Set(float64(rt.TrainEvents))
	tm.repoRules.Set(float64(rt.RepoSize))
	tm.windowSec.Set(float64(rt.WindowSec))
}

// RecordError accounts one failed pass.
func (tm *TrainingMetrics) RecordError() {
	if tm == nil {
		return
	}
	tm.passes.Inc()
	tm.errors.Inc()
}
