// Package assoc implements the association-rule base learner (paper §4.1):
// Apriori itemset mining over the event sets that precede fatal events,
// yielding rules of the form {e1, e2, ...} => f with support and
// confidence. Low thresholds (support 0.01, confidence 0.1) are used on
// purpose — failures are rare events — and the reviser later discards the
// rules that do not hold up.
//
// Counting — the Apriori hot loop — decomposes by transaction: the event
// sets are sharded across workers, each worker fills a private count
// array, and the per-worker arrays are merged in worker order, so the
// mined rule set is byte-identical to the serial scan at any parallelism.
package assoc

import (
	"math"
	"sort"
	"sync"

	"repro/internal/learner"
)

// maxClassBits is the field width used to pack an itemset into a uint64
// map key; class IDs (catalog ≤ 219, unknown fallbacks ≈ 1100) fit in 16
// bits, so bodies of up to maxPackedItems pack collision-free.
const (
	maxClassBits   = 16
	maxPackedItems = 64 / maxClassBits // 4
)

// minSetsPerWorker is the smallest shard worth a goroutine; below it the
// counting runs serially regardless of the Parallelism knob.
const minSetsPerWorker = 256

// Learner mines association rules {non-fatal classes} => fatal class.
type Learner struct {
	// MinSupport is the minimum fraction of event sets that must contain
	// body ∪ {target} (paper default 0.01).
	MinSupport float64
	// MinConfidence is the minimum P(target | body) over event sets
	// (paper default 0.1).
	MinConfidence float64
	// MaxBody caps the antecedent size (default 3; ablated in the bench
	// suite — deeper bodies cost time and add nothing on these logs).
	MaxBody int
	// MaxItems caps how many distinct classes one event set may hold
	// (default 30, keeping per-transaction subset enumeration bounded).
	MaxItems int
	// MaxRules caps the emitted rule count; the highest-confidence rules
	// win. Mining with permissive support floods the candidate set with
	// near-duplicates otherwise. 0 means unlimited.
	MaxRules int
	// Parallelism bounds the counting workers: 0 means GOMAXPROCS,
	// 1 forces the serial scan. Output is identical either way.
	Parallelism int
}

// New returns a learner with the paper's parameters.
func New() *Learner {
	return &Learner{MinSupport: 0.01, MinConfidence: 0.1, MaxBody: 3,
		MaxItems: 30, MaxRules: 400}
}

// Name implements learner.Learner.
func (l *Learner) Name() string { return "association" }

// Learn implements learner.Learner: it mines the prepared view's event
// sets — shared with any other learner asking for the same transactions.
// When the view carries maintained itemset counts covering this
// configuration (incremental retraining), mining runs off the counts
// instead of rescanning the transactions; the output is byte-identical.
func (l *Learner) Learn(tr *learner.Prepared, p learner.Params) ([]learner.Rule, error) {
	if src := tr.Itemsets; src != nil &&
		src.CanServeItemsets(p.Window(), l.MaxItems, l.EffectiveMaxBody()) {
		return l.MineCounts(src)
	}
	return l.Mine(tr.EventSets(p, l.MaxItems))
}

// EffectiveMaxBody resolves the antecedent cap the miner actually uses:
// the MaxBody knob defaulted and clamped to the packed-key limit. The
// incremental maintainer sizes its subset enumeration from this.
func (l *Learner) EffectiveMaxBody() int {
	maxBody := l.MaxBody
	if maxBody <= 0 {
		maxBody = 3
	}
	if maxBody > maxPackedItems {
		// Itemset keys pack into a uint64; larger bodies would collide.
		maxBody = maxPackedItems
	}
	return maxBody
}

// Mine runs Apriori directly over prepared event sets (exposed separately
// so tests and tools can mine synthetic transactions).
func (l *Learner) Mine(sets []learner.EventSet) ([]learner.Rule, error) {
	n := len(sets)
	if n == 0 {
		return nil, nil
	}
	minCount := int(math.Ceil(l.MinSupport * float64(n)))
	if minCount < 1 {
		minCount = 1
	}
	maxBody := l.EffectiveMaxBody()
	workers := learner.Workers(l.Parallelism)
	if max := (n + minSetsPerWorker - 1) / minSetsPerWorker; workers > max {
		workers = max
	}

	var rules []learner.Rule
	frequent := frequentItems(sets, minCount) // level 1
	level := make([]itemset, 0, len(frequent))
	for _, it := range frequent {
		level = append(level, itemset{items: []int{it}})
	}
	for k := 1; k <= maxBody && len(level) > 0; k++ {
		counts := countItemsets(sets, level, frequent, workers)
		var kept []itemset
		for i := range level {
			c := counts[i]
			if c.global < minCount {
				continue
			}
			kept = append(kept, level[i])
			for _, tc := range c.byTarget {
				if tc.count < minCount {
					continue
				}
				conf := float64(tc.count) / float64(c.global)
				if conf < l.MinConfidence {
					continue
				}
				body := append([]int(nil), level[i].items...)
				rules = append(rules, learner.Rule{
					Kind:       learner.Association,
					Body:       body,
					Target:     tc.target,
					Confidence: conf,
					Support:    float64(tc.count) / float64(n),
				})
			}
		}
		if k == maxBody {
			break
		}
		level = generateCandidates(kept)
	}

	return l.finishRules(rules), nil
}

// MineCounts runs the same level-wise Apriori as Mine, but against
// maintained itemset counts instead of rescanning transactions: candidate
// generation, thresholds and emission are shared logic over identical
// integers, so the rule set is byte-identical to Mine over the window's
// event sets — at a cost proportional to the candidate count, not the
// window size. The caller must have checked CanServeItemsets.
func (l *Learner) MineCounts(src learner.ItemsetCounts) ([]learner.Rule, error) {
	n := src.NumSets()
	if n == 0 {
		return nil, nil
	}
	minCount := int(math.Ceil(l.MinSupport * float64(n)))
	if minCount < 1 {
		minCount = 1
	}
	maxBody := l.EffectiveMaxBody()

	var rules []learner.Rule
	frequent := src.FrequentItems(minCount) // level 1
	level := make([]itemset, 0, len(frequent))
	for _, it := range frequent {
		level = append(level, itemset{items: []int{it}})
	}
	for k := 1; k <= maxBody && len(level) > 0; k++ {
		var kept []itemset
		for i := range level {
			global, byTarget := src.ItemsetCount(level[i].items)
			if global < minCount {
				continue
			}
			kept = append(kept, level[i])
			for _, tc := range byTarget {
				if tc.Count < minCount {
					continue
				}
				conf := float64(tc.Count) / float64(global)
				if conf < l.MinConfidence {
					continue
				}
				body := append([]int(nil), level[i].items...)
				rules = append(rules, learner.Rule{
					Kind:       learner.Association,
					Body:       body,
					Target:     tc.Target,
					Confidence: conf,
					Support:    float64(tc.Count) / float64(n),
				})
			}
		}
		if k == maxBody {
			break
		}
		level = generateCandidates(kept)
	}
	return l.finishRules(rules), nil
}

// finishRules caps by mining quality, then emits in a deterministic
// order. Both comparators are total orders (rule IDs are unique within
// one mining pass), so the result does not depend on the order rules were
// appended in — which is what lets Mine and MineCounts differ in
// per-candidate target order yet return identical slices.
func (l *Learner) finishRules(rules []learner.Rule) []learner.Rule {
	if l.MaxRules > 0 && len(rules) > l.MaxRules {
		sort.Slice(rules, func(i, j int) bool {
			if rules[i].Confidence != rules[j].Confidence {
				return rules[i].Confidence > rules[j].Confidence
			}
			if rules[i].Support != rules[j].Support {
				return rules[i].Support > rules[j].Support
			}
			return rules[i].ID() < rules[j].ID()
		})
		rules = rules[:l.MaxRules]
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID() < rules[j].ID() })
	return rules
}

type itemset struct {
	items []int // sorted
}

// targetCount is one (fatal class, count) pair of an itemsetCount. The
// handful of fatal classes an itemset precedes makes a linear-scan
// association list cheaper than a map — no per-candidate allocation until
// a target is actually seen.
type targetCount struct {
	target int
	count  int
}

type itemsetCount struct {
	global   int
	byTarget []targetCount
}

// addTarget adds n to the target's count.
func (c *itemsetCount) addTarget(target, n int) {
	for i := range c.byTarget {
		if c.byTarget[i].target == target {
			c.byTarget[i].count += n
			return
		}
	}
	c.byTarget = append(c.byTarget, targetCount{target: target, count: n})
}

// bitset is a dense membership set over class IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) has(i int) bool {
	return i>>6 < len(b) && b[i>>6]&(1<<(uint(i)&63)) != 0
}

// frequentItems returns the ascending non-fatal classes that appear in at
// least minCount event sets, counted in a dense array preallocated from
// the largest class ID present (the catalog plus the unknown-event
// fallback bound it).
func frequentItems(sets []learner.EventSet, minCount int) []int {
	maxID := -1
	for i := range sets {
		for _, it := range sets[i].Items {
			if it > maxID {
				maxID = it
			}
		}
	}
	if maxID < 0 {
		return nil
	}
	counts := make([]int32, maxID+1)
	for i := range sets {
		for _, it := range sets[i].Items {
			counts[it]++
		}
	}
	var out []int
	for it, c := range counts {
		if int(c) >= minCount {
			out = append(out, it)
		}
	}
	return out
}

// pack encodes a sorted itemset (≤ maxPackedItems items, IDs < 2^16) as
// a uint64 key.
func pack(items []int) uint64 {
	var key uint64
	for _, it := range items {
		key = key<<maxClassBits | uint64(it+1) // +1 so the empty field is 0
	}
	return key
}

// countItemsets counts, for each candidate, how many event sets contain it
// (global) and how many per target class. Candidates must share a size.
// With workers > 1 the event sets are sharded into contiguous ranges, each
// worker counts into a private array, and the arrays are merged in worker
// order — the result is identical to the serial scan.
func countItemsets(sets []learner.EventSet, candidates []itemset, frequentItems []int, workers int) []itemsetCount {
	counts := make([]itemsetCount, len(candidates))
	if len(candidates) == 0 || len(sets) == 0 {
		return counts
	}
	k := len(candidates[0].items)
	index := make(map[uint64]int, len(candidates))
	for i, c := range candidates {
		index[pack(c.items)] = i
	}
	maxFreq := 0
	for _, it := range frequentItems {
		if it > maxFreq {
			maxFreq = it
		}
	}
	freq := newBitset(maxFreq + 1)
	for _, it := range frequentItems {
		freq.set(it)
	}

	if workers <= 1 {
		countRange(sets, k, index, freq, counts)
		return counts
	}
	parts := make([][]itemsetCount, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(sets) / workers
		hi := (w + 1) * len(sets) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			part := make([]itemsetCount, len(candidates))
			countRange(sets[lo:hi], k, index, freq, part)
			parts[w] = part
		}(w, lo, hi)
	}
	wg.Wait()
	for _, part := range parts { // merge deterministically, in worker order
		for i := range part {
			counts[i].global += part[i].global
			for _, tc := range part[i].byTarget {
				counts[i].addTarget(tc.target, tc.count)
			}
		}
	}
	return counts
}

// countRange is one worker's serial scan over a shard of the event sets.
func countRange(sets []learner.EventSet, k int, index map[uint64]int, freq bitset, counts []itemsetCount) {
	combo := make([]int, k)
	var trimmed []int
	for si := range sets {
		s := &sets[si]
		// Restrict the transaction to globally frequent items first — the
		// standard Apriori transaction-trimming optimization.
		trimmed = trimmed[:0]
		for _, it := range s.Items {
			if freq.has(it) {
				trimmed = append(trimmed, it)
			}
		}
		if len(trimmed) < k {
			continue
		}
		enumerate(trimmed, combo, 0, 0, func(c []int) {
			if i, ok := index[pack(c)]; ok {
				counts[i].global++
				counts[i].addTarget(s.Target, 1)
			}
		})
	}
}

// enumerate visits every size-len(combo) combination of items (which are
// sorted), filling combo in place.
func enumerate(items, combo []int, start, depth int, visit func([]int)) {
	if depth == len(combo) {
		visit(combo)
		return
	}
	for i := start; i <= len(items)-(len(combo)-depth); i++ {
		combo[depth] = items[i]
		enumerate(items, combo, i+1, depth+1, visit)
	}
}

// generateCandidates joins frequent k-itemsets sharing their first k-1
// items into (k+1)-candidates, pruning any whose k-subsets are not all
// frequent (the Apriori property).
func generateCandidates(frequent []itemset) []itemset {
	known := make(map[uint64]bool, len(frequent))
	for _, f := range frequent {
		known[pack(f.items)] = true
	}
	var out []itemset
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			a, b := frequent[i].items, frequent[j].items
			if !samePrefix(a, b) {
				continue
			}
			merged := make([]int, len(a)+1)
			copy(merged, a)
			last := b[len(b)-1]
			if last < a[len(a)-1] {
				merged[len(a)-1], merged[len(a)] = last, a[len(a)-1]
			} else {
				merged[len(a)] = last
			}
			if allSubsetsFrequent(merged, known) {
				out = append(out, itemset{items: merged})
			}
		}
	}
	return out
}

// samePrefix reports whether two equal-length sorted itemsets share all
// but their last element.
func samePrefix(a, b []int) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

// allSubsetsFrequent checks the Apriori downward-closure property.
func allSubsetsFrequent(items []int, known map[uint64]bool) bool {
	if len(items) <= 2 {
		return true // subsets were the joined pair, frequent by construction
	}
	sub := make([]int, 0, len(items)-1)
	for skip := range items {
		sub = sub[:0]
		for i, it := range items {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !known[pack(sub)] {
			return false
		}
	}
	return true
}
