package assoc

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

func set(target int, items ...int) learner.EventSet {
	return learner.EventSet{Items: learner.NormalizeBody(items), Target: target}
}

func findRule(rules []learner.Rule, id string) (learner.Rule, bool) {
	for _, r := range rules {
		if r.ID() == id {
			return r, true
		}
	}
	return learner.Rule{}, false
}

func TestMineSimpleRule(t *testing.T) {
	l := New()
	// 10 transactions; {1,2} => 99 in 8 of them; {3} => 98 in 2.
	var sets []learner.EventSet
	for i := 0; i < 8; i++ {
		sets = append(sets, set(99, 1, 2))
	}
	sets = append(sets, set(98, 3), set(98, 3))
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := findRule(rules, "assoc:1,2=>99")
	if !ok {
		t.Fatalf("rule {1,2}=>99 not mined; got %v", rules)
	}
	if r.Confidence != 1.0 {
		t.Errorf("confidence = %g, want 1.0", r.Confidence)
	}
	if r.Support != 0.8 {
		t.Errorf("support = %g, want 0.8", r.Support)
	}
	// Singleton sub-rules should exist too.
	if _, ok := findRule(rules, "assoc:1=>99"); !ok {
		t.Error("singleton rule 1=>99 missing")
	}
	if _, ok := findRule(rules, "assoc:3=>98"); !ok {
		t.Error("rule 3=>98 missing")
	}
}

func TestMineConfidenceAccountsForOtherTargets(t *testing.T) {
	l := New()
	l.MinConfidence = 0.0
	var sets []learner.EventSet
	// Item 5 precedes target 99 in 6 sets and target 98 in 4: conf 0.6/0.4.
	for i := 0; i < 6; i++ {
		sets = append(sets, set(99, 5))
	}
	for i := 0; i < 4; i++ {
		sets = append(sets, set(98, 5))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	r99, _ := findRule(rules, "assoc:5=>99")
	r98, _ := findRule(rules, "assoc:5=>98")
	if r99.Confidence != 0.6 || r98.Confidence != 0.4 {
		t.Errorf("confidences %g/%g, want 0.6/0.4", r99.Confidence, r98.Confidence)
	}
}

func TestMineRespectsMinSupport(t *testing.T) {
	l := New()
	l.MinSupport = 0.3
	var sets []learner.EventSet
	for i := 0; i < 9; i++ {
		sets = append(sets, set(99, 1))
	}
	sets = append(sets, set(98, 2)) // support 0.1 < 0.3
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findRule(rules, "assoc:2=>98"); ok {
		t.Error("low-support rule survived")
	}
	if _, ok := findRule(rules, "assoc:1=>99"); !ok {
		t.Error("high-support rule missing")
	}
}

func TestMineRespectsMinConfidence(t *testing.T) {
	l := New()
	l.MinConfidence = 0.5
	var sets []learner.EventSet
	// Item 1 appears in 10 sets but leads to 99 only 3 times (conf 0.3).
	for i := 0; i < 3; i++ {
		sets = append(sets, set(99, 1))
	}
	for i := 0; i < 7; i++ {
		sets = append(sets, set(98, 1))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findRule(rules, "assoc:1=>99"); ok {
		t.Error("low-confidence rule survived")
	}
	if _, ok := findRule(rules, "assoc:1=>98"); !ok {
		t.Error("conf-0.7 rule missing")
	}
}

func TestMineMaxBodyCap(t *testing.T) {
	l := New()
	l.MaxBody = 2
	var sets []learner.EventSet
	for i := 0; i < 10; i++ {
		sets = append(sets, set(99, 1, 2, 3))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Body) > 2 {
			t.Errorf("rule body exceeds cap: %v", r)
		}
	}
	if _, ok := findRule(rules, "assoc:1,2=>99"); !ok {
		t.Error("pair rule missing")
	}
}

func TestMineTripleBody(t *testing.T) {
	l := New()
	var sets []learner.EventSet
	for i := 0; i < 10; i++ {
		sets = append(sets, set(99, 1, 2, 3))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findRule(rules, "assoc:1,2,3=>99"); !ok {
		t.Error("triple rule missing with MaxBody=3")
	}
}

func TestMineEmptyInput(t *testing.T) {
	rules, err := New().Mine(nil)
	if err != nil || rules != nil {
		t.Errorf("Mine(nil) = %v, %v", rules, err)
	}
}

func TestMineDeterministicOrder(t *testing.T) {
	sets := []learner.EventSet{
		set(99, 1, 2), set(99, 1, 2), set(98, 3), set(98, 3),
		set(97, 1, 3), set(97, 1, 3),
	}
	a, _ := New().Mine(sets)
	b, _ := New().Mine(sets)
	if len(a) != len(b) {
		t.Fatal("nondeterministic rule count")
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].ID(), b[i].ID())
		}
	}
}

func TestLearnEndToEnd(t *testing.T) {
	// A stream where classes {1, 2} precede fatal 99 twenty times.
	var events []preprocess.TaggedEvent
	mk := func(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
		return preprocess.TaggedEvent{
			Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
		}
	}
	for i := int64(0); i < 20; i++ {
		base := i * 10_000
		events = append(events,
			mk(base, 1, false), mk(base+50, 2, false), mk(base+120, 99, true))
	}
	rules, err := New().Learn(learner.Prepare(events), learner.Params{WindowSec: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findRule(rules, "assoc:1,2=>99"); !ok {
		t.Fatalf("end-to-end rule missing; got %v", rules)
	}
}

func TestPackInjective(t *testing.T) {
	// Distinct sorted itemsets must pack to distinct keys across the full
	// class-ID range (catalog classes and unknown-event fallbacks).
	seen := make(map[uint64][]int)
	r := stats.NewRNG(3)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(3)
		items := make([]int, n)
		for i := range items {
			items[i] = r.Intn(2000)
		}
		items = learner.NormalizeBody(items)
		key := pack(items)
		if prev, ok := seen[key]; ok && !equalInts(prev, items) {
			t.Fatalf("collision: %v and %v -> %d", prev, items, key)
		}
		seen[key] = append([]int(nil), items...)
	}
}

func TestMaxRulesCapKeepsBest(t *testing.T) {
	l := New()
	l.MaxRules = 2
	l.MinConfidence = 0
	var sets []learner.EventSet
	// Three disjoint patterns with confidences 1.0, 1.0, 0.5.
	for i := 0; i < 10; i++ {
		sets = append(sets, set(99, 1))
		sets = append(sets, set(98, 2))
	}
	for i := 0; i < 5; i++ {
		sets = append(sets, set(97, 3))
		sets = append(sets, set(96, 3))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("cap ignored: %d rules", len(rules))
	}
	for _, r := range rules {
		if r.Confidence < 1.0 {
			t.Errorf("cap kept low-confidence rule %v", r)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPackSupportsFourItemBodies(t *testing.T) {
	// maxClassBits must accommodate MaxBody=4 without collisions (the
	// Apriori-depth ablation exercises depth 4).
	seen := make(map[uint64][]int)
	r := stats.NewRNG(9)
	for trial := 0; trial < 5000; trial++ {
		items := make([]int, 4)
		for i := range items {
			items[i] = r.Intn(1200) // catalog + unknown-fallback range
		}
		items = learner.NormalizeBody(items)
		key := pack(items)
		if prev, ok := seen[key]; ok && !equalInts(prev, items) {
			t.Fatalf("collision: %v and %v -> %d", prev, items, key)
		}
		seen[key] = append([]int(nil), items...)
	}
}

func TestMaxBodyClampedToPackLimit(t *testing.T) {
	l := New()
	l.MaxBody = 9 // beyond the packable limit
	var sets []learner.EventSet
	for i := 0; i < 10; i++ {
		sets = append(sets, set(99, 1, 2, 3, 4, 5))
	}
	rules, err := l.Mine(sets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Body) > 4 {
			t.Fatalf("body of %d items escaped the pack limit", len(r.Body))
		}
	}
}
