package assoc

import (
	"reflect"
	"testing"

	"repro/internal/learner"
	"repro/internal/stats"
)

// synthSets builds n synthetic transactions with planted co-occurrence
// structure plus noise — enough volume to split across several counting
// shards (minSetsPerWorker apart).
func synthSets(seed uint64, n int) []learner.EventSet {
	r := stats.NewRNG(seed)
	sets := make([]learner.EventSet, 0, n)
	for i := 0; i < n; i++ {
		var items []int
		// Planted pattern: {1,2} precedes target 99 in a third of sets.
		if i%3 == 0 {
			items = append(items, 1, 2)
		}
		if i%5 == 0 {
			items = append(items, 3, 4, 5)
		}
		for j := r.Intn(6); j > 0; j-- {
			items = append(items, 10+r.Intn(25))
		}
		if len(items) == 0 {
			items = append(items, 10+r.Intn(25))
		}
		target := 99
		if i%4 == 0 {
			target = 98
		}
		sets = append(sets, learner.EventSet{
			Items:  learner.NormalizeBody(items),
			Target: target,
		})
	}
	return sets
}

// TestMineParallelMatchesSerial pins sharded Apriori counting to the
// serial scan: identical rules, in identical order, at any parallelism.
func TestMineParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{2, 31} {
		sets := synthSets(seed, 3000)
		serial := New()
		serial.Parallelism = 1
		want, err := serial.Mine(sets)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatal("degenerate comparison — serial mining found nothing")
		}
		for _, workers := range []int{0, 2, 5} {
			l := New()
			l.Parallelism = workers
			got, err := l.Mine(sets)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d parallelism %d: %d rules vs %d, or order diverged",
					seed, workers, len(got), len(want))
			}
		}
	}
}

// BenchmarkMine measures the Apriori hot path with allocation reporting
// (run with -benchmem): the dense frequent-item counting and association-
// list target counters are the satellite allocation work of this PR.
func BenchmarkMine(b *testing.B) {
	sets := synthSets(8, 5000)
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			l := New()
			l.Parallelism = tc.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Mine(sets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
