// Package learner defines the common vocabulary of the framework's base
// learners: the Rule type stored in the knowledge repository, the Learner
// interface each predictive method implements, and helpers for building
// training views (event sets, fatal inter-arrival gaps) from a tagged
// event stream.
//
// Three base learners implement the interface, mirroring the paper:
// association rules (package assoc), statistical failure-count rules
// (package statrule), and the fatal inter-arrival probability distribution
// (package probdist).
package learner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Kind discriminates the three rule families.
type Kind int

// The rule families, in the meta-learner's mixture-of-experts order.
const (
	Association Kind = iota
	Statistical
	Distribution
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case Association:
		return "association"
	case Statistical:
		return "statistical"
	case Distribution:
		return "distribution"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AnyFatal is the Target value of rules that predict "some failure" rather
// than a specific fatal class.
const AnyFatal = -1

// Rule is one learned failure pattern. A single concrete type covers all
// three families so the knowledge repository, the reviser, and the
// rule-churn tracker can treat rules uniformly; Kind selects which fields
// are meaningful.
type Rule struct {
	Kind Kind

	// Association: Body is the sorted antecedent (non-fatal class IDs) and
	// Target the predicted fatal class. Confidence and Support are the
	// mining statistics.
	Body       []int
	Target     int
	Confidence float64
	Support    float64

	// Statistical: Count is k in "k failures within W_P predict another";
	// Confidence is the estimated probability.
	Count int

	// Distribution: Dist is the fitted inter-arrival model and ElapsedSec
	// the trigger point — warn once the time since the last failure
	// exceeds it (equivalently, CDF(elapsed) > Confidence).
	Dist       stats.Distribution
	ElapsedSec int64
}

// ID returns the rule's stable identity, used for knowledge-repository
// deduplication and for the rule-churn accounting of Figure 12. Two rules
// with the same ID express the same pattern (their statistics may differ).
func (r Rule) ID() string {
	switch r.Kind {
	case Association:
		parts := make([]string, len(r.Body))
		for i, c := range r.Body {
			parts[i] = fmt.Sprint(c)
		}
		return fmt.Sprintf("assoc:%s=>%d", strings.Join(parts, ","), r.Target)
	case Statistical:
		return fmt.Sprintf("stat:k=%d", r.Count)
	case Distribution:
		name := "none"
		if r.Dist != nil {
			name = r.Dist.Name()
		}
		// Bucket the trigger point so refits that barely move do not count
		// as rule churn, while real shifts do.
		return fmt.Sprintf("dist:%s@%d", name, bucket(r.ElapsedSec))
	default:
		return fmt.Sprintf("unknown:%d", int(r.Kind))
	}
}

// bucket quantizes seconds to a coarse geometric grid (~1.5× steps) for
// Distribution IDs, returning the largest grid point not above sec.
func bucket(sec int64) int64 {
	if sec <= 0 {
		return 0
	}
	b := int64(1)
	for next := b*3/2 + 1; next <= sec; next = b*3/2 + 1 {
		b = next
	}
	return b
}

// String formats the rule for reports.
func (r Rule) String() string {
	switch r.Kind {
	case Association:
		return fmt.Sprintf("%s (conf=%.2f sup=%.3f)", r.ID(), r.Confidence, r.Support)
	case Statistical:
		return fmt.Sprintf("%s (p=%.2f)", r.ID(), r.Confidence)
	case Distribution:
		return fmt.Sprintf("%s (theta=%.2f, %v)", r.ID(), r.Confidence, r.Dist)
	default:
		return r.ID()
	}
}

// NormalizeBody sorts and deduplicates an association-rule body in place,
// returning the normalized slice.
func NormalizeBody(body []int) []int {
	sort.Ints(body)
	out := body[:0]
	for i, v := range body {
		if i == 0 || v != body[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Params carries the training-wide settings every learner needs.
type Params struct {
	// WindowSec is the rule-generation window W_P in seconds (the paper's
	// default is 300).
	WindowSec int64
}

// Window returns the window in milliseconds (the event timestamp unit).
func (p Params) Window() int64 { return p.WindowSec * 1000 }

// Learner is one predictive method: it studies a prepared training view
// (the time-sorted stream plus shared, lazily-built derivations of it —
// see Prepared) and produces candidate rules for the knowledge repository.
type Learner interface {
	// Name identifies the learner in reports ("association", ...).
	Name() string
	// Learn mines rules from the prepared training view. Learn must be
	// safe to call concurrently with the other learners of an ensemble
	// sharing the same Prepared.
	Learn(tr *Prepared, p Params) ([]Rule, error)
}
