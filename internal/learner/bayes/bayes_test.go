package bayes

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

var p300 = learner.Params{WindowSec: 300}

func mk(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

// indicatorStream: class 1 precedes fatal 99 reliably; class 2 occurs
// everywhere (uninformative); class 3 occurs only far from failures.
func indicatorStream() []preprocess.TaggedEvent {
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 40; i++ {
		events = append(events,
			mk(tm, 1, false), mk(tm+30, 2, false), mk(tm+120, 99, true))
		tm += 4000
		events = append(events, mk(tm, 2, false), mk(tm+10, 3, false))
		tm += 4000
	}
	return events
}

func TestLearnFindsIndicator(t *testing.T) {
	rules, err := New().Learn(learner.Prepare(indicatorStream()), p300)
	if err != nil {
		t.Fatal(err)
	}
	var found, badTwo, badThree bool
	for _, r := range rules {
		if r.Kind != learner.Association || len(r.Body) != 1 {
			t.Fatalf("unexpected rule shape %+v", r)
		}
		switch r.Body[0] {
		case 1:
			found = true
			if r.Target != 99 {
				t.Errorf("indicator target = %d, want 99", r.Target)
			}
			if r.Confidence < 0.9 {
				t.Errorf("indicator confidence = %g", r.Confidence)
			}
		case 2:
			badTwo = true
		case 3:
			badThree = true
		}
	}
	if !found {
		t.Fatalf("reliable indicator not mined: %v", rules)
	}
	if badTwo {
		t.Error("uninformative class became a rule")
	}
	if badThree {
		t.Error("anti-correlated class became a rule")
	}
}

func TestLearnEmptyAndDegenerate(t *testing.T) {
	l := New()
	rules, err := l.Learn(learner.Prepare(nil), p300)
	if err != nil || rules != nil {
		t.Errorf("empty stream: %v %v", rules, err)
	}
	// Only fatals: no non-fatal occurrences at all.
	rules, err = l.Learn(learner.Prepare([]preprocess.TaggedEvent{mk(0, 99, true), mk(10, 98, true)}), p300)
	if err != nil || rules != nil {
		t.Errorf("fatal-only stream: %v %v", rules, err)
	}
	// Only non-fatals: no positives.
	rules, err = l.Learn(learner.Prepare([]preprocess.TaggedEvent{mk(0, 1, false), mk(10, 2, false)}), p300)
	if err != nil || rules != nil {
		t.Errorf("no-fatal stream: %v %v", rules, err)
	}
}

func TestMinOccurrences(t *testing.T) {
	// Indicator appears before failures only 3 times: below the floor.
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 3; i++ {
		events = append(events, mk(tm, 1, false), mk(tm+60, 99, true))
		tm += 4000
	}
	for i := 0; i < 30; i++ { // negatives so the ratio is defined
		events = append(events, mk(tm, 2, false))
		tm += 4000
	}
	rules, err := New().Learn(learner.Prepare(events), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Errorf("under-supported indicator mined: %v", rules)
	}
}

func TestMaxRulesCap(t *testing.T) {
	l := New()
	l.MaxRules = 2
	l.MinLikelihoodRatio = 1
	l.MinOccurrences = 1
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 20; i++ {
		events = append(events,
			mk(tm, 1, false), mk(tm+10, 2, false), mk(tm+20, 3, false),
			mk(tm+30, 4, false), mk(tm+60, 99, true))
		tm += 4000
		events = append(events, mk(tm, 5, false))
		tm += 4000
	}
	rules, err := l.Learn(learner.Prepare(events), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) > 2 {
		t.Errorf("cap ignored: %d rules", len(rules))
	}
}

func TestRulesWorkInPredictor(t *testing.T) {
	// Bayes rules are plain association rules: the predictor must fire
	// them without modification.
	rules, err := New().Learn(learner.Prepare(indicatorStream()), p300)
	if err != nil || len(rules) == 0 {
		t.Fatalf("no rules: %v", err)
	}
	// learner.Rule with Body {1} fires on class-1 events; verified via
	// the rule's shape (integration covered in internal/meta tests).
	for _, r := range rules {
		if r.ID() == "" {
			t.Error("rule has empty ID")
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	a, _ := New().Learn(learner.Prepare(indicatorStream()), p300)
	b, _ := New().Learn(learner.Prepare(indicatorStream()), p300)
	if len(a) != len(b) {
		t.Fatal("nondeterministic rule count")
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("order differs at %d", i)
		}
	}
}
