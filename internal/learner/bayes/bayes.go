// Package bayes implements an optional fourth base learner, following the
// paper's future-work note that "other data mining methods, such as
// decision tree and neural network", can popularize the base-learner set
// and that "other predictive methods can be easily incorporated into our
// framework".
//
// The learner is a naive-Bayes classifier over the rule-generation
// window: for every non-fatal class c it estimates
//
//	lr(c) = P(c in window | failure follows within W_P)
//	        -----------------------------------------------
//	        P(c in window | no failure follows within W_P)
//
// with Laplace smoothing, plus the prior odds of "a failure follows this
// event within W_P". At prediction time the posterior odds of the classes
// present in the current window decide whether to warn. Rules produced by
// this learner carry Kind learner.Association with a single-class body —
// one rule per strongly-indicative class — so the existing predictor,
// reviser and repository machinery consume them unchanged; the Bayes
// computation happens at mining time, not match time.
package bayes

import (
	"math"
	"sort"

	"repro/internal/learner"
	"repro/internal/preprocess"
)

// Learner mines single-class Bayesian indicator rules.
type Learner struct {
	// MinLikelihoodRatio is the minimum lr(c) for a class to become an
	// indicator rule (default 5: the class must be five times likelier
	// ahead of failures than elsewhere).
	MinLikelihoodRatio float64
	// MinOccurrences is the minimum number of pre-failure windows the
	// class must appear in (default 5).
	MinOccurrences int
	// MaxRules caps the output (default 100).
	MaxRules int
}

// New returns a learner with default parameters.
func New() *Learner {
	return &Learner{MinLikelihoodRatio: 5, MinOccurrences: 5, MaxRules: 100}
}

// Name implements learner.Learner.
func (l *Learner) Name() string { return "bayes" }

// Learn implements learner.Learner. It slides over the stream once,
// counting for every non-fatal class how many of its occurrences are
// followed by a fatal event within the window versus not, then emits an
// indicator rule per class whose likelihood ratio clears the threshold.
// When the prepared view carries maintained class tallies for this window
// (incremental retraining), the scan is skipped and the identical rules
// are emitted straight from the counts.
func (l *Learner) Learn(tr *learner.Prepared, p learner.Params) ([]learner.Rule, error) {
	if src := tr.Tallies; src != nil && src.CanServeTallies(p.Window()) {
		perClass, positives, negatives := src.Tallies()
		return l.rulesFromTallies(perClass, positives, negatives), nil
	}
	events := tr.Events
	window := p.Window()

	// nextFatalAfter[i]: timestamp of the first fatal strictly after
	// events[i], or -1.
	nextFatal := make([]int64, len(events))
	next := int64(-1)
	for i := len(events) - 1; i >= 0; i-- {
		nextFatal[i] = next
		if events[i].Fatal {
			next = events[i].Time
		}
	}

	type counts struct {
		followed    int // occurrences followed by a fatal within the window
		notFollowed int
		target      map[int]int // fatal class frequencies when followed
	}
	perClass := make(map[int]*counts)
	positives, negatives := 0, 0
	for i := range events {
		if events[i].Fatal {
			continue
		}
		followed := nextFatal[i] >= 0 && nextFatal[i]-events[i].Time <= window
		c := perClass[events[i].Class]
		if c == nil {
			c = &counts{target: make(map[int]int)}
			perClass[events[i].Class] = c
		}
		if followed {
			c.followed++
			positives++
			// Attribute the occurrence to the fatal class it preceded.
			c.target[classOfFatalAt(events, i, nextFatal[i])]++
		} else {
			c.notFollowed++
			negatives++
		}
	}

	// Project the maps into the canonical sorted tally form and share the
	// emission path with the incremental counts.
	tallies := make([]learner.ClassTally, 0, len(perClass))
	for class, c := range perClass {
		t := learner.ClassTally{Class: class, Followed: c.followed, NotFollowed: c.notFollowed}
		for f, n := range c.target {
			t.Targets = append(t.Targets, learner.TargetCount{Target: f, Count: n})
		}
		sort.Slice(t.Targets, func(i, j int) bool { return t.Targets[i].Target < t.Targets[j].Target })
		tallies = append(tallies, t)
	}
	sort.Slice(tallies, func(i, j int) bool { return tallies[i].Class < tallies[j].Class })
	return l.rulesFromTallies(tallies, positives, negatives), nil
}

// rulesFromTallies emits indicator rules from per-class tallies (sorted
// by class, targets sorted by target class). The target tie-break is
// deterministic — highest count, then smallest class ID — so the batch
// scan and the incremental maintainer produce identical rules no matter
// what order their internals accumulated counts in.
func (l *Learner) rulesFromTallies(perClass []learner.ClassTally, positives, negatives int) []learner.Rule {
	if positives == 0 || negatives == 0 {
		return nil
	}
	var rules []learner.Rule
	for i := range perClass {
		c := &perClass[i]
		if c.Followed < l.MinOccurrences {
			continue
		}
		// Laplace-smoothed likelihood ratio.
		pPos := (float64(c.Followed) + 1) / (float64(positives) + 2)
		pNeg := (float64(c.NotFollowed) + 1) / (float64(negatives) + 2)
		lr := pPos / pNeg
		if lr < l.MinLikelihoodRatio {
			continue
		}
		// The most frequent fatal class this indicator precedes; ties go
		// to the smallest class ID (Targets is sorted ascending, so the
		// first maximum wins).
		target, best := learner.AnyFatal, 0
		for _, tc := range c.Targets {
			if tc.Count > best {
				target, best = tc.Target, tc.Count
			}
		}
		confidence := float64(c.Followed) / float64(c.Followed+c.NotFollowed)
		rules = append(rules, learner.Rule{
			Kind:       learner.Association,
			Body:       []int{c.Class},
			Target:     target,
			Confidence: confidence,
			Support:    math.Min(1, float64(c.Followed)/float64(positives)),
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].ID() < rules[j].ID()
	})
	if l.MaxRules > 0 && len(rules) > l.MaxRules {
		rules = rules[:l.MaxRules]
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID() < rules[j].ID() })
	return rules
}

// classOfFatalAt finds the class of the fatal event at timestamp t,
// searching forward from index i.
func classOfFatalAt(events []preprocess.TaggedEvent, i int, t int64) int {
	for j := i + 1; j < len(events); j++ {
		if events[j].Fatal && events[j].Time == t {
			return events[j].Class
		}
		if events[j].Time > t {
			break
		}
	}
	return learner.AnyFatal
}
