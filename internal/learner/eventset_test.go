package learner

import (
	"testing"

	"repro/internal/preprocess"
	"repro/internal/raslog"
)

func taggedMs(tMs int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{Event: raslog.Event{Time: tMs}, Class: class, Fatal: fatal}
}

// TestBuildEventSetsWindowBoundary pins the W_P boundary convention the
// online predictor also follows (predictor.TestWindowBoundaryInclusive):
// a precursor exactly W_P before the fatal is inside the window, one
// millisecond earlier is out.
func TestBuildEventSetsWindowBoundary(t *testing.T) {
	p := Params{WindowSec: 300}
	wp := p.Window()

	in := []preprocess.TaggedEvent{taggedMs(0, 1, false), taggedMs(wp, 9, true)}
	sets := BuildEventSets(in, p, 0)
	if len(sets) != 1 {
		t.Fatalf("precursor exactly W_P old: got %d sets, want 1", len(sets))
	}
	if len(sets[0].Items) != 1 || sets[0].Items[0] != 1 || sets[0].Target != 9 {
		t.Errorf("set = %+v, want item 1 preceding target 9", sets[0])
	}

	out := []preprocess.TaggedEvent{taggedMs(0, 1, false), taggedMs(wp+1, 9, true)}
	if sets := BuildEventSets(out, p, 0); len(sets) != 0 {
		t.Fatalf("precursor W_P+1ms old produced a set: %+v", sets)
	}
}
