// Package probdist implements the probability-distribution base learner
// (paper §4.1): it fits Weibull, exponential and log-normal models to the
// inter-arrival times of fatal events by maximum likelihood, keeps the
// best-fitting CDF, and warns once the elapsed time since the last failure
// makes the CDF exceed a threshold. On the paper's SDSC training set the
// best fit is F(t) = 1 - exp(-(t/19984.8)^0.507936); with threshold 0.6 a
// warning fires once ~20,000 s have elapsed (F(20000) = 0.63).
package probdist

import (
	"errors"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/stats"
)

// ErrTooFewFailures is returned when the training stream holds too few
// fatal inter-arrival gaps to fit a distribution.
var ErrTooFewFailures = errors.New("probdist: too few fatal inter-arrivals to fit")

// Learner fits the long-term failure inter-arrival distribution.
type Learner struct {
	// Threshold is the CDF level at which a warning triggers (paper
	// default 0.6).
	Threshold float64
	// MinGaps is the minimum number of inter-arrival observations
	// (default 10).
	MinGaps int
	// LongTermOnly restricts the fit to gaps longer than FloorSec.
	// Failures within minutes of each other are the statistical expert's
	// domain (bursts); this expert models the long-term behaviour "in the
	// order of hours or even days" (paper §4.1), and folding burst gaps
	// into its fit would collapse the trigger point to minutes. Default
	// true.
	LongTermOnly bool
	// FloorSec is the burst-timescale cutoff for LongTermOnly (default
	// 300 — the paper's default rule-generation window; deliberately NOT
	// tied to the prediction window being evaluated, so sweeping W_P does
	// not change what "long-term" means).
	FloorSec int64
}

// New returns a learner with the paper's parameters.
func New() *Learner {
	return &Learner{Threshold: 0.6, MinGaps: 10, LongTermOnly: true, FloorSec: 300}
}

// Name implements learner.Learner.
func (l *Learner) Name() string { return "distribution" }

// Learn implements learner.Learner: it produces at most one Distribution
// rule carrying the best-fitting model and its trigger point. The
// inter-arrival gaps come from the shared prepared view; the long-term
// filter copies rather than mutates them.
func (l *Learner) Learn(tr *learner.Prepared, p learner.Params) ([]learner.Rule, error) {
	gaps := tr.FatalGaps()
	if l.LongTermOnly {
		floor := float64(l.FloorSec)
		if floor <= 0 {
			floor = float64(p.WindowSec)
		}
		long := gaps[:0:0]
		for _, g := range gaps {
			if g > floor {
				long = append(long, g)
			}
		}
		gaps = long
	}
	return l.MineGaps(gaps)
}

// MineGaps fits directly from inter-arrival gaps in seconds.
func (l *Learner) MineGaps(gaps []float64) ([]learner.Rule, error) {
	minGaps := l.MinGaps
	if minGaps < 2 {
		minGaps = 2
	}
	if len(gaps) < minGaps {
		return nil, ErrTooFewFailures
	}
	best, fits, err := stats.FitBest(gaps)
	if err != nil {
		return nil, err
	}
	dist := fits[best].Dist
	trigger := dist.Quantile(l.Threshold)
	if trigger < 1 {
		trigger = 1
	}
	return []learner.Rule{{
		Kind:       learner.Distribution,
		Target:     learner.AnyFatal,
		Confidence: l.Threshold,
		Dist:       dist,
		ElapsedSec: int64(trigger),
		Support:    float64(len(gaps)),
	}}, nil
}

// Fit exposes the full candidate-fit report (all three families with
// log-likelihood and KS statistics) for Figure 5.
func (l *Learner) Fit(events []preprocess.TaggedEvent) (best int, fits []stats.FitResult, err error) {
	gaps := learner.FatalGaps(events)
	if len(gaps) < 2 {
		return -1, nil, ErrTooFewFailures
	}
	return stats.FitBest(gaps)
}
