package probdist

import (
	"errors"
	"math"
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

func TestMineGapsPaperExample(t *testing.T) {
	// Sample from the paper's SDSC fit and confirm the learner recovers a
	// Weibull with a trigger near F^-1(0.6) ≈ 20,000 s.
	truth := stats.Weibull{Scale: 19984.8, Shape: 0.507936}
	r := stats.NewRNG(42)
	gaps := make([]float64, 20000)
	for i := range gaps {
		gaps[i] = truth.Sample(r)
	}
	rules, err := New().MineGaps(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(rules))
	}
	rule := rules[0]
	if rule.Kind != learner.Distribution || rule.Target != learner.AnyFatal {
		t.Errorf("rule = %+v", rule)
	}
	if rule.Dist.Name() != "weibull" {
		t.Errorf("fitted family = %s, want weibull", rule.Dist.Name())
	}
	want := truth.Quantile(0.6)
	if math.Abs(float64(rule.ElapsedSec)-want) > 0.15*want {
		t.Errorf("trigger = %d s, want ~%.0f s", rule.ElapsedSec, want)
	}
}

func TestMineGapsTooFew(t *testing.T) {
	_, err := New().MineGaps([]float64{100, 200})
	if !errors.Is(err, ErrTooFewFailures) {
		t.Errorf("err = %v, want ErrTooFewFailures", err)
	}
}

func TestMineGapsThresholdMovesTrigger(t *testing.T) {
	truth := stats.Exponential{Scale: 10000}
	r := stats.NewRNG(7)
	gaps := make([]float64, 5000)
	for i := range gaps {
		gaps[i] = truth.Sample(r)
	}
	low := New()
	low.Threshold = 0.3
	high := New()
	high.Threshold = 0.9
	rl, err1 := low.MineGaps(gaps)
	rh, err2 := high.MineGaps(gaps)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if rl[0].ElapsedSec >= rh[0].ElapsedSec {
		t.Errorf("trigger not monotone in threshold: %d vs %d",
			rl[0].ElapsedSec, rh[0].ElapsedSec)
	}
}

func TestLearnFromTaggedStream(t *testing.T) {
	mk := func(tSec int64, fatal bool) preprocess.TaggedEvent {
		return preprocess.TaggedEvent{
			Event: raslog.Event{Time: tSec * 1000}, Class: 1, Fatal: fatal,
		}
	}
	var events []preprocess.TaggedEvent
	truth := stats.Weibull{Scale: 15000, Shape: 0.6}
	r := stats.NewRNG(11)
	tm := int64(0)
	for i := 0; i < 500; i++ {
		tm += int64(truth.Sample(r))
		events = append(events, mk(tm, true))
	}
	rules, err := New().Learn(learner.Prepare(events), learner.Params{WindowSec: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Dist == nil {
		t.Fatalf("rules = %v", rules)
	}
	if rules[0].ElapsedSec <= 0 {
		t.Errorf("non-positive trigger %d", rules[0].ElapsedSec)
	}
}

func TestFitReportsAllFamilies(t *testing.T) {
	mk := func(tSec int64) preprocess.TaggedEvent {
		return preprocess.TaggedEvent{
			Event: raslog.Event{Time: tSec * 1000}, Class: 1, Fatal: true,
		}
	}
	var events []preprocess.TaggedEvent
	r := stats.NewRNG(13)
	tm := int64(0)
	for i := 0; i < 300; i++ {
		tm += int64(1000 + r.Intn(50000))
		events = append(events, mk(tm))
	}
	best, fits, err := New().Fit(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("got %d fits", len(fits))
	}
	if best < 0 || fits[best].Dist == nil {
		t.Fatalf("best = %d", best)
	}
}

func TestFitTooFew(t *testing.T) {
	if _, _, err := New().Fit(nil); !errors.Is(err, ErrTooFewFailures) {
		t.Errorf("err = %v", err)
	}
}

func TestTriggerAtLeastOneSecond(t *testing.T) {
	// Pathological tiny gaps must not produce a zero/negative trigger.
	gaps := make([]float64, 50)
	for i := range gaps {
		gaps[i] = 0.001 + 0.0001*float64(i)
	}
	rules, err := New().MineGaps(gaps)
	if err != nil {
		t.Skipf("degenerate fit rejected: %v", err)
	}
	if rules[0].ElapsedSec < 1 {
		t.Errorf("trigger %d < 1 s", rules[0].ElapsedSec)
	}
}
