package learner

import "repro/internal/preprocess"

// EventSet is one association-rule transaction (paper §4.1): the distinct
// non-fatal classes observed within the rule-generation window before one
// fatal event, together with that fatal event's class.
type EventSet struct {
	Items  []int // sorted distinct non-fatal class IDs
	Target int   // the fatal class the items preceded
	Time   int64 // timestamp (ms) of the fatal event the set precedes
}

// BuildEventSets scans a time-sorted tagged stream and emits one EventSet
// per fatal event that has at least one non-fatal precursor within the
// window. maxItems caps the itemset size (0 = unlimited); when exceeded,
// the most recent classes are kept.
func BuildEventSets(events []preprocess.TaggedEvent, p Params, maxItems int) []EventSet {
	return buildEventSetsRange(events, 0, 0, len(events), p.Window(), maxItems)
}

// buildEventSetsRange emits the event sets of the fatal events with index
// in [fatalLo, fatalHi), with the precursor lookback truncated at index lo
// — the generalized core of BuildEventSets, reused by EventSetCache to
// rebuild only window-boundary and freshly-arrived segments.
func buildEventSetsRange(events []preprocess.TaggedEvent, lo, fatalLo, fatalHi int, windowMs int64, maxItems int) []EventSet {
	var sets []EventSet
	for i := fatalLo; i < fatalHi; i++ {
		if !events[i].Fatal {
			continue
		}
		t := events[i].Time
		seen := make(map[int]bool)
		var items []int
		// Walk backwards over the window, collecting the most recent
		// distinct non-fatal classes first.
		for j := i - 1; j >= lo; j-- {
			if t-events[j].Time > windowMs {
				break
			}
			if events[j].Fatal || seen[events[j].Class] {
				continue
			}
			seen[events[j].Class] = true
			items = append(items, events[j].Class)
			if maxItems > 0 && len(items) >= maxItems {
				break
			}
		}
		if len(items) == 0 {
			continue
		}
		sets = append(sets, EventSet{
			Items:  NormalizeBody(items),
			Target: events[i].Class,
			Time:   t,
		})
	}
	return sets
}

// FatalGaps returns the inter-arrival gaps (seconds) between consecutive
// fatal events in a time-sorted tagged stream — the sample the
// probability-distribution learner fits (Figure 5).
func FatalGaps(events []preprocess.TaggedEvent) []float64 {
	var gaps []float64
	last := int64(-1)
	for i := range events {
		if !events[i].Fatal {
			continue
		}
		if last >= 0 {
			gap := float64(events[i].Time-last) / 1000
			if gap > 0 {
				gaps = append(gaps, gap)
			}
		}
		last = events[i].Time
	}
	return gaps
}

// FatalTimes returns the timestamps (ms) of fatal events in the stream.
func FatalTimes(events []preprocess.TaggedEvent) []int64 {
	var ts []int64
	for i := range events {
		if events[i].Fatal {
			ts = append(ts, events[i].Time)
		}
	}
	return ts
}
