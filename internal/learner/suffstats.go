package learner

// Windowed sufficient-statistic interfaces: the contract between the base
// learners and an incremental maintainer (internal/learner/incr) that
// keeps per-window counts up to date as events enter and expire from the
// sliding training window. Each interface serves exactly the integer
// counts the corresponding learner's batch pass would derive from the raw
// stream, so mining from them is byte-identical to mining from scratch
// (identical integers divide into identical float64 statistics).
//
// Every interface carries a CanServe guard: the maintainer was configured
// for one (window, learner-shape) combination, and a learner asking with
// different parameters must fall back to its batch path. All methods are
// read-only and safe for the concurrent learner ensemble, provided no
// Advance runs during the training pass (the retrain flow sequences them).

// TargetCount is one (fatal class, count) pair of a per-target tally.
type TargetCount struct {
	Target int
	Count  int
}

// ItemsetCounts serves Apriori sufficient statistics: for any itemset up
// to the maintained body size, how many transactions (event sets) of the
// current window contain it, globally and per fatal target class.
type ItemsetCounts interface {
	// CanServeItemsets reports whether the maintained counts match this
	// mining configuration exactly: same rule-generation window, same
	// per-transaction item cap, and a maintained body size at least
	// maxBody (subset counts of larger bodies include the smaller ones).
	CanServeItemsets(windowMs int64, maxItems, maxBody int) bool
	// NumSets is the number of transactions in the window.
	NumSets() int
	// FrequentItems returns, ascending, the items contained in at least
	// minCount transactions — the Apriori level-1 pass.
	FrequentItems(minCount int) []int
	// ItemsetCount returns how many transactions contain the (sorted)
	// itemset, globally and split by target class. The returned slice is
	// shared state: callers must not mutate or retain it past the pass.
	ItemsetCount(items []int) (global int, byTarget []TargetCount)
}

// FailureRunCounts serves the statistical learner's sufficient
// statistics: for each run length k, how many fatal events closed a run
// of at least k fatals within the window (occurrences) and how many of
// those were followed by another fatal within the window (successes).
type FailureRunCounts interface {
	// CanServeRuns reports whether the maintained counters cover this
	// configuration: same window, and a maintained run cap of at least
	// maxK (counts for k ≤ maxK are cap-independent below the cap).
	CanServeRuns(windowMs int64, maxK int) bool
	// RunCounts returns the occurrence/success counters (index k, valid
	// for 1 ≤ k ≤ the maintained cap) and the total number of fatals in
	// the window. The slices are shared state: read-only, do not retain.
	RunCounts() (occurrences, successes []int, total int)
}

// ClassTally is one non-fatal class's naive-Bayes tally: how many of its
// occurrences were followed by a fatal within the window versus not, and
// which fatal classes those occurrences preceded. Targets is sorted by
// Target ascending.
type ClassTally struct {
	Class       int
	Followed    int
	NotFollowed int
	Targets     []TargetCount
}

// ClassTallies serves the naive-Bayes learner's sufficient statistics.
type ClassTallies interface {
	// CanServeTallies reports whether tallies are maintained for this
	// window (followed/not-followed splits are window-dependent).
	CanServeTallies(windowMs int64) bool
	// Tallies returns the per-class tallies sorted by Class ascending,
	// plus the window-wide positive (followed) and negative occurrence
	// totals. Shared state: read-only, do not retain past the pass.
	Tallies() (perClass []ClassTally, positives, negatives int)
}
