// Package statrule implements the statistical base learner (paper §4.1):
// it estimates how often the occurrence of k failures within the
// rule-generation window is followed by yet another failure, and keeps a
// rule for every k whose estimated probability clears the threshold. The
// paper's example: "if four failures occur within 300 seconds, then the
// probability of another failure is 99%."
package statrule

import (
	"repro/internal/learner"
)

// Learner mines failure-count rules over fatal events.
type Learner struct {
	// Threshold is the minimum estimated probability for a rule to be
	// kept (paper default 0.8).
	Threshold float64
	// MaxK bounds the run length examined (default 8).
	MaxK int
	// MinOccurrences is the minimum number of observations of a k-run
	// before its probability estimate is trusted (default 10).
	MinOccurrences int
}

// New returns a learner with the paper's parameters.
func New() *Learner {
	return &Learner{Threshold: 0.8, MaxK: 8, MinOccurrences: 10}
}

// Name implements learner.Learner.
func (l *Learner) Name() string { return "statistical" }

// Learn implements learner.Learner. For each k it estimates
//
//	P(another fatal within W_P | k fatals within W_P just observed)
//
// over the training stream and emits a Statistical rule when the estimate
// is both well-supported and above Threshold. The fatal timestamps come
// from the shared prepared view (extracted once per training pass).
func (l *Learner) Learn(tr *learner.Prepared, p learner.Params) ([]learner.Rule, error) {
	if src := tr.FailureRuns; src != nil && src.CanServeRuns(p.Window(), l.EffectiveMaxK()) {
		occ, succ, total := src.RunCounts()
		return l.rulesFromCounts(occ, succ, total), nil
	}
	return l.MineTimes(tr.FatalTimes(), p)
}

// EffectiveMaxK resolves the run-length cap (the MaxK knob defaulted).
// The incremental maintainer sizes its counters from this: maintained
// counts for k ≤ cap are cap-independent, so any maintainer with an equal
// or larger cap serves this learner exactly.
func (l *Learner) EffectiveMaxK() int {
	if l.MaxK <= 0 {
		return 8
	}
	return l.MaxK
}

// MineTimes mines directly from fatal timestamps (ms); exposed for tests
// and tools that already extracted the failure record.
func (l *Learner) MineTimes(times []int64, p learner.Params) ([]learner.Rule, error) {
	window := p.Window()
	maxK := l.EffectiveMaxK()
	// runLen[i]: how many fatals (including i) fall within the window
	// ending at times[i].
	occurrences := make([]int, maxK+1)
	successes := make([]int, maxK+1)
	lo := 0
	for i := range times {
		for times[i]-times[lo] > window {
			lo++
		}
		run := i - lo + 1
		if run > maxK {
			run = maxK
		}
		followed := i+1 < len(times) && times[i+1]-times[i] <= window
		// A run of length r is an observation for every k <= r.
		for k := 1; k <= run; k++ {
			occurrences[k]++
			if followed {
				successes[k]++
			}
		}
	}
	return l.rulesFromCounts(occurrences, successes, len(times)), nil
}

// rulesFromCounts emits the rules a pair of occurrence/success counters
// supports — shared by the batch scan above and the incremental
// sufficient-statistics path, which maintains the same counters across
// window slides. The slices may extend past this learner's cap (a
// maintainer configured for a larger k serves a smaller one unchanged).
func (l *Learner) rulesFromCounts(occurrences, successes []int, total int) []learner.Rule {
	maxK := l.EffectiveMaxK()
	if m := len(occurrences) - 1; maxK > m {
		maxK = m
	}
	var rules []learner.Rule
	for k := 1; k <= maxK; k++ {
		if occurrences[k] < l.MinOccurrences {
			continue
		}
		prob := float64(successes[k]) / float64(occurrences[k])
		if prob < l.Threshold {
			continue
		}
		rules = append(rules, learner.Rule{
			Kind:       learner.Statistical,
			Count:      k,
			Target:     learner.AnyFatal,
			Confidence: prob,
			Support:    float64(occurrences[k]) / float64(total),
		})
	}
	return rules
}
