package statrule

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

var p300 = learner.Params{WindowSec: 300}

func TestMineBurstyStream(t *testing.T) {
	// Long failure storms (10 fatals spaced 50 s apart) separated by
	// hours: seeing k fatals within 300 s strongly predicts another.
	var times []int64
	for b := int64(0); b < 40; b++ {
		base := b * 7_200_000 // every 2 h
		for i := int64(0); i < 10; i++ {
			times = append(times, base+i*50_000)
		}
	}
	l := New()
	rules, err := l.MineTimes(times, p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined from bursty stream")
	}
	hasK := map[int]float64{}
	for _, r := range rules {
		if r.Kind != learner.Statistical {
			t.Fatalf("wrong kind %v", r.Kind)
		}
		if r.Target != learner.AnyFatal {
			t.Fatalf("statistical rule has class target %d", r.Target)
		}
		hasK[r.Count] = r.Confidence
	}
	// 9 of 10 burst fatals are followed within 300 s: k=1 passes at 0.9,
	// and higher-k runs (only reachable inside a storm) pass too.
	if p, ok := hasK[1]; !ok || p < 0.85 {
		t.Errorf("k=1 rule = %v, want p~0.9", hasK)
	}
	if p, ok := hasK[2]; !ok || p < 0.8 {
		t.Errorf("k=2 rule = %v, want p>=0.8", hasK)
	}
}

func TestMineIsolatedFailuresYieldNothing(t *testing.T) {
	var times []int64
	for i := int64(0); i < 100; i++ {
		times = append(times, i*3_600_000) // hourly, never within 300 s
	}
	rules, err := New().MineTimes(times, p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Errorf("rules from isolated failures: %v", rules)
	}
}

func TestMineMinOccurrences(t *testing.T) {
	// One burst only: k=2 occurs 4 times < MinOccurrences 10.
	times := []int64{0, 50_000, 100_000, 150_000, 200_000}
	rules, err := New().MineTimes(times, p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Errorf("under-supported rules mined: %v", rules)
	}
}

func TestMineMaxKBounds(t *testing.T) {
	l := New()
	l.MaxK = 3
	l.MinOccurrences = 1
	var times []int64
	for b := int64(0); b < 20; b++ {
		base := b * 7_200_000
		for i := int64(0); i < 10; i++ {
			times = append(times, base+i*20_000)
		}
	}
	rules, err := l.MineTimes(times, p300)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Count > 3 {
			t.Errorf("rule k=%d beyond MaxK", r.Count)
		}
	}
}

func TestMineEmpty(t *testing.T) {
	rules, err := New().MineTimes(nil, p300)
	if err != nil || len(rules) != 0 {
		t.Errorf("MineTimes(nil) = %v, %v", rules, err)
	}
}

func TestProbabilityEstimateExact(t *testing.T) {
	// Pairs of fatals 100 s apart, pairs separated by hours:
	// k=1 observations: every fatal (2N); successes: first of each pair (N)
	// -> p(k=1) = 0.5. k=2: observations N (second of pair), successes 0.
	var times []int64
	for b := int64(0); b < 30; b++ {
		base := b * 7_200_000
		times = append(times, base, base+100_000)
	}
	l := New()
	l.Threshold = 0 // keep everything measurable
	l.MinOccurrences = 1
	rules, err := l.MineTimes(times, p300)
	if err != nil {
		t.Fatal(err)
	}
	byK := map[int]learner.Rule{}
	for _, r := range rules {
		byK[r.Count] = r
	}
	if r, ok := byK[1]; !ok || r.Confidence != 0.5 {
		t.Errorf("k=1 rule = %+v, want p=0.5", r)
	}
	if r, ok := byK[2]; !ok || r.Confidence != 0 {
		t.Errorf("k=2 rule = %+v, want p=0", r)
	}
}

func TestLearnExtractsFatalsOnly(t *testing.T) {
	mk := func(tSec int64, fatal bool) preprocess.TaggedEvent {
		return preprocess.TaggedEvent{
			Event: raslog.Event{Time: tSec * 1000}, Class: 1, Fatal: fatal,
		}
	}
	var events []preprocess.TaggedEvent
	// Dense non-fatal noise plus fatal bursts.
	for i := int64(0); i < 2000; i++ {
		events = append(events, mk(i*30, false))
	}
	for b := int64(0); b < 30; b++ {
		base := b * 7_200
		for i := int64(0); i < 8; i++ {
			events = append(events, mk(base+i*40, true))
		}
	}
	// Re-sort by time.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].Time < events[j-1].Time; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	rules, err := New().Learn(learner.Prepare(events), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Error("noise drowned out the fatal bursts")
	}
}
