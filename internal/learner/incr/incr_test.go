package incr_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/learner"
	"repro/internal/learner/bayes"
	"repro/internal/learner/incr"
	"repro/internal/meta"
	"repro/internal/preprocess"
)

// genStream produces a time-sorted tagged stream with duplicate
// timestamps (gap 0 is possible) and a distinct fatal class range, so
// assoc targets and bayes attributions are exercised.
func genStream(rng *rand.Rand, n, classes int, pFatal float64) []preprocess.TaggedEvent {
	events := make([]preprocess.TaggedEvent, n)
	t := int64(0)
	for i := range events {
		t += int64(rng.Intn(20_000))
		events[i].Time = t
		if rng.Float64() < pFatal {
			events[i].Fatal = true
			events[i].Class = classes + rng.Intn(4)
		} else {
			events[i].Class = rng.Intn(classes)
		}
	}
	return events
}

// mkMeta builds an ensemble with thresholds loosened so every learner
// actually emits rules on small random streams — silent empty outputs
// would make the equivalence check vacuous.
func mkMeta(withBayes bool) *meta.MetaLearner {
	ml := meta.New()
	// Random streams are much denser than real logs; a higher support
	// floor keeps the Apriori candidate set (and the reviser's replay
	// cost) small without losing path coverage.
	ml.Assoc.MinSupport = 0.05
	ml.Stat.MinOccurrences = 2
	ml.Stat.Threshold = 0.2
	// Random fatal gaps sit in the minutes range; lower the long-term
	// floor so the distribution fit actually runs (and thus actually
	// compares the incrementally-maintained gap vector).
	ml.Prob.FloorSec = 30
	if withBayes {
		ml.AddBayes()
		b := ml.Extra[0].(*bayes.Learner)
		b.MinOccurrences = 2
		b.MinLikelihoodRatio = 1.2
	}
	return ml
}

func searchTime(stream []preprocess.TaggedEvent, t int64) int {
	return sort.Search(len(stream), func(i int) bool { return stream[i].Time >= t })
}

// trainStep advances the incremental state to [from, to) and pins its
// training output — per-learner candidates, merged candidates, revised
// rules — against a from-scratch batch pass over the same window.
func trainStep(t *testing.T, ml *meta.MetaLearner, st *incr.State, stream []preprocess.TaggedEvent, from, to int64, p learner.Params) incr.Delta {
	t.Helper()
	d := st.Advance(stream, from, to, p)
	window := stream[searchTime(stream, from):searchTime(stream, to)]

	repB, errB := ml.TrainPrepared(learner.Prepare(window), p)

	preI := learner.Prepare(window)
	st.Install(preI)
	repI, errI := ml.TrainPrepared(preI, p)

	if (errB == nil) != (errI == nil) {
		t.Fatalf("window [%d,%d): batch err %v vs incremental err %v", from, to, errB, errI)
	}
	if errB != nil {
		return d
	}
	for name, rules := range repB.CandidatesByLearner {
		if !reflect.DeepEqual(rules, repI.CandidatesByLearner[name]) {
			t.Fatalf("window [%d,%d): %s learner diverges: batch %d rules vs incremental %d",
				from, to, name, len(rules), len(repI.CandidatesByLearner[name]))
		}
	}
	if !reflect.DeepEqual(repB.Candidates, repI.Candidates) {
		t.Fatalf("window [%d,%d): merged candidates diverge", from, to)
	}
	if !reflect.DeepEqual(repB.Kept, repI.Kept) {
		t.Fatalf("window [%d,%d): revised rule sets diverge", from, to)
	}
	return d
}

// TestIncrementalEquivalence is the oracle property test: random
// streams, random window slides (including end-only growth, slide-by-
// little, and clean jumps past the old window), incremental training
// byte-equivalent to the batch rebuild at every step. Sized by the
// quick/slow tuning constants; scripts/verify.sh runs it under -race.
func TestIncrementalEquivalence(t *testing.T) {
	for seed := 0; seed < eqSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 1))
			ml := mkMeta(seed%2 == 0)
			p := learner.Params{WindowSec: 120}
			stream := genStream(rng, eqEvents, 40, 0.12)
			st := incr.New(meta.IncrConfig(ml, p))

			span := stream[len(stream)-1].Time
			winLen := span / 4
			from, to := int64(0), winLen
			for step := 0; step < eqSteps; step++ {
				d := trainStep(t, ml, st, stream, from, to, p)
				if step == 0 {
					if !d.Rebuild {
						t.Fatal("first advance must report a full build")
					}
					if !st.CanServeItemsets(p.Window(), ml.Assoc.MaxItems, ml.Assoc.EffectiveMaxBody()) {
						t.Fatal("state cannot serve the ensemble it was configured from")
					}
					if !st.CanServeRuns(p.Window(), ml.Stat.EffectiveMaxK()) {
						t.Fatal("state cannot serve the statistical learner")
					}
				} else if d.Rebuild {
					t.Fatalf("step %d: unexpected full rebuild (%s)", step, d.Reason)
				}

				prevTo := to
				switch rng.Intn(10) {
				case 0: // window end grows, start stays
					to += int64(rng.Intn(int(winLen / 4)))
				case 1: // clean jump past the old window (full turnover)
					from = to + int64(rng.Intn(int(winLen/2)))
					to = from + winLen
				default: // ordinary slide
					from += int64(1 + rng.Intn(int(winLen/6)))
					to = from + winLen + int64(rng.Intn(int(winLen/8)))
				}
				if to < prevTo {
					to = prevTo
				}
				if to > span+1 {
					to = span + 1
				}
				if from > to {
					from = to
				}
			}
		})
	}
}

// TestExportRestore pins the snapshot path: a restored state resumes
// with a delta-apply (not a cold rebuild) and stays byte-equivalent.
func TestExportRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ml := mkMeta(true)
	p := learner.Params{WindowSec: 120}
	stream := genStream(rng, 3000, 40, 0.12)
	cfg := meta.IncrConfig(ml, p)
	st := incr.New(cfg)

	span := stream[len(stream)-1].Time
	winLen := span / 4
	slide := winLen / 10
	from, to := int64(0), winLen
	for i := 0; i < 3; i++ {
		trainStep(t, ml, st, stream, from, to, p)
		from, to = from+slide, to+slide
	}

	blob, err := st.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(blob) == 0 {
		t.Fatal("export of a valid window returned nothing")
	}
	restored := incr.New(cfg)
	if err := restored.Restore(blob); err != nil {
		t.Fatalf("restore: %v", err)
	}

	d := restored.Advance(stream, from, to, p)
	if d.Rebuild {
		t.Fatalf("restored state cold-rebuilt (%s) instead of delta-applying", d.Reason)
	}
	// Both the original and the restored state must keep matching batch.
	trainStep(t, ml, st, stream, from, to, p)
	window := stream[searchTime(stream, from):searchTime(stream, to)]
	repB, errB := ml.TrainPrepared(learner.Prepare(window), p)
	preR := learner.Prepare(window)
	restored.Install(preR)
	repR, errR := ml.TrainPrepared(preR, p)
	if errB != nil || errR != nil {
		t.Fatalf("train: batch err %v, restored err %v", errB, errR)
	}
	if !reflect.DeepEqual(repB.Kept, repR.Kept) {
		t.Fatal("restored state diverges from batch after one slide")
	}
}

// TestExportNotReady: a fresh state has nothing to persist.
func TestExportNotReady(t *testing.T) {
	st := incr.New(incr.Config{WindowMs: 1000, MaxItems: 30})
	blob, err := st.Export()
	if err != nil || blob != nil {
		t.Fatalf("fresh export = (%v, %v), want (nil, nil)", blob, err)
	}
}

// TestRestoreMismatch: persisted state under a different configuration
// must be refused, leaving the state to rebuild on its next advance.
func TestRestoreMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ml := mkMeta(false)
	p := learner.Params{WindowSec: 120}
	stream := genStream(rng, 1500, 40, 0.12)
	cfg := meta.IncrConfig(ml, p)
	st := incr.New(cfg)
	span := stream[len(stream)-1].Time
	st.Advance(stream, 0, span/2, p)
	blob, err := st.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}

	other := cfg
	other.MaxK = cfg.MaxK + 3
	mismatched := incr.New(other)
	if err := mismatched.Restore(blob); err == nil {
		t.Fatal("restore accepted state persisted under a different config")
	}
	if d := mismatched.Advance(stream, 0, span/2, p); !d.Rebuild {
		t.Fatal("state after refused restore must rebuild")
	}

	if err := incr.New(cfg).Restore([]byte("{")); err == nil {
		t.Fatal("restore accepted a truncated blob")
	}
}

// TestFallbackTriggers: parameter changes and backwards windows degrade
// to full rebuilds with the reason recorded — and stay correct.
func TestFallbackTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ml := mkMeta(false)
	p := learner.Params{WindowSec: 120}
	stream := genStream(rng, 2000, 40, 0.12)
	st := incr.New(meta.IncrConfig(ml, p))
	span := stream[len(stream)-1].Time
	winLen := span / 3

	trainStep(t, ml, st, stream, 0, winLen, p)

	// The tuner changed W_P: rebuild under the new window, then serve it.
	p2 := learner.Params{WindowSec: 60}
	if d := st.Advance(stream, winLen/10, winLen+winLen/10, p2); !d.Rebuild {
		t.Fatal("window parameter change must force a rebuild")
	}
	if st.CanServeRuns(p.Window(), 8) {
		t.Fatal("state still claims to serve the old window")
	}
	trainStep(t, ml, st, stream, winLen/5, winLen+winLen/5, p2)

	// Backwards slide (whole-history retrain after a sliding one).
	if d := st.Advance(stream, 0, winLen, p2); !d.Rebuild {
		t.Fatal("backwards window start must force a rebuild")
	}
	trainStep(t, ml, st, stream, winLen/10, winLen, p2)
}

// TestDriftAudit: a caller breaking the stream contract (the window
// slice disagreeing with what was fed before) is caught by the periodic
// audit and answered with a rebuild from the new truth.
func TestDriftAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ml := mkMeta(false)
	p := learner.Params{WindowSec: 120}
	stream := genStream(rng, 2000, 40, 0.12)
	cfg := meta.IncrConfig(ml, p)
	cfg.VerifyEvery = 1 // audit every advance
	st := incr.New(cfg)
	span := stream[len(stream)-1].Time
	winLen := span / 3

	st.Advance(stream, 0, winLen, p)

	// Rewrite history: flip one in-window fatal.
	mutated := append([]preprocess.TaggedEvent(nil), stream...)
	for i := range mutated {
		if mutated[i].Fatal && mutated[i].Time >= winLen/10 {
			mutated[i].Fatal = false
			mutated[i].Class = 3
			break
		}
	}
	d := st.Advance(mutated, winLen/10, winLen+winLen/10, p)
	if !d.Rebuild || d.Reason != "drift audit mismatch" {
		t.Fatalf("drift not detected: %+v", d)
	}
	// After the rebuild the state serves the mutated truth.
	trainStep(t, ml, st, mutated, winLen/5, winLen+winLen/5, p)
}

// TestDeltaAccounting pins Applied/Expired against slice arithmetic.
func TestDeltaAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ml := mkMeta(false)
	p := learner.Params{WindowSec: 120}
	stream := genStream(rng, 2000, 40, 0.12)
	st := incr.New(meta.IncrConfig(ml, p))
	span := stream[len(stream)-1].Time
	winLen := span / 3
	slide := winLen / 7

	if d := st.Advance(stream, 0, winLen, p); d.Applied != searchTime(stream, winLen) {
		t.Fatalf("first build applied %d, want %d", d.Applied, searchTime(stream, winLen))
	}
	d := st.Advance(stream, slide, winLen+slide, p)
	wantApplied := searchTime(stream, winLen+slide) - searchTime(stream, winLen)
	wantExpired := searchTime(stream, slide)
	if d.Applied != wantApplied || d.Expired != wantExpired || d.Rebuild {
		t.Fatalf("slide delta %+v, want applied=%d expired=%d", d, wantApplied, wantExpired)
	}
}
