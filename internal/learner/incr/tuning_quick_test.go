//go:build !slow

package incr_test

// Quick-mode sizes for the equivalence property test: enough random
// streams and slides to catch boundary regressions in tier-1 without
// dominating it. Build with -tags slow for the long campaign.
const (
	eqSeeds  = 4
	eqSteps  = 25
	eqEvents = 2000
)
