package incr

import (
	"sort"

	"repro/internal/learner"
	"repro/internal/preprocess"
)

// Delta reports what one Advance did to the maintained window.
type Delta struct {
	// Applied is the number of events ingested at the window end, Expired
	// the number that left at the window start.
	Applied int
	Expired int
	// Rebuild marks a full from-scratch build; Reason says why the
	// fallback fired (first build, parameter change, backwards slide,
	// drift audit).
	Rebuild bool
	Reason  string
}

// Advance slides the maintained window to [from, to) over the given
// time-sorted stream, which must cover at least [from, to) and agree
// with the previously-fed stream on the overlap. The window parameter
// p.Window() normally matches the configuration; a change degrades this
// advance to a full rebuild under the new window (the tuner path).
//
// Statistics are updated in four moves: (1) the event-set cache's exact
// delta drives the itemset counts, (2) contributions anchored before the
// new start are subtracted as stored, (3) fatal runs anchored within W_P
// of the new start are recomputed against the shortened lookback, and
// (4) the appended tail is ingested through the same recurrence a batch
// scan would run — including the end-provisional flips (the previous
// last fatal's "followed", pending bayes resolutions).
func (s *State) Advance(events []preprocess.TaggedEvent, from, to int64, p learner.Params) Delta {
	s.mu.Lock()
	defer s.mu.Unlock()

	windowMs := p.Window()
	idx := func(t int64) int {
		return sort.Search(len(events), func(i int) bool { return events[i].Time >= t })
	}
	lo, hi := idx(from), idx(to)

	reason := ""
	switch {
	case !s.valid:
		reason = "first build"
	case windowMs != s.cfg.WindowMs:
		reason = "window parameter changed"
	case from < s.from:
		reason = "window start moved backwards"
	case to < s.to:
		reason = "window end moved backwards"
	}
	if reason != "" {
		s.rebuild(events, lo, hi, from, to, windowMs)
		return Delta{Applied: hi - lo, Rebuild: true, Reason: reason}
	}

	prevCount := s.count
	start := idx(s.to)
	if start < lo {
		// The window jumped clean past the old end: events in
		// [s.to, from) belong to neither window and must not be ingested.
		start = lo
	}

	// (1) Transactions and their all-subset counts.
	sets, sdelta := s.cache.Advance(events, from, to, windowMs, s.cfg.MaxItems)
	s.sets = sets
	if sdelta.Rebuild {
		s.resetItemsets()
		for i := range sets {
			s.applySet(&sets[i], 1)
		}
	} else {
		for i := range sdelta.Removed {
			s.applySet(&sdelta.Removed[i], -1)
		}
		for i := range sdelta.Added {
			s.applySet(&sdelta.Added[i], 1)
		}
	}

	// (2) Expire start-of-window contributions, (3) shorten boundary
	// lookbacks, (4) ingest the tail.
	s.expire(from)
	s.recomputeBoundary(from)
	for i := start; i < hi; i++ {
		s.ingest(&events[i])
	}

	s.from, s.to = from, to
	s.count = hi - lo
	s.valid = true
	s.invalidateServed()
	s.advances++

	if s.cfg.VerifyEvery > 0 && s.advances%s.cfg.VerifyEvery == 0 && s.drifted(events, lo, hi) {
		s.rebuild(events, lo, hi, from, to, windowMs)
		return Delta{Applied: hi - lo, Rebuild: true, Reason: "drift audit mismatch"}
	}
	return Delta{Applied: hi - start, Expired: prevCount + (hi - start) - (hi - lo)}
}

// rebuild discards all maintained state and rebuilds [from, to) from
// scratch through the same ingest recurrence.
func (s *State) rebuild(events []preprocess.TaggedEvent, lo, hi int, from, to, windowMs int64) {
	s.cfg.WindowMs = windowMs
	// A fresh cache forces a clean event-set build too — on the drift
	// path the cache contents are as suspect as the counters.
	s.cache = learner.NewEventSetCache()
	sets, _ := s.cache.Advance(events, from, to, windowMs, s.cfg.MaxItems)
	s.sets = sets
	s.resetItemsets()
	for i := range sets {
		s.applySet(&sets[i], 1)
	}

	s.fatals = s.fatals[:0]
	for k := range s.occ {
		s.occ[k] = 0
		s.succ[k] = 0
	}
	s.gaps = s.gaps[:0]
	s.events = s.events[:0]
	s.perClass = make(map[int]*classTally)
	s.positives, s.negatives = 0, 0
	for i := lo; i < hi; i++ {
		s.ingest(&events[i])
	}

	s.from, s.to = from, to
	s.count = hi - lo
	s.valid = true
	s.invalidateServed()
	s.advances++
}

// ingest appends one event at the window end. This is exactly the batch
// recurrence: a fatal flips the previous fatal's provisional "followed"
// (and its success counters), records the inter-arrival gap, computes
// its own run against the in-window fatals behind it, and resolves any
// pending bayes occurrences; a non-fatal is tallied not-followed until a
// fatal resolves it.
func (s *State) ingest(e *preprocess.TaggedEvent) {
	w := s.cfg.WindowMs
	if e.Fatal {
		if n := len(s.fatals); n > 0 {
			prev := &s.fatals[n-1]
			if d := e.Time - prev.T; d > 0 {
				s.gaps = append(s.gaps, gapRec{T1: prev.T, Gap: float64(d) / 1000})
			}
			if !prev.Followed && e.Time-prev.T <= w {
				prev.Followed = true
				for k := 1; k <= prev.Run; k++ {
					s.succ[k]++
				}
			}
		}
		run := 1
		for j := len(s.fatals) - 1; j >= 0 && run < s.cfg.MaxK; j-- {
			if e.Time-s.fatals[j].T > w {
				break
			}
			run++
		}
		s.fatals = append(s.fatals, fatalRec{T: e.Time, Run: run})
		for k := 1; k <= run; k++ {
			s.occ[k]++
		}
		if s.cfg.TrackBayes {
			s.resolvePending(e)
			s.events = append(s.events, bayesRec{T: e.Time, Class: int32(e.Class), Fatal: true})
		}
		return
	}
	if s.cfg.TrackBayes {
		s.events = append(s.events, bayesRec{T: e.Time, Class: int32(e.Class)})
		c := s.tally(e.Class)
		c.notFollowed++
		s.negatives++
	}
}

// resolvePending finalizes the bayes records between the previous fatal
// and this one: each becomes followed (re-tallied, target attributed to
// this fatal's class) if the gap fits the window, not-followed finally
// otherwise. Each record is resolved exactly once — by the first fatal
// after it — so the walk's total cost is one visit per event.
func (s *State) resolvePending(e *preprocess.TaggedEvent) {
	w := s.cfg.WindowMs
	for i := len(s.events) - 1; i >= 0; i-- {
		r := &s.events[i]
		if r.Fatal {
			break
		}
		r.Resolved = true
		if e.Time-r.T > w {
			continue // finally not-followed; already tallied that way
		}
		r.Followed = true
		r.Target = int32(e.Class)
		c := s.tally(int(r.Class))
		c.notFollowed--
		s.negatives--
		c.followed++
		s.positives++
		c.targets[int(e.Class)]++
	}
}

// expire pops every record anchored before the new window start,
// subtracting its stored contribution exactly.
func (s *State) expire(from int64) {
	k := 0
	for k < len(s.fatals) && s.fatals[k].T < from {
		f := &s.fatals[k]
		for j := 1; j <= f.Run; j++ {
			s.occ[j]--
			if f.Followed {
				s.succ[j]--
			}
		}
		k++
	}
	if k > 0 {
		s.fatals = append(s.fatals[:0], s.fatals[k:]...)
	}

	k = 0
	for k < len(s.gaps) && s.gaps[k].T1 < from {
		k++
	}
	if k > 0 {
		s.gaps = append(s.gaps[:0], s.gaps[k:]...)
	}

	if !s.cfg.TrackBayes {
		return
	}
	k = 0
	for k < len(s.events) && s.events[k].T < from {
		r := &s.events[k]
		k++
		if r.Fatal {
			continue
		}
		c := s.perClass[int(r.Class)]
		if r.Followed {
			c.followed--
			s.positives--
			c.targets[int(r.Target)]--
			if c.targets[int(r.Target)] == 0 {
				delete(c.targets, int(r.Target))
			}
		} else {
			c.notFollowed--
			s.negatives--
		}
		if c.followed == 0 && c.notFollowed == 0 {
			delete(s.perClass, int(r.Class))
		}
	}
	if k > 0 {
		s.events = append(s.events[:0], s.events[k:]...)
	}
}

// recomputeBoundary re-derives the run length of every fatal within W_P
// of the new window start — the only fatals whose lookback could have
// crossed it. Expiry has already removed the out-of-window fatals, so
// counting against the deque is counting against the window slice; runs
// only shrink as the start advances, and the counters give back exactly
// the difference.
func (s *State) recomputeBoundary(from int64) {
	w := s.cfg.WindowMs
	for i := range s.fatals {
		f := &s.fatals[i]
		if f.T >= from+w {
			break
		}
		run := 1
		for j := i - 1; j >= 0 && run < s.cfg.MaxK; j-- {
			if f.T-s.fatals[j].T > w {
				break
			}
			run++
		}
		for k := run + 1; k <= f.Run; k++ {
			s.occ[k]--
			if f.Followed {
				s.succ[k]--
			}
		}
		f.Run = run
	}
}

// applySet folds one transaction into (delta=+1) or out of (delta=-1)
// the itemset counts: the dense level-1 class counts plus every subset
// of up to MaxBody items, packed the same way assoc packs candidates.
func (s *State) applySet(set *learner.EventSet, delta int) {
	items := set.Items
	n := len(items)
	if n == 0 {
		return
	}
	if grow := items[n-1] + 1; grow > len(s.itemCounts) {
		grown := make([]int32, grow)
		copy(grown, s.itemCounts)
		s.itemCounts = grown
	}
	for _, it := range items {
		s.itemCounts[it] += int32(delta)
	}

	// Depth-first subset enumeration with incrementally-packed keys; the
	// explicit stack keeps the hot path allocation-free.
	maxBody := s.cfg.MaxBody
	target := set.Target
	var idxs [maxPackedItems]int
	var keys [maxPackedItems]uint64
	depth := 0
	idxs[0] = 0
	for depth >= 0 {
		i := idxs[depth]
		if i >= n {
			depth--
			if depth >= 0 {
				idxs[depth]++
			}
			continue
		}
		var base uint64
		if depth > 0 {
			base = keys[depth-1]
		}
		key := base<<maxClassBits | uint64(items[i]+1)
		keys[depth] = key
		s.bump(key, target, delta)
		if depth+1 < maxBody && i+1 < n {
			depth++
			idxs[depth] = i + 1
		} else {
			idxs[depth]++
		}
	}
}

const maxPackedItems = 64 / maxClassBits // 4, as in assoc

// bump adjusts one itemset's global and per-target count, dropping
// zeroed entries so the map tracks the live window only.
func (s *State) bump(key uint64, target, delta int) {
	e := s.itemsets[key]
	if e == nil {
		if delta < 0 {
			return // underflow: the drift audit is the backstop
		}
		e = &itemsetEntry{}
		s.itemsets[key] = e
	}
	e.global += delta
	if e.global <= 0 {
		delete(s.itemsets, key)
		return
	}
	for i := range e.byTarget {
		if e.byTarget[i].Target == target {
			e.byTarget[i].Count += delta
			if e.byTarget[i].Count == 0 {
				e.byTarget = append(e.byTarget[:i], e.byTarget[i+1:]...)
			}
			return
		}
	}
	e.byTarget = append(e.byTarget, learner.TargetCount{Target: target, Count: delta})
}

func (s *State) resetItemsets() {
	s.itemsets = make(map[uint64]*itemsetEntry, len(s.itemsets))
	for i := range s.itemCounts {
		s.itemCounts[i] = 0
	}
}

func (s *State) invalidateServed() {
	s.gapsOut = nil
	s.times = nil
	s.tallies = nil
}

// tally returns the mutable tally for a class, creating it on first use.
func (s *State) tally(class int) *classTally {
	c := s.perClass[class]
	if c == nil {
		c = &classTally{targets: make(map[int]int)}
		s.perClass[class] = c
	}
	return c
}

// drifted cross-checks cheap invariants of the maintained state against
// the input slice: the event count, the fatal count, and a fatal-time
// checksum. A mismatch means the caller broke the stream contract
// (mutated history, inconsistent slices) and the state must rebuild.
func (s *State) drifted(events []preprocess.TaggedEvent, lo, hi int) bool {
	if hi-lo != s.count {
		return true
	}
	nf, sum := 0, int64(0)
	for i := lo; i < hi; i++ {
		if events[i].Fatal {
			nf++
			sum += events[i].Time
		}
	}
	if nf != len(s.fatals) {
		return true
	}
	var dsum int64
	for i := range s.fatals {
		dsum += s.fatals[i].T
	}
	return dsum != sum
}
