package incr

import (
	"encoding/json"
	"fmt"

	"repro/internal/learner"
)

// wireVersion guards the snapshot encoding; a version bump invalidates
// persisted incremental state (the restore fails closed and the next
// retrain falls back to a full rebuild — never to wrong statistics).
const wireVersion = 1

// wireSet is one persisted event-set transaction.
type wireSet struct {
	Items  []int `json:"i"`
	Target int   `json:"c"`
	Time   int64 `json:"t"`
}

// wire is the persisted incremental state: the configuration it was
// maintained under, the window bounds, and the per-record deques. Only
// deques are persisted — the folded counters (itemset counts, run
// occurrence arrays, class tallies) re-derive deterministically on
// restore, keeping the format small and the invariants impossible to
// desynchronize.
type wire struct {
	Version    int        `json:"v"`
	WindowMs   int64      `json:"window_ms"`
	MaxItems   int        `json:"max_items"`
	MaxBody    int        `json:"max_body"`
	MaxK       int        `json:"max_k"`
	TrackBayes bool       `json:"track_bayes,omitempty"`
	From       int64      `json:"from"`
	To         int64      `json:"to"`
	Count      int        `json:"count"`
	Sets       []wireSet  `json:"sets"`
	Fatals     []fatalRec `json:"fatals"`
	Gaps       []gapRec   `json:"gaps"`
	Bayes      []bayesRec `json:"bayes,omitempty"`
}

// Export serializes the maintained window so a restart can resume
// delta-applies instead of cold-rebuilding. Returns (nil, nil) when the
// state holds no valid window yet.
func (s *State) Export() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid {
		return nil, nil
	}
	w := wire{
		Version:    wireVersion,
		WindowMs:   s.cfg.WindowMs,
		MaxItems:   s.cfg.MaxItems,
		MaxBody:    s.cfg.MaxBody,
		MaxK:       s.cfg.MaxK,
		TrackBayes: s.cfg.TrackBayes,
		From:       s.from,
		To:         s.to,
		Count:      s.count,
		Sets:       make([]wireSet, len(s.sets)),
		Fatals:     s.fatals,
		Gaps:       s.gaps,
	}
	for i := range s.sets {
		w.Sets[i] = wireSet{Items: s.sets[i].Items, Target: s.sets[i].Target, Time: s.sets[i].Time}
	}
	if s.cfg.TrackBayes {
		w.Bayes = s.events
	}
	return json.Marshal(&w)
}

// Restore rehydrates a previously-Exported window into this state. The
// persisted configuration must match this state's exactly; any mismatch
// (or decode failure) returns an error and leaves the state untouched,
// so the caller's next Advance performs a full rebuild — the always-safe
// fallback. On success the folded counters are re-derived from the
// persisted deques and the event-set cache is seeded, so the next
// Advance is a delta-apply.
func (s *State) Restore(data []byte) error {
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("incr: decode state: %w", err)
	}
	if w.Version != wireVersion {
		return fmt.Errorf("incr: state version %d, want %d", w.Version, wireVersion)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if w.WindowMs != s.cfg.WindowMs || w.MaxItems != s.cfg.MaxItems ||
		w.MaxBody != s.cfg.MaxBody || w.MaxK != s.cfg.MaxK || w.TrackBayes != s.cfg.TrackBayes {
		return fmt.Errorf("incr: persisted config (window=%dms items=%d body=%d k=%d bayes=%v) does not match (window=%dms items=%d body=%d k=%d bayes=%v)",
			w.WindowMs, w.MaxItems, w.MaxBody, w.MaxK, w.TrackBayes,
			s.cfg.WindowMs, s.cfg.MaxItems, s.cfg.MaxBody, s.cfg.MaxK, s.cfg.TrackBayes)
	}
	if w.TrackBayes && len(w.Bayes) != w.Count {
		return fmt.Errorf("incr: persisted state inconsistent: %d bayes records for %d events", len(w.Bayes), w.Count)
	}

	sets := make([]learner.EventSet, len(w.Sets))
	for i := range w.Sets {
		sets[i] = learner.EventSet{Items: w.Sets[i].Items, Target: w.Sets[i].Target, Time: w.Sets[i].Time}
	}
	s.cache = learner.NewEventSetCache()
	s.cache.Seed(s.cfg.WindowMs, s.cfg.MaxItems, w.From, w.To, sets)
	s.sets = sets
	s.resetItemsets()
	for i := range sets {
		s.applySet(&sets[i], 1)
	}

	s.fatals = w.Fatals
	for k := range s.occ {
		s.occ[k] = 0
		s.succ[k] = 0
	}
	for i := range s.fatals {
		f := &s.fatals[i]
		for k := 1; k <= f.Run && k < len(s.occ); k++ {
			s.occ[k]++
			if f.Followed {
				s.succ[k]++
			}
		}
	}
	s.gaps = w.Gaps

	s.events = w.Bayes
	s.perClass = make(map[int]*classTally)
	s.positives, s.negatives = 0, 0
	for i := range s.events {
		r := &s.events[i]
		if r.Fatal {
			continue
		}
		c := s.tally(int(r.Class))
		if r.Followed {
			c.followed++
			s.positives++
			c.targets[int(r.Target)]++
		} else {
			c.notFollowed++
			s.negatives++
		}
	}

	s.from, s.to = w.From, w.To
	s.count = w.Count
	s.valid = true
	s.invalidateServed()
	return nil
}
