// Package incr maintains the base learners' sufficient statistics
// incrementally over a sliding training window, so a retrain becomes a
// delta-apply plus reviser pass instead of a from-scratch mine.
//
// One State tracks, for the window [from, to):
//
//   - Apriori itemset counts: every subset (up to the body cap) of every
//     event-set transaction, with per-target splits — served to
//     assoc.MineCounts through learner.ItemsetCounts. Transactions are
//     themselves maintained by a learner.EventSetCache, whose Advance
//     delta (expired / boundary-changed / new sets) drives the count
//     updates.
//   - Statistical failure-run counters: per fatal event its run length
//     and followed flag, folded into occurrence/success arrays — served
//     through learner.FailureRunCounts.
//   - Fatal inter-arrival gaps (the MLE fit's sufficient statistic) —
//     served through Prepared.GapsFor.
//   - Naive-Bayes class tallies (optional, TrackBayes): per non-fatal
//     class the followed/not-followed occurrence split and target
//     attribution — served through learner.ClassTallies.
//
// Every statistic is a sum of bounded-lookback per-event contributions,
// so Advance touches only the window boundaries and the appended tail:
// expired contributions are subtracted exactly as stored, start-boundary
// contributions (anchor within W_P of the new start) are recomputed, and
// end-provisional flags (a fatal's "followed", a class occurrence's
// resolution) flip as successors arrive. The result is byte-equivalent to
// a batch rebuild over the same window — identical integer counts divide
// into identical float64 statistics — pinned by the equivalence tests in
// this package.
//
// Concurrency: Advance, Export and Restore serialize on an internal
// mutex. The serving interfaces are read-only and safe for the
// concurrent learner ensemble, provided no Advance runs during a
// training pass — the retrain flows in internal/engine and
// internal/stream sequence Advance strictly before TrainPrepared.
package incr

import (
	"sort"
	"sync"

	"repro/internal/learner"
)

// maxClassBits mirrors the assoc packing: itemsets of up to four classes
// pack collision-free into a uint64 key.
const maxClassBits = 16

// DefaultVerifyEvery is the stat-drift audit cadence when Config leaves
// VerifyEvery zero: every Nth Advance cross-checks cheap invariants
// (event/fatal counts, fatal-time checksum) against the input slice and
// falls back to a full rebuild on mismatch.
const DefaultVerifyEvery = 64

// Config pins the learner shape one State serves. The values must match
// the ensemble's miners exactly (see meta.IncrConfig, which derives them
// from a MetaLearner); a learner asking for anything else is refused by
// the CanServe guards and falls back to its batch pass.
type Config struct {
	// WindowMs is the rule-generation window W_P in milliseconds.
	WindowMs int64
	// MaxItems is the assoc per-transaction item cap.
	MaxItems int
	// MaxBody is the assoc effective antecedent cap (≤ 4; subsets up to
	// this size are counted).
	MaxBody int
	// MaxK is the statistical learner's run-length cap.
	MaxK int
	// TrackBayes maintains the naive-Bayes class tallies, which requires
	// keeping a per-event record for the whole window. Leave false when
	// the ensemble has no bayes learner.
	TrackBayes bool
	// VerifyEvery is the drift-audit cadence in Advances (0 = the
	// package default, negative = never).
	VerifyEvery int
}

// fatalRec is one in-window fatal's stored contribution to the
// statistical counters: its (capped) run length and whether another
// fatal followed within the window. Subtracting exactly these values on
// expiry reverses the contribution bit-for-bit.
type fatalRec struct {
	T        int64 `json:"t"`
	Run      int   `json:"r"`
	Followed bool  `json:"f,omitempty"`
}

// gapRec is one fatal inter-arrival gap; T1 is the earlier fatal's
// timestamp (the gap expires with it).
type gapRec struct {
	T1  int64   `json:"t"`
	Gap float64 `json:"g"`
}

// bayesRec is one in-window event's naive-Bayes bookkeeping. A non-fatal
// occurrence is tallied not-followed on arrival and re-tallied when the
// first later fatal resolves it; Resolved marks the flag final.
type bayesRec struct {
	T        int64 `json:"t"`
	Class    int32 `json:"c"`
	Fatal    bool  `json:"x,omitempty"`
	Followed bool  `json:"f,omitempty"`
	Resolved bool  `json:"d,omitempty"`
	Target   int32 `json:"g,omitempty"` // fatal class attributed when Followed
}

// itemsetEntry is one itemset's window count, split by target class.
type itemsetEntry struct {
	global   int
	byTarget []learner.TargetCount
}

// classTally is one non-fatal class's mutable naive-Bayes tally.
type classTally struct {
	followed    int
	notFollowed int
	targets     map[int]int
}

// State is the incremental sufficient-statistics maintainer. Zero value
// is not usable; construct with New.
type State struct {
	mu  sync.Mutex
	cfg Config

	valid    bool
	from, to int64
	count    int // events in window
	advances int

	// Association: window transactions plus all-subset counts.
	cache      *learner.EventSetCache
	sets       []learner.EventSet
	itemsets   map[uint64]*itemsetEntry
	itemCounts []int32 // dense per-class transaction counts (level 1)

	// Statistical: fatal deque plus folded run counters.
	fatals []fatalRec
	occ    []int
	succ   []int

	// Distribution: gap deque plus its served materialization.
	gaps    []gapRec
	gapsOut []float64

	// Bayes (TrackBayes only): per-event records plus class tallies.
	events    []bayesRec
	perClass  map[int]*classTally
	positives int
	negatives int
	tallies   []learner.ClassTally // served materialization

	times []int64 // served materialization of the fatal deque
}

// New returns an empty State for the given configuration. The first
// Advance performs a full build.
func New(cfg Config) *State {
	if cfg.MaxBody > 4 {
		cfg.MaxBody = 4 // the packed-key limit; assoc clamps identically
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 3
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 8
	}
	if cfg.VerifyEvery == 0 {
		cfg.VerifyEvery = DefaultVerifyEvery
	}
	return &State{
		cfg:      cfg,
		cache:    learner.NewEventSetCache(),
		itemsets: make(map[uint64]*itemsetEntry),
		occ:      make([]int, cfg.MaxK+1),
		succ:     make([]int, cfg.MaxK+1),
		perClass: make(map[int]*classTally),
	}
}

// Window returns the maintained window bounds [from, to) and whether the
// state currently holds a valid window.
func (s *State) Window() (from, to int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.from, s.to, s.valid
}

// Install wires the state's serving hooks into a prepared training view.
// The view's Events must be exactly the window slice the last Advance
// maintained; learners whose configuration the state cannot serve fall
// back to batch passes over those events.
func (s *State) Install(pre *learner.Prepared) {
	pre.Itemsets = s
	pre.FailureRuns = s
	pre.Tallies = s
	pre.GapsFor = s.Gaps
	pre.TimesFor = s.FatalTimes
	events := pre.Events
	pre.SetsFor = func(windowMs int64, maxItems int) []learner.EventSet {
		s.mu.Lock()
		if s.valid && windowMs == s.cfg.WindowMs && maxItems == s.cfg.MaxItems {
			sets := s.sets
			s.mu.Unlock()
			return sets
		}
		s.mu.Unlock()
		// A differently-configured miner (ablation runs): serve it the
		// batch way rather than refusing.
		return learner.BuildEventSets(events, learner.Params{WindowSec: windowMs / 1000}, maxItems)
	}
}

// ---------------------------------------------------------------------------
// learner.ItemsetCounts
// ---------------------------------------------------------------------------

// CanServeItemsets implements learner.ItemsetCounts.
func (s *State) CanServeItemsets(windowMs int64, maxItems, maxBody int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.valid && windowMs == s.cfg.WindowMs &&
		maxItems == s.cfg.MaxItems && maxBody <= s.cfg.MaxBody
}

// NumSets implements learner.ItemsetCounts.
func (s *State) NumSets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sets)
}

// FrequentItems implements learner.ItemsetCounts.
func (s *State) FrequentItems(minCount int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for it, c := range s.itemCounts {
		if int(c) >= minCount {
			out = append(out, it)
		}
	}
	return out
}

// ItemsetCount implements learner.ItemsetCounts. Lock-free: the counts
// are immutable between Advances, and mining passes are sequenced after
// the Advance that produced them.
func (s *State) ItemsetCount(items []int) (int, []learner.TargetCount) {
	e := s.itemsets[packItems(items)]
	if e == nil {
		return 0, nil
	}
	return e.global, e.byTarget
}

// packItems mirrors assoc's packing of a sorted itemset into a uint64.
func packItems(items []int) uint64 {
	var key uint64
	for _, it := range items {
		key = key<<maxClassBits | uint64(it+1)
	}
	return key
}

// ---------------------------------------------------------------------------
// learner.FailureRunCounts
// ---------------------------------------------------------------------------

// CanServeRuns implements learner.FailureRunCounts.
func (s *State) CanServeRuns(windowMs int64, maxK int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.valid && windowMs == s.cfg.WindowMs && maxK <= s.cfg.MaxK
}

// RunCounts implements learner.FailureRunCounts.
func (s *State) RunCounts() (occurrences, successes []int, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.occ, s.succ, len(s.fatals)
}

// ---------------------------------------------------------------------------
// learner.ClassTallies
// ---------------------------------------------------------------------------

// CanServeTallies implements learner.ClassTallies.
func (s *State) CanServeTallies(windowMs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.valid && s.cfg.TrackBayes && windowMs == s.cfg.WindowMs
}

// Tallies implements learner.ClassTallies: the canonical sorted
// projection of the per-class counters, materialized once per window.
func (s *State) Tallies() ([]learner.ClassTally, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tallies == nil {
		s.tallies = make([]learner.ClassTally, 0, len(s.perClass))
		for class, c := range s.perClass {
			t := learner.ClassTally{Class: class, Followed: c.followed, NotFollowed: c.notFollowed}
			for f, n := range c.targets {
				t.Targets = append(t.Targets, learner.TargetCount{Target: f, Count: n})
			}
			sort.Slice(t.Targets, func(i, j int) bool { return t.Targets[i].Target < t.Targets[j].Target })
			s.tallies = append(s.tallies, t)
		}
		sort.Slice(s.tallies, func(i, j int) bool { return s.tallies[i].Class < s.tallies[j].Class })
	}
	return s.tallies, s.positives, s.negatives
}

// ---------------------------------------------------------------------------
// Prepared.GapsFor / Prepared.TimesFor
// ---------------------------------------------------------------------------

// Gaps serves the window's fatal inter-arrival gaps (seconds), exactly
// learner.FatalGaps over the window slice.
func (s *State) Gaps() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gapsOut == nil {
		s.gapsOut = make([]float64, len(s.gaps))
		for i := range s.gaps {
			s.gapsOut[i] = s.gaps[i].Gap
		}
	}
	return s.gapsOut
}

// FatalTimes serves the window's fatal timestamps, exactly
// learner.FatalTimes over the window slice.
func (s *State) FatalTimes() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.times == nil {
		s.times = make([]int64, len(s.fatals))
		for i := range s.fatals {
			s.times[i] = s.fatals[i].T
		}
	}
	return s.times
}
