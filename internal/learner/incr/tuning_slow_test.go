//go:build slow

package incr_test

// Slow-mode sizes: the long equivalence campaign (scripts/verify.sh runs
// it with -race).
const (
	eqSeeds  = 24
	eqSteps  = 120
	eqEvents = 8000
)
