package learner

import (
	"strings"
	"testing"

	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Association: "association", Statistical: "statistical",
		Distribution: "distribution", Kind(9): "Kind(9)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestRuleIDStable(t *testing.T) {
	a := Rule{Kind: Association, Body: []int{3, 17}, Target: 40, Confidence: 0.9}
	b := Rule{Kind: Association, Body: []int{3, 17}, Target: 40, Confidence: 0.2}
	if a.ID() != b.ID() {
		t.Error("same pattern, different IDs")
	}
	c := Rule{Kind: Association, Body: []int{3, 18}, Target: 40}
	if a.ID() == c.ID() {
		t.Error("different bodies, same ID")
	}
	d := Rule{Kind: Association, Body: []int{3, 17}, Target: 41}
	if a.ID() == d.ID() {
		t.Error("different targets, same ID")
	}
}

func TestStatisticalRuleID(t *testing.T) {
	r := Rule{Kind: Statistical, Count: 4, Confidence: 0.99}
	if r.ID() != "stat:k=4" {
		t.Errorf("ID = %q", r.ID())
	}
}

func TestDistributionRuleIDBuckets(t *testing.T) {
	w := stats.Weibull{Scale: 19984.8, Shape: 0.508}
	// Trigger points within ~15% share a bucket; far apart ones differ.
	a := Rule{Kind: Distribution, Dist: w, ElapsedSec: 20000}
	b := Rule{Kind: Distribution, Dist: w, ElapsedSec: 20400}
	c := Rule{Kind: Distribution, Dist: w, ElapsedSec: 45000}
	if a.ID() != b.ID() {
		t.Errorf("near triggers split: %q vs %q", a.ID(), b.ID())
	}
	if a.ID() == c.ID() {
		t.Errorf("far triggers merged: %q", a.ID())
	}
	nilDist := Rule{Kind: Distribution}
	if !strings.Contains(nilDist.ID(), "none") {
		t.Errorf("nil-dist ID = %q", nilDist.ID())
	}
}

func TestRuleStringMentionsStats(t *testing.T) {
	r := Rule{Kind: Association, Body: []int{1}, Target: 2, Confidence: 0.5, Support: 0.02}
	if s := r.String(); !strings.Contains(s, "conf=0.50") {
		t.Errorf("String = %q", s)
	}
}

func TestNormalizeBody(t *testing.T) {
	got := NormalizeBody([]int{5, 1, 5, 3, 1})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("NormalizeBody = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeBody = %v, want %v", got, want)
		}
	}
}

func TestParamsWindow(t *testing.T) {
	if (Params{WindowSec: 300}).Window() != 300_000 {
		t.Error("Window conversion wrong")
	}
}

// tagged builds a minimal tagged event.
func tagged(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000, Facility: raslog.Kernel},
		Class: class, Fatal: fatal,
	}
}

func TestBuildEventSets(t *testing.T) {
	p := Params{WindowSec: 300}
	events := []preprocess.TaggedEvent{
		tagged(0, 10, false),
		tagged(100, 11, false),
		tagged(250, 99, true), // set: {10, 11} => 99
		tagged(1000, 12, false),
		tagged(1600, 98, true), // no precursor within 300 s: skipped
		tagged(2000, 10, false),
		tagged(2010, 10, false), // duplicate class: one item
		tagged(2100, 97, true),  // set: {10} => 97
	}
	sets := BuildEventSets(events, p, 0)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %v", len(sets), sets)
	}
	if sets[0].Target != 99 || len(sets[0].Items) != 2 {
		t.Errorf("set 0 = %+v", sets[0])
	}
	if sets[1].Target != 97 || len(sets[1].Items) != 1 || sets[1].Items[0] != 10 {
		t.Errorf("set 1 = %+v", sets[1])
	}
}

func TestBuildEventSetsExcludesFatalItems(t *testing.T) {
	p := Params{WindowSec: 300}
	events := []preprocess.TaggedEvent{
		tagged(0, 99, true),
		tagged(50, 10, false),
		tagged(100, 98, true), // window holds fatal 99 and non-fatal 10
	}
	sets := BuildEventSets(events, p, 0)
	if len(sets) != 1 {
		t.Fatalf("got %d sets", len(sets))
	}
	for _, it := range sets[0].Items {
		if it == 99 {
			t.Error("fatal event leaked into itemset")
		}
	}
}

func TestBuildEventSetsMaxItems(t *testing.T) {
	p := Params{WindowSec: 300}
	var events []preprocess.TaggedEvent
	for i := 0; i < 20; i++ {
		events = append(events, tagged(int64(i), 10+i, false))
	}
	events = append(events, tagged(30, 99, true))
	sets := BuildEventSets(events, p, 5)
	if len(sets) != 1 || len(sets[0].Items) != 5 {
		t.Fatalf("sets = %+v", sets)
	}
	// The cap keeps the most recent classes.
	for _, it := range sets[0].Items {
		if it < 25 {
			t.Errorf("kept old item %d instead of recent ones", it)
		}
	}
}

func TestFatalGapsAndTimes(t *testing.T) {
	events := []preprocess.TaggedEvent{
		tagged(0, 99, true),
		tagged(5, 1, false),
		tagged(10, 98, true),
		tagged(100, 97, true),
	}
	gaps := FatalGaps(events)
	if len(gaps) != 2 || gaps[0] != 10 || gaps[1] != 90 {
		t.Errorf("gaps = %v", gaps)
	}
	times := FatalTimes(events)
	if len(times) != 3 || times[0] != 0 || times[2] != 100_000 {
		t.Errorf("times = %v", times)
	}
	if FatalGaps(nil) != nil {
		t.Error("empty input gave gaps")
	}
}

func TestFatalGapsSkipsZeroGaps(t *testing.T) {
	events := []preprocess.TaggedEvent{
		tagged(10, 99, true),
		tagged(10, 98, true), // same second
		tagged(20, 97, true),
	}
	gaps := FatalGaps(events)
	for _, g := range gaps {
		if g <= 0 {
			t.Errorf("non-positive gap %g", g)
		}
	}
}
