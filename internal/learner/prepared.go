package learner

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/preprocess"
)

// Workers resolves a parallelism knob to a worker count: values above one
// are taken literally, one forces the serial path, and zero (the default
// everywhere) means runtime.GOMAXPROCS(0). Negative values are treated as
// zero.
func Workers(n int) int {
	if n == 1 {
		return 1
	}
	if n > 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Prepared is the shared training view handed to every base learner: the
// time-sorted tagged stream plus lazily-built, cached derivations of it
// (event sets, fatal timestamps, fatal inter-arrival gaps). One Prepared
// per training pass means the expensive BuildEventSets scan happens once
// even when several learners (or several Apriori configurations) ask for
// it, and the meta-learner can run its base learners concurrently — all
// accessors are safe for concurrent use.
type Prepared struct {
	// Events is the raw training stream; read-only.
	Events []preprocess.TaggedEvent

	// SetsFor, when non-nil, overrides the batch event-set builder — the
	// engine installs an incremental cross-retraining cache here. It must
	// return exactly what BuildEventSets(Events, p, maxItems) would.
	SetsFor func(windowMs int64, maxItems int) []EventSet

	mu      sync.Mutex
	sets    map[setsKey][]EventSet
	gaps    []float64
	gapsOK  bool
	times   []int64
	timesOK bool
}

type setsKey struct {
	windowMs int64
	maxItems int
}

// Prepare wraps a training stream for the learners. Install SetsFor (if
// any) before handing the Prepared to concurrent consumers.
func Prepare(events []preprocess.TaggedEvent) *Prepared {
	return &Prepared{Events: events}
}

// EventSets returns the association-rule transactions for the stream,
// building them on first use and caching per (window, maxItems). The
// returned slice is shared: callers must not mutate it.
func (tr *Prepared) EventSets(p Params, maxItems int) []EventSet {
	key := setsKey{windowMs: p.Window(), maxItems: maxItems}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if sets, ok := tr.sets[key]; ok {
		return sets
	}
	var sets []EventSet
	if tr.SetsFor != nil {
		sets = tr.SetsFor(key.windowMs, maxItems)
	} else {
		sets = BuildEventSets(tr.Events, p, maxItems)
	}
	if tr.sets == nil {
		tr.sets = make(map[setsKey][]EventSet, 2)
	}
	tr.sets[key] = sets
	return sets
}

// FatalTimes returns the fatal timestamps of the stream (cached).
func (tr *Prepared) FatalTimes() []int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.timesOK {
		tr.times = FatalTimes(tr.Events)
		tr.timesOK = true
	}
	return tr.times
}

// FatalGaps returns the fatal inter-arrival gaps of the stream (cached).
// The returned slice is shared: callers must not mutate it.
func (tr *Prepared) FatalGaps() []float64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.gapsOK {
		tr.gaps = FatalGaps(tr.Events)
		tr.gapsOK = true
	}
	return tr.gaps
}

// EventSetCache maintains BuildEventSets output incrementally across the
// sliding training windows of a retraining sequence. Consecutive windows
// (26 weeks sliding by 4) overlap by ~85%, and an event set depends only
// on its fatal event's W_P-sized lookback, so almost every set of the
// previous window is byte-identical in the next one. The cache rebuilds
// only the boundary sets — fatals within W_P of the new window start,
// whose lookback was truncated differently — and the newly-arrived tail.
//
// Results are exactly BuildEventSets(events[from:to]) by construction:
// a retained set's lookback lies fully inside both the old and the new
// window, so the serial builder would produce the identical set.
type EventSetCache struct {
	mu      sync.Mutex
	entries map[setsKey]cacheEntry
}

type cacheEntry struct {
	from, to int64 // the [from, to) time range the sets were built for
	sets     []EventSet
}

// NewEventSetCache returns an empty cache.
func NewEventSetCache() *EventSetCache {
	return &EventSetCache{entries: make(map[setsKey]cacheEntry, 2)}
}

// Sets returns the event sets of the stream slice covering [from, to) —
// equal to BuildEventSets over that slice — reusing the previous call's
// sets where the window overlap allows. events must be the same
// time-sorted stream across calls, and from must not move backwards
// between calls (a full rebuild happens otherwise).
func (c *EventSetCache) Sets(events []preprocess.TaggedEvent, from, to, windowMs int64, maxItems int) []EventSet {
	idx := func(t int64) int {
		return sort.Search(len(events), func(i int) bool { return events[i].Time >= t })
	}
	key := setsKey{windowMs: windowMs, maxItems: maxItems}
	lo, hi := idx(from), idx(to)

	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok || from < ent.from {
		sets := buildEventSetsRange(events, lo, lo, hi, windowMs, maxItems)
		c.entries[key] = cacheEntry{from: from, to: to, sets: sets}
		return sets
	}

	// headEnd is the first timestamp whose lookback cannot cross the new
	// window start: sets at or after it are start-independent.
	headEnd := from + windowMs
	if headEnd > to {
		headEnd = to
	}
	out := buildEventSetsRange(events, lo, lo, idx(headEnd), windowMs, maxItems)
	for _, s := range ent.sets {
		if s.Time >= headEnd && s.Time < to {
			out = append(out, s)
		}
	}
	tailStart := ent.to
	if tailStart < headEnd {
		tailStart = headEnd
	}
	if tailStart < to {
		out = append(out, buildEventSetsRange(events, lo, idx(tailStart), hi, windowMs, maxItems)...)
	}
	c.entries[key] = cacheEntry{from: from, to: to, sets: out}
	return out
}
