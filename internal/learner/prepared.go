package learner

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/preprocess"
)

// Workers resolves a parallelism knob to a worker count: values above one
// are taken literally, one forces the serial path, and zero (the default
// everywhere) means runtime.GOMAXPROCS(0). Negative values are treated as
// zero.
func Workers(n int) int {
	if n == 1 {
		return 1
	}
	if n > 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Prepared is the shared training view handed to every base learner: the
// time-sorted tagged stream plus lazily-built, cached derivations of it
// (event sets, fatal timestamps, fatal inter-arrival gaps). One Prepared
// per training pass means the expensive BuildEventSets scan happens once
// even when several learners (or several Apriori configurations) ask for
// it, and the meta-learner can run its base learners concurrently — all
// accessors are safe for concurrent use.
type Prepared struct {
	// Events is the raw training stream; read-only.
	Events []preprocess.TaggedEvent

	// SetsFor, when non-nil, overrides the batch event-set builder — the
	// engine installs an incremental cross-retraining cache here. It must
	// return exactly what BuildEventSets(Events, p, maxItems) would.
	SetsFor func(windowMs int64, maxItems int) []EventSet
	// GapsFor and TimesFor, when non-nil, override the batch fatal-gap /
	// fatal-time extraction the same way: an incremental maintainer
	// (internal/learner/incr) serves its window deques here. They must
	// return exactly what FatalGaps(Events) / FatalTimes(Events) would.
	GapsFor  func() []float64
	TimesFor func() []int64

	// Itemsets, FailureRuns and Tallies, when non-nil, offer maintained
	// sufficient statistics to the learners that can mine from counts
	// instead of rescanning the stream. Each learner checks the CanServe
	// guard and falls back to its batch pass on a mismatch, so installing
	// these is always safe.
	Itemsets    ItemsetCounts
	FailureRuns FailureRunCounts
	Tallies     ClassTallies

	mu      sync.Mutex
	sets    map[setsKey][]EventSet
	gaps    []float64
	gapsOK  bool
	times   []int64
	timesOK bool
}

type setsKey struct {
	windowMs int64
	maxItems int
}

// Prepare wraps a training stream for the learners. Install SetsFor (if
// any) before handing the Prepared to concurrent consumers.
func Prepare(events []preprocess.TaggedEvent) *Prepared {
	return &Prepared{Events: events}
}

// EventSets returns the association-rule transactions for the stream,
// building them on first use and caching per (window, maxItems). The
// returned slice is shared: callers must not mutate it.
func (tr *Prepared) EventSets(p Params, maxItems int) []EventSet {
	key := setsKey{windowMs: p.Window(), maxItems: maxItems}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if sets, ok := tr.sets[key]; ok {
		return sets
	}
	var sets []EventSet
	if tr.SetsFor != nil {
		sets = tr.SetsFor(key.windowMs, maxItems)
	} else {
		sets = BuildEventSets(tr.Events, p, maxItems)
	}
	if tr.sets == nil {
		tr.sets = make(map[setsKey][]EventSet, 2)
	}
	tr.sets[key] = sets
	return sets
}

// FatalTimes returns the fatal timestamps of the stream (cached).
func (tr *Prepared) FatalTimes() []int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.timesOK {
		if tr.TimesFor != nil {
			tr.times = tr.TimesFor()
		} else {
			tr.times = FatalTimes(tr.Events)
		}
		tr.timesOK = true
	}
	return tr.times
}

// FatalGaps returns the fatal inter-arrival gaps of the stream (cached).
// The returned slice is shared: callers must not mutate it.
func (tr *Prepared) FatalGaps() []float64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.gapsOK {
		if tr.GapsFor != nil {
			tr.gaps = tr.GapsFor()
		} else {
			tr.gaps = FatalGaps(tr.Events)
		}
		tr.gapsOK = true
	}
	return tr.gaps
}

// EventSetCache maintains BuildEventSets output incrementally across the
// sliding training windows of a retraining sequence. Consecutive windows
// (26 weeks sliding by 4) overlap by ~85%, and an event set depends only
// on its fatal event's W_P-sized lookback, so almost every set of the
// previous window is byte-identical in the next one. The cache rebuilds
// only the boundary sets — fatals within W_P of the new window start,
// whose lookback was truncated differently — and the newly-arrived tail.
//
// Results are exactly BuildEventSets(events[from:to]) by construction:
// a retained set's lookback lies fully inside both the old and the new
// window, so the serial builder would produce the identical set.
type EventSetCache struct {
	mu      sync.Mutex
	entries map[setsKey]cacheEntry
}

type cacheEntry struct {
	from, to int64 // the [from, to) time range the sets were built for
	sets     []EventSet
}

// NewEventSetCache returns an empty cache.
func NewEventSetCache() *EventSetCache {
	return &EventSetCache{entries: make(map[setsKey]cacheEntry, 2)}
}

// SetsDelta describes how one window advance changed the cached event
// sets: Removed left the window (expired, or a boundary set whose
// truncated lookback changed its items), Added entered it. Applying the
// delta to the previous window's multiset yields the new one exactly —
// this is what keeps incremental Apriori counts in sync. Rebuild marks a
// from-scratch build (no usable overlap); Removed is then empty and Added
// holds the full window.
type SetsDelta struct {
	Removed []EventSet
	Added   []EventSet
	Rebuild bool
}

// Sets returns the event sets of the stream slice covering [from, to) —
// equal to BuildEventSets over that slice — reusing the previous call's
// sets where the window overlap allows. events must be the same
// time-sorted stream across calls, and from must not move backwards
// between calls (a full rebuild happens otherwise). The returned slice
// is reused in place by the next call: it is valid until then only.
func (c *EventSetCache) Sets(events []preprocess.TaggedEvent, from, to, windowMs int64, maxItems int) []EventSet {
	sets, _ := c.Advance(events, from, to, windowMs, maxItems)
	return sets
}

// Advance is Sets plus the exact delta against the previous window. A
// window sliding forward evicts only the expired prefix and rebuilds only
// the boundary region (fatals within windowMs of the new start, whose
// lookback truncation may have changed their items) — sets in the
// untouched middle are reused verbatim and never appear in the delta, so
// a slide-by-one advance reports a delta of a handful of sets, not a
// whole-window invalidation.
func (c *EventSetCache) Advance(events []preprocess.TaggedEvent, from, to, windowMs int64, maxItems int) ([]EventSet, SetsDelta) {
	idx := func(t int64) int {
		return sort.Search(len(events), func(i int) bool { return events[i].Time >= t })
	}
	key := setsKey{windowMs: windowMs, maxItems: maxItems}
	lo, hi := idx(from), idx(to)

	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if !ok || from < ent.from || to < ent.to {
		sets := buildEventSetsRange(events, lo, lo, hi, windowMs, maxItems)
		c.entries[key] = cacheEntry{from: from, to: to, sets: sets}
		return sets, SetsDelta{Added: sets, Rebuild: true}
	}

	// The slide path works in place on the cached slice, so an advance
	// costs O(expired + boundary + appended), never O(window): the
	// expired prefix is cut off (the sets are time-ordered), the boundary
	// region is patched where it sits, and the tail is appended. The
	// returned slice is therefore only valid until the next Advance —
	// callers needing the previous window across calls must copy it.
	var delta SetsDelta
	live := ent.sets
	if from != ent.from {
		// Expired prefix: eviction is a binary search and a slice cut.
		cut := sort.Search(len(live), func(i int) bool { return live[i].Time >= from })
		delta.Removed = append(delta.Removed, live[:cut]...)
		live = live[cut:]
		// headEnd is the first timestamp whose lookback cannot cross the
		// new window start: sets at or after it are start-independent.
		headEnd := from + windowMs
		if headEnd > to {
			headEnd = to
		}
		h := sort.Search(len(live), func(i int) bool { return live[i].Time >= headEnd })
		newHead := buildEventSetsRange(events, lo, lo, idx(headEnd), windowMs, maxItems)
		diffSets(live[:h], newHead, &delta)
		if len(newHead) == h {
			// Same fatal count at the boundary (the usual case: lookback
			// truncation changes items, not which sets exist): overwrite.
			copy(live, newHead)
		} else {
			// Set count changed at the boundary: splice into a fresh
			// slice. Rare, so the O(window) copy does not matter.
			merged := make([]EventSet, 0, len(newHead)+len(live)-h)
			merged = append(merged, newHead...)
			live = append(merged, live[h:]...)
		}
	}
	tailStart := ent.to
	if ts := from + windowMs; tailStart < ts && from != ent.from {
		// The head rebuild above already covered [from, from+windowMs).
		tailStart = ts
	}
	if tailStart > to {
		tailStart = to
	}
	if tailStart < to {
		tail := buildEventSetsRange(events, lo, idx(tailStart), hi, windowMs, maxItems)
		live = append(live, tail...)
		delta.Added = append(delta.Added, tail...)
	}
	c.entries[key] = cacheEntry{from: from, to: to, sets: live}
	return live, delta
}

// diffSets computes the multiset delta between the old and the rebuilt
// boundary region. Both slices are time-ordered projections of the same
// fatal sequence, so a two-pointer walk pairs unchanged sets; anything
// unpaired is removed/added.
func diffSets(old, new []EventSet, delta *SetsDelta) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		o, n := &old[i], &new[j]
		if o.Time == n.Time && o.Target == n.Target && equalItems(o.Items, n.Items) {
			i, j = i+1, j+1
			continue
		}
		if o.Time <= n.Time {
			delta.Removed = append(delta.Removed, *o)
			i++
		} else {
			delta.Added = append(delta.Added, *n)
			j++
		}
	}
	delta.Removed = append(delta.Removed, old[i:]...)
	delta.Added = append(delta.Added, new[j:]...)
}

func equalItems(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Seed installs a known-good window into the cache — snapshot restore
// hands back the sets it persisted so the first post-recovery Advance is
// a delta, not a rebuild. The sets must be exactly BuildEventSets output
// for [from, to) under (windowMs, maxItems).
func (c *EventSetCache) Seed(windowMs int64, maxItems int, from, to int64, sets []EventSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[setsKey{windowMs: windowMs, maxItems: maxItems}] =
		cacheEntry{from: from, to: to, sets: sets}
}
