package learner

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/preprocess"
)

func deltaStream(seed int64, n int) []preprocess.TaggedEvent {
	rng := rand.New(rand.NewSource(seed))
	events := make([]preprocess.TaggedEvent, n)
	t := int64(0)
	for i := range events {
		t += int64(rng.Intn(15_000))
		events[i].Time = t
		events[i].Class = rng.Intn(30)
		if rng.Float64() < 0.15 {
			events[i].Fatal = true
			events[i].Class = 100 + rng.Intn(3)
		}
	}
	return events
}

// applyDelta checks that prev + delta == next as multisets, i.e. the
// delta is exact — the invariant incremental Apriori counting relies on.
func applyDelta(t *testing.T, prev, next []EventSet, d SetsDelta) {
	t.Helper()
	type key struct {
		time   int64
		target int
	}
	counts := make(map[key][]EventSet)
	for _, s := range prev {
		k := key{s.Time, s.Target}
		counts[k] = append(counts[k], s)
	}
	remove := func(s EventSet) bool {
		k := key{s.Time, s.Target}
		for i, c := range counts[k] {
			if equalItems(c.Items, s.Items) {
				counts[k] = append(counts[k][:i], counts[k][i+1:]...)
				return true
			}
		}
		return false
	}
	for _, s := range d.Removed {
		if !remove(s) {
			t.Fatalf("delta removed a set not present: %+v", s)
		}
	}
	var rest []EventSet
	for _, c := range counts {
		rest = append(rest, c...)
	}
	rest = append(rest, d.Added...)
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Time != rest[j].Time {
			return rest[i].Time < rest[j].Time
		}
		return rest[i].Target < rest[j].Target
	})
	want := append([]EventSet(nil), next...)
	sort.Slice(want, func(i, j int) bool {
		if want[i].Time != want[j].Time {
			return want[i].Time < want[j].Time
		}
		return want[i].Target < want[j].Target
	})
	if !reflect.DeepEqual(rest, want) {
		t.Fatalf("prev + delta != next (%d vs %d sets)", len(rest), len(want))
	}
}

// TestEventSetCacheSlideByOne is the regression test for the overlap
// reuse fix: sliding the window start past a single event must evict
// only the expired prefix and rebuild only the boundary region — the
// reported delta stays bounded by those, never a whole-set invalidation.
func TestEventSetCacheSlideByOne(t *testing.T) {
	events := deltaStream(3, 4000)
	const windowMs = 120_000
	span := events[len(events)-1].Time
	winLen := span / 2

	c := NewEventSetCache()
	from, to := int64(0), winLen
	cur, d := c.Advance(events, from, to, windowMs, 30)
	if !d.Rebuild {
		t.Fatal("first advance must rebuild")
	}
	// Advance reuses the returned slice in place, so the previous window
	// must be snapshotted before the next call.
	prev := append([]EventSet(nil), cur...)

	for step := 0; step < 200 && to <= span; step++ {
		// Slide the start past exactly one event, the end past a few.
		i := sort.Search(len(events), func(i int) bool { return events[i].Time >= from })
		if i+1 >= len(events) {
			break
		}
		from = events[i].Time + 1
		to += 3_000

		next, d := c.Advance(events, from, to, windowMs, 30)
		if d.Rebuild {
			t.Fatalf("step %d: slide-by-one caused a rebuild", step)
		}
		applyDelta(t, prev, next, d)

		// The delta must be local: expired sets (before the new start),
		// boundary sets (within W_P of it), and the appended tail — the
		// untouched middle never churns.
		boundary := from + windowMs
		for _, s := range d.Removed {
			if s.Time >= boundary {
				t.Fatalf("step %d: removed a set beyond the boundary region (t=%d, boundary=%d)", step, s.Time, boundary)
			}
		}
		want := BuildEventSets(events[sort.Search(len(events), func(i int) bool { return events[i].Time >= from }):sort.Search(len(events), func(i int) bool { return events[i].Time >= to })], Params{WindowSec: windowMs / 1000}, 30)
		if !reflect.DeepEqual(next, want) {
			t.Fatalf("step %d: cached sets diverge from batch build", step)
		}
		prev = append(prev[:0], next...)
	}
}

// TestEventSetCacheGrowOnly pins the fast path: when the window start
// does not move, every previous set survives and the delta contains only
// the appended tail.
func TestEventSetCacheGrowOnly(t *testing.T) {
	events := deltaStream(5, 3000)
	const windowMs = 120_000
	span := events[len(events)-1].Time

	c := NewEventSetCache()
	prev, _ := c.Advance(events, 0, span/2, windowMs, 30)
	next, d := c.Advance(events, 0, span/2+span/8, windowMs, 30)
	if d.Rebuild {
		t.Fatal("end-only growth caused a rebuild")
	}
	if len(d.Removed) != 0 {
		t.Fatalf("end-only growth removed %d sets", len(d.Removed))
	}
	for _, s := range d.Added {
		if s.Time < span/2 {
			t.Fatalf("end-only growth re-added a pre-existing set (t=%d)", s.Time)
		}
	}
	if !reflect.DeepEqual(next[:len(prev)], prev) {
		t.Fatal("end-only growth did not reuse the previous sets verbatim")
	}
	want := BuildEventSets(events[:sort.Search(len(events), func(i int) bool { return events[i].Time >= span/2+span/8 })], Params{WindowSec: windowMs / 1000}, 30)
	if !reflect.DeepEqual(next, want) {
		t.Fatal("cached sets diverge from batch build")
	}
}
