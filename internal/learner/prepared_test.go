package learner

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

func TestWorkers(t *testing.T) {
	if Workers(1) != 1 {
		t.Errorf("Workers(1) = %d", Workers(1))
	}
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d", Workers(0))
	}
	if Workers(-2) != Workers(0) {
		t.Errorf("Workers(-2) = %d, want the GOMAXPROCS default", Workers(-2))
	}
}

func mkEv(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

// noisyStream builds a deterministic mixed stream: bursts of non-fatal
// classes with interleaved fatals at irregular spacing, long enough that
// sliding windows cut it at many different boundaries.
func noisyStream(seed uint64, n int) []preprocess.TaggedEvent {
	r := stats.NewRNG(seed)
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for len(events) < n {
		tm += int64(5 + r.Intn(120))
		if r.Intn(7) == 0 {
			events = append(events, mkEv(tm, 90+r.Intn(4), true))
		} else {
			events = append(events, mkEv(tm, r.Intn(12), false))
		}
	}
	return events
}

func TestPreparedCachesEventSets(t *testing.T) {
	events := noisyStream(1, 400)
	tr := Prepare(events)
	p := Params{WindowSec: 300}
	a := tr.EventSets(p, 30)
	b := tr.EventSets(p, 30)
	if len(a) == 0 {
		t.Fatal("no event sets built")
	}
	if &a[0] != &b[0] {
		t.Error("second EventSets call rebuilt instead of using the cache")
	}
	c := tr.EventSets(p, 5) // different maxItems: distinct cache entry
	if len(c) > 0 && len(a) > 0 && &a[0] == &c[0] {
		t.Error("maxItems variants share a cache entry")
	}
	if got, want := tr.FatalTimes(), FatalTimes(events); !reflect.DeepEqual(got, want) {
		t.Error("FatalTimes mismatch")
	}
	if got, want := tr.FatalGaps(), FatalGaps(events); !reflect.DeepEqual(got, want) {
		t.Error("FatalGaps mismatch")
	}
}

// TestEventSetCacheMatchesBatch slides a training window forward in
// irregular steps — exactly the retraining sequence shape — and checks
// the incremental cache reproduces the batch builder byte for byte at
// every step, across window sizes and item caps.
func TestEventSetCacheMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		events := noisyStream(seed, 1500)
		last := events[len(events)-1].Time
		idx := func(tms int64) int {
			return sort.Search(len(events), func(i int) bool { return events[i].Time >= tms })
		}
		for _, windowMs := range []int64{60_000, 300_000} {
			for _, maxItems := range []int{0, 8} {
				cache := NewEventSetCache()
				p := Params{WindowSec: windowMs / 1000}
				from, to := events[0].Time, events[0].Time+last/4
				r := stats.NewRNG(seed + 1)
				for step := 0; step < 12 && to <= last; step++ {
					got := cache.Sets(events, from, to, windowMs, maxItems)
					want := BuildEventSets(events[idx(from):idx(to)], p, maxItems)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d W %d maxItems %d step %d: cache diverged (%d vs %d sets)",
							seed, windowMs, maxItems, step, len(got), len(want))
					}
					// Advance like Sliding (both bounds) or Whole (to only).
					to += int64(1+r.Intn(3)) * last / 20
					if r.Intn(3) > 0 {
						from += int64(r.Intn(3)) * last / 25
					}
					if from > to {
						from = to
					}
				}
			}
		}
	}
}

// TestEventSetCacheRebuildsOnRegression pins the fallback: a window start
// moving backwards (not a retraining pattern) must still be exact.
func TestEventSetCacheRebuildsOnRegression(t *testing.T) {
	events := noisyStream(7, 600)
	idx := func(tms int64) int {
		return sort.Search(len(events), func(i int) bool { return events[i].Time >= tms })
	}
	cache := NewEventSetCache()
	p := Params{WindowSec: 300}
	mid, end := events[300].Time, events[len(events)-1].Time+1
	cache.Sets(events, mid, end, 300_000, 0)
	got := cache.Sets(events, events[0].Time, end, 300_000, 0)
	want := BuildEventSets(events[idx(events[0].Time):idx(end)], p, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("regressed window diverged: %d vs %d sets", len(got), len(want))
	}
}
