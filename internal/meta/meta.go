// Package meta implements the meta-learner (paper §4.1, Figure 6) and the
// knowledge repository it maintains.
//
// The meta-learner is a mixture-of-experts ensemble: it runs all three
// base learners over the training set, merges their candidate rules, and
// (normally) passes them through the reviser. The resulting rule set is
// what the predictor consults at runtime, with the fixed expert ordering
// association → statistical → probability distribution encoded in package
// predictor. The repository tracks rule churn across retrainings — the
// unchanged/added/removed counts of Figure 12.
package meta

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/learner"
	"repro/internal/learner/assoc"
	"repro/internal/learner/bayes"
	"repro/internal/learner/probdist"
	"repro/internal/learner/statrule"
	"repro/internal/preprocess"
	"repro/internal/reviser"
)

// MetaLearner bundles the three base learners and the reviser.
type MetaLearner struct {
	Assoc *assoc.Learner
	Stat  *statrule.Learner
	Prob  *probdist.Learner
	// Extra holds additional base learners beyond the paper's three —
	// the paper notes "other predictive methods can be easily
	// incorporated into our framework", and the bayes package provides
	// one (see AddBayes). Extras run after the core three.
	Extra []learner.Learner
	// Reviser filters the merged candidates; set UseReviser false to
	// measure its contribution (Figure 11).
	Reviser    *reviser.Reviser
	UseReviser bool
	// Parallelism bounds how many base learners run concurrently: 0 means
	// GOMAXPROCS, 1 forces the serial pass. Candidates merge in the fixed
	// learner order either way, so the trained rule set is identical.
	// SetParallelism propagates the knob into the components that have
	// internal parallelism of their own.
	Parallelism int
}

// New returns a meta-learner with every component at the paper's defaults.
func New() *MetaLearner {
	return &MetaLearner{
		Assoc:      assoc.New(),
		Stat:       statrule.New(),
		Prob:       probdist.New(),
		Reviser:    reviser.New(),
		UseReviser: true,
	}
}

// AddBayes appends the naive-Bayes indicator learner (package bayes) to
// the ensemble, exercising the paper's claim that other predictive
// methods are easily incorporated. Returns m for chaining.
func (m *MetaLearner) AddBayes() *MetaLearner {
	m.Extra = append(m.Extra, bayes.New())
	return m
}

// SetParallelism sets the training parallelism knob on the meta-learner
// and every component with internal parallelism (Apriori counting,
// reviser scoring). Returns m for chaining.
func (m *MetaLearner) SetParallelism(p int) *MetaLearner {
	m.Parallelism = p
	if m.Assoc != nil {
		m.Assoc.Parallelism = p
	}
	if m.Reviser != nil {
		m.Reviser.Parallelism = p
	}
	return m
}

// TrainReport is the outcome of one (re)training pass.
type TrainReport struct {
	// CandidatesByLearner holds each base learner's raw output.
	CandidatesByLearner map[string][]learner.Rule
	// Candidates is the merged, ID-deduplicated candidate set.
	Candidates []learner.Rule
	// Kept is the final rule set after revision (== Candidates when the
	// reviser is disabled).
	Kept []learner.Rule
	// Scores carries the reviser's per-rule scorecard (nil when disabled).
	Scores []reviser.RuleScore
	// LearnerDurations and ReviseDuration are the Table 5 timings;
	// TotalDuration covers the whole pass (learners + merge + revision).
	LearnerDurations map[string]time.Duration
	ReviseDuration   time.Duration
	TotalDuration    time.Duration
}

// Train runs every base learner on the training stream, merges and
// revises. Learners that legitimately find nothing (e.g. too few failures
// for a distribution fit) contribute zero rules rather than failing the
// pass.
func (m *MetaLearner) Train(events []preprocess.TaggedEvent, p learner.Params) (*TrainReport, error) {
	return m.TrainPrepared(learner.Prepare(events), p)
}

// TrainPrepared is Train over a prepared training view — callers that
// maintain derived state across retrainings (the engine's incremental
// event-set cache) prepare the view themselves and come in here.
//
// The base learners run concurrently, bounded by the Parallelism knob;
// results are collected into per-learner slots and merged in the fixed
// learner order afterwards, so the candidate set — and the dedupe and
// revision downstream of it — is identical to the serial pass. Error
// semantics also match: the first non-ignorable error in learner order is
// returned.
func (m *MetaLearner) TrainPrepared(tr *learner.Prepared, p learner.Params) (*TrainReport, error) {
	passStart := time.Now()
	report := &TrainReport{
		CandidatesByLearner: make(map[string][]learner.Rule, 3),
		LearnerDurations:    make(map[string]time.Duration, 3),
	}
	baseLearners := []learner.Learner{m.Assoc, m.Stat, m.Prob}
	baseLearners = append(baseLearners, m.Extra...)

	type slot struct {
		rules []learner.Rule
		err   error
		dur   time.Duration
	}
	slots := make([]slot, len(baseLearners))
	workers := learner.Workers(m.Parallelism)
	if workers > len(baseLearners) {
		workers = len(baseLearners)
	}
	if workers <= 1 {
		for i, bl := range baseLearners {
			start := time.Now()
			slots[i].rules, slots[i].err = bl.Learn(tr, p)
			slots[i].dur = time.Since(start)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, bl := range baseLearners {
			wg.Add(1)
			go func(i int, bl learner.Learner) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				start := time.Now()
				slots[i].rules, slots[i].err = bl.Learn(tr, p)
				slots[i].dur = time.Since(start)
			}(i, bl)
		}
		wg.Wait()
	}

	for i, bl := range baseLearners {
		report.LearnerDurations[bl.Name()] = slots[i].dur
		if err := slots[i].err; err != nil {
			if errors.Is(err, probdist.ErrTooFewFailures) {
				continue
			}
			return nil, fmt.Errorf("meta: %s learner: %w", bl.Name(), err)
		}
		report.CandidatesByLearner[bl.Name()] = slots[i].rules
		report.Candidates = append(report.Candidates, slots[i].rules...)
	}
	report.Candidates = dedupe(report.Candidates)

	start := time.Now()
	if m.UseReviser && m.Reviser != nil {
		report.Kept, report.Scores = m.Reviser.Revise(report.Candidates, tr.Events, p)
	} else {
		report.Kept = report.Candidates
	}
	report.ReviseDuration = time.Since(start)
	report.TotalDuration = time.Since(passStart)
	return report, nil
}

// dedupe removes rules with duplicate IDs, keeping the first (stable).
func dedupe(rules []learner.Rule) []learner.Rule {
	seen := make(map[string]bool, len(rules))
	out := rules[:0]
	for _, r := range rules {
		id := r.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, r)
	}
	return out
}
