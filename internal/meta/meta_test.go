package meta

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

var p300 = learner.Params{WindowSec: 300}

func mk(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

// richStream exercises all three learners: precursor pairs before fatal
// 99, fatal bursts, and enough fatals for a distribution fit.
func richStream() []preprocess.TaggedEvent {
	var events []preprocess.TaggedEvent
	r := stats.NewRNG(5)
	tm := int64(0)
	for i := 0; i < 60; i++ {
		// Precursor pattern then fatal.
		events = append(events,
			mk(tm, 1, false), mk(tm+40, 2, false), mk(tm+100, 99, true))
		// Burst continuation.
		for b := 0; b < 4; b++ {
			tm += 60 + int64(r.Intn(60))
			events = append(events, mk(tm+100, 98, true))
		}
		tm += 3000 + int64(r.Intn(9000))
	}
	return events
}

func TestTrainProducesAllFamilies(t *testing.T) {
	ml := New()
	report, err := ml.Train(richStream(), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.CandidatesByLearner["association"]) == 0 {
		t.Error("no association candidates")
	}
	if len(report.CandidatesByLearner["statistical"]) == 0 {
		t.Error("no statistical candidates")
	}
	if len(report.CandidatesByLearner["distribution"]) == 0 {
		t.Error("no distribution candidates")
	}
	if len(report.Kept) == 0 {
		t.Error("reviser killed everything")
	}
	if len(report.Kept) > len(report.Candidates) {
		t.Error("kept more than candidates")
	}
	for _, name := range []string{"association", "statistical", "distribution"} {
		if _, ok := report.LearnerDurations[name]; !ok {
			t.Errorf("no duration recorded for %s", name)
		}
	}
}

func TestTrainWithoutReviser(t *testing.T) {
	ml := New()
	ml.UseReviser = false
	report, err := ml.Train(richStream(), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Kept) != len(report.Candidates) {
		t.Error("reviser ran while disabled")
	}
	if report.Scores != nil {
		t.Error("scores present with reviser disabled")
	}
}

func TestTrainTooFewFailuresIsNotError(t *testing.T) {
	ml := New()
	events := []preprocess.TaggedEvent{
		mk(0, 1, false), mk(10, 2, false), mk(20, 99, true),
	}
	report, err := ml.Train(events, p300)
	if err != nil {
		t.Fatalf("sparse stream errored: %v", err)
	}
	if len(report.CandidatesByLearner["distribution"]) != 0 {
		t.Error("distribution fitted from one failure")
	}
}

func TestTrainEmptyStream(t *testing.T) {
	report, err := New().Train(nil, p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Candidates) != 0 || len(report.Kept) != 0 {
		t.Errorf("rules from empty stream: %+v", report)
	}
}

func TestDedupe(t *testing.T) {
	a := learner.Rule{Kind: learner.Statistical, Count: 2}
	b := learner.Rule{Kind: learner.Statistical, Count: 2, Confidence: 0.9}
	c := learner.Rule{Kind: learner.Statistical, Count: 3}
	out := dedupe([]learner.Rule{a, b, c})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d rules", len(out))
	}
	if out[0].Confidence != 0 {
		t.Error("dedupe did not keep first occurrence")
	}
}

func TestRepositoryUpdateChurn(t *testing.T) {
	repo := NewRepository()
	r1 := learner.Rule{Kind: learner.Statistical, Count: 2}
	r2 := learner.Rule{Kind: learner.Statistical, Count: 3}
	r3 := learner.Rule{Kind: learner.Statistical, Count: 4}
	r4 := learner.Rule{Kind: learner.Statistical, Count: 5}

	// First training: r1, r2 kept; r3 mined but rejected.
	c := repo.Update(&TrainReport{
		Candidates: []learner.Rule{r1, r2, r3},
		Kept:       []learner.Rule{r1, r2},
	})
	if c.Added != 2 || c.Unchanged != 0 || c.RemovedByReviser != 1 || c.RemovedByMeta != 0 {
		t.Errorf("first churn = %+v", c)
	}
	if repo.Len() != 2 {
		t.Errorf("repo size = %d", repo.Len())
	}

	// Second: r1 re-learned, r2 not mined at all, r4 new, r3 rejected again.
	c = repo.Update(&TrainReport{
		Candidates: []learner.Rule{r1, r3, r4},
		Kept:       []learner.Rule{r1, r4},
	})
	if c.Unchanged != 1 || c.Added != 1 || c.RemovedByMeta != 1 || c.RemovedByReviser != 1 {
		t.Errorf("second churn = %+v", c)
	}
	if repo.Len() != 2 {
		t.Errorf("repo size = %d", repo.Len())
	}
}

func TestRepositoryRulesSorted(t *testing.T) {
	repo := NewRepository()
	repo.Update(&TrainReport{Kept: []learner.Rule{
		{Kind: learner.Statistical, Count: 5},
		{Kind: learner.Statistical, Count: 2},
	}})
	rules := repo.Rules()
	if len(rules) != 2 || rules[0].ID() > rules[1].ID() {
		t.Errorf("rules unsorted: %v", rules)
	}
}

func TestChurnChangeRate(t *testing.T) {
	c := Churn{Unchanged: 10, Added: 5, RemovedByMeta: 3, RemovedByReviser: 2}
	if got := c.ChangeRate(); got != 1.0 {
		t.Errorf("ChangeRate = %g", got)
	}
	if (Churn{}).ChangeRate() != 0 {
		t.Error("zero churn rate not 0")
	}
}

func TestRepositoryRevisedRulesImproveOverCandidates(t *testing.T) {
	// Sanity: with the reviser on, kept rules' training precision is high.
	ml := New()
	report, err := ml.Train(richStream(), p300)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range report.Scores {
		if s.Kept && s.ROC < ml.Reviser.MinROC {
			t.Errorf("kept rule below MinROC: %+v", s)
		}
		if !s.Kept && s.ROC >= ml.Reviser.MinROC {
			t.Errorf("rejected rule above MinROC: %+v", s)
		}
	}
}

func TestAddBayesExtendsEnsemble(t *testing.T) {
	ml := New().AddBayes()
	report, err := ml.Train(richStream(), p300)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := report.LearnerDurations["bayes"]; !ok {
		t.Error("bayes learner did not run")
	}
	// Its indicator rules merge into the shared candidate pool (dedup may
	// collapse overlaps with apriori's singletons — the pool must at
	// least not shrink).
	plain, err := New().Train(richStream(), p300)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Candidates) < len(plain.Candidates) {
		t.Errorf("bayes shrank the candidate pool: %d < %d",
			len(report.Candidates), len(plain.Candidates))
	}
}
