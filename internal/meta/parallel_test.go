package meta

import (
	"reflect"
	"testing"

	"repro/internal/bgsim"
	"repro/internal/learner"
	"repro/internal/preprocess"
)

// bgStream generates and preprocesses a short simulated log, the same
// pipeline the engine tests use.
func bgStream(t *testing.T, seed uint64, weeks int) []preprocess.TaggedEvent {
	t.Helper()
	cfg := bgsim.ANL(seed).Scaled(weeks, 0.02)
	g, err := bgsim.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(raw)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	return z.Tag(filtered)
}

// TestTrainParallelMatchesSerial pins the tentpole guarantee: the fully
// parallel training pipeline (concurrent base learners, sharded Apriori
// counting, partitioned reviser scoring) produces the exact rule sets and
// scores of the serial pipeline, across simulated systems and seeds.
func TestTrainParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{11, 42, 2008} {
		events := bgStream(t, seed, 12)
		serial := New().SetParallelism(1)
		parallel := New().SetParallelism(4)

		want, err := serial.Train(events, p300)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		got, err := parallel.Train(events, p300)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}

		if !reflect.DeepEqual(got.CandidatesByLearner, want.CandidatesByLearner) {
			t.Errorf("seed %d: CandidatesByLearner diverged", seed)
		}
		if !reflect.DeepEqual(got.Candidates, want.Candidates) {
			t.Errorf("seed %d: Candidates diverged (%d vs %d)",
				seed, len(got.Candidates), len(want.Candidates))
		}
		if !reflect.DeepEqual(got.Kept, want.Kept) {
			t.Errorf("seed %d: Kept diverged (%d vs %d)",
				seed, len(got.Kept), len(want.Kept))
		}
		if !reflect.DeepEqual(got.Scores, want.Scores) {
			t.Errorf("seed %d: reviser scores diverged", seed)
		}
		if len(want.Kept) == 0 {
			t.Errorf("seed %d: degenerate comparison — no rules survived", seed)
		}
	}
}

// TestTrainParallelWithBayes extends the equivalence to a four-learner
// ensemble (the Extra slot).
func TestTrainParallelWithBayes(t *testing.T) {
	events := bgStream(t, 7, 12)
	want, err := New().AddBayes().SetParallelism(1).Train(events, p300)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New().AddBayes().SetParallelism(0).Train(events, p300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kept, want.Kept) {
		t.Errorf("Kept diverged (%d vs %d)", len(got.Kept), len(want.Kept))
	}
	if !reflect.DeepEqual(got.Candidates, want.Candidates) {
		t.Error("Candidates diverged")
	}
}

// TestSetParallelismPropagates checks the knob reaches the components
// with internal parallelism.
func TestSetParallelismPropagates(t *testing.T) {
	ml := New().SetParallelism(3)
	if ml.Parallelism != 3 || ml.Assoc.Parallelism != 3 || ml.Reviser.Parallelism != 3 {
		t.Errorf("parallelism = %d/%d/%d, want 3 everywhere",
			ml.Parallelism, ml.Assoc.Parallelism, ml.Reviser.Parallelism)
	}
	var _ learner.Learner = ml.Assoc // interface still satisfied
}
