package meta

import (
	"repro/internal/learner"
	"repro/internal/learner/bayes"
	"repro/internal/learner/incr"
)

// IncrConfig derives the incremental sufficient-statistics configuration
// that serves this ensemble exactly: the maintainer's caps mirror what
// each base learner's effective knobs ask for, and bayes tallies are
// tracked only when a bayes learner is actually in the ensemble. A State
// built from this config answers every CanServe guard positively, so no
// learner silently falls back to its batch pass.
func IncrConfig(m *MetaLearner, p learner.Params) incr.Config {
	cfg := incr.Config{WindowMs: p.Window()}
	if m.Assoc != nil {
		cfg.MaxItems = m.Assoc.MaxItems
		cfg.MaxBody = m.Assoc.EffectiveMaxBody()
	}
	if m.Stat != nil {
		cfg.MaxK = m.Stat.EffectiveMaxK()
	}
	for _, ex := range m.Extra {
		if _, ok := ex.(*bayes.Learner); ok {
			cfg.TrackBayes = true
		}
	}
	return cfg
}
