package meta

import (
	"sort"

	"repro/internal/learner"
)

// Repository is the knowledge repository of Figure 1: the rule set the
// predictor currently runs on, with churn accounting across retrainings.
type Repository struct {
	rules map[string]learner.Rule
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{rules: make(map[string]learner.Rule)}
}

// Len returns the number of stored rules.
func (r *Repository) Len() int { return len(r.rules) }

// Rules returns the stored rules sorted by ID (a stable order for the
// predictor and for reports).
func (r *Repository) Rules() []learner.Rule {
	out := make([]learner.Rule, 0, len(r.rules))
	for _, rule := range r.rules {
		out = append(out, rule)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Restore replaces the repository contents with rules recovered from a
// durable snapshot, without churn accounting — the churn of the pass
// that produced them was recorded when that pass ran. The next Update
// therefore computes churn against the restored set, exactly as it
// would have against the original.
func (r *Repository) Restore(rules []learner.Rule) {
	r.rules = make(map[string]learner.Rule, len(rules))
	for _, rule := range rules {
		r.rules[rule.ID()] = rule
	}
}

// Churn reports what one retraining changed (the four curves of
// Figure 12).
type Churn struct {
	Unchanged        int // rules present before and re-learned now
	Added            int // new rules entering the repository
	RemovedByMeta    int // old rules the meta-learner no longer mined at all
	RemovedByReviser int // candidate rules the reviser rejected
}

// Changed returns the total number of rules that moved in this pass —
// added plus removed by either stage. The numerator of ChangeRate; the
// training metrics accumulate it as the live Figure 12.
func (c Churn) Changed() int {
	return c.Added + c.RemovedByMeta + c.RemovedByReviser
}

// ChangeRate returns changed/unchanged (the paper reports 44%–212%).
func (c Churn) ChangeRate() float64 {
	if c.Unchanged == 0 {
		return 0
	}
	return float64(c.Changed()) / float64(c.Unchanged)
}

// Update replaces the repository contents with a training report's kept
// rules and returns the churn relative to the previous contents.
func (r *Repository) Update(report *TrainReport) Churn {
	var c Churn
	keptIDs := make(map[string]bool, len(report.Kept))
	for _, rule := range report.Kept {
		keptIDs[rule.ID()] = true
	}
	candidateIDs := make(map[string]bool, len(report.Candidates))
	for _, rule := range report.Candidates {
		candidateIDs[rule.ID()] = true
	}
	for id := range candidateIDs {
		if !keptIDs[id] {
			c.RemovedByReviser++
		}
	}
	for id := range r.rules {
		switch {
		case keptIDs[id]:
			c.Unchanged++
		case candidateIDs[id]:
			// Re-mined but rejected: already counted against the reviser.
		default:
			c.RemovedByMeta++
		}
	}
	c.Added = len(report.Kept) - c.Unchanged

	r.rules = make(map[string]learner.Rule, len(report.Kept))
	for _, rule := range report.Kept {
		r.rules[rule.ID()] = rule
	}
	return c
}
