package bgsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// locKind tells the duplicator how to re-draw a location for a spatial copy.
type locKind int

const (
	locChipOfJob locKind = iota
	locRandomChip
	locNodeCard
	locServiceCard
	locLinkCard
)

// Generator produces a raw, time-ordered synthetic RAS log for one
// configuration. It is deterministic given Config.Seed. A Generator is
// single-use: call Generate or Stream once.
type Generator struct {
	cfg  *Config
	cat  *preprocess.Catalog
	sig  *signatureTable
	rng  *stats.RNG
	jobs *jobPool

	fatalByFac    map[raslog.Facility][]int
	nonFatalByFac map[raslog.Facility][]int
	fatalPerm     map[raslog.Facility][]int // epoch-0 fatal-mode ranking
	fatalCache    map[noiseKey][]float64    // evolved fatal weights per regime
	noisePerm     map[raslog.Facility][]int // epoch-0 popularity ranking
	noiseCache    map[noiseKey][]float64    // evolved weights per regime
	regimeCache   map[regimeKey]float64     // cumulative drift factors
	facList       []raslog.Facility
	facWeights    []float64

	// Interned location strings: the raw log repeats a small set of
	// locations millions of times, so formatting them once keeps the
	// duplicate-emission hot path allocation-free.
	chipLoc    []string   // by global chip index
	nodeLoc    [][]string // [midplane][node card]
	serviceLoc []string   // by midplane
	linkLoc    [][]string // [midplane][link]

	pending  []raslog.Event
	nextID   int64
	episodeT int64 // ms of the next failure episode
}

// NewGenerator validates the configuration and prepares a generator.
func NewGenerator(cfg *Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cat := catalogForConfig()
	g := &Generator{
		cfg:           cfg,
		cat:           cat,
		rng:           stats.NewRNG(cfg.Seed),
		fatalByFac:    make(map[raslog.Facility][]int),
		nonFatalByFac: make(map[raslog.Facility][]int),
		fatalPerm:     make(map[raslog.Facility][]int),
		fatalCache:    make(map[noiseKey][]float64),
		noisePerm:     make(map[raslog.Facility][]int),
		noiseCache:    make(map[noiseKey][]float64),
		regimeCache:   make(map[regimeKey]float64),
	}
	g.jobs = newJobPool(cfg.Topo, cfg.Jobs, g.rng.Split(), cfg.Start)
	for _, cl := range cat.Classes() {
		if cl.Fatal {
			g.fatalByFac[cl.Facility] = append(g.fatalByFac[cl.Facility], cl.ID)
		} else {
			g.nonFatalByFac[cl.Facility] = append(g.nonFatalByFac[cl.Facility], cl.ID)
		}
	}
	// Class popularity is Zipf-like with a seed-specific rank permutation
	// per facility, so different installations favour different concrete
	// events. The rankings later evolve across regimes (see
	// noiseWeightsFor / fatalWeightsFor).
	wr := stats.NewRNG(cfg.Seed ^ 0xabcdef)
	// Iterate facilities in declaration order: map ranges would consume
	// the weight RNG in a nondeterministic order.
	for _, fac := range raslog.Facilities() {
		if ids := g.fatalByFac[fac]; len(ids) > 0 {
			g.fatalPerm[fac] = wr.Perm(len(ids))
		}
		if ids := g.nonFatalByFac[fac]; len(ids) > 0 {
			g.noisePerm[fac] = wr.Perm(len(ids))
		}
		// Episode facility distribution, restricted to facilities that
		// actually have fatal classes.
		if w := cfg.FatalFacilityWeights[fac]; w > 0 && len(g.fatalByFac[fac]) > 0 {
			g.facList = append(g.facList, fac)
			g.facWeights = append(g.facWeights, w)
		}
	}
	if len(g.facList) == 0 {
		return nil, fmt.Errorf("bgsim: no facility with fatal classes has positive weight")
	}
	// Signatures use each facility's *rare* classes (bottom half of the
	// epoch-0 popularity ranking) so they stand out from chatter.
	rare := make(map[raslog.Facility][]int)
	for _, fac := range raslog.Facilities() {
		ids := g.nonFatalByFac[fac]
		perm := g.noisePerm[fac]
		if len(ids) == 0 {
			continue
		}
		half := len(ids) / 2
		if half == 0 {
			half = len(ids) // tiny pools: use everything
		}
		var pool []int
		for i, id := range ids {
			if perm[i] >= len(ids)-half {
				pool = append(pool, id)
			}
		}
		if len(pool) == 0 {
			pool = append(pool, ids...)
		}
		rare[fac] = pool
	}
	g.sig = newSignatureTable(cfg.Seed, cat, cfg.HasSignatureProb,
		cfg.DriftPeriodWeeks, cfg.DriftFraction, cfg.ReconfigWeek, rare)
	g.internLocations()
	g.episodeT = cfg.Start + g.episodeGap(cfg.Start)
	return g, nil
}

// internLocations precomputes every location string the topology can emit.
func (g *Generator) internLocations() {
	topo := g.cfg.Topo
	g.chipLoc = make([]string, topo.ComputeNodes())
	for i := range g.chipLoc {
		g.chipLoc[i] = topo.ChipLocation(i)
	}
	mids := topo.Midplanes()
	g.nodeLoc = make([][]string, mids)
	g.serviceLoc = make([]string, mids)
	g.linkLoc = make([][]string, mids)
	for m := 0; m < mids; m++ {
		g.nodeLoc[m] = make([]string, NodeCardsPerMidplane)
		for n := range g.nodeLoc[m] {
			g.nodeLoc[m][n] = topo.NodeCardLocation(m, n)
		}
		g.serviceLoc[m] = topo.ServiceCardLocation(m)
		g.linkLoc[m] = make([]string, 4)
		for l := range g.linkLoc[m] {
			g.linkLoc[m][l] = topo.LinkCardLocation(m, l)
		}
	}
}

// Catalog returns the catalog the generator emits classes from.
func (g *Generator) Catalog() *preprocess.Catalog { return g.cat }

// episodeGap draws the Weibull gap (ms) to the next failure episode,
// applying the post-reconfiguration rate factor when past that week.
func (g *Generator) episodeGap(now int64) int64 {
	meanGap := float64(raslog.MillisPerWeek) / g.cfg.EpisodesPerWeek
	week := g.weekOf(now)
	if g.cfg.ReconfigWeek >= 0 && week >= g.cfg.ReconfigWeek && g.cfg.ReconfigRateFactor > 0 {
		meanGap /= g.cfg.ReconfigRateFactor
	}
	meanGap /= g.regimeFactor(week, 0x7a7e, g.cfg.RegimeRateJitter)
	shape := g.cfg.EpisodeShape
	scale := meanGap / gamma1p(1/shape)
	w := stats.Weibull{Scale: scale, Shape: shape}
	gap := int64(w.Sample(g.rng))
	if gap < 1000 {
		gap = 1000
	}
	return gap
}

// gamma1p returns Gamma(1+x), used to convert a mean inter-episode gap
// into a Weibull scale: mean = scale * Gamma(1 + 1/shape).
func gamma1p(x float64) float64 { return math.Gamma(1 + x) }

// estimateEvents predicts the raw event count so Generate can preallocate
// (growing a multi-hundred-MB slice by doubling thrashes the GC).
func (g *Generator) estimateEvents() int {
	total := 0.0
	for fac, rate := range g.cfg.NoisePerWeek {
		dup := g.cfg.Dup[fac]
		total += rate * float64(g.cfg.Weeks) *
			(1 + (dup.TightMean+dup.EchoMean)*g.cfg.RawScale)
	}
	// Fatal and precursor traffic is small next to the noise volume.
	total += g.cfg.EpisodesPerWeek * float64(g.cfg.Weeks) * 8
	return int(total * 1.1)
}

func (g *Generator) weekOf(t int64) int {
	return int((t - g.cfg.Start) / raslog.MillisPerWeek)
}

type noiseKey struct {
	fac   raslog.Facility
	epoch int
}

// episodeInfo is one scheduled failure episode: its start time and its
// head fatal class (chosen at scheduling time so chatter generation can
// see which subsystem is about to fail).
type episodeInfo struct {
	time  int64
	class int
}

type regimeKey struct {
	salt  uint64
	epoch int
	post  bool
}

// regimeEpoch numbers the operating regime of a week: a new epoch every
// DriftPeriodWeeks, plus a discontinuity at the reconfiguration.
func (g *Generator) regimeEpoch(week int) int {
	epoch := 0
	if g.cfg.DriftPeriodWeeks > 0 {
		epoch = week / g.cfg.DriftPeriodWeeks
	}
	if g.cfg.ReconfigWeek >= 0 && week >= g.cfg.ReconfigWeek {
		epoch += 1_000_000
	}
	return epoch
}

// regimeFactor returns the cumulative multiplicative drift of a process
// parameter at the given week: a deterministic random walk that takes one
// step of up to ±ln(jitter) per regime, plus a larger jump at the
// reconfiguration. The walk is cumulative on purpose — production systems
// evolve *away* from their initial state (upgrades, workload growth), so
// statically-learned parameters become monotonically staler, which is the
// paper's core motivation for dynamic relearning.
func (g *Generator) regimeFactor(week int, salt uint64, jitter float64) float64 {
	if jitter <= 1 {
		return 1
	}
	realEpoch := 0
	if g.cfg.DriftPeriodWeeks > 0 {
		realEpoch = week / g.cfg.DriftPeriodWeeks
	}
	post := g.cfg.ReconfigWeek >= 0 && week >= g.cfg.ReconfigWeek
	key := regimeKey{salt: salt, epoch: realEpoch, post: post}
	if f, ok := g.regimeCache[key]; ok {
		return f
	}
	logStep := math.Log(jitter)
	logF := 0.0
	for e := 1; e <= realEpoch; e++ {
		r := stats.NewRNG(g.cfg.Seed ^ uint64(e)*0x9e3779b97f4a7c15 ^ salt)
		logF += (2*r.Float64() - 1) * logStep
	}
	if post {
		r := stats.NewRNG(g.cfg.Seed ^ 0xbadc0ffee ^ salt)
		logF += (2*r.Float64() - 1) * 1.8 * logStep
	}
	f := math.Exp(logF)
	g.regimeCache[key] = f
	return f
}

// chattersForAll reports whether a facility's chatter accompanies fault
// activity anywhere in the machine (software stack) rather than only its
// own subsystem's failures (infrastructure).
func chattersForAll(fac raslog.Facility) bool {
	return fac == raslog.Kernel || fac == raslog.App
}

// clusteredWeightsFor returns the facility's class weights for
// fault-correlated chatter in the regime containing week: the regular
// popularity weights with *detached* classes zeroed. Each class is
// attached to fault activity with probability 0.55 per regime,
// independently — the mechanism that retires one regime's chatter
// patterns and introduces the next one's.
func (g *Generator) clusteredWeightsFor(fac raslog.Facility, week int) []float64 {
	epoch := g.regimeEpoch(week)
	key := noiseKey{fac: fac, epoch: ^epoch} // distinct cache namespace
	if w, ok := g.noiseCache[key]; ok {
		return w
	}
	base := g.noiseWeightsFor(fac, week)
	w := append([]float64(nil), base...)
	attached := 0
	for class := range w {
		r := stats.NewRNG(g.cfg.Seed ^ uint64(fac)<<40 ^ uint64(class)<<16 ^
			uint64(epoch)*0xa0761d6478bd642f)
		if r.Float64() < 0.55 {
			attached++
		} else {
			w[class] = 0
		}
	}
	if attached == 0 {
		// Degenerate regime for a tiny pool: keep the base weights.
		copy(w, base)
	}
	g.noiseCache[key] = w
	return w
}

// noiseWeightsFor returns the facility's class-popularity weights for the
// regime containing week. The popularity ranking reshuffles partially at
// every regime change (fully at the reconfiguration), so chatter-pattern
// rules learned in one regime lose accuracy in later ones.
func (g *Generator) noiseWeightsFor(fac raslog.Facility, week int) []float64 {
	epoch := g.regimeEpoch(week)
	key := noiseKey{fac, epoch}
	if w, ok := g.noiseCache[key]; ok {
		return w
	}
	perm := g.evolvePerm(g.noisePerm[fac], epoch, uint64(fac)<<32)
	n := len(perm)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(perm[i]+1)
	}
	g.noiseCache[key] = w
	return w
}

// evolvePerm walks a popularity ranking through the regimes: a few
// transpositions per regime boundary (cumulative — old rankings never
// return), plus a single heavy shuffle at the reconfiguration (epochs
// past it carry the +1,000,000 marker from regimeEpoch).
func (g *Generator) evolvePerm(base []int, epoch int, salt uint64) []int {
	n := len(base)
	perm := append([]int(nil), base...)
	if n == 0 {
		return perm
	}
	post := epoch >= 1_000_000
	realEpoch := epoch % 1_000_000
	swaps := int(g.cfg.DriftFraction / 2 * float64(n))
	if swaps < 1 {
		swaps = 1
	}
	for e := 1; e <= realEpoch; e++ {
		r := stats.NewRNG(g.cfg.Seed ^ salt ^ uint64(e)*0xd1342543de82ef95)
		for s := 0; s < swaps; s++ {
			i, j := r.Intn(n), r.Intn(n)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	if post {
		// One-time heavy shuffle: the reconfiguration remaps roughly
		// everything at once, then ordinary drift resumes.
		r := stats.NewRNG(g.cfg.Seed ^ salt ^ 0xbadc0ffee)
		for s := 0; s < n; s++ {
			i, j := r.Intn(n), r.Intn(n)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}

// Generate materializes the full raw log, time-sorted with sequential
// record IDs.
func (g *Generator) Generate() (*raslog.Log, error) {
	log := raslog.NewLog(g.cfg.Name, g.estimateEvents())
	err := g.Stream(func(e raslog.Event) error {
		log.Append(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return log, nil
}

// Stream generates the raw log in time order, invoking emit for every
// event. It stops early if emit returns an error.
func (g *Generator) Stream(emit func(raslog.Event) error) error {
	const dayMs = 24 * 3600 * 1000
	end := g.cfg.Start + int64(g.cfg.Weeks)*raslog.MillisPerWeek
	// Flush margin: far precursors (PrecursorFarLimit) plus the widest
	// duplicate echo (600 s) plus slack. Nothing generated later can land
	// before (dayEnd - margin).
	margin := (g.cfg.PrecursorFarLimit + 700) * 1000
	for dayStart := g.cfg.Start; dayStart < end; dayStart += dayMs {
		dayEnd := dayStart + dayMs
		if dayEnd > end {
			dayEnd = end
		}
		// Collect the day's failure episodes first: the noise level is
		// modulated by fault activity (a quiet machine writes a quiet log).
		var episodes []episodeInfo
		for g.episodeT < dayEnd {
			episodes = append(episodes, episodeInfo{
				time:  g.episodeT,
				class: g.pickFatalClass(g.episodeT),
			})
			g.episodeT += g.episodeGap(g.episodeT)
		}
		g.genNoise(dayStart, dayEnd, episodes)
		g.genLogStorms(dayStart, dayEnd)
		g.genFalseSignatures(dayStart, dayEnd, episodes)
		for _, ep := range episodes {
			g.genEpisode(ep.time, ep.class)
		}
		if err := g.flush(dayEnd-margin, emit); err != nil {
			return err
		}
	}
	return g.flush(end+margin, emit) // drain everything
}

// flush emits all pending events strictly older than boundary, in time
// order, assigning sequential record IDs.
func (g *Generator) flush(boundary int64, emit func(raslog.Event) error) error {
	if len(g.pending) == 0 {
		return nil
	}
	sort.Slice(g.pending, func(i, j int) bool { return g.pending[i].Time < g.pending[j].Time })
	cut := sort.Search(len(g.pending), func(i int) bool { return g.pending[i].Time >= boundary })
	for i := 0; i < cut; i++ {
		e := g.pending[i]
		g.nextID++
		e.RecordID = g.nextID
		if err := emit(e); err != nil {
			return err
		}
	}
	g.pending = append(g.pending[:0], g.pending[cut:]...)
	return nil
}

// genNoise emits each facility's background events for one day. A
// QuietNoiseFactor share of the volume is uniform background; the rest
// clusters around the day's failure episodes (normal offsets with
// ClusterSigmaSec), because RAS chatter tracks fault activity. Days
// without episodes carry only the background share.
func (g *Generator) genNoise(dayStart, dayEnd int64, episodes []episodeInfo) {
	span := dayEnd - dayStart
	bgFrac := g.cfg.QuietNoiseFactor
	if bgFrac <= 0 || bgFrac > 1 {
		bgFrac = 1
	}
	sigma := g.cfg.ClusterSigmaSec
	if sigma <= 0 {
		sigma = 900
	}
	center := g.cfg.ClusterCenterSec * 1000
	// Normalize the clustered share by the expected episode count so the
	// weekly volume stays calibrated.
	expectedToday := g.cfg.EpisodesPerWeek / 7
	for _, fac := range raslog.Facilities() {
		base := g.cfg.NoisePerWeek[fac] / 7
		if base <= 0 {
			continue
		}
		ids := g.nonFatalByFac[fac]
		if len(ids) == 0 {
			continue
		}
		// Uniform background (ungated: every class may appear).
		for i, n := 0, g.rng.Poisson(base*bgFrac); i < n; i++ {
			t := dayStart + g.rng.Int63n(span)
			class := ids[g.rng.Choose(g.noiseWeightsFor(fac, g.weekOf(t)))]
			loc, kind, job := g.placeEvent(fac, t)
			g.emitLogical(class, t, loc, kind, job)
		}
		// Activity-correlated chatter around each episode. Only classes
		// *attached* to fault activity in the current regime take part:
		// which warning types accompany failures changes with software
		// upgrades, so a generic "this event type is chattering ⇒ failure
		// imminent" rule learned in one regime loses accuracy in later
		// ones, while the per-class precursor signatures emitted by
		// genEpisode remain the deliberate association signal.
		if len(episodes) == 0 {
			continue
		}
		perEpisode := base * (1 - bgFrac) / expectedToday
		for _, ep := range episodes {
			// Infrastructure facilities chatter only ahead of their own
			// subsystem's failures (a rack overheating floods temperature
			// alerts before a MONITOR failure, not before a kernel
			// crash); software-stack facilities react to everything.
			if !chattersForAll(fac) && g.cat.Class(ep.class).Facility != fac {
				continue
			}
			week := g.weekOf(ep.time)
			weights := g.clusteredWeightsFor(fac, week)
			for i, n := 0, g.rng.Poisson(perEpisode); i < n; i++ {
				off := int64(center + g.rng.NormFloat64()*sigma*1000)
				if off > 7_200_000 {
					off = 7_200_000
				}
				if off < -7_200_000 {
					off = -7_200_000
				}
				t := ep.time + off
				if t < g.cfg.Start {
					t = g.cfg.Start
				}
				class := ids[g.rng.Choose(weights)]
				loc, kind, job := g.placeEvent(fac, t)
				g.emitLogical(class, t, loc, kind, job)
			}
		}
	}
}

// genLogStorms overlays one day's storm windows: short spans during
// which every facility's background chatter runs at LogStormFactor
// times its calibrated rate. The extra events go through the same
// class/placement/duplication path as ordinary noise, so a storm
// changes only the arrival shape — exactly the burst regime the load
// harness drives the overload path with. The whole method is gated on
// the knobs, drawing no randomness when storms are off, so enabling
// the feature leaves every existing seed's output byte-identical.
func (g *Generator) genLogStorms(dayStart, dayEnd int64) {
	if !g.cfg.stormsEnabled() {
		return
	}
	span := dayEnd - dayStart
	windowMs := int64(g.cfg.LogStormMinutes * 60_000)
	extra := g.cfg.LogStormFactor - 1
	for s, storms := 0, g.rng.Poisson(g.cfg.LogStormsPerWeek/7); s < storms; s++ {
		start := dayStart + g.rng.Int63n(span)
		for _, fac := range raslog.Facilities() {
			base := g.cfg.NoisePerWeek[fac] / 7
			ids := g.nonFatalByFac[fac]
			if base <= 0 || len(ids) == 0 {
				continue
			}
			// The facility's per-day volume, scaled to the window's share
			// of the day, times (factor-1): adding this on top of the
			// ordinary noise makes the in-window rate ≈ factor × base.
			mean := base * extra * float64(windowMs) / float64(span)
			for i, n := 0, g.rng.Poisson(mean); i < n; i++ {
				t := start + g.rng.Int63n(windowMs)
				class := ids[g.rng.Choose(g.noiseWeightsFor(fac, g.weekOf(t)))]
				loc, kind, job := g.placeEvent(fac, t)
				g.emitLogical(class, t, loc, kind, job)
			}
		}
	}
}

// genFalseSignatures emits complete precursor signatures that are NOT
// followed by a failure — the false-alarm pressure on association rules.
// They appear amid fault activity (near an episode, like real spurious
// warnings) when the day has any, else uniformly.
func (g *Generator) genFalseSignatures(dayStart, dayEnd int64, episodes []episodeInfo) {
	rate := g.cfg.FalseSignaturesPerWeek / 7
	if rate <= 0 {
		return
	}
	n := g.rng.Poisson(rate)
	for i := 0; i < n; i++ {
		var t int64
		if len(episodes) > 0 {
			base := episodes[g.rng.Intn(len(episodes))].time
			t = base - 600_000 + g.rng.Int63n(1_200_000) // within ±10 min
			if t < g.cfg.Start {
				t = g.cfg.Start
			}
		} else {
			t = dayStart + g.rng.Int63n(dayEnd-dayStart)
		}
		class := g.pickFatalClass(t)
		sig := g.sig.signature(class, g.weekOf(t))
		if sig == nil {
			continue
		}
		loc, kind, job := g.placeEvent(g.cat.Class(class).Facility, t)
		for _, sc := range sig {
			offset := g.rng.Int63n(g.cfg.PrecursorWindow * 1000)
			g.emitLogical(sc, t-offset, loc, kind, job)
		}
	}
}

// pickFatalClass draws an episode head class at time t: facility by
// configured weights, then a Zipf-weighted class within the facility.
// Fatal classes use a steep exponent (a handful of failure modes dominate
// production logs — which is also what gives the association miner enough
// per-class support), and the ranking random-walks across regimes:
// failure modes get fixed, new ones appear, so class-specific rules
// learned statically reference modes that fade away.
func (g *Generator) pickFatalClass(t int64) int {
	fac := g.facList[g.rng.Choose(g.facWeights)]
	ids := g.fatalByFac[fac]
	return ids[g.rng.Choose(g.fatalWeightsFor(fac, g.weekOf(t)))]
}

// fatalWeightsFor returns the facility's fatal-class weights for the
// regime containing week (steep Zipf over an evolving ranking).
func (g *Generator) fatalWeightsFor(fac raslog.Facility, week int) []float64 {
	epoch := g.regimeEpoch(week)
	key := noiseKey{fac: fac, epoch: epoch}
	if w, ok := g.fatalCache[key]; ok {
		return w
	}
	perm := g.evolvePerm(g.fatalPerm[fac], epoch, 0xfa7a1^uint64(fac)<<32)
	w := make([]float64, len(perm))
	for i := range w {
		w[i] = math.Pow(float64(perm[i]+1), -1.7)
	}
	g.fatalCache[key] = w
	return w
}

// genEpisode emits one failure episode at time t with the given head
// class: optional precursor signature, the head fatal event, and an
// optional burst of follow-on fatals.
func (g *Generator) genEpisode(t int64, class int) {
	fac := g.cat.Class(class).Facility
	loc, kind, job := g.placeEvent(fac, t)

	// Precursors, before the head fatal. Nearness is decided once for the
	// whole signature: either the complete pattern lands inside the
	// rule-generation window (association rules can fire) or it all
	// arrives early (visible only to wider prediction windows).
	week := g.weekOf(t)
	if sig := g.sig.signature(class, week); sig != nil && g.rng.Bool(g.cfg.PrecursorProb) {
		near := g.rng.Bool(g.cfg.PrecursorNearFrac)
		for _, sc := range sig {
			var offsetSec int64
			if near {
				offsetSec = 15 + g.rng.Int63n(g.cfg.PrecursorWindow-20)
			} else {
				offsetSec = g.cfg.PrecursorWindow +
					g.rng.Int63n(g.cfg.PrecursorFarLimit-g.cfg.PrecursorWindow)
			}
			pt := t - offsetSec*1000
			if pt < g.cfg.Start {
				pt = g.cfg.Start
			}
			g.emitLogical(sc, pt, loc, kind, job)
		}
	}

	// Head fatal.
	g.emitLogical(class, t, loc, kind, job)

	// Burst: a failure run following the head — usually short, sometimes
	// a full network/I-O storm sweeping across the machine. The burst
	// probability itself drifts across regimes (failure modes come and
	// go), bounded away from certainty.
	bp := g.cfg.BurstProb * g.regimeFactor(week, 0xb757, g.cfg.RegimeStormJitter)
	if bp > 0.9 {
		bp = 0.9
	}
	if g.rng.Bool(bp) {
		meanExtra, gapMean, maxExtra := g.cfg.BurstMeanExtra, g.cfg.BurstGapMean, 4
		if g.rng.Bool(g.cfg.StormProb) {
			meanExtra, gapMean, maxExtra = g.cfg.StormMeanExtra, g.cfg.StormGapMean, 30
		}
		// Storm temporal density shifts across regimes.
		gapMean *= g.regimeFactor(week, 0x57a7, g.cfg.RegimeStormJitter)
		if meanExtra <= 0 {
			return
		}
		p := meanExtra / (1 + meanExtra) // geometric continuation with the given mean
		extra := 0
		for g.rng.Bool(p) {
			extra++
			if extra >= maxExtra {
				break
			}
		}
		bt := t
		for i := 0; i < extra; i++ {
			bt += int64(g.rng.ExpFloat64()*gapMean*1000) + 1000
			bclass := class
			if g.rng.Bool(0.6) {
				bclass = g.pickFatalClass(bt)
			}
			// Storm members strike different components and jobs — that is
			// why the preprocessing filter does not fold them away.
			bloc, bkind, bjob := g.placeEvent(g.cat.Class(bclass).Facility, bt)
			g.emitLogical(bclass, bt, bloc, bkind, bjob)
		}
	}
}

// placeEvent decides location, location kind and job for a logical event
// of the given facility.
func (g *Generator) placeEvent(fac raslog.Facility, t int64) (string, locKind, Job) {
	switch fac {
	case raslog.App:
		j := g.jobs.at(t)
		return g.chipLoc[g.jobs.chipOf(j)], locChipOfJob, j
	case raslog.Kernel:
		if g.rng.Bool(0.7) {
			j := g.jobs.at(t)
			return g.chipLoc[g.jobs.chipOf(j)], locChipOfJob, j
		}
		return g.chipLoc[g.rng.Intn(len(g.chipLoc))], locRandomChip, Job{}
	case raslog.Discovery, raslog.Monitor:
		m := g.rng.Intn(len(g.nodeLoc))
		return g.nodeLoc[m][g.rng.Intn(NodeCardsPerMidplane)], locNodeCard, Job{}
	case raslog.LinkCard:
		m := g.rng.Intn(len(g.linkLoc))
		return g.linkLoc[m][g.rng.Intn(4)], locLinkCard, Job{}
	default: // HARDWARE, CMCS, MMCS, BGLMASTER, SERV_NET
		return g.serviceLoc[g.rng.Intn(len(g.serviceLoc))], locServiceCard, Job{}
	}
}

// altLocation re-draws a location of the same kind for a spatial duplicate.
func (g *Generator) altLocation(kind locKind, job Job) string {
	switch kind {
	case locChipOfJob:
		if job.ID != 0 {
			return g.chipLoc[g.jobs.chipOf(job)]
		}
		fallthrough
	case locRandomChip:
		return g.chipLoc[g.rng.Intn(len(g.chipLoc))]
	case locNodeCard:
		m := g.rng.Intn(len(g.nodeLoc))
		return g.nodeLoc[m][g.rng.Intn(NodeCardsPerMidplane)]
	case locLinkCard:
		m := g.rng.Intn(len(g.linkLoc))
		return g.linkLoc[m][g.rng.Intn(4)]
	default:
		return g.serviceLoc[g.rng.Intn(len(g.serviceLoc))]
	}
}

// emitLogical appends the base event for a class plus its duplicate copies
// per the facility's DupProfile.
func (g *Generator) emitLogical(class int, t int64, loc string, kind locKind, job Job) {
	if t < g.cfg.Start {
		t = g.cfg.Start
	}
	cl := g.cat.Class(class)
	base := raslog.Event{
		Type:     "RAS",
		Time:     t,
		JobID:    job.ID,
		Location: loc,
		Entry:    cl.Entry,
		Facility: cl.Facility,
		Severity: cl.Severity,
	}
	g.pending = append(g.pending, base)

	dup := g.cfg.Dup[cl.Facility]
	scale := g.cfg.RawScale
	nTight := g.rng.Poisson(dup.TightMean * scale)
	nEcho := g.rng.Poisson(dup.EchoMean * scale)
	for i := 0; i < nTight+nEcho; i++ {
		copyEv := base
		if i < nTight {
			copyEv.Time = t + g.rng.Int63n(10_000)
		} else {
			// Echo offsets: 10–600 s, denser near the low end, which is
			// what makes Table 4's compression keep improving up to 300 s.
			u := g.rng.Float64()
			copyEv.Time = t + 10_000 + int64(u*u*590_000)
		}
		if g.rng.Bool(dup.SpatialFrac) {
			copyEv.Location = g.altLocation(kind, job)
		}
		g.pending = append(g.pending, copyEv)
	}
}
