package bgsim

import (
	"strings"
	"testing"
)

func TestTopologyCountsMatchPaper(t *testing.T) {
	// ANL: one rack, 1,024 dual-core compute nodes (paper §2.2).
	anl := Topology{Racks: 1, IONodes: 32}
	if got := anl.ComputeNodes(); got != 1024 {
		t.Errorf("ANL compute nodes = %d, want 1024", got)
	}
	if got := anl.Midplanes(); got != 2 {
		t.Errorf("ANL midplanes = %d, want 2", got)
	}
	// SDSC: three racks, 3,072 compute nodes.
	sdsc := Topology{Racks: 3, IONodes: 384}
	if got := sdsc.ComputeNodes(); got != 3072 {
		t.Errorf("SDSC compute nodes = %d, want 3072", got)
	}
	// A midplane holds 1,024 processors = 512 dual-core nodes.
	if NodesPerMidplane != 512 {
		t.Errorf("NodesPerMidplane = %d, want 512", NodesPerMidplane)
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Racks: 0}).Validate(); err == nil {
		t.Error("zero racks accepted")
	}
	if err := (Topology{Racks: 1, IONodes: -1}).Validate(); err == nil {
		t.Error("negative I/O nodes accepted")
	}
	if err := (Topology{Racks: 3, IONodes: 384}).Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestChipLocationsUniqueAndStructured(t *testing.T) {
	topo := Topology{Racks: 2}
	seen := make(map[string]bool)
	for i := 0; i < topo.ComputeNodes(); i++ {
		loc := topo.ChipLocation(i)
		if seen[loc] {
			t.Fatalf("duplicate chip location %q at index %d", loc, i)
		}
		seen[loc] = true
		if !strings.HasPrefix(loc, "R") || strings.Count(loc, "-") != 4 {
			t.Fatalf("malformed location %q", loc)
		}
	}
	if got := topo.ChipLocation(0); got != "R00-M0-N00-C00-U0" {
		t.Errorf("first chip = %q", got)
	}
}

func TestMidplaneOfChipAndRange(t *testing.T) {
	topo := Topology{Racks: 2}
	for m := 0; m < topo.Midplanes(); m++ {
		first, last := topo.ChipRange(m)
		if last-first != NodesPerMidplane {
			t.Fatalf("midplane %d range size %d", m, last-first)
		}
		if topo.MidplaneOfChip(first) != m || topo.MidplaneOfChip(last-1) != m {
			t.Fatalf("MidplaneOfChip inconsistent for midplane %d", m)
		}
	}
}

func TestAuxiliaryLocations(t *testing.T) {
	topo := Topology{Racks: 2}
	if got := topo.ServiceCardLocation(3); got != "R01-M1-S" {
		t.Errorf("service card = %q", got)
	}
	if got := topo.NodeCardLocation(2, 7); got != "R01-M0-N07" {
		t.Errorf("node card = %q", got)
	}
	if got := topo.LinkCardLocation(1, 2); got != "R00-M1-L2" {
		t.Errorf("link card = %q", got)
	}
}

func TestJobPoolPartitions(t *testing.T) {
	topo := Topology{Racks: 3}
	cfg := SDSC(1)
	_ = cfg
	p := newJobPoolForTest(topo, 8)
	for i := 0; i < 200; i++ {
		j := p.at(int64(i) * 600_000)
		if j.Midplane < 0 || j.Midplane+j.Midplanes > topo.Midplanes() {
			t.Fatalf("job partition out of range: %+v", j)
		}
		chip := p.chipOf(j)
		m := topo.MidplaneOfChip(chip)
		if m < j.Midplane || m >= j.Midplane+j.Midplanes {
			t.Fatalf("chip %d outside job partition %+v", chip, j)
		}
		if !j.Active(int64(i) * 600_000) {
			t.Fatalf("pool returned inactive job")
		}
	}
}

func TestJobIDsIncrease(t *testing.T) {
	p := newJobPoolForTest(Topology{Racks: 1}, 4)
	maxID := int64(0)
	for i := 0; i < 500; i++ {
		j := p.at(int64(i) * 3_600_000)
		if j.ID <= 0 {
			t.Fatalf("non-positive job id %d", j.ID)
		}
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	if maxID < 5 {
		t.Errorf("job pool never rotated (max id %d)", maxID)
	}
}
