package bgsim

import (
	"testing"

	"repro/internal/raslog"
)

// newTestGenerator builds a generator without running it.
func newTestGenerator(t *testing.T, cfg *Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// rankDistance counts positions whose weight changed between two weight
// vectors.
func rankDistance(a, b []float64) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestNoiseWeightsDriftGradually(t *testing.T) {
	cfg := SDSC(9) // reconfiguration at week 62, 12-week regimes
	g := newTestGenerator(t, cfg)
	fac := raslog.Kernel
	n := len(g.nonFatalByFac[fac])

	// Within one regime: identical.
	w0 := g.noiseWeightsFor(fac, 0)
	w0b := g.noiseWeightsFor(fac, 11)
	if rankDistance(w0, w0b) != 0 {
		t.Fatal("weights changed within a regime")
	}

	// Across one pre-reconfiguration regime boundary: a few transpositions,
	// not a full remap.
	w1 := g.noiseWeightsFor(fac, 12)
	d := rankDistance(w0, w1)
	if d == 0 {
		t.Fatal("no drift across a regime boundary")
	}
	if d > n/2 {
		t.Fatalf("regime boundary remapped %d/%d ranks — too violent", d, n)
	}

	// Across the reconfiguration: a heavy remap.
	pre := g.noiseWeightsFor(fac, 61)
	post := g.noiseWeightsFor(fac, 62)
	if dr := rankDistance(pre, post); dr < n/3 {
		t.Fatalf("reconfiguration changed only %d/%d ranks", dr, n)
	}

	// Consecutive POST-reconfiguration regimes drift gently again — the
	// reconfiguration is a one-time event, not a recurring remap (this was
	// a real bug: every post epoch used to get a fresh permutation).
	p1 := g.noiseWeightsFor(fac, 72) // epoch 6, post
	p2 := g.noiseWeightsFor(fac, 84) // epoch 7, post
	if dp := rankDistance(p1, p2); dp > n/2 {
		t.Fatalf("post-reconfig boundary remapped %d/%d ranks — reconfig recurring", dp, n)
	}
}

func TestFatalWeightsDriftAndStayNormalized(t *testing.T) {
	cfg := ANL(9)
	g := newTestGenerator(t, cfg)
	fac := raslog.Kernel
	w0 := g.fatalWeightsFor(fac, 0)
	w5 := g.fatalWeightsFor(fac, 60) // several regimes later
	if rankDistance(w0, w5) == 0 {
		t.Error("fatal-class ranking never drifted")
	}
	for _, w := range w5 {
		if w <= 0 || w > 1 {
			t.Fatalf("weight %g out of (0,1]", w)
		}
	}
	// Deterministic per (facility, week).
	again := g.fatalWeightsFor(fac, 60)
	if rankDistance(w5, again) != 0 {
		t.Error("fatal weights nondeterministic")
	}
}

func TestRegimeFactorWalk(t *testing.T) {
	cfg := SDSC(9)
	g := newTestGenerator(t, cfg)
	// Epoch 0: exactly 1.
	if f := g.regimeFactor(0, 0x7a7e, cfg.RegimeRateJitter); f != 1 {
		t.Errorf("epoch-0 factor = %g", f)
	}
	// Deterministic and constant within a regime.
	a := g.regimeFactor(30, 0x7a7e, cfg.RegimeRateJitter)
	b := g.regimeFactor(35, 0x7a7e, cfg.RegimeRateJitter)
	if a != b {
		t.Errorf("factor changed within a regime: %g vs %g", a, b)
	}
	// Per-step bound: consecutive epochs differ by at most the jitter.
	prev := 1.0
	for week := 12; week < 60; week += 12 {
		f := g.regimeFactor(week, 0x7a7e, cfg.RegimeRateJitter)
		ratio := f / prev
		if ratio < 1/cfg.RegimeRateJitter-1e-9 || ratio > cfg.RegimeRateJitter+1e-9 {
			t.Fatalf("week %d: step ratio %g outside ±%g", week, ratio, cfg.RegimeRateJitter)
		}
		prev = f
	}
	// The reconfiguration applies a one-time extra jump.
	pre := g.regimeFactor(61, 0x7a7e, cfg.RegimeRateJitter)
	post := g.regimeFactor(62, 0x7a7e, cfg.RegimeRateJitter)
	if pre == post {
		t.Error("reconfiguration did not move the rate factor")
	}
	// Jitter <= 1 disables.
	if f := g.regimeFactor(50, 0x7a7e, 1.0); f != 1 {
		t.Errorf("disabled jitter returned %g", f)
	}
}

func TestClusteredWeightsGateClasses(t *testing.T) {
	cfg := ANL(9)
	g := newTestGenerator(t, cfg)
	fac := raslog.Kernel
	w := g.clusteredWeightsFor(fac, 0)
	zeroed, nonzero := 0, 0
	for _, v := range w {
		if v == 0 {
			zeroed++
		} else {
			nonzero++
		}
	}
	if zeroed == 0 {
		t.Error("no classes detached from fault activity")
	}
	if nonzero == 0 {
		t.Error("every class detached")
	}
	// The attached set changes across regimes.
	w2 := g.clusteredWeightsFor(fac, 24)
	changed := false
	for i := range w {
		if (w[i] == 0) != (w2[i] == 0) {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("attachment never rotated across regimes")
	}
}

func TestChattersForAll(t *testing.T) {
	if !chattersForAll(raslog.Kernel) || !chattersForAll(raslog.App) {
		t.Error("software-stack facilities must chatter for all episodes")
	}
	for _, fac := range []raslog.Facility{raslog.Monitor, raslog.Discovery,
		raslog.Hardware, raslog.LinkCard, raslog.CMCS} {
		if chattersForAll(fac) {
			t.Errorf("infrastructure facility %v chatters for all", fac)
		}
	}
}
