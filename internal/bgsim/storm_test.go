package bgsim

import "testing"

// stormANL is smallANL with heavy log storms: ten half-hour windows a
// day at 50x the background rate. Deliberately extreme — inserting any
// storm draws reshuffles every later RNG draw, so the volume check
// below compares two *different* random logs and the storm surplus has
// to dominate ordinary seed-to-seed variance to be detectable.
func stormANL(seed uint64, weeks int) *Config {
	cfg := smallANL(seed, weeks)
	cfg.LogStormsPerWeek = 70
	cfg.LogStormFactor = 50
	cfg.LogStormMinutes = 30
	return cfg
}

// TestLogStormsIncreaseVolume pins that enabling storms actually adds
// events: the same seed with storms on must produce a strictly larger
// log, and the additions must not disturb ordering or validity.
func TestLogStormsIncreaseVolume(t *testing.T) {
	base := generate(t, smallANL(11, 2))
	storm := generate(t, stormANL(11, 2))
	if storm.Len() <= base.Len() {
		t.Fatalf("storm log has %d events, base %d: storms added nothing",
			storm.Len(), base.Len())
	}
	if err := storm.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLogStormsDeterministic: storms draw from the same seeded RNG
// stream as everything else, so a fixed seed reproduces byte-identical.
func TestLogStormsDeterministic(t *testing.T) {
	a := generate(t, stormANL(23, 2))
	b := generate(t, stormANL(23, 2))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\n%v\n%v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestLogStormsOffIsByteIdentical is the compatibility pin: a config
// with the storm knobs at their zero values must consume no randomness
// for them, leaving existing seeds' output untouched.
func TestLogStormsOffIsByteIdentical(t *testing.T) {
	a := generate(t, smallANL(5, 2))
	cfg := smallANL(5, 2)
	cfg.LogStormsPerWeek = 0 // explicit, same as unset
	b := generate(t, cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ with storms off: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs with storms off:\n%v\n%v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestLogStormValidation rejects half-configured storms.
func TestLogStormValidation(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"negative rate":  func(c *Config) { c.LogStormsPerWeek = -1 },
		"factor not > 1": func(c *Config) { c.LogStormsPerWeek = 7; c.LogStormFactor = 1 },
		"zero minutes":   func(c *Config) { c.LogStormsPerWeek = 7; c.LogStormFactor = 4; c.LogStormMinutes = 0 },
	} {
		cfg := smallANL(1, 1)
		mut(cfg)
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("%s: NewGenerator accepted an invalid storm config", name)
		}
	}
}
