package bgsim

import (
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// signatureTable maps each fatal event class to its *precursor signature*:
// the small set of non-fatal event classes that tend to precede it inside
// the rule-generation window. Signatures are what association-rule mining
// discovers.
//
// Signatures drift: every driftPeriod weeks a fraction of fatal classes
// deterministically re-draw their signature, and a reconfiguration (if
// configured) re-draws almost everything at once. This models the paper's
// observation that "rules of failure patterns change dramatically during
// system operation" and the SDSC reconfiguration around week 60–64.
type signatureTable struct {
	seed          uint64
	catalog       *preprocess.Catalog
	nonFatalByFac map[raslog.Facility][]int
	allNonFatal   []int

	hasSignatureProb float64 // fraction of fatal classes that have precursors at all
	driftPeriod      int     // weeks between drift opportunities (0 = no drift)
	driftFraction    float64 // fraction of classes re-drawn per opportunity
	reconfigWeek     int     // week of the major reconfiguration (-1 = none)
}

// newSignatureTable builds the table. pool optionally restricts the
// classes signatures may use (per facility); the generator passes the
// *rare* half of each facility's popularity ranking, so signatures are
// distinctive warning types rather than everyday chatter — which is what
// keeps association rules precise amid post-failure reaction traffic.
func newSignatureTable(seed uint64, cat *preprocess.Catalog,
	hasSigProb float64, driftPeriod int, driftFraction float64, reconfigWeek int,
	pool map[raslog.Facility][]int) *signatureTable {
	s := &signatureTable{
		seed:             seed,
		catalog:          cat,
		nonFatalByFac:    make(map[raslog.Facility][]int),
		hasSignatureProb: hasSigProb,
		driftPeriod:      driftPeriod,
		driftFraction:    driftFraction,
		reconfigWeek:     reconfigWeek,
	}
	for _, cl := range cat.Classes() {
		if cl.Fatal {
			continue
		}
		if pool[cl.Facility] == nil {
			s.nonFatalByFac[cl.Facility] = append(s.nonFatalByFac[cl.Facility], cl.ID)
			s.allNonFatal = append(s.allNonFatal, cl.ID)
		}
	}
	// Iterate facilities in declaration order: ranging over the pool map
	// would order allNonFatal nondeterministically, and signature draws
	// index into it.
	for _, fac := range raslog.Facilities() {
		ids := pool[fac]
		if ids == nil {
			continue
		}
		s.nonFatalByFac[fac] = append([]int(nil), ids...)
		s.allNonFatal = append(s.allNonFatal, ids...)
	}
	return s
}

// classRNG derives a deterministic stream for (class, salt).
func (s *signatureTable) classRNG(class int, salt uint64) *stats.RNG {
	return stats.NewRNG(s.seed ^ uint64(class)*0x9e3779b97f4a7c15 ^ salt*0xd1342543de82ef95)
}

// hasSignature reports whether the fatal class has precursors at all.
// Stable across regimes: precursor-less failure modes stay precursor-less,
// which is what bounds association-rule recall (paper Observation #1).
func (s *signatureTable) hasSignature(class int) bool {
	return s.classRNG(class, 1).Float64() < s.hasSignatureProb
}

// epoch counts how many times the class's signature has been re-drawn by
// the given week.
func (s *signatureTable) epoch(class, week int) uint64 {
	var n uint64
	if s.driftPeriod > 0 {
		for r := 1; r <= week/s.driftPeriod; r++ {
			if s.classRNG(class, 0x100+uint64(r)).Float64() < s.driftFraction {
				n++
			}
		}
	}
	if s.reconfigWeek >= 0 && week >= s.reconfigWeek {
		// The reconfiguration re-draws almost all signatures at once.
		if s.classRNG(class, 0x9999).Float64() < 0.85 {
			n += 1_000_000
		}
	}
	return n
}

// signature returns the precursor class IDs for a fatal class in the given
// week (nil if the class has no precursors). Signatures have 2–4 members,
// drawn mostly from the same facility's non-fatal classes.
func (s *signatureTable) signature(class, week int) []int {
	if !s.hasSignature(class) {
		return nil
	}
	fac := s.catalog.Class(class).Facility
	r := s.classRNG(class, 0x200+s.epoch(class, week))
	size := 2 + r.Intn(3)
	pool := s.nonFatalByFac[fac]
	if len(pool) < size {
		pool = s.allNonFatal
	}
	sig := make([]int, 0, size)
	seen := make(map[int]bool, size)
	for len(sig) < size {
		var id int
		if r.Bool(0.8) && len(s.nonFatalByFac[fac]) > 0 {
			p := s.nonFatalByFac[fac]
			id = p[r.Intn(len(p))]
		} else {
			id = s.allNonFatal[r.Intn(len(s.allNonFatal))]
		}
		if !seen[id] {
			seen[id] = true
			sig = append(sig, id)
		}
		_ = pool
	}
	return sig
}
