package bgsim

import (
	"fmt"

	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// DupProfile controls how heavily one *unique* (logical) event of a
// facility is duplicated in the raw log. Every logical event is emitted
// once and then copied:
//
//   - TightMean extra copies (Poisson) at offsets within 10 s — the
//     sub-second polling-agent storm that dominates the raw volume;
//   - EchoMean extra copies (Poisson) at offsets of 10–600 s — the
//     lingering repeats that make compression keep improving up to the
//     paper's chosen 300 s threshold (Table 4);
//   - each copy lands on a different location with probability
//     SpatialFrac (exercising spatial compression) and otherwise repeats
//     at the same location (exercising temporal compression).
type DupProfile struct {
	TightMean   float64
	EchoMean    float64
	SpatialFrac float64
}

// Config fully describes one synthetic installation. Use the ANL and SDSC
// presets as starting points; every knob is exported so experiments can
// perturb a single mechanism at a time.
type Config struct {
	Name  string
	Seed  uint64
	Start int64 // ms since epoch of the first logged week
	Weeks int
	Topo  Topology
	Jobs  int // concurrent jobs

	// Failure episode process: inter-episode gaps are Weibull with the
	// given shape; the scale is derived from EpisodesPerWeek.
	EpisodesPerWeek float64
	EpisodeShape    float64
	// Bursts: with probability BurstProb an episode continues past its
	// head failure. Most bursts are minor (Geometric(BurstMeanExtra)
	// extra fatals at exponential gaps of mean BurstGapMean seconds);
	// with probability StormProb the burst is instead a network/I-O
	// *storm* — a long run of failures (Geometric(StormMeanExtra), gaps
	// of mean StormGapMean) that makes "k failures within W_P" strongly
	// predictive, reproducing the paper's "four failures within 300
	// seconds → another with probability 99%".
	BurstProb      float64
	BurstMeanExtra float64
	BurstGapMean   float64
	StormProb      float64
	StormMeanExtra float64
	StormGapMean   float64
	// FatalFacilityWeights distributes episode head failures over
	// facilities (only facilities with fatal classes are eligible).
	FatalFacilityWeights map[raslog.Facility]float64

	// Precursor structure.
	HasSignatureProb float64 // fraction of fatal classes with signatures
	PrecursorProb    float64 // P(signature emitted | class has one)
	// PrecursorNearFrac is the probability that an emitted signature lands
	// *entirely* within PrecursorWindow of the failure (an association
	// rule can complete); otherwise the whole signature arrives early, in
	// (PrecursorWindow, PrecursorFarLimit] — visible only to larger
	// prediction windows, which is what drives the Figure 13 trade-off.
	PrecursorNearFrac float64
	PrecursorWindow   int64 // seconds; the paper's rule-generation window (300)
	PrecursorFarLimit int64 // seconds; far precursors fall in (window, limit]
	// FalseSignaturesPerWeek emits complete signatures not followed by a
	// failure — the false-alarm pressure on association rules.
	FalseSignaturesPerWeek float64

	// Background noise: unique non-fatal events per facility per week.
	NoisePerWeek map[raslog.Facility]float64
	// QuietNoiseFactor is the fraction of each facility's noise emitted as
	// a uniform background; the remainder clusters around failure episodes
	// (offsets drawn from a normal with ClusterSigmaSec). RAS chatter on
	// the production machines correlates strongly with fault activity — a
	// quiet system writes a quiet log — and this correlation is what
	// bounds the distribution expert's false alarms. 1 = all uniform.
	QuietNoiseFactor float64
	// ClusterCenterSec and ClusterSigmaSec shape the fault-correlated
	// chatter: offsets from the episode head are N(ClusterCenterSec,
	// ClusterSigmaSec²) seconds, capped at ±2 h. The presets center the
	// chatter *after* the failure (+240 s): most fault-time traffic is
	// reaction — diagnostics, cleanup, error summaries — so generic
	// "chatter ⇒ failure imminent" patterns stay imprecise, and the
	// deliberately-planted precursor signatures remain the association
	// signal. The Gaussian's leading tail still puts a couple of events
	// shortly before the head, which is what arms the event-driven
	// distribution expert ahead of overdue failures.
	ClusterCenterSec float64
	ClusterSigmaSec  float64
	// Dup profiles per facility (applied to noise, precursors and fatals
	// of that facility alike).
	Dup map[raslog.Facility]DupProfile

	// Dynamics. Every DriftPeriodWeeks the system enters a new *regime*
	// (software upgrades, workload shifts): a DriftFraction of precursor
	// signatures re-draw, the noise-class popularity ranking partially
	// reshuffles, and the failure process parameters jitter. This is what
	// makes statically-learned rules of every family decay (Figures 7/9)
	// while dynamic retraining tracks the system.
	DriftPeriodWeeks int     // weeks between regime changes (0 = frozen)
	DriftFraction    float64 // fraction of signatures re-drawn per regime
	// RegimeRateJitter and RegimeStormJitter bound the per-regime random
	// *walk step* on the episode rate and on storm gaps (each regime
	// multiplies the previous factor by up to ±the jitter; drift is
	// cumulative; values <= 1 disable).
	RegimeRateJitter   float64
	RegimeStormJitter  float64
	ReconfigWeek       int     // -1 = no reconfiguration
	ReconfigRateFactor float64 // episode-rate multiplier after the reconfiguration

	// RawScale scales the duplication volume only (1 = calibrated to the
	// paper's raw log sizes). Lower it for fast tests; the *unique* event
	// structure, and therefore everything the learners see after
	// filtering, is unchanged.
	RawScale float64

	// Log storms: short windows in which every facility's background
	// arrival rate is multiplied — LogMaster-style burst regimes, the
	// arrival shape cmd/loadgen uses to stress the service's overload
	// path. LogStormsPerWeek storm windows (Poisson) of LogStormMinutes
	// each land uniformly in time; inside a window the background noise
	// runs at LogStormFactor times its calibrated rate (the extra events
	// draw from the same class/placement/duplication machinery, so a
	// storm is indistinguishable from ordinary traffic except in volume).
	// LogStormsPerWeek = 0 disables storms entirely and — deliberately —
	// consumes no randomness, so enabling the knobs never perturbs the
	// byte-identical output of existing seeds when left off.
	LogStormsPerWeek float64
	LogStormFactor   float64
	LogStormMinutes  float64
}

// stormsEnabled reports whether log-storm shaping is active. A zero
// rate disables it without touching the RNG stream.
func (c *Config) stormsEnabled() bool { return c.LogStormsPerWeek > 0 }

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	if c.Weeks <= 0 {
		return fmt.Errorf("bgsim: Weeks = %d, need > 0", c.Weeks)
	}
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if c.Jobs <= 0 {
		return fmt.Errorf("bgsim: Jobs = %d, need > 0", c.Jobs)
	}
	if c.EpisodesPerWeek <= 0 {
		return fmt.Errorf("bgsim: EpisodesPerWeek = %g, need > 0", c.EpisodesPerWeek)
	}
	if c.EpisodeShape <= 0 {
		return fmt.Errorf("bgsim: EpisodeShape = %g, need > 0", c.EpisodeShape)
	}
	if c.BurstProb < 0 || c.BurstProb > 1 {
		return fmt.Errorf("bgsim: BurstProb = %g out of [0,1]", c.BurstProb)
	}
	if c.StormProb < 0 || c.StormProb > 1 {
		return fmt.Errorf("bgsim: StormProb = %g out of [0,1]", c.StormProb)
	}
	if c.QuietNoiseFactor < 0 || c.QuietNoiseFactor > 1 {
		return fmt.Errorf("bgsim: QuietNoiseFactor = %g out of [0,1]", c.QuietNoiseFactor)
	}
	if c.PrecursorWindow <= 0 || c.PrecursorFarLimit < c.PrecursorWindow {
		return fmt.Errorf("bgsim: precursor windows %d/%d invalid",
			c.PrecursorWindow, c.PrecursorFarLimit)
	}
	if c.RawScale < 0 {
		return fmt.Errorf("bgsim: RawScale = %g, need >= 0", c.RawScale)
	}
	if c.LogStormsPerWeek < 0 {
		return fmt.Errorf("bgsim: LogStormsPerWeek = %g, need >= 0", c.LogStormsPerWeek)
	}
	if c.stormsEnabled() {
		if c.LogStormFactor <= 1 {
			return fmt.Errorf("bgsim: LogStormFactor = %g, need > 1 when storms are enabled", c.LogStormFactor)
		}
		if c.LogStormMinutes <= 0 {
			return fmt.Errorf("bgsim: LogStormMinutes = %g, need > 0 when storms are enabled", c.LogStormMinutes)
		}
	}
	weightTotal := 0.0
	for fac, w := range c.FatalFacilityWeights {
		if !fac.Valid() {
			return fmt.Errorf("bgsim: invalid facility %d in FatalFacilityWeights", fac)
		}
		weightTotal += w
	}
	if weightTotal <= 0 {
		return fmt.Errorf("bgsim: FatalFacilityWeights sum to %g, need > 0", weightTotal)
	}
	return nil
}

// ANL returns the configuration calibrated to the Argonne BG/L log
// (Table 2: 1 rack, 112 weeks starting 2005-01-21, ~5.9 M raw events —
// dominated by KERNEL machine-check traffic from the site's frequent
// diagnostics — compressing to ~46 K at the 300 s threshold).
func ANL(seed uint64) *Config {
	return &Config{
		Name:  "ANL-BGL",
		Seed:  seed,
		Start: 1106265600000, // 2005-01-21 00:00 UTC
		Weeks: 112,
		Topo:  Topology{Racks: 1, IONodes: 32},
		Jobs:  6,

		EpisodesPerWeek: 10,
		EpisodeShape:    0.55,
		BurstProb:       0.35,
		BurstMeanExtra:  1.2,
		BurstGapMean:    110,
		StormProb:       0.35,
		StormMeanExtra:  9,
		StormGapMean:    45,
		FatalFacilityWeights: map[raslog.Facility]float64{
			raslog.Kernel: 0.75, raslog.App: 0.08, raslog.Monitor: 0.09,
			raslog.BGLMaster: 0.02, raslog.Hardware: 0.02, raslog.LinkCard: 0.04,
		},

		HasSignatureProb:       0.85,
		PrecursorProb:          0.90,
		PrecursorNearFrac:      0.75,
		PrecursorWindow:        300,
		PrecursorFarLimit:      7200,
		FalseSignaturesPerWeek: 1.2,

		NoisePerWeek: map[raslog.Facility]float64{
			raslog.App: 12, raslog.BGLMaster: 1.0, raslog.CMCS: 2.5,
			raslog.Discovery: 5.2, raslog.Hardware: 4.8, raslog.Kernel: 190,
			raslog.LinkCard: 0.08, raslog.MMCS: 3.9, raslog.Monitor: 138,
			raslog.ServNet: 0.01,
		},
		QuietNoiseFactor: 0.003,
		ClusterCenterSec: 180,
		ClusterSigmaSec:  240,
		Dup: map[raslog.Facility]DupProfile{
			raslog.App:       {TightMean: 3.0, EchoMean: 0.6, SpatialFrac: 0.7},
			raslog.BGLMaster: {TightMean: 0.08, EchoMean: 0.02},
			raslog.CMCS:      {TightMean: 0.05, EchoMean: 0.02},
			raslog.Discovery: {TightMean: 25, EchoMean: 4, SpatialFrac: 0.9},
			raslog.Hardware:  {TightMean: 2, EchoMean: 0.4, SpatialFrac: 0.5},
			raslog.Kernel:    {TightMean: 205, EchoMean: 1.3, SpatialFrac: 0.6},
			raslog.LinkCard:  {TightMean: 4, EchoMean: 0.8, SpatialFrac: 0.3},
			raslog.MMCS:      {TightMean: 1, EchoMean: 0.15, SpatialFrac: 0.2},
			raslog.Monitor:   {TightMean: 1.4, EchoMean: 0.2, SpatialFrac: 0.5},
			raslog.ServNet:   {},
		},

		DriftPeriodWeeks:   12,
		DriftFraction:      0.20,
		RegimeRateJitter:   1.5,
		RegimeStormJitter:  1.7,
		ReconfigWeek:       -1,
		ReconfigRateFactor: 1,
		RawScale:           1,
	}
}

// SDSC returns the configuration calibrated to the San Diego BG/L log
// (Table 2: 3 racks, 132 weeks starting 2004-12-06, ~517 K raw events;
// data-intensive configuration with 384 I/O nodes; no MONITOR traffic;
// a major system reconfiguration between weeks 60 and 64).
func SDSC(seed uint64) *Config {
	return &Config{
		Name:  "SDSC-BGL",
		Seed:  seed,
		Start: 1102291200000, // 2004-12-06 00:00 UTC
		Weeks: 132,
		Topo:  Topology{Racks: 3, IONodes: 384},
		Jobs:  16,

		EpisodesPerWeek: 9,
		EpisodeShape:    0.55,
		BurstProb:       0.48,
		BurstMeanExtra:  1.2,
		BurstGapMean:    100,
		StormProb:       0.45,
		StormMeanExtra:  9,
		StormGapMean:    40,
		FatalFacilityWeights: map[raslog.Facility]float64{
			raslog.Kernel: 0.80, raslog.App: 0.10, raslog.BGLMaster: 0.02,
			raslog.Hardware: 0.02, raslog.LinkCard: 0.06,
		},

		HasSignatureProb:       0.85,
		PrecursorProb:          0.90,
		PrecursorNearFrac:      0.75,
		PrecursorWindow:        300,
		PrecursorFarLimit:      7200,
		FalseSignaturesPerWeek: 1.2,

		NoisePerWeek: map[raslog.Facility]float64{
			raslog.App: 4.2, raslog.BGLMaster: 0.7, raslog.CMCS: 2.7,
			raslog.Discovery: 4.2, raslog.Hardware: 2.0, raslog.Kernel: 12,
			raslog.LinkCard: 0.6, raslog.MMCS: 3.8, raslog.Monitor: 0,
			raslog.ServNet: 0.03,
		},
		QuietNoiseFactor: 0.003,
		ClusterCenterSec: 180,
		ClusterSigmaSec:  240,
		Dup: map[raslog.Facility]DupProfile{
			raslog.App:       {TightMean: 38, EchoMean: 2, SpatialFrac: 0.85},
			raslog.BGLMaster: {TightMean: 0.15, EchoMean: 0.05},
			raslog.CMCS:      {TightMean: 0.1, EchoMean: 0.05},
			raslog.Discovery: {TightMean: 95, EchoMean: 6, SpatialFrac: 0.9},
			raslog.Hardware:  {TightMean: 4, EchoMean: 0.5, SpatialFrac: 0.5},
			raslog.Kernel:    {TightMean: 112, EchoMean: 1.5, SpatialFrac: 0.6},
			raslog.LinkCard:  {TightMean: 1, EchoMean: 0.2, SpatialFrac: 0.3},
			raslog.MMCS:      {TightMean: 0.6, EchoMean: 0.1, SpatialFrac: 0.2},
			raslog.Monitor:   {},
			raslog.ServNet:   {},
		},

		DriftPeriodWeeks:   12,
		DriftFraction:      0.20,
		RegimeRateJitter:   1.5,
		RegimeStormJitter:  1.7,
		ReconfigWeek:       62,
		ReconfigRateFactor: 1.2,
		RawScale:           1,
	}
}

// Scaled returns a copy of c with the given number of weeks and raw-volume
// scale — the standard way tests and examples shrink a preset.
func (c *Config) Scaled(weeks int, rawScale float64) *Config {
	out := *c
	out.Weeks = weeks
	out.RawScale = rawScale
	// Maps are shared intentionally: presets never mutate them.
	if out.ReconfigWeek >= weeks {
		out.ReconfigWeek = -1
	}
	return &out
}

// catalogForConfig builds the standard catalog (all presets share it).
func catalogForConfig() *preprocess.Catalog { return preprocess.NewCatalog() }
