package bgsim

import (
	"testing"

	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// smallANL returns a fast test configuration derived from the ANL preset.
func smallANL(seed uint64, weeks int) *Config {
	return ANL(seed).Scaled(weeks, 0.02)
}

func generate(t *testing.T, cfg *Config) *raslog.Log {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGenerateSortedAndValid(t *testing.T) {
	l := generate(t, smallANL(1, 4))
	if l.Len() == 0 {
		t.Fatal("empty log")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Record IDs are sequential from 1.
	for i, e := range l.Events {
		if e.RecordID != int64(i)+1 {
			t.Fatalf("event %d has record id %d", i, e.RecordID)
		}
	}
	// All events inside the configured time span.
	end := l.Events[0].Time + int64(4)*raslog.MillisPerWeek + 700_000
	for _, e := range l.Events {
		if e.Time < smallANL(1, 4).Start || e.Time > end {
			t.Fatalf("event outside span: %v", e)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, smallANL(7, 2))
	b := generate(t, smallANL(7, 2))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\n%v\n%v", i, a.Events[i], b.Events[i])
		}
	}
	c := generate(t, smallANL(8, 2))
	if c.Len() == a.Len() {
		// Not impossible, but vanishingly unlikely with a different seed.
		same := true
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical logs")
		}
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	cfg := smallANL(3, 2)
	g1, _ := NewGenerator(cfg)
	var streamed []raslog.Event
	if err := g1.Stream(func(e raslog.Event) error {
		streamed = append(streamed, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	l := generate(t, smallANL(3, 2))
	if len(streamed) != l.Len() {
		t.Fatalf("stream %d vs generate %d", len(streamed), l.Len())
	}
	for i := range streamed {
		if streamed[i] != l.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratedFatalRate(t *testing.T) {
	cfg := smallANL(11, 8)
	l := generate(t, cfg)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(l)
	tagged := z.Tag(filtered)
	fatals := preprocess.FatalCount(tagged)
	perWeek := float64(fatals) / 8
	// Episodes 10/week, bursts add ~+0.9: expect roughly 12–30 per week.
	if perWeek < 8 || perWeek > 45 {
		t.Errorf("fatal rate %.1f/week outside plausible band", perWeek)
	}
}

func TestGeneratedDuplicationCompresses(t *testing.T) {
	cfg := ANL(13).Scaled(2, 0.5) // meaningful duplication
	l := generate(t, cfg)
	_, st := preprocess.Filter{Threshold: 300}.Apply(l)
	if st.CompressionRate() < 0.90 {
		t.Errorf("compression rate %.3f, want > 0.90 at half raw scale",
			st.CompressionRate())
	}
}

func TestGeneratedEventsAreCatalogued(t *testing.T) {
	l := generate(t, smallANL(17, 2))
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	unknown := 0
	for _, e := range l.Events {
		class, _ := z.Categorize(e)
		if preprocess.IsUnknown(class) {
			unknown++
		}
	}
	if unknown != 0 {
		t.Errorf("%d generated events not in catalog", unknown)
	}
}

func TestPrecursorsExist(t *testing.T) {
	// A meaningful share of fatals must have a catalogued precursor within
	// the rule-generation window — the signal association rules mine.
	cfg := smallANL(19, 8)
	l := generate(t, cfg)
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(l)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	tagged := z.Tag(filtered)
	withPrecursor, fatals := 0, 0
	for i, e := range tagged {
		if !e.Fatal {
			continue
		}
		fatals++
		for j := i - 1; j >= 0; j-- {
			if e.Time-tagged[j].Time > 300_000 {
				break
			}
			if !tagged[j].Fatal {
				withPrecursor++
				break
			}
		}
	}
	if fatals == 0 {
		t.Fatal("no fatals generated")
	}
	frac := float64(withPrecursor) / float64(fatals)
	// Some non-fatal event (signature or reaction chatter) precedes most
	// fatals: this is the raw material the association miner and the
	// event-driven distribution expert work from. The *signature* share is
	// asserted at the learner level; here we only require the stream is
	// neither silent before failures nor trivially saturated.
	if frac < 0.20 || frac > 0.99 {
		t.Errorf("precursor fraction %.2f outside [0.20, 0.99]", frac)
	}
}

func TestBurstsExist(t *testing.T) {
	cfg := smallANL(23, 8)
	l := generate(t, cfg)
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(l)
	z := preprocess.NewCategorizer(preprocess.NewCatalog())
	fatalTimes := []int64{}
	for _, e := range z.Tag(filtered) {
		if e.Fatal {
			fatalTimes = append(fatalTimes, e.Time)
		}
	}
	// Count fatals whose predecessor is within 300 s: burst members.
	close := 0
	for i := 1; i < len(fatalTimes); i++ {
		if fatalTimes[i]-fatalTimes[i-1] <= 300_000 {
			close++
		}
	}
	frac := float64(close) / float64(len(fatalTimes))
	if frac < 0.10 {
		t.Errorf("only %.2f of fatals are burst-clustered; statistical rules would starve", frac)
	}
}

func TestSDSCHasNoMonitorEvents(t *testing.T) {
	cfg := SDSC(29).Scaled(3, 0.02)
	l := generate(t, cfg)
	if n := l.CountByFacility()[raslog.Monitor]; n != 0 {
		t.Errorf("SDSC generated %d MONITOR events, want 0 (Table 4)", n)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Weeks = 0 },
		func(c *Config) { c.Topo.Racks = 0 },
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.EpisodesPerWeek = 0 },
		func(c *Config) { c.EpisodeShape = -1 },
		func(c *Config) { c.BurstProb = 1.5 },
		func(c *Config) { c.PrecursorWindow = 0 },
		func(c *Config) { c.PrecursorFarLimit = 10 },
		func(c *Config) { c.RawScale = -1 },
		func(c *Config) { c.FatalFacilityWeights = nil },
	}
	for i, mutate := range bad {
		cfg := ANL(1)
		mutate(cfg)
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScaledTrimsReconfig(t *testing.T) {
	cfg := SDSC(1).Scaled(10, 0.1)
	if cfg.ReconfigWeek != -1 {
		t.Errorf("ReconfigWeek = %d after scaling below it", cfg.ReconfigWeek)
	}
	cfg2 := SDSC(1).Scaled(100, 0.1)
	if cfg2.ReconfigWeek != 62 {
		t.Errorf("ReconfigWeek lost: %d", cfg2.ReconfigWeek)
	}
}

func TestSignatureDrift(t *testing.T) {
	cat := preprocess.NewCatalog()
	s := newSignatureTable(42, cat, 1.0, 8, 0.5, -1, nil)
	// Find a class with a signature and confirm it changes across drift
	// periods but is stable within one.
	fatalIDs := cat.FatalIDs()
	changed, checked := 0, 0
	for _, id := range fatalIDs {
		sig0 := s.signature(id, 0)
		if sig0 == nil {
			continue
		}
		sig7 := s.signature(id, 7) // same regime
		if !equalInts(sig0, sig7) {
			t.Fatalf("class %d signature changed within a drift period", id)
		}
		checked++
		if !equalInts(sig0, s.signature(id, 80)) { // 10 periods later
			changed++
		}
	}
	if checked == 0 {
		t.Fatal("no signatures found")
	}
	if changed == 0 {
		t.Error("no signature drifted across 10 periods at fraction 0.5")
	}
}

func TestReconfigurationRemapsSignatures(t *testing.T) {
	cat := preprocess.NewCatalog()
	s := newSignatureTable(42, cat, 1.0, 0, 0, 62, nil)
	changed, total := 0, 0
	for _, id := range cat.FatalIDs() {
		before := s.signature(id, 61)
		after := s.signature(id, 62)
		if before == nil {
			continue
		}
		total++
		if !equalInts(before, after) {
			changed++
		}
	}
	if total == 0 {
		t.Fatal("no signatures")
	}
	if frac := float64(changed) / float64(total); frac < 0.6 {
		t.Errorf("only %.2f of signatures remapped at reconfiguration", frac)
	}
}

func TestSignaturesAreNonFatalAndBounded(t *testing.T) {
	cat := preprocess.NewCatalog()
	s := newSignatureTable(7, cat, 1.0, 8, 0.15, -1, nil)
	for _, id := range cat.FatalIDs() {
		sig := s.signature(id, 10)
		if sig == nil {
			continue
		}
		if len(sig) < 2 || len(sig) > 4 {
			t.Fatalf("signature size %d for class %d", len(sig), id)
		}
		seen := map[int]bool{}
		for _, sc := range sig {
			if cat.Class(sc).Fatal {
				t.Fatalf("signature of %d contains fatal class %d", id, sc)
			}
			if seen[sc] {
				t.Fatalf("signature of %d has duplicate member %d", id, sc)
			}
			seen[sc] = true
		}
	}
}

func TestHasSignatureProbZero(t *testing.T) {
	cat := preprocess.NewCatalog()
	s := newSignatureTable(7, cat, 0, 8, 0.15, -1, nil)
	for _, id := range cat.FatalIDs() {
		if s.signature(id, 0) != nil {
			t.Fatal("signature exists with hasSignatureProb=0")
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
