// Package bgsim is a synthetic Blue Gene/L RAS-log generator. It stands in
// for the production ANL and SDSC logs the paper evaluates on (which are
// not publicly redistributable): it models the machines' packaging
// hierarchy, their job workload, and — most importantly — the statistical
// structure the paper's learners exploit:
//
//   - Weibull-clustered failure episodes (the paper's SDSC fit is
//     F(t) = 1 - exp(-(t/19984.8)^0.507936));
//   - precursor signatures: a minority of fatal classes are preceded by
//     characteristic non-fatal events inside the rule-generation window
//     (the paper finds up to 75 % of fatals have NO precursors);
//   - failure bursts (network and I/O storms) that make "k failures within
//     W_P" statistically predictive;
//   - massive duplicate reporting (per-chip polling agents), which the
//     preprocessing filter must compress by >98 %;
//   - slow failure-pattern drift plus a major mid-life reconfiguration
//     (the SDSC system was reconfigured around week 60–64), which is what
//     makes *dynamic* relearning necessary.
package bgsim

import "fmt"

// Topology describes one Blue Gene/L installation's packaging hierarchy
// (paper §2.1, Figure 2): a rack holds 2 midplanes; a midplane holds 16
// node cards plus a service card; a node card holds 16 compute cards; a
// compute card holds 2 chips (nodes).
type Topology struct {
	Racks   int
	IONodes int // total I/O nodes (varies by installation)
}

// Standard packaging constants for Blue Gene/L.
const (
	MidplanesPerRack     = 2
	NodeCardsPerMidplane = 16
	ComputeCardsPerCard  = 16
	ChipsPerComputeCard  = 2
	// NodesPerMidplane is 16 node cards × 16 compute cards × 2 chips.
	NodesPerMidplane = NodeCardsPerMidplane * ComputeCardsPerCard * ChipsPerComputeCard
)

// Midplanes returns the number of midplanes in the installation.
func (t Topology) Midplanes() int { return t.Racks * MidplanesPerRack }

// ComputeNodes returns the number of compute nodes (chips).
func (t Topology) ComputeNodes() int { return t.Midplanes() * NodesPerMidplane }

// Validate checks the topology is physically sensible.
func (t Topology) Validate() error {
	if t.Racks <= 0 {
		return fmt.Errorf("bgsim: topology needs at least one rack, got %d", t.Racks)
	}
	if t.IONodes < 0 {
		return fmt.Errorf("bgsim: negative I/O node count %d", t.IONodes)
	}
	return nil
}

// ChipLocation formats the location string of compute chip index i
// (0 <= i < ComputeNodes()) in the style of the production logs:
// Rrr-Mm-Nnn-Ccc-Uu.
func (t Topology) ChipLocation(i int) string {
	chip := i % ChipsPerComputeCard
	i /= ChipsPerComputeCard
	card := i % ComputeCardsPerCard
	i /= ComputeCardsPerCard
	nodeCard := i % NodeCardsPerMidplane
	i /= NodeCardsPerMidplane
	mid := i % MidplanesPerRack
	rack := i / MidplanesPerRack
	return fmt.Sprintf("R%02d-M%d-N%02d-C%02d-U%d", rack, mid, nodeCard, card, chip)
}

// NodeCardLocation formats the location of node card n within midplane m
// of the installation (m counts midplanes globally).
func (t Topology) NodeCardLocation(m, n int) string {
	return fmt.Sprintf("R%02d-M%d-N%02d", m/MidplanesPerRack, m%MidplanesPerRack, n)
}

// ServiceCardLocation formats the location of midplane m's service card.
func (t Topology) ServiceCardLocation(m int) string {
	return fmt.Sprintf("R%02d-M%d-S", m/MidplanesPerRack, m%MidplanesPerRack)
}

// LinkCardLocation formats the location of midplane m's link card l.
func (t Topology) LinkCardLocation(m, l int) string {
	return fmt.Sprintf("R%02d-M%d-L%d", m/MidplanesPerRack, m%MidplanesPerRack, l)
}

// MidplaneOfChip returns the global midplane index of chip i.
func (t Topology) MidplaneOfChip(i int) int { return i / NodesPerMidplane }

// ChipRange returns the [first, last) global chip indices of midplane m.
func (t Topology) ChipRange(m int) (first, last int) {
	return m * NodesPerMidplane, (m + 1) * NodesPerMidplane
}
