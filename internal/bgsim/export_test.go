package bgsim

import "repro/internal/stats"

// newJobPoolForTest exposes the job pool to tests with a fixed seed.
func newJobPoolForTest(topo Topology, concurrency int) *jobPool {
	return newJobPool(topo, concurrency, stats.NewRNG(12345), 0)
}
