package bgsim

import (
	"repro/internal/stats"
)

// Job is one running application: it owns a midplane-aligned partition of
// compute chips for a bounded duration. RAS events detected by the
// application (APP and KERNEL facilities, mostly) carry its ID, and the
// per-chip polling agents of its partition are what duplicate each fault
// report across locations.
type Job struct {
	ID        int64
	Midplane  int   // global midplane index the partition starts at
	Midplanes int   // partition width in midplanes
	Start     int64 // ms
	End       int64 // ms
}

// Active reports whether the job is running at time t.
func (j Job) Active(t int64) bool { return t >= j.Start && t < j.End }

// jobPool keeps a rotating set of concurrent jobs, replacing each job when
// it ends. Job durations are log-normal (median a few hours), matching the
// scientific-computing workloads both installations ran.
type jobPool struct {
	topo     Topology
	rng      *stats.RNG
	duration stats.LogNormal
	nextID   int64
	jobs     []Job
}

func newJobPool(topo Topology, concurrency int, rng *stats.RNG, start int64) *jobPool {
	p := &jobPool{
		topo: topo,
		rng:  rng,
		// Median ≈ exp(mu) ms. mu = log(6h in ms) ≈ 16.89.
		duration: stats.LogNormal{Mu: 16.89, Sigma: 0.9},
		nextID:   1,
		jobs:     make([]Job, concurrency),
	}
	for i := range p.jobs {
		p.jobs[i] = p.spawn(start - p.rng.Int63n(3_600_000))
	}
	return p
}

func (p *jobPool) spawn(t int64) Job {
	width := 1
	if p.topo.Midplanes() > 1 && p.rng.Bool(0.3) {
		width = 2
	}
	maxStart := p.topo.Midplanes() - width
	mid := 0
	if maxStart > 0 {
		mid = p.rng.Intn(maxStart + 1)
	}
	dur := int64(p.duration.Sample(p.rng))
	if dur < 600_000 { // at least 10 minutes
		dur = 600_000
	}
	j := Job{ID: p.nextID, Midplane: mid, Midplanes: width, Start: t, End: t + dur}
	p.nextID++
	return j
}

// at returns a job running at time t, refreshing any ended slots first.
func (p *jobPool) at(t int64) Job {
	i := p.rng.Intn(len(p.jobs))
	if !p.jobs[i].Active(t) {
		p.jobs[i] = p.spawn(t)
	}
	return p.jobs[i]
}

// chipOf picks a random chip of the job's partition.
func (p *jobPool) chipOf(j Job) int {
	first, _ := p.topo.ChipRange(j.Midplane)
	span := j.Midplanes * NodesPerMidplane
	return first + p.rng.Intn(span)
}
