package predictor

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

var p300 = learner.Params{WindowSec: 300}

func mk(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

func assocRule(target int, body ...int) learner.Rule {
	return learner.Rule{Kind: learner.Association,
		Body: learner.NormalizeBody(body), Target: target, Confidence: 1}
}

func TestAssociationRuleFires(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1, 2)}, p300)
	if w := pr.Observe(mk(0, 1, false)); len(w) != 0 {
		t.Fatal("partial body fired")
	}
	w := pr.Observe(mk(100, 2, false))
	if len(w) != 1 {
		t.Fatal("completed body did not fire")
	}
	if w[0].Target != 99 || w[0].Source != learner.Association {
		t.Errorf("warning = %+v", w[0])
	}
	if w[0].Deadline-w[0].Time != 300_000 {
		t.Errorf("window = %d ms", w[0].Deadline-w[0].Time)
	}
}

func TestAssociationWindowExpiry(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1, 2)}, p300)
	pr.Observe(mk(0, 1, false))
	// 400 s later the first item has expired.
	if w := pr.Observe(mk(400, 2, false)); len(w) != 0 {
		t.Fatal("fired on expired window item")
	}
}

func TestAssociationSingleEventSuppliesOnlyItsClass(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1, 1)}, p300)
	// Body {1} after normalization — a single occurrence fires it.
	if w := pr.Observe(mk(0, 1, false)); len(w) != 1 {
		t.Fatal("singleton body did not fire")
	}
}

func TestStatisticalRuleFiresOnKthFatal(t *testing.T) {
	rule := learner.Rule{Kind: learner.Statistical, Count: 3,
		Target: learner.AnyFatal, Confidence: 0.9}
	pr := New([]learner.Rule{rule}, p300)
	if w := pr.Observe(mk(0, 90, true)); len(w) != 0 {
		t.Fatal("fired at k=1")
	}
	if w := pr.Observe(mk(50, 90, true)); len(w) != 0 {
		t.Fatal("fired at k=2")
	}
	w := pr.Observe(mk(100, 90, true))
	if len(w) != 1 || w[0].Source != learner.Statistical {
		t.Fatalf("did not fire at k=3: %v", w)
	}
}

func TestStatisticalRuleRespectsWindow(t *testing.T) {
	rule := learner.Rule{Kind: learner.Statistical, Count: 2, Target: learner.AnyFatal}
	pr := New([]learner.Rule{rule}, p300)
	pr.Observe(mk(0, 90, true))
	// Second fatal 400 s later: the first is out of the window.
	if w := pr.Observe(mk(400, 90, true)); len(w) != 0 {
		t.Fatal("counted a fatal outside the window")
	}
}

func TestStatisticalNotTriggeredByNonFatal(t *testing.T) {
	rule := learner.Rule{Kind: learner.Statistical, Count: 1, Target: learner.AnyFatal}
	pr := New([]learner.Rule{rule}, p300)
	if w := pr.Observe(mk(0, 1, false)); len(w) != 0 {
		t.Fatal("statistical rule fired on a non-fatal event")
	}
}

func distRule(elapsedSec int64) learner.Rule {
	return learner.Rule{Kind: learner.Distribution, Target: learner.AnyFatal,
		Dist: stats.Weibull{Scale: 20000, Shape: 0.5}, ElapsedSec: elapsedSec,
		Confidence: 0.6}
}

func TestDistributionRuleFiresAfterElapsed(t *testing.T) {
	pr := New([]learner.Rule{distRule(1000)}, p300)
	// No fatal seen yet: the elapsed clock is not armed.
	if w := pr.Observe(mk(5000, 1, false)); len(w) != 0 {
		t.Fatal("fired before any fatal was seen")
	}
	pr.Observe(mk(6000, 90, true)) // arms the clock
	if w := pr.Observe(mk(6500, 1, false)); len(w) != 0 {
		t.Fatal("fired before the trigger point")
	}
	w := pr.Observe(mk(7100, 1, false)) // 1100 s elapsed > 1000
	if len(w) != 1 || w[0].Source != learner.Distribution {
		t.Fatalf("distribution rule did not fire: %v", w)
	}
}

func TestDistributionFallbackOrderOnFatal(t *testing.T) {
	// With stat + dist rules, a fatal that matches the stat rule reports
	// the statistical source (mixture-of-experts ordering).
	rules := []learner.Rule{
		{Kind: learner.Statistical, Count: 2, Target: learner.AnyFatal},
		distRule(100),
	}
	pr := New(rules, p300)
	pr.Observe(mk(0, 90, true))
	w := pr.Observe(mk(50, 90, true)) // k=2 met; elapsed 50 < 100 anyway
	if len(w) != 1 || w[0].Source != learner.Statistical {
		t.Fatalf("expected statistical warning, got %v", w)
	}
	// A fatal long after: stat rule unmet (k=1), falls back to dist.
	w = pr.Observe(mk(5000, 90, true))
	if len(w) != 1 || w[0].Source != learner.Distribution {
		t.Fatalf("expected distribution fallback, got %v", w)
	}
}

func TestAssociationPreferredOverDistOnNonFatal(t *testing.T) {
	rules := []learner.Rule{assocRule(99, 1), distRule(100)}
	pr := New(rules, p300)
	pr.Observe(mk(0, 90, true)) // arm elapsed clock
	w := pr.Observe(mk(500, 1, false))
	if len(w) != 1 || w[0].Source != learner.Association {
		t.Fatalf("expected association warning, got %v", w)
	}
}

func TestWarningDeduplication(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1)}, p300)
	if w := pr.Observe(mk(0, 1, false)); len(w) != 1 {
		t.Fatal("first warning missing")
	}
	// Repeated triggers within the open window are suppressed.
	if w := pr.Observe(mk(100, 1, false)); len(w) != 0 {
		t.Fatal("duplicate warning emitted")
	}
	// After the window closes a new warning may fire.
	if w := pr.Observe(mk(400, 1, false)); len(w) != 1 {
		t.Fatal("post-window warning suppressed")
	}
}

func TestSmallestKStatRuleWins(t *testing.T) {
	rules := []learner.Rule{
		{Kind: learner.Statistical, Count: 4, Target: learner.AnyFatal},
		{Kind: learner.Statistical, Count: 2, Target: learner.AnyFatal},
	}
	pr := New(rules, p300)
	pr.Observe(mk(0, 90, true))
	w := pr.Observe(mk(10, 90, true))
	if len(w) != 1 || w[0].RuleID != "stat:k=2" {
		t.Fatalf("warning = %v, want stat:k=2", w)
	}
}

func TestResetClearsState(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1, 2), distRule(100)}, p300)
	pr.Observe(mk(0, 1, false))
	pr.Observe(mk(1, 90, true))
	pr.Reset()
	if pr.LastFatal() != -1 {
		t.Error("Reset kept lastFatal")
	}
	if w := pr.Observe(mk(2, 2, false)); len(w) != 0 {
		t.Error("Reset kept window contents")
	}
}

func TestSeedLastFatal(t *testing.T) {
	pr := New([]learner.Rule{distRule(100)}, p300)
	pr.SeedLastFatal(1_000_000)
	w := pr.Observe(mk(1200, 1, false)) // 200 s elapsed > 100
	if len(w) != 1 {
		t.Fatal("seeded elapsed clock did not arm the distribution rule")
	}
	// Seeding backwards must not rewind.
	pr.SeedLastFatal(0)
	if pr.LastFatal() != 1_000_000 {
		t.Error("SeedLastFatal rewound the clock")
	}
}

func TestObserveAllCollects(t *testing.T) {
	pr := New([]learner.Rule{assocRule(99, 1)}, p300)
	events := []preprocess.TaggedEvent{
		mk(0, 1, false), mk(1000, 1, false), mk(2000, 1, false),
	}
	ws := pr.ObserveAll(events)
	if len(ws) != 3 {
		t.Errorf("ObserveAll returned %d warnings, want 3", len(ws))
	}
}

func TestNoRulesNoWarnings(t *testing.T) {
	pr := New(nil, p300)
	for i := int64(0); i < 100; i++ {
		if w := pr.Observe(mk(i*10, int(i%5), i%7 == 0)); len(w) != 0 {
			t.Fatal("warning from empty rule set")
		}
	}
}

func TestRulesAccessor(t *testing.T) {
	rules := []learner.Rule{assocRule(99, 1)}
	pr := New(rules, p300)
	if len(pr.Rules()) != 1 {
		t.Error("Rules() lost rules")
	}
	// The constructor copies: mutating the input must not affect it.
	rules[0].Target = 0
	if pr.Rules()[0].Target != 99 {
		t.Error("predictor shares caller's slice")
	}
}

// TestWindowBoundaryInclusive pins the W_P boundary convention shared
// with the batch learners (learner.BuildEventSets, statrule mining): an
// event exactly W_P old is still inside the window; one millisecond
// older is out. Both deployment modes count the same way.
func TestWindowBoundaryInclusive(t *testing.T) {
	mkMs := func(tMs int64, class int, fatal bool) preprocess.TaggedEvent {
		return preprocess.TaggedEvent{Event: raslog.Event{Time: tMs}, Class: class, Fatal: fatal}
	}
	const wp = 300_000 // W_P in ms for p300

	pr := New([]learner.Rule{assocRule(99, 1, 2)}, p300)
	pr.Observe(mkMs(0, 1, false))
	if w := pr.Observe(mkMs(wp, 2, false)); len(w) != 1 {
		t.Error("body item exactly W_P old did not complete the association rule")
	}
	pr = New([]learner.Rule{assocRule(99, 1, 2)}, p300)
	pr.Observe(mkMs(0, 1, false))
	if w := pr.Observe(mkMs(wp+1, 2, false)); len(w) != 0 {
		t.Error("body item W_P+1ms old completed the association rule")
	}

	// The same convention governs the statistical k-run window.
	kRun := learner.Rule{Kind: learner.Statistical, Count: 2, Target: learner.AnyFatal}
	pr = New([]learner.Rule{kRun}, p300)
	pr.Observe(mkMs(0, 90, true))
	if w := pr.Observe(mkMs(wp, 90, true)); len(w) != 1 {
		t.Error("fatal exactly W_P old fell out of the k-run")
	}
	pr = New([]learner.Rule{kRun}, p300)
	pr.Observe(mkMs(0, 90, true))
	if w := pr.Observe(mkMs(wp+1, 90, true)); len(w) != 0 {
		t.Error("fatal W_P+1ms old still counted toward the k-run")
	}
}
