package predictor

// Runtime-state export/import for durable snapshots (internal/persist)
// and for carrying dedup state across rule swaps. The rules themselves
// are not part of State: they are repository contents, serialized
// separately; State is only what Observe accumulates at run time.

// RecentEvent is one sliding-window entry in an exported State.
type RecentEvent struct {
	TimeMs int64 `json:"t"`
	Class  int   `json:"c"`
	Fatal  bool  `json:"f,omitempty"`
}

// State is a predictor's runtime state: the recent-events window, the
// elapsed-time tracker and the per-family warning-dedup marks. The
// window's derived indexes (class multiplicities, fatal times) are
// rebuilt on restore, not serialized.
type State struct {
	Recent      []RecentEvent `json:"recent,omitempty"`
	LastFatalMs int64         `json:"last_fatal_ms"`
	LastWarnMs  [3]int64      `json:"last_warn_ms"`
}

// ExportState captures the predictor's runtime state. The window ring is
// flattened oldest-first, so the wire format is unchanged from the
// slice-backed era.
func (pr *Predictor) ExportState() State {
	st := State{
		Recent:      make([]RecentEvent, pr.recent.n),
		LastFatalMs: pr.lastFatal,
		LastWarnMs:  pr.lastWarn,
	}
	for i := 0; i < pr.recent.n; i++ {
		re := pr.recent.at(i)
		st.Recent[i] = RecentEvent{TimeMs: re.time, Class: re.class, Fatal: re.fatal}
	}
	return st
}

// RestoreState replaces the predictor's runtime state with st, rebuilding
// the window indexes. The rule set is untouched.
func (pr *Predictor) RestoreState(st State) {
	pr.recent.reset()
	pr.classCount = nil
	pr.fatalTimes.reset()
	for _, re := range st.Recent {
		pr.recent.push(recentEvent{time: re.TimeMs, class: re.Class, fatal: re.Fatal})
		pr.countAdd(re.Class, 1)
		if re.Fatal {
			pr.fatalTimes.push(re.TimeMs)
		}
	}
	pr.lastFatal = st.LastFatalMs
	pr.lastWarn = st.LastWarnMs
}

// LastWarnTimes returns the per-family timestamps (ms) of the most recent
// emitted warnings, -1 where a family has never warned.
func (pr *Predictor) LastWarnTimes() [3]int64 { return pr.lastWarn }

// SeedLastWarn primes the warning-dedup marks (keeping the later mark per
// family), so a predictor swapped in at a retraining boundary does not
// re-issue a warning its predecessor already raised within the dedup
// interval. The counterpart of SeedLastFatal: seeding only the
// elapsed-time tracker re-arms the distribution expert while forgetting
// that it just fired — the stale-lastFatal re-warn bug pinned by
// TestSwapPredictorKeepsWarnSpacing.
func (pr *Predictor) SeedLastWarn(t [3]int64) {
	for i, v := range t {
		if v > pr.lastWarn[i] {
			pr.lastWarn[i] = v
		}
	}
}
