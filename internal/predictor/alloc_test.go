package predictor

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/stats"
)

// TestObserveAllocBudget pins the steady-state observe path to zero
// allocations: evict/admit move ring indexes, matching probes dense
// tables, and a Warning is only materialized when one is emitted —
// which the dedup window makes rare. The measured loop triggers no
// warnings (the common case).
func TestObserveAllocBudget(t *testing.T) {
	dist, err := stats.NewExponential(3600)
	if err != nil {
		t.Fatal(err)
	}
	rules := []learner.Rule{
		{Kind: learner.Association, Body: []int{3, 5}, Target: 40, Confidence: 0.9, Support: 0.1},
		{Kind: learner.Statistical, Count: 3, Confidence: 0.8},
		{Kind: learner.Distribution, ElapsedSec: 1 << 40, Dist: dist},
	}
	pr := New(rules, learner.Params{WindowSec: 300})

	// Warm: fill the window past its steady-state size so the rings and
	// the dense class table have grown to capacity.
	now := int64(0)
	for i := 0; i < 4096; i++ {
		now += 100
		te := preprocess.TaggedEvent{Class: 3 + i%2}
		te.Time = now
		pr.Observe(te)
	}

	allocs := testing.AllocsPerRun(2000, func() {
		now += 100
		te := preprocess.TaggedEvent{Class: 7, Fatal: false}
		te.Time = now
		if w := pr.Observe(te); w != nil {
			t.Fatalf("unexpected warning %v", w)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per event, want 0", allocs)
	}
}
