package predictor

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// randomRules builds a small random rule set across all three families.
func randomRules(r *stats.RNG) []learner.Rule {
	var rules []learner.Rule
	for i, n := 0, 1+r.Intn(6); i < n; i++ {
		body := []int{r.Intn(20)}
		if r.Bool(0.5) {
			body = append(body, r.Intn(20))
		}
		rules = append(rules, learner.Rule{
			Kind: learner.Association, Body: learner.NormalizeBody(body),
			Target: 100 + r.Intn(5),
		})
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		rules = append(rules, learner.Rule{
			Kind: learner.Statistical, Count: 2 + r.Intn(4), Target: learner.AnyFatal,
		})
	}
	if r.Bool(0.7) {
		rules = append(rules, learner.Rule{
			Kind: learner.Distribution, Target: learner.AnyFatal,
			Dist:       stats.Weibull{Scale: 5000, Shape: 0.6},
			ElapsedSec: int64(600 + r.Intn(5000)),
		})
	}
	return rules
}

// randomStream builds a time-sorted tagged stream.
func randomStream(r *stats.RNG, n int) []preprocess.TaggedEvent {
	events := make([]preprocess.TaggedEvent, n)
	tm := int64(0)
	for i := range events {
		tm += r.Int63n(400_000)
		class := r.Intn(20)
		fatal := r.Bool(0.15)
		if fatal {
			class = 100 + r.Intn(5)
		}
		events[i] = preprocess.TaggedEvent{
			Event: raslog.Event{Time: tm}, Class: class, Fatal: fatal,
		}
	}
	return events
}

// TestPredictorInvariantsProperty drives random rule sets over random
// streams and asserts the structural invariants every consumer relies on:
// warnings are time-ordered, windows are exactly W_P, sources carry rules
// of their own family, and the dedup spacing holds per family.
func TestPredictorInvariantsProperty(t *testing.T) {
	seedRNG := stats.NewRNG(2024)
	for trial := 0; trial < 60; trial++ {
		r := stats.NewRNG(seedRNG.Uint64())
		rules := randomRules(r)
		events := randomStream(r, 400)
		p := learner.Params{WindowSec: int64(60 + r.Intn(600))}
		pr := New(rules, p)
		pr.GlobalDedup = r.Bool(0.5)

		var lastWarnTime int64 = -1
		lastBySource := map[learner.Kind]int64{}
		for _, e := range events {
			for _, w := range pr.Observe(e) {
				if w.Time != e.Time {
					t.Fatalf("trial %d: warning time %d != event time %d",
						trial, w.Time, e.Time)
				}
				if w.Deadline-w.Time != p.Window() {
					t.Fatalf("trial %d: window %d != W_P %d",
						trial, w.Deadline-w.Time, p.Window())
				}
				if w.Time < lastWarnTime {
					t.Fatalf("trial %d: warnings out of order", trial)
				}
				lastWarnTime = w.Time
				if last, ok := lastBySource[w.Source]; ok {
					if w.Time-last < p.Window() {
						t.Fatalf("trial %d: %v warnings %d ms apart (< W_P %d)",
							trial, w.Source, w.Time-last, p.Window())
					}
				}
				lastBySource[w.Source] = w.Time
				if w.RuleID == "" {
					t.Fatalf("trial %d: empty rule id", trial)
				}
			}
		}
	}
}

// TestPredictorMatchesScorerSingleRule cross-checks the two independent
// matching implementations: for one rule, the online predictor's warning
// stream must match the reviser-style scorer's outcome when evaluated the
// same way. (The reviser scorer lives in another package; here we verify
// the predictor against a brute-force oracle instead.)
func TestPredictorAgainstBruteForceOracle(t *testing.T) {
	seedRNG := stats.NewRNG(77)
	for trial := 0; trial < 40; trial++ {
		r := stats.NewRNG(seedRNG.Uint64())
		body := []int{r.Intn(6), 6 + r.Intn(6)}
		rule := learner.Rule{Kind: learner.Association,
			Body: learner.NormalizeBody(body), Target: 100}
		p := learner.Params{WindowSec: 300}
		events := randomStream(r, 300)

		pr := New([]learner.Rule{rule}, p)
		var got []int64
		for _, e := range events {
			for _, w := range pr.Observe(e) {
				got = append(got, w.Time)
			}
		}

		// Oracle: scan windows directly.
		var want []int64
		lastWarn := int64(-1)
		for i, e := range events {
			if e.Fatal || !contains(rule.Body, e.Class) {
				continue
			}
			matched := true
			for _, class := range rule.Body {
				if class == e.Class {
					continue
				}
				ok := false
				for j := i - 1; j >= 0; j-- {
					if e.Time-events[j].Time > p.Window() {
						break
					}
					if events[j].Class == class {
						ok = true
						break
					}
				}
				if !ok {
					matched = false
					break
				}
			}
			if matched && (lastWarn < 0 || e.Time-lastWarn >= p.Window()) {
				want = append(want, e.Time)
				lastWarn = e.Time
			}
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: predictor %d warnings, oracle %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: warning %d at %d, oracle %d", trial, i, got[i], want[i])
			}
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
