// Package predictor implements the event-driven online predictor of the
// framework (paper §4.3, Algorithm 2). The predictor holds the current
// rule set from the knowledge repository, watches the preprocessed event
// stream, and triggers a warning whenever an occurring event completes a
// rule within the prediction window W_P.
//
// Algorithm 2's two lookup structures appear here as:
//
//   - E-List: eList maps every event class to the association rules whose
//     body contains it (the "failures that may be triggered by this
//     event" list);
//   - F-List: the rules themselves, each carrying its full trigger set,
//     checked for containment in the recent-events window.
//
// The predictor also embodies the meta-learner's mixture-of-experts
// ordering (paper §4.1, Figure 6): on a non-fatal event it consults
// association rules first; on a fatal event it consults statistical rules;
// if no rule of the preferred family matches, it falls back to the fitted
// failure-probability distribution.
package predictor

import (
	"sort"

	"repro/internal/learner"
	"repro/internal/preprocess"
)

// Predictor is the online, event-driven prediction engine.
type Predictor struct {
	// GlobalDedup merges warning deduplication across expert families:
	// while any warning is open, no family may issue another. This is the
	// right counting for the full ensemble — the three experts predict
	// the same thing ("a failure within W_P"), so overlapping alarms are
	// one prediction. Leave it false when isolating a single family
	// (per-learner analysis). Set before the first Observe call.
	GlobalDedup bool
	// DedupWindowSec is the minimum spacing between warnings (per family,
	// or overall under GlobalDedup). Zero means "use W_P". Keeping it at
	// the base rule-generation window while sweeping W_P reproduces the
	// paper's Figure 13 trade-off: wider prediction windows admit *more*
	// alarms (higher recall, more false positives), they do not ration
	// them.
	DedupWindowSec int64

	windowMs int64
	rules    []learner.Rule

	// eList is Algorithm 2's E-List as a dense table: eList[class] holds
	// the association rules whose body contains class. Event classes are
	// small ints (catalog IDs plus the bounded unknown-class range), so
	// indexing replaces the per-event map probe of the string era.
	eList     [][]int
	statRules []int // indexes of statistical rules, ascending k
	distRules []int // indexes of distribution rules

	// Sliding window of recent events (Algorithm 2 step 1), held in rings
	// so steady-state admit/evict moves indexes instead of copying slices.
	recent     recentRing
	classCount []int32  // class -> multiplicity within the window, dense
	fatalTimes timeRing // fatal timestamps within the window
	lastFatal  int64    // ms; -1 until the first fatal is seen

	// lastWarn deduplicates per expert family: at most one open warning
	// per family at a time. Families are deduplicated independently so a
	// chatty fallback expert cannot starve the prioritized ones.
	lastWarn [3]int64 // ms of the last emitted warning per Kind; -1 initially
}

// Warning is one failure prediction: "a failure is expected within
// (Time, Deadline]".
type Warning struct {
	Time     int64 // ms; the triggering event's timestamp
	Deadline int64 // ms; Time + W_P
	Source   learner.Kind
	RuleID   string
	// Target is the predicted fatal class for association rules, or
	// learner.AnyFatal for the class-agnostic families.
	Target int
}

type recentEvent struct {
	time  int64
	class int
	fatal bool
}

// recentRing is a growable circular buffer of window entries: admit
// pushes at the tail, evict pops from the head, and neither moves the
// remaining entries — the slice-copy per eviction of the append-based
// window is gone from the hot path.
type recentRing struct {
	buf  []recentEvent
	head int
	n    int
}

func (r *recentRing) push(e recentEvent) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *recentRing) grow() {
	nb := make([]recentEvent, max(8, 2*len(r.buf))) // power of two, for mask indexing
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}

func (r *recentRing) at(i int) recentEvent { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *recentRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *recentRing) reset() { r.head, r.n = 0, 0 }

// timeRing is the same structure for the fatal-timestamp window.
type timeRing struct {
	buf  []int64
	head int
	n    int
}

func (r *timeRing) push(t int64) {
	if r.n == len(r.buf) {
		nb := make([]int64, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *timeRing) front() int64 { return r.buf[r.head] }

func (r *timeRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *timeRing) reset() { r.head, r.n = 0, 0 }

// New builds a predictor over a rule set. The rule slice is copied.
func New(rules []learner.Rule, p learner.Params) *Predictor {
	pr := &Predictor{
		windowMs:  p.Window(),
		rules:     append([]learner.Rule(nil), rules...),
		lastFatal: -1,
		lastWarn:  [3]int64{-1, -1, -1},
	}
	maxClass := -1
	for _, r := range pr.rules {
		for _, class := range r.Body {
			maxClass = max(maxClass, class)
		}
	}
	pr.eList = make([][]int, maxClass+1)
	for i, r := range pr.rules {
		switch r.Kind {
		case learner.Association:
			for _, class := range r.Body {
				pr.eList[class] = append(pr.eList[class], i)
			}
		case learner.Statistical:
			pr.statRules = append(pr.statRules, i)
		case learner.Distribution:
			pr.distRules = append(pr.distRules, i)
		}
	}
	sort.Slice(pr.statRules, func(a, b int) bool {
		return pr.rules[pr.statRules[a]].Count < pr.rules[pr.statRules[b]].Count
	})
	return pr
}

// countAt returns the window multiplicity of class (0 when never seen).
func (pr *Predictor) countAt(class int) int32 {
	if class < 0 || class >= len(pr.classCount) {
		return 0
	}
	return pr.classCount[class]
}

// countAdd adjusts the window multiplicity of class, growing the dense
// table on first sight of a high class ID.
func (pr *Predictor) countAdd(class int, delta int32) {
	if class < 0 {
		return
	}
	if class >= len(pr.classCount) {
		grown := make([]int32, max(class+1, 2*len(pr.classCount)))
		copy(grown, pr.classCount)
		pr.classCount = grown
	}
	pr.classCount[class] += delta
}

// Rules returns the predictor's rule set (shared; treat as read-only).
func (pr *Predictor) Rules() []learner.Rule { return pr.rules }

// LastFatal returns the timestamp (ms) of the last fatal event observed,
// or -1 before the first one.
func (pr *Predictor) LastFatal() int64 { return pr.lastFatal }

// SeedLastFatal primes the elapsed-time tracker, so a predictor swapped in
// at a retraining boundary keeps the distribution expert armed.
func (pr *Predictor) SeedLastFatal(t int64) {
	if t > pr.lastFatal {
		pr.lastFatal = t
	}
}

// Reset clears runtime state (the recent window, elapsed-time tracking and
// warning deduplication) without touching the rules.
func (pr *Predictor) Reset() {
	pr.recent.reset()
	pr.classCount = nil
	pr.fatalTimes.reset()
	pr.lastFatal = -1
	pr.lastWarn = [3]int64{-1, -1, -1}
}

// Observe feeds one event (events must arrive in time order) and returns
// the warning it triggers, if any. At most one warning per expert family
// is emitted per prediction window: a trigger while the family's previous
// warning is still open is suppressed, which is what keeps false-alarm
// counting honest.
func (pr *Predictor) Observe(e preprocess.TaggedEvent) []Warning {
	pr.evict(e.Time)

	// Matchers return a rule index; the Warning itself is built only
	// after deduplication decides one will actually be emitted, so the
	// (overwhelmingly common) suppressed-trigger path allocates nothing.
	ruleIdx := -1
	if e.Fatal {
		// Statistical rules fire on fatal events: the current failure
		// plus the window's earlier failures form the k-run.
		runLen := pr.fatalTimes.n + 1
		for _, idx := range pr.statRules {
			if runLen >= pr.rules[idx].Count {
				ruleIdx = idx
				break // smallest matching k wins; others say the same thing
			}
		}
	} else {
		// Association rules fire on non-fatal events that complete a body.
		ruleIdx = pr.matchAssociation(e)
	}
	if ruleIdx < 0 {
		ruleIdx = pr.matchDistribution(e.Time)
	}

	pr.admit(e)

	if ruleIdx < 0 {
		return nil
	}
	// Deduplicate: one open warning per dedup interval — per expert
	// family, or across all of them under GlobalDedup. Every trigger time
	// is the observed event's own timestamp.
	dedupMs := pr.windowMs
	if pr.DedupWindowSec > 0 {
		dedupMs = pr.DedupWindowSec * 1000
	}
	r := &pr.rules[ruleIdx]
	if pr.GlobalDedup {
		for _, last := range pr.lastWarn {
			if last >= 0 && e.Time-last < dedupMs {
				return nil
			}
		}
	} else if last := pr.lastWarn[r.Kind]; last >= 0 && e.Time-last < dedupMs {
		return nil
	}
	pr.lastWarn[r.Kind] = e.Time
	return []Warning{{
		Time:     e.Time,
		Deadline: e.Time + pr.windowMs,
		Source:   r.Kind,
		RuleID:   r.ID(),
		Target:   r.Target,
	}}
}

// ObserveAll feeds a whole time-sorted stream and collects every warning.
func (pr *Predictor) ObserveAll(events []preprocess.TaggedEvent) []Warning {
	var out []Warning
	for i := range events {
		out = append(out, pr.Observe(events[i])...)
	}
	return out
}

// matchAssociation checks whether the incoming non-fatal event completes
// any association rule's body within the window (Algorithm 2 steps 2–4).
// It returns the first matching rule's index, or -1.
func (pr *Predictor) matchAssociation(e preprocess.TaggedEvent) int {
	if e.Class < 0 || e.Class >= len(pr.eList) {
		return -1 // no rule body mentions this class
	}
	for _, idx := range pr.eList[e.Class] {
		rule := &pr.rules[idx]
		matched := true
		for _, class := range rule.Body {
			if class == e.Class {
				continue // the incoming event supplies this item
			}
			if pr.countAt(class) == 0 {
				matched = false
				break
			}
		}
		if matched {
			return idx
		}
	}
	return -1
}

// matchDistribution applies the fallback expert: warn when the elapsed
// time since the last failure pushes the fitted CDF past its threshold.
// It returns the matching rule's index, or -1.
func (pr *Predictor) matchDistribution(now int64) int {
	if pr.lastFatal < 0 {
		return -1
	}
	elapsed := (now - pr.lastFatal) / 1000
	for _, idx := range pr.distRules {
		if elapsed > pr.rules[idx].ElapsedSec {
			return idx
		}
	}
	return -1
}

// evict drops window entries older than W_P before now.
func (pr *Predictor) evict(now int64) {
	for pr.recent.n > 0 {
		re := pr.recent.at(0)
		if now-re.time <= pr.windowMs {
			break
		}
		pr.countAdd(re.class, -1)
		pr.recent.popFront()
	}
	for pr.fatalTimes.n > 0 && now-pr.fatalTimes.front() > pr.windowMs {
		pr.fatalTimes.popFront()
	}
}

// admit appends the event to the window (Algorithm 2 step 1).
func (pr *Predictor) admit(e preprocess.TaggedEvent) {
	pr.recent.push(recentEvent{time: e.Time, class: e.Class, fatal: e.Fatal})
	pr.countAdd(e.Class, 1)
	if e.Fatal {
		pr.fatalTimes.push(e.Time)
		pr.lastFatal = e.Time
	}
}
