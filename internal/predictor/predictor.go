// Package predictor implements the event-driven online predictor of the
// framework (paper §4.3, Algorithm 2). The predictor holds the current
// rule set from the knowledge repository, watches the preprocessed event
// stream, and triggers a warning whenever an occurring event completes a
// rule within the prediction window W_P.
//
// Algorithm 2's two lookup structures appear here as:
//
//   - E-List: eList maps every event class to the association rules whose
//     body contains it (the "failures that may be triggered by this
//     event" list);
//   - F-List: the rules themselves, each carrying its full trigger set,
//     checked for containment in the recent-events window.
//
// The predictor also embodies the meta-learner's mixture-of-experts
// ordering (paper §4.1, Figure 6): on a non-fatal event it consults
// association rules first; on a fatal event it consults statistical rules;
// if no rule of the preferred family matches, it falls back to the fitted
// failure-probability distribution.
package predictor

import (
	"sort"

	"repro/internal/learner"
	"repro/internal/preprocess"
)

// Predictor is the online, event-driven prediction engine.
type Predictor struct {
	// GlobalDedup merges warning deduplication across expert families:
	// while any warning is open, no family may issue another. This is the
	// right counting for the full ensemble — the three experts predict
	// the same thing ("a failure within W_P"), so overlapping alarms are
	// one prediction. Leave it false when isolating a single family
	// (per-learner analysis). Set before the first Observe call.
	GlobalDedup bool
	// DedupWindowSec is the minimum spacing between warnings (per family,
	// or overall under GlobalDedup). Zero means "use W_P". Keeping it at
	// the base rule-generation window while sweeping W_P reproduces the
	// paper's Figure 13 trade-off: wider prediction windows admit *more*
	// alarms (higher recall, more false positives), they do not ration
	// them.
	DedupWindowSec int64

	windowMs int64
	rules    []learner.Rule

	eList     map[int][]int // class -> indexes of association rules using it
	statRules []int         // indexes of statistical rules, ascending k
	distRules []int         // indexes of distribution rules

	// Sliding window of recent events (Algorithm 2 step 1).
	recent     []recentEvent
	classCount map[int]int // class -> multiplicity within the window
	fatalTimes []int64     // fatal timestamps within the window
	lastFatal  int64       // ms; -1 until the first fatal is seen

	// lastWarn deduplicates per expert family: at most one open warning
	// per family at a time. Families are deduplicated independently so a
	// chatty fallback expert cannot starve the prioritized ones.
	lastWarn [3]int64 // ms of the last emitted warning per Kind; -1 initially
}

// Warning is one failure prediction: "a failure is expected within
// (Time, Deadline]".
type Warning struct {
	Time     int64 // ms; the triggering event's timestamp
	Deadline int64 // ms; Time + W_P
	Source   learner.Kind
	RuleID   string
	// Target is the predicted fatal class for association rules, or
	// learner.AnyFatal for the class-agnostic families.
	Target int
}

type recentEvent struct {
	time  int64
	class int
	fatal bool
}

// New builds a predictor over a rule set. The rule slice is copied.
func New(rules []learner.Rule, p learner.Params) *Predictor {
	pr := &Predictor{
		windowMs:   p.Window(),
		rules:      append([]learner.Rule(nil), rules...),
		eList:      make(map[int][]int),
		classCount: make(map[int]int),
		lastFatal:  -1,
		lastWarn:   [3]int64{-1, -1, -1},
	}
	for i, r := range pr.rules {
		switch r.Kind {
		case learner.Association:
			for _, class := range r.Body {
				pr.eList[class] = append(pr.eList[class], i)
			}
		case learner.Statistical:
			pr.statRules = append(pr.statRules, i)
		case learner.Distribution:
			pr.distRules = append(pr.distRules, i)
		}
	}
	sort.Slice(pr.statRules, func(a, b int) bool {
		return pr.rules[pr.statRules[a]].Count < pr.rules[pr.statRules[b]].Count
	})
	return pr
}

// Rules returns the predictor's rule set (shared; treat as read-only).
func (pr *Predictor) Rules() []learner.Rule { return pr.rules }

// LastFatal returns the timestamp (ms) of the last fatal event observed,
// or -1 before the first one.
func (pr *Predictor) LastFatal() int64 { return pr.lastFatal }

// SeedLastFatal primes the elapsed-time tracker, so a predictor swapped in
// at a retraining boundary keeps the distribution expert armed.
func (pr *Predictor) SeedLastFatal(t int64) {
	if t > pr.lastFatal {
		pr.lastFatal = t
	}
}

// Reset clears runtime state (the recent window, elapsed-time tracking and
// warning deduplication) without touching the rules.
func (pr *Predictor) Reset() {
	pr.recent = pr.recent[:0]
	pr.classCount = make(map[int]int)
	pr.fatalTimes = pr.fatalTimes[:0]
	pr.lastFatal = -1
	pr.lastWarn = [3]int64{-1, -1, -1}
}

// Observe feeds one event (events must arrive in time order) and returns
// the warning it triggers, if any. At most one warning per expert family
// is emitted per prediction window: a trigger while the family's previous
// warning is still open is suppressed, which is what keeps false-alarm
// counting honest.
func (pr *Predictor) Observe(e preprocess.TaggedEvent) []Warning {
	pr.evict(e.Time)

	var w *Warning
	if e.Fatal {
		// Statistical rules fire on fatal events: the current failure
		// plus the window's earlier failures form the k-run.
		runLen := len(pr.fatalTimes) + 1
		for _, idx := range pr.statRules {
			if runLen >= pr.rules[idx].Count {
				w = pr.warning(e.Time, idx)
				break // smallest matching k wins; others say the same thing
			}
		}
	} else {
		// Association rules fire on non-fatal events that complete a body.
		w = pr.matchAssociation(e)
	}
	if w == nil {
		w = pr.matchDistribution(e.Time)
	}

	pr.admit(e)

	if w == nil {
		return nil
	}
	// Deduplicate: one open warning per dedup interval — per expert
	// family, or across all of them under GlobalDedup.
	dedupMs := pr.windowMs
	if pr.DedupWindowSec > 0 {
		dedupMs = pr.DedupWindowSec * 1000
	}
	if pr.GlobalDedup {
		for _, last := range pr.lastWarn {
			if last >= 0 && w.Time-last < dedupMs {
				return nil
			}
		}
	} else if last := pr.lastWarn[w.Source]; last >= 0 && w.Time-last < dedupMs {
		return nil
	}
	pr.lastWarn[w.Source] = w.Time
	return []Warning{*w}
}

// ObserveAll feeds a whole time-sorted stream and collects every warning.
func (pr *Predictor) ObserveAll(events []preprocess.TaggedEvent) []Warning {
	var out []Warning
	for i := range events {
		out = append(out, pr.Observe(events[i])...)
	}
	return out
}

// matchAssociation checks whether the incoming non-fatal event completes
// any association rule's body within the window (Algorithm 2 steps 2–4).
func (pr *Predictor) matchAssociation(e preprocess.TaggedEvent) *Warning {
	candidates := pr.eList[e.Class]
	for _, idx := range candidates {
		rule := &pr.rules[idx]
		matched := true
		for _, class := range rule.Body {
			if class == e.Class {
				continue // the incoming event supplies this item
			}
			if pr.classCount[class] == 0 {
				matched = false
				break
			}
		}
		if matched {
			return pr.warning(e.Time, idx)
		}
	}
	return nil
}

// matchDistribution applies the fallback expert: warn when the elapsed
// time since the last failure pushes the fitted CDF past its threshold.
func (pr *Predictor) matchDistribution(now int64) *Warning {
	if pr.lastFatal < 0 {
		return nil
	}
	elapsed := (now - pr.lastFatal) / 1000
	for _, idx := range pr.distRules {
		if elapsed > pr.rules[idx].ElapsedSec {
			return pr.warning(now, idx)
		}
	}
	return nil
}

func (pr *Predictor) warning(now int64, ruleIdx int) *Warning {
	r := &pr.rules[ruleIdx]
	return &Warning{
		Time:     now,
		Deadline: now + pr.windowMs,
		Source:   r.Kind,
		RuleID:   r.ID(),
		Target:   r.Target,
	}
}

// evict drops window entries older than W_P before now.
func (pr *Predictor) evict(now int64) {
	cut := 0
	for cut < len(pr.recent) && now-pr.recent[cut].time > pr.windowMs {
		re := pr.recent[cut]
		if n := pr.classCount[re.class] - 1; n > 0 {
			pr.classCount[re.class] = n
		} else {
			delete(pr.classCount, re.class)
		}
		cut++
	}
	if cut > 0 {
		pr.recent = append(pr.recent[:0], pr.recent[cut:]...)
	}
	fcut := 0
	for fcut < len(pr.fatalTimes) && now-pr.fatalTimes[fcut] > pr.windowMs {
		fcut++
	}
	if fcut > 0 {
		pr.fatalTimes = append(pr.fatalTimes[:0], pr.fatalTimes[fcut:]...)
	}
}

// admit appends the event to the window (Algorithm 2 step 1).
func (pr *Predictor) admit(e preprocess.TaggedEvent) {
	pr.recent = append(pr.recent, recentEvent{time: e.Time, class: e.Class, fatal: e.Fatal})
	pr.classCount[e.Class]++
	if e.Fatal {
		pr.fatalTimes = append(pr.fatalTimes, e.Time)
		pr.lastFatal = e.Time
	}
}
