package raslog

import (
	"runtime"
	"strings"
	"testing"
)

const benchLine = "104|RAS|1117838570|147|R02-M1-N0-C:J12-U11|KERNEL|INFO|instruction cache parity error corrected"

// TestParseLineBytesAllocBudget pins the fast path's steady-state budget:
// once the line's vocabulary is interned, parsing must not allocate.
func TestParseLineBytesAllocBudget(t *testing.T) {
	in := NewInterner()
	line := []byte(benchLine)
	if _, err := ParseLineBytes(line, in); err != nil { // warm the interner
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := ParseLineBytes(line, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseLineBytes allocates %.1f times per warm line, want 0", allocs)
	}
}

// TestScannerAllocBudget extends the budget through Scan: the scanner
// reuses bufio's line buffer and the interner, so steady-state decoding
// of a repeating vocabulary stays allocation-free per event.
func TestScannerAllocBudget(t *testing.T) {
	const n = 2000
	input := strings.Repeat(benchLine+"\n", n)
	sc := NewScanner(strings.NewReader(input))
	if !sc.Scan() { // first line pays the vocabulary cost
		t.Fatal(sc.Err())
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	count := 1
	for sc.Scan() {
		count++
	}
	runtime.ReadMemStats(&ms1)
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scanned %d lines, want %d", count, n)
	}
	// Allow a handful of fixed-cost allocations (bufio buffer growth),
	// but nothing proportional to the line count.
	if got := ms1.Mallocs - ms0.Mallocs; got > 32 {
		t.Fatalf("Scan allocated %d objects over %d lines, want <= 32", got, n-1)
	}
}

func TestParseLineBytesMatchesParseLine(t *testing.T) {
	lines := []string{
		benchLine,
		"1|RAS|1106281621|0|R00-M0|KERNEEL|ERROR|x", // bad facility
		"1|RAS|1106281621|0|R00-M0|KERNEL|ERROR|entry with | pipe",
		"9223372036854775807|RAS|1|0|L|APP|INFO|max id",
		"-5|RAS|-3|-9|L|APP|INFO|negative numbers",
		"x|RAS|1|2|l|APP|INFO|e",
		"1|RAS|999999999999999999999|2|l|APP|INFO|overflow",
		"1|RAS|+7|2|l|APP|INFO|plus sign",
		"1|RAS||2|l|APP|INFO|empty time",
		"a|b",
		"",
		"1|RAS|1106281621|0|R00-M0|KERNEL|ERROR|crlf\r",
	}
	for _, line := range lines {
		want, werr := ParseLine(line)
		got, gerr := ParseLineBytes([]byte(line), NewInterner())
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("ParseLine(%q) err=%v, ParseLineBytes err=%v", line, werr, gerr)
		}
		if werr == nil && want != got {
			t.Fatalf("ParseLine(%q) = %+v, ParseLineBytes = %+v", line, want, got)
		}
	}
}

func BenchmarkParseLine(b *testing.B) {
	in := NewInterner()
	line := []byte(benchLine)
	if _, err := ParseLineBytes(line, in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseLineBytes(line, in); err != nil {
			b.Fatal(err)
		}
	}
}
