package raslog

import (
	"fmt"
	"sort"
)

// Log is an in-memory event collection ordered by time. It corresponds to
// one system's RAS log (or a window of it). The zero value is an empty log.
type Log struct {
	Name   string // system name, e.g. "ANL-BGL"
	Events []Event
}

// NewLog creates a named, empty log with the given capacity hint.
func NewLog(name string, capacity int) *Log {
	return &Log{Name: name, Events: make([]Event, 0, capacity)}
}

// Append adds an event to the end of the log. Callers appending
// out-of-order events must call SortByTime before using window queries.
func (l *Log) Append(e Event) { l.Events = append(l.Events, e) }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.Events) }

// SortByTime stably sorts events by timestamp (then record ID), the order
// required by the window and week queries.
func (l *Log) SortByTime() {
	sort.SliceStable(l.Events, func(i, j int) bool {
		if l.Events[i].Time != l.Events[j].Time {
			return l.Events[i].Time < l.Events[j].Time
		}
		return l.Events[i].RecordID < l.Events[j].RecordID
	})
}

// Sorted reports whether the log is in nondecreasing time order.
func (l *Log) Sorted() bool {
	for i := 1; i < len(l.Events); i++ {
		if l.Events[i].Time < l.Events[i-1].Time {
			return false
		}
	}
	return true
}

// Start returns the timestamp of the first event, or 0 for an empty log.
// The log must be sorted.
func (l *Log) Start() int64 {
	if len(l.Events) == 0 {
		return 0
	}
	return l.Events[0].Time
}

// End returns the timestamp of the last event, or 0 for an empty log.
// The log must be sorted.
func (l *Log) End() int64 {
	if len(l.Events) == 0 {
		return 0
	}
	return l.Events[len(l.Events)-1].Time
}

// Weeks returns the number of (whole or partial) weeks the log spans.
func (l *Log) Weeks() int {
	if len(l.Events) == 0 {
		return 0
	}
	span := l.End() - l.Start()
	return int(span/MillisPerWeek) + 1
}

// WeekOf returns the zero-based week index of timestamp t relative to the
// log start. The log must be sorted and non-empty.
func (l *Log) WeekOf(t int64) int {
	return int((t - l.Start()) / MillisPerWeek)
}

// Window returns the subslice of events with from <= Time < to.
// The log must be sorted. The returned slice shares storage with the log.
func (l *Log) Window(from, to int64) []Event {
	lo := sort.Search(len(l.Events), func(i int) bool { return l.Events[i].Time >= from })
	hi := sort.Search(len(l.Events), func(i int) bool { return l.Events[i].Time >= to })
	return l.Events[lo:hi]
}

// Slice returns a new Log wrapping the events in [from, to). The events
// slice shares storage with the receiver.
func (l *Log) Slice(from, to int64) *Log {
	return &Log{Name: l.Name, Events: l.Window(from, to)}
}

// WeekSlice returns the events of zero-based week w (relative to log start).
func (l *Log) WeekSlice(w int) []Event {
	start := l.Start() + int64(w)*MillisPerWeek
	return l.Window(start, start+MillisPerWeek)
}

// CountBySeverity tallies events per severity level.
func (l *Log) CountBySeverity() map[Severity]int {
	m := make(map[Severity]int, int(numSeverities))
	for _, e := range l.Events {
		m[e.Severity]++
	}
	return m
}

// CountByFacility tallies events per facility.
func (l *Log) CountByFacility() map[Facility]int {
	m := make(map[Facility]int, int(NumFacilities))
	for _, e := range l.Events {
		m[e.Facility]++
	}
	return m
}

// Validate checks internal consistency: valid enums, nondecreasing record
// IDs are NOT required (filters renumber), but timestamps must be sorted.
func (l *Log) Validate() error {
	if !l.Sorted() {
		return fmt.Errorf("raslog: log %q is not time-sorted", l.Name)
	}
	for i, e := range l.Events {
		if !e.Severity.Valid() {
			return fmt.Errorf("raslog: event %d has invalid severity %d", i, e.Severity)
		}
		if !e.Facility.Valid() {
			return fmt.Errorf("raslog: event %d has invalid facility %d", i, e.Facility)
		}
	}
	return nil
}

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	return &Log{Name: l.Name, Events: append([]Event(nil), l.Events...)}
}
