package raslog

import (
	"strings"
	"testing"
)

func TestSeverityOrderAndNames(t *testing.T) {
	// The declared order is the increasing order of severity (paper §2.1).
	order := []Severity{Info, Warning, Severe, Error, Fatal, Failure}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Errorf("severity order broken at %v", order[i])
		}
	}
	names := map[Severity]string{
		Info: "INFO", Warning: "WARNING", Severe: "SEVERE",
		Error: "ERROR", Fatal: "FATAL", Failure: "FAILURE",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestSeverityIsFatal(t *testing.T) {
	for _, s := range []Severity{Info, Warning, Severe, Error} {
		if s.IsFatal() {
			t.Errorf("%v reported fatal", s)
		}
	}
	for _, s := range []Severity{Fatal, Failure} {
		if !s.IsFatal() {
			t.Errorf("%v not reported fatal", s)
		}
	}
}

func TestParseSeverityRoundTrip(t *testing.T) {
	for s := Info; s < numSeverities; s++ {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v err %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("BOGUS"); err == nil {
		t.Error("ParseSeverity accepted garbage")
	}
}

func TestSeverityValid(t *testing.T) {
	if Severity(-1).Valid() || Severity(int(numSeverities)).Valid() {
		t.Error("out-of-range severity reported valid")
	}
	if !Fatal.Valid() {
		t.Error("Fatal reported invalid")
	}
	if !strings.Contains(Severity(99).String(), "99") {
		t.Error("out-of-range severity String unhelpful")
	}
}

func TestFacilityNamesMatchTable3(t *testing.T) {
	want := []string{"APP", "BGLMASTER", "CMCS", "DISCOVERY", "HARDWARE",
		"KERNEL", "LINKCARD", "MMCS", "MONITOR", "SERV_NET"}
	fs := Facilities()
	if len(fs) != len(want) {
		t.Fatalf("got %d facilities, want %d", len(fs), len(want))
	}
	for i, f := range fs {
		if f.String() != want[i] {
			t.Errorf("facility %d = %q, want %q", i, f.String(), want[i])
		}
	}
}

func TestParseFacilityRoundTrip(t *testing.T) {
	for _, f := range Facilities() {
		got, err := ParseFacility(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v failed: %v %v", f, got, err)
		}
	}
	if _, err := ParseFacility("NOPE"); err == nil {
		t.Error("ParseFacility accepted garbage")
	}
	if Facility(-1).Valid() {
		t.Error("Facility(-1) valid")
	}
}

func TestEventSecondsAndUTC(t *testing.T) {
	e := Event{Time: 1234567890123}
	if e.Seconds() != 1234567890 {
		t.Errorf("Seconds = %d", e.Seconds())
	}
	if got := e.TimeUTC().Unix(); got != 1234567890 {
		t.Errorf("TimeUTC.Unix = %d", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{RecordID: 7, Time: 0, JobID: 3, Location: "R00-M0-N4-C2",
		Entry: "cache failure", Facility: Kernel, Severity: Fatal}
	s := e.String()
	for _, want := range []string{"#7", "KERNEL", "FATAL", "R00-M0-N4-C2", "cache failure"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
