package raslog

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func mkLog(times ...int64) *Log {
	l := NewLog("test", len(times))
	for i, tm := range times {
		l.Append(Event{RecordID: int64(i), Time: tm, Facility: Kernel, Severity: Info})
	}
	return l
}

func TestSortByTimeStable(t *testing.T) {
	l := NewLog("t", 4)
	l.Append(Event{RecordID: 1, Time: 200})
	l.Append(Event{RecordID: 2, Time: 100})
	l.Append(Event{RecordID: 3, Time: 100})
	l.Append(Event{RecordID: 4, Time: 50})
	l.SortByTime()
	if !l.Sorted() {
		t.Fatal("not sorted after SortByTime")
	}
	wantIDs := []int64{4, 2, 3, 1}
	for i, w := range wantIDs {
		if l.Events[i].RecordID != w {
			t.Errorf("position %d: id %d, want %d", i, l.Events[i].RecordID, w)
		}
	}
}

func TestStartEndWeeks(t *testing.T) {
	l := mkLog(0, MillisPerWeek, 2*MillisPerWeek+5)
	if l.Start() != 0 || l.End() != 2*MillisPerWeek+5 {
		t.Errorf("Start/End = %d/%d", l.Start(), l.End())
	}
	if w := l.Weeks(); w != 3 {
		t.Errorf("Weeks = %d, want 3", w)
	}
	empty := NewLog("e", 0)
	if empty.Start() != 0 || empty.End() != 0 || empty.Weeks() != 0 {
		t.Error("empty log Start/End/Weeks not zero")
	}
}

func TestWeekOf(t *testing.T) {
	l := mkLog(1000, MillisPerWeek+1000, 5*MillisPerWeek)
	if w := l.WeekOf(1000); w != 0 {
		t.Errorf("WeekOf(start) = %d", w)
	}
	if w := l.WeekOf(1000 + MillisPerWeek); w != 1 {
		t.Errorf("WeekOf(start+1w) = %d", w)
	}
}

func TestWindowBoundaries(t *testing.T) {
	l := mkLog(10, 20, 30, 40)
	got := l.Window(20, 40) // inclusive from, exclusive to
	if len(got) != 2 || got[0].Time != 20 || got[1].Time != 30 {
		t.Errorf("Window(20,40) = %v", got)
	}
	if len(l.Window(100, 200)) != 0 {
		t.Error("out-of-range window not empty")
	}
	if len(l.Window(0, 100)) != 4 {
		t.Error("full window wrong")
	}
}

func TestWindowPropertyQuick(t *testing.T) {
	r := stats.NewRNG(5)
	times := make([]int64, 300)
	for i := range times {
		times[i] = r.Int63n(1_000_000)
	}
	l := mkLog(times...)
	l.SortByTime()
	f := func(a, b uint32) bool {
		from := int64(a % 1_000_000)
		to := int64(b % 1_000_000)
		if from > to {
			from, to = to, from
		}
		win := l.Window(from, to)
		// Every event in the window is in range, and the count matches a
		// brute-force scan.
		count := 0
		for _, e := range l.Events {
			if e.Time >= from && e.Time < to {
				count++
			}
		}
		if count != len(win) {
			return false
		}
		for _, e := range win {
			if e.Time < from || e.Time >= to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeekSlice(t *testing.T) {
	l := mkLog(0, 1, MillisPerWeek, MillisPerWeek+1, 2*MillisPerWeek)
	if got := l.WeekSlice(0); len(got) != 2 {
		t.Errorf("week 0 has %d events, want 2", len(got))
	}
	if got := l.WeekSlice(1); len(got) != 2 {
		t.Errorf("week 1 has %d events, want 2", len(got))
	}
	if got := l.WeekSlice(2); len(got) != 1 {
		t.Errorf("week 2 has %d events, want 1", len(got))
	}
}

func TestCounts(t *testing.T) {
	l := NewLog("t", 3)
	l.Append(Event{Severity: Fatal, Facility: Kernel})
	l.Append(Event{Severity: Info, Facility: Kernel})
	l.Append(Event{Severity: Fatal, Facility: App})
	bySev := l.CountBySeverity()
	if bySev[Fatal] != 2 || bySev[Info] != 1 {
		t.Errorf("CountBySeverity = %v", bySev)
	}
	byFac := l.CountByFacility()
	if byFac[Kernel] != 2 || byFac[App] != 1 {
		t.Errorf("CountByFacility = %v", byFac)
	}
}

func TestValidate(t *testing.T) {
	good := mkLog(1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
	unsorted := mkLog(3, 1)
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted log accepted")
	}
	bad := mkLog(1)
	bad.Events[0].Severity = Severity(99)
	if err := bad.Validate(); err == nil {
		t.Error("invalid severity accepted")
	}
	bad2 := mkLog(1)
	bad2.Events[0].Facility = Facility(99)
	if err := bad2.Validate(); err == nil {
		t.Error("invalid facility accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	l := mkLog(1, 2)
	c := l.Clone()
	c.Events[0].Time = 999
	if l.Events[0].Time == 999 {
		t.Error("Clone shares storage")
	}
	if c.Name != l.Name || c.Len() != l.Len() {
		t.Error("Clone lost metadata")
	}
}

func TestSliceSharesAndBounds(t *testing.T) {
	l := mkLog(10, 20, 30)
	s := l.Slice(15, 35)
	if s.Len() != 2 || s.Name != "test" {
		t.Errorf("Slice = %d events name %q", s.Len(), s.Name)
	}
}
