// Package raslog defines the RAS (Reliability, Availability and
// Serviceability) event model used throughout the framework: the eight
// event attributes recorded by the Blue Gene/L logging facility (Table 1 of
// the paper), severity levels, facilities, in-memory event collections, and
// a line-oriented text codec for reading and writing logs.
package raslog

import (
	"fmt"
	"time"
)

// Severity is the SEVERITY attribute of a RAS event. The declared order is
// the increasing order of severity used by the logging facility.
type Severity int

// Severity levels, in increasing order. FATAL and FAILURE events usually
// lead to system or application crashes; the framework's job is to predict
// them.
const (
	Info Severity = iota
	Warning
	Severe
	Error
	Fatal
	Failure
	numSeverities
)

var severityNames = [numSeverities]string{
	"INFO", "WARNING", "SEVERE", "ERROR", "FATAL", "FAILURE",
}

// String returns the log-file spelling of the severity.
func (s Severity) String() string {
	if s < 0 || s >= numSeverities {
		return fmt.Sprintf("SEVERITY(%d)", int(s))
	}
	return severityNames[s]
}

// Valid reports whether s is one of the defined levels.
func (s Severity) Valid() bool { return s >= 0 && s < numSeverities }

// IsFatal reports whether the severity level marks a fatal event
// (FATAL or FAILURE). Note that the *recorded* severity is not always
// trustworthy — see preprocess.Categorizer, which applies the curated
// fatal list.
func (s Severity) IsFatal() bool { return s == Fatal || s == Failure }

// ParseSeverity parses a log-file severity spelling.
func ParseSeverity(s string) (Severity, error) {
	for i, name := range severityNames {
		if s == name {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("raslog: unknown severity %q", s)
}

// Facility is the FACILITY attribute: the service or hardware component
// experiencing the event. The ten values are the high-level event
// categories of Table 3.
type Facility int

// The ten high-level Blue Gene/L facilities (Table 3 of the paper).
const (
	App Facility = iota
	BGLMaster
	CMCS
	Discovery
	Hardware
	Kernel
	LinkCard
	MMCS
	Monitor
	ServNet
	NumFacilities
)

var facilityNames = [NumFacilities]string{
	"APP", "BGLMASTER", "CMCS", "DISCOVERY", "HARDWARE",
	"KERNEL", "LINKCARD", "MMCS", "MONITOR", "SERV_NET",
}

// String returns the log-file spelling of the facility.
func (f Facility) String() string {
	if f < 0 || f >= NumFacilities {
		return fmt.Sprintf("FACILITY(%d)", int(f))
	}
	return facilityNames[f]
}

// Valid reports whether f is one of the defined facilities.
func (f Facility) Valid() bool { return f >= 0 && f < NumFacilities }

// ParseFacility parses a log-file facility spelling.
func ParseFacility(s string) (Facility, error) {
	for i, name := range facilityNames {
		if s == name {
			return Facility(i), nil
		}
	}
	return 0, fmt.Errorf("raslog: unknown facility %q", s)
}

// Facilities returns all facilities in declaration order.
func Facilities() []Facility {
	fs := make([]Facility, NumFacilities)
	for i := range fs {
		fs[i] = Facility(i)
	}
	return fs
}

// Event is one RAS log record with the eight attributes of Table 1.
//
// Timestamps are milliseconds since the Unix epoch: the logging mechanism
// works at sub-second granularity, while the *recorded* event time in the
// production logs is in seconds — the text codec therefore truncates to
// seconds on write, which is what produces the duplicate same-timestamp
// entries the filter must coalesce.
type Event struct {
	RecordID int64    // sequence number
	Type     string   // mechanism through which the event is recorded
	Time     int64    // milliseconds since the Unix epoch
	JobID    int64    // job that detected the event (0 = none)
	Location string   // chip / node card / service card / link card
	Entry    string   // short description of the event
	Facility Facility // component experiencing the event
	Severity Severity // severity level
}

// Seconds returns the event time in whole seconds since the epoch, the
// granularity of the recorded log.
func (e Event) Seconds() int64 { return e.Time / 1000 }

// TimeUTC returns the event time as a time.Time in UTC.
func (e Event) TimeUTC() time.Time {
	return time.UnixMilli(e.Time).UTC()
}

// String formats the event compactly for debugging.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s/%s job=%d loc=%s %q",
		e.RecordID, e.TimeUTC().Format("2006-01-02T15:04:05"),
		e.Facility, e.Severity, e.JobID, e.Location, e.Entry)
}

// MillisPerWeek is the number of milliseconds in one week, the unit in
// which the paper reports its time series.
const MillisPerWeek = 7 * 24 * 3600 * 1000
