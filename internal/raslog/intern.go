package raslog

// Interner deduplicates the small string vocabularies of a RAS stream
// (event types, locations, catalog entry texts): repeated values share
// one heap copy, and the lookup itself is allocation-free because the
// compiler elides the []byte→string conversion used only as a map key.
// Interned fields also make later map probes cheaper downstream — equal
// strings are usually the *same* string, so comparisons short-circuit on
// the data pointer.
//
// An Interner is not safe for concurrent use; give each decoding stream
// its own (Scanner does).
type Interner struct {
	m map[string]string
}

// maxInternEntries caps resident entries so adversarial input with
// unbounded vocabulary degrades to plain copying instead of growing the
// table without limit. Real RAS vocabularies are a few hundred strings.
const maxInternEntries = 1 << 16

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 64)}
}

// Intern returns a string equal to b, reusing the copy made the first
// time this value was seen. Only the first occurrence allocates.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < maxInternEntries {
		in.m[s] = s
	}
	return s
}

// InternString is Intern for a value already held as a string.
func (in *Interner) InternString(v string) string {
	if s, ok := in.m[v]; ok {
		return s
	}
	if len(in.m) < maxInternEntries {
		in.m[v] = v
	}
	return v
}

// Len returns the number of resident entries (for tests).
func (in *Interner) Len() int { return len(in.m) }

// intern handles the optional-interner case of ParseLineBytes.
func intern(in *Interner, b []byte) string {
	if in == nil {
		return string(b)
	}
	return in.Intern(b)
}
