package raslog

import (
	"bufio"
	"fmt"
	"io"
)

// Scanner is a line-streaming decoder for the text codec: it yields one
// Event at a time from an io.Reader without materializing the whole log,
// the input side of long-running ingestion (cmd/predict, cmd/serve).
//
//	sc := raslog.NewScanner(r)
//	for sc.Scan() {
//		use(sc.Event())
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	sc *bufio.Scanner
	// in dedups the stream's string vocabulary so steady-state scanning
	// allocates nothing per line (the fields of repeated values are shared).
	in     *Interner
	event  Event
	err    error
	lineNo int
}

// NewScanner returns a decoder over r with the same line-size limits as
// ReadLog.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Scanner{sc: sc, in: NewInterner()}
}

// Scan advances to the next event. It returns false at end of input or on
// the first decode error; Err distinguishes the two.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := ParseLineBytes(line, s.in)
		if err != nil {
			s.err = fmt.Errorf("raslog: line %d: %w", s.lineNo, err)
			return false
		}
		s.event = e
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("raslog: read: %w", err)
	}
	return false
}

// Event returns the event decoded by the last successful Scan.
func (s *Scanner) Event() Event { return s.event }

// Err returns the first error encountered, or nil at clean end of input.
func (s *Scanner) Err() error { return s.err }

// Line returns the 1-based number of the last non-empty line consumed.
func (s *Scanner) Line() int { return s.lineNo }

// ScanLog streams every event of a text-codec log to fn, stopping at the
// first decode or callback error.
func ScanLog(r io.Reader, fn func(Event) error) error {
	sc := NewScanner(r)
	for sc.Scan() {
		if err := fn(sc.Event()); err != nil {
			return err
		}
	}
	return sc.Err()
}
