package raslog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleEvents() []Event {
	return []Event{
		{RecordID: 1, Type: "RAS", Time: 1_100_000_000_500, JobID: 42,
			Location: "R00-M0-N4-C2", Entry: "cache failure",
			Facility: Kernel, Severity: Fatal},
		{RecordID: 2, Type: "RAS", Time: 1_100_000_001_000, JobID: 0,
			Location: "R00-M0-S", Entry: "node card temperature error",
			Facility: Monitor, Severity: Warning},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	l := &Log{Name: "rt", Events: sampleEvents()}
	var buf bytes.Buffer
	n, err := WriteLog(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadLog(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("read %d events, want 2", got.Len())
	}
	// Sub-second precision is lost by design (seconds granularity).
	if got.Events[0].Time != 1_100_000_000_000 {
		t.Errorf("time = %d, want seconds-truncated", got.Events[0].Time)
	}
	e := got.Events[0]
	if e.RecordID != 1 || e.JobID != 42 || e.Location != "R00-M0-N4-C2" ||
		e.Entry != "cache failure" || e.Facility != Kernel || e.Severity != Fatal {
		t.Errorf("event mangled: %+v", e)
	}
}

func TestCodecSanitizesSeparators(t *testing.T) {
	l := &Log{Events: []Event{{Entry: "bad|entry\nline", Location: "a|b",
		Facility: App, Severity: Info}}}
	var buf bytes.Buffer
	if _, err := WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf, "x")
	if err != nil {
		t.Fatalf("sanitized log failed to parse: %v", err)
	}
	if strings.ContainsAny(got.Events[0].Entry, "|\n") {
		t.Errorf("entry still contains separators: %q", got.Events[0].Entry)
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",                        // empty handled by ReadLog skip, raw parse fails
		"1|RAS|2",                 // too few fields
		"x|RAS|1|2|l|APP|INFO|e",  // bad record id
		"1|RAS|x|2|l|APP|INFO|e",  // bad time
		"1|RAS|1|x|l|APP|INFO|e",  // bad job id
		"1|RAS|1|2|l|NOPE|INFO|e", // bad facility
		"1|RAS|1|2|l|APP|NOPE|e",  // bad severity
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted", line)
		}
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	in := "1|RAS|100|0|loc|APP|INFO|ok\n\n2|RAS|200|0|loc|APP|INFO|ok\n"
	l, err := ReadLog(strings.NewReader(in), "s")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Errorf("read %d events, want 2", l.Len())
	}
}

func TestReadLogReportsLineNumber(t *testing.T) {
	in := "1|RAS|100|0|loc|APP|INFO|ok\ngarbage line\n"
	_, err := ReadLog(strings.NewReader(in), "s")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v does not name line 2", err)
	}
}

func TestLogSizeBytesMatchesActual(t *testing.T) {
	l := &Log{Events: sampleEvents()}
	var buf bytes.Buffer
	if _, err := WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	if est := LogSizeBytes(l); est != int64(buf.Len()) {
		t.Errorf("LogSizeBytes = %d, actual %d", est, buf.Len())
	}
}

func TestDigits(t *testing.T) {
	cases := map[int64]int{0: 1, 5: 1, 10: 2, 999: 3, 1000: 4, -7: 2}
	for v, want := range cases {
		if got := digits(v); got != want {
			t.Errorf("digits(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	// Random well-formed events survive a write/read cycle bit-for-bit
	// except for the documented second-granularity truncation.
	r := stats.NewRNG(55)
	l := NewLog("prop", 300)
	for i := 0; i < 300; i++ {
		l.Append(Event{
			RecordID: int64(i),
			Type:     "RAS",
			Time:     r.Int63n(1_000_000_000) * 1000, // whole seconds
			JobID:    r.Int63n(1000),
			Location: Facilities()[r.Intn(int(NumFacilities))].String(),
			Entry:    "entry text with spaces and: punctuation",
			Facility: Facility(r.Intn(int(NumFacilities))),
			Severity: Severity(r.Intn(6)),
		})
	}
	var buf bytes.Buffer
	if _, err := WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf, "prop")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("lost events: %d vs %d", back.Len(), l.Len())
	}
	for i := range l.Events {
		if back.Events[i] != l.Events[i] {
			t.Fatalf("event %d mangled:\n%v\n%v", i, l.Events[i], back.Events[i])
		}
	}
}
