package raslog

import (
	"strings"
	"testing"
)

// FuzzParseLine exercises the codec parser with arbitrary input: it must
// never panic, and every accepted line must re-serialize to a parseable
// record describing the same event.
func FuzzParseLine(f *testing.F) {
	f.Add("1|RAS|1106281621|0|R00-M0-N08-C13-U0|KERNEL|ERROR|kernel status")
	f.Add("2|RAS|0|0||APP|INFO|")
	f.Add("||||||||")
	f.Add("9223372036854775807|x|9223372036854775807|1|l|MONITOR|FAILURE|e")
	f.Add("1|RAS|1106281621|0|R00-M0|KERNEL|ERROR|kernel status\r")
	f.Add("3|RAS|7|0|R01-M1|LINKCARD|WARNING|entry with\rinner cr")
	f.Add("\r")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseLine(line)
		if err != nil {
			return
		}
		// Round trip through the writer.
		l := &Log{Events: []Event{e}}
		var sb strings.Builder
		if _, err := WriteLog(&sb, l); err != nil {
			t.Fatalf("accepted event failed to serialize: %v", err)
		}
		back, err := ReadLog(strings.NewReader(sb.String()), "fuzz")
		if err != nil {
			t.Fatalf("serialized event failed to parse: %v\n%q", err, sb.String())
		}
		if back.Len() != 1 {
			t.Fatalf("round trip produced %d events", back.Len())
		}
		got := back.Events[0]
		if got.RecordID != e.RecordID || got.Seconds() != e.Seconds() ||
			got.JobID != e.JobID || got.Facility != e.Facility ||
			got.Severity != e.Severity {
			t.Fatalf("round trip mangled event:\n%+v\n%+v", e, got)
		}
	})
}
