package raslog

import (
	"reflect"
	"strings"
	"testing"
)

// Two variants of the same three-event log: Unix line endings with a
// trailing newline, and DOS line endings where the final line is cut off
// without one. Both shapes show up in real log transfers and must decode
// to the same events through every reader.
const lfLog = "1|RAS|1106281621|0|R00-M0-N08-C13-U0|KERNEL|ERROR|kernel status\n" +
	"2|RAS|1106281622|0|R00-M1|APP|INFO|app checkpoint\n" +
	"3|RAS|1106281623|7|R01-M0|MONITOR|WARNING|fan speed low\n"

var crlfNoFinalLog = strings.TrimSuffix(strings.ReplaceAll(lfLog, "\n", "\r\n"), "\r\n")

func scanAll(t *testing.T, input string) []Event {
	t.Helper()
	var out []Event
	if err := ScanLog(strings.NewReader(input), func(e Event) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatalf("ScanLog: %v", err)
	}
	return out
}

// TestReadersAgreeOnLineEndings pins that ReadLog and ScanLog produce
// identical events for LF input with a final newline and for CRLF input
// missing one — no reader may leak a \r into Entry or drop the last line.
func TestReadersAgreeOnLineEndings(t *testing.T) {
	ref, err := ReadLog(strings.NewReader(lfLog), "ref")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() != 3 {
		t.Fatalf("reference log has %d events, want 3", ref.Len())
	}
	for name, input := range map[string]string{
		"lf":            lfLog,
		"crlf-no-final": crlfNoFinalLog,
	} {
		t.Run(name, func(t *testing.T) {
			got, err := ReadLog(strings.NewReader(input), name)
			if err != nil {
				t.Fatalf("ReadLog: %v", err)
			}
			if !reflect.DeepEqual(got.Events, ref.Events) {
				t.Errorf("ReadLog(%s) diverges from reference:\n%+v\n%+v", name, got.Events, ref.Events)
			}
			if scanned := scanAll(t, input); !reflect.DeepEqual(scanned, ref.Events) {
				t.Errorf("ScanLog(%s) diverges from reference:\n%+v\n%+v", name, scanned, ref.Events)
			}
		})
	}
}

// TestParseLineStripsTrailingCR pins that a raw CRLF-terminated line fed
// straight to ParseLine decodes identically to its LF twin, and that
// exactly one trailing \r is stripped — interior ones stay in Entry.
func TestParseLineStripsTrailingCR(t *testing.T) {
	const line = "1|RAS|1106281621|0|R00-M0|KERNEL|ERROR|kernel status"
	want, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseLine(line + "\r")
	if err != nil {
		t.Fatalf("ParseLine with trailing CR: %v", err)
	}
	if got != want {
		t.Errorf("trailing CR changed the event:\n%+v\n%+v", got, want)
	}
	if got.Entry != "kernel status" {
		t.Errorf("Entry = %q, want %q", got.Entry, "kernel status")
	}

	inner, err := ParseLine("1|RAS|1106281621|0|R00-M0|KERNEL|ERROR|split\rentry\r")
	if err != nil {
		t.Fatal(err)
	}
	if inner.Entry != "split\rentry" {
		t.Errorf("interior CR handling: Entry = %q, want %q", inner.Entry, "split\rentry")
	}
}
