package raslog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec writes one event per line with eight pipe-separated
// fields mirroring Table 1:
//
//	RECORD_ID|EVENT_TYPE|EVENT_TIME|JOB_ID|LOCATION|FACILITY|SEVERITY|ENTRY
//
// EVENT_TIME is recorded in whole seconds — like the production logs —
// even though events carry millisecond timestamps internally. Reading a
// log back therefore loses sub-second detail, which is precisely the
// duplicate-timestamp behaviour the paper's filter contends with.

const codecFields = 8

// WriteLog writes l to w in the text format. It returns the number of
// bytes written.
func WriteLog(w io.Writer, l *Log) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	for i := range l.Events {
		e := &l.Events[i]
		written, err := fmt.Fprintf(bw, "%d|%s|%d|%d|%s|%s|%s|%s\n",
			e.RecordID, sanitize(e.Type), e.Seconds(), e.JobID,
			sanitize(e.Location), e.Facility, e.Severity, sanitize(e.Entry))
		n += int64(written)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// sanitize strips the field separator and newlines from free-text fields.
func sanitize(s string) string {
	if !strings.ContainsAny(s, "|\n\r") {
		return s
	}
	r := strings.NewReplacer("|", "/", "\n", " ", "\r", " ")
	return r.Replace(s)
}

// ReadLog reads a complete log from r. Events are returned in file order;
// the caller should SortByTime if order is not guaranteed.
func ReadLog(r io.Reader, name string) (*Log, error) {
	l := NewLog(name, 1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	in := NewInterner()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := ParseLineBytes(line, in)
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", lineNo, err)
		}
		l.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("raslog: read: %w", err)
	}
	return l, nil
}

// ParseLine parses one codec line into an Event. A single trailing
// carriage return is stripped, so a raw CRLF line decodes identically to
// the same line fed through a line scanner (which strips it first) —
// otherwise the \r would silently end up inside the final Entry field
// and make the "same" event categorize differently.
func ParseLine(line string) (Event, error) {
	return ParseLineBytes([]byte(line), nil)
}

// ParseLineBytes is the zero-copy form of ParseLine: it splits the line
// in place (no intermediate field slice) and, when an Interner is
// supplied, reuses prior copies of the string fields — so a line whose
// vocabulary has been seen before parses without heap allocation. The
// returned event does not retain line.
func ParseLineBytes(line []byte, in *Interner) (Event, error) {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	// Split at the first codecFields-1 separators; the final field is the
	// remainder (Entry may itself contain no '|' — sanitize ensures it —
	// but the split must match strings.SplitN's counting exactly).
	var f [codecFields][]byte
	n, start := 0, 0
	for i := 0; i < len(line) && n < codecFields-1; i++ {
		if line[i] == '|' {
			f[n] = line[start:i]
			n++
			start = i + 1
		}
	}
	f[n] = line[start:]
	n++
	if n != codecFields {
		return Event{}, fmt.Errorf("want %d fields, got %d", codecFields, n)
	}
	var e Event
	var err error
	if e.RecordID, err = parseIntBytes(f[0]); err != nil {
		return Event{}, fmt.Errorf("record id: %w", err)
	}
	secs, err := parseIntBytes(f[2])
	if err != nil {
		return Event{}, fmt.Errorf("event time: %w", err)
	}
	e.Time = secs * 1000
	if e.JobID, err = parseIntBytes(f[3]); err != nil {
		return Event{}, fmt.Errorf("job id: %w", err)
	}
	if e.Facility, err = parseFacilityBytes(f[5]); err != nil {
		return Event{}, err
	}
	if e.Severity, err = parseSeverityBytes(f[6]); err != nil {
		return Event{}, err
	}
	e.Type = intern(in, f[1])
	e.Location = intern(in, f[4])
	e.Entry = intern(in, f[7])
	return e, nil
}

// parseIntBytes decodes a decimal int64 without converting to string on
// the happy path; anything unusual (empty, overflow-length, stray bytes)
// falls back to strconv for its exact error values.
func parseIntBytes(b []byte) (int64, error) {
	// 18 digits cannot overflow int64, so the fast loop needs no bounds
	// arithmetic; longer (possibly overflowing) input takes the slow path.
	if n := len(b); n > 0 && n <= 18 {
		i := 0
		neg := false
		if b[0] == '-' || b[0] == '+' {
			neg = b[0] == '-'
			i++
		}
		if i < n {
			var v int64
			for ; i < n; i++ {
				d := b[i] - '0'
				if d > 9 {
					return strconv.ParseInt(string(b), 10, 64)
				}
				v = v*10 + int64(d)
			}
			if neg {
				v = -v
			}
			return v, nil
		}
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// parseFacilityBytes is ParseFacility without the string conversion (the
// == comparison against each name does not allocate).
func parseFacilityBytes(b []byte) (Facility, error) {
	for i := range facilityNames {
		if string(b) == facilityNames[i] {
			return Facility(i), nil
		}
	}
	return 0, fmt.Errorf("raslog: unknown facility %q", b)
}

// parseSeverityBytes is ParseSeverity without the string conversion.
func parseSeverityBytes(b []byte) (Severity, error) {
	for i := range severityNames {
		if string(b) == severityNames[i] {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("raslog: unknown severity %q", b)
}

// LogSizeBytes returns the size in bytes the log would occupy in the text
// format without materializing it (used for Table 2's "Log Size" column).
func LogSizeBytes(l *Log) int64 {
	var n int64
	for i := range l.Events {
		e := &l.Events[i]
		n += int64(digits(e.RecordID) + len(e.Type) + digits(e.Seconds()) +
			digits(e.JobID) + len(e.Location) + len(e.Facility.String()) +
			len(e.Severity.String()) + len(e.Entry) + codecFields) // separators + \n
	}
	return n
}

func digits(v int64) int {
	if v == 0 {
		return 1
	}
	n := 0
	if v < 0 {
		n = 1
		v = -v
	}
	for v > 0 {
		n++
		v /= 10
	}
	return n
}
