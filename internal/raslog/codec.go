package raslog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec writes one event per line with eight pipe-separated
// fields mirroring Table 1:
//
//	RECORD_ID|EVENT_TYPE|EVENT_TIME|JOB_ID|LOCATION|FACILITY|SEVERITY|ENTRY
//
// EVENT_TIME is recorded in whole seconds — like the production logs —
// even though events carry millisecond timestamps internally. Reading a
// log back therefore loses sub-second detail, which is precisely the
// duplicate-timestamp behaviour the paper's filter contends with.

const codecFields = 8

// WriteLog writes l to w in the text format. It returns the number of
// bytes written.
func WriteLog(w io.Writer, l *Log) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	for i := range l.Events {
		e := &l.Events[i]
		written, err := fmt.Fprintf(bw, "%d|%s|%d|%d|%s|%s|%s|%s\n",
			e.RecordID, sanitize(e.Type), e.Seconds(), e.JobID,
			sanitize(e.Location), e.Facility, e.Severity, sanitize(e.Entry))
		n += int64(written)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// sanitize strips the field separator and newlines from free-text fields.
func sanitize(s string) string {
	if !strings.ContainsAny(s, "|\n\r") {
		return s
	}
	r := strings.NewReplacer("|", "/", "\n", " ", "\r", " ")
	return r.Replace(s)
}

// ReadLog reads a complete log from r. Events are returned in file order;
// the caller should SortByTime if order is not guaranteed.
func ReadLog(r io.Reader, name string) (*Log, error) {
	l := NewLog(name, 1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("raslog: line %d: %w", lineNo, err)
		}
		l.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("raslog: read: %w", err)
	}
	return l, nil
}

// ParseLine parses one codec line into an Event. A single trailing
// carriage return is stripped, so a raw CRLF line decodes identically to
// the same line fed through a line scanner (which strips it first) —
// otherwise the \r would silently end up inside the final Entry field
// and make the "same" event categorize differently.
func ParseLine(line string) (Event, error) {
	line = strings.TrimSuffix(line, "\r")
	parts := strings.SplitN(line, "|", codecFields)
	if len(parts) != codecFields {
		return Event{}, fmt.Errorf("want %d fields, got %d", codecFields, len(parts))
	}
	var e Event
	var err error
	if e.RecordID, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return Event{}, fmt.Errorf("record id: %w", err)
	}
	e.Type = parts[1]
	secs, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("event time: %w", err)
	}
	e.Time = secs * 1000
	if e.JobID, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
		return Event{}, fmt.Errorf("job id: %w", err)
	}
	e.Location = parts[4]
	if e.Facility, err = ParseFacility(parts[5]); err != nil {
		return Event{}, err
	}
	if e.Severity, err = ParseSeverity(parts[6]); err != nil {
		return Event{}, err
	}
	e.Entry = parts[7]
	return e, nil
}

// LogSizeBytes returns the size in bytes the log would occupy in the text
// format without materializing it (used for Table 2's "Log Size" column).
func LogSizeBytes(l *Log) int64 {
	var n int64
	for i := range l.Events {
		e := &l.Events[i]
		n += int64(digits(e.RecordID) + len(e.Type) + digits(e.Seconds()) +
			digits(e.JobID) + len(e.Location) + len(e.Facility.String()) +
			len(e.Severity.String()) + len(e.Entry) + codecFields) // separators + \n
	}
	return n
}

func digits(v int64) int {
	if v == 0 {
		return 1
	}
	n := 0
	if v < 0 {
		n = 1
		v = -v
	}
	for v > 0 {
		n++
		v /= 10
	}
	return n
}
