package raslog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func scanLog(name string, events ...Event) *Log {
	l := NewLog(name, len(events))
	for _, e := range events {
		l.Append(e)
	}
	return l
}

func TestScannerRoundTrip(t *testing.T) {
	in := scanLog("s",
		Event{RecordID: 1, Type: "RAS", Time: 1000, JobID: 7, Location: "R00-M0",
			Facility: Kernel, Severity: Info, Entry: "hello"},
		Event{RecordID: 2, Type: "RAS", Time: 2000, JobID: 8, Location: "R00-M1",
			Facility: Monitor, Severity: Fatal, Entry: "boom"},
	)
	var buf bytes.Buffer
	if _, err := WriteLog(&buf, in); err != nil {
		t.Fatal(err)
	}

	// Scanner must yield exactly what ReadLog returns.
	want, err := ReadLog(bytes.NewReader(buf.Bytes()), "s")
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(bytes.NewReader(buf.Bytes()))
	var got []Event
	for sc.Scan() {
		got = append(got, sc.Event())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != want.Len() {
		t.Fatalf("scanned %d events, want %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Events[i] {
			t.Errorf("event %d: scanner %+v != ReadLog %+v", i, got[i], want.Events[i])
		}
	}
}

func TestScannerSkipsBlankLines(t *testing.T) {
	input := "1|RAS|10|0|L|KERNEL|INFO|a\n\n\n2|RAS|20|0|L|KERNEL|INFO|b\n"
	sc := NewScanner(strings.NewReader(input))
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil || n != 2 {
		t.Fatalf("got %d events, err %v; want 2, nil", n, sc.Err())
	}
}

func TestScannerDecodeError(t *testing.T) {
	input := "1|RAS|10|0|L|KERNEL|INFO|ok\nnot-a-record\n"
	sc := NewScanner(strings.NewReader(input))
	if !sc.Scan() {
		t.Fatal("first line should scan")
	}
	if sc.Scan() {
		t.Fatal("bad line should stop the scanner")
	}
	if sc.Err() == nil || !strings.Contains(sc.Err().Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", sc.Err())
	}
	if sc.Scan() {
		t.Fatal("scanner must stay stopped after an error")
	}
}

func TestScanLogCallbackError(t *testing.T) {
	input := "1|RAS|10|0|L|KERNEL|INFO|a\n2|RAS|20|0|L|KERNEL|INFO|b\n"
	sentinel := errors.New("stop")
	n := 0
	err := ScanLog(strings.NewReader(input), func(Event) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("got n=%d err=%v; want 1, sentinel", n, err)
	}
}
