// Package obsv is a small, dependency-free metrics layer for the
// framework's long-running components: counters, gauges and latency
// histograms collected in a Registry and exposed in the Prometheus text
// format (see expose.go). Production log-analysis systems stress that a
// failure predictor must itself be monitorable — per-stage counters and
// latencies are what make the predictions trustworthy at scale — so the
// streaming service, the training pipeline and the serving daemon all
// hang their instruments off one Registry, and the hand-rolled JSON
// snapshots (/stats) read the very same instruments: the two views
// cannot disagree.
//
// Instruments are get-or-create: asking the Registry twice for the same
// name+labels returns the same instrument, so call sites don't need to
// thread handles around. All instruments are safe for concurrent use.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. {Key: "stage", Value: "shard"}).
type Label struct {
	Key, Value string
}

// kind discriminates the instrument families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Registry holds a set of named metric families. The zero value is not
// usable; create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// family groups every labeling of one metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64 // histogramKind only
	insts      map[string]*instrument
	order      []string // label-set registration order
}

// instrument is one (name, labels) time series.
type instrument struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the monotonically-increasing counter name{labels},
// creating it on first use. Panics on an invalid name or if the name is
// already registered as a different instrument kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.get(name, help, counterKind, nil, labels)
	return inst.c
}

// Gauge returns the gauge name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.get(name, help, gaugeKind, nil, labels)
	return inst.g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (e.g. a channel depth). Re-registering the same name+labels
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	inst := r.get(name, help, gaugeKind, nil, labels)
	inst.g.fn = fn
}

// CounterFunc registers a counter whose value is computed by fn at read
// time — for rollups whose ground truth lives elsewhere (fleet totals
// summed over tenant services). fn must be monotone non-decreasing; the
// registry cannot enforce that, so the caller owns counter semantics.
// Re-registering the same name+labels replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	inst := r.get(name, help, counterKind, nil, labels)
	inst.c.fn = fn
}

// Histogram returns the histogram name{labels} with the given upper
// bounds (ascending, +Inf appended implicitly), creating it on first use.
// The bucket layout is fixed by the first registration of the name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	inst := r.get(name, help, histogramKind, buckets, labels)
	return inst.h
}

func (r *Registry) get(name, help string, k kind, buckets []float64, labels []Label) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, l := range sorted {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obsv: invalid label name %q on %q", l.Key, name))
		}
	}
	key := labelString(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: k, insts: make(map[string]*instrument)}
		if k == histogramKind {
			fam.buckets = normalizeBuckets(buckets)
		}
		r.families[name] = fam
		r.order = append(r.order, name)
	} else if fam.kind != k {
		panic(fmt.Sprintf("obsv: %q already registered as %s, requested %s", name, fam.kind, k))
	}
	inst, ok := fam.insts[key]
	if !ok {
		inst = &instrument{labels: sorted}
		switch k {
		case counterKind:
			inst.c = &Counter{}
		case gaugeKind:
			inst.g = &Gauge{}
		case histogramKind:
			inst.h = newHistogram(fam.buckets)
		}
		fam.insts[key] = inst
		fam.order = append(fam.order, key)
	}
	return inst
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// normalizeBuckets sorts, dedupes and strips non-finite bounds (+Inf is
// always implicit).
func normalizeBuckets(b []float64) []float64 {
	out := make([]float64, 0, len(b))
	for _, v := range b {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// ExpBuckets returns n exponentially-spaced upper bounds starting at
// start and growing by factor — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obsv: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

// Counter is a monotonically-increasing event count. A counter
// registered via CounterFunc computes its value at read time instead;
// Inc/Add on such a counter mutate a hidden cell the function shadows,
// so treat func-backed counters as read-only.
type Counter struct {
	v  atomic.Int64
	fn func() int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be >= 0; counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obsv: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count (calling the function for func
// counters).
func (c *Counter) Value() int64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways. A gauge
// registered via GaugeFunc computes its value at read time instead.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (calling the function for func gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size distribution: per-bucket
// counts plus a running sum and count, the exact shape Prometheus
// histograms expose.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Since records the elapsed time from t0 in seconds — the usual
// `defer h.Since(time.Now())` latency idiom.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the total and the sum.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var acc int64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.count, h.sum
}
