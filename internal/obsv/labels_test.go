package obsv

import (
	"strings"
	"testing"
)

// TestLabeledSeriesRoundTrip pins writer/parser agreement on label
// escaping: values carrying quotes, backslashes and newlines must render,
// re-parse, and land on the exact escaped series key the writer emitted.
func TestLabeledSeriesRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total", "per-source events",
		Label{Key: "src", Value: `quoted"here`}).Add(3)
	r.Counter("events_total", "",
		Label{Key: "src", Value: `back\slash`}).Add(5)
	r.Counter("events_total", "",
		Label{Key: "src", Value: "new\nline"}).Add(7)
	r.Gauge("depth", "", Label{Key: "queue", Value: "shard0"}, Label{Key: "tier", Value: "hot"}).Set(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, sb.String())
	}
	for series, want := range map[string]float64{
		`events_total{src="quoted\"here"}`: 3,
		`events_total{src="back\\slash"}`:  5,
		`events_total{src="new\nline"}`:    7,
		`depth{queue="shard0",tier="hot"}`: 2,
	} {
		if v, ok := got[series]; !ok {
			t.Errorf("series %q missing from exposition:\n%s", series, sb.String())
		} else if v != want {
			t.Errorf("%s = %v, want %v", series, v, want)
		}
	}
}

// TestLabeledHistogramRoundTrip pins that extra labels reach every line
// of a histogram family — buckets, _sum and _count — with the "le" label
// rendered last, and that the result survives the strict parser.
func TestLabeledHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1}, Label{Key: "stage", Value: "seq"})
	h.Observe(0.4)
	h.Observe(2)

	var sb strings.Builder
	if err := WriteMergedPrometheus(&sb, LabeledRegistry{Registry: r,
		Labels: []Label{{Key: "tenant", Value: "t1"}}}); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, sb.String())
	}
	for series, want := range map[string]float64{
		`lat_seconds_bucket{stage="seq",tenant="t1",le="0.5"}`:  1,
		`lat_seconds_bucket{stage="seq",tenant="t1",le="1"}`:    1,
		`lat_seconds_bucket{stage="seq",tenant="t1",le="+Inf"}`: 2,
		`lat_seconds_sum{stage="seq",tenant="t1"}`:              2.4,
		`lat_seconds_count{stage="seq",tenant="t1"}`:            2,
	} {
		if v, ok := got[series]; !ok {
			t.Errorf("series %q missing:\n%s", series, sb.String())
		} else if v != want {
			t.Errorf("%s = %v, want %v", series, v, want)
		}
	}
}

// TestMergedExpositionGroupsFamilies pins the fleet-shaped merge: two
// registries carrying the same family names render as one family with a
// single # TYPE header, tenant-labeled series side by side, and the
// whole output is deterministic across calls.
func TestMergedExpositionGroupsFamilies(t *testing.T) {
	mk := func(n int64) *Registry {
		r := NewRegistry()
		r.Counter("stream_ingested_total", "Events accepted.").Add(n)
		r.Gauge("stream_rules", "").Set(float64(n * 10))
		return r
	}
	parts := []LabeledRegistry{
		{Registry: mk(4), Labels: []Label{{Key: "tenant", Value: "a"}}},
		{Registry: mk(9), Labels: []Label{{Key: "tenant", Value: "b"}}},
	}

	var sb strings.Builder
	if err := WriteMergedPrometheus(&sb, parts...); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE stream_ingested_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want exactly 1:\n%s", n, out)
	}
	got, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, out)
	}
	for series, want := range map[string]float64{
		`stream_ingested_total{tenant="a"}`: 4,
		`stream_ingested_total{tenant="b"}`: 9,
		`stream_rules{tenant="a"}`:          40,
		`stream_rules{tenant="b"}`:          90,
	} {
		if v, ok := got[series]; !ok {
			t.Errorf("series %q missing:\n%s", series, out)
		} else if v != want {
			t.Errorf("%s = %v, want %v", series, v, want)
		}
	}

	var sb2 strings.Builder
	if err := WriteMergedPrometheus(&sb2, parts...); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("merged exposition is not byte-stable across calls")
	}
}

// TestMergedExpositionRejectsCollisions pins the two merge error paths:
// a kind mismatch across registries and an extra label shadowing a
// series' own label.
func TestMergedExpositionRejectsCollisions(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("m", "")
	b.Gauge("m", "")
	var sb strings.Builder
	if err := WriteMergedPrometheus(&sb, LabeledRegistry{Registry: a}, LabeledRegistry{Registry: b}); err == nil {
		t.Error("kind mismatch across merged registries not rejected")
	}

	c := NewRegistry()
	c.Counter("n", "", Label{Key: "tenant", Value: "inner"})
	sb.Reset()
	if err := WriteMergedPrometheus(&sb, LabeledRegistry{Registry: c,
		Labels: []Label{{Key: "tenant", Value: "outer"}}}); err == nil {
		t.Error("extra label colliding with a series label not rejected")
	}

	d := NewRegistry()
	d.Counter("o", "")
	sb.Reset()
	if err := WriteMergedPrometheus(&sb, LabeledRegistry{Registry: d,
		Labels: []Label{{Key: "bad label", Value: "x"}}}); err == nil {
		t.Error("invalid extra label name not rejected")
	}
}

// TestCounterFunc pins the computed-counter read path used by the fleet
// rollups.
func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	base := int64(40)
	r.CounterFunc("rollup_total", "computed", func() int64 { return base + 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got["rollup_total"] != 42 {
		t.Errorf("rollup_total = %v, want 42", got["rollup_total"])
	}
}

// TestParseTextRejectsMalformedLabels pins the strict grammar: the
// parser must refuse label blocks the writer could never emit instead of
// quietly mis-splitting them.
func TestParseTextRejectsMalformedLabels(t *testing.T) {
	for _, in := range []string{
		"# TYPE m counter\nm{k=\"v} 1\n",           // unterminated value
		"# TYPE m counter\nm{k=\"v\",k=\"w\"} 1\n", // duplicate key
		"# TYPE m counter\nm{} 1\n",                // empty label set
		"# TYPE m counter\nm{k v} 1\n",             // missing =
		"# TYPE m counter\nm{9k=\"v\"} 1\n",        // invalid key
		"# TYPE m counter\nm{k=v} 1\n",             // unquoted value
		"# TYPE m counter\nm{k=\"v\"\n",            // no closing brace
		"# TYPE m counter\nm{k=\"a\\qb\"} 1\n",     // unknown escape
		"# TYPE m counter\nm{k=\"v\"}x 1\n",        // garbage after block
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("malformed exposition accepted:\n%s", in)
		}
	}
	// The quote-aware scanner must accept a value containing '}' and a
	// space — shapes the old first-brace splitter broke on.
	got, err := ParseText(strings.NewReader("# TYPE m counter\nm{k=\"a} b\"} 6\n"))
	if err != nil {
		t.Fatalf("value containing '}' and space rejected: %v", err)
	}
	if got[`m{k="a} b"}`] != 6 {
		t.Errorf("series with tricky value parsed wrong: %v", got)
	}
}
