package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText reads a Prometheus text exposition and returns every sample
// keyed by its full series name ("name" or `name{k="v",...}` exactly as
// rendered). It validates the grammar strictly enough to catch malformed
// output — unknown line shapes, samples without a preceding # TYPE,
// unparsable values — which is what the exposition tests (and the
// /stats-vs-/metrics consistency tests) lean on.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	typed := make(map[string]bool) // family names with a # TYPE line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obsv: line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = true
			}
			continue
		}
		series, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obsv: line %d: %w", lineNo, err)
		}
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		famName := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if !typed[base] && !typed[famName] {
			return nil, fmt.Errorf("obsv: line %d: sample %q without a # TYPE header", lineNo, series)
		}
		if _, dup := out[series]; dup {
			return nil, fmt.Errorf("obsv: line %d: duplicate series %q", lineNo, series)
		}
		out[series] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample splits `name{labels} value` into series and value.
func parseSample(line string) (string, float64, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, rest = line[:j+1], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", 0, fmt.Errorf("want `name value`, got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	if !validName(base) {
		return "", 0, fmt.Errorf("invalid metric name %q", base)
	}
	v, err := parseValue(rest)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, v, nil
}

// parseValue accepts exactly the value forms the exposition writer emits:
// the tokens +Inf, -Inf and NaN, or plain decimal / scientific notation.
// strconv.ParseFloat alone is far looser — hex floats, digit underscores,
// "Infinity", case-insensitive special spellings — and quietly accepting
// those would let a corrupted exposition parse as a plausible number.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
		case c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E':
		default:
			return 0, fmt.Errorf("non-numeric value %q", s)
		}
	}
	return strconv.ParseFloat(s, 64)
}
