package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText reads a Prometheus text exposition and returns every sample
// keyed by its full series name ("name" or `name{k="v",...}` exactly as
// rendered). It validates the grammar strictly enough to catch malformed
// output — unknown line shapes, samples without a preceding # TYPE,
// unparsable values — which is what the exposition tests (and the
// /stats-vs-/metrics consistency tests) lean on.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	typed := make(map[string]bool) // family names with a # TYPE line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obsv: line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = true
			}
			continue
		}
		series, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obsv: line %d: %w", lineNo, err)
		}
		base := series
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		famName := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if !typed[base] && !typed[famName] {
			return nil, fmt.Errorf("obsv: line %d: sample %q without a # TYPE header", lineNo, series)
		}
		if _, dup := out[series]; dup {
			return nil, fmt.Errorf("obsv: line %d: duplicate series %q", lineNo, series)
		}
		out[series] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample splits `name{labels} value` into series and value. The
// label block is validated against exactly the grammar the exposition
// writer emits: keys valid metric names, values double-quoted with only
// the \\ , \" and \n escapes, pairs comma-separated with no padding, no
// duplicate keys, and at least one pair when braces are present. Scanning
// is quote-aware, so a label value containing '}' or a space cannot split
// the line in the wrong place.
func parseSample(line string) (string, float64, error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name := line[:i]
	if !validName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	series := name
	if i < len(line) && line[i] == '{' {
		end, err := scanLabels(line, i)
		if err != nil {
			return "", 0, err
		}
		series, i = line[:end], end
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", 0, fmt.Errorf("want `name value`, got %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return series, v, nil
}

// scanLabels validates the {k="v",...} block starting at line[open] ==
// '{' and returns the index just past the closing brace.
func scanLabels(line string, open int) (int, error) {
	i := open + 1
	var seen []string
	for {
		start := i
		for i < len(line) && line[i] != '=' {
			if line[i] == '}' || line[i] == ',' || line[i] == '"' {
				return 0, fmt.Errorf("malformed label block in %q", line)
			}
			i++
		}
		if i >= len(line) {
			return 0, fmt.Errorf("unterminated label block in %q", line)
		}
		key := line[start:i]
		if !validName(key) {
			return 0, fmt.Errorf("invalid label name %q in %q", key, line)
		}
		for _, k := range seen {
			if k == key {
				return 0, fmt.Errorf("duplicate label %q in %q", key, line)
			}
		}
		seen = append(seen, key)
		i++ // '='
		if i >= len(line) || line[i] != '"' {
			return 0, fmt.Errorf("label %q: value must be double-quoted in %q", key, line)
		}
		i++
		for i < len(line) && line[i] != '"' {
			if line[i] == '\\' {
				i++
				if i >= len(line) || (line[i] != '\\' && line[i] != '"' && line[i] != 'n') {
					return 0, fmt.Errorf("label %q: bad escape in %q", key, line)
				}
			}
			i++
		}
		if i >= len(line) {
			return 0, fmt.Errorf("label %q: unterminated value in %q", key, line)
		}
		i++ // closing quote
		if i < len(line) && line[i] == ',' {
			i++
			continue
		}
		if i < len(line) && line[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("malformed label block in %q", line)
	}
}

// parseValue accepts exactly the value forms the exposition writer emits:
// the tokens +Inf, -Inf and NaN, or plain decimal / scientific notation.
// strconv.ParseFloat alone is far looser — hex floats, digit underscores,
// "Infinity", case-insensitive special spellings — and quietly accepting
// those would let a corrupted exposition parse as a plausible number.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
		case c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E':
		default:
			return 0, fmt.Errorf("non-numeric value %q", s)
		}
	}
	return strconv.ParseFloat(s, 64)
}
