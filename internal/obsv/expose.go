package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (families in registration order, series in label
// order, # HELP / # TYPE headers once per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteMergedPrometheus(w, LabeledRegistry{Registry: r})
}

// Handler serves WritePrometheus over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// LabeledRegistry pairs a registry with constant labels appended to every
// series it contributes to a merged exposition — fleet mode scrapes many
// per-tenant registries through one endpoint, each tagged tenant="<id>".
type LabeledRegistry struct {
	Registry *Registry
	Labels   []Label
}

// famSource is one registry's contribution to a merged family: the family
// plus a consistent snapshot of its instruments (taken under the
// registry lock, so a concurrent get-or-create cannot race the render).
type famSource struct {
	fam   *family
	insts []*instrument
	extra []Label
}

// WriteMergedPrometheus renders several registries as one exposition.
// Families sharing a name are grouped under a single # HELP / # TYPE
// header (the text format requires each family to appear exactly once);
// within a family, series appear part by part in per-registry
// registration order, each carrying its part's extra labels merged into
// sorted-key position. The rendering is deterministic: families in
// first-seen registration order, labels sorted by key with the histogram
// "le" label always last. A name registered as different kinds across
// parts, an invalid extra label name, or an extra label colliding with a
// series' own label is an error.
func WriteMergedPrometheus(w io.Writer, parts ...LabeledRegistry) error {
	var order []string
	groups := make(map[string][]famSource)
	for _, part := range parts {
		for _, l := range part.Labels {
			if !validName(l.Key) {
				return fmt.Errorf("obsv: invalid extra label name %q", l.Key)
			}
		}
		r := part.Registry
		r.mu.Lock()
		srcs := make([]famSource, 0, len(r.order))
		for _, name := range r.order {
			fam := r.families[name]
			src := famSource{fam: fam, extra: part.Labels,
				insts: make([]*instrument, len(fam.order))}
			for i, key := range fam.order {
				src.insts[i] = fam.insts[key]
			}
			srcs = append(srcs, src)
		}
		r.mu.Unlock()
		for _, src := range srcs {
			name := src.fam.name
			if prev, ok := groups[name]; ok {
				if prev[0].fam.kind != src.fam.kind {
					return fmt.Errorf("obsv: family %q registered as %s and %s across merged registries",
						name, prev[0].fam.kind, src.fam.kind)
				}
			} else {
				order = append(order, name)
			}
			groups[name] = append(groups[name], src)
		}
	}

	bw := bufio.NewWriter(w)
	for _, name := range order {
		srcs := groups[name]
		// The first part to register a family supplies its header; later
		// parts typically registered the same help text anyway (fleet
		// tenants share one instrument set).
		help := ""
		for _, src := range srcs {
			if src.fam.help != "" {
				help = src.fam.help
				break
			}
		}
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, srcs[0].fam.kind)
		for _, src := range srcs {
			for _, inst := range src.insts {
				if err := writeInstrument(bw, src.fam, inst, src.extra); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func writeInstrument(w io.Writer, fam *family, inst *instrument, extra []Label) error {
	labels, err := mergeLabels(inst.labels, extra)
	if err != nil {
		return fmt.Errorf("obsv: family %q: %w", fam.name, err)
	}
	switch fam.kind {
	case counterKind:
		fmt.Fprintf(w, "%s%s %d\n", fam.name, labelString(labels), inst.c.Value())
	case gaugeKind:
		fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(labels), formatFloat(inst.g.Value()))
	case histogramKind:
		cum, count, sum := inst.h.snapshot()
		for i, bound := range fam.buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
				labelString(append(append([]Label(nil), labels...), Label{"le", formatFloat(bound)})), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			labelString(append(append([]Label(nil), labels...), Label{"le", "+Inf"})), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelString(labels), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelString(labels), count)
	}
	return nil
}

// mergeLabels folds the extra labels into an already-sorted base set,
// keeping the whole result sorted by key and rejecting duplicates (an
// extra label shadowing a series' own label would silently merge two
// distinct series into one).
func mergeLabels(base, extra []Label) ([]Label, error) {
	if len(extra) == 0 {
		return base, nil
	}
	out := make([]Label, 0, len(base)+len(extra))
	out = append(out, base...)
	out = append(out, extra...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			return nil, fmt.Errorf("duplicate label %q after merging extra labels", out[i].Key)
		}
	}
	return out, nil
}

// labelString renders a sorted label set as {k="v",...}, or "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
