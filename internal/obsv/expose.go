package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Prometheus text exposition content type.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (families in registration order, series in label
// order, # HELP / # TYPE headers once per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, key := range fam.order {
			writeInstrument(bw, fam, fam.insts[key])
		}
	}
	return bw.Flush()
}

// Handler serves WritePrometheus over HTTP (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

func writeInstrument(w io.Writer, fam *family, inst *instrument) {
	switch fam.kind {
	case counterKind:
		fmt.Fprintf(w, "%s%s %d\n", fam.name, labelString(inst.labels), inst.c.Value())
	case gaugeKind:
		fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(inst.labels), formatFloat(inst.g.Value()))
	case histogramKind:
		cum, count, sum := inst.h.snapshot()
		for i, bound := range fam.buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
				labelString(append(append([]Label(nil), inst.labels...), Label{"le", formatFloat(bound)})), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name,
			labelString(append(append([]Label(nil), inst.labels...), Label{"le", "+Inf"})), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelString(inst.labels), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelString(inst.labels), count)
	}
}

// labelString renders a sorted label set as {k="v",...}, or "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
