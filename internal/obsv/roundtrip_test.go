package obsv

import (
	"math"
	"strings"
	"testing"
)

// TestZeroCountHistogramRoundTrip pins that a registered but never
// observed histogram still exposes a full, parseable series set: every
// bucket, _sum and _count present and exactly zero.
func TestZeroCountHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "never observed", []float64{0.1, 1, 10})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, sb.String())
	}
	for _, series := range []string{
		`idle_seconds_bucket{le="0.1"}`,
		`idle_seconds_bucket{le="1"}`,
		`idle_seconds_bucket{le="10"}`,
		`idle_seconds_bucket{le="+Inf"}`,
		"idle_seconds_sum",
		"idle_seconds_count",
	} {
		v, ok := got[series]
		if !ok {
			t.Errorf("series %q missing from exposition:\n%s", series, sb.String())
			continue
		}
		if v != 0 {
			t.Errorf("%s = %v, want 0", series, v)
		}
	}
}

// TestNonFiniteGaugeRoundTrip pins the writer/parser agreement on the
// three non-finite values: they must survive a text round trip, not
// mis-parse into finite numbers or fail asymmetrically.
func TestNonFiniteGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_posinf", "").Set(math.Inf(1))
	r.Gauge("g_neginf", "").Set(math.Inf(-1))
	r.Gauge("g_nan", "").Set(math.NaN())

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, sb.String())
	}
	if v := got["g_posinf"]; !math.IsInf(v, 1) {
		t.Errorf("g_posinf = %v, want +Inf", v)
	}
	if v := got["g_neginf"]; !math.IsInf(v, -1) {
		t.Errorf("g_neginf = %v, want -Inf", v)
	}
	if v, ok := got["g_nan"]; !ok || !math.IsNaN(v) {
		t.Errorf("g_nan = %v (present=%v), want NaN", v, ok)
	}
}

// TestParseValueStrictness pins the accepted value grammar: exactly the
// writer's special tokens plus decimal/scientific notation. Everything
// strconv.ParseFloat would additionally tolerate is rejected loudly.
func TestParseValueStrictness(t *testing.T) {
	accept := map[string]float64{
		"0":       0,
		"3":       3,
		"-2.5":    -2.5,
		"1e-9":    1e-9,
		"6.02E23": 6.02e23,
		"+4":      4,
	}
	for in, want := range accept {
		v, err := parseValue(in)
		if err != nil {
			t.Errorf("parseValue(%q) rejected: %v", in, err)
		} else if v != want {
			t.Errorf("parseValue(%q) = %v, want %v", in, v, want)
		}
	}
	reject := []string{
		"", "0x1p3", "0X2", "Infinity", "infinity", "inf", "Inf", "+inf",
		"nan", "nAn", "1_000", "1,5", " 1", "1 ", "--1", "1e", ".",
	}
	for _, in := range reject {
		if v, err := parseValue(in); err == nil {
			t.Errorf("parseValue(%q) = %v, want error", in, v)
		}
	}
	for in, check := range map[string]func(float64) bool{
		"+Inf": func(v float64) bool { return math.IsInf(v, 1) },
		"-Inf": func(v float64) bool { return math.IsInf(v, -1) },
		"NaN":  math.IsNaN,
	} {
		v, err := parseValue(in)
		if err != nil {
			t.Errorf("parseValue(%q) rejected: %v", in, err)
		} else if !check(v) {
			t.Errorf("parseValue(%q) = %v, wrong special value", in, v)
		}
	}
}
