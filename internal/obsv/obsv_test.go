package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Events seen.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("events_total", "Events seen."); c2 != c {
		t.Error("get-or-create returned a different counter for the same name")
	}

	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %g, want 5", got)
	}
	r.GaugeFunc("live", "Computed.", func() float64 { return 42 })
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE events_total counter", "events_total 5",
		"# TYPE depth gauge", "depth 5", "live 42",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCounterPanicsOnDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "Hits.", Label{"zeta", "z"}, Label{"alpha", `a"b\c`})
	c.Inc()
	// The same labels in a different order address the same series.
	r.Counter("hits_total", "Hits.", Label{"alpha", `a"b\c`}, Label{"zeta", "z"}).Inc()

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `hits_total{alpha="a\"b\\c",zeta="z"} 2`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Stage latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Errorf("sum = %g, want 5.565", h.Sum())
	}

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// le is inclusive: the 0.01 observation lands in the 0.01 bucket.
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 2`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if samples[`latency_seconds_bucket{le="+Inf"}`] != float64(samples["latency_seconds_count"]) {
		t.Error("+Inf bucket != count")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_header 3\n",
		"# TYPE m counter\nm not-a-number\n",
		"# TYPE m wat\nm 1\n",
		"# TYPE m counter\nm 1\nm 1\n", // duplicate series
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", []float64{1, 10}).Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
