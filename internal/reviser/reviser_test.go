package reviser

import (
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

var p300 = learner.Params{WindowSec: 300}

func mk(tSec int64, class int, fatal bool) preprocess.TaggedEvent {
	return preprocess.TaggedEvent{
		Event: raslog.Event{Time: tSec * 1000}, Class: class, Fatal: fatal,
	}
}

func assocRule(target int, body ...int) learner.Rule {
	return learner.Rule{Kind: learner.Association,
		Body: learner.NormalizeBody(body), Target: target}
}

// goodAndBadStream builds a stream where class 1 reliably precedes fatal
// 99 and class 2 fires often but never precedes a failure.
func goodAndBadStream() []preprocess.TaggedEvent {
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 30; i++ {
		events = append(events, mk(tm, 1, false), mk(tm+60, 99, true))
		tm += 4000
		events = append(events, mk(tm, 2, false))
		tm += 4000
	}
	return events
}

func TestReviserKeepsGoodDropsBad(t *testing.T) {
	rv := New()
	good := assocRule(99, 1)
	bad := assocRule(99, 2)
	kept, scores := rv.Revise([]learner.Rule{good, bad}, goodAndBadStream(), p300)
	if len(kept) != 1 || kept[0].ID() != good.ID() {
		t.Fatalf("kept = %v", kept)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	for _, s := range scores {
		switch s.Rule.ID() {
		case good.ID():
			if !s.Kept || s.ROC < 0.7 {
				t.Errorf("good rule score = %+v", s)
			}
			if s.Precision() < 0.9 {
				t.Errorf("good rule precision = %g", s.Precision())
			}
		case bad.ID():
			if s.Kept || s.TP != 0 {
				t.Errorf("bad rule score = %+v", s)
			}
		}
	}
}

func TestReviserMinROCBoundary(t *testing.T) {
	// Half the failures have no precursor: the rule's recall is 0.5, so
	// ROC = sqrt(1 + 0.25) ≈ 1.118. MinROC must cut exactly there.
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 20; i++ {
		events = append(events, mk(tm, 1, false), mk(tm+60, 99, true))
		tm += 4000
		events = append(events, mk(tm, 98, true)) // precursor-less failure
		tm += 4000
	}
	rule := assocRule(99, 1)
	strict := &Reviser{MinROC: 1.2}
	kept, scores := strict.Revise([]learner.Rule{rule}, events, p300)
	if len(kept) != 0 {
		t.Errorf("rule with ROC %.3f survived MinROC 1.2", scores[0].ROC)
	}
	if scores[0].ROC < 1.0 || scores[0].ROC > 1.2 {
		t.Errorf("ROC = %.3f, want ~1.118", scores[0].ROC)
	}
	lax := &Reviser{MinROC: 1.0}
	kept, _ = lax.Revise([]learner.Rule{rule}, events, p300)
	if len(kept) != 1 {
		t.Error("rule rejected at MinROC 1.0")
	}
}

func TestReviserEmptyCandidates(t *testing.T) {
	kept, scores := New().Revise(nil, goodAndBadStream(), p300)
	if len(kept) != 0 || len(scores) != 0 {
		t.Errorf("empty revise = %v, %v", kept, scores)
	}
}

func TestReviserNeverFiringRuleDropped(t *testing.T) {
	rule := assocRule(99, 777) // class never occurs
	kept, scores := New().Revise([]learner.Rule{rule}, goodAndBadStream(), p300)
	if len(kept) != 0 {
		t.Error("never-firing rule kept")
	}
	if scores[0].ROC != 0 {
		t.Errorf("ROC = %g, want 0", scores[0].ROC)
	}
}

func TestReviserStatisticalRule(t *testing.T) {
	// Bursts where k=2 within the window always continues: high ROC.
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 25; i++ {
		events = append(events,
			mk(tm, 90, true), mk(tm+50, 90, true), mk(tm+100, 90, true))
		tm += 7200
	}
	rule := learner.Rule{Kind: learner.Statistical, Count: 2, Target: learner.AnyFatal}
	kept, scores := New().Revise([]learner.Rule{rule}, events, p300)
	if len(kept) != 1 {
		t.Fatalf("statistical rule dropped: %+v", scores[0])
	}
	if scores[0].Precision() < 0.9 {
		t.Errorf("precision = %g", scores[0].Precision())
	}
}

func TestROCValueComputation(t *testing.T) {
	// Via a fully-precise fully-covering stream, ROC should approach
	// sqrt(2).
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for i := 0; i < 20; i++ {
		events = append(events, mk(tm, 1, false), mk(tm+50, 99, true))
		tm += 4000
	}
	rule := assocRule(99, 1)
	_, scores := New().Revise([]learner.Rule{rule}, events, p300)
	if scores[0].ROC < 1.4 {
		t.Errorf("perfect rule ROC = %g, want ~sqrt(2)", scores[0].ROC)
	}
}

func TestScoreAllWideWindowNoDoubleCounting(t *testing.T) {
	// With W_P wider than the 300 s alarm spacing, a rule can re-trigger
	// while its previous warning is still open; warnings must still be
	// settled exactly once each. Class 1 fires every 400 s with a fatal
	// after every third occurrence.
	var events []preprocess.TaggedEvent
	tm := int64(0)
	occurrences := 0
	for i := 0; i < 30; i++ {
		events = append(events, mk(tm, 1, false))
		occurrences++
		if i%3 == 2 {
			events = append(events, mk(tm+100, 99, true))
		}
		tm += 400
	}
	rule := assocRule(99, 1)
	outcomes := ScoreAll([]learner.Rule{rule},
		events, learner.Params{WindowSec: 3600})
	o := outcomes[0]
	if o.TP+o.FP > occurrences {
		t.Fatalf("settled %d warnings from %d triggers", o.TP+o.FP, occurrences)
	}
	if o.TP == 0 {
		t.Fatal("no true positives on a reliable indicator")
	}
	if o.Captured > o.Fatals {
		t.Fatalf("captured %d of %d fatals", o.Captured, o.Fatals)
	}
}
