package reviser

import (
	"reflect"
	"testing"

	"repro/internal/learner"
	"repro/internal/preprocess"
	"repro/internal/stats"
)

// denseStream builds a long mixed stream with many classes, bursts and
// irregular fatals, so rule scoring exercises window eviction, warning
// overlap and dedup paths.
func denseStream(seed uint64, n int) []preprocess.TaggedEvent {
	r := stats.NewRNG(seed)
	var events []preprocess.TaggedEvent
	tm := int64(0)
	for len(events) < n {
		tm += int64(3 + r.Intn(90))
		switch {
		case r.Intn(9) == 0:
			events = append(events, mk(tm, 99, true))
		case r.Intn(17) == 0:
			events = append(events, mk(tm, 98, true))
		default:
			events = append(events, mk(tm, r.Intn(20), false))
		}
	}
	return events
}

// ruleZoo builds a candidate set large enough to split across several
// workers: association rules over varied bodies, the statistical ladder,
// and a few distribution rules.
func ruleZoo() []learner.Rule {
	var rules []learner.Rule
	for a := 0; a < 20; a++ {
		rules = append(rules, assocRule(99, a))
		rules = append(rules, assocRule(98, a, (a+1)%20))
		if a%3 == 0 {
			rules = append(rules, assocRule(learner.AnyFatal, a, (a+5)%20, (a+11)%20))
		}
	}
	for k := 1; k <= 8; k++ {
		rules = append(rules, learner.Rule{
			Kind: learner.Statistical, Count: k, Target: learner.AnyFatal})
	}
	for _, gap := range []int64{60, 600, 3600} {
		rules = append(rules, learner.Rule{
			Kind: learner.Distribution, Target: learner.AnyFatal, ElapsedSec: gap})
	}
	return rules
}

// TestScoreAllNMatchesSerial pins the partitioned scorer to the serial
// single pass, across worker counts and window sizes.
func TestScoreAllNMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{5, 21} {
		events := denseStream(seed, 4000)
		rules := ruleZoo()
		for _, p := range []learner.Params{{WindowSec: 300}, {WindowSec: 3600}} {
			want := ScoreAll(rules, events, p)
			fired := 0
			for _, o := range want {
				fired += o.TP + o.FP
			}
			if fired == 0 {
				t.Fatalf("seed %d: degenerate stream — no rule ever fired", seed)
			}
			for _, workers := range []int{2, 3, 8} {
				got := ScoreAllN(rules, events, p, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d W %d workers %d: outcomes diverged",
						seed, p.WindowSec, workers)
				}
			}
		}
	}
}

// TestReviseParallelMatchesSerial checks the full Revise path (scores,
// ROC, keep decisions) at both ends of the knob.
func TestReviseParallelMatchesSerial(t *testing.T) {
	events := denseStream(13, 4000)
	rules := ruleZoo()
	serial := New()
	serial.Parallelism = 1
	parallel := New()
	parallel.Parallelism = 4
	wantKept, wantScores := serial.Revise(rules, events, p300)
	gotKept, gotScores := parallel.Revise(rules, events, p300)
	if !reflect.DeepEqual(gotKept, wantKept) {
		t.Errorf("kept diverged (%d vs %d)", len(gotKept), len(wantKept))
	}
	if !reflect.DeepEqual(gotScores, wantScores) {
		t.Error("scores diverged")
	}
}
