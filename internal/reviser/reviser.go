// Package reviser implements the rule reviser (paper §4.2, Algorithm 1).
// The base learners deliberately mine with permissive parameters so that
// rare failure patterns are not missed; the price is bad rules. The
// reviser replays each candidate rule against the training stream,
// counts its true positives, false positives and false negatives, and
// keeps only rules whose ROC value
//
//	ROC(r) = sqrt(m1(r)^2 + m2(r)^2),  m1 = TP/(TP+FP), m2 = TP/(TP+FN)
//
// clears MinROC (paper default 0.7).
//
// Every candidate is scored *as if it ran alone* — exactly Algorithm 1 —
// but all candidates are evaluated in a single pass over the stream, so
// revision cost grows with the stream, not with (stream × rules). Because
// scoring state is per-rule, the candidate set also partitions cleanly
// across workers: each worker replays the shared read-only stream for its
// rule slice and writes outcomes into its own region of the result, so
// the parallel scorecard is byte-identical to the serial one.
package reviser

import (
	"math"
	"sort"
	"sync"

	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/preprocess"
)

// minRulesPerWorker is the smallest rule partition worth a goroutine;
// below it ScoreAllN falls back to the serial single pass.
const minRulesPerWorker = 16

// serialCutoff is the smallest candidate set for which partitioned
// scoring can pay at all. Every worker replays the *whole* event stream
// for its rule slice, so each extra worker buys ruleWork/W of
// parallelism at the price of one more full stream scan plus goroutine
// startup; with a small rule set the duplicated scans dominate and the
// "parallel" pass is strictly slower than the serial one (the
// BenchmarkReviseParallel regression). Below the cutoff ScoreAllN is
// serial no matter how many workers are offered.
const serialCutoff = 4 * minRulesPerWorker

// Reviser filters candidate rules by replaying them on training data.
type Reviser struct {
	// MinROC is the acceptance threshold (paper default 0.7; the metric
	// ranges up to sqrt(2)).
	MinROC float64
	// KeepDistribution exempts Distribution rules from removal (they are
	// still scored). The probability-distribution expert is the
	// mixture-of-experts *fallback*: it is consulted only when no
	// association or statistical rule matches, so its stand-alone
	// precision understates its value inside the ensemble — scoring it in
	// isolation and pruning it would leave precursor-less failures
	// unpredictable. Default true (see DESIGN.md for the discussion).
	KeepDistribution bool
	// Parallelism bounds the scoring workers: 0 means GOMAXPROCS,
	// 1 forces the serial pass. The scorecard is identical either way.
	Parallelism int
}

// New returns a reviser with the paper's MinROC.
func New() *Reviser { return &Reviser{MinROC: 0.7, KeepDistribution: true} }

// RuleScore reports one rule's performance on the training stream.
type RuleScore struct {
	Rule learner.Rule
	eval.Outcome
	ROC  float64
	Kept bool
}

// Revise evaluates every candidate on the training stream and returns the
// kept rules plus the full scorecard (Algorithm 1).
func (rv *Reviser) Revise(candidates []learner.Rule, events []preprocess.TaggedEvent,
	p learner.Params) ([]learner.Rule, []RuleScore) {

	outcomes := ScoreAllN(candidates, events, p, learner.Workers(rv.Parallelism))
	kept := make([]learner.Rule, 0, len(candidates))
	scores := make([]RuleScore, 0, len(candidates))
	for i, rule := range candidates {
		score := RuleScore{Rule: rule, Outcome: outcomes[i], ROC: roc(outcomes[i])}
		score.Kept = score.ROC >= rv.MinROC ||
			(rv.KeepDistribution && rule.Kind == learner.Distribution)
		if score.Kept {
			kept = append(kept, rule)
		}
		scores = append(scores, score)
	}
	return kept, scores
}

// roc computes Algorithm 1's metric: m1 is the rule's precision and m2 its
// recall on the training stream. A rule that never fired scores 0.
func roc(o eval.Outcome) float64 {
	m1 := o.Precision()
	m2 := o.Recall()
	return math.Sqrt(m1*m1 + m2*m2)
}

// ScoreAll scores every rule independently over a time-sorted stream in a
// single serial pass, returning outcomes parallel to rules.
func ScoreAll(rules []learner.Rule, events []preprocess.TaggedEvent,
	p learner.Params) []eval.Outcome {
	return scoreChunk(rules, events, p)
}

// ScoreAllN scores the rules with up to `workers` concurrent passes, each
// replaying the shared read-only stream for a contiguous partition of the
// rule set. Outcomes land at their rules' input positions, so the result
// equals ScoreAll exactly.
func ScoreAllN(rules []learner.Rule, events []preprocess.TaggedEvent,
	p learner.Params, workers int) []eval.Outcome {

	if max := (len(rules) + minRulesPerWorker - 1) / minRulesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 || len(rules) < serialCutoff {
		return scoreChunk(rules, events, p)
	}
	outcomes := make([]eval.Outcome, len(rules))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(rules) / workers
		hi := (w + 1) * len(rules) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			copy(outcomes[lo:hi], scoreChunk(rules[lo:hi], events, p))
		}(lo, hi)
	}
	wg.Wait()
	return outcomes
}

// ruleState is one rule's in-flight scoring state. Each rule carries at
// most one open warning at a time (triggers during an open window are
// deduplicated, matching the online predictor's counting).
type ruleState struct {
	lastWarn     int64 // ms of the last warning; -1 initially
	openDeadline int64 // ms; -1 when no warning is open
	openStart    int64
	openHit      bool
	tp, fp       int
	captured     int
}

// windowEvent is one entry of the shared sliding window.
type windowEvent struct {
	time  int64
	class int
}

// eventRing is the shared window buffer: a growable ring, so evicting the
// expired prefix moves an index instead of compacting the slice (the old
// append(window[:0], window[cut:]...) was O(window) per event).
type eventRing struct {
	buf     []windowEvent
	head, n int
}

func (r *eventRing) push(e windowEvent) {
	if r.n == len(r.buf) {
		grown := make([]windowEvent, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *eventRing) front() windowEvent { return r.buf[r.head] }

func (r *eventRing) popFront() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

// scoreChunk is the serial single-pass scorer over one rule slice — the
// unit of work ScoreAllN partitions. Per-rule outcomes depend only on the
// rule and the stream, so scoring a slice in isolation yields the same
// numbers the full serial pass would.
func scoreChunk(rules []learner.Rule, events []preprocess.TaggedEvent,
	p learner.Params) []eval.Outcome {

	windowMs := p.Window()
	// Alarm spacing mirrors the runtime predictor: capped at the base
	// 300 s window even when scoring wider prediction windows, so the
	// reviser judges rules under the same counting they will face live.
	dedupMs := windowMs
	if dedupMs > 300_000 {
		dedupMs = 300_000
	}
	states := make([]ruleState, len(rules))
	for i := range states {
		states[i].lastWarn = -1
		states[i].openDeadline = -1
	}

	// maxClass bounds the dense per-class tables below: the catalog plus
	// the unknown-event fallback keep IDs small (≈1200), so slices beat
	// the old map lookups on the hot path.
	maxClass := 0
	for i := range events {
		if events[i].Class > maxClass {
			maxClass = events[i].Class
		}
	}
	for i := range rules {
		for _, class := range rules[i].Body {
			if class > maxClass {
				maxClass = class
			}
		}
	}

	// Rule indexes by family, mirroring the predictor's dispatch. eList
	// maps a body class to the association rules containing it.
	eList := make([][]int, maxClass+1)
	var statRules, distRules []int
	for i, r := range rules {
		switch r.Kind {
		case learner.Association:
			for _, class := range r.Body {
				eList[class] = append(eList[class], i)
			}
		case learner.Statistical:
			statRules = append(statRules, i)
		case learner.Distribution:
			distRules = append(distRules, i)
		}
	}
	sort.Slice(statRules, func(a, b int) bool {
		return rules[statRules[a]].Count < rules[statRules[b]].Count
	})

	// Shared window state: dense per-class occupancy counts plus the ring
	// of resident events.
	classCount := make([]int32, maxClass+1)
	var window eventRing
	var fatalWindow []int64
	lastFatal := int64(-1)
	totalFatals := 0

	open := make([]int, 0, 64) // rule indexes with an open warning

	closeExpired := func(now int64) {
		kept := open[:0]
		for _, idx := range open {
			st := &states[idx]
			if st.openDeadline >= now {
				kept = append(kept, idx)
				continue
			}
			if st.openHit {
				st.tp++
			} else {
				st.fp++
			}
			st.openDeadline = -1
		}
		open = kept
	}

	trigger := func(idx int, now int64) {
		st := &states[idx]
		if st.lastWarn >= 0 && now-st.lastWarn < dedupMs {
			return // deduplicated
		}
		if st.openDeadline >= 0 {
			// A previous warning is still open (possible when the dedup
			// interval is shorter than the window): settle it now and
			// reuse its slot in the open list rather than duplicating it.
			if st.openHit {
				st.tp++
			} else {
				st.fp++
			}
		} else {
			open = append(open, idx)
		}
		st.lastWarn = now
		st.openStart = now
		st.openDeadline = now + windowMs
		st.openHit = false
	}

	for i := range events {
		e := &events[i]
		now := e.Time
		closeExpired(now)

		// Evict the shared window.
		for window.n > 0 && now-window.front().time > windowMs {
			classCount[window.front().class]--
			window.popFront()
		}
		fcut := 0
		for fcut < len(fatalWindow) && now-fatalWindow[fcut] > windowMs {
			fcut++
		}
		if fcut > 0 {
			fatalWindow = append(fatalWindow[:0], fatalWindow[fcut:]...)
		}

		if e.Fatal {
			totalFatals++
			// Credit open warnings that strictly precede this failure.
			for _, idx := range open {
				st := &states[idx]
				// Captured counts every covered fatal; openHit flips the
				// warning to TP once.
				if st.openStart < now && now <= st.openDeadline {
					st.captured++
					st.openHit = true
				}
			}
		}

		// Triggers (after capture crediting, so a warning opened by this
		// event cannot claim it).
		if e.Fatal {
			runLen := len(fatalWindow) + 1
			for _, idx := range statRules {
				if rules[idx].Count <= runLen {
					trigger(idx, now)
				}
			}
		} else {
			for _, idx := range eList[e.Class] {
				rule := &rules[idx]
				matched := true
				for _, class := range rule.Body {
					if class == e.Class {
						continue
					}
					if classCount[class] == 0 {
						matched = false
						break
					}
				}
				if matched {
					trigger(idx, now)
				}
			}
		}
		if lastFatal >= 0 {
			elapsed := (now - lastFatal) / 1000
			for _, idx := range distRules {
				if elapsed > rules[idx].ElapsedSec {
					trigger(idx, now)
				}
			}
		}

		// Admit into the shared window.
		window.push(windowEvent{time: now, class: e.Class})
		classCount[e.Class]++
		if e.Fatal {
			fatalWindow = append(fatalWindow, now)
			lastFatal = now
		}
	}
	closeExpired(math.MaxInt64)

	outcomes := make([]eval.Outcome, len(rules))
	for i := range rules {
		st := &states[i]
		outcomes[i] = eval.Outcome{
			TP:       st.tp,
			FP:       st.fp,
			Captured: st.captured,
			Fatals:   totalFatals,
			FN:       totalFatals - st.captured,
		}
	}
	return outcomes
}
