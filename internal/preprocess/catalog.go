// Package preprocess implements the data-preprocessing half of the
// framework (Figure 1 of the paper): the event categorizer — a hierarchical
// classification of raw RAS records into 10 facility-level categories and
// 219 low-level event types, 69 of them fatal (Table 3) — and the event
// filter, which removes redundant records by temporal compression at a
// single location and spatial compression across locations (Table 4).
package preprocess

import (
	"fmt"

	"repro/internal/raslog"
)

// Class is one low-level event type in the catalog. The pair
// (Facility, Entry) identifies a class; ID is its dense index.
type Class struct {
	ID       int
	Facility raslog.Facility
	Severity raslog.Severity // recorded severity in the log
	Entry    string          // canonical entry-data text
	// Fatal is the *curated* fatal flag: whether the event truly leads to a
	// system/application crash. It usually agrees with Severity.IsFatal(),
	// except for Misleading classes.
	Fatal bool
	// Misleading marks classes whose recorded severity is FATAL/FAILURE but
	// which sysadmins identified as not truly fatal ("fake" fatal events,
	// Oliner & Stearley); the curated list excludes them.
	Misleading bool
}

// facilitySpec describes how many fatal and non-fatal classes a facility
// contributes (the two count columns of Table 3) and seed entry texts.
type facilitySpec struct {
	fac             raslog.Facility
	fatal, nonFatal int
	fatalSeeds      []string
	nonFatalSeeds   []string
	misleadingAmong int // how many of the non-fatal classes carry FATAL severity
}

// table3 reproduces the per-facility class counts of Table 3:
// 69 fatal and 150 non-fatal classes, 219 in total.
var table3 = []facilitySpec{
	{
		fac: raslog.App, fatal: 10, nonFatal: 7,
		fatalSeeds: []string{
			"load program failure", "function call failure",
			"application segmentation fault", "assertion failure in application",
			"mpi abort called", "application signal kill",
		},
		nonFatalSeeds: []string{
			"application start info", "application exit info",
			"stdout stream attached", "job step begin",
		},
	},
	{
		fac: raslog.BGLMaster, fatal: 2, nonFatal: 2,
		fatalSeeds:    []string{"bglmaster segmentation failure", "bglmaster crashed"},
		nonFatalSeeds: []string{"bglmaster restart info", "bglmaster heartbeat info"},
	},
	{
		fac: raslog.CMCS, fatal: 0, nonFatal: 4,
		nonFatalSeeds: []string{
			"cmcs command info", "cmcs exit info",
			"cmcs polling agent started", "cmcs db connection info",
		},
	},
	{
		fac: raslog.Discovery, fatal: 0, nonFatal: 24,
		nonFatalSeeds: []string{
			"nodecard communication warning", "servicecard read error",
			"nodecard vpd read warning", "linkcard presence warning",
			"clock card status warning", "fanmodule discovery warning",
		},
	},
	{
		fac: raslog.Hardware, fatal: 1, nonFatal: 12,
		fatalSeeds: []string{"midplane power module failure"},
		nonFatalSeeds: []string{
			"midplane service warning", "bulk power supply warning",
			"fan speed out of range", "temperature sensor warning",
		},
	},
	{
		fac: raslog.Kernel, fatal: 46, nonFatal: 90, misleadingAmong: 6,
		fatalSeeds: []string{
			"broadcast failure", "cache failure", "cpu failure",
			"node map file error", "uncorrectable torus error",
			"uncorrectable error detected in edram bank",
			"communication failure socket closed", "kernel panic",
			"data tlb error interrupt", "instruction cache parity error",
			"double hummer alignment exception", "floating point unavailable interrupt",
			"l3 ecc uncorrectable error", "memory parity error",
			"torus sender fifo parity error", "machine check dcr read timeout",
			"data storage interrupt", "external input interrupt lockup",
			"rts tree reception failure", "rts torus reception failure",
		},
		nonFatalSeeds: []string{
			"ddr correctable error summary", "machine check info",
			"ciod message ignored", "tree receiver correctable info",
			"instruction address breakpoint info", "l1 cache correctable scrub",
			"ido packet warning", "rts heartbeat info",
		},
	},
	{
		fac: raslog.LinkCard, fatal: 1, nonFatal: 0,
		fatalSeeds: []string{"linkcard failure"},
	},
	{
		fac: raslog.MMCS, fatal: 0, nonFatal: 5,
		nonFatalSeeds: []string{
			"control network mmcs error", "mmcs idle info",
			"mmcs boot block info", "mmcs command trace",
		},
	},
	{
		fac: raslog.Monitor, fatal: 9, nonFatal: 5, misleadingAmong: 2,
		fatalSeeds: []string{
			"node card temperature error", "service card power failure",
			"clock card failure", "fan module failure",
		},
		nonFatalSeeds: []string{
			"node card status info", "temperature reading info",
		},
	},
	{
		fac: raslog.ServNet, fatal: 0, nonFatal: 1,
		nonFatalSeeds: []string{"system operation error"},
	},
}

// Catalog is the complete set of event classes for a system. Build one
// with NewCatalog; it is immutable and safe for concurrent use thereafter.
type Catalog struct {
	classes []Class
	byKey   map[catKey]int
}

type catKey struct {
	fac   raslog.Facility
	entry string
}

// NewCatalog builds the standard Blue Gene/L catalog, reproducing the class
// counts of Table 3 (69 fatal, 150 non-fatal, 219 total). Seed entry texts
// are drawn from the paper's examples; the remainder are generated
// deterministically.
func NewCatalog() *Catalog {
	c := &Catalog{byKey: make(map[catKey]int, 256)}
	for _, spec := range table3 {
		// Fatal classes: alternate FATAL and FAILURE severities.
		for i, entry := range expandEntries(spec.fatalSeeds, spec.fatal, spec.fac, true) {
			sev := raslog.Fatal
			if i%2 == 1 {
				sev = raslog.Failure
			}
			c.add(Class{Facility: spec.fac, Severity: sev, Entry: entry, Fatal: true})
		}
		// Non-fatal classes: cycle the informational severities; the last
		// misleadingAmong of them carry a (false) FATAL severity.
		nonFatalSevs := []raslog.Severity{raslog.Info, raslog.Warning, raslog.Severe, raslog.Error}
		for i, entry := range expandEntries(spec.nonFatalSeeds, spec.nonFatal, spec.fac, false) {
			cl := Class{Facility: spec.fac, Entry: entry, Fatal: false}
			if i >= spec.nonFatal-spec.misleadingAmong {
				cl.Severity = raslog.Fatal
				cl.Misleading = true
			} else {
				cl.Severity = nonFatalSevs[i%len(nonFatalSevs)]
			}
			c.add(cl)
		}
	}
	return c
}

// expandEntries returns exactly n distinct entry texts for a facility,
// using the seeds first and generating the rest deterministically.
func expandEntries(seeds []string, n int, fac raslog.Facility, fatal bool) []string {
	out := make([]string, 0, n)
	for i := 0; i < n && i < len(seeds); i++ {
		out = append(out, seeds[i])
	}
	kind := "status condition"
	if fatal {
		kind = "failure condition"
	}
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("%s %s %02d",
			lower(fac.String()), kind, i-len(seeds)+1))
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if 'A' <= ch && ch <= 'Z' {
			b[i] = ch - 'A' + 'a'
		}
	}
	return string(b)
}

func (c *Catalog) add(cl Class) {
	cl.ID = len(c.classes)
	key := catKey{cl.Facility, cl.Entry}
	if _, dup := c.byKey[key]; dup {
		panic(fmt.Sprintf("preprocess: duplicate catalog entry %v %q", cl.Facility, cl.Entry))
	}
	c.byKey[key] = cl.ID
	c.classes = append(c.classes, cl)
}

// Len returns the number of classes (219 for the standard catalog).
func (c *Catalog) Len() int { return len(c.classes) }

// Class returns the class with the given dense ID. It panics on an
// out-of-range ID; use Lookup for fallible queries.
func (c *Catalog) Class(id int) Class { return c.classes[id] }

// Classes returns all classes in ID order. The slice is shared; treat it
// as read-only.
func (c *Catalog) Classes() []Class { return c.classes }

// Lookup finds the class for a (facility, entry-data) pair.
func (c *Catalog) Lookup(fac raslog.Facility, entry string) (Class, bool) {
	id, ok := c.byKey[catKey{fac, entry}]
	if !ok {
		return Class{}, false
	}
	return c.classes[id], true
}

// FatalIDs returns the IDs of all curated-fatal classes (69 in the
// standard catalog).
func (c *Catalog) FatalIDs() []int {
	var ids []int
	for _, cl := range c.classes {
		if cl.Fatal {
			ids = append(ids, cl.ID)
		}
	}
	return ids
}

// NonFatalIDs returns the IDs of all curated-non-fatal classes.
func (c *Catalog) NonFatalIDs() []int {
	var ids []int
	for _, cl := range c.classes {
		if !cl.Fatal {
			ids = append(ids, cl.ID)
		}
	}
	return ids
}

// FacilityCounts is one row of Table 3.
type FacilityCounts struct {
	Facility raslog.Facility
	Fatal    int
	NonFatal int
}

// CountsByFacility returns the Table 3 rows in facility order.
func (c *Catalog) CountsByFacility() []FacilityCounts {
	rows := make([]FacilityCounts, raslog.NumFacilities)
	for i := range rows {
		rows[i].Facility = raslog.Facility(i)
	}
	for _, cl := range c.classes {
		if cl.Fatal {
			rows[cl.Facility].Fatal++
		} else {
			rows[cl.Facility].NonFatal++
		}
	}
	return rows
}
