package preprocess_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bgsim"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// oracleApply is an independent two-pass reference implementation of the
// paper's filter (§3.2): temporal compression over the whole log, then
// spatial compression over the temporal survivors. The production batch
// and incremental filters are both checked byte-identical against it.
func oracleApply(l *raslog.Log, f preprocess.Filter) *raslog.Log {
	if f.Threshold <= 0 {
		return l.Clone()
	}
	thresholdMs := f.Threshold * 1000

	type tempKey struct {
		loc   string
		jobID int64
		entry string
	}
	temporal := raslog.NewLog(l.Name, 0)
	lastTemp := make(map[tempKey]int64)
	for _, e := range l.Events {
		k := tempKey{e.Location, e.JobID, e.Entry}
		if last, seen := lastTemp[k]; seen && e.Time-last <= thresholdMs {
			if f.Sliding {
				lastTemp[k] = e.Time
			}
			continue
		}
		lastTemp[k] = e.Time
		temporal.Append(e)
	}

	type spatKey struct {
		jobID int64
		entry string
	}
	type spatState struct {
		time int64
		loc  string
	}
	out := raslog.NewLog(l.Name, 0)
	lastSpat := make(map[spatKey]spatState)
	for _, e := range temporal.Events {
		k := spatKey{e.JobID, e.Entry}
		if st, seen := lastSpat[k]; seen && e.Time-st.time <= thresholdMs && st.loc != e.Location {
			if f.Sliding {
				lastSpat[k] = spatState{e.Time, st.loc}
			}
			continue
		}
		lastSpat[k] = spatState{e.Time, e.Location}
		out.Append(e)
	}
	return out
}

// incrementalApply feeds a sorted log through the streaming filter one
// event at a time.
func incrementalApply(l *raslog.Log, f preprocess.Filter) (*raslog.Log, preprocess.FilterStats) {
	inc := f.Incremental()
	out := raslog.NewLog(l.Name, 0)
	for _, e := range l.Events {
		if inc.Observe(e) {
			out.Append(e)
		}
	}
	return out, inc.Stats()
}

func encode(t *testing.T, l *raslog.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := raslog.WriteLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkEquivalence(t *testing.T, l *raslog.Log, f preprocess.Filter) {
	t.Helper()
	want := encode(t, oracleApply(l, f))
	batch, batchStats := f.Apply(l)
	if got := encode(t, batch); !bytes.Equal(got, want) {
		t.Errorf("filter %+v: batch output differs from two-pass oracle (%d vs %d bytes)",
			f, len(got), len(want))
	}
	incr, incrStats := incrementalApply(l, f)
	if got := encode(t, incr); !bytes.Equal(got, want) {
		t.Errorf("filter %+v: incremental output differs from two-pass oracle (%d vs %d bytes)",
			f, len(got), len(want))
	}
	if batchStats != incrStats {
		t.Errorf("filter %+v: stats diverge: batch %+v, incremental %+v", f, batchStats, incrStats)
	}
}

// TestIncrementalEquivalenceBgsim is the property test of the streaming
// filter: on sorted bgsim logs across seeds, the incremental and batch
// filters must produce byte-identical output (both pinned to an
// independent two-pass oracle).
func TestIncrementalEquivalenceBgsim(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := bgsim.SDSC(seed).Scaled(8, 0.05)
			g, err := bgsim.NewGenerator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			l, err := g.Generate()
			if err != nil {
				t.Fatal(err)
			}
			l.SortByTime()
			for _, f := range []preprocess.Filter{
				{Threshold: 0},
				{Threshold: 60},
				{Threshold: 300},
				{Threshold: 300, Sliding: true},
			} {
				checkEquivalence(t, l, f)
			}
		})
	}
}

// TestIncrementalEquivalenceRandom drives the same property on adversarial
// random logs: tiny key spaces and dense duplicate timestamps, where
// temporal and spatial interactions are most intricate.
func TestIncrementalEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := raslog.NewLog("rand", 0)
		timeMs := int64(0)
		for i := 0; i < 3000; i++ {
			timeMs += int64(rng.Intn(200_000)) // 0–200 s steps, many ties
			l.Append(raslog.Event{
				RecordID: int64(i),
				Time:     timeMs,
				Location: fmt.Sprintf("R%d", rng.Intn(6)),
				JobID:    int64(rng.Intn(4)),
				Entry:    fmt.Sprintf("e%d", rng.Intn(8)),
				Facility: raslog.Kernel,
				Severity: raslog.Info,
			})
		}
		for _, f := range []preprocess.Filter{
			{Threshold: 300},
			{Threshold: 300, Sliding: true},
			{Threshold: 1},
		} {
			checkEquivalence(t, l, f)
		}
	}
}

// TestIncrementalBoundedState checks the eviction sweep: streaming an
// unbounded sequence of one-shot keys must not accumulate unbounded
// filter state.
func TestIncrementalBoundedState(t *testing.T) {
	inc := preprocess.Filter{Threshold: 300}.Incremental()
	timeMs := int64(0)
	for i := 0; i < 200_000; i++ {
		timeMs += 1000 // 1 s apart: each key stale 300 s later
		inc.Observe(raslog.Event{
			Time:     timeMs,
			Location: fmt.Sprintf("L%d", i), // never repeats
			JobID:    int64(i),
			Entry:    "once",
			Facility: raslog.Kernel,
			Severity: raslog.Info,
		})
	}
	// Live keys within one 300 s window: ~300 per stage. The sweep runs
	// every 8192 observations, so resident keys must stay well under
	// 2*(300 + 8192) regardless of the 200k distinct keys streamed.
	if got := inc.ResidentKeys(); got > 17_500 {
		t.Fatalf("resident keys = %d after 200k one-shot keys; eviction not bounding state", got)
	}
}
