package preprocess

import (
	"repro/internal/raslog"
)

// FilterStats reports how many events each compression stage kept.
type FilterStats struct {
	Input         int
	AfterTemporal int
	AfterSpatial  int
}

// Removed returns the total number of events removed.
func (s FilterStats) Removed() int { return s.Input - s.AfterSpatial }

// CompressionRate returns the fraction of events removed, in [0, 1].
func (s FilterStats) CompressionRate() float64 {
	if s.Input == 0 {
		return 0
	}
	return float64(s.Removed()) / float64(s.Input)
}

// Filter removes duplicated or redundant log entries with threshold-based
// temporal and spatial compression (paper §3.2):
//
//   - Temporal compression at a single location: events from the same
//     location with identical Job ID (and the same entry data) reported
//     within Threshold of each other are coalesced into a single entry.
//   - Spatial compression across locations: entries close in time with the
//     same Entry Data and Job ID but from different locations are removed.
//
// Threshold is in seconds; the paper settles on 300 s, which achieves
// above 98 % compression on the production logs.
type Filter struct {
	// Threshold is the coalescing window in seconds. Zero disables both
	// compressions (the log passes through unchanged).
	Threshold int64
	// Sliding, when true, restarts the coalescing window at every dropped
	// duplicate ("sliding tupling") instead of anchoring it at the last
	// kept event. Anchored windows (the default) bound how long a
	// continuously-repeating event can be suppressed.
	Sliding bool
}

// Apply filters a time-sorted log and returns the compressed log (a new
// Log; the input is unmodified) together with per-stage statistics. It is
// the batch form of the streaming filter in incremental.go: both feed the
// same temporal and spatial stages, so batch and incremental output are
// identical on the same sorted input.
func (f Filter) Apply(l *raslog.Log) (*raslog.Log, FilterStats) {
	if f.Threshold <= 0 {
		out := l.Clone()
		return out, FilterStats{Input: l.Len(), AfterTemporal: l.Len(), AfterSpatial: l.Len()}
	}
	inc := f.Incremental()
	out := raslog.NewLog(l.Name, l.Len()/4)
	for _, e := range l.Events {
		if inc.Observe(e) {
			out.Append(e)
		}
	}
	return out, inc.Stats()
}

// ThresholdSweep runs the filter at each threshold (seconds) and returns
// the per-facility surviving event counts, one row per facility, one
// column per threshold — the layout of Table 4.
func ThresholdSweep(l *raslog.Log, thresholds []int64) [][]int {
	rows := make([][]int, raslog.NumFacilities)
	for i := range rows {
		rows[i] = make([]int, len(thresholds))
	}
	for j, th := range thresholds {
		filtered, _ := Filter{Threshold: th}.Apply(l)
		for _, e := range filtered.Events {
			rows[e.Facility][j]++
		}
	}
	return rows
}

// ChooseThreshold implements the paper's iterative threshold search: start
// small and grow the threshold until the compression rate stops changing
// significantly (relative improvement below epsilon), then return the
// first such threshold. The candidates must be in increasing order.
func ChooseThreshold(l *raslog.Log, candidates []int64, epsilon float64) (chosen int64, rates []float64) {
	rates = make([]float64, len(candidates))
	for i, th := range candidates {
		_, st := Filter{Threshold: th}.Apply(l)
		rates[i] = st.CompressionRate()
		if i > 0 {
			prev := rates[i-1]
			if prev > 0 && (rates[i]-prev)/prev < epsilon {
				return candidates[i-1], rates[:i+1]
			}
		}
	}
	if len(candidates) == 0 {
		return 0, rates
	}
	return candidates[len(candidates)-1], rates
}
