package preprocess

import (
	"repro/internal/raslog"
)

// This file is the streaming re-formulation of the batch Filter: the same
// temporal and spatial compressions (§3.2), consuming one event at a time
// with bounded per-key state. Both compressions are single-pass and
// in-order, so feeding a time-sorted stream through TemporalStage followed
// by SpatialStage produces exactly the batch Filter.Apply output — the
// batch form is in fact implemented on top of these stages, and the
// property tests in incremental_test.go pin both against an independent
// two-pass oracle.
//
// State growth is bounded by lazy eviction: a key whose last-kept (or
// last-seen, under Sliding) timestamp has fallen more than Threshold
// behind the stream can never suppress a future event, so stale keys are
// swept periodically. Resident state is therefore proportional to the
// number of distinct (location, job, entry) keys active within one
// threshold window, not to the length of the stream.

// sweepInterval is how many observations pass between eviction sweeps.
// A sweep is O(live keys), so amortized cost per event is O(live/interval).
const sweepInterval = 8192

// TemporalStage performs streaming temporal compression at a single
// location: an event is dropped when the same (location, job, entry) key
// was kept (or, under Sliding, seen) within Threshold. Events of one
// location must all pass through the same stage instance; different
// locations may be partitioned across instances (see internal/stream's
// per-location shards).
type TemporalStage struct {
	thresholdMs int64
	sliding     bool
	// syms interns the key strings once; last then keys on a pointer-free
	// struct the GC never scans (see symTable).
	syms       *symTable
	last       map[tempIKey]int64
	sinceSweep int
}

// tempIKey is the interned form of the temporal key
// (location, job, entry).
type tempIKey struct {
	loc   uint32
	entry uint32
	jobID int64
}

// NewTemporalStage returns a streaming temporal compressor with the
// filter's semantics. Threshold <= 0 disables compression.
func NewTemporalStage(f Filter) *TemporalStage {
	return &TemporalStage{
		thresholdMs: f.Threshold * 1000,
		sliding:     f.Sliding,
		syms:        newSymTable(),
		last:        make(map[tempIKey]int64, 256),
	}
}

// Observe reports whether e survives temporal compression. Events must
// arrive in nondecreasing time order per location.
func (t *TemporalStage) Observe(e raslog.Event) bool {
	if t.thresholdMs <= 0 {
		return true
	}
	t.maybeSweep(e.Time)
	k := tempIKey{loc: t.syms.id(e.Location), entry: t.syms.id(e.Entry), jobID: e.JobID}
	if last, seen := t.last[k]; seen && e.Time-last <= t.thresholdMs {
		if t.sliding {
			t.last[k] = e.Time
		}
		return false
	}
	t.last[k] = e.Time
	return true
}

// Len returns the number of resident keys (for stats and tests).
func (t *TemporalStage) Len() int { return len(t.last) }

func (t *TemporalStage) maybeSweep(now int64) {
	t.sinceSweep++
	if t.sinceSweep < sweepInterval {
		return
	}
	t.sinceSweep = 0
	for k, last := range t.last {
		if now-last > t.thresholdMs {
			delete(t.last, k)
		}
	}
}

// SpatialStage performs streaming spatial compression across locations:
// an event is dropped when an event with the same (job, entry) from a
// *different* location was kept (or, under Sliding, seen) within
// Threshold. Its state is global, so exactly one instance must see the
// merged, time-ordered survivor stream of the temporal stage.
type SpatialStage struct {
	thresholdMs int64
	sliding     bool
	syms        *symTable
	last        map[spatIKey]spatState
	sinceSweep  int
}

// spatIKey is the interned form of the spatial key (job, entry).
type spatIKey struct {
	entry uint32
	jobID int64
}

type spatState struct {
	time int64
	loc  uint32
}

// NewSpatialStage returns a streaming spatial compressor with the filter's
// semantics. Threshold <= 0 disables compression.
func NewSpatialStage(f Filter) *SpatialStage {
	return &SpatialStage{
		thresholdMs: f.Threshold * 1000,
		sliding:     f.Sliding,
		syms:        newSymTable(),
		last:        make(map[spatIKey]spatState, 256),
	}
}

// Observe reports whether e survives spatial compression. Events must
// arrive in nondecreasing time order.
func (s *SpatialStage) Observe(e raslog.Event) bool {
	if s.thresholdMs <= 0 {
		return true
	}
	s.maybeSweep(e.Time)
	k := spatIKey{entry: s.syms.id(e.Entry), jobID: e.JobID}
	loc := s.syms.id(e.Location)
	if st, seen := s.last[k]; seen && e.Time-st.time <= s.thresholdMs && st.loc != loc {
		if s.sliding {
			s.last[k] = spatState{e.Time, st.loc}
		}
		return false
	}
	s.last[k] = spatState{e.Time, loc}
	return true
}

// Len returns the number of resident keys (for stats and tests).
func (s *SpatialStage) Len() int { return len(s.last) }

func (s *SpatialStage) maybeSweep(now int64) {
	s.sinceSweep++
	if s.sinceSweep < sweepInterval {
		return
	}
	s.sinceSweep = 0
	for k, st := range s.last {
		if now-st.time > s.thresholdMs {
			delete(s.last, k)
		}
	}
}

// IncrementalFilter chains the two stages into a one-event-at-a-time form
// of Filter.Apply, with running FilterStats.
type IncrementalFilter struct {
	temporal *TemporalStage
	spatial  *SpatialStage
	stats    FilterStats
}

// Incremental returns a streaming filter with f's semantics.
func (f Filter) Incremental() *IncrementalFilter {
	return &IncrementalFilter{
		temporal: NewTemporalStage(f),
		spatial:  NewSpatialStage(f),
	}
}

// Observe feeds one event (time-sorted stream) and reports whether it
// survives both compressions.
func (inc *IncrementalFilter) Observe(e raslog.Event) bool {
	inc.stats.Input++
	if !inc.temporal.Observe(e) {
		return false
	}
	inc.stats.AfterTemporal++
	if !inc.spatial.Observe(e) {
		return false
	}
	inc.stats.AfterSpatial++
	return true
}

// Stats returns the per-stage counts so far.
func (inc *IncrementalFilter) Stats() FilterStats { return inc.stats }

// ResidentKeys returns the total keys held across both stages.
func (inc *IncrementalFilter) ResidentKeys() int {
	return inc.temporal.Len() + inc.spatial.Len()
}
