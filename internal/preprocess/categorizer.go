package preprocess

import "repro/internal/raslog"

// TaggedEvent is a RAS event annotated with its catalog class and curated
// fatal flag. It is the unit of data consumed by the learners and the
// predictor: downstream code keys on Class rather than raw entry text.
type TaggedEvent struct {
	raslog.Event
	Class int  // catalog class ID (or an unknownBase-derived ID)
	Fatal bool // curated fatal flag
}

// unknownBase is the first class ID used for events whose (facility, entry)
// pair is not in the catalog. Unknown events of a facility/severity pair
// share one synthetic class so the learners can still reason about them.
const unknownBase = 1000

// Categorizer maps raw RAS events to catalog classes and applies the
// curated fatal list. It implements the "event categorizer" box of
// Figure 1. A Categorizer is safe for concurrent use.
type Categorizer struct {
	cat *Catalog
	// TrustSeverity, when true, skips the curated list and trusts the
	// recorded severity (useful to quantify the value of curation).
	TrustSeverity bool
}

// NewCategorizer returns a categorizer over the given catalog.
func NewCategorizer(cat *Catalog) *Categorizer {
	return &Categorizer{cat: cat}
}

// Catalog returns the underlying catalog.
func (z *Categorizer) Catalog() *Catalog { return z.cat }

// Categorize returns the class ID and curated fatal flag of e. Events not
// present in the catalog fall back to a synthetic per-(facility, severity)
// class and to the recorded severity's fatality.
func (z *Categorizer) Categorize(e raslog.Event) (class int, fatal bool) {
	if cl, ok := z.cat.Lookup(e.Facility, e.Entry); ok {
		if z.TrustSeverity {
			return cl.ID, cl.Severity.IsFatal()
		}
		return cl.ID, cl.Fatal
	}
	class = unknownBase + int(e.Facility)*16 + int(e.Severity)
	return class, e.Severity.IsFatal()
}

// IsUnknown reports whether a class ID came from the unknown-event
// fallback rather than the catalog.
func IsUnknown(class int) bool { return class >= unknownBase }

// Tag categorizes every event of a (sorted) log.
func (z *Categorizer) Tag(l *raslog.Log) []TaggedEvent {
	out := make([]TaggedEvent, len(l.Events))
	for i, e := range l.Events {
		class, fatal := z.Categorize(e)
		out[i] = TaggedEvent{Event: e, Class: class, Fatal: fatal}
	}
	return out
}

// FatalCount returns the number of curated-fatal events in the tagged
// stream.
func FatalCount(events []TaggedEvent) int {
	n := 0
	for i := range events {
		if events[i].Fatal {
			n++
		}
	}
	return n
}

// SplitFatal partitions a tagged stream into fatal and non-fatal events,
// preserving order.
func SplitFatal(events []TaggedEvent) (fatal, nonFatal []TaggedEvent) {
	for _, e := range events {
		if e.Fatal {
			fatal = append(fatal, e)
		} else {
			nonFatal = append(nonFatal, e)
		}
	}
	return fatal, nonFatal
}
