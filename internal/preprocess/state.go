package preprocess

import (
	"sort"

	"repro/internal/raslog"
)

// Export/Restore turn the streaming filter stages' resident key state
// into plain rows and back, for the durable snapshots of internal/persist.
// Rows are sorted so identical stage state always serializes identically.
//
// Record is the third piece: it lets a second TemporalStage mirror one or
// more live stages by replaying their (event, kept) decisions instead of
// re-deciding. The temporal key includes the location and the stream
// shards partition by location, so the union of the shards' states *is*
// one global stage's state — the mirror reproduces it exactly (modulo
// sweep timing, which never changes a decision), and a restored mirror
// can be split back across shards.

// TemporalEntry is one resident key of a TemporalStage.
type TemporalEntry struct {
	Location string `json:"loc"`
	JobID    int64  `json:"job"`
	Entry    string `json:"entry"`
	// LastMs is the key's anchor timestamp: last kept event, or last seen
	// under Sliding.
	LastMs int64 `json:"last_ms"`
}

// Export returns the stage's resident keys, sorted. Interned IDs are
// resolved back to strings: the snapshot wire format predates interning
// and is unchanged (IDs are private to one stage instance).
func (t *TemporalStage) Export() []TemporalEntry {
	out := make([]TemporalEntry, 0, len(t.last))
	for k, last := range t.last {
		out = append(out, TemporalEntry{Location: t.syms.str(k.loc), JobID: k.jobID, Entry: t.syms.str(k.entry), LastMs: last})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Location != b.Location {
			return a.Location < b.Location
		}
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		return a.Entry < b.Entry
	})
	return out
}

// Restore replaces the stage's resident keys with rows (typically a
// filtered subset of an Export), re-interning the row strings into this
// stage's symbol table.
func (t *TemporalStage) Restore(rows []TemporalEntry) {
	t.last = make(map[tempIKey]int64, len(rows))
	for _, r := range rows {
		t.last[tempIKey{loc: t.syms.id(r.Location), entry: t.syms.id(r.Entry), jobID: r.JobID}] = r.LastMs
	}
	t.sinceSweep = 0
}

// Record applies the outcome of another stage's Observe(e) == kept
// decision without re-deciding, keeping this stage's state identical to
// the decider's (see the file comment). No-op when compression is off.
func (t *TemporalStage) Record(e raslog.Event, kept bool) {
	if t.thresholdMs <= 0 {
		return
	}
	t.maybeSweep(e.Time)
	// Observe re-anchors the key when it keeps the event, and also when it
	// drops one under Sliding; an anchored (non-sliding) drop leaves the
	// key untouched.
	if kept || t.sliding {
		t.last[tempIKey{loc: t.syms.id(e.Location), entry: t.syms.id(e.Entry), jobID: e.JobID}] = e.Time
	}
}

// SpatialEntry is one resident key of a SpatialStage.
type SpatialEntry struct {
	JobID int64  `json:"job"`
	Entry string `json:"entry"`
	// Location is the key's anchoring location; LastMs its timestamp.
	Location string `json:"loc"`
	LastMs   int64  `json:"last_ms"`
}

// Export returns the stage's resident keys, sorted.
func (s *SpatialStage) Export() []SpatialEntry {
	out := make([]SpatialEntry, 0, len(s.last))
	for k, st := range s.last {
		out = append(out, SpatialEntry{JobID: k.jobID, Entry: s.syms.str(k.entry), Location: s.syms.str(st.loc), LastMs: st.time})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		return a.Entry < b.Entry
	})
	return out
}

// Restore replaces the stage's resident keys with rows, re-interning
// the row strings into this stage's symbol table.
func (s *SpatialStage) Restore(rows []SpatialEntry) {
	s.last = make(map[spatIKey]spatState, len(rows))
	for _, r := range rows {
		s.last[spatIKey{entry: s.syms.id(r.Entry), jobID: r.JobID}] = spatState{time: r.LastMs, loc: s.syms.id(r.Location)}
	}
	s.sinceSweep = 0
}
