package preprocess

import (
	"testing"

	"repro/internal/raslog"
)

// TestStageObserveAllocBudget pins the filter stages' steady-state cost:
// once a key's vocabulary is interned, Observe must not allocate (the
// int-keyed tables update in place; map growth is amortized away by the
// warm-up pass).
func TestStageObserveAllocBudget(t *testing.T) {
	f := Filter{Threshold: 300}
	temporal := NewTemporalStage(f)
	spatial := NewSpatialStage(f)
	events := []raslog.Event{
		{Time: 0, JobID: 7, Location: "R01-M0-N4", Entry: "ddr error"},
		{Time: 0, JobID: 7, Location: "R01-M0-N5", Entry: "ddr error"},
		{Time: 0, JobID: 3, Location: "R02-M1-N0", Entry: "link fault"},
	}
	for _, e := range events { // warm: intern the vocabulary, insert the keys
		temporal.Observe(e)
		spatial.Observe(e)
	}
	now := int64(1000)
	allocs := testing.AllocsPerRun(1000, func() {
		for i := range events {
			e := events[i]
			e.Time = now
			temporal.Observe(e)
			spatial.Observe(e)
		}
		now += 1000
	})
	if allocs != 0 {
		t.Fatalf("stage Observe allocates %.1f times per round, want 0", allocs)
	}
}

// TestStageExportRoundTripInterned pins that Export resolves interned IDs
// back to the original strings and Restore re-interns them, across a
// fresh stage (the recovery path: IDs are never persisted).
func TestStageExportRoundTripInterned(t *testing.T) {
	f := Filter{Threshold: 300, Sliding: true}
	temporal := NewTemporalStage(f)
	spatial := NewSpatialStage(f)
	events := []raslog.Event{
		{Time: 10, JobID: 7, Location: "R01-M0-N4", Entry: "ddr error"},
		{Time: 20, JobID: 7, Location: "R01-M0-N5", Entry: "ddr error"},
		{Time: 30, JobID: 3, Location: "R02-M1-N0", Entry: "link fault"},
		{Time: 400000, JobID: 3, Location: "R02-M1-N0", Entry: "link fault"},
	}
	for _, e := range events {
		if temporal.Observe(e) {
			spatial.Observe(e)
		}
	}
	t2 := NewTemporalStage(f)
	t2.Restore(temporal.Export())
	s2 := NewSpatialStage(f)
	s2.Restore(spatial.Export())

	probe := raslog.Event{Time: 400100, JobID: 3, Location: "R02-M1-N1", Entry: "link fault"}
	if got, want := t2.Observe(probe), temporal.Observe(probe); got != want {
		t.Fatalf("restored temporal stage decided %v, original %v", got, want)
	}
	if got, want := s2.Observe(probe), spatial.Observe(probe); got != want {
		t.Fatalf("restored spatial stage decided %v, original %v", got, want)
	}
}
