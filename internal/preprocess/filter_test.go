package preprocess

import (
	"testing"
	"testing/quick"

	"repro/internal/raslog"
	"repro/internal/stats"
)

func ev(t int64, loc string, job int64, entry string) raslog.Event {
	return raslog.Event{Time: t * 1000, Location: loc, JobID: job, Entry: entry,
		Facility: raslog.Kernel, Severity: raslog.Info}
}

func logOf(events ...raslog.Event) *raslog.Log {
	l := raslog.NewLog("f", len(events))
	for i, e := range events {
		e.RecordID = int64(i)
		l.Append(e)
	}
	l.SortByTime()
	return l
}

func TestTemporalCompression(t *testing.T) {
	// Same location, job, entry within 300 s: coalesced to one.
	l := logOf(
		ev(0, "L1", 1, "x"),
		ev(100, "L1", 1, "x"),
		ev(200, "L1", 1, "x"),
		ev(1000, "L1", 1, "x"), // beyond threshold of the first kept event
	)
	out, st := Filter{Threshold: 300}.Apply(l)
	if out.Len() != 2 {
		t.Fatalf("kept %d events, want 2", out.Len())
	}
	if st.AfterTemporal != 2 || st.Input != 4 {
		t.Errorf("stats = %+v", st)
	}
	if out.Events[0].Seconds() != 0 || out.Events[1].Seconds() != 1000 {
		t.Errorf("kept wrong representatives: %v", out.Events)
	}
}

func TestTemporalKeysDistinguish(t *testing.T) {
	// Different job, different location, or different entry: all kept.
	l := logOf(
		ev(0, "L1", 1, "x"),
		ev(1, "L1", 2, "x"), // different job
		ev(2, "L2", 1, "y"), // different location AND entry (avoid spatial match)
		ev(3, "L1", 1, "z"), // different entry
	)
	out, _ := Filter{Threshold: 300}.Apply(l)
	if out.Len() != 4 {
		t.Fatalf("kept %d events, want 4 (keys must distinguish)", out.Len())
	}
}

func TestSpatialCompression(t *testing.T) {
	// Same entry and job from different locations within threshold: removed.
	l := logOf(
		ev(0, "L1", 1, "x"),
		ev(10, "L2", 1, "x"),
		ev(20, "L3", 1, "x"),
		ev(1000, "L4", 1, "x"), // outside window: kept
	)
	out, st := Filter{Threshold: 300}.Apply(l)
	if out.Len() != 2 {
		t.Fatalf("kept %d events, want 2", out.Len())
	}
	if st.AfterTemporal != 4 {
		t.Errorf("temporal stage should keep all 4, got %d", st.AfterTemporal)
	}
	if out.Events[0].Location != "L1" || out.Events[1].Location != "L4" {
		t.Errorf("kept wrong events: %v", out.Events)
	}
}

func TestSpatialDifferentJobsKept(t *testing.T) {
	l := logOf(
		ev(0, "L1", 1, "x"),
		ev(10, "L2", 2, "x"), // different job: kept
	)
	out, _ := Filter{Threshold: 300}.Apply(l)
	if out.Len() != 2 {
		t.Fatalf("kept %d events, want 2", out.Len())
	}
}

func TestZeroThresholdPassthrough(t *testing.T) {
	l := logOf(ev(0, "L1", 1, "x"), ev(0, "L1", 1, "x"))
	out, st := Filter{Threshold: 0}.Apply(l)
	if out.Len() != 2 || st.Removed() != 0 {
		t.Errorf("zero threshold modified the log: %+v", st)
	}
	// Output must be a copy, not an alias.
	out.Events[0].Entry = "mutated"
	if l.Events[0].Entry == "mutated" {
		t.Error("passthrough shares storage with input")
	}
}

func TestSlidingVsAnchoredWindows(t *testing.T) {
	// Events every 200 s with a 300 s threshold: an anchored window keeps
	// every other event; a sliding window suppresses everything after the
	// first for as long as the stream continues.
	events := make([]raslog.Event, 0, 10)
	for i := int64(0); i < 10; i++ {
		events = append(events, ev(i*200, "L1", 1, "x"))
	}
	l := logOf(events...)
	anchored, _ := Filter{Threshold: 300}.Apply(l)
	sliding, _ := Filter{Threshold: 300, Sliding: true}.Apply(l)
	if anchored.Len() != 5 {
		t.Errorf("anchored kept %d, want 5", anchored.Len())
	}
	if sliding.Len() != 1 {
		t.Errorf("sliding kept %d, want 1", sliding.Len())
	}
}

func TestFilterMonotoneInThreshold(t *testing.T) {
	// Property: a larger threshold never keeps more events.
	r := stats.NewRNG(77)
	events := make([]raslog.Event, 500)
	locs := []string{"L1", "L2", "L3"}
	entries := []string{"a", "b"}
	for i := range events {
		events[i] = ev(r.Int63n(5000), locs[r.Intn(3)], r.Int63n(3), entries[r.Intn(2)])
	}
	l := logOf(events...)
	prev := l.Len() + 1
	for _, th := range []int64{0, 10, 60, 120, 200, 300, 400} {
		out, _ := Filter{Threshold: th}.Apply(l)
		if out.Len() > prev {
			t.Fatalf("threshold %d kept %d > previous %d", th, out.Len(), prev)
		}
		prev = out.Len()
	}
}

func TestFilterOutputSortedAndSubset(t *testing.T) {
	r := stats.NewRNG(78)
	f := func(seed uint32) bool {
		rr := stats.NewRNG(uint64(seed) ^ r.Uint64())
		events := make([]raslog.Event, 100)
		for i := range events {
			events[i] = ev(rr.Int63n(2000), "L", rr.Int63n(2), "x")
		}
		l := logOf(events...)
		out, st := Filter{Threshold: 100}.Apply(l)
		if !out.Sorted() {
			return false
		}
		if st.AfterSpatial != out.Len() || st.AfterTemporal < out.Len() || st.Input < st.AfterTemporal {
			return false
		}
		// Every kept event exists in the input.
		inSet := make(map[int64]bool)
		for _, e := range l.Events {
			inSet[e.RecordID] = true
		}
		for _, e := range out.Events {
			if !inSet[e.RecordID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdSweepShape(t *testing.T) {
	l := logOf(
		ev(0, "L1", 1, "x"), ev(5, "L1", 1, "x"), ev(500, "L1", 1, "x"),
	)
	ths := []int64{0, 10, 60}
	rows := ThresholdSweep(l, ths)
	if len(rows) != int(raslog.NumFacilities) {
		t.Fatalf("rows = %d", len(rows))
	}
	k := rows[raslog.Kernel]
	if k[0] != 3 || k[1] != 2 || k[2] != 2 {
		t.Errorf("kernel row = %v, want [3 2 2]", k)
	}
}

func TestChooseThresholdStopsAtPlateau(t *testing.T) {
	// Duplicates only within 50 s of each other: rates plateau after 60 s.
	l := logOf(
		ev(0, "L1", 1, "x"), ev(10, "L1", 1, "x"), ev(50, "L1", 1, "x"),
		ev(5000, "L1", 1, "x"), ev(5040, "L1", 1, "x"),
	)
	cands := []int64{10, 60, 120, 200, 300}
	chosen, rates := ChooseThreshold(l, cands, 0.01)
	if chosen != 60 {
		t.Errorf("chose %d, want 60 (rates %v)", chosen, rates)
	}
}

func TestChooseThresholdEmptyCandidates(t *testing.T) {
	l := logOf(ev(0, "L1", 1, "x"))
	chosen, rates := ChooseThreshold(l, nil, 0.01)
	if chosen != 0 || len(rates) != 0 {
		t.Errorf("empty candidates: chose %d rates %v", chosen, rates)
	}
}

func TestCompressionRate(t *testing.T) {
	st := FilterStats{Input: 100, AfterTemporal: 30, AfterSpatial: 20}
	if st.Removed() != 80 {
		t.Errorf("Removed = %d", st.Removed())
	}
	if got := st.CompressionRate(); got != 0.8 {
		t.Errorf("CompressionRate = %g", got)
	}
	if (FilterStats{}).CompressionRate() != 0 {
		t.Error("empty CompressionRate not 0")
	}
}

func TestFilterIdempotent(t *testing.T) {
	// Anchored-window compression leaves survivors more than a threshold
	// apart per key, so a second pass must be a no-op — the predict tool
	// relies on this when fed an already-filtered log.
	r := stats.NewRNG(123)
	locs := []string{"L1", "L2", "L3", "L4"}
	entries := []string{"a", "b", "c"}
	events := make([]raslog.Event, 800)
	for i := range events {
		events[i] = ev(r.Int63n(20_000), locs[r.Intn(4)], r.Int63n(3), entries[r.Intn(3)])
	}
	l := logOf(events...)
	once, _ := Filter{Threshold: 300}.Apply(l)
	twice, st := Filter{Threshold: 300}.Apply(once)
	if st.Removed() != 0 {
		t.Fatalf("second pass removed %d events", st.Removed())
	}
	if twice.Len() != once.Len() {
		t.Fatalf("idempotence broken: %d vs %d", twice.Len(), once.Len())
	}
}

func TestFilterSurvivorSpacingProperty(t *testing.T) {
	// Per temporal key, consecutive survivors are > threshold apart.
	r := stats.NewRNG(321)
	events := make([]raslog.Event, 600)
	for i := range events {
		events[i] = ev(r.Int63n(10_000), "L1", 1, "x")
	}
	l := logOf(events...)
	out, _ := Filter{Threshold: 120}.Apply(l)
	var last int64 = -1 << 62
	for _, e := range out.Events {
		if e.Time-last <= 120_000 && last > -1<<61 {
			t.Fatalf("survivors %d ms apart (<= threshold)", e.Time-last)
		}
		last = e.Time
	}
}
