package preprocess

// symTable maps a stage's string vocabulary (locations, entry texts) to
// dense uint32 IDs, so the filter tables key on pointer-free structs: a
// map whose keys and values contain no pointers is skipped entirely by
// the GC scan, which is what keeps large resident filter state cheap.
// IDs are assigned in first-seen order and live for the stage's lifetime
// — eviction sweeps drop table *keys*, not vocabulary, which is bounded
// by the machine topology and the event catalog rather than the stream
// length. Snapshots store the strings (the wire format is unchanged);
// Restore re-interns them, so IDs are private to one stage instance and
// never persisted.
type symTable struct {
	ids  map[string]uint32
	strs []string
}

func newSymTable() *symTable {
	return &symTable{ids: make(map[string]uint32, 64)}
}

// id returns the dense ID for s, assigning the next one on first sight.
func (t *symTable) id(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// str is the reverse mapping, for snapshot export.
func (t *symTable) str(id uint32) string { return t.strs[id] }
