package preprocess

import (
	"testing"

	"repro/internal/raslog"
)

func TestCatalogMatchesTable3(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 219 {
		t.Fatalf("catalog has %d classes, want 219", c.Len())
	}
	if got := len(c.FatalIDs()); got != 69 {
		t.Errorf("fatal classes = %d, want 69", got)
	}
	if got := len(c.NonFatalIDs()); got != 150 {
		t.Errorf("non-fatal classes = %d, want 150", got)
	}
	want := map[raslog.Facility][2]int{ // {fatal, nonfatal} per Table 3
		raslog.App:       {10, 7},
		raslog.BGLMaster: {2, 2},
		raslog.CMCS:      {0, 4},
		raslog.Discovery: {0, 24},
		raslog.Hardware:  {1, 12},
		raslog.Kernel:    {46, 90},
		raslog.LinkCard:  {1, 0},
		raslog.MMCS:      {0, 5},
		raslog.Monitor:   {9, 5},
		raslog.ServNet:   {0, 1},
	}
	for _, row := range c.CountsByFacility() {
		w := want[row.Facility]
		if row.Fatal != w[0] || row.NonFatal != w[1] {
			t.Errorf("%v: got %d/%d fatal/nonfatal, want %d/%d",
				row.Facility, row.Fatal, row.NonFatal, w[0], w[1])
		}
	}
}

func TestCatalogIDsAreDense(t *testing.T) {
	c := NewCatalog()
	for i, cl := range c.Classes() {
		if cl.ID != i {
			t.Fatalf("class %d has ID %d", i, cl.ID)
		}
		if cl.Entry == "" {
			t.Fatalf("class %d has empty entry", i)
		}
	}
}

func TestCatalogEntriesUniquePerFacility(t *testing.T) {
	c := NewCatalog()
	seen := make(map[catKey]bool)
	for _, cl := range c.Classes() {
		k := catKey{cl.Facility, cl.Entry}
		if seen[k] {
			t.Errorf("duplicate entry %v %q", cl.Facility, cl.Entry)
		}
		seen[k] = true
	}
}

func TestCatalogLookup(t *testing.T) {
	c := NewCatalog()
	cl, ok := c.Lookup(raslog.Kernel, "uncorrectable torus error")
	if !ok {
		t.Fatal("paper example entry missing from catalog")
	}
	if !cl.Fatal || cl.Facility != raslog.Kernel {
		t.Errorf("unexpected class %+v", cl)
	}
	if _, ok := c.Lookup(raslog.Kernel, "no such entry"); ok {
		t.Error("Lookup invented a class")
	}
	// Same entry under another facility must not match.
	if _, ok := c.Lookup(raslog.App, "uncorrectable torus error"); ok {
		t.Error("Lookup ignored facility")
	}
}

func TestMisleadingClasses(t *testing.T) {
	c := NewCatalog()
	misleading := 0
	for _, cl := range c.Classes() {
		if cl.Misleading {
			misleading++
			if cl.Fatal {
				t.Errorf("misleading class %q curated fatal", cl.Entry)
			}
			if !cl.Severity.IsFatal() {
				t.Errorf("misleading class %q has severity %v, want FATAL", cl.Entry, cl.Severity)
			}
		}
	}
	if misleading != 8 { // 6 KERNEL + 2 MONITOR
		t.Errorf("misleading classes = %d, want 8", misleading)
	}
}

func TestFatalClassesHaveFatalSeverity(t *testing.T) {
	c := NewCatalog()
	for _, cl := range c.Classes() {
		if cl.Fatal && !cl.Severity.IsFatal() {
			t.Errorf("fatal class %q recorded severity %v", cl.Entry, cl.Severity)
		}
		if !cl.Fatal && !cl.Misleading && cl.Severity.IsFatal() {
			t.Errorf("non-fatal non-misleading class %q has fatal severity", cl.Entry)
		}
	}
}

func TestClassPanicsOutOfRange(t *testing.T) {
	c := NewCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("Class(10000) did not panic")
		}
	}()
	c.Class(10000)
}
