package preprocess

import (
	"testing"

	"repro/internal/raslog"
)

func TestCategorizeKnownEvent(t *testing.T) {
	z := NewCategorizer(NewCatalog())
	e := raslog.Event{Facility: raslog.Kernel, Severity: raslog.Fatal,
		Entry: "cache failure"}
	class, fatal := z.Categorize(e)
	if IsUnknown(class) {
		t.Fatal("known entry categorized as unknown")
	}
	if !fatal {
		t.Error("cache failure not fatal")
	}
	cl := z.Catalog().Class(class)
	if cl.Entry != "cache failure" {
		t.Errorf("mapped to %q", cl.Entry)
	}
}

func TestCategorizeMisleadingEvent(t *testing.T) {
	z := NewCategorizer(NewCatalog())
	// Find a misleading class: recorded FATAL but curated non-fatal.
	var m Class
	for _, cl := range z.Catalog().Classes() {
		if cl.Misleading {
			m = cl
			break
		}
	}
	e := raslog.Event{Facility: m.Facility, Severity: m.Severity, Entry: m.Entry}
	if _, fatal := z.Categorize(e); fatal {
		t.Error("curated list did not demote misleading event")
	}
	// With TrustSeverity the recorded severity wins.
	z.TrustSeverity = true
	if _, fatal := z.Categorize(e); !fatal {
		t.Error("TrustSeverity did not honor recorded FATAL")
	}
}

func TestCategorizeUnknownEvent(t *testing.T) {
	z := NewCategorizer(NewCatalog())
	e := raslog.Event{Facility: raslog.Kernel, Severity: raslog.Failure,
		Entry: "never seen before"}
	class, fatal := z.Categorize(e)
	if !IsUnknown(class) {
		t.Error("unknown entry mapped to catalog class")
	}
	if !fatal {
		t.Error("unknown FAILURE event not treated fatal")
	}
	// Unknown events of the same facility+severity share a class.
	e2 := e
	e2.Entry = "also never seen"
	class2, _ := z.Categorize(e2)
	if class != class2 {
		t.Errorf("unknown classes differ: %d vs %d", class, class2)
	}
	// Different severity gets a different synthetic class.
	e3 := e
	e3.Severity = raslog.Info
	class3, fatal3 := z.Categorize(e3)
	if class3 == class {
		t.Error("different severities share an unknown class")
	}
	if fatal3 {
		t.Error("unknown INFO event treated fatal")
	}
}

func TestTagAndSplit(t *testing.T) {
	z := NewCategorizer(NewCatalog())
	l := raslog.NewLog("t", 3)
	l.Append(raslog.Event{Time: 1, Facility: raslog.Kernel, Severity: raslog.Fatal,
		Entry: "cpu failure"})
	l.Append(raslog.Event{Time: 2, Facility: raslog.CMCS, Severity: raslog.Info,
		Entry: "cmcs command info"})
	l.Append(raslog.Event{Time: 3, Facility: raslog.Kernel, Severity: raslog.Fatal,
		Entry: "kernel panic"})
	tagged := z.Tag(l)
	if len(tagged) != 3 {
		t.Fatalf("tagged %d events", len(tagged))
	}
	if FatalCount(tagged) != 2 {
		t.Errorf("FatalCount = %d, want 2", FatalCount(tagged))
	}
	fatal, nonFatal := SplitFatal(tagged)
	if len(fatal) != 2 || len(nonFatal) != 1 {
		t.Errorf("split %d/%d, want 2/1", len(fatal), len(nonFatal))
	}
	if fatal[0].Time != 1 || fatal[1].Time != 3 {
		t.Error("split broke ordering")
	}
}
