package persist

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/learner"
	"repro/internal/raslog"
	"repro/internal/stats"
)

func testEvent(i int) raslog.Event {
	return raslog.Event{
		RecordID: int64(i),
		Time:     1_000_000_000_000 + int64(i)*1234 + 7, // ms resolution on purpose
		JobID:    int64(i%5) - 1,                        // includes -1 (zigzag path)
		Facility: raslog.Facility(i % 4),
		Severity: raslog.Severity(i % 6),
		Type:     "RAS",
		Location: "R" + string(rune('A'+i%3)) + "-M0-N4",
		Entry:    "machine check interrupt … unit é" + strings.Repeat("x", i%17),
	}
}

func TestEventFrameRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		e := testEvent(i)
		frame := appendEventFrame(nil, e)
		payload, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("event %d: readFrame: %v", i, err)
		}
		got, err := decodeEvent(payload)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if got != e {
			t.Fatalf("event %d: round trip mismatch:\n got %+v\nwant %+v", i, got, e)
		}
	}
}

func TestDecodeEventRejectsTrailingBytes(t *testing.T) {
	b := appendEvent(nil, testEvent(1))
	if _, err := decodeEvent(append(b, 0)); err == nil {
		t.Fatal("decodeEvent accepted a record with trailing bytes")
	}
}

func replayAll(t *testing.T, st *Store, from uint64) ([]raslog.Event, uint64) {
	t.Helper()
	var got []raslog.Event
	wantSeq := from
	end, err := st.Replay(from, func(seq uint64, e raslog.Event) error {
		if seq != wantSeq {
			t.Fatalf("replay out of order: seq %d, want %d", seq, wantSeq)
		}
		wantSeq++
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return got, end
}

func TestAppendCloseReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, end := replayAll(t, st2, 0)
	if end != n || len(got) != n {
		t.Fatalf("replay returned %d events, end %d; want %d", len(got), end, n)
	}
	for i, e := range got {
		if e != testEvent(i) {
			t.Fatalf("event %d differs after replay", i)
		}
	}
	// Resume mid-log too.
	got, end = replayAll(t, st2, 40)
	if end != n || len(got) != n-40 {
		t.Fatalf("partial replay: %d events, end %d", len(got), end)
	}
}

func TestAppendRejectsOutOfOrderSeq(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append(0, testEvent(0)); err == nil {
		t.Fatal("Append before StartAppend succeeded")
	}
	if err := st.StartAppend(5); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(7, testEvent(0)); err == nil {
		t.Fatal("out-of-order Append succeeded")
	}
	if _, err := st.Append(5, testEvent(0)); err != nil {
		t.Fatal(err)
	}
}

// newestWAL returns the path of the newest WAL segment.
func newestWAL(t *testing.T, st *Store) string {
	t.Helper()
	segs, err := st.listRefs(walPrefix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listRefs: %v (%d segments)", err, len(segs))
	}
	return filepath.Join(st.dir, segs[len(segs)-1].name)
}

func TestTornTailEndsReplayCleanly(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated-frame": func(b []byte) []byte { return b[:len(b)-3] },
		"bit-flip":        func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"torn-header":     func(b []byte) []byte { return append(b, 0xff, 0xff) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{FlushEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			st.StartAppend(0)
			const n = 20
			for i := 0; i < n; i++ {
				if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
					t.Fatal(err)
				}
			}
			st.Close()

			path := newestWAL(t, st)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(b), 0o644); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, end := replayAll(t, st2, 0)
			switch name {
			case "torn-header":
				if len(got) != n || end != n {
					t.Fatalf("got %d events, end %d; want all %d", len(got), end, n)
				}
			default:
				// The mangled final record must be dropped; everything before
				// it replays.
				if len(got) != n-1 || end != n-1 {
					t.Fatalf("got %d events, end %d; want %d", len(got), end, n-1)
				}
			}
		})
	}
}

func TestRotationSnapshotPrune(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{RotateBytes: 256, KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.StartAppend(0)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := st.listRefs(walPrefix)
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}

	// Snapshot at seq 30: segments wholly below 30 become prunable.
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 30}); err != nil {
		t.Fatal(err)
	}
	after, _ := st.listRefs(walPrefix)
	if len(after) >= len(segs) {
		t.Fatalf("prune removed nothing: %d -> %d segments", len(segs), len(after))
	}
	if after[0].seq > 30 {
		t.Fatalf("oldest retained segment starts at %d, past the snapshot seq", after[0].seq)
	}
	st.Close()

	// Recovery from the snapshot position must still see 30..n-1.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st2.LoadSnapshot()
	if err != nil || snap == nil || snap.Seq != 30 {
		t.Fatalf("LoadSnapshot: %v, %+v", err, snap)
	}
	got, end := replayAll(t, st2, snap.Seq)
	if len(got) != n-30 || end != n {
		t.Fatalf("replay from snapshot: %d events, end %d", len(got), end)
	}
}

func TestWALGapFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{RotateBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	st.StartAppend(0)
	for i := 0; i < 50; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	segs, _ := st.listRefs(walPrefix)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Remove a middle segment: replay must refuse to jump the hole.
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Replay(0, func(uint64, raslog.Event) error { return nil }); err == nil {
		t.Fatal("Replay over a missing segment succeeded")
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 10, WatermarkMs: 111}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 20, WatermarkMs: 222}); err != nil {
		t.Fatal(err)
	}
	snaps, _ := st.listRefs(snapPrefix)
	if len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %d", len(snaps))
	}
	newest := filepath.Join(dir, snaps[1].name)
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := st.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 10 || snap.WatermarkMs != 111 {
		t.Fatalf("fallback snapshot: %+v, want the seq-10 one", snap)
	}
}

func TestLoadSnapshotEmptyDir(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st.LoadSnapshot()
	if err != nil || snap != nil {
		t.Fatalf("empty dir: snap %+v, err %v; want nil, nil", snap, err)
	}
}

func TestAbandonDiscardsUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	st.StartAppend(0)
	for i := 0; i < 10; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Abandon()
	// Everything after Abandon must be a silent no-op.
	if n, err := st.Append(10, testEvent(10)); n != 0 || err != nil {
		t.Fatalf("Append after Abandon: %d, %v", n, err)
	}
	if n, err := st.WriteSnapshot(&Snapshot{Seq: 10}); n != 0 || err != nil {
		t.Fatalf("WriteSnapshot after Abandon: %d, %v", n, err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close after Abandon: %v", err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, st2, 0)
	if len(got) == 10 {
		t.Fatal("unflushed tail survived Abandon; crash simulation is not discarding the buffer")
	}
	if snap, _ := st2.LoadSnapshot(); snap != nil {
		t.Fatalf("snapshot written after Abandon: %+v", snap)
	}
}

func TestStartAppendAfterReplayContinuesSegmentChain(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	st.StartAppend(0)
	for i := 0; i < 10; i++ {
		st.Append(uint64(i), testEvent(i))
	}
	st.Abandon() // simulated crash
	st.Close()

	// Restart: replay, then append more from where the durable log ends.
	st2, err := Open(dir, Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, end := replayAll(t, st2, 0)
	if err := st2.StartAppend(end); err != nil {
		t.Fatal(err)
	}
	for i := end; i < end+10; i++ {
		if _, err := st2.Append(i, testEvent(int(i))); err != nil {
			t.Fatalf("Append %d after restart: %v", i, err)
		}
	}
	st2.Close()

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, end3 := replayAll(t, st3, 0)
	if uint64(len(got)) != end+10 || end3 != end+10 {
		t.Fatalf("after restart chain: %d events, end %d; want %d", len(got), end3, end+10)
	}
}

func TestRulesRoundTrip(t *testing.T) {
	wb, _ := stats.NewWeibull(187.3, 0.82)
	ex, _ := stats.NewExponential(412.5)
	ln, _ := stats.NewLogNormal(4.1, 1.3)
	rules := []learner.Rule{
		{Kind: learner.Association, Body: []int{3, 17}, Target: 204, Confidence: 0.81, Support: 0.02},
		{Kind: learner.Statistical, Count: 3, Confidence: 0.6},
		{Kind: learner.Distribution, Dist: wb, ElapsedSec: 900},
		{Kind: learner.Distribution, Dist: ex, ElapsedSec: 120},
		{Kind: learner.Distribution, Dist: ln, ElapsedSec: 60},
	}
	wire, err := EncodeRules(rules)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRules(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rules, back) {
		t.Fatalf("rules round trip mismatch:\n got %+v\nwant %+v", back, rules)
	}
}

// fakeDist is a Distribution family the codec does not know about.
type fakeDist struct{ stats.Exponential }

func (fakeDist) Name() string { return "fake" }

func TestEncodeRulesRejectsUnknownDist(t *testing.T) {
	if _, err := EncodeRules([]learner.Rule{{Kind: learner.Distribution, Dist: fakeDist{}}}); err == nil {
		t.Fatal("EncodeRules accepted an unknown distribution family")
	}
}

func TestDecodeDistRejectsBadWire(t *testing.T) {
	for _, w := range []Dist{
		{Name: "fake", Params: []float64{1}},
		{Name: "weibull", Params: []float64{1}},          // wrong arity
		{Name: "weibull", Params: []float64{-1, 2}},      // invalid parameter
		{Name: "exponential", Params: []float64{1, 2}},   // wrong arity
		{Name: "lognormal", Params: []float64{0.5, -.1}}, // invalid sigma
	} {
		if _, err := decodeDist(w); err == nil {
			t.Fatalf("decodeDist accepted %+v", w)
		}
	}
}

func TestReadFrameStopsOnGiantLength(t *testing.T) {
	var hdr [frameHeader]byte
	for i := range hdr {
		hdr[i] = 0xff
	}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err != errTorn {
		t.Fatalf("giant length prefix: err %v, want errTorn", err)
	}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty reader: err %v, want io.EOF", err)
	}
}
