package persist_test

// Temporary generator for testdata/prebatch — run once with the
// pre-batch writer, then deleted. Kept events must match the
// fixtureEvents helper in compat_test.go.

import (
	"os"
	"testing"

	"repro/internal/persist"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

func TestGenerateFixture(t *testing.T) {
	if os.Getenv("GEN_FIXTURE") == "" {
		t.Skip("set GEN_FIXTURE=1 to regenerate")
	}
	dir := "testdata/prebatch"
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(dir, persist.Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}
	events := genFixtureEvents()
	for i, e := range events {
		if _, err := st.Append(uint64(i), e); err != nil {
			t.Fatal(err)
		}
	}
	snap := &persist.Snapshot{
		Seq:           6,
		StreamStartMs: events[0].Time,
		WatermarkMs:   events[5].Time,
		NextRetrainMs: events[0].Time + 1000000,
		LastFatalMs:   events[3].Time,
		Counters: persist.Counters{
			Sequenced:     6,
			AfterTemporal: 5,
			Processed:     4,
			Fatals:        1,
		},
		Temporal: []preprocess.TemporalEntry{
			{Location: "R01-M0-N4-C:J12-U01", JobID: 7, Entry: "ddr error", LastMs: events[4].Time},
			{Location: "R23-M1-NC-I:J18-U11", JobID: 0, Entry: "link fault", LastMs: events[5].Time},
		},
		Spatial: []preprocess.SpatialEntry{
			{JobID: 7, Entry: "ddr error", Location: "R01-M0-N4-C:J12-U01", LastMs: events[4].Time},
		},
	}
	if _, err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func genFixtureEvents() []raslog.Event {
	base := int64(1136073600000) // 2006-01-01 00:00:00 UTC
	return []raslog.Event{
		{RecordID: 1, Type: "RAS", Time: base, JobID: 7, Location: "R01-M0-N4-C:J12-U01", Entry: "ddr error", Facility: raslog.Kernel, Severity: raslog.Error},
		{RecordID: 2, Type: "RAS", Time: base + 1000, JobID: 7, Location: "R01-M0-N4-C:J12-U01", Entry: "ddr error", Facility: raslog.Kernel, Severity: raslog.Error},
		{RecordID: 3, Type: "RAS", Time: base + 2000, JobID: 0, Location: "R23-M1-NC-I:J18-U11", Entry: "link fault", Facility: raslog.LinkCard, Severity: raslog.Warning},
		{RecordID: 4, Type: "RAS", Time: base + 400000, JobID: 7, Location: "R01-M0-N4-C:J12-U01", Entry: "rts panic", Facility: raslog.Kernel, Severity: raslog.Fatal},
		{RecordID: 5, Type: "RAS", Time: base + 401000, JobID: 7, Location: "R01-M0-N4-C:J12-U01", Entry: "ddr error", Facility: raslog.Kernel, Severity: raslog.Error},
		{RecordID: 6, Type: "RAS", Time: base + 402000, JobID: 0, Location: "R23-M1-NC-I:J18-U11", Entry: "link fault", Facility: raslog.LinkCard, Severity: raslog.Warning},
		{RecordID: 7, Type: "RAS", Time: base + 800000, JobID: 9, Location: "R00-M1-N8-C:J05-U11", Entry: "idoproxydb hit ASSERT condition", Facility: raslog.MMCS, Severity: raslog.Severe},
		{RecordID: 8, Type: "RAS", Time: base + 801000, JobID: 9, Location: "R00-M1-N8-C:J05-U11", Entry: "", Facility: raslog.App, Severity: raslog.Info},
		{RecordID: 9, Type: "RAS", Time: base + 802000, JobID: 0, Location: "", Entry: "power module status fault", Facility: raslog.Monitor, Severity: raslog.Failure},
		{RecordID: 10, Type: "RAS", Time: base + 900000, JobID: 9, Location: "R00-M1-N8-C:J05-U11", Entry: "ciod: LOGIN chdir failed", Facility: raslog.App, Severity: raslog.Failure},
	}
}
