package persist

// Tests for the asynchronous commit pipeline (commit.go): ticket
// resolution, round coalescing, and the crash/teardown edges that the
// ack-implies-durable contract upstream leans on.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/raslog"
)

// openAppender returns a store positioned for appends at seq 0.
func openAppender(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}
	return st
}

func batch(lo, n int) []raslog.Event {
	out := make([]raslog.Event, 0, n)
	for i := lo; i < lo+n; i++ {
		out = append(out, testEvent(i))
	}
	return out
}

// TestTicketResolvesDurable pins the pipeline's core promise: once Wait
// returns nil, the batch survives an abrupt death (Abandon discards the
// write buffer, so only flushed-and-synced frames remain).
func TestTicketResolvesDurable(t *testing.T) {
	dir := t.TempDir()
	st := openAppender(t, dir, Options{})
	events := batch(0, 5)
	if _, tk, err := st.AppendBatch(0, events); err != nil {
		t.Fatal(err)
	} else if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("ticket.Wait: %v", err)
	}
	st.Abandon()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var got int
	end, err := st2.Replay(0, func(seq uint64, e raslog.Event) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != uint64(len(events)) || got != len(events) {
		t.Fatalf("after acked commit + abandon: replayed %d events to seq %d, want %d", got, end, len(events))
	}
}

// TestTicketsCoalesceIntoOneRound: every batch appended while the
// syncer lingers (SyncMaxWait) or is busy joins the same pending round,
// so one fsync covers them all.
func TestTicketsCoalesceIntoOneRound(t *testing.T) {
	st := openAppender(t, t.TempDir(), Options{SyncMaxWait: time.Minute})
	defer st.Close()
	var tickets []Ticket
	seq := uint64(0)
	for i := 0; i < 3; i++ {
		ev := batch(int(seq), 4)
		_, tk, err := st.AppendBatch(seq, ev)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		seq += uint64(len(ev))
	}
	for i, tk := range tickets {
		if tk.r == nil {
			t.Fatalf("ticket %d has no round", i)
		}
		if tk.r != tickets[0].r {
			t.Fatalf("ticket %d got its own round; want all three coalesced", i)
		}
		if tk.Done() {
			t.Fatalf("ticket %d resolved before any fsync could have run (SyncMaxWait=1m)", i)
		}
	}
	// The inline sync (Sync/snapshot/Close path) completes the round.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("ticket %d after Sync: %v", i, err)
		}
	}
}

// TestAbandonFailsPendingTickets: a crash between enqueue and fsync must
// resolve outstanding tickets with an error — their waiters must not
// acknowledge the batch.
func TestAbandonFailsPendingTickets(t *testing.T) {
	st := openAppender(t, t.TempDir(), Options{SyncMaxWait: time.Minute})
	_, tk, err := st.AppendBatch(0, batch(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	st.Abandon()
	if err := tk.Wait(context.Background()); !errors.Is(err, ErrAbandoned) {
		t.Fatalf("pending ticket after Abandon: err = %v, want ErrAbandoned", err)
	}
	// The dead store keeps handing out failing tickets, never durable acks.
	if _, tk, err := st.AppendBatch(3, batch(3, 1)); err != nil {
		t.Fatalf("dead store AppendBatch: err = %v, want nil (silent no-op)", err)
	} else if err := tk.Wait(context.Background()); !errors.Is(err, ErrAbandoned) {
		t.Fatalf("dead store ticket: err = %v, want ErrAbandoned", err)
	}
}

// TestCloseResolvesPendingTickets: graceful shutdown syncs, so tickets
// still pending resolve successfully and the frames are on disk.
func TestCloseResolvesPendingTickets(t *testing.T) {
	dir := t.TempDir()
	st := openAppender(t, dir, Options{SyncMaxWait: time.Minute})
	_, tk, err := st.AppendBatch(0, batch(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("ticket after Close: %v", err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	end, err := st2.Replay(0, func(uint64, raslog.Event) error { return nil })
	if err != nil || end != 4 {
		t.Fatalf("replay end = %d err = %v, want 4, nil", end, err)
	}
}

// TestSnapshotCoversPendingTickets: WriteSnapshot syncs the WAL first,
// so a snapshot at seq n also resolves every ticket at or below n —
// the invariant that makes forward-before-fsync safe upstream.
func TestSnapshotCoversPendingTickets(t *testing.T) {
	st := openAppender(t, t.TempDir(), Options{SyncMaxWait: time.Minute})
	defer st.Close()
	_, tk, err := st.AppendBatch(0, batch(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if !tk.Done() {
		t.Fatal("ticket still pending after WriteSnapshot; snapshot must imply WAL durability")
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("ticket after snapshot: %v", err)
	}
}

// TestTicketWaitContext: an expired context returns without resolving
// durability; the ticket can still be awaited afterwards.
func TestTicketWaitContext(t *testing.T) {
	st := openAppender(t, t.TempDir(), Options{SyncMaxWait: time.Minute})
	_, tk, err := st.AppendBatch(0, batch(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait(canceled ctx): %v, want context.Canceled", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("Wait after Close: %v", err)
	}
}

// TestZeroAndFailedTickets pins the sentinel shapes the stream layer
// depends on: the zero Ticket is immediately durable, FailedTicket
// reports its error forever.
func TestZeroAndFailedTickets(t *testing.T) {
	var zero Ticket
	if !zero.Done() {
		t.Fatal("zero Ticket must be done")
	}
	if err := zero.Wait(context.Background()); err != nil {
		t.Fatalf("zero Ticket Wait: %v", err)
	}
	sentinel := errors.New("boom")
	ft := FailedTicket(sentinel)
	if !ft.Done() {
		t.Fatal("FailedTicket must be done")
	}
	if err := ft.Wait(context.Background()); !errors.Is(err, sentinel) {
		t.Fatalf("FailedTicket Wait: %v, want sentinel", err)
	}
}

// TestSharedSyncExecutor: two stores sharing one single-slot executor
// both commit; the semaphore serializes the fsyncs, it never deadlocks
// or starves a store.
func TestSharedSyncExecutor(t *testing.T) {
	exec := NewSyncExecutor(1)
	stA := openAppender(t, t.TempDir(), Options{SyncExec: exec})
	defer stA.Close()
	stB := openAppender(t, t.TempDir(), Options{SyncExec: exec})
	defer stB.Close()

	var tks []Ticket
	for i := 0; i < 4; i++ {
		_, ta, err := stA.AppendBatch(uint64(i), batch(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		_, tb, err := stB.AppendBatch(uint64(i), batch(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, ta, tb)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, tk := range tks {
		if err := tk.Wait(ctx); err != nil {
			t.Fatalf("ticket %d under shared executor: %v", i, err)
		}
	}
}

// TestRotationPreservesTicketSegments: a rotation mid-stream completes
// the pending round on the old segment before the new one exists, so no
// ticket ever spans segments and torn tails stay confined to the final
// segment.
func TestRotationPreservesTicketSegments(t *testing.T) {
	dir := t.TempDir()
	st := openAppender(t, dir, Options{RotateBytes: 128, SyncMaxWait: time.Minute})
	var tks []Ticket
	seq := uint64(0)
	for i := 0; i < 16; i++ {
		ev := batch(int(seq), 2)
		_, tk, err := st.AppendBatch(seq, ev)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
		seq += 2
	}
	// Everything but the final round was already made durable by the
	// rotations' inline syncs; Abandon discards only the last buffer.
	st.Abandon()
	durable := uint64(0)
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	end, err := st2.Replay(0, func(uint64, raslog.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	durable = end
	for i, tk := range tks {
		err := tk.Wait(context.Background())
		covered := uint64((i + 1) * 2)
		if err == nil && covered > durable {
			t.Fatalf("ticket %d acked through seq %d but only %d survive on disk", i, covered, durable)
		}
	}
}
