package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/raslog"
)

// Frame layout, shared by WAL records and snapshot files:
//
//	u32 LE  payload length
//	u32 LE  CRC-32C (Castagnoli) of the payload
//	bytes   payload
//
// A WAL payload is one event in a compact varint encoding (below); a
// snapshot payload is the snapshot JSON. The CRC turns both torn writes
// and bit rot into a detected stop instead of silently-wrong state.

const frameHeader = 8

// maxFrame bounds a frame payload so a garbage length prefix (torn
// header bytes) cannot drive a huge allocation.
const maxFrame = 256 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks the point where a segment's durable records end: a
// partial or checksum-failing frame, the signature of a crash mid-write.
var errTorn = errors.New("persist: torn or corrupt frame")

func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	return append(append(dst, hdr[:]...), payload...)
}

// readFrame returns the next payload, io.EOF at a clean segment end, or
// errTorn when the remaining bytes do not form a whole valid frame.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errTorn
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errTorn
		}
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTorn
	}
	return payload, nil
}

// appendEventFrame encodes e and frames it in one pass into dst.
func appendEventFrame(dst []byte, e raslog.Event) []byte {
	return appendFrame(dst, appendEvent(nil, e))
}

// appendEvent encodes e in the WAL's binary form: varints (zigzag for
// the signed fields) plus length-prefixed strings. Unlike the text
// codec — which records whole seconds — this is lossless at millisecond
// resolution, so replayed events are byte-identical to ingested ones.
func appendEvent(b []byte, e raslog.Event) []byte {
	b = binary.AppendVarint(b, e.RecordID)
	b = binary.AppendVarint(b, e.Time)
	b = binary.AppendVarint(b, e.JobID)
	b = binary.AppendUvarint(b, uint64(e.Facility))
	b = binary.AppendUvarint(b, uint64(e.Severity))
	b = appendString(b, e.Type)
	b = appendString(b, e.Location)
	return appendString(b, e.Entry)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type eventDecoder struct {
	buf []byte
	err error
}

func (d *eventDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errors.New("persist: bad varint in event record")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *eventDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("persist: bad uvarint in event record")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *eventDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = errors.New("persist: truncated string in event record")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// event decodes one event from the front of the buffer. A frame payload
// may concatenate several encodings (AppendBatch's group commit), so the
// caller loops until the buffer is empty.
func (d *eventDecoder) event() (raslog.Event, error) {
	var e raslog.Event
	e.RecordID = d.varint()
	e.Time = d.varint()
	e.JobID = d.varint()
	e.Facility = raslog.Facility(d.uvarint())
	e.Severity = raslog.Severity(d.uvarint())
	e.Type = d.str()
	e.Location = d.str()
	e.Entry = d.str()
	return e, d.err
}

func decodeEvent(b []byte) (raslog.Event, error) {
	d := eventDecoder{buf: b}
	e, err := d.event()
	if err == nil && len(d.buf) != 0 {
		err = errors.New("persist: trailing bytes in event record")
	}
	return e, err
}

// Replay streams every durable WAL record with sequence >= from to fn,
// in order, and returns the sequence *after* the last durable record —
// the position StartAppend must resume from. A torn tail ends the final
// segment's records; a torn or missing range in front of a later segment
// is real corruption and fails loudly rather than replaying a stream
// with a hole in it.
func (st *Store) Replay(from uint64, fn func(seq uint64, e raslog.Event) error) (uint64, error) {
	segs, err := st.listRefs(walPrefix)
	if err != nil {
		return 0, err
	}
	next := from
	for i, seg := range segs {
		if seg.seq > next && i > 0 {
			return 0, fmt.Errorf("persist: WAL gap: segment %s starts at seq %d, have %d", seg.name, seg.seq, next)
		}
		if seg.seq > next {
			// The oldest retained segment starts beyond `from`: the caller's
			// snapshot is older than the truncation point, so the records in
			// between are gone.
			return 0, fmt.Errorf("persist: WAL gap: oldest segment %s starts at seq %d, need %d", seg.name, seg.seq, from)
		}
		stop := uint64(1<<64 - 1)
		if i+1 < len(segs) {
			stop = segs[i+1].seq // a newer segment supersedes anything past its start
		}
		end, err := replaySegment(filepath.Join(st.dir, seg.name), seg.seq, next, stop, fn)
		if err != nil {
			return 0, err
		}
		if end < stop && i+1 < len(segs) {
			return 0, fmt.Errorf("persist: WAL gap: segment %s ends at seq %d, next starts at %d", seg.name, end, stop)
		}
		next = end
	}
	return next, nil
}

// replaySegment reads one segment whose first record is firstSeq,
// invoking fn for records in [from, stop). It returns the sequence after
// the segment's last durable record (capped at stop).
func replaySegment(path string, firstSeq, from, stop uint64, fn func(seq uint64, e raslog.Event) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	seq := firstSeq
	for seq < stop {
		payload, err := readFrame(r)
		if err == io.EOF || errors.Is(err, errTorn) {
			break // durable end of this segment
		}
		if err != nil {
			return 0, fmt.Errorf("persist: %s: %w", path, err)
		}
		// A frame holds one event (Append) or a whole batch's worth
		// back-to-back (AppendBatch); a single-record frame is the
		// degenerate batch, so pre-batch segments decode identically.
		d := eventDecoder{buf: payload}
		for len(d.buf) > 0 && seq < stop {
			e, derr := d.event()
			if derr != nil {
				// A frame that passes its CRC but does not decode is not a torn
				// tail; it means the writer and reader disagree. Fail loudly.
				return 0, fmt.Errorf("persist: %s: record %d: %w", path, seq, derr)
			}
			if seq >= from {
				if err := fn(seq, e); err != nil {
					return 0, err
				}
			}
			seq++
		}
	}
	return seq, nil
}
