package persist_test

// Backward compatibility with pre-batch state directories. The files
// under testdata/prebatch were written by the writer as it was before
// AppendBatch existed (one event per WAL frame); these tests pin that
// today's reader loads them unchanged, and that a store can append —
// batched or not — on top of such a directory.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/persist"
	"repro/internal/raslog"
)

// copyFixture clones testdata/prebatch into a writable temp dir so
// tests can replay and append without touching the checked-in files.
func copyFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir("testdata/prebatch")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		b, err := os.ReadFile(filepath.Join("testdata/prebatch", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func replayEvents(t *testing.T, st *persist.Store, from uint64) ([]raslog.Event, uint64) {
	t.Helper()
	var got []raslog.Event
	next, err := st.Replay(from, func(seq uint64, e raslog.Event) error {
		if want := from + uint64(len(got)); seq != want {
			t.Fatalf("replay seq %d, want %d", seq, want)
		}
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, next
}

func TestPreBatchSnapshotLoads(t *testing.T) {
	st, err := persist.Open(copyFixture(t), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	snap, err := st.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot found in pre-batch fixture")
	}
	if snap.Seq != 6 {
		t.Fatalf("snapshot Seq = %d, want 6", snap.Seq)
	}
	wantCounters := persist.Counters{Sequenced: 6, AfterTemporal: 5, Processed: 4, Fatals: 1}
	if snap.Counters != wantCounters {
		t.Fatalf("snapshot Counters = %+v, want %+v", snap.Counters, wantCounters)
	}
	if len(snap.Temporal) != 2 || len(snap.Spatial) != 1 {
		t.Fatalf("snapshot rows: %d temporal, %d spatial; want 2, 1",
			len(snap.Temporal), len(snap.Spatial))
	}
	if snap.Temporal[0].Entry != "ddr error" || snap.Spatial[0].Location != "R01-M0-N4-C:J12-U01" {
		t.Fatalf("snapshot filter rows corrupted: %+v / %+v", snap.Temporal[0], snap.Spatial[0])
	}
}

func TestPreBatchWALReplays(t *testing.T) {
	st, err := persist.Open(copyFixture(t), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := genFixtureEvents()

	got, next := replayEvents(t, st, 0)
	if next != uint64(len(want)) {
		t.Fatalf("Replay(0) next = %d, want %d", next, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Replay(0) events differ:\n got %+v\nwant %+v", got, want)
	}

	// Resuming from the snapshot position replays only the tail.
	got, next = replayEvents(t, st, 6)
	if next != uint64(len(want)) {
		t.Fatalf("Replay(6) next = %d, want %d", next, len(want))
	}
	if !reflect.DeepEqual(got, want[6:]) {
		t.Fatalf("Replay(6) events differ:\n got %+v\nwant %+v", got, want[6:])
	}
}

func TestAppendBatchOnPreBatchDirectory(t *testing.T) {
	dir := copyFixture(t)
	st, err := persist.Open(dir, persist.Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	old := genFixtureEvents()
	_, next := replayEvents(t, st, 0)
	if next != uint64(len(old)) {
		t.Fatalf("replay next = %d, want %d", next, len(old))
	}
	if err := st.StartAppend(next); err != nil {
		t.Fatal(err)
	}

	// A batch frame and a single-event frame, appended after the
	// pre-batch records in the same segment chain.
	extra := []raslog.Event{
		{RecordID: 11, Type: "RAS", Time: 1136074600000, JobID: 9, Location: "R00-M1-N8-C:J05-U11", Entry: "ciod: Error reading message prefix", Facility: raslog.App, Severity: raslog.Failure},
		{RecordID: 12, Type: "RAS", Time: 1136074601000, JobID: 0, Location: "R23-M1-NC-I:J18-U11", Entry: "link fault", Facility: raslog.LinkCard, Severity: raslog.Warning},
		{RecordID: 13, Type: "RAS", Time: 1136074602000, JobID: 9, Location: "R00-M1-N8-C:J05-U11", Entry: "rts panic", Facility: raslog.Kernel, Severity: raslog.Fatal},
	}
	if _, _, err := st.AppendBatch(next, extra[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(next+2, extra[2]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	want := append(append([]raslog.Event{}, old...), extra...)
	got, next := replayEvents(t, st2, 0)
	if next != uint64(len(want)) {
		t.Fatalf("reopened next = %d, want %d", next, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened replay differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir, persist.Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}

	events := genFixtureEvents()
	// Mixed shapes: batch of 3, empty batch (a no-op), single append,
	// batch of 1, batch of the rest.
	if _, _, err := st.AppendBatch(0, events[:3]); err != nil {
		t.Fatal(err)
	}
	if n, _, err := st.AppendBatch(3, nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v, want 0, nil", n, err)
	}
	if _, err := st.Append(3, events[3]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendBatch(4, events[4:5]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendBatch(5, events[5:]); err != nil {
		t.Fatal(err)
	}

	// Sequence checking holds across batches too.
	if _, _, err := st.AppendBatch(7, events[:2]); err == nil ||
		!strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("out-of-order batch: err = %v, want out-of-order", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, next := replayEvents(t, st2, 0)
	if next != uint64(len(events)) {
		t.Fatalf("next = %d, want %d", next, len(events))
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("replay differs:\n got %+v\nwant %+v", got, events)
	}

	// Replay from inside a batch frame: the decoder skips the frame's
	// leading records and delivers the rest.
	got, _ = replayEvents(t, st2, 1)
	if !reflect.DeepEqual(got, events[1:]) {
		t.Fatalf("mid-batch replay differs:\n got %+v\nwant %+v", got, events[1:])
	}
}

func TestAppendBatchRotatesSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := persist.Open(dir, persist.Options{FlushEvery: 1, RotateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}
	events := genFixtureEvents()
	for i := 0; i < len(events); i += 2 {
		if _, _, err := st.AppendBatch(uint64(i), events[i:i+2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, ent := range names {
		if strings.HasPrefix(ent.Name(), "wal-") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected batches to rotate into multiple segments, got %d", segs)
	}

	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, next := replayEvents(t, st2, 0)
	if next != uint64(len(events)) || !reflect.DeepEqual(got, events) {
		t.Fatalf("replay across rotated batch segments differs (next=%d)", next)
	}
}

func TestAppendBatchAfterCloseFails(t *testing.T) {
	st, err := persist.Open(t.TempDir(), persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartAppend(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendBatch(0, genFixtureEvents()[:1]); !errors.Is(err, persist.ErrClosed) {
		t.Fatalf("AppendBatch after Close: err = %v, want ErrClosed", err)
	}
}
