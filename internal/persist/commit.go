package persist

// Asynchronous commit pipeline (DESIGN.md §15): AppendBatch enqueues
// frames under the store mutex and returns a Ticket instead of fsyncing
// inline. A per-store syncer goroutine runs the fsyncs; every ticket
// issued while one fsync is in flight joins a single pending round and
// is covered by the *next* fsync, so N concurrent appenders share one
// disk flush instead of issuing N. The pipeline is self-clocking — the
// deeper the disk is in an fsync, the more tickets the next round
// coalesces — and Options.SyncMaxWait can add a deliberate delay on top
// for deeper coalescing at low concurrency.

import (
	"context"
	"errors"
	"os"
	"time"
)

// ErrAbandoned resolves the tickets that were pending when Abandon tore
// the store down: the covering fsync never happened, so the events must
// not be acknowledged as durable. Errors arrive wrapped — test with
// errors.Is.
var ErrAbandoned = errors.New("persist: store abandoned before commit")

// commitRound is one pending fsync and the frames it will cover. err is
// written exactly once, before done is closed; waiters read it only
// after <-done, so no further synchronization is needed.
type commitRound struct {
	done chan struct{}
	err  error
}

// Ticket is the commit handle returned by AppendBatch. The batch's
// frames are in the WAL buffer when AppendBatch returns; they are
// durable once Wait returns nil. The zero Ticket is already durable
// (Wait returns nil immediately) — it is what a store-less or dead path
// hands out.
type Ticket struct {
	r *commitRound
}

// Wait blocks until the fsync covering the ticket's frames completes,
// returning its error (nil = the frames are on stable storage). A ctx
// expiry returns ctx.Err() without resolving durability either way: the
// frames are still in the pipeline and will be synced, but the caller
// must not acknowledge them.
func (t Ticket) Wait(ctx context.Context) error {
	if t.r == nil {
		return nil
	}
	select {
	case <-t.r.done:
		return t.r.err
	default:
	}
	select {
	case <-t.r.done:
		return t.r.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports whether the covering fsync already completed (with either
// outcome). The zero Ticket is done.
func (t Ticket) Done() bool {
	if t.r == nil {
		return true
	}
	select {
	case <-t.r.done:
		return true
	default:
		return false
	}
}

// failedDone is the shared pre-closed channel behind FailedTicket.
var failedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// FailedTicket returns an already-resolved ticket whose Wait reports
// err. Callers that hit an append error before a round existed use it
// to propagate the failure through the same ticket plumbing.
func FailedTicket(err error) Ticket {
	return Ticket{r: &commitRound{done: failedDone, err: err}}
}

// SyncExecutor bounds how many fsyncs run concurrently across every
// store sharing it — fleet mode hands one executor to all tenant stores
// on the same disk, so a burst of tenants does not queue up a burst of
// device flushes. Queuing behind the executor deepens each store's own
// coalescing: tickets keep accumulating into the pending round while
// the store waits for a slot.
type SyncExecutor struct {
	sem chan struct{}
}

// NewSyncExecutor returns an executor allowing parallel concurrent
// fsyncs (minimum 1 — a typical single-device state root wants exactly
// that).
func NewSyncExecutor(parallel int) *SyncExecutor {
	if parallel < 1 {
		parallel = 1
	}
	return &SyncExecutor{sem: make(chan struct{}, parallel)}
}

// do runs fn under the executor's concurrency bound.
func (e *SyncExecutor) do(fn func() error) error {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	return fn()
}

// enqueueCommitLocked registers the frames just appended into the
// pending commit round (creating it if this is the round's first batch)
// and wakes the syncer. Caller holds st.mu.
func (st *Store) enqueueCommitLocked() Ticket {
	if st.pending == nil {
		st.pending = &commitRound{done: make(chan struct{})}
	}
	r := st.pending
	// The buffered kick collapses any number of concurrent wakes into
	// one pass of the syncer loop.
	select {
	case st.kick <- struct{}{}:
	default:
	}
	return Ticket{r: r}
}

// startSyncerLocked launches the background syncer once. Caller holds
// st.mu. Read-only stores (followers listing segments, snapshot loads)
// never call StartAppend and therefore never pay for the goroutine.
func (st *Store) startSyncerLocked() {
	if st.kick != nil {
		return
	}
	st.kick = make(chan struct{}, 1)
	st.syncStop = make(chan struct{})
	st.syncerDone = make(chan struct{})
	go st.syncer()
}

// stopSyncerLocked signals the syncer to exit. Caller holds st.mu and
// must wait on syncerDone only after releasing it (the syncer needs the
// mutex to finish an in-flight round).
func (st *Store) stopSyncerLocked() {
	if st.syncStop != nil && !st.syncStopped {
		st.syncStopped = true
		close(st.syncStop)
	}
}

// failPendingLocked resolves the pending round (if any) with err, so
// ticket holders stop waiting and know not to acknowledge. A round
// already captured by an in-flight background sync is not here anymore;
// it resolves with that fsync's real outcome. Caller holds st.mu.
func (st *Store) failPendingLocked(err error) {
	if st.pending != nil {
		st.pending.err = err
		close(st.pending.done)
		st.pending = nil
	}
}

// syncer is the store's background commit loop: wait for a kick,
// optionally linger SyncMaxWait to let more batches join the round,
// then flush + fsync once for everything pending. While the fsync runs
// outside the mutex, new appends accumulate into the next round — that
// overlap is the pipeline.
func (st *Store) syncer() {
	defer close(st.syncerDone)
	for {
		select {
		case <-st.syncStop:
			return
		case <-st.kick:
		}
		if d := st.opt.SyncMaxWait; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-st.syncStop:
				// Close/Abandon resolve the pending round themselves
				// (inline sync / failure); nothing left to cover here.
				t.Stop()
				return
			case <-t.C:
			}
		}
		st.syncPendingRound()
	}
}

// syncPendingRound detaches the pending round and completes it with one
// flush + fsync. The fsync runs with st.mu released and st.syncing set;
// inline syncs (rotation, snapshot, Close) wait that flag out under
// st.syncCond before touching the file, so the segment handle cannot be
// closed or rotated under the in-flight fsync.
func (st *Store) syncPendingRound() {
	st.mu.Lock()
	r := st.pending
	if r == nil {
		st.mu.Unlock()
		return
	}
	if st.dead || st.closed || st.f == nil {
		// Close completed the round inline before we got here; Abandon
		// failed it. Either way pending would be nil — reaching this
		// branch with a live round means the segment is gone, so the
		// round can only fail.
		st.failPendingLocked(ErrAbandoned)
		st.mu.Unlock()
		return
	}
	st.pending = nil
	if err := st.bw.Flush(); err != nil {
		r.err = err
		close(r.done)
		st.mu.Unlock()
		return
	}
	f := st.f
	st.syncing = true
	st.mu.Unlock()

	err := st.runFsync(f)

	st.mu.Lock()
	st.syncing = false
	st.syncCond.Broadcast()
	r.err = err
	close(r.done)
	st.mu.Unlock()
}

// runFsync performs one segment fsync, through the shared executor when
// one is configured.
func (st *Store) runFsync(f *os.File) error {
	if ex := st.opt.SyncExec; ex != nil {
		return ex.do(f.Sync)
	}
	return f.Sync()
}

// waitSyncIdleLocked blocks until no background fsync is in flight.
// Caller holds st.mu; the wait releases and reacquires it.
func (st *Store) waitSyncIdleLocked() {
	for st.syncing {
		st.syncCond.Wait()
	}
}
