package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// tenantsSubdir is where a fleet root keeps per-tenant state, one
// directory per tenant ID, each holding that tenant's own WAL and
// snapshots (the layout Open already manages per directory).
const tenantsSubdir = "tenants"

// MaxTenantIDLen bounds tenant IDs so they stay comfortable as both
// directory names and metric label values.
const MaxTenantIDLen = 64

// ValidTenantID reports whether id is safe to use as an on-disk tenant
// directory name: 1..MaxTenantIDLen characters from [A-Za-z0-9._-], and
// not the path-meaningful names "." or "..". The HTTP layer rejects
// anything else with a 400 *before* any filesystem path is formed, so a
// request carrying "../" can never address state outside the fleet root.
func ValidTenantID(id string) bool {
	if id == "" || len(id) > MaxTenantIDLen || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// TenantDir returns the state directory for tenant id under the fleet
// root, refusing invalid IDs rather than joining them into a path.
func TenantDir(root, id string) (string, error) {
	if !ValidTenantID(id) {
		return "", fmt.Errorf("persist: invalid tenant id %q", id)
	}
	return filepath.Join(root, tenantsSubdir, id), nil
}

// ListTenantDirs returns the IDs of every tenant with a state directory
// under root, sorted. A root with no tenants directory yet is an empty
// fleet, not an error. Entries that are not directories or that carry
// names ValidTenantID rejects are skipped: they cannot have been created
// by TenantDir, so they are someone else's files.
func ListTenantDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, tenantsSubdir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && ValidTenantID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
