// Package persist gives the streaming service durable state using
// nothing but the standard library: atomic snapshots of the trained
// model plus a length-prefixed, CRC-checked write-ahead log (WAL) of
// post-sequencer events (DESIGN.md §9).
//
// A state directory holds two kinds of files:
//
//	snap-<seq>-<gen>.snap  framed JSON snapshot taken at WAL position <seq>
//	wal-<seq>-<gen>.log    WAL segment whose first record has sequence <seq>
//
// <seq> is the zero-padded hex sequence number assigned by the stream
// sequencer; <gen> is a per-directory monotone counter that keeps names
// unique across restarts (a recovery may open a new segment at the same
// sequence the torn tail of the old one stopped at). Both are ordered so
// a plain lexical directory listing is also the logical order.
//
// Durability model: Append buffers; the buffer reaches the OS every
// FlushEvery records and is fsynced at snapshot, rotation and Close.
// AppendBatch enqueues a group-committed frame and returns a commit
// Ticket; a background syncer fsyncs once for every ticket that queued
// behind the previous fsync (commit.go), so concurrent batches share a
// flush and a ticket's Wait returning nil means its frames are on
// stable storage. A snapshot is written atomically (temp file + fsync +
// rename + directory fsync) *after* syncing the WAL, so a snapshot at
// position S implies the WAL is durable through S and recovery = load
// newest valid snapshot + replay the WAL tail from S. A torn or corrupt
// frame marks where the durable records of the final segment end —
// exactly what a crash mid-write leaves behind.
package persist

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/raslog"
)

// Options tunes a Store. The zero value is usable.
type Options struct {
	// RotateBytes starts a new WAL segment once the current one exceeds
	// this size. Zero means 8 MiB.
	RotateBytes int64
	// FlushEvery pushes the WAL write buffer to the OS every this many
	// records. Zero means 64; 1 makes every appended record durable
	// against process death (fsync — durability against OS crash —
	// happens at snapshot, rotation and Close).
	FlushEvery int
	// KeepSnapshots bounds how many snapshot files are retained: the
	// newest plus fallbacks in case the newest is unreadable. Zero
	// means 2.
	KeepSnapshots int
	// FollowerTTL bounds how long a registered follower's ack keeps WAL
	// segments from being pruned without a refresh (RetainFollower).
	// Zero means 10 minutes.
	FollowerTTL time.Duration
	// SyncMaxWait is an optional coalescing delay for the asynchronous
	// commit pipeline (commit.go): after being woken, the background
	// syncer lingers this long so more AppendBatch tickets can join the
	// round before the shared fsync. Zero syncs as soon as the syncer is
	// free — the pipeline still coalesces everything that arrives while
	// an fsync is in flight (self-clocking), so the knob only matters at
	// low concurrency where extra latency buys a deeper group.
	SyncMaxWait time.Duration
	// SyncExec, when set, runs this store's background fsyncs under a
	// shared concurrency bound (fleet mode: many tenant stores, one
	// disk). Nil runs them directly.
	SyncExec *SyncExecutor
}

func (o Options) withDefaults() Options {
	if o.RotateBytes <= 0 {
		o.RotateBytes = 8 << 20
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// ErrClosed is returned by writes after Close.
var ErrClosed = errors.New("persist: store closed")

// Store is one state directory: the WAL appender plus the snapshot
// reader/writer. All methods are safe for concurrent use; the intended
// split is one appender (the stream sequencer) and one snapshotter (the
// stream collector).
type Store struct {
	dir string
	opt Options

	mu        sync.Mutex
	dead      bool // Abandon: every later call is a silent no-op
	closed    bool
	gen       int // monotone file-name disambiguator for this directory
	f         *os.File
	bw        *bufio.Writer
	segBytes  int64
	unflushed int
	nextSeq   uint64
	appending bool
	scratch   []byte // frame encoding buffer, reused across Appends
	payload   []byte // event encoding buffer, reused across Appends

	// Asynchronous commit pipeline (commit.go). pending is the round the
	// next background fsync will cover; syncing marks an fsync in flight
	// with mu released, and syncCond (on mu) is broadcast when it lands
	// so inline syncs can wait the flag out. The syncer goroutine starts
	// lazily at StartAppend and exits via syncStop.
	pending     *commitRound
	syncing     bool
	syncCond    *sync.Cond
	kick        chan struct{}
	syncStop    chan struct{}
	syncStopped bool
	syncerDone  chan struct{}

	// Retention guard (segments.go): registered follower acks plus pins
	// held by in-flight segment reads; pruneLocked keeps every segment
	// holding records at or above the guard's floor.
	followers map[string]followerAck
	pins      map[int]uint64
	pinID     int
}

// Open creates dir if needed and returns a store over it. Existing state
// is left untouched: call LoadSnapshot / Replay to read it, then
// StartAppend to position the WAL for new records.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	st := &Store{dir: dir, opt: opt.withDefaults()}
	st.syncCond = sync.NewCond(&st.mu)
	names, err := st.listNames()
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if _, gen, ok := parseStateName(n); ok && gen > st.gen {
			st.gen = gen
		}
	}
	return st, nil
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// StartAppend positions the WAL so the next Append must carry sequence
// seq — call it once, after Replay, with the sequence Replay returned. A
// fresh segment is created lazily on the first Append, so a restart that
// never ingests anything leaves the directory untouched.
func (st *Store) StartAppend(seq uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead {
		return nil
	}
	if st.closed {
		return ErrClosed
	}
	st.nextSeq = seq
	st.appending = true
	st.startSyncerLocked()
	return nil
}

// Append writes one event frame to the WAL and returns the bytes
// appended. seq must be exactly the next sequence (the stream assigns
// them densely; a skip would silently corrupt replay positioning, so it
// is rejected loudly instead).
func (st *Store) Append(seq uint64, e raslog.Event) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead {
		return 0, nil
	}
	if st.closed {
		return 0, ErrClosed
	}
	if !st.appending {
		return 0, errors.New("persist: Append before StartAppend")
	}
	if seq != st.nextSeq {
		return 0, fmt.Errorf("persist: out-of-order append: seq %d, want %d", seq, st.nextSeq)
	}
	if st.f == nil || st.segBytes >= st.opt.RotateBytes {
		if err := st.rotateLocked(seq); err != nil {
			return 0, err
		}
	}
	st.payload = appendEvent(st.payload[:0], e)
	st.scratch = appendFrame(st.scratch[:0], st.payload)
	n, err := st.bw.Write(st.scratch)
	st.segBytes += int64(n)
	if err != nil {
		return n, err
	}
	st.nextSeq++
	st.unflushed++
	if st.unflushed >= st.opt.FlushEvery {
		st.unflushed = 0
		if err := st.bw.Flush(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// AppendBatch writes events as one group-committed WAL record occupying
// sequences seq..seq+len(events)-1: the frame payload is the events'
// encodings back to back, so the whole batch becomes durable with one
// fsync — the per-batch durability cost is constant where per-event
// Append pays it per record (given FlushEvery 1). The fsync itself is
// asynchronous (commit.go): AppendBatch enqueues the frame, wakes the
// background syncer, and returns a Ticket that resolves when the
// covering fsync lands, so concurrent batches share one disk flush
// instead of serializing behind each other's. Callers that need the old
// synchronous behavior just Wait on the ticket.
//
// A one-event batch produces a byte-identical frame to Append, and
// Replay decodes either shape, so batched and unbatched segments
// interleave freely in one directory. Returns the bytes appended.
func (st *Store) AppendBatch(seq uint64, events []raslog.Event) (int, Ticket, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead {
		// The dead store is a silent no-op, but the events were NOT made
		// durable: the ticket must fail so no caller acks them.
		return 0, FailedTicket(ErrAbandoned), nil
	}
	if st.closed {
		return 0, Ticket{}, ErrClosed
	}
	if !st.appending {
		return 0, Ticket{}, errors.New("persist: AppendBatch before StartAppend")
	}
	if seq != st.nextSeq {
		return 0, Ticket{}, fmt.Errorf("persist: out-of-order append: seq %d, want %d", seq, st.nextSeq)
	}
	if len(events) == 0 {
		return 0, Ticket{}, nil
	}
	if st.f == nil || st.segBytes >= st.opt.RotateBytes {
		if err := st.rotateLocked(seq); err != nil {
			return 0, Ticket{}, err
		}
	}
	st.payload = st.payload[:0]
	for i := range events {
		st.payload = appendEvent(st.payload, events[i])
	}
	st.scratch = appendFrame(st.scratch[:0], st.payload)
	n, err := st.bw.Write(st.scratch)
	st.segBytes += int64(n)
	if err != nil {
		return n, FailedTicket(err), err
	}
	st.nextSeq += uint64(len(events))
	// Honor FlushEvery at append time even though the fsync is deferred:
	// callers that do not Wait on the ticket (the non-acked single-event
	// path) rely on the PR 4 contract that a record counted into the
	// store survives a process kill once the write buffer reaches the OS.
	// The background syncer flushes too, but only when its round runs —
	// this keeps the flush horizon deterministic per the option.
	st.unflushed += len(events)
	if st.unflushed >= st.opt.FlushEvery {
		st.unflushed = 0
		if err := st.bw.Flush(); err != nil {
			return n, FailedTicket(err), err
		}
	}
	return n, st.enqueueCommitLocked(), nil
}

// rotateLocked syncs and closes the current segment (if any) and opens a
// new one whose first record will carry firstSeq. The old segment is
// fully durable before the new one exists, which is what confines torn
// tails to the final segment.
func (st *Store) rotateLocked(firstSeq uint64) error {
	if st.f != nil {
		if err := st.syncLocked(); err != nil {
			return err
		}
		if err := st.f.Close(); err != nil {
			return err
		}
		st.f, st.bw = nil, nil
	}
	st.gen++
	path := filepath.Join(st.dir, walName(firstSeq, st.gen))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	st.f = f
	st.bw = bufio.NewWriterSize(f, 1<<16)
	st.segBytes = 0
	st.unflushed = 0
	return syncDir(st.dir)
}

// Flush pushes buffered WAL bytes to the OS (no fsync).
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead || st.bw == nil {
		return nil
	}
	return st.bw.Flush()
}

// Sync flushes and fsyncs the current WAL segment.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead {
		return nil
	}
	return st.syncLocked()
}

// syncLocked is the inline (synchronous) flush + fsync used by
// rotation, snapshots, Sync and Close. It first waits out any fsync the
// background syncer has in flight (the file handle must not be rotated
// or closed under it), then completes the pending commit round — its
// tickets are covered by this fsync exactly as they would have been by
// the syncer's.
func (st *Store) syncLocked() error {
	st.waitSyncIdleLocked()
	r := st.pending
	st.pending = nil
	var err error
	if st.f != nil {
		if err = st.bw.Flush(); err == nil {
			err = st.f.Sync()
		}
	}
	if r != nil {
		r.err = err
		close(r.done)
	}
	return err
}

// Abandon simulates abrupt process death for crash tests: the write
// buffer is discarded, the segment handle is closed without flushing,
// and every later call on the store is a silent no-op. The directory is
// left exactly as a real kill at this instant would leave it. Tickets
// still pending fail with ErrAbandoned — their fsync never happened, so
// their waiters must not acknowledge; a round whose fsync was already
// in flight resolves with that fsync's real outcome (just as a real
// kill can land an instant after the data hit the disk).
func (st *Store) Abandon() {
	st.mu.Lock()
	st.dead = true
	if st.f != nil {
		_ = st.f.Close() // deliberately without flushing st.bw
		st.f, st.bw = nil, nil
	}
	st.failPendingLocked(ErrAbandoned)
	st.stopSyncerLocked()
	done := st.syncerDone
	st.mu.Unlock()
	if done != nil {
		<-done // syncer resolves any in-flight round before exiting
	}
}

// Close makes the WAL durable and releases the store. The inline sync
// completes any pending commit round, so every outstanding ticket
// resolves (successfully) before the segment handle goes away. Safe to
// call more than once.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.dead || st.closed {
		st.closed = true
		st.stopSyncerLocked()
		done := st.syncerDone
		st.mu.Unlock()
		if done != nil {
			<-done
		}
		return nil
	}
	st.closed = true
	var err error
	if st.f != nil {
		err = st.syncLocked()
		if cerr := st.f.Close(); err == nil {
			err = cerr
		}
		st.f, st.bw = nil, nil
	}
	st.stopSyncerLocked()
	done := st.syncerDone
	st.mu.Unlock()
	if done != nil {
		<-done
	}
	return err
}

// ---------------------------------------------------------------------------
// Directory listing and naming.
// ---------------------------------------------------------------------------

const (
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func walName(seq uint64, gen int) string {
	return fmt.Sprintf("%s%016x-%08x%s", walPrefix, seq, gen, walSuffix)
}

func snapName(seq uint64, gen int) string {
	return fmt.Sprintf("%s%016x-%08x%s", snapPrefix, seq, gen, snapSuffix)
}

// parseStateName decodes either file-name shape, returning ok=false for
// foreign files (which the store ignores entirely).
func parseStateName(name string) (seq uint64, gen int, ok bool) {
	var body string
	switch {
	case strings.HasPrefix(name, walPrefix) && strings.HasSuffix(name, walSuffix):
		body = strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix)
	case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
		body = strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	default:
		return 0, 0, false
	}
	var g int
	if n, err := fmt.Sscanf(body, "%16x-%8x", &seq, &g); n != 2 || err != nil {
		return 0, 0, false
	}
	return seq, g, true
}

func (st *Store) listNames() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		if !ent.IsDir() {
			names = append(names, ent.Name())
		}
	}
	return names, nil
}

// fileRef is one parsed state file, ordered by (seq, gen).
type fileRef struct {
	name string
	seq  uint64
	gen  int
}

func (st *Store) listRefs(prefix string) ([]fileRef, error) {
	names, err := st.listNames()
	if err != nil {
		return nil, err
	}
	var out []fileRef
	for _, n := range names {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		if seq, gen, ok := parseStateName(n); ok {
			out = append(out, fileRef{name: n, seq: seq, gen: gen})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].seq != out[j].seq {
			return out[i].seq < out[j].seq
		}
		return out[i].gen < out[j].gen
	})
	return out, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable. Best-effort on platforms where directories reject fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}
