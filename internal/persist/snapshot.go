package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/learner"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/stats"
)

// Snapshot is the service's full durable state at one consistent cut:
// every event with sequence < Seq is reflected in it, every later event
// is recovered from the WAL. Stream-time fields are milliseconds.
type Snapshot struct {
	// Seq is the cut position: WAL replay resumes here.
	Seq uint64 `json:"seq"`

	StreamStartMs int64 `json:"stream_start_ms"`
	WatermarkMs   int64 `json:"watermark_ms"`
	NextRetrainMs int64 `json:"next_retrain_ms"`
	LastFatalMs   int64 `json:"last_fatal_ms"`

	Counters Counters `json:"counters"`

	// Rules is the trained repository in wire form (Dist flattened).
	Rules []Rule `json:"rules,omitempty"`
	// Temporal / Spatial are the filter stages' resident keys.
	Temporal []preprocess.TemporalEntry `json:"temporal,omitempty"`
	Spatial  []preprocess.SpatialEntry  `json:"spatial,omitempty"`
	// Predictor is the live predictor's runtime state; nil before the
	// first training pass.
	Predictor *predictor.State `json:"predictor,omitempty"`
	// History is the retraining window; Warnings the recent-warnings ring.
	History  []preprocess.TaggedEvent `json:"history,omitempty"`
	Warnings []predictor.Warning      `json:"warnings,omitempty"`
	// Retrains carries the service's retrain records opaquely (their type
	// is private to the stream package).
	Retrains json.RawMessage `json:"retrains,omitempty"`
	// Incr carries the incremental sufficient-statistics state
	// (learner/incr wire form, versioned separately) so a recovered
	// service's first retrain is a delta-apply instead of a cold rebuild.
	// Optional: a snapshot without it — or with an incompatible version —
	// recovers fine, at the cost of one full rebuild.
	Incr json.RawMessage `json:"incr,omitempty"`
}

// Counters are the pipeline counters consistent with the cut, so a
// recovered service's /stats continues instead of restarting from zero.
type Counters struct {
	Sequenced     int64 `json:"sequenced"`
	LateDropped   int64 `json:"late_dropped"`
	Overflow      int64 `json:"overflow"`
	AfterTemporal int64 `json:"after_temporal"`
	Processed     int64 `json:"processed"`
	Fatals        int64 `json:"fatals"`
	Warnings      int64 `json:"warnings"`
}

// Rule is the serialized form of learner.Rule: identical fields, with
// the Distribution interface flattened to a named parameter vector.
type Rule struct {
	Kind       int     `json:"kind"`
	Body       []int   `json:"body,omitempty"`
	Target     int     `json:"target"`
	Confidence float64 `json:"confidence"`
	Support    float64 `json:"support"`
	Count      int     `json:"count"`
	ElapsedSec int64   `json:"elapsed_sec"`
	Dist       *Dist   `json:"dist,omitempty"`
}

// Dist names a fitted distribution and its parameters, in the family's
// canonical order: weibull (scale, shape), exponential (scale),
// lognormal (mu, sigma). Float64 JSON round trips are exact, so a
// restored distribution is bit-identical to the fitted one.
type Dist struct {
	Name   string    `json:"name"`
	Params []float64 `json:"params"`
}

// EncodeRules converts repository rules to wire form. An unknown
// distribution type is a programming error (a new family was added
// without teaching the codec) and fails loudly.
func EncodeRules(rules []learner.Rule) ([]Rule, error) {
	out := make([]Rule, len(rules))
	for i, r := range rules {
		w := Rule{
			Kind:       int(r.Kind),
			Body:       r.Body,
			Target:     r.Target,
			Confidence: r.Confidence,
			Support:    r.Support,
			Count:      r.Count,
			ElapsedSec: r.ElapsedSec,
		}
		switch d := r.Dist.(type) {
		case nil:
		case stats.Weibull:
			w.Dist = &Dist{Name: d.Name(), Params: []float64{d.Scale, d.Shape}}
		case stats.Exponential:
			w.Dist = &Dist{Name: d.Name(), Params: []float64{d.Scale}}
		case stats.LogNormal:
			w.Dist = &Dist{Name: d.Name(), Params: []float64{d.Mu, d.Sigma}}
		default:
			return nil, fmt.Errorf("persist: rule %q: unsupported distribution type %T", r.ID(), r.Dist)
		}
		out[i] = w
	}
	return out, nil
}

// DecodeRules converts wire rules back. Unknown or malformed
// distributions fail loudly rather than reviving a rule that cannot
// predict.
func DecodeRules(wire []Rule) ([]learner.Rule, error) {
	out := make([]learner.Rule, len(wire))
	for i, w := range wire {
		r := learner.Rule{
			Kind:       learner.Kind(w.Kind),
			Body:       w.Body,
			Target:     w.Target,
			Confidence: w.Confidence,
			Support:    w.Support,
			Count:      w.Count,
			ElapsedSec: w.ElapsedSec,
		}
		if w.Dist != nil {
			d, err := decodeDist(*w.Dist)
			if err != nil {
				return nil, fmt.Errorf("persist: rule %d: %w", i, err)
			}
			r.Dist = d
		}
		out[i] = r
	}
	return out, nil
}

func decodeDist(w Dist) (stats.Distribution, error) {
	want := map[string]int{"weibull": 2, "exponential": 1, "lognormal": 2}[w.Name]
	if want == 0 {
		return nil, fmt.Errorf("unknown distribution family %q", w.Name)
	}
	if len(w.Params) != want {
		return nil, fmt.Errorf("distribution %q wants %d params, got %d", w.Name, want, len(w.Params))
	}
	switch w.Name {
	case "weibull":
		return stats.NewWeibull(w.Params[0], w.Params[1])
	case "exponential":
		return stats.NewExponential(w.Params[0])
	default:
		return stats.NewLogNormal(w.Params[0], w.Params[1])
	}
}

// WriteSnapshot persists s atomically and returns the bytes written. The
// sequence order is what makes recovery sound: the WAL is synced first,
// so the snapshot's existence implies the log is durable through s.Seq;
// then temp file + fsync + rename + directory fsync publish the snapshot
// all-or-nothing; only then are superseded snapshots and WAL segments
// wholly below s.Seq removed.
func (st *Store) WriteSnapshot(s *Snapshot) (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead {
		return 0, nil
	}
	if st.closed {
		return 0, ErrClosed
	}
	if err := st.syncLocked(); err != nil {
		return 0, err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return 0, fmt.Errorf("persist: snapshot encode: %w", err)
	}
	frame := appendFrame(make([]byte, 0, len(payload)+frameHeader), payload)

	st.gen++
	final := filepath.Join(st.dir, snapName(s.Seq, st.gen))
	tmp := final + tmpSuffix
	if err := writeFileSync(tmp, frame); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	if err := syncDir(st.dir); err != nil {
		return 0, err
	}
	if err := st.pruneLocked(s.Seq); err != nil {
		return 0, err
	}
	return int64(len(frame)), nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(b)
	serr := f.Sync()
	cerr := f.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			os.Remove(path)
			return e
		}
	}
	return nil
}

// pruneLocked removes snapshots beyond the retention count and WAL
// segments every record of which predates the retention floor: the
// snapshot at snapSeq, lowered by any registered follower's ack and any
// in-flight segment read (segments.go). A segment's records end where
// the next segment's begin, so segment i is removable exactly when
// segment i+1 starts at or below the floor; the newest segment (possibly
// open for appending) is never removed. A slow follower therefore grows
// retention instead of tearing a hole in the chain it still has to pull.
func (st *Store) pruneLocked(snapSeq uint64) error {
	snaps, err := st.listRefs(snapPrefix)
	if err != nil {
		return err
	}
	for i := 0; i < len(snaps)-st.opt.KeepSnapshots; i++ {
		if err := os.Remove(filepath.Join(st.dir, snaps[i].name)); err != nil {
			return err
		}
	}
	floor := st.retainFloorLocked(snapSeq)
	segs, err := st.listRefs(walPrefix)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq > floor {
			break
		}
		if err := os.Remove(filepath.Join(st.dir, segs[i].name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot returns the newest snapshot that reads back valid, or nil
// when none exists. An unreadable or corrupt newer file is skipped — the
// fallback retained by KeepSnapshots plus a longer WAL replay recover
// the same state.
func (st *Store) LoadSnapshot() (*Snapshot, error) {
	snaps, err := st.listRefs(snapPrefix)
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := readSnapshotFile(filepath.Join(st.dir, snaps[i].name))
		if err == nil {
			return s, nil
		}
	}
	return nil, nil
}

func readSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, errors.New("persist: trailing bytes after snapshot frame")
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
