package persist

// Read-side segment API: what leader/follower replication ships over the
// wire (DESIGN.md §14). A leader serves its WAL segments to followers
// frame by frame; a follower decodes them, appends the events to its own
// WAL and replays them through the live stage logic. Everything here
// reads the same frame format the appender writes, so the replicated
// byte stream is the durable byte stream — there is no second encoding
// to drift.
//
// Two guards keep pruning honest while segments are being read:
//
//   - Follower acks: RetainFollower records how far each registered
//     follower has replicated; pruneLocked never removes a segment a
//     live follower still needs. A slow follower therefore degrades to
//     bounded retention growth on the leader, not to a fatal WAL gap on
//     the follower. Registrations expire after Options.FollowerTTL so a
//     follower that died without deregistering cannot pin the WAL
//     forever.
//   - Read pins: CopySegment pins the segment it is streaming for the
//     duration of the read, so a snapshot-triggered prune racing an
//     in-flight pull cannot unlink the file mid-transfer and the
//     follower's immediate retry still finds the chain contiguous.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/raslog"
)

// SegmentInfo describes one WAL segment for the read-side API.
type SegmentInfo struct {
	// Name is the segment's file name (wal-<seq>-<gen>.log); the unit a
	// follower requests.
	Name string `json:"name"`
	// FirstSeq is the sequence of the segment's first record.
	FirstSeq uint64 `json:"first_seq"`
	// Size is the segment's current byte size. For the actively-appended
	// segment this moves between calls.
	Size int64 `json:"size"`
}

// ErrNoSegment is returned by segment reads for a name the directory
// does not hold (pruned, or never existed).
var ErrNoSegment = errors.New("persist: no such WAL segment")

// Segments lists the WAL segments in (seq, gen) order along with the
// next append sequence — the durable stream's exclusive upper bound as
// far as this store has flushed it. The write buffer is flushed first so
// the listing's sizes (and a follower's subsequent read) cover every
// record the store has acknowledged.
func (st *Store) Segments() ([]SegmentInfo, uint64, error) {
	st.mu.Lock()
	if st.bw != nil && !st.dead {
		if err := st.bw.Flush(); err != nil {
			st.mu.Unlock()
			return nil, 0, err
		}
	}
	next := st.nextSeq
	st.mu.Unlock()

	refs, err := st.listRefs(walPrefix)
	if err != nil {
		return nil, 0, err
	}
	out := make([]SegmentInfo, 0, len(refs))
	for _, ref := range refs {
		fi, err := os.Stat(filepath.Join(st.dir, ref.name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between the listing and the stat
			}
			return nil, 0, err
		}
		out = append(out, SegmentInfo{Name: ref.name, FirstSeq: ref.seq, Size: fi.Size()})
	}
	return out, next, nil
}

// NextSeq returns the sequence the next Append will carry.
func (st *Store) NextSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextSeq
}

// ReadSegment streams the named segment's durable records with sequence
// >= from to fn, in order, returning the sequence after the last record
// delivered. A torn or truncated tail — the live appender's unflushed
// frontier, or a crash scar — ends the read cleanly; a later call simply
// reads further once more bytes are durable. from below the segment's
// first record is an error (the caller asked for history this segment
// does not hold).
func (st *Store) ReadSegment(name string, from uint64, fn func(seq uint64, e raslog.Event) error) (uint64, error) {
	firstSeq, _, ok := parseStateName(name)
	if !ok || !isWALName(name) {
		return 0, fmt.Errorf("%w: %q", ErrNoSegment, name)
	}
	if from < firstSeq {
		return 0, fmt.Errorf("persist: segment %s starts at seq %d, asked from %d", name, firstSeq, from)
	}
	release := st.pinSegment(firstSeq)
	defer release()
	f, err := os.Open(filepath.Join(st.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %q", ErrNoSegment, name)
		}
		return 0, err
	}
	defer f.Close()
	return scanFrames(bufio.NewReaderSize(f, 1<<16), firstSeq, from, fn)
}

// CopySegment re-frames the named segment's durable records with
// sequence >= from onto w in the WAL's own frame format, stopping after
// roughly maxBytes of payload (0 means unbounded) or at the segment's
// durable end, whichever comes first. Records are regrouped — a frame
// boundary on the wire need not match the on-disk group commit — but the
// event encodings are byte-identical, so the receiver's WAL appends
// reproduce the same stream. Returns the bytes written and the sequence
// after the last record shipped. The segment is pinned against pruning
// for the duration of the copy.
func (st *Store) CopySegment(w io.Writer, name string, from uint64, maxBytes int64) (written int64, next uint64, err error) {
	const (
		groupEvents = 512
		groupBytes  = 256 << 10
	)
	var payload, frame []byte
	var inGroup int
	flush := func() error {
		if inGroup == 0 {
			return nil
		}
		frame = appendFrame(frame[:0], payload)
		n, werr := w.Write(frame)
		written += int64(n)
		payload, inGroup = payload[:0], 0
		return werr
	}
	next, err = st.ReadSegment(name, from, func(seq uint64, e raslog.Event) error {
		if maxBytes > 0 && written >= maxBytes {
			return errCopyFull
		}
		payload = appendEvent(payload, e)
		inGroup++
		if inGroup >= groupEvents || len(payload) >= groupBytes {
			return flush()
		}
		return nil
	})
	if err == errCopyFull {
		err = nil
	}
	if err != nil {
		return written, next, err
	}
	return written, next, flush()
}

// errCopyFull stops a CopySegment scan at its byte budget; the events
// already grouped are flushed and the next request resumes at `next`.
var errCopyFull = errors.New("persist: copy budget reached")

// DecodeFrames reads WAL frames from r — the format CopySegment writes
// and the appender persists — invoking fn per event with sequence
// numbers assigned densely from `from`. A torn or truncated tail (a
// transfer cut off by the sender's death) ends the stream cleanly, like
// a torn segment tail on disk: the return is the sequence after the last
// whole record, which is exactly where the receiver retries. Errors from
// fn abort and surface as-is.
func DecodeFrames(r io.Reader, from uint64, fn func(seq uint64, e raslog.Event) error) (uint64, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return scanFrames(br, from, from, fn)
}

// scanFrames is the shared frame walk: records in [from, ∞) of a stream
// whose first record carries firstSeq, stopping cleanly at EOF or a torn
// frame. Callback errors abort the walk (the frame's remaining records
// are not delivered; the returned seq is where delivery stopped).
func scanFrames(r *bufio.Reader, firstSeq, from uint64, fn func(seq uint64, e raslog.Event) error) (uint64, error) {
	seq := firstSeq
	for {
		payload, err := readFrame(r)
		if err == io.EOF || errors.Is(err, errTorn) {
			return seq, nil
		}
		if err != nil {
			return seq, err
		}
		d := eventDecoder{buf: payload}
		for len(d.buf) > 0 {
			e, derr := d.event()
			if derr != nil {
				return seq, fmt.Errorf("persist: record %d: %w", seq, derr)
			}
			if seq >= from {
				if err := fn(seq, e); err != nil {
					return seq, err
				}
			}
			seq++
		}
	}
}

func isWALName(name string) bool {
	return len(name) > len(walPrefix)+len(walSuffix) &&
		name[:len(walPrefix)] == walPrefix &&
		name[len(name)-len(walSuffix):] == walSuffix
}

// ---------------------------------------------------------------------------
// Retention guard: follower acks + read pins.
// ---------------------------------------------------------------------------

// followerAck is one registered follower's replication progress.
type followerAck struct {
	acked uint64
	seen  time.Time
}

// RetainFollower records that follower id has durably replicated every
// record below acked: pruning keeps any segment holding records >= the
// minimum acked position across live followers. Registration is
// refreshed by every call and expires after Options.FollowerTTL, so a
// follower that vanishes stops pinning retention after one TTL. The
// guard is in-memory: a leader restart forgets its followers until their
// next poll re-registers them (pruning only runs at snapshot writes, so
// the window is narrow; see DESIGN.md §14).
func (st *Store) RetainFollower(id string, acked uint64) {
	if id == "" {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.followers == nil {
		st.followers = make(map[string]followerAck)
	}
	st.followers[id] = followerAck{acked: acked, seen: time.Now()}
}

// DropFollower deregisters a follower (a promoted or retired standby no
// longer holds retention back).
func (st *Store) DropFollower(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.followers, id)
}

// Followers returns the registered, unexpired follower acks.
func (st *Store) Followers() map[string]uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	ttl := st.followerTTL()
	out := make(map[string]uint64, len(st.followers))
	for id, f := range st.followers {
		if time.Since(f.seen) <= ttl {
			out[id] = f.acked
		}
	}
	return out
}

func (st *Store) followerTTL() time.Duration {
	if st.opt.FollowerTTL > 0 {
		return st.opt.FollowerTTL
	}
	return 10 * time.Minute
}

// pinSegment marks a segment (by its first sequence) as being read, so
// pruning keeps it and everything after it until release.
func (st *Store) pinSegment(firstSeq uint64) (release func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pins == nil {
		st.pins = make(map[int]uint64)
	}
	st.pinID++
	id := st.pinID
	st.pins[id] = firstSeq
	return func() {
		st.mu.Lock()
		delete(st.pins, id)
		st.mu.Unlock()
	}
}

// retainFloorLocked is the lowest sequence pruning must keep reachable:
// the snapshot cut, lowered by any live follower's ack and any in-flight
// segment read. Caller holds st.mu.
func (st *Store) retainFloorLocked(snapSeq uint64) uint64 {
	floor := snapSeq
	ttl := st.followerTTL()
	now := time.Now()
	for id, f := range st.followers {
		if now.Sub(f.seen) > ttl {
			delete(st.followers, id)
			continue
		}
		if f.acked < floor {
			floor = f.acked
		}
	}
	for _, seq := range st.pins {
		if seq < floor {
			floor = seq
		}
	}
	return floor
}
