package persist

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/raslog"
)

// copyDecode round-trips CopySegment output through DecodeFrames — the
// follower's read path.
func copyDecode(t *testing.T, st *Store, name string, from uint64, maxBytes int64) ([]raslog.Event, uint64) {
	t.Helper()
	var buf bytes.Buffer
	_, next, err := st.CopySegment(&buf, name, from, maxBytes)
	if err != nil {
		t.Fatalf("CopySegment(%s, %d): %v", name, from, err)
	}
	var evs []raslog.Event
	wantSeq := from
	dnext, err := DecodeFrames(bytes.NewReader(buf.Bytes()), from, func(seq uint64, e raslog.Event) error {
		if seq != wantSeq {
			t.Fatalf("decode out of order: seq %d, want %d", seq, wantSeq)
		}
		wantSeq++
		evs = append(evs, e)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if dnext != next {
		t.Fatalf("DecodeFrames ended at %d, CopySegment reported %d", dnext, next)
	}
	return evs, next
}

// TestReadActiveSegmentExtends is the live-tail contract: a segment read
// while the leader is still appending to it returns everything durable
// so far as a clean end — and a retry from that position picks up the
// extension. This is exactly a follower tailing a leader's open segment.
func TestReadActiveSegmentExtends(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartAppend(0)
	const first, second = 25, 40
	for i := 0; i < first; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}

	segs, next, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || next != first {
		t.Fatalf("Segments: %d segments, next %d; want 1, %d", len(segs), next, first)
	}
	evs, got := copyDecode(t, st, segs[0].Name, 0, 1<<20)
	if got != first || len(evs) != first {
		t.Fatalf("live read: %d events, next %d; want %d", len(evs), got, first)
	}

	// The segment grows underneath the reader; a retry from the previous
	// durable end sees only the extension.
	for i := first; i < second; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	evs, got = copyDecode(t, st, segs[0].Name, first, 1<<20)
	if got != second || len(evs) != second-first {
		t.Fatalf("extension read: %d events, next %d; want %d, %d", len(evs), got, second-first, second)
	}
	for i, e := range evs {
		if e != testEvent(first + i) {
			t.Fatalf("extension event %d differs", first+i)
		}
	}
}

// TestDecodeFramesTornTransfer: a transfer cut mid-frame (the leader
// died, the connection dropped) decodes as a clean end at the last whole
// frame — the follower applies the prefix and re-requests the rest.
func TestDecodeFramesTornTransfer(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartAppend(0)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := st.CopySegment(&buf, segs[0].Name, 0, 1<<20); err != nil {
		t.Fatal(err)
	}

	whole := buf.Bytes()
	for _, cut := range []int{len(whole) - 1, len(whole) - 5, len(whole) / 2, 3} {
		count := 0
		next, err := DecodeFrames(bytes.NewReader(whole[:cut]), 0, func(seq uint64, e raslog.Event) error {
			if e != testEvent(int(seq)) {
				t.Fatalf("cut %d: event %d differs", cut, seq)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: DecodeFrames: %v", cut, err)
		}
		if int(next) != count || count >= n {
			t.Fatalf("cut %d: %d events, next %d; want a clean strict prefix", cut, count, next)
		}
	}
}

// TestCopySegmentFromRotationBoundary pins the `from` semantics at
// segment edges: from exactly at the next segment's first seq drains the
// older segment to zero events, and the newer segment starts exactly
// there — no duplicate, no gap.
func TestCopySegmentFromRotationBoundary(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushEvery: 1, RotateBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartAppend(0)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, next, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	boundary := segs[1].FirstSeq

	// from == the older segment's end: zero events, clean end at the end
	// of that segment's records.
	evs, got := copyDecode(t, st, segs[0].Name, boundary, 1<<20)
	if len(evs) != 0 || got != boundary {
		t.Fatalf("old segment from boundary: %d events, next %d; want 0, %d", len(evs), got, boundary)
	}
	// The newer segment serves the boundary record itself.
	evs, _ = copyDecode(t, st, segs[1].Name, boundary, 1<<20)
	if len(evs) == 0 || evs[0] != testEvent(int(boundary)) {
		t.Fatalf("new segment from boundary: first event wrong (%d events)", len(evs))
	}
	// And from below a segment's first seq is refused — the caller asked
	// for records this file cannot prove dense coverage for.
	if _, _, err := st.CopySegment(&bytes.Buffer{}, segs[1].Name, boundary-1, 1<<20); err == nil {
		t.Fatal("CopySegment accepted from below the segment's first seq")
	}
	_ = next

	// A byte budget smaller than the segment resumes exactly where the
	// flushed copy ended.
	evs1, mid := copyDecode(t, st, segs[0].Name, 0, 1)
	if mid == 0 || int(mid) >= int(boundary) && len(evs1) == 0 {
		t.Fatalf("budgeted copy made no progress (next %d)", mid)
	}
	evs2, end := copyDecode(t, st, segs[0].Name, mid, 1<<20)
	if end != boundary || len(evs1)+len(evs2) != int(boundary) {
		t.Fatalf("budget resume: %d+%d events, end %d; want %d total", len(evs1), len(evs2), end, boundary)
	}
}

// TestPruneSparesFollowerAndPinnedSegments is the retention-guard test:
// a registered follower ack and an in-flight segment read both hold
// segments a snapshot would otherwise prune; dropping the follower (or
// its TTL lapsing) releases them at the next snapshot.
func TestPruneSparesFollowerAndPinnedSegments(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushEvery: 1, RotateBytes: 256, KeepSnapshots: 1, FollowerTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartAppend(0)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}

	// A follower acked at seq 5: a snapshot at 40 must keep the chain
	// from 5 on, because pruning it would tear the replica's only source.
	st.RetainFollower("replica-1", 5)
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 40}); err != nil {
		t.Fatal(err)
	}
	after, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if after[0].FirstSeq > 5 {
		t.Fatalf("prune tore the follower's chain: oldest segment now starts at %d, follower acked 5", after[0].FirstSeq)
	}
	// The replica must still be able to read seq 5 end to end.
	evs, _ := copyDecode(t, st, after[0].Name, after[0].FirstSeq, 1<<20)
	if len(evs) == 0 {
		t.Fatal("retained segment is unreadable")
	}

	// Prune racing an in-flight pull: a reader mid-segment pins it even
	// with no follower registered.
	st.DropFollower("replica-1")
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := st.ReadSegment(after[0].Name, after[0].FirstSeq, func(seq uint64, e raslog.Event) error {
			if seq == after[0].FirstSeq {
				close(started)
				<-release
			}
			return nil
		})
		done <- err
	}()
	<-started
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 45}); err != nil {
		t.Fatal(err)
	}
	mid, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if mid[0].FirstSeq != after[0].FirstSeq {
		t.Fatalf("prune removed a segment with an in-flight read (oldest now %d)", mid[0].FirstSeq)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("pinned read failed: %v", err)
	}

	// With the ack dropped and the pin released, the next snapshot prunes.
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 45}); err != nil {
		t.Fatal(err)
	}
	final, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if final[0].FirstSeq <= 5 {
		t.Fatalf("segments not pruned after guard release: oldest still %d", final[0].FirstSeq)
	}
}

// TestFollowerTTLExpiry: a follower that stops polling ages out of the
// retention guard instead of growing the WAL forever.
func TestFollowerTTLExpiry(t *testing.T) {
	st, err := Open(t.TempDir(), Options{FlushEvery: 1, RotateBytes: 256, KeepSnapshots: 1, FollowerTTL: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.StartAppend(0)
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := st.Append(uint64(i), testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.RetainFollower("ghost", 0)
	if got := st.Followers(); len(got) != 1 || got["ghost"] != 0 {
		t.Fatalf("Followers: %v, want ghost@0", got)
	}
	time.Sleep(20 * time.Millisecond)
	if got := st.Followers(); len(got) != 0 {
		t.Fatalf("expired follower still listed: %v", got)
	}
	if _, err := st.WriteSnapshot(&Snapshot{Seq: 40}); err != nil {
		t.Fatal(err)
	}
	segs, _, err := st.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].FirstSeq == 0 {
		t.Fatal("expired follower's ack still blocks pruning")
	}
}
