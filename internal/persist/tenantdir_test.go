package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestValidTenantID(t *testing.T) {
	for _, id := range []string{"default", "a", "Tenant-1", "rack_07", "v1.2", strings.Repeat("x", 64)} {
		if !ValidTenantID(id) {
			t.Errorf("ValidTenantID(%q) = false, want true", id)
		}
	}
	for _, id := range []string{
		"", ".", "..", "a/b", "a\\b", "../x", "a b", "a\x00b", "é",
		strings.Repeat("x", 65),
	} {
		if ValidTenantID(id) {
			t.Errorf("ValidTenantID(%q) = true, want false", id)
		}
	}
}

func TestTenantDirRefusesTraversal(t *testing.T) {
	root := t.TempDir()
	for _, id := range []string{"..", "../other", "a/b", ""} {
		if dir, err := TenantDir(root, id); err == nil {
			t.Errorf("TenantDir(%q) = %q, want error", id, dir)
		}
	}
	dir, err := TenantDir(root, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(root, "tenants", "alpha"); dir != want {
		t.Errorf("TenantDir = %q, want %q", dir, want)
	}
}

func TestListTenantDirs(t *testing.T) {
	root := t.TempDir()
	if ids, err := ListTenantDirs(root); err != nil || ids != nil {
		t.Fatalf("empty root: got %v, %v; want nil, nil", ids, err)
	}
	for _, id := range []string{"beta", "alpha"} {
		dir, err := TenantDir(root, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Strays that TenantDir could never have created are skipped.
	if err := os.WriteFile(filepath.Join(root, "tenants", "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "tenants", "bad name"), 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := ListTenantDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("ListTenantDirs = %v, want %v", ids, want)
	}
}
