package httpx

import (
	"net/http"
	"testing"
	"time"
)

func hdr(v string) http.Header {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return h
}

func TestRetryAfterDeltaSeconds(t *testing.T) {
	const (
		fallback = 250 * time.Millisecond
		max      = 5 * time.Second
	)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"missing", "", fallback},
		{"zero means now", "0", 0},
		{"plain seconds", "2", 2 * time.Second},
		{"clamped to max", "3600", max},
		{"negative is invalid", "-3", fallback},
		{"garbage is invalid", "soon", fallback},
		{"float is invalid", "1.5", fallback},
	}
	for _, tc := range cases {
		if got := RetryAfter(hdr(tc.v), fallback, max); got != tc.want {
			t.Errorf("%s: RetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

func TestRetryAfterHTTPDate(t *testing.T) {
	const (
		fallback = 250 * time.Millisecond
		max      = 5 * time.Second
	)
	future := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	got := RetryAfter(hdr(future), fallback, max)
	if got <= 0 || got > 2*time.Second {
		t.Errorf("future date: got %v, want ~2s in (0, 2s]", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := RetryAfter(hdr(past), fallback, max); got != 0 {
		t.Errorf("past date: got %v, want 0 (retry now)", got)
	}
	far := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if got := RetryAfter(hdr(far), fallback, max); got != max {
		t.Errorf("far-future date: got %v, want clamp to %v", got, max)
	}
}

func TestRetryAfterNoMaxMeansUnclamped(t *testing.T) {
	if got := RetryAfter(hdr("3600"), 0, 0); got != time.Hour {
		t.Errorf("max=0: got %v, want 1h (unclamped)", got)
	}
}
