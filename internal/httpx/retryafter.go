// Package httpx holds small HTTP client helpers shared by the repo's
// clients (examples/livefeed, cmd/loadgen) and the standby follower's
// pull loop. It exists because the Retry-After parsing those clients
// originally duplicated had quietly diverged: one accepted only positive
// integer seconds, the other any integer, neither capped the wait or
// understood the HTTP-date form the header is equally allowed to carry
// (RFC 9110 §10.2.3).
package httpx

import (
	"net/http"
	"strconv"
	"time"
)

// RetryAfter interprets a Retry-After header as a wait duration.
//
// Both header forms are accepted: delta-seconds ("120") and HTTP-date
// ("Fri, 08 Aug 2026 17:00:00 GMT", any format http.ParseTime knows).
// The result is clamped to [0, max] — a server must not be able to park
// a client for an hour with one header — with zero meaning "retry now"
// (a date in the past reads the same way). A missing, empty, negative,
// or unparseable header yields fallback: the caller's own backoff
// schedule, unmodified.
func RetryAfter(h http.Header, fallback, max time.Duration) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return fallback
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return fallback
		}
		return clampWait(time.Duration(secs)*time.Second, max)
	}
	if t, err := http.ParseTime(v); err == nil {
		return clampWait(time.Until(t), max)
	}
	return fallback
}

func clampWait(d, max time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if max > 0 && d > max {
		return max
	}
	return d
}
