package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's result: a titled text table plus an optional
// CSV series with finer-grained data (e.g. the full weekly curves behind
// a figure).
type Report struct {
	ID     string // "table2", "fig7", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Series is the long-form data behind a figure (one row per point),
	// written by WriteCSV. Nil for pure tables.
	SeriesHeader []string
	Series       [][]string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the long-form series (or, when absent, the table
// itself) as CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header, rows := r.SeriesHeader, r.Series
	if header == nil {
		header, rows = r.Header, r.Rows
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
