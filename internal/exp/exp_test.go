package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// suite is a cached quick suite shared by the tests (loading dominates).
var cachedSuite *Suite

func quick(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite == nil {
		s, err := QuickSuite(7, 20)
		if err != nil {
			t.Fatal(err)
		}
		cachedSuite = s
	}
	return cachedSuite
}

func TestLoadComputesStatistics(t *testing.T) {
	s := quick(t)
	for _, sd := range s.Systems {
		if sd.RawCount <= 0 || sd.RawBytes <= 0 {
			t.Errorf("%s: raw stats empty", sd.Cfg.Name)
		}
		if sd.Filtered.Len() == 0 || sd.Filtered.Len() > sd.RawCount {
			t.Errorf("%s: filtered %d vs raw %d", sd.Cfg.Name, sd.Filtered.Len(), sd.RawCount)
		}
		if len(sd.Tagged) != sd.Filtered.Len() {
			t.Errorf("%s: tagged %d != filtered %d", sd.Cfg.Name, len(sd.Tagged), sd.Filtered.Len())
		}
		if sd.Fatals == 0 {
			t.Errorf("%s: no fatals", sd.Cfg.Name)
		}
		if len(sd.Sweep) == 0 {
			t.Errorf("%s: no sweep", sd.Cfg.Name)
		}
	}
}

func TestTable2(t *testing.T) {
	r, err := quick(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.Rows[0][1], "2005") && !strings.Contains(r.Rows[0][1], "2004") {
		t.Errorf("period cell = %q", r.Rows[0][1])
	}
}

func TestTable3MatchesPaperTotals(t *testing.T) {
	r, err := quick(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	if last[0] != "TOTAL" || last[1] != "69" || last[2] != "150" {
		t.Errorf("totals row = %v", last)
	}
}

func TestTable4MonotoneAndCompressing(t *testing.T) {
	r, err := quick(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		prev := int(^uint(0) >> 1)
		for _, cell := range row[2:] {
			v, err := strconv.Atoi(cell)
			if err != nil {
				t.Fatalf("non-numeric cell %q", cell)
			}
			if v > prev {
				t.Errorf("row %v not monotone", row)
			}
			prev = v
		}
	}
}

func TestTable5Overheads(t *testing.T) {
	r, err := quick(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows (log too short?)")
	}
	// Training-set size grows monotonically.
	prev := -1
	for _, row := range r.Rows {
		n, _ := strconv.Atoi(row[6])
		if n < prev {
			t.Errorf("training events shrank: %v", r.Rows)
		}
		prev = n
	}
}

func TestFigure4SeriesCoversAllDays(t *testing.T) {
	s := quick(t)
	r, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	wantDays := 0
	for _, sd := range s.Systems {
		wantDays += sd.Cfg.Weeks * 7
	}
	if len(r.Series) != wantDays {
		t.Errorf("series has %d points, want %d", len(r.Series), wantDays)
	}
}

func TestFigure5FitsThreeFamilies(t *testing.T) {
	s := quick(t)
	r, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*len(s.Systems) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	stars := 0
	for _, row := range r.Rows {
		if row[5] == "*" {
			stars++
		}
	}
	if stars != len(s.Systems) {
		t.Errorf("best-fit stars = %d, want %d", stars, len(s.Systems))
	}
}

func TestFigure7MetaBeatsBases(t *testing.T) {
	s := quick(t)
	r, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// For each system: meta's mean recall >= every base learner's.
	recall := map[string]map[string]float64{}
	for _, row := range r.Rows {
		sys, method := row[0], row[1]
		v, _ := strconv.ParseFloat(row[3], 64)
		if recall[sys] == nil {
			recall[sys] = map[string]float64{}
		}
		recall[sys][method] = v
	}
	for sys, m := range recall {
		for _, base := range []string{"association", "statistical", "distribution"} {
			if m["static-meta"] < m[base]-0.02 {
				t.Errorf("%s: meta recall %.2f below %s %.2f", sys, m["static-meta"], base, m[base])
			}
		}
	}
}

func TestFigure8RegionsPartition(t *testing.T) {
	r, err := quick(t).Figure8()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) int {
		for _, row := range r.Rows {
			if row[0] == name {
				v, _ := strconv.Atoi(strings.Fields(row[1])[0])
				return v
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	total := get("total fatals")
	sum := get("association only") + get("statistical only") + get("distribution only") +
		get("assoc∩stat only") + get("assoc∩dist only") + get("stat∩dist only") +
		get("all three") + get("uncaptured")
	if sum != total {
		t.Errorf("regions sum %d != total %d", sum, total)
	}
}

func TestFigure9AllPolicies(t *testing.T) {
	s := quick(t)
	r, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4*len(s.Systems) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFigure10RetrainCadences(t *testing.T) {
	s := quick(t)
	r, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*len(s.Systems) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFigure11ReviserOnOff(t *testing.T) {
	s := quick(t)
	r, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(s.Systems) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The reviser prunes rules: "on" repositories are no larger.
	for i := 0; i < len(r.Rows); i += 2 {
		on, _ := strconv.Atoi(r.Rows[i][4])
		off, _ := strconv.Atoi(r.Rows[i+1][4])
		if on > off {
			t.Errorf("reviser grew the repository: on=%d off=%d", on, off)
		}
	}
}

func TestFigure12ChurnRecorded(t *testing.T) {
	r, err := quick(t).Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no churn rows")
	}
	// First training of each system adds rules from nothing.
	first := r.Rows[0]
	if first[2] != "0" {
		t.Errorf("first training has unchanged=%s", first[2])
	}
	if first[3] == "0" {
		t.Error("first training added no rules")
	}
}

func TestFigure13RecallRisesWithWindow(t *testing.T) {
	s := quick(t)
	r, err := s.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// At full scale recall rises monotonically with the window (see
	// EXPERIMENTS.md: 0.62 → 0.90+). The quick suite's 10-week test span
	// is too noisy for that ordering, so here we assert the weaker
	// invariant that wide windows do not collapse relative to the
	// 5-minute baseline.
	for _, sd := range s.Systems {
		var small, best float64
		for _, row := range r.Rows {
			if row[0] != sd.Cfg.Name {
				continue
			}
			v, _ := strconv.ParseFloat(row[5], 64)
			if row[1] == "300s" {
				small = v
			} else if v > best {
				best = v
			}
		}
		if best < small-0.15 {
			t.Errorf("%s: wide-window recall collapsed: 300s=%.2f best-wider=%.2f",
				sd.Cfg.Name, small, best)
		}
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	r := &Report{
		ID: "x", Title: "T", Header: []string{"A", "BB"},
		Rows:         [][]string{{"1", "2"}, {"333", "4"}},
		Notes:        []string{"n"},
		SeriesHeader: []string{"s"},
		Series:       [][]string{{"v"}},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "A", "BB", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "s\nv\n" {
		t.Errorf("csv = %q", got)
	}
	// Without a series, the table itself is the CSV.
	r.SeriesHeader, r.Series = nil, nil
	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "A,BB\n") {
		t.Errorf("table csv = %q", buf.String())
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	reports, err := quick(t).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 13 {
		t.Fatalf("got %d reports, want 13", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if seen[r.ID] {
			t.Errorf("duplicate report %s", r.ID)
		}
		seen[r.ID] = true
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			t.Errorf("%s render: %v", r.ID, err)
		}
	}
}
