package exp

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/learner/probdist"
	"repro/internal/raslog"
	"repro/internal/stats"
)

// Figure4 reports fatal events per day — the temporal-correlation view of
// the failure record (many failures in close proximity).
func (s *Suite) Figure4() (*Report, error) {
	r := &Report{
		ID:     "fig4",
		Title:  "Fatal events per day",
		Header: []string{"Log", "Days", "Mean/day", "Median/day", "Max/day", "Days>=5", "Days=0"},
		Notes: []string{
			"a significant number of failures happen in close proximity (storm days), matching the paper",
		},
		SeriesHeader: []string{"log", "day", "fatals"},
	}
	for _, sd := range s.Systems {
		days := sd.Cfg.Weeks * 7
		counts := make([]float64, days)
		for _, e := range sd.Tagged {
			if !e.Fatal {
				continue
			}
			idx := int((e.Time - sd.Cfg.Start) / (24 * 3600 * 1000))
			if idx >= 0 && idx < days {
				counts[idx]++
			}
		}
		sum := stats.Summarize(counts)
		over5, zero := 0, 0
		for day, c := range counts {
			if c >= 5 {
				over5++
			}
			if c == 0 {
				zero++
			}
			r.Series = append(r.Series, []string{sd.Cfg.Name, d(day), d(int(c))})
		}
		r.Rows = append(r.Rows, []string{sd.Cfg.Name, d(days), f2(sum.Mean),
			f2(sum.Median), d(int(sum.Max)), d(over5), d(zero)})
	}
	return r, nil
}

// Figure5 reproduces the inter-arrival CDF study: MLE fits of Weibull,
// exponential and log-normal to fatal inter-arrival times, with the
// best-fit family, its parameters, log-likelihood and KS distance.
func (s *Suite) Figure5() (*Report, error) {
	r := &Report{
		ID:     "fig5",
		Title:  "CDF of fatal inter-arrival times and fitted distributions",
		Header: []string{"Log", "Family", "Parameters", "LogLik", "KS", "Best"},
		Notes: []string{
			"paper (SDSC training set): Weibull, F(t)=1-exp(-(t/19984.8)^0.507936)",
		},
		SeriesHeader: []string{"log", "gap_seconds", "empirical_cdf", "best_fit_cdf"},
	}
	pl := probdist.New()
	pl.LongTermOnly = false // Figure 5 fits all inter-arrivals, like the paper's plot
	for _, sd := range s.Systems {
		best, fits, err := pl.Fit(sd.Tagged)
		if err != nil {
			return nil, err
		}
		for i, fit := range fits {
			if fit.Err != nil {
				r.Rows = append(r.Rows, []string{sd.Cfg.Name, "-", fit.Err.Error(), "-", "-", ""})
				continue
			}
			mark := ""
			if i == best {
				mark = "*"
			}
			r.Rows = append(r.Rows, []string{sd.Cfg.Name, fit.Dist.Name(),
				fit.Dist.String(), fmt.Sprintf("%.0f", fit.LogLik), f3(fit.KS), mark})
		}
		// CDF series at log-spaced gap values.
		gaps := learner.FatalGaps(sd.Tagged)
		ecdf := stats.NewECDF(gaps)
		bestDist := fits[best].Dist
		for x := 10.0; x <= 1.2e6; x *= 1.5 {
			r.Series = append(r.Series, []string{sd.Cfg.Name,
				fmt.Sprintf("%.0f", x), f3(ecdf.At(x)), f3(bestDist.CDF(x))})
		}
	}
	return r, nil
}

// figure7Methods are the four curves of Figure 7.
func figure7Methods() []struct {
	name string
	kind *learner.Kind
} {
	assoc, stat, dist := learner.Association, learner.Statistical, learner.Distribution
	return []struct {
		name string
		kind *learner.Kind
	}{
		{"static-meta", nil},
		{"association", &assoc},
		{"statistical", &stat},
		{"distribution", &dist},
	}
}

// Figure7 compares the static meta-learner against each base learner in
// isolation: weekly precision and recall with a fixed initial training
// set and no retraining or revising (the paper's "static" setting).
func (s *Suite) Figure7() (*Report, error) {
	r := &Report{
		ID:     "fig7",
		Title:  "Static meta-learning vs base predictive methods",
		Header: []string{"Log", "Method", "Mean P", "Mean R", "Early P", "Early R", "Late P", "Late R"},
		Notes: []string{
			"expected shape: meta >= every base method in recall; association has the worst recall;",
			"statistical has good precision but low recall; distribution has good recall, many false alarms;",
			"every static method decays as the system drifts",
		},
		SeriesHeader: []string{"log", "method", "week", "precision", "recall"},
	}
	// Every (system, method) cell is an independent engine run over
	// read-only data: run the grid concurrently, assemble rows in order.
	type job struct {
		sd     *SystemData
		method string
		kind   *learner.Kind
		res    *engine.Result
	}
	var jobs []*job
	for _, sd := range s.Systems {
		for _, m := range figure7Methods() {
			jobs = append(jobs, &job{sd: sd, method: m.name, kind: m.kind})
		}
	}
	err := forEach(len(jobs), learner.Workers(s.Parallelism), func(i int) error {
		j := jobs[i]
		cfg := s.engineDefaults(j.sd)
		cfg.Policy = engine.Static
		cfg.KindFilter = j.kind
		res, err := s.run(j.sd, cfg)
		if err != nil {
			return err
		}
		j.res = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		p, rec, pe, re, pl, rl := meanEarlyLate(j.res.Weekly, j.res.TestFrom, j.sd.Cfg.Weeks)
		r.Rows = append(r.Rows, []string{j.sd.Cfg.Name, j.method,
			f2(p), f2(rec), f2(pe), f2(re), f2(pl), f2(rl)})
		for _, wp := range j.res.Weekly {
			r.Series = append(r.Series, []string{j.sd.Cfg.Name, j.method,
				d(wp.Week), f3(wp.Precision()), f3(wp.Recall())})
		}
	}
	return r, nil
}

// Figure8 reproduces the Venn diagram: which fatal events each base
// learner captures over a five-week window of the SDSC log (weeks 44–48
// in the paper).
func (s *Suite) Figure8() (*Report, error) {
	sd := s.longestSystem()
	from := 44
	if from+5 > sd.Cfg.Weeks {
		from = sd.Cfg.Weeks - 5 - 1
	}
	if from <= 0 {
		return nil, fmt.Errorf("log too short for the Venn window")
	}
	cfg := s.engineDefaults(sd)
	cfg.Policy = engine.Static
	if cfg.InitialTrainWeeks >= from {
		cfg.InitialTrainWeeks = from / 2
		cfg.TrainWeeks = cfg.InitialTrainWeeks
	}
	res, err := s.run(sd, cfg)
	if err != nil {
		return nil, err
	}
	weekMs := int64(raslog.MillisPerWeek)
	lo := sd.Cfg.Start + int64(from)*weekMs
	hi := lo + 5*weekMs
	var warnings = res.Warnings[:0:0]
	for _, w := range res.Warnings {
		if w.Time >= lo && w.Time < hi {
			warnings = append(warnings, w)
		}
	}
	var fatals []int64
	for _, t := range res.FatalTimes {
		if t >= lo && t < hi {
			fatals = append(fatals, t)
		}
	}
	sets := eval.CoverageSets(warnings, fatals)
	v := eval.MakeVenn(sets, len(fatals))
	r := &Report{
		ID:     "fig8",
		Title:  fmt.Sprintf("Venn coverage of base learners, weeks %d-%d of %s", from, from+4, sd.Cfg.Name),
		Header: []string{"Region", "Fatals"},
		Notes: []string{
			"paper (156 fatals): AR 23.7%, SR 37.2%, PD 56.4%, 67 captured by multiple learners",
			"expected shape: substantial non-overlap — no single learner captures all failures",
		},
	}
	r.Rows = append(r.Rows,
		[]string{"total fatals", d(v.Total)},
		[]string{"association only", d(v.OnlyA)},
		[]string{"statistical only", d(v.OnlyS)},
		[]string{"distribution only", d(v.OnlyP)},
		[]string{"assoc∩stat only", d(v.AS)},
		[]string{"assoc∩dist only", d(v.AP)},
		[]string{"stat∩dist only", d(v.SP)},
		[]string{"all three", d(v.ASP)},
		[]string{"uncaptured", d(v.Uncaptured)},
		[]string{"association total", fmt.Sprintf("%d (%.1f%%)", v.CoverA, pct(v.CoverA, v.Total))},
		[]string{"statistical total", fmt.Sprintf("%d (%.1f%%)", v.CoverS, pct(v.CoverS, v.Total))},
		[]string{"distribution total", fmt.Sprintf("%d (%.1f%%)", v.CoverP, pct(v.CoverP, v.Total))},
	)
	return r, nil
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Figure9 compares training-set policies: whole-history, sliding six
// months, sliding three months, and static.
func (s *Suite) Figure9() (*Report, error) {
	r := &Report{
		ID:     "fig9",
		Title:  "Training-set size policies (dynamic-whole / 6 mo / 3 mo / static)",
		Header: []string{"Log", "Policy", "Mean P", "Mean R", "Early P", "Early R", "Late P", "Late R"},
		Notes: []string{
			"expected shape: dynamic-whole ≈ dynamic-6mo best (gap < ~0.08); static decays; 3mo noisier",
		},
		SeriesHeader: []string{"log", "policy", "week", "precision", "recall"},
	}
	type job struct {
		sd     *SystemData
		policy string
		cfg    engine.Config
		res    *engine.Result
	}
	var jobs []*job
	for _, sd := range s.Systems {
		base := s.engineDefaults(sd)
		threeMo := base
		threeMo.TrainWeeks = base.TrainWeeks / 2
		policies := []struct {
			name string
			cfg  engine.Config
			pol  engine.Policy
		}{
			{"dynamic-whole", base, engine.Whole},
			{"dynamic-6mo", base, engine.Sliding},
			{"dynamic-3mo", threeMo, engine.Sliding},
			{"static", base, engine.Static},
		}
		for _, pol := range policies {
			cfg := pol.cfg
			cfg.Policy = pol.pol
			jobs = append(jobs, &job{sd: sd, policy: pol.name, cfg: cfg})
		}
	}
	err := forEach(len(jobs), learner.Workers(s.Parallelism), func(i int) error {
		res, err := s.run(jobs[i].sd, jobs[i].cfg)
		jobs[i].res = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		p, rec, pe, re, pl, rl := meanEarlyLate(j.res.Weekly, j.res.TestFrom, j.sd.Cfg.Weeks)
		r.Rows = append(r.Rows, []string{j.sd.Cfg.Name, j.policy,
			f2(p), f2(rec), f2(pe), f2(re), f2(pl), f2(rl)})
		for _, wp := range j.res.Weekly {
			r.Series = append(r.Series, []string{j.sd.Cfg.Name, j.policy,
				d(wp.Week), f3(wp.Precision()), f3(wp.Recall())})
		}
	}
	return r, nil
}

// Figure10 varies the retraining window W_R (2, 4, 8 weeks) and inspects
// the reconfiguration dip on the system that has one.
func (s *Suite) Figure10() (*Report, error) {
	r := &Report{
		ID:     "fig10",
		Title:  "Retraining frequency W_R = 2/4/8 weeks",
		Header: []string{"Log", "W_R", "Mean P", "Mean R", "Reconfig P", "Reconfig R", "After P", "After R"},
		Notes: []string{
			"expected shape: more frequent retraining slightly better (<= ~0.06); accuracy dips around",
			"the reconfiguration week and recovers after a few retrainings",
		},
		SeriesHeader: []string{"log", "wr", "week", "precision", "recall"},
	}
	type job struct {
		sd  *SystemData
		wr  int
		res *engine.Result
	}
	var jobs []*job
	for _, sd := range s.Systems {
		for _, wr := range []int{2, 4, 8} {
			jobs = append(jobs, &job{sd: sd, wr: wr})
		}
	}
	err := forEach(len(jobs), learner.Workers(s.Parallelism), func(i int) error {
		cfg := s.engineDefaults(jobs[i].sd)
		cfg.RetrainWeeks = jobs[i].wr
		res, err := s.run(jobs[i].sd, cfg)
		jobs[i].res = res
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		sd := j.sd
		p, rec, _, _, _, _ := meanEarlyLate(j.res.Weekly, j.res.TestFrom, sd.Cfg.Weeks)
		dipP, dipR := windowMean(j.res.Weekly, sd.Cfg.ReconfigWeek, sd.Cfg.ReconfigWeek+4)
		afterP, afterR := windowMean(j.res.Weekly, sd.Cfg.ReconfigWeek+8, sd.Cfg.ReconfigWeek+20)
		dip := []string{"-", "-", "-", "-"}
		if sd.Cfg.ReconfigWeek >= 0 {
			dip = []string{f2(dipP), f2(dipR), f2(afterP), f2(afterR)}
		}
		r.Rows = append(r.Rows, append([]string{sd.Cfg.Name, d(j.wr), f2(p), f2(rec)}, dip...))
		for _, wp := range j.res.Weekly {
			r.Series = append(r.Series, []string{sd.Cfg.Name, d(j.wr),
				d(wp.Week), f3(wp.Precision()), f3(wp.Recall())})
		}
	}
	return r, nil
}

// windowMean averages precision/recall over weeks [from, to).
func windowMean(weekly []eval.WeekPoint, from, to int) (p, r float64) {
	n := 0
	for _, wp := range weekly {
		if wp.Week >= from && wp.Week < to {
			p += wp.Precision()
			r += wp.Recall()
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return p / float64(n), r / float64(n)
}

// Figure11 compares the dynamic framework with and without the reviser.
func (s *Suite) Figure11() (*Report, error) {
	r := &Report{
		ID:     "fig11",
		Title:  "Dynamic revising on vs off",
		Header: []string{"Log", "Reviser", "Mean P", "Mean R", "Rules (last retrain)"},
		Notes: []string{
			"expected shape: revising filters bad rules, improving accuracy (paper: up to 6%)",
		},
	}
	for _, sd := range s.Systems {
		for _, useReviser := range []bool{true, false} {
			cfg := s.engineDefaults(sd)
			ml := defaultMeta()
			ml.UseReviser = useReviser
			cfg.Meta = ml
			res, err := s.run(sd, cfg)
			if err != nil {
				return nil, err
			}
			p, rec, _, _, _, _ := meanEarlyLate(res.Weekly, res.TestFrom, sd.Cfg.Weeks)
			rules := 0
			if n := len(res.Retrainings); n > 0 {
				rules = res.Retrainings[n-1].RepoSize
			}
			label := "off"
			if useReviser {
				label = "on"
			}
			r.Rows = append(r.Rows, []string{sd.Cfg.Name, label, f2(p), f2(rec), d(rules)})
		}
	}
	return r, nil
}

// Figure12 tracks rule churn across retrainings: unchanged, added,
// removed by the meta-learner, and removed by the reviser.
func (s *Suite) Figure12() (*Report, error) {
	r := &Report{
		ID:     "fig12",
		Title:  "Number of rules changed at each retraining",
		Header: []string{"Log", "Week", "Unchanged", "Added", "RemovedByMeta", "RemovedByReviser", "RepoSize"},
		Notes: []string{
			"expected shape: constant churn; a spike at the reconfiguration retraining",
		},
		SeriesHeader: []string{"log", "week", "unchanged", "added", "removed_meta", "removed_reviser", "repo"},
	}
	for _, sd := range s.Systems {
		cfg := s.engineDefaults(sd)
		res, err := s.run(sd, cfg)
		if err != nil {
			return nil, err
		}
		for _, rt := range res.Retrainings {
			row := []string{sd.Cfg.Name, d(rt.Week), d(rt.Churn.Unchanged), d(rt.Churn.Added),
				d(rt.Churn.RemovedByMeta), d(rt.Churn.RemovedByReviser), d(rt.RepoSize)}
			r.Rows = append(r.Rows, row)
			r.Series = append(r.Series, row)
		}
	}
	return r, nil
}

// figure13Windows are the prediction windows of Figure 13, in seconds.
var figure13Windows = []int64{300, 900, 1800, 2700, 3600, 5400, 7200}

// Figure13 sweeps the prediction window W_P from 5 minutes to 2 hours.
func (s *Suite) Figure13() (*Report, error) {
	r := &Report{
		ID:     "fig13",
		Title:  "Impact of prediction window size",
		Header: []string{"Log", "W_P", "Mean P", "Mean R", "Overall P", "Overall R"},
		Notes: []string{
			"expected shape: larger windows raise recall (paper: up to 0.82 at 2 h) and lower precision",
		},
		SeriesHeader: []string{"log", "wp_seconds", "precision", "recall"},
	}
	for _, sd := range s.Systems {
		for _, wp := range figure13Windows {
			cfg := s.engineDefaults(sd)
			cfg.Params = learner.Params{WindowSec: wp}
			res, err := s.run(sd, cfg)
			if err != nil {
				return nil, err
			}
			p, rec, _, _, _, _ := meanEarlyLate(res.Weekly, res.TestFrom, sd.Cfg.Weeks)
			r.Rows = append(r.Rows, []string{sd.Cfg.Name, fmt.Sprintf("%ds", wp),
				f2(p), f2(rec), f2(res.Overall.Precision()), f2(res.Overall.Recall())})
			r.Series = append(r.Series, []string{sd.Cfg.Name, d(int(wp)),
				f3(res.Overall.Precision()), f3(res.Overall.Recall())})
		}
	}
	return r, nil
}
