// Package exp regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a function from loaded system data
// to a Report — a rendered text table plus a CSV series — and the Suite
// groups them so cmd/experiments and the benchmark harness can run the
// whole evaluation in one call.
//
// The experiment ↔ module mapping lives in DESIGN.md §4; expected versus
// measured results are recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bgsim"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/learner"
	"repro/internal/meta"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// Thresholds are the Table 4 filtering thresholds in seconds.
var Thresholds = []int64{0, 10, 60, 120, 200, 300, 400}

// SystemData is one installation's generated and preprocessed log plus
// the raw-log statistics needed by Tables 2 and 4 (the raw log itself is
// not retained — at full scale it is millions of events).
type SystemData struct {
	Cfg      *bgsim.Config
	Catalog  *preprocess.Catalog
	RawCount int
	RawBytes int64
	// Sweep[fac][i] is the number of events of a facility surviving the
	// filter at Thresholds[i] (Table 4's layout).
	Sweep [][]int
	// Filtered is the 300 s-filtered log; Tagged its categorized form —
	// the stream every learner and predictor consumes.
	Filtered *raslog.Log
	Tagged   []preprocess.TaggedEvent
	Fatals   int
}

// Load generates a system's raw log, runs the full preprocessing pipeline
// (categorizer + filter), and computes the raw-side statistics. The raw
// log is discarded before returning.
func Load(cfg *bgsim.Config) (*SystemData, error) {
	g, err := bgsim.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	raw, err := g.Generate()
	if err != nil {
		return nil, err
	}
	sd := &SystemData{
		Cfg:      cfg,
		Catalog:  g.Catalog(),
		RawCount: raw.Len(),
		RawBytes: raslog.LogSizeBytes(raw),
		Sweep:    preprocess.ThresholdSweep(raw, Thresholds),
	}
	filtered, _ := preprocess.Filter{Threshold: 300}.Apply(raw)
	raw = nil // release the raw log before tagging
	sd.Filtered = filtered
	z := preprocess.NewCategorizer(sd.Catalog)
	sd.Tagged = z.Tag(filtered)
	sd.Fatals = preprocess.FatalCount(sd.Tagged)
	return sd, nil
}

// Suite bundles the loaded systems and shared parameters.
type Suite struct {
	Systems []*SystemData
	Params  learner.Params
	// Parallelism bounds how many independent engine runs a multi-cell
	// experiment (Figures 7, 9, 10) executes concurrently, and flows into
	// every run's training pipeline: 0 means GOMAXPROCS, 1 forces serial.
	// Each cell is an independent run over read-only system data, so the
	// reports are identical at any setting.
	Parallelism int
	// Metrics, when non-nil, accumulates every engine run's training
	// passes (per-learner durations, reviser time, rule churn) — the
	// suite-wide live Table 5 that cmd/experiments snapshots to
	// metrics.prom. Instruments are concurrency-safe, so parallel grid
	// cells record into it directly.
	Metrics *engine.TrainingMetrics
}

// NewSuite loads the given configurations (typically the ANL and SDSC
// presets, possibly scaled down for quick runs). Systems generate and
// preprocess independently, so they load concurrently.
func NewSuite(cfgs ...*bgsim.Config) (*Suite, error) {
	s := &Suite{Params: learner.Params{WindowSec: 300}}
	s.Systems = make([]*SystemData, len(cfgs))
	err := forEach(len(cfgs), learner.Workers(0), func(i int) error {
		sd, err := Load(cfgs[i])
		if err != nil {
			return fmt.Errorf("exp: loading %s: %w", cfgs[i].Name, err)
		}
		s.Systems[i] = sd
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// forEach runs fn(0..n-1) under at most `workers` goroutines and returns
// the lowest-index error (matching what a serial loop would surface).
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DefaultSuite loads the full-scale ANL and SDSC presets.
func DefaultSuite(seed uint64) (*Suite, error) {
	return NewSuite(bgsim.ANL(seed), bgsim.SDSC(seed))
}

// QuickSuite loads shortened, duplication-reduced presets for tests and
// benchmarks: the unique-event structure (and therefore every learner-
// facing behaviour) is unchanged; only the raw duplicate volume and the
// log length shrink.
func QuickSuite(seed uint64, weeks int) (*Suite, error) {
	return NewSuite(bgsim.ANL(seed).Scaled(weeks, 0.02), bgsim.SDSC(seed).Scaled(weeks, 0.02))
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Report, error) {
	type entry struct {
		name string
		run  func() (*Report, error)
	}
	entries := []entry{
		{"table2", s.Table2},
		{"table3", s.Table3},
		{"table4", s.Table4},
		{"table5", s.Table5},
		{"fig4", s.Figure4},
		{"fig5", s.Figure5},
		{"fig7", s.Figure7},
		{"fig8", s.Figure8},
		{"fig9", s.Figure9},
		{"fig10", s.Figure10},
		{"fig11", s.Figure11},
		{"fig12", s.Figure12},
		{"fig13", s.Figure13},
	}
	reports := make([]*Report, 0, len(entries))
	for _, e := range entries {
		r, err := e.run()
		if err != nil {
			return reports, fmt.Errorf("exp: %s: %w", e.name, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// run executes the engine over one system with the given configuration.
func (s *Suite) run(sd *SystemData, cfg engine.Config) (*engine.Result, error) {
	return engine.Run(sd.Tagged, sd.Cfg.Start, sd.Cfg.Weeks, cfg)
}

// engineDefaults adapts the paper defaults to short quick-suite logs: the
// initial training window shrinks so a test span always remains.
func (s *Suite) engineDefaults(sd *SystemData) engine.Config {
	cfg := engine.Defaults()
	cfg.Params = s.Params
	cfg.Parallelism = s.Parallelism
	cfg.Metrics = s.Metrics
	if sd.Cfg.Weeks <= cfg.InitialTrainWeeks+4 {
		cfg.InitialTrainWeeks = sd.Cfg.Weeks / 2
		cfg.TrainWeeks = cfg.InitialTrainWeeks
	}
	return cfg
}

// meanEarlyLate summarizes a weekly series: overall mean, first 20 test
// weeks, and last 26 weeks.
func meanEarlyLate(weekly []eval.WeekPoint, testFrom, weeks int) (p, r, pe, re, pl, rl float64) {
	var ne, nl int
	n := 0
	for _, wp := range weekly {
		p += wp.Precision()
		r += wp.Recall()
		n++
		if wp.Week < testFrom+20 {
			pe += wp.Precision()
			re += wp.Recall()
			ne++
		}
		if wp.Week >= weeks-26 {
			pl += wp.Precision()
			rl += wp.Recall()
			nl++
		}
	}
	div := func(x float64, c int) float64 {
		if c == 0 {
			return 0
		}
		return x / float64(c)
	}
	return div(p, n), div(r, n), div(pe, ne), div(re, ne), div(pl, nl), div(rl, nl)
}

// defaultMeta builds a meta-learner with paper defaults (a fresh one per
// engine run keeps experiments independent).
func defaultMeta() *meta.MetaLearner { return meta.New() }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func dur(v time.Duration) string {
	return v.Round(time.Millisecond).String()
}
