package exp

import (
	"fmt"
	"time"

	"repro/internal/meta"
	"repro/internal/predictor"
	"repro/internal/preprocess"
	"repro/internal/raslog"
)

// Table2 reproduces the log-description table: period, weeks, raw event
// count, and on-disk size of each system's RAS log.
func (s *Suite) Table2() (*Report, error) {
	r := &Report{
		ID:     "table2",
		Title:  "Log description (period, weeks, events, size)",
		Header: []string{"Log", "Period", "Weeks", "Event No.", "Log Size"},
		Notes: []string{
			"paper: ANL 112 w / 5,887,771 events / 2.27 GB; SDSC 132 w / 517,247 events / 463 MB",
		},
	}
	for _, sd := range s.Systems {
		start := time.UnixMilli(sd.Cfg.Start).UTC()
		end := start.Add(time.Duration(sd.Cfg.Weeks) * 7 * 24 * time.Hour)
		r.Rows = append(r.Rows, []string{
			sd.Cfg.Name,
			fmt.Sprintf("%s - %s", start.Format("Jan. 2, 2006"), end.Format("Jan. 2, 2006")),
			d(sd.Cfg.Weeks),
			fmt.Sprintf("%d", sd.RawCount),
			formatBytes(sd.RawBytes),
		})
	}
	return r, nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table3 reproduces the event-category table: fatal and non-fatal class
// counts per facility.
func (s *Suite) Table3() (*Report, error) {
	cat := preprocess.NewCatalog()
	if len(s.Systems) > 0 {
		cat = s.Systems[0].Catalog
	}
	r := &Report{
		ID:     "table3",
		Title:  "Event categories (fatal / non-fatal classes per facility)",
		Header: []string{"Main Category", "No. of Fatal", "No. of Non-Fatal"},
		Notes:  []string{"paper totals: 69 fatal, 150 non-fatal (219 classes)"},
	}
	totalFatal, totalNonFatal := 0, 0
	for _, row := range cat.CountsByFacility() {
		r.Rows = append(r.Rows, []string{row.Facility.String(), d(row.Fatal), d(row.NonFatal)})
		totalFatal += row.Fatal
		totalNonFatal += row.NonFatal
	}
	r.Rows = append(r.Rows, []string{"TOTAL", d(totalFatal), d(totalNonFatal)})
	return r, nil
}

// Table4 reproduces the filtering-threshold sweep: surviving events per
// facility per threshold, for each system.
func (s *Suite) Table4() (*Report, error) {
	header := []string{"Log", "Facility"}
	for _, th := range Thresholds {
		header = append(header, fmt.Sprintf("%ds", th))
	}
	r := &Report{
		ID:     "table4",
		Title:  "Number of events surviving the filter at each threshold",
		Header: header,
		Notes: []string{
			"compression saturates near 300 s (the paper's chosen threshold, >98% compression)",
		},
	}
	for _, sd := range s.Systems {
		for _, fac := range raslog.Facilities() {
			row := []string{sd.Cfg.Name, fac.String()}
			for i := range Thresholds {
				row = append(row, d(sd.Sweep[fac][i]))
			}
			r.Rows = append(r.Rows, row)
		}
		totals := []string{sd.Cfg.Name, "TOTAL"}
		for i := range Thresholds {
			sum := 0
			for _, fac := range raslog.Facilities() {
				sum += sd.Sweep[fac][i]
			}
			totals = append(totals, d(sum))
		}
		r.Rows = append(r.Rows, totals)
	}
	return r, nil
}

// table5Sizes are the training-set sizes (months) of Table 5.
var table5Sizes = []int{3, 6, 12, 18, 24, 30}

// Table5 measures operation overhead as a function of training size:
// per-learner rule-generation time, ensemble + revision time, and online
// rule-matching time. Times are wall-clock on the host (the paper used a
// 1.6 GHz Pentium; the shape — growth with training size, trivial
// matching — is what reproduces).
func (s *Suite) Table5() (*Report, error) {
	sd := s.longestSystem()
	r := &Report{
		ID:    "table5",
		Title: "Operation overhead as a function of training size",
		Header: []string{"Training Size", "Stat Rule", "Asso Rule", "Prob Dist",
			"Ensemble & Revise", "Rule Matching", "Train Events"},
		Notes: []string{
			fmt.Sprintf("measured on %s; paper: generation grows to minutes at 30 mo, matching stays <1 min", sd.Cfg.Name),
		},
	}
	weekMs := int64(raslog.MillisPerWeek)
	for _, months := range table5Sizes {
		weeks := int(float64(months) * 52.0 / 12.0)
		if weeks > sd.Cfg.Weeks {
			break
		}
		end := sd.Cfg.Start + int64(weeks)*weekMs
		var train []preprocess.TaggedEvent
		for _, e := range sd.Tagged {
			if e.Time < end {
				train = append(train, e)
			}
		}
		ml := meta.New()
		report, err := ml.Train(train, s.Params)
		if err != nil {
			return nil, err
		}
		// Online matching cost: feed four weeks of events through the
		// event-driven predictor.
		pr := predictor.New(report.Kept, s.Params)
		matchStart := time.Now()
		var test []preprocess.TaggedEvent
		for _, e := range sd.Tagged {
			if e.Time >= end && e.Time < end+4*weekMs {
				test = append(test, e)
			}
		}
		pr.ObserveAll(test)
		matching := time.Since(matchStart)

		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d mo", months),
			dur(report.LearnerDurations["statistical"]),
			dur(report.LearnerDurations["association"]),
			dur(report.LearnerDurations["distribution"]),
			dur(report.ReviseDuration),
			dur(matching),
			d(len(train)),
		})
	}
	return r, nil
}

// longestSystem returns the system with the most weeks (SDSC at full
// scale — the only one long enough for the 30-month row).
func (s *Suite) longestSystem() *SystemData {
	best := s.Systems[0]
	for _, sd := range s.Systems[1:] {
		if sd.Cfg.Weeks > best.Cfg.Weeks {
			best = sd
		}
	}
	return best
}
