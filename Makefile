GO ?= go

.PHONY: build test verify bench bench-all

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-1 (build + test) plus vet and the race detector — the gate the
# concurrent streaming service is held to.
verify:
	sh scripts/verify.sh

# Component benchmarks of the training pipeline and the serving hot
# path (single-tenant and fleet-routed), snapshotted to BENCH_7.json,
# then the closed-loop capacity sweep (cmd/loadgen against a live
# durable cmd/serve, stepped offered rates from 8 connections plus a 2x
# overdrive step, auto-extended until the p99 target breaches, with a
# CPU profile of the peak step to results/cpu_capacity.pprof)
# snapshotted to BENCH_10.json, then the hot-standby phase (steady-state replication
# lag under load, kill -9 failover time to first accepted write on the
# promoted follower, and POST /backfill throughput against the raw
# disk-read ceiling) snapshotted to BENCH_9.json. See scripts/bench.sh;
# BENCHTIME=20x / RATES=... / STEP_DURATION=... / STANDBY_RATE=... for
# steadier numbers.
bench:
	sh scripts/bench.sh

# The full benchmark suite: every table/figure plus the ablations.
bench-all:
	$(GO) test -bench . -benchmem -run '^$$'
