GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-1 (build + test) plus vet and the race detector — the gate the
# concurrent streaming service is held to.
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench . -benchmem -run '^$$'
