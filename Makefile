GO ?= go

.PHONY: build test verify bench bench-all

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Tier-1 (build + test) plus vet and the race detector — the gate the
# concurrent streaming service is held to.
verify:
	sh scripts/verify.sh

# Component benchmarks of the training pipeline and the serving hot
# path (single-tenant and fleet-routed), snapshotted to BENCH_6.json
# (see scripts/bench.sh; BENCHTIME=20x make bench for steadier numbers).
bench:
	sh scripts/bench.sh

# The full benchmark suite: every table/figure plus the ablations.
bench-all:
	$(GO) test -bench . -benchmem -run '^$$'
