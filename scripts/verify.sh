#!/bin/sh
# Full verification gate: tier-1 (build + tests) plus vet and the race
# detector. The race pass is what the concurrent streaming service
# (internal/stream, cmd/serve) is held to.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== allocation budgets (-count=1)"
# The zero-allocation serving guarantees, re-measured every run: parse,
# filter stages, predictor observe, the whole stream pipeline, and the
# fleet-routed path (multi-tenancy must add no per-event cost).
go test -count=1 -run 'AllocBudget' \
    ./internal/raslog ./internal/preprocess ./internal/predictor ./internal/stream ./internal/fleet
echo "== ingest hot path stays allocation-free (BenchmarkIngestBatch)"
# The batch ingest path must stay at 0 allocs/event with the commit
# ticket threaded through it — the ticket, ack channel, and commit round
# are per batch, amortized to nothing per event. awk fails the gate if
# the benchmark reports any per-event allocation.
go test -run '^$' -bench 'BenchmarkIngestBatch$' -benchtime 20000x -benchmem . |
    awk '/^BenchmarkIngestBatch/ { print; seen = 1; if ($(NF-1) != "0") bad = 1 }
         END { if (!seen) { print "FAIL: BenchmarkIngestBatch did not run"; exit 1 }
               if (bad) { print "FAIL: BenchmarkIngestBatch allocates per event"; exit 1 } }'
echo "== group-commit gate (-race -count=1)"
# The asynchronous commit pipeline re-proven fresh every run: ticket
# resolution and coalescing (one fsync covers many tickets), abandon and
# close semantics, the fleet-shared sync executor, rotation under
# pending tickets, batch ≡ sequential ingest equivalence, and the
# crash-mid-coalesce pins (no acked batch lost, no false acks).
go test -race -count=1 \
    -run 'Ticket|Coalesce|SharedSyncExecutor|RotationPreserves|IngestBatch|DurableBatch' \
    ./internal/persist ./internal/stream
echo "== incremental-retraining equivalence gate (-race -count=1)"
# The incremental ≡ batch property re-proven fresh on every run: the
# sufficient-statistics maintainer (random streams × random slides, the
# export/restore round trip, fallback and drift-audit paths), the
# event-set cache delta exactness, and the engine/stream end-to-end
# equivalence runs — all under the race detector, never from the test
# cache. Build with -tags slow for the long campaign.
go test -race -count=1 ./internal/learner ./internal/learner/incr
go test -race -count=1 -run 'Incremental' ./internal/engine ./internal/stream
echo "== overload-path gate (-race -count=1)"
# The saturation pins re-proven fresh every run: bounded-time 429s with
# no admitted event dropped or reordered (stream), warnings served off
# the hot path, the storming tenant held to its slot cap (fleet), and
# the stalled-header reaper (serve).
go test -race -count=1 \
    -run 'Saturation|Warnings(NotUnder|Reader)|StormingTenant|StalledHeader' \
    ./internal/stream ./internal/fleet ./cmd/serve
echo "== standby/failover gate (-race -count=1)"
# The hot-standby pins re-proven fresh every run: follower catch-up and
# promotion byte-equivalence against the single-node oracle, replica
# crash/resume, auto-promotion, WAL segment serving edge cases (live
# tail reads, rotation boundaries, prune vs follower acks and in-flight
# pulls), the parallel backfill path (ordering, garbage tolerance,
# cancellation, singleton), the shared Retry-After parser, and the
# monotonic idle clock the failover sweep flushed out.
go test -race -count=1 \
    -run 'Follower|Promotion|Backfill|Segment|Prune|TornTransfer|RetryAfter|MonotonicClock' \
    ./internal/stream ./internal/persist ./internal/httpx ./internal/fleet
echo "== go test -race -count=1 ./internal/stream ./internal/predictor ./internal/obsv ./internal/persist ./internal/fleet"
# -count=1 defeats the test cache: the concurrency-critical packages
# (pipeline, predictor swap, metrics registry, durable state, tenant
# lifecycle) re-run under the race detector every time, even when
# nothing changed.
go test -race -count=1 ./internal/stream ./internal/predictor ./internal/obsv ./internal/persist ./internal/fleet
echo "== go test -race ./..."
go test -race ./...
echo "== scripts/smoke_restart.sh"
sh scripts/smoke_restart.sh
echo "verify: OK"
