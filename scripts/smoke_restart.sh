#!/bin/sh
# End-to-end crash/restart smoke test for the durable streaming service:
# feed half a synthetic log to cmd/serve -state-dir, kill -9 the daemon,
# restart it on the same state directory, feed the rest, and check that
# the recovered service is alive, reports a recovery block, and ingested
# a sane event count. The unit suite proves byte-level state equivalence
# (internal/stream/recover_test.go); this script proves the real binary,
# real HTTP, real kill -9 path end to end.
#
# A second phase repeats the exercise in fleet mode: two tenants fed
# through one -fleet daemon, killed -9, restarted (both recover from
# <state>/tenants/<id>/), then shut down gracefully (SIGTERM must close
# every tenant cleanly and exit 0).
set -eu
cd "$(dirname "$0")/.."

PORT=18473
ADDR="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke_restart: building into $TMP"
go build -o "$TMP/serve" ./cmd/serve
go build -o "$TMP/bgsim-gen" ./cmd/bgsim-gen

"$TMP/bgsim-gen" -system sdsc -seed 5 -weeks 8 -scale 0.05 -o "$TMP/feed.log"
TOTAL=$(wc -l < "$TMP/feed.log")
HALF=$((TOTAL / 2))
REST=$((TOTAL - HALF))
head -n "$HALF" "$TMP/feed.log" > "$TMP/first.log"
tail -n "$REST" "$TMP/feed.log" > "$TMP/second.log"
echo "smoke_restart: feed has $TOTAL events ($HALF + $REST)"

start_serve() { # start_serve [extra flags...] — always durable, short windows
    "$TMP/serve" -addr "127.0.0.1:$PORT" -train 3 -retrain 2 \
        "$@" >> "$TMP/serve.log" 2>&1 &
    SERVE_PID=$!
    i=0
    until curl -fsS "$ADDR/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke_restart: FAIL: daemon never became healthy" >&2
            cat "$TMP/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stat_field() { # stat_field NAME [BASE] — extract an integer field from /stats
    curl -fsS "${2:-$ADDR}/stats" | grep -o "\"$1\": *-*[0-9]*" | head -n 1 | grep -o '\-*[0-9]*$'
}

# Poll until the pipeline quiesces (sequenced stops moving), so the WAL
# holds nearly everything before the kill.
wait_quiesce() { # wait_quiesce [BASE]
    prev=-1
    i=0
    while [ "$i" -lt 100 ]; do
        cur=$(stat_field sequenced "${1:-$ADDR}")
        [ "$cur" = "$prev" ] && return 0
        prev=$cur
        i=$((i + 1))
        sleep 0.2
    done
}

start_serve -state-dir "$TMP/state"
echo "smoke_restart: posting first half ($HALF events)"
# The batch endpoint: each chunk is WAL-committed with one group fsync.
curl -fsS -X POST --data-binary "@$TMP/first.log" "$ADDR/ingest/batch" > /dev/null
wait_quiesce
echo "smoke_restart: kill -9 $SERVE_PID"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_serve -state-dir "$TMP/state"
grep -q "serve: recovered from" "$TMP/serve.log" || {
    echo "smoke_restart: FAIL: no recovery line in daemon log" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}
curl -fsS "$ADDR/stats" | grep -q '"recovery"' || {
    echo "smoke_restart: FAIL: /stats has no recovery block after restart" >&2
    exit 1
}
RECOVERED=$(stat_field ingested)
echo "smoke_restart: restarted with $RECOVERED events recovered"

echo "smoke_restart: posting second half ($REST events)"
curl -fsS -X POST --data-binary "@$TMP/second.log" "$ADDR/ingest/batch" > /dev/null
wait_quiesce

INGESTED=$(stat_field ingested)
PROCESSED=$(stat_field processed)
# Events in flight (queues, reorder buffer, unsynced WAL tail) at kill -9
# time are legitimately lost and this script does not re-send them, so the
# floor is: everything recovered plus the full second half; the ceiling is
# the whole feed.
if [ "$INGESTED" -lt "$((RECOVERED + REST))" ] || [ "$INGESTED" -gt "$TOTAL" ]; then
    echo "smoke_restart: FAIL: ingested=$INGESTED outside [$((RECOVERED + REST)), $TOTAL]" >&2
    exit 1
fi
if [ "$PROCESSED" -le 0 ]; then
    echo "smoke_restart: FAIL: processed=$PROCESSED after full feed" >&2
    exit 1
fi
curl -fsS "$ADDR/warnings?n=5" > /dev/null

echo "smoke_restart: single-tenant OK (ingested $INGESTED/$TOTAL, processed $PROCESSED)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- Fleet phase: two tenants, one process, one kill -9 ------------------

echo "smoke_restart: fleet phase — two tenants"
ALPHA="$ADDR/t/alpha"
BETA="$ADDR/t/beta"
start_serve -fleet -state-dir "$TMP/fleet"
# The first POST to a tenant's routes creates it (and its state dir).
curl -fsS -X POST --data-binary "@$TMP/first.log" "$ALPHA/ingest/batch" > /dev/null
curl -fsS -X POST --data-binary "@$TMP/second.log" "$BETA/ingest/batch" > /dev/null
wait_quiesce "$ALPHA"
wait_quiesce "$BETA"
A_PRE=$(stat_field ingested "$ALPHA")
B_PRE=$(stat_field ingested "$BETA")
echo "smoke_restart: fleet pre-kill: alpha=$A_PRE beta=$B_PRE"
echo "smoke_restart: kill -9 $SERVE_PID (fleet)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_serve -fleet -state-dir "$TMP/fleet"
TENANTS=$(curl -fsS "$ADDR/tenants")
for id in alpha beta; do
    echo "$TENANTS" | grep -q "\"id\": *\"$id\"" || {
        echo "smoke_restart: FAIL: /tenants missing $id after fleet restart: $TENANTS" >&2
        exit 1
    }
done
A_REC=$(stat_field ingested "$ALPHA")
B_REC=$(stat_field ingested "$BETA")
if [ "$A_REC" -le 0 ] || [ "$A_REC" -gt "$A_PRE" ] ||
   [ "$B_REC" -le 0 ] || [ "$B_REC" -gt "$B_PRE" ]; then
    echo "smoke_restart: FAIL: fleet recovery out of range (alpha $A_REC/$A_PRE, beta $B_REC/$B_PRE)" >&2
    exit 1
fi
curl -fsS "$ALPHA/stats" | grep -q '"recovery"' || {
    echo "smoke_restart: FAIL: alpha /stats has no recovery block after fleet restart" >&2
    exit 1
}
echo "smoke_restart: fleet restarted (alpha $A_REC/$A_PRE, beta $B_REC/$B_PRE recovered)"

# Aggregate exposition: per-tenant labels plus fleet rollups.
METRICS=$(curl -fsS "$ADDR/metrics")
echo "$METRICS" | grep -q 'tenant="alpha"' || {
    echo "smoke_restart: FAIL: /metrics has no tenant=\"alpha\" series" >&2
    exit 1
}
echo "$METRICS" | grep -q '^fleet_ingested_total ' || {
    echo "smoke_restart: FAIL: /metrics has no fleet_ingested_total rollup" >&2
    exit 1
}
# Legacy unprefixed routes alias the default tenant.
curl -fsS "$ADDR/stats" > /dev/null
curl -fsS "$ADDR/warnings?all=1&n=5" > /dev/null

# Graceful shutdown must close every tenant (snapshot + WAL seal) and
# exit 0 — a hung tenant or failed close turns into a nonzero status.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
grep -q "serve: fleet drained" "$TMP/serve.log" || {
    echo "smoke_restart: FAIL: no fleet-drained line after SIGTERM" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}

echo "smoke_restart: OK (single-tenant ingested $INGESTED/$TOTAL; fleet alpha $A_REC, beta $B_REC)"
