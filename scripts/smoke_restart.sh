#!/bin/sh
# End-to-end crash/restart smoke test for the durable streaming service:
# feed half a synthetic log to cmd/serve -state-dir, kill -9 the daemon,
# restart it on the same state directory, feed the rest, and check that
# the recovered service is alive, reports a recovery block, and ingested
# a sane event count. The unit suite proves byte-level state equivalence
# (internal/stream/recover_test.go); this script proves the real binary,
# real HTTP, real kill -9 path end to end.
#
# A second phase proves incremental-retraining durability: after a kill
# -9 landing past the first retrain (possibly mid-pass — the second kill
# fires without waiting for the pipeline to quiesce), the restarted
# daemon must report incr_restored in its recovery block and every
# retrain it runs itself must be a sufficient-statistics delta-apply
# ("Rebuild": false in the retrain records), never a cold rebuild.
#
# A third phase kills -9 in the middle of a cmd/loadgen capacity sweep
# and checks the recovered event count against the ledger loadgen keeps
# of what the daemon acknowledged — the crash-safety contract of the
# load harness itself.
#
# A group-commit phase repeats the mid-sweep kill with eight concurrent
# loadgen connections and asserts the recovered count covers the ledger
# with ZERO slack: on the batch path an HTTP 200 is released only after
# the covering group fsync, so no acked event may be missing.
#
# A fourth phase repeats the exercise in fleet mode: two tenants fed
# through one -fleet daemon, killed -9, restarted (both recover from
# <state>/tenants/<id>/), then shut down gracefully (SIGTERM must close
# every tenant cleanly and exit 0).
#
# A fifth phase proves hot-standby failover: a follower daemon tails the
# leader's WAL over HTTP while a cmd/loadgen sweep drives the leader,
# the leader is killed -9 mid-sweep, the follower is promoted (POST
# /promote), and the promoted daemon's recovered event count is checked
# against the ledger loadgen keeps of what the leader acknowledged —
# then the promoted daemon takes fresh writes, proving the failover
# actually moved the write path.
set -eu
cd "$(dirname "$0")/.."

PORT=18473
FPORT=18474
ADDR="http://127.0.0.1:$PORT"
FADDR="http://127.0.0.1:$FPORT"
TMP="$(mktemp -d)"
SERVE_PID=""
FOLLOW_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
    [ -n "$FOLLOW_PID" ] && kill -9 "$FOLLOW_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke_restart: building into $TMP"
go build -o "$TMP/serve" ./cmd/serve
go build -o "$TMP/bgsim-gen" ./cmd/bgsim-gen

"$TMP/bgsim-gen" -system sdsc -seed 5 -weeks 8 -scale 0.05 -o "$TMP/feed.log"
TOTAL=$(wc -l < "$TMP/feed.log")
HALF=$((TOTAL / 2))
REST=$((TOTAL - HALF))
head -n "$HALF" "$TMP/feed.log" > "$TMP/first.log"
tail -n "$REST" "$TMP/feed.log" > "$TMP/second.log"
echo "smoke_restart: feed has $TOTAL events ($HALF + $REST)"

start_serve() { # start_serve [extra flags...] — always durable, short windows
    "$TMP/serve" -addr "127.0.0.1:$PORT" -train 3 -retrain 2 \
        "$@" >> "$TMP/serve.log" 2>&1 &
    SERVE_PID=$!
    i=0
    until curl -fsS "$ADDR/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke_restart: FAIL: daemon never became healthy" >&2
            cat "$TMP/serve.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

stat_field() { # stat_field NAME [BASE] — extract an integer field from /stats
    curl -fsS "${2:-$ADDR}/stats" | grep -o "\"$1\": *-*[0-9]*" | head -n 1 | grep -o '\-*[0-9]*$'
}

# Poll until the pipeline quiesces (sequenced stops moving), so the WAL
# holds nearly everything before the kill.
wait_quiesce() { # wait_quiesce [BASE]
    prev=-1
    i=0
    while [ "$i" -lt 100 ]; do
        cur=$(stat_field sequenced "${1:-$ADDR}")
        [ "$cur" = "$prev" ] && return 0
        prev=$cur
        i=$((i + 1))
        sleep 0.2
    done
}

start_serve -state-dir "$TMP/state"
echo "smoke_restart: posting first half ($HALF events)"
# The batch endpoint: each chunk is WAL-committed with one group fsync.
curl -fsS -X POST --data-binary "@$TMP/first.log" "$ADDR/ingest/batch" > /dev/null
wait_quiesce
echo "smoke_restart: kill -9 $SERVE_PID"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_serve -state-dir "$TMP/state"
grep -q "serve: recovered from" "$TMP/serve.log" || {
    echo "smoke_restart: FAIL: no recovery line in daemon log" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}
curl -fsS "$ADDR/stats" | grep -q '"recovery"' || {
    echo "smoke_restart: FAIL: /stats has no recovery block after restart" >&2
    exit 1
}
RECOVERED=$(stat_field ingested)
echo "smoke_restart: restarted with $RECOVERED events recovered"

echo "smoke_restart: posting second half ($REST events)"
curl -fsS -X POST --data-binary "@$TMP/second.log" "$ADDR/ingest/batch" > /dev/null
wait_quiesce

INGESTED=$(stat_field ingested)
PROCESSED=$(stat_field processed)
# Events in flight (queues, reorder buffer, unsynced WAL tail) at kill -9
# time are legitimately lost and this script does not re-send them, so the
# floor is: everything recovered plus the full second half; the ceiling is
# the whole feed.
if [ "$INGESTED" -lt "$((RECOVERED + REST))" ] || [ "$INGESTED" -gt "$TOTAL" ]; then
    echo "smoke_restart: FAIL: ingested=$INGESTED outside [$((RECOVERED + REST)), $TOTAL]" >&2
    exit 1
fi
if [ "$PROCESSED" -le 0 ]; then
    echo "smoke_restart: FAIL: processed=$PROCESSED after full feed" >&2
    exit 1
fi
curl -fsS "$ADDR/warnings?n=5" > /dev/null

echo "smoke_restart: single-tenant OK (ingested $INGESTED/$TOTAL, processed $PROCESSED)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- Incremental-retraining phase: kill -9 must not cost a rebuild -------

echo "smoke_restart: incremental phase — sufficient statistics survive kill -9"
head -n 100 "$TMP/second.log" > "$TMP/nudge.log"
tail -n +101 "$TMP/second.log" > "$TMP/rest.log"
start_serve -state-dir "$TMP/incr"
curl -fsS -X POST --data-binary "@$TMP/first.log" "$ADDR/ingest/batch" > /dev/null
wait_quiesce
# The 3-week initial training fires mid-feed but runs in the background;
# wait until its record shows up.
i=0
until curl -fsS "$ADDR/stats" | grep -q '"Rebuild"'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke_restart: FAIL: no retrain record before the incremental kill" >&2
        exit 1
    fi
    sleep 0.1
done
# Snapshots are written on the collector at the first release point after
# a pass — a drained feed leaves the snapshot pending, so nudge a few
# more events through and wait until it is durable.
curl -fsS -X POST --data-binary "@$TMP/nudge.log" "$ADDR/ingest/batch" > /dev/null
i=0
until SNAPS=$(curl -fsS "$ADDR/metrics" | awk '$1 == "stream_snapshots_total" {print int($2)}') &&
      [ "${SNAPS:-0}" -ge 1 ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke_restart: FAIL: no durable snapshot after initial training" >&2
        exit 1
    fi
    sleep 0.1
done
# Post the rest of the feed and kill -9 immediately — no quiesce, so the
# crash lands with events (and possibly a training pass) in flight.
curl -fsS -X POST --data-binary "@$TMP/rest.log" "$ADDR/ingest/batch" > /dev/null
echo "smoke_restart: kill -9 $SERVE_PID (mid-flight)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_serve -state-dir "$TMP/incr"
# The recovery block must report the incremental state was restored from
# the snapshot — otherwise the next retrain silently cold-rebuilds.
curl -fsS "$ADDR/stats" | grep -q '"incr_restored": *true' || {
    echo "smoke_restart: FAIL: recovery did not restore incremental state" >&2
    curl -fsS "$ADDR/stats" >&2 || true
    exit 1
}
# Force a training pass on the recovered service. It must be a delta-apply
# ("Rebuild": false), not a from-scratch re-mine of the window. Retry the
# POST briefly: WAL replay may still be running its own (also incremental)
# catch-up passes, and /retrain returns 409 while one is in flight.
REC=""
i=0
until REC=$(curl -fsS -X POST "$ADDR/retrain" 2>/dev/null) && [ -n "$REC" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke_restart: FAIL: POST /retrain never succeeded after restart" >&2
        exit 1
    fi
    sleep 0.1
done
if echo "$REC" | grep -q '"err"'; then
    echo "smoke_restart: FAIL: post-restart retrain errored: $REC" >&2
    exit 1
fi
echo "$REC" | grep -q '"Rebuild": *false' || {
    echo "smoke_restart: FAIL: post-restart retrain was a cold rebuild: $REC" >&2
    exit 1
}
echo "smoke_restart: incremental OK (post-restart retrain delta-applied)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- Ledger phase: kill -9 mid-sweep, recovery covers the ledger ---------

echo "smoke_restart: ledger phase — kill -9 mid capacity sweep"
go build -o "$TMP/loadgen" ./cmd/loadgen
start_serve -state-dir "$TMP/sweep"
"$TMP/loadgen" -addr "$ADDR" -rates 500,1000,2000,4000 -step-duration 2s \
    -batch 128 -weeks 2 -scale 0.02 -allow-open-ended -out "$TMP/sweep.json" \
    -ledger "$TMP/ledger.json" > "$TMP/loadgen.log" 2>&1 &
LG_PID=$!
i=0
until [ -f "$TMP/ledger.json" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "smoke_restart: FAIL: loadgen never completed a sweep step" >&2
        cat "$TMP/loadgen.log" >&2
        exit 1
    fi
    sleep 0.1
done
sleep 0.7 # land the kill inside the next step — genuinely mid-sweep
echo "smoke_restart: kill -9 $SERVE_PID (mid-sweep)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill -9 "$LG_PID" 2>/dev/null || true
wait "$LG_PID" 2>/dev/null || true

LEDGER_SEQ=$(grep -o '"sequenced": *[0-9]*' "$TMP/ledger.json" | grep -o '[0-9]*$')
start_serve -state-dir "$TMP/sweep"
RECOVERED=$(stat_field ingested)
# The ledger records sequenced counts read back from a drained pipeline
# between steps. Batches are group-committed (durable at the ack), so
# everything in the ledger minus the WAL's in-memory tail (FlushEvery =
# 64 records on the single-event path) must survive the kill.
FLOOR=$((LEDGER_SEQ - 64))
if [ "$RECOVERED" -lt "$FLOOR" ]; then
    echo "smoke_restart: FAIL: recovered $RECOVERED < ledger floor $FLOOR (ledger sequenced $LEDGER_SEQ)" >&2
    cat "$TMP/loadgen.log" >&2
    exit 1
fi
echo "smoke_restart: ledger OK (recovered $RECOVERED, ledger sequenced $LEDGER_SEQ)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- Group-commit phase: concurrent connections, ack-implies-durable -----

echo "smoke_restart: group-commit phase — kill -9 mid-sweep at -connections 8"
# Eight connections interleave batch ranges at the wire, so the daemon
# needs a reorder tolerance matched to the feed's time compression
# (milliseconds of wall-clock skew between connections are ~10^6-10^8
# seconds of stream time at these rates).
start_serve -state-dir "$TMP/gc" -reorder 2000000000
# The first step must push well past the reorder buffer's size cap
# (default 4096) before its ledger write, or the recorded sequenced
# count is zero and the floor assertion below proves nothing — with the
# huge tolerance the cap is the only release mechanism.
"$TMP/loadgen" -addr "$ADDR" -rates 8000,16000,32000,64000 -step-duration 2s \
    -batch 256 -connections 8 -weeks 2 -scale 0.02 -allow-open-ended \
    -out "$TMP/gc-sweep.json" -ledger "$TMP/gc-ledger.json" \
    > "$TMP/gc-loadgen.log" 2>&1 &
LG_PID=$!
i=0
until [ -f "$TMP/gc-ledger.json" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "smoke_restart: FAIL: loadgen never completed a sweep step (group-commit phase)" >&2
        cat "$TMP/gc-loadgen.log" >&2
        exit 1
    fi
    sleep 0.1
done
sleep 0.7 # land the kill inside the next step — genuinely mid-sweep
echo "smoke_restart: kill -9 $SERVE_PID (mid-sweep, 8 connections)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill -9 "$LG_PID" 2>/dev/null || true
wait "$LG_PID" 2>/dev/null || true

LEDGER_SEQ=$(grep -o '"sequenced": *[0-9]*' "$TMP/gc-ledger.json" | grep -o '[0-9]*$')
if [ "${LEDGER_SEQ:-0}" -le 0 ]; then
    echo "smoke_restart: FAIL: group-commit ledger recorded sequenced=0 — assertion vacuous, raise the sweep rates" >&2
    cat "$TMP/gc-loadgen.log" >&2
    exit 1
fi
start_serve -state-dir "$TMP/gc" -reorder 2000000000
RECOVERED=$(stat_field ingested)
# The ledger records sequenced counts read from a drained pipeline at a
# step boundary, and on the batch path every sequenced event belongs to
# a batch whose HTTP 200 was released only after the covering group
# fsync. Recovery must therefore cover the ledger EXACTLY — no
# in-memory-tail slack like the single-event phase above. This is the
# end-to-end ack-implies-durable assertion for the commit pipeline.
if [ "$RECOVERED" -lt "$LEDGER_SEQ" ]; then
    echo "smoke_restart: FAIL: recovered $RECOVERED < ledger sequenced $LEDGER_SEQ — an acked batch was lost" >&2
    cat "$TMP/gc-loadgen.log" >&2
    exit 1
fi
echo "smoke_restart: group-commit OK (recovered $RECOVERED >= ledger sequenced $LEDGER_SEQ, zero slack)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- Fleet phase: two tenants, one process, one kill -9 ------------------

echo "smoke_restart: fleet phase — two tenants"
ALPHA="$ADDR/t/alpha"
BETA="$ADDR/t/beta"
start_serve -fleet -state-dir "$TMP/fleet"
# The first POST to a tenant's routes creates it (and its state dir).
curl -fsS -X POST --data-binary "@$TMP/first.log" "$ALPHA/ingest/batch" > /dev/null
curl -fsS -X POST --data-binary "@$TMP/second.log" "$BETA/ingest/batch" > /dev/null
wait_quiesce "$ALPHA"
wait_quiesce "$BETA"
A_PRE=$(stat_field ingested "$ALPHA")
B_PRE=$(stat_field ingested "$BETA")
echo "smoke_restart: fleet pre-kill: alpha=$A_PRE beta=$B_PRE"
echo "smoke_restart: kill -9 $SERVE_PID (fleet)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_serve -fleet -state-dir "$TMP/fleet"
TENANTS=$(curl -fsS "$ADDR/tenants")
for id in alpha beta; do
    echo "$TENANTS" | grep -q "\"id\": *\"$id\"" || {
        echo "smoke_restart: FAIL: /tenants missing $id after fleet restart: $TENANTS" >&2
        exit 1
    }
done
A_REC=$(stat_field ingested "$ALPHA")
B_REC=$(stat_field ingested "$BETA")
if [ "$A_REC" -le 0 ] || [ "$A_REC" -gt "$A_PRE" ] ||
   [ "$B_REC" -le 0 ] || [ "$B_REC" -gt "$B_PRE" ]; then
    echo "smoke_restart: FAIL: fleet recovery out of range (alpha $A_REC/$A_PRE, beta $B_REC/$B_PRE)" >&2
    exit 1
fi
curl -fsS "$ALPHA/stats" | grep -q '"recovery"' || {
    echo "smoke_restart: FAIL: alpha /stats has no recovery block after fleet restart" >&2
    exit 1
}
echo "smoke_restart: fleet restarted (alpha $A_REC/$A_PRE, beta $B_REC/$B_PRE recovered)"

# Aggregate exposition: per-tenant labels plus fleet rollups.
METRICS=$(curl -fsS "$ADDR/metrics")
echo "$METRICS" | grep -q 'tenant="alpha"' || {
    echo "smoke_restart: FAIL: /metrics has no tenant=\"alpha\" series" >&2
    exit 1
}
echo "$METRICS" | grep -q '^fleet_ingested_total ' || {
    echo "smoke_restart: FAIL: /metrics has no fleet_ingested_total rollup" >&2
    exit 1
}
# Legacy unprefixed routes alias the default tenant.
curl -fsS "$ADDR/stats" > /dev/null
curl -fsS "$ADDR/warnings?all=1&n=5" > /dev/null

# Graceful shutdown must close every tenant (snapshot + WAL seal) and
# exit 0 — a hung tenant or failed close turns into a nonzero status.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
grep -q "serve: fleet drained" "$TMP/serve.log" || {
    echo "smoke_restart: FAIL: no fleet-drained line after SIGTERM" >&2
    cat "$TMP/serve.log" >&2
    exit 1
}

# --- Failover phase: kill -9 the leader, promote the hot standby ---------

echo "smoke_restart: failover phase — leader + follower, kill -9, promote"
start_serve -state-dir "$TMP/leader"
"$TMP/serve" -addr "127.0.0.1:$FPORT" -train 3 -retrain 2 \
    -state-dir "$TMP/standby" -follow "$ADDR" -follow-poll 25ms \
    >> "$TMP/follower.log" 2>&1 &
FOLLOW_PID=$!
i=0
until curl -fsS "$FADDR/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke_restart: FAIL: follower never became healthy" >&2
        cat "$TMP/follower.log" >&2
        exit 1
    fi
    sleep 0.1
done
FSTATS=$(curl -fsS "$FADDR/stats")
echo "$FSTATS" | grep -q '"role": *"standby"' || {
    echo "smoke_restart: FAIL: follower does not report standby role" >&2
    exit 1
}
# A standby refuses writes with 503 + Retry-After (same resume contract
# as a restarting daemon).
STANDBY_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary "@$TMP/nudge.log" "$FADDR/ingest/batch")
if [ "$STANDBY_CODE" != "503" ]; then
    echo "smoke_restart: FAIL: standby ingest returned HTTP $STANDBY_CODE, want 503" >&2
    exit 1
fi

"$TMP/loadgen" -addr "$ADDR" -rates 500,1000,2000,4000 -step-duration 2s \
    -batch 128 -weeks 2 -scale 0.02 -allow-open-ended \
    -out "$TMP/failover-sweep.json" \
    -ledger "$TMP/failover-ledger.json" > "$TMP/failover-loadgen.log" 2>&1 &
LG_PID=$!
i=0
until [ -f "$TMP/failover-ledger.json" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "smoke_restart: FAIL: loadgen never completed a sweep step (failover phase)" >&2
        cat "$TMP/failover-loadgen.log" >&2
        exit 1
    fi
    sleep 0.1
done
sleep 0.7 # land the kill inside the next step — genuinely mid-sweep
echo "smoke_restart: kill -9 $SERVE_PID (leader, mid-sweep)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
kill -9 "$LG_PID" 2>/dev/null || true
wait "$LG_PID" 2>/dev/null || true

LEDGER_SEQ=$(grep -o '"sequenced": *[0-9]*' "$TMP/failover-ledger.json" | grep -o '[0-9]*$')
PROMOTE_RESP=$(curl -fsS -X POST "$FADDR/promote")
echo "$PROMOTE_RESP" | grep -q '"role": *"leader"' || {
    echo "smoke_restart: FAIL: POST /promote did not yield a leader" >&2
    cat "$TMP/follower.log" >&2
    exit 1
}
FMETRICS=$(curl -fsS "$FADDR/metrics")
echo "$FMETRICS" | grep -q '^standby_promotions_total 1' || {
    echo "smoke_restart: FAIL: standby_promotions_total != 1 after promotion" >&2
    exit 1
}
PROMOTED=$(stat_field ingested "$FADDR")
# The ledger records what the leader acknowledged at a drained step
# boundary; batches are group-committed, the follower tails flushed
# segments, so everything in the ledger minus the WAL's in-memory tail
# must have reached the replica before the kill.
FLOOR=$((LEDGER_SEQ - 64))
if [ "$PROMOTED" -lt "$FLOOR" ]; then
    echo "smoke_restart: FAIL: promoted follower has $PROMOTED events < ledger floor $FLOOR (ledger $LEDGER_SEQ)" >&2
    cat "$TMP/follower.log" >&2
    exit 1
fi
# The promoted daemon owns the write path now: fresh writes must land.
curl -fsS -X POST --data-binary "@$TMP/nudge.log" "$FADDR/ingest/batch" > /dev/null
wait_quiesce "$FADDR"
POST_PROMOTE=$(stat_field ingested "$FADDR")
if [ "$POST_PROMOTE" -le "$PROMOTED" ]; then
    echo "smoke_restart: FAIL: promoted follower did not accept fresh writes ($PROMOTED -> $POST_PROMOTE)" >&2
    exit 1
fi
echo "smoke_restart: failover OK (replicated $PROMOTED >= ledger floor $FLOOR, writes resumed at $POST_PROMOTE)"
kill -9 "$FOLLOW_PID"
wait "$FOLLOW_PID" 2>/dev/null || true
FOLLOW_PID=""

echo "smoke_restart: OK (single-tenant ingested $INGESTED/$TOTAL; fleet alpha $A_REC, beta $B_REC; failover replicated $PROMOTED)"
